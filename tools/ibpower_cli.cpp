// ibpower command-line driver.
//
// Subcommands:
//   gen     generate a workload trace to a file
//   replay  replay a trace file (baseline or managed) and report metrics
//   run     generate + baseline + managed in one go (experiment)
//   sweep   grouping-threshold sweep (Fig. 10 / Table III methodology)
//   apps    list the built-in application models
//
// Examples:
//   ibpower_cli run --app gromacs --ranks 16 --iterations 100 --disp 1
//   ibpower_cli gen --app alya --ranks 8 --out alya8.trace
//   ibpower_cli replay --trace alya8.trace --managed --gt 24
//   ibpower_cli sweep --app nas_mg --ranks 16
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <string>

#include <fstream>

#include "obs/collect.hpp"
#include "obs/exporters.hpp"
#include "obs/instrumented.hpp"
#include "obs/sched_export.hpp"
#include "sim/campaign.hpp"
#include "sim/experiment.hpp"
#include "sim/parallel.hpp"
#include "sim/report.hpp"
#include "trace/profile.hpp"
#include "trace/trace_io.hpp"
#include "workloads/apps.hpp"

namespace {

using namespace ibpower;

struct Args {
  std::map<std::string, std::string> kv;

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback = "") const {
    const auto it = kv.find(key);
    return it == kv.end() ? fallback : it->second;
  }
  [[nodiscard]] int geti(const std::string& key, int fallback) const {
    const auto it = kv.find(key);
    return it == kv.end() ? fallback : std::stoi(it->second);
  }
  [[nodiscard]] double getd(const std::string& key, double fallback) const {
    const auto it = kv.find(key);
    return it == kv.end() ? fallback : std::stod(it->second);
  }
  [[nodiscard]] bool has(const std::string& key) const {
    return kv.contains(key);
  }
};

Args parse(int argc, char** argv, int from) {
  Args args;
  for (int i = from; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) continue;
    key = key.substr(2);
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      args.kv[key] = argv[++i];
    } else {
      args.kv[key] = "1";
    }
  }
  return args;
}

WorkloadParams workload_from(const Args& args) {
  WorkloadParams p;
  p.nranks = args.geti("ranks", 16);
  p.iterations = args.geti("iterations", 100);
  p.seed = static_cast<std::uint64_t>(args.geti("seed", 42));
  p.scale = args.getd("scale", 1.0);
  p.weak_scaling = args.has("weak");
  return p;
}

/// --jobs N|auto → engine worker count. "auto" (and the default) is the
/// cgroup-quota-aware usable-core count, so a container limited to 2 CPUs
/// gets 2 workers even when the host advertises 64.
unsigned jobs_from(const Args& args) {
  const std::string v = args.get("jobs");
  if (v.empty() || v == "auto") return ThreadPool::default_concurrency();
  const int jobs = std::stoi(v);
  return jobs <= 0 ? 1u : static_cast<unsigned>(jobs);
}

/// --shards N|auto → ReplayOptions::shards (auto = 0, engine resolves it).
int shards_from(const Args& args) {
  const std::string v = args.get("shards");
  if (v.empty()) return 1;
  if (v == "auto") return 0;
  return std::stoi(v);
}

/// Per-shard execution profile of a finished replay: event counts, boundary
/// posts and horizon-stall time, plus the derived boundary-message ratio.
void print_shard_profile(const ReplayResult& rr) {
  std::uint64_t events = 0;
  std::uint64_t posts = 0;
  for (const ShardProfile& p : rr.shard_profiles) {
    events += p.events;
    posts += p.boundary_posts;
  }
  std::printf("shards       : %d (boundary ratio %.2f%%)\n", rr.shards_used,
              events > 0 ? 100.0 * static_cast<double>(posts) /
                               static_cast<double>(events)
                         : 0.0);
  for (std::size_t i = 0; i < rr.shard_profiles.size(); ++i) {
    const ShardProfile& p = rr.shard_profiles[i];
    std::printf(
        "  shard %-3zu  events %-10llu posts %-8llu stalls %-8llu "
        "stall %.3f ms\n",
        i, static_cast<unsigned long long>(p.events),
        static_cast<unsigned long long>(p.boundary_posts),
        static_cast<unsigned long long>(p.stall_waits),
        static_cast<double>(p.stall_ns) / 1e6);
  }
}

int write_shard_profile_json(const std::string& path, const ReplayResult& rr) {
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::uint64_t events = 0;
  std::uint64_t posts = 0;
  for (const ShardProfile& p : rr.shard_profiles) {
    events += p.events;
    posts += p.boundary_posts;
  }
  os << "{\n  \"schema\": \"ibpower-shard-profile:v1\",\n"
     << "  \"shards\": " << rr.shards_used << ",\n"
     << "  \"events\": " << events << ",\n"
     << "  \"boundary_posts\": " << posts << ",\n"
     << "  \"boundary_ratio\": "
     << (events > 0
             ? static_cast<double>(posts) / static_cast<double>(events)
             : 0.0)
     << ",\n  \"per_shard\": [\n";
  for (std::size_t i = 0; i < rr.shard_profiles.size(); ++i) {
    const ShardProfile& p = rr.shard_profiles[i];
    os << "    {\"shard\": " << i << ", \"events\": " << p.events
       << ", \"boundary_posts\": " << p.boundary_posts
       << ", \"stall_waits\": " << p.stall_waits
       << ", \"stall_ns\": " << p.stall_ns << "}"
       << (i + 1 < rr.shard_profiles.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  std::printf("wrote %s (shard profile, %d shards)\n", path.c_str(),
              rr.shards_used);
  return 0;
}

/// --sched-profile [FILE.json]: one-line scheduler summary, plus the full
/// ibpower-sched-profile:v1 document when a filename was given. The profile
/// is read before the engine's next reset(), so it reflects the run that
/// just finished. Mirrors --shard-profile.
int write_sched_profile(const Args& args, ParallelExperimentRunner& runner) {
  const SchedProfile prof = runner.last_sched_profile();
  const std::int64_t wall_ns = runner.engine().now_ns();
  const obs::SchedSummary sum = obs::summarize_sched(prof, wall_ns);
  std::printf(
      "sched        : %zu workers, %llu tasks, %llu steals "
      "(%llu attempts), utilization %.1f%%\n",
      prof.workers.size(), static_cast<unsigned long long>(sum.executed),
      static_cast<unsigned long long>(sum.steals),
      static_cast<unsigned long long>(sum.steal_attempts),
      100.0 * sum.utilization);
  const std::string path = args.get("sched-profile");
  if (!path.empty() && path != "1") {
    std::ofstream os(path);
    if (!os) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    os << obs::sched_profile_json(prof, wall_ns);
    std::printf("wrote %s (sched profile, %zu tasks)\n", path.c_str(),
                prof.tasks.size());
  }
  return 0;
}

/// One-line speedup summary for a finished parallel run: serial-equivalent
/// work vs observed wall-clock.
void print_speedup(const ParallelExperimentRunner& runner, double wall_ms) {
  const double work_ms = runner.last_total_work_ms();
  std::printf("jobs %u: wall %.1f ms, work %.1f ms, speedup %.2fx\n",
              runner.jobs(), wall_ms, work_ms,
              wall_ms > 0.0 ? work_ms / wall_ms : 1.0);
}

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// --xgft M1,M2,W1,W2[,M3,W3] → topology parameters (4 values select the
/// 2-level tree, 6 the 3-level tree). Returns false on a malformed spec.
bool xgft_from(const std::string& spec, XgftParams& xgft) {
  std::vector<int> v;
  const char* p = spec.c_str();
  while (true) {
    char* end = nullptr;
    const long field = std::strtol(p, &end, 10);
    if (end == p) return false;
    v.push_back(static_cast<int>(field));
    if (*end == '\0') break;
    if (*end != ',') return false;
    p = end + 1;
  }
  if (v.size() != 4 && v.size() != 6) return false;
  xgft = XgftParams{v[0], v[1], v[2], v[3], v.size() == 6 ? v[4] : 1,
                    v.size() == 6 ? v[5] : 1};
  return xgft.valid();
}

/// Apply --routing / --trunk-policy / --trunk-timeout (us) / --spill (us) /
/// --xgft / --contention to a fabric config. Returns false (with a
/// diagnostic) on unknown names.
bool fabric_from(const Args& args, FabricConfig& fabric) {
  if (const std::string spec = args.get("xgft"); !spec.empty()) {
    if (!xgft_from(spec, fabric.xgft)) {
      std::fprintf(stderr,
                   "bad --xgft '%s' (want M1,M2,W1,W2 or M1,M2,W1,W2,M3,W3)\n",
                   spec.c_str());
      return false;
    }
  }
  if (args.has("contention")) fabric.contention = true;
  if (const std::string name = args.get("routing"); !name.empty()) {
    if (!parse_routing_strategy(name, fabric.routing.strategy)) {
      std::fprintf(stderr,
                   "unknown --routing '%s' (random|dmodk|consolidate)\n",
                   name.c_str());
      return false;
    }
  }
  if (const std::string name = args.get("trunk-policy"); !name.empty()) {
    if (!parse_trunk_policy(name, fabric.trunk.kind)) {
      std::fprintf(stderr,
                   "unknown --trunk-policy '%s' (off|timeout|multi-timeout)\n",
                   name.c_str());
      return false;
    }
  }
  if (args.has("trunk-timeout")) {
    fabric.trunk.idle_timeout = TimeNs::from_us(args.getd("trunk-timeout", 50.0));
  }
  if (args.has("spill")) {
    fabric.routing.spill_threshold = TimeNs::from_us(args.getd("spill", 50.0));
  }
  return true;
}

PpaConfig ppa_from(const Args& args, const std::string& app, int nranks) {
  PpaConfig ppa;
  ppa.grouping_threshold =
      args.has("gt") ? TimeNs::from_us(args.getd("gt", 20.0))
                     : default_gt(app, nranks);
  ppa.displacement_factor = args.getd("disp", 1.0) / 100.0;
  ppa.t_react = TimeNs::from_us(args.getd("treact", 10.0));
  ppa.grouping_threshold = max(ppa.grouping_threshold, 2 * ppa.t_react);
  return ppa;
}

/// Apply --predictor / --guard-us (DESIGN.md §13) to the predictor
/// selection. Returns false (with a diagnostic) on an unknown name.
bool predictor_from(const Args& args, PredictorConfig& pred) {
  if (const std::string name = args.get("predictor"); !name.empty()) {
    if (!parse_predictor(name, &pred.kind)) {
      std::fprintf(stderr,
                   "unknown --predictor '%s' (ppa|multi-timeout|histogram)\n",
                   name.c_str());
      return false;
    }
  }
  if (args.has("guard-us")) {
    pred.guard_threshold = TimeNs::from_us(args.getd("guard-us", 0.0));
  }
  return true;
}

/// Apply --host-policy / --host-pstates / --power-cap / --cap-epoch-us
/// (DESIGN.md §15) to the host co-management config. Returns false (with a
/// diagnostic) on unknown names or malformed tables.
bool host_from(const Args& args, HostPowerConfig& host) {
  if (const std::string name = args.get("host-policy"); !name.empty()) {
    if (!parse_host_policy(name, &host.policy)) {
      std::fprintf(stderr, "unknown --host-policy '%s' (off|countdown)\n",
                   name.c_str());
      return false;
    }
  }
  if (const std::string spec = args.get("host-pstates"); !spec.empty()) {
    if (!parse_host_pstates(spec, &host)) {
      std::fprintf(stderr,
                   "bad --host-pstates '%s' (want watts:speed,... fastest "
                   "first, e.g. 90:1.0,65:0.8,45:0.6)\n",
                   spec.c_str());
      return false;
    }
  }
  if (args.has("power-cap")) {
    host.power_cap_watts = args.getd("power-cap", 0.0);
  }
  if (args.has("cap-epoch-us")) {
    host.cap_epoch = TimeNs::from_us(args.getd("cap-epoch-us", 500.0));
  }
  if (host.enabled() && !host.valid()) {
    std::fprintf(stderr,
                 "invalid host config (check --host-pstates ordering and "
                 "--cap-epoch-us > 0)\n");
    return false;
  }
  return true;
}

void print_result(const ExperimentResult& r, const FabricConfig& fabric,
                  const PpaConfig& ppa, const HostPowerConfig& host) {
  std::printf("baseline time        : %s\n", to_string(r.baseline_time).c_str());
  std::printf("managed time         : %s (%+.3f%%)\n",
              to_string(r.managed_time).c_str(), r.time_increase_pct);
  std::printf("switch power savings : %.2f%%\n", r.power.switch_savings_pct);
  std::printf("low-power residency  : %.1f%%\n",
              100.0 * r.power.mean_low_residency);
  std::printf("MPI call hit rate    : %.1f%%\n", r.hit_rate_pct);
  std::printf("pattern mispredicts  : %llu\n",
              static_cast<unsigned long long>(r.agents.pattern_mispredicts));
  std::printf("on-demand lane wakes : %llu (penalty %s)\n",
              static_cast<unsigned long long>(r.on_demand_wakes),
              to_string(r.wake_penalty_total).c_str());
  std::printf("reducible idle time  : %.1f%% of idle\n",
              100.0 * r.baseline_idle.reducible_time_fraction());
  // Whole-fabric lines only when trunk management ran: default-off output
  // stays byte-identical to the pre-trunk CLI.
  if (fabric.trunk.kind != TrunkPolicyKind::Off) {
    std::printf("routing / trunks     : %s / %s\n",
                routing_strategy_name(fabric.routing.strategy),
                trunk_policy_name(fabric.trunk.kind));
    std::printf("fabric power savings : %.2f%% (all links incl. trunks)\n",
                r.fabric_power.switch_savings_pct);
    std::printf("fabric energy        : %.3f J (always-on %.3f J)\n",
                r.fabric_power.total_energy_joules,
                r.fabric_power.baseline_energy_joules);
  }
  // Predictor lines only for a non-default selection: default output stays
  // byte-identical to the pre-interface CLI.
  if (!ppa.predictor.is_default()) {
    std::printf("predictor            : %s (guard %s)\n",
                predictor_name(ppa.predictor.kind),
                ppa.predictor.guard_threshold > TimeNs::zero()
                    ? to_string(ppa.predictor.guard_threshold).c_str()
                    : "off");
    std::printf("mispredict wakes     : %llu (guard suppressed %llu)\n",
                static_cast<unsigned long long>(r.agents.mispredict_wakes),
                static_cast<unsigned long long>(r.agents.guard_suppressed));
  }
  // Host co-management lines only when the subsystem ran: default-off
  // output stays byte-identical to the pre-host CLI (DESIGN.md §15).
  if (host.enabled()) {
    if (host.power_cap_watts > 0.0) {
      std::printf("host policy          : %s (cap %.1f W, epoch %s)\n",
                  host_policy_name(host.policy), host.power_cap_watts,
                  to_string(host.cap_epoch).c_str());
    } else {
      std::printf("host policy          : %s\n",
                  host_policy_name(host.policy));
    }
    std::printf("host energy savings  : %.2f%%\n", r.hosts.savings_pct);
    std::printf("host sleep residency : %.1f%%\n",
                100.0 * r.hosts.mean_sleep_residency);
    std::printf("host wakes           : %llu on-demand (penalty %s), "
                "%llu P-state changes\n",
                static_cast<unsigned long long>(r.hosts.on_demand_wakes),
                to_string(r.hosts.wake_penalty_total).c_str(),
                static_cast<unsigned long long>(r.hosts.pstate_changes));
    std::printf("system energy        : %.3f J (always-on %.3f J, "
                "savings %.2f%%)\n",
                r.system_energy_joules, r.system_baseline_energy_joules,
                r.system_savings_pct);
  }
}

/// Telemetry sinks shared by run/replay/grid: --metrics-out FILE.json gets
/// the ibpower-metrics:v1 snapshot, --timeline-out FILE.prv the managed
/// power-state timeline (first cell for grids). Returns 0 on success.
int export_telemetry(const Args& args, const std::vector<obs::CellMetrics>& cells) {
  if (const std::string path = args.get("metrics-out"); !path.empty()) {
    std::ofstream os(path);
    if (!os) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    obs::write_metrics_json(os, cells);
    std::printf("wrote %s (metrics, %zu cells)\n", path.c_str(), cells.size());
  }
  if (const std::string path = args.get("timeline-out"); !path.empty()) {
    if (cells.empty()) {
      std::fprintf(stderr, "no cells to write a timeline for\n");
      return 1;
    }
    std::ofstream os(path);
    if (!os) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    const obs::CellMetrics& cell = cells.front();
    // A baseline-only replay has no managed leg; fall back to its
    // (always-full-power) baseline timeline.
    const obs::ReplayMetrics& leg =
        cell.managed.links.empty() ? cell.baseline : cell.managed;
    obs::write_power_prv(os, leg, cell.app);
    std::printf("wrote %s (power-state timeline, %zu links)\n", path.c_str(),
                leg.links.size());
  }
  return 0;
}

[[nodiscard]] bool wants_telemetry(const Args& args) {
  return args.has("metrics-out") || args.has("timeline-out");
}

int cmd_apps() {
  for (const auto& name : app_names()) {
    const auto app = make_app(name);
    std::printf("%-10s sizes:", name.c_str());
    for (const int n : app->paper_process_counts()) std::printf(" %d", n);
    std::printf("\n");
  }
  return 0;
}

int cmd_gen(const Args& args) {
  const std::string app_name = args.get("app", "alya");
  const std::string out = args.get("out", app_name + ".trace");
  const auto app = make_app(app_name);
  const WorkloadParams params = workload_from(args);
  if (!app->supports(params.nranks)) {
    std::fprintf(stderr, "%s does not support %d ranks\n", app_name.c_str(),
                 params.nranks);
    return 1;
  }
  const Trace trace = app->generate(params);
  write_trace_file(out, trace);
  std::printf("wrote %s: %d ranks, %zu records, %zu MPI calls\n", out.c_str(),
              trace.nranks(), trace.total_records(), trace.total_mpi_calls());
  return 0;
}

int cmd_replay(const Args& args) {
  const std::string path = args.get("trace");
  if (path.empty()) {
    std::fprintf(stderr, "replay: --trace <file> required\n");
    return 1;
  }
  const Trace trace = read_trace_file(path);
  const std::string problem = trace.validate();
  if (!problem.empty()) {
    std::fprintf(stderr, "invalid trace: %s\n", problem.c_str());
    return 1;
  }

  ReplayOptions opt;
  if (!fabric_from(args, opt.fabric)) return 2;
  opt.enable_power_management = args.has("managed");
  if (opt.enable_power_management) {
    opt.ppa = ppa_from(args, trace.app_name(), trace.nranks());
    if (!predictor_from(args, opt.ppa.predictor)) return 2;
  }
  if (!host_from(args, opt.host)) return 2;
  opt.shards = shards_from(args);
  // --split-energy: report static (mode-residency) and dynamic (per-bit)
  // link energy separately in the telemetry snapshot (DESIGN.md §12).
  PowerModelConfig pmcfg;
  pmcfg.split_energy = args.has("split-energy");
  ReplayEngine engine(&trace, opt);
  const ReplayResult rr = engine.run();
  if (args.has("shards") || args.has("shard-profile")) {
    print_shard_profile(rr);
    if (const std::string profile_path = args.get("shard-profile");
        !profile_path.empty() && profile_path != "1") {
      if (const int rc = write_shard_profile_json(profile_path, rr);
          rc != 0) {
        return rc;
      }
    }
  }
  if (wants_telemetry(args)) {
    obs::CellMetrics cell;
    cell.app = trace.app_name();
    cell.nranks = trace.nranks();
    cell.displacement = opt.ppa.displacement_factor;
    if (opt.enable_power_management && !opt.ppa.predictor.is_default()) {
      cell.predictor = predictor_name(opt.ppa.predictor.kind);
      cell.guard_us = opt.ppa.predictor.guard_threshold.us();
    }
    obs::ReplayMetrics m = obs::collect_replay_metrics(engine, rr, pmcfg);
    (m.managed ? cell.managed : cell.baseline) = std::move(m);
    if (const int rc = export_telemetry(args, {std::move(cell)}); rc != 0) {
      return rc;
    }
  }
  std::printf("exec time    : %s\n", to_string(rr.exec_time).c_str());
  std::printf("messages     : %llu\n",
              static_cast<unsigned long long>(rr.messages_sent));
  std::printf("sim events   : %llu\n",
              static_cast<unsigned long long>(rr.events_processed));
  if (opt.enable_power_management) {
    std::vector<const IbLink*> ports;
    for (NodeId n = 0; n < trace.nranks(); ++n) {
      ports.push_back(
          &engine.fabric().link(engine.fabric().topology().node_uplink(n)));
    }
    const auto fleet = aggregate_power(ports, pmcfg);
    std::printf("savings      : %.2f%%\n", fleet.switch_savings_pct);
    std::printf("hit rate     : %.1f%%\n", rr.agent_total.hit_rate_pct());
  }
  // Host co-management summary only when the subsystem ran (DESIGN.md §15).
  if (engine.host(0) != nullptr) {
    std::vector<const HostPowerModel*> hosts;
    for (Rank r = 0; r < trace.nranks(); ++r) hosts.push_back(engine.host(r));
    const HostFleetSummary fleet = aggregate_hosts(hosts);
    std::printf("host policy  : %s%s\n", host_policy_name(opt.host.policy),
                opt.host.power_cap_watts > 0.0 ? " (capped)" : "");
    std::printf("host savings : %.2f%%\n", fleet.savings_pct);
    std::printf("host energy  : %.3f J (always-on %.3f J)\n",
                fleet.total_energy_joules, fleet.baseline_energy_joules);
  }
  return 0;
}

int cmd_run(const Args& args) {
  ExperimentConfig cfg;
  cfg.app = args.get("app", "alya");
  cfg.workload = workload_from(args);
  cfg.ppa = ppa_from(args, cfg.app, cfg.workload.nranks);
  if (!predictor_from(args, cfg.ppa.predictor)) return 2;
  if (!fabric_from(args, cfg.fabric)) return 2;
  if (!host_from(args, cfg.host)) return 2;
  cfg.shards = shards_from(args);
  std::printf("%s @ %d ranks, %d iterations, GT %s, displacement %.1f%%\n\n",
              cfg.app.c_str(), cfg.workload.nranks, cfg.workload.iterations,
              to_string(cfg.ppa.grouping_threshold).c_str(),
              100.0 * cfg.ppa.displacement_factor);
  ParallelExperimentRunner runner(jobs_from(args));
  const auto t0 = std::chrono::steady_clock::now();
  if (wants_telemetry(args)) {
    const std::vector<obs::InstrumentedResult> inst =
        obs::run_instrumented_grid(runner, {cfg});
    print_result(inst[0].result, cfg.fabric, cfg.ppa, cfg.host);
    print_speedup(runner, ms_since(t0));
    return export_telemetry(args, {obs::make_cell_metrics(cfg, inst[0])});
  }
  print_result(runner.run(cfg), cfg.fabric, cfg.ppa, cfg.host);
  print_speedup(runner, ms_since(t0));
  return 0;
}

int cmd_sweep(const Args& args) {
  ExperimentConfig cfg;
  cfg.app = args.get("app", "nas_mg");
  cfg.workload = workload_from(args);
  cfg.ppa = ppa_from(args, cfg.app, cfg.workload.nranks);
  std::vector<TimeNs> gts;
  for (const int us : {20, 24, 30, 40, 60, 90, 130, 200, 300, 400}) {
    gts.push_back(TimeNs::from_us(static_cast<std::int64_t>(us)));
  }
  ParallelExperimentRunner runner(jobs_from(args));
  for (const auto& point : runner.sweep_gt(cfg, gts)) {
    std::printf("GT %-8s hit %6.2f%%  %s\n", to_string(point.gt).c_str(),
                point.hit_rate_pct,
                std::string(static_cast<std::size_t>(point.hit_rate_pct / 2),
                            '#')
                    .c_str());
  }
  return 0;
}

int cmd_inspect(const Args& args) {
  // Dry-run the predictor over a baseline replay and dump every detected
  // pattern the way the paper prints them (Fig. 3), per rank 0.
  ExperimentConfig cfg;
  cfg.app = args.get("app", "alya");
  cfg.workload = workload_from(args);
  cfg.ppa = ppa_from(args, cfg.app, cfg.workload.nranks);

  const auto app = make_app(cfg.app);
  const Trace trace = app->generate(cfg.workload);
  ReplayOptions opt;
  opt.record_call_timeline = true;
  ReplayEngine engine(&trace, opt);
  (void)engine.run();

  std::printf("%s @ %d ranks, GT %s — rank 0 pattern analysis\n\n",
              cfg.app.c_str(), cfg.workload.nranks,
              to_string(cfg.ppa.grouping_threshold).c_str());

  PmpiAgent agent(cfg.ppa, nullptr);
  for (const auto& ev : engine.call_timeline(0)) {
    (void)agent.on_call_enter(ev.call, ev.enter);
    agent.on_call_exit(ev.call, ev.exit);
  }
  agent.finish();

  const auto& detector = agent.detector();
  std::printf("grams observed        : %zu (%zu distinct)\n",
              detector.gram_count(), agent.interner().size());
  std::printf("patterns in list      : %zu\n", detector.patterns().size());
  std::printf("detected patterns     : %zu\n",
              detector.patterns().detected_ids().size());
  std::printf("MPI call hit rate     : %.1f%%\n",
              agent.stats().hit_rate_pct());
  std::printf("pattern mispredicts   : %llu\n\n",
              static_cast<unsigned long long>(
                  agent.stats().pattern_mispredicts));

  for (const PatternId id : detector.patterns().detected_ids()) {
    const PatternInfo& info = detector.patterns()[id];
    std::printf("pattern: ");
    for (std::size_t g = 0; g < info.grams.size(); ++g) {
      std::printf("%s%s", g ? "_" : "",
                  agent.interner().to_string(info.grams[g]).c_str());
    }
    std::printf("\n  length %zu grams, %u MPI calls/appearance, seen %u times\n",
                info.length(), info.n_mpi_calls, info.frequency);
    for (std::size_t b = 0; b < info.gap_after.size(); ++b) {
      if (!info.gap_after[b].has_value()) continue;
      std::printf("  gap after gram %zu: %s (n=%llu)%s\n", b,
                  to_string(info.gap_after[b].mean()).c_str(),
                  static_cast<unsigned long long>(info.gap_after[b].samples()),
                  b + 1 == info.gap_after.size() ? "  [wrap]" : "");
    }
  }
  return 0;
}

int cmd_stats(const Args& args) {
  // Profile a trace file or a generated workload.
  Trace trace;
  if (args.has("trace")) {
    trace = read_trace_file(args.get("trace"));
  } else {
    const auto app = make_app(args.get("app", "alya"));
    trace = app->generate(workload_from(args));
  }
  print_profile(std::cout, profile_trace(trace));
  return 0;
}

int cmd_grid(const Args& args) {
  // Run the paper's full evaluation grid and export machine-readable rows.
  const double disp = args.getd("disp", 1.0) / 100.0;
  const int iterations = args.geti("iterations", 60);
  const std::string out = args.get("out", "results.csv");
  const bool json = out.size() > 5 && out.substr(out.size() - 5) == ".json";

  std::vector<ExperimentConfig> cfgs;
  std::vector<LabelledResult> rows;
  // --stressors swaps the paper grid for the irregular predictor-family
  // workloads (the EXPERIMENTS.md ablation rows).
  const std::vector<std::string> grid_apps =
      args.has("stressors") ? stressor_app_names() : app_names();
  for (const auto& name : grid_apps) {
    const auto app = make_app(name);
    for (const int nranks : app->paper_process_counts()) {
      ExperimentConfig cfg;
      cfg.app = name;
      cfg.workload.nranks = nranks;
      cfg.workload.iterations = iterations;
      cfg.workload.weak_scaling = args.has("weak");
      cfg.ppa.grouping_threshold = default_gt(name, nranks);
      cfg.ppa.displacement_factor = disp;
      if (!predictor_from(args, cfg.ppa.predictor)) return 2;
      if (!fabric_from(args, cfg.fabric)) return 2;
      if (!host_from(args, cfg.host)) return 2;
      // Scale cells (the stressors' 512-rank rung) outgrow the default
      // 252-node XGFT; absent an explicit --xgft, place them on a 3-level
      // tree of 64-node groups sized to the cell.
      if (!args.has("xgft") &&
          nranks > cfg.fabric.xgft.m1 * cfg.fabric.xgft.m2 *
                       cfg.fabric.xgft.m3) {
        cfg.fabric.xgft = XgftParams{8, 8, 1, 4, (nranks + 63) / 64, 2};
      }
      cfg.shards = shards_from(args);
      cfgs.push_back(std::move(cfg));
      LabelledResult row;
      row.app = name;
      row.nranks = nranks;
      row.displacement = disp;
      rows.push_back(std::move(row));
    }
  }

  ParallelExperimentRunner runner(jobs_from(args));
  if (args.has("sched-profile")) runner.set_profiling(true);
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<ExperimentResult> results;
  std::vector<obs::CellMetrics> cells;
  if (wants_telemetry(args)) {
    const std::vector<obs::InstrumentedResult> inst =
        obs::run_instrumented_grid(runner, cfgs);
    results.reserve(inst.size());
    cells.reserve(inst.size());
    for (std::size_t i = 0; i < inst.size(); ++i) {
      results.push_back(inst[i].result);
      cells.push_back(obs::make_cell_metrics(cfgs[i], inst[i]));
    }
  } else {
    results = runner.run_all(cfgs);
  }
  const double wall_ms = ms_since(t0);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    rows[i].result = results[i];
    std::printf("%-10s %4d  savings %6.2f%%  incr %6.3f%%  hit %5.1f%%\n",
                rows[i].app.c_str(), rows[i].nranks,
                rows[i].result.power.switch_savings_pct,
                rows[i].result.time_increase_pct, rows[i].result.hit_rate_pct);
  }
  print_speedup(runner, wall_ms);
  if (args.has("sched-profile")) {
    if (const int rc = write_sched_profile(args, runner); rc != 0) return rc;
  }
  std::ofstream os(out);
  if (!os) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  if (json) {
    write_results_json(os, rows);
  } else {
    write_results_csv(os, rows);
  }
  std::printf("wrote %s (%zu rows)\n", out.c_str(), rows.size());
  return export_telemetry(args, cells);
}

int cmd_campaign(const Args& args) {
  // Long-running mode: a JSONL stream of experiment requests in (stdin or
  // --in FILE), one result row per line out (stdout or --out FILE), in
  // request order. Rows are drained opportunistically while reading, so an
  // unbounded stream runs in bounded memory: only in-flight requests (and
  // their shared traces) are live at once.
  std::ifstream fin;
  std::istream* in = &std::cin;
  if (const std::string path = args.get("in"); !path.empty() && path != "1") {
    fin.open(path);
    if (!fin) {
      std::fprintf(stderr, "cannot read %s\n", path.c_str());
      return 1;
    }
    in = &fin;
  }
  std::ofstream fout;
  std::ostream* out = &std::cout;
  if (const std::string path = args.get("out"); !path.empty() && path != "1") {
    fout.open(path);
    if (!fout) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    out = &fout;
  }

  ParallelExperimentRunner runner(jobs_from(args));
  if (args.has("sched-profile")) runner.set_profiling(true);
  std::uint64_t rows_out = 0;
  std::uint64_t error_rows = 0;
  CampaignCacheStats stats;
  {
    CampaignSession session(runner);
    auto emit = [&](const CampaignRow& row) {
      *out << format_campaign_row(row) << "\n";
      ++rows_out;
      if (!row.ok) ++error_rows;
    };
    std::string line;
    int lineno = 0;
    CampaignRow row;
    while (std::getline(*in, line)) {
      ++lineno;
      if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
      CampaignRequest req;
      std::string error;
      if (parse_campaign_request(line, lineno, &req, &error)) {
        session.submit(std::move(req));
      } else {
        // A malformed line still occupies its slot in the output stream.
        session.submit_error("req-" + std::to_string(lineno), error);
      }
      while (session.try_pop(&row)) emit(row);
    }
    while (session.pop(&row)) emit(row);
    stats = session.cache_stats();
  }
  out->flush();
  std::fprintf(stderr,
               "campaign     : %llu rows (%llu errors), %llu traces built, "
               "%llu shared, peak %llu live\n",
               static_cast<unsigned long long>(rows_out),
               static_cast<unsigned long long>(error_rows),
               static_cast<unsigned long long>(stats.trace_builds),
               static_cast<unsigned long long>(stats.trace_hits),
               static_cast<unsigned long long>(stats.max_live_traces));
  if (args.has("sched-profile")) {
    if (const int rc = write_sched_profile(args, runner); rc != 0) return rc;
  }
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: ibpower_cli <gen|replay|run|sweep|grid|campaign|inspect|stats|apps> [--key value]\n"
               "  common: --app NAME --ranks N --iterations N --seed N\n"
               "          --scale X --weak --gt US --disp PCT --treact US\n"
               "          --jobs N|auto (parallel replays; auto = usable\n"
               "          cores, cgroup-quota-aware)\n"
               "          --shards N|auto (intra-replay parallel DES; run/\n"
               "          replay/grid; bit-identical to serial)\n"
               "  replay: --shard-profile [FILE.json] (per-shard events,\n"
               "          boundary posts, horizon stalls)\n"
               "  fabric (run/replay/grid): --routing random|dmodk|consolidate\n"
               "          --trunk-policy off|timeout|multi-timeout\n"
               "          --trunk-timeout US (idle timer) --spill US\n"
               "          --xgft M1,M2,W1,W2[,M3,W3] (topology; 6 values\n"
               "          select the 3-level tree) --contention (per-hop\n"
               "          arrival-order FIFO queueing on every link)\n"
               "  replay: --split-energy (static + dynamic link energy in\n"
               "          the telemetry snapshot)\n"
               "  predictor (run/replay/grid): --predictor\n"
               "          ppa|multi-timeout|histogram (node-uplink idle\n"
               "          predictor; default ppa) --guard-us US\n"
               "          (COUNTDOWN-Slack guard: sleep only when the\n"
               "          predicted idle exceeds US)\n"
               "  host (run/replay/grid): --host-policy off|countdown\n"
               "          (per-rank CPU sleep driven by the same idle\n"
               "          predictor stream as the link) --host-pstates\n"
               "          watts:speed,... (DVFS table, fastest first)\n"
               "          --power-cap W (cluster-wide budget, slack watts\n"
               "          redistributed per epoch) --cap-epoch-us US\n"
               "  gen:    --out FILE          replay: --trace FILE [--managed]\n"
               "  grid:   --out FILE.csv|.json  (full paper evaluation grid)\n"
               "          --stressors (amr/ml_train/bursty ablation grid)\n"
               "  grid/campaign: --sched-profile [FILE.json] (work-stealing\n"
               "          engine profile: per-worker steals/idle, per-task\n"
               "          submit/ready/start/finish timeline)\n"
               "  campaign: JSONL experiment requests in, one result row per\n"
               "          line out, in request order; shared traces are\n"
               "          deduplicated while in flight\n"
               "          --in FILE.jsonl (default stdin) --out FILE.jsonl\n"
               "          (default stdout)\n"
               "  telemetry (run/replay/grid): --metrics-out FILE.json\n"
               "          --timeline-out FILE.prv (managed power-state view)\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  const Args args = parse(argc, argv, 2);
  try {
    if (cmd == "apps") return cmd_apps();
    if (cmd == "gen") return cmd_gen(args);
    if (cmd == "replay") return cmd_replay(args);
    if (cmd == "run") return cmd_run(args);
    if (cmd == "sweep") return cmd_sweep(args);
    if (cmd == "grid") return cmd_grid(args);
    if (cmd == "campaign") return cmd_campaign(args);
    if (cmd == "inspect") return cmd_inspect(args);
    if (cmd == "stats") return cmd_stats(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
