// fuzz_replay — randomized differential + metamorphic test driver (check/).
//
// Per seed, eight independent phases:
//
//  Phase A (PPA differential oracle): generate a synthetic closed-gram
//  stream (GramStreamGenerator) and feed the identical stream to both PPA
//  implementations — PatternDetector (periodicity formulation) and PaperPpa
//  (the paper's literal Algorithm 2). On noise-free periodic streams both
//  must detect, the detected patterns must be cyclic rotations of the
//  stream's reduced period, and PatternDetector must fire no later than
//  PaperPpa (its documented one-appearance-earlier timing). Noisy streams
//  are fed for crash/invariant coverage only — the oracle contract does not
//  constrain them (DESIGN.md §8).
//
//  Phase B (replay metamorphic): generate a random deadlock-free MPI trace
//  (generate_trace), replay it baseline and managed, and assert:
//    * the full post-run invariant audit passes on both runs
//      (audit_replay: drain conservation, link schedules, energy closure)
//    * per-switch savings lie in [0, 100]%
//    * managed execution time >= baseline (deterministic routing — see
//      DESIGN.md §8 for why this requires the dmodk strategy)
//    * telemetry tier (obs/): the collected ReplayMetrics snapshot passes
//      validate_metrics (ordered event logs, residency partition, counter
//      conservation), its residencies match IbLink::residency() exactly and
//      its energies are bit-equal to the auditor's integration
//    * re-running both legs concurrently on a ThreadPool reproduces the
//      serial results — and the serial telemetry snapshots — bit-for-bit
//      (the DESIGN.md §7 determinism contract)
//
//  Phase C (trunk power tier): replay a random trace under every routing
//  strategy x trunk sleep policy combination (DESIGN.md §10) and assert the
//  whole-fabric contracts: all 504 link schedules audit clean, trunk
//  telemetry rows match the live links bit-for-bit, sleeping trunks only
//  save energy (managed <= always-on bound, savings in [0, 100]%), wake
//  penalties only delay execution under deterministic routing, and the
//  randomized leg reproduces itself bit-identically.
//
//  Phase D (pdes tier): replay a random multi-leaf trace serially and with
//  shards in {2, 4, 8} (DESIGN.md §11). Every sharded run must be
//  bit-identical to the serial one: execution time, per-rank finish times,
//  message/event counts, drain statistics, and the full telemetry snapshot
//  (per-link residencies and energies — i.e. the complete reservation
//  history of all 504 links), with the post-run audit clean in each run.
//
//  Phase E (contention tier, DESIGN.md §12): the contention-accurate
//  per-hop reservation discipline. A randomized zero-load token ring must
//  be bit-identical between the legacy and contention disciplines
//  (contention only ever changes queueing). A random contended trace must
//  pass the hop-conservation audit (check/hop_audit.hpp: per-message
//  delivery decomposition, per-channel FIFO non-overlap, payload
//  conservation against the split-energy model) and stay bit-identical
//  across shard counts {2, 4, 8}. A sound single-FIFO-stage probe asserts
//  queueing monotonicity: adding a background flow never makes any
//  existing flow finish earlier.
//
//  Phase F (scale-topology tier): metamorphic topology scaling. Under
//  dmodk, widening a tree from w2 to 2*w2 trunks per leaf refines every
//  trunk class, so a feed-forward workload finishes pointwise no later.
//  Every 8th seed additionally replays a 512-rank 3-level XGFT(3; 8,8,8;
//  1,4,2) under all three routing strategies, contention on, with the full
//  audit stack and shard bit-identity. Seeds == 4 (mod 8) instead run the
//  stressor-at-scale leg: one irregular predictor-family workload
//  (amr/ml_train/bursty) at 512 ranks on the same 3-level tree, managed
//  through a rotated predictor kind, full audit + shard bit-identity
//  (ROADMAP predictor follow-on (d)).
//
//  Phase G (predictor tier, DESIGN.md §13): the pluggable idle-predictor
//  family. Baseline call timelines drive four oracles: (a) a per-predictor
//  soundness check — every issued request is at least the minimum low-power
//  duration, respects the Alg. 3 safety margin against its own prediction,
//  and never intrudes on a correctly-predicted gap; (b) a bit-identity
//  differential — the agent with the default PPA predictor must reproduce
//  the pre-interface monolithic loop (reimplemented inline from the core
//  primitives) counter-for-counter and request-for-request; (c) a
//  guard-dominance metamorphic check per predictor kind — the guarded
//  request stream is a subsequence of the unguarded one, every suppressed
//  request is accounted, and mispredict wakes never increase; (d) closed-
//  loop managed replays per predictor kind, which must audit clean and obey
//  the phase-B orderings.
//
//  Phase H (host co-management tier, DESIGN.md §15): the per-rank host
//  power model and cluster power cap. Per seed: (a) a countdown-managed
//  replay (capped on most seeds, cap drawn between fleet floor and flat
//  out) must pass the full invariant audit, the system-energy closure
//  (links + hosts vs the auditor's independent integrations), and — when
//  capped — the cap-respected invariant at every breakpoint of the merged
//  host timeline; (b) a disabled host config, even with scrambled inert
//  fields, must leave the default JSON exports byte-identical and free of
//  host columns; (c) sharded runs (2, 4) with host + cap must stay
//  bit-identical to the serial leg and audit clean under the per-shard
//  allocation cache.
//
// Exit status 0 with a one-line summary when every seed passes; on the
// first failure, prints the seed and violation and exits 1.
//
// Usage: fuzz_replay [--seeds N] [--start-seed S] [--verbose]
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "check/hop_audit.hpp"
#include "check/invariant_auditor.hpp"
#include "check/trace_gen.hpp"
#include "core/idle_predictor.hpp"
#include "core/pmpi_agent.hpp"
#include "core/ppa.hpp"
#include "core/ppa_paper.hpp"
#include "obs/collect.hpp"
#include "obs/exporters.hpp"
#include "power/power_model.hpp"
#include "sim/replay.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "workloads/app_model.hpp"

namespace {

using namespace ibpower;

bool g_verbose = false;

struct Failure {
  std::uint64_t seed{0};
  std::string phase;
  std::string message;
};

// --- Phase A: PPA differential -------------------------------------------

/// Minimal period of the infinite repetition of `unit` (divides its size).
std::size_t minimal_period(const std::vector<GramId>& unit) {
  const std::size_t n = unit.size();
  for (std::size_t p = 1; p < n; ++p) {
    bool ok = true;
    for (std::size_t i = 0; i < n && ok; ++i) {
      ok = unit[i] == unit[(i + p) % n];
    }
    if (ok) return p;
  }
  return n;
}

bool cyclic_equal(const std::vector<GramId>& a, const std::vector<GramId>& b) {
  if (a.size() != b.size()) return false;
  const std::size_t n = a.size();
  if (n == 0) return true;
  for (std::size_t shift = 0; shift < n; ++shift) {
    bool ok = true;
    for (std::size_t i = 0; i < n && ok; ++i) {
      ok = a[i] == b[(i + shift) % n];
    }
    if (ok) return true;
  }
  return false;
}

/// The paper's stated detection policy, checked directly against the
/// stream: `pattern` appears (at least) three times back-to-back somewhere
/// in `ids`.
bool appears_thrice_consecutively(const std::vector<GramId>& ids,
                                  const std::vector<GramId>& pattern) {
  const std::size_t len = pattern.size();
  if (len == 0 || ids.size() < 3 * len) return false;
  for (std::size_t q = 0; q + 3 * len <= ids.size(); ++q) {
    bool ok = true;
    for (std::size_t i = 0; i < 3 * len && ok; ++i) {
      ok = ids[q + i] == pattern[i % len];
    }
    if (ok) return true;
  }
  return false;
}

std::string gram_seq_string(const GramInterner& interner,
                            const std::vector<GramId>& grams) {
  std::string out;
  for (std::size_t i = 0; i < grams.size(); ++i) {
    if (i) out += " | ";
    out += interner.to_string(grams[i]);
  }
  return out;
}

std::optional<Failure> run_ppa_differential(std::uint64_t seed, Rng& rng) {
  GramStreamConfig gcfg;
  gcfg.seed = seed ^ 0xa5a5a5a5a5a5a5a5ULL;
  gcfg.vocab = static_cast<int>(rng.uniform_int(2, 6));
  gcfg.period_len = static_cast<int>(rng.uniform_int(2, 8));
  gcfg.distinct_period = rng.bernoulli(0.5);
  if (gcfg.distinct_period) gcfg.vocab = std::max(gcfg.vocab, gcfg.period_len);
  gcfg.periods = 20;
  gcfg.noise_prob = rng.bernoulli(0.25) ? 0.1 : 0.0;
  gcfg.idle_jitter_sigma = rng.bernoulli(0.5) ? 0.3 : 0.0;
  const GramStreamGenerator gen(gcfg);

  PpaConfig ppa;
  ppa.max_pattern_grams = std::max(32, 2 * gcfg.period_len + 2);

  PatternDetector detector(ppa, &gen.interner());
  PaperPpa paper(ppa, &gen.interner());

  std::optional<PatternId> det_pattern;
  std::size_t det_pos = 0;
  std::optional<std::string> paper_key;
  std::size_t paper_pos = 0;
  for (const ClosedGram& g : gen.grams()) {
    if (const auto id = detector.observe(g); id && !det_pattern) {
      det_pattern = id;
      det_pos = g.position;
    }
    if (const auto key = paper.on_event(g); key && !paper_key) {
      paper_key = key;
      paper_pos = g.position;
    }
  }

  const auto fail = [&](std::string msg) {
    return Failure{seed, "ppa-differential", std::move(msg)};
  };

  const bool periodic = gcfg.noise_prob == 0.0 || !gen.noisy();
  if (!periodic) return std::nullopt;  // noisy: crash coverage only

  if (!det_pattern) {
    return fail("PatternDetector found no pattern in a periodic stream of " +
                std::to_string(gen.grams().size()) + " grams");
  }

  std::vector<GramId> ids;
  ids.reserve(gen.grams().size());
  for (const ClosedGram& g : gen.grams()) ids.push_back(g.id);

  // Soundness: whatever either detector fires must genuinely satisfy the
  // paper's policy — three back-to-back appearances somewhere in the
  // stream. (A short pattern recurring *inside* a longer period, e.g. the
  // 2-0-2-0-2-0 stretch of the period 0-2-0-1-2-0-2, is a legitimate early
  // detection, so content equality with the generator's period is only
  // asserted on duplicate-free periods below.)
  const std::vector<GramId>& det_grams =
      detector.patterns()[*det_pattern].grams;
  if (!appears_thrice_consecutively(ids, det_grams)) {
    return fail("PatternDetector pattern [" +
                gram_seq_string(gen.interner(), det_grams) +
                "] never appears three times consecutively in the stream");
  }
  const PaperPpa::PatternEntry* entry = nullptr;
  if (paper_key) {
    entry = paper.find(*paper_key);
    if (entry == nullptr) {
      return fail("PaperPpa predicted key '" + *paper_key +
                  "' missing from its own pattern list");
    }
    if (!appears_thrice_consecutively(ids, entry->grams)) {
      return fail("PaperPpa pattern [" +
                  gram_seq_string(gen.interner(), entry->grams) +
                  "] never appears three times consecutively in the stream");
    }
  }

  // Expected content: the reduced period (min length 2 — patterns start at
  // bi-grams, so a period-1 stream is detected as a doubled gram).
  const std::size_t m = minimal_period(gen.period());
  std::vector<GramId> expected;
  if (m == 1) {
    expected = {gen.period()[0], gen.period()[0]};
  } else {
    expected.assign(gen.period().begin(),
                    gen.period().begin() + static_cast<std::ptrdiff_t>(m));
  }
  bool distinct = true;
  for (std::size_t i = 0; i < m && distinct; ++i) {
    for (std::size_t j = i + 1; j < m && distinct; ++j) {
      distinct = expected[i] != expected[j];
    }
  }

  // Identical-detection contract: when the reduced period is unambiguous —
  // a single repeated gram, or pairwise-distinct grams (so no gram recurs
  // at a non-period offset) — both detectors must fire, both patterns must
  // be rotations of the reduced period, and the periodicity formulation
  // must fire no later than literal Algorithm 2. Ambiguous periods void
  // the guarantee: a duplicated gram gives Algorithm 2's greedy grow step
  // conflicting anchors, and its checkO verification can thrash without
  // ever accumulating three consecutive repeats (DESIGN.md §8).
  const bool unambiguous = m == 1 || distinct;
  if (unambiguous) {
    if (!paper_key) {
      return fail(
          "PaperPpa found no pattern in a periodic stream of " +
          std::to_string(gen.grams().size()) +
          " grams with an unambiguous (duplicate-free) period [" +
          gram_seq_string(gen.interner(), expected) + "]");
    }
    if (!cyclic_equal(det_grams, expected)) {
      return fail("PatternDetector pattern [" +
                  gram_seq_string(gen.interner(), det_grams) +
                  "] is not a rotation of the stream period [" +
                  gram_seq_string(gen.interner(), expected) + "]");
    }
    if (!cyclic_equal(entry->grams, expected)) {
      return fail("PaperPpa pattern [" +
                  gram_seq_string(gen.interner(), entry->grams) +
                  "] is not a rotation of the stream period [" +
                  gram_seq_string(gen.interner(), expected) + "]");
    }
    if (det_pos > paper_pos) {
      return fail("PatternDetector fired at gram " + std::to_string(det_pos) +
                  ", later than PaperPpa at gram " +
                  std::to_string(paper_pos) +
                  " (contract: periodicity formulation fires no later)");
    }
  }
  if (g_verbose) {
    std::printf("  seed %" PRIu64 ": ppa ok (period %d, reduced %zu, %s, "
                "det@%zu paper@%s)\n",
                seed, gcfg.period_len, m,
                unambiguous ? "unambiguous" : "ambiguous", det_pos,
                paper_key ? std::to_string(paper_pos).c_str() : "-");
  }
  return std::nullopt;
}

// --- Phase B: replay metamorphic -----------------------------------------

struct LegOutcome {
  TimeNs exec{};
  std::uint64_t messages{0};
  double energy_joules{0.0};
  double savings_pct{0.0};
  std::string audit;
  obs::ReplayMetrics metrics;
  std::string telemetry;  // telemetry-tier violation, "" when clean
};

/// Telemetry tier: structural validation of the snapshot plus bit-equality
/// of its residencies and energies against the live link's accounting and
/// the auditor's independent integration.
std::string check_telemetry(const ReplayEngine& engine,
                            const obs::ReplayMetrics& metrics,
                            const PowerModelConfig& power, int nranks) {
  if (std::string err = obs::validate_metrics(metrics); !err.empty()) {
    return err;
  }
  if (metrics.links.size() != static_cast<std::size_t>(nranks)) {
    return "snapshot covers " + std::to_string(metrics.links.size()) +
           " links, expected " + std::to_string(nranks);
  }
  for (const obs::LinkMetrics& lm : metrics.links) {
    const IbLink& link =
        engine.fabric().link(engine.fabric().topology().node_uplink(lm.link));
    for (const LinkPowerMode mode :
         {LinkPowerMode::FullPower, LinkPowerMode::LowPower,
          LinkPowerMode::Transition}) {
      const TimeNs ours = lm.residency[static_cast<std::size_t>(mode)];
      const TimeNs theirs = link.residency(mode);
      if (ours != theirs) {
        return "link " + std::to_string(lm.link) + " telemetry residency[" +
               link_mode_name(mode) + "] = " + std::to_string(ours.ns) +
               " ns but IbLink::residency gives " +
               std::to_string(theirs.ns) + " ns";
      }
    }
    const double audited = integrate_link_energy(link, power);
    if (std::memcmp(&lm.energy_joules, &audited, sizeof(double)) != 0) {
      return "link " + std::to_string(lm.link) +
             " telemetry energy is not bit-equal to the auditor's "
             "integration";
    }
  }
  return {};
}

LegOutcome run_leg(const Trace& trace, const ReplayOptions& opt,
                   const PowerModelConfig& power, int nranks) {
  ReplayEngine engine(&trace, opt);
  const ReplayResult rr = engine.run();
  LegOutcome out;
  out.exec = rr.exec_time;
  out.messages = rr.messages_sent;
  std::vector<const IbLink*> ports;
  ports.reserve(static_cast<std::size_t>(nranks));
  for (NodeId n = 0; n < nranks; ++n) {
    ports.push_back(
        &engine.fabric().link(engine.fabric().topology().node_uplink(n)));
  }
  const FleetPowerSummary fleet = aggregate_power(ports, power);
  out.energy_joules = fleet.total_energy_joules;
  out.savings_pct = fleet.switch_savings_pct;
  out.audit = audit_replay(engine, power);
  out.metrics = obs::collect_replay_metrics(engine, rr, power);
  out.telemetry = check_telemetry(engine, out.metrics, power, nranks);
  return out;
}

std::optional<Failure> run_replay_metamorphic(std::uint64_t seed, Rng& rng) {
  SyntheticTraceConfig tcfg;
  tcfg.seed = seed ^ 0x5c5c5c5c5c5c5c5cULL;
  tcfg.nranks = static_cast<Rank>(rng.uniform_int(2, 24));
  tcfg.phases_per_iteration = static_cast<int>(rng.uniform_int(2, 5));
  tcfg.iterations = static_cast<int>(rng.uniform_int(6, 12));
  tcfg.compute_median =
      TimeNs::from_us(rng.uniform_int(std::int64_t{100}, std::int64_t{500}));
  tcfg.compute_jitter_sigma = rng.uniform(0.05, 0.3);
  tcfg.noise_prob = rng.bernoulli(0.3) ? 0.15 : 0.0;

  const auto fail = [&](std::string msg) {
    return Failure{seed, "replay-metamorphic", std::move(msg)};
  };

  const Trace trace = generate_trace(tcfg);
  if (const std::string err = trace.validate(); !err.empty()) {
    return fail("generated trace invalid: " + err);
  }

  PpaConfig ppa;
  ppa.displacement_factor = 0.01 * static_cast<double>(rng.uniform_int(1, 10));

  ReplayOptions base;
  // Deterministic routing: the managed >= baseline time-ordering invariant
  // only holds when both legs route identically (DESIGN.md §8).
  base.fabric.routing.strategy = RoutingStrategy::Dmodk;
  base.fabric.link.t_react = ppa.t_react;
  base.fabric.link.t_deact = ppa.t_react;
  base.enable_power_management = false;
  base.record_call_timeline = true;

  ReplayOptions managed = base;
  managed.enable_power_management = true;
  managed.ppa = ppa;

  const PowerModelConfig power;
  const int nranks = tcfg.nranks;
  const LegOutcome b = run_leg(trace, base, power, nranks);
  if (!b.audit.empty()) return fail("baseline audit: " + b.audit);
  if (!b.telemetry.empty()) return fail("baseline telemetry: " + b.telemetry);
  const LegOutcome m = run_leg(trace, managed, power, nranks);
  if (!m.audit.empty()) return fail("managed audit: " + m.audit);
  if (!m.telemetry.empty()) return fail("managed telemetry: " + m.telemetry);

  if (m.exec < b.exec) {
    return fail("managed run finished earlier than baseline (" +
                std::to_string(m.exec.ns) + " ns < " +
                std::to_string(b.exec.ns) + " ns)");
  }
  if (m.messages != b.messages) {
    return fail("message counts differ between legs (" +
                std::to_string(m.messages) + " vs " +
                std::to_string(b.messages) + ")");
  }
  if (b.savings_pct != 0.0) {
    return fail("baseline run reports nonzero savings (" +
                std::to_string(b.savings_pct) + "%)");
  }
  if (m.savings_pct < 0.0 || m.savings_pct > 100.0) {
    return fail("managed savings " + std::to_string(m.savings_pct) +
                "% outside [0, 100]%");
  }

  // Serial == parallel: the two legs re-run concurrently must reproduce the
  // serial results bit-for-bit.
  ThreadPool pool(2);
  auto fb = pool.submit(
      [&] { return run_leg(trace, base, power, nranks); });
  auto fm = pool.submit(
      [&] { return run_leg(trace, managed, power, nranks); });
  const LegOutcome pb = fb.get();
  const LegOutcome pm = fm.get();
  const auto bits_equal = [](double x, double y) {
    return std::memcmp(&x, &y, sizeof(double)) == 0;
  };
  if (pb.exec != b.exec || pm.exec != m.exec ||
      !bits_equal(pb.energy_joules, b.energy_joules) ||
      !bits_equal(pm.energy_joules, m.energy_joules)) {
    return fail("parallel re-run diverged from the serial results");
  }
  if (pb.metrics != b.metrics || pm.metrics != m.metrics) {
    return fail("parallel re-run telemetry diverged from the serial "
                "snapshots");
  }

  if (g_verbose) {
    std::printf("  seed %" PRIu64 ": replay ok (ranks %d, baseline %.3f ms, "
                "managed %.3f ms, savings %.1f%%)\n",
                seed, nranks, b.exec.ms(), m.exec.ms(), m.savings_pct);
  }
  return std::nullopt;
}

// --- Phase C: trunk power tier -------------------------------------------

/// Whole-fabric telemetry check: the trunk rows of the snapshot must carry
/// the same residencies and bit-equal energies as the live links.
std::string check_trunk_telemetry(const ReplayEngine& engine,
                                  const obs::ReplayMetrics& metrics,
                                  const PowerModelConfig& power) {
  const auto& topo = engine.fabric().topology();
  const auto num_trunks =
      static_cast<std::size_t>(topo.num_links() - topo.num_nodes());
  if (metrics.trunks.size() != num_trunks) {
    return "snapshot covers " + std::to_string(metrics.trunks.size()) +
           " trunks, expected " + std::to_string(num_trunks);
  }
  for (const obs::LinkMetrics& lm : metrics.trunks) {
    const IbLink& link = engine.fabric().link(lm.link);
    for (const LinkPowerMode mode :
         {LinkPowerMode::FullPower, LinkPowerMode::LowPower,
          LinkPowerMode::Transition}) {
      const TimeNs ours = lm.residency[static_cast<std::size_t>(mode)];
      if (ours != link.residency(mode)) {
        return "trunk " + std::to_string(lm.link) + " telemetry residency[" +
               link_mode_name(mode) + "] diverges from IbLink::residency";
      }
    }
    const double audited = integrate_link_energy(link, power);
    if (std::memcmp(&lm.energy_joules, &audited, sizeof(double)) != 0) {
      return "trunk " + std::to_string(lm.link) +
             " telemetry energy is not bit-equal to the auditor's "
             "integration";
    }
  }
  return {};
}

struct TrunkLegOutcome {
  TimeNs exec{};
  std::uint64_t messages{0};
  FleetPowerSummary fabric{};  // all links, uplinks + trunks
  TimeNs trunk_sleep{};
  std::string violation;  // audit/telemetry failure, "" when clean
};

TrunkLegOutcome run_trunk_leg(const Trace& trace, const ReplayOptions& opt,
                              const PowerModelConfig& power) {
  ReplayEngine engine(&trace, opt);
  const ReplayResult rr = engine.run();
  TrunkLegOutcome out;
  out.exec = rr.exec_time;
  out.messages = rr.messages_sent;
  const auto& topo = engine.fabric().topology();
  std::vector<const IbLink*> ports;
  ports.reserve(static_cast<std::size_t>(topo.num_links()));
  for (LinkId l = 0; l < topo.num_links(); ++l) {
    ports.push_back(&engine.fabric().link(l));
    if (!topo.is_node_link(l)) {
      out.trunk_sleep = out.trunk_sleep +
                        engine.fabric().link(l).residency(
                            LinkPowerMode::LowPower);
    }
  }
  out.fabric = aggregate_power(ports, power);
  out.violation = audit_replay(engine, power);
  if (out.violation.empty() && opt.fabric.trunk.kind != TrunkPolicyKind::Off) {
    const obs::ReplayMetrics metrics =
        obs::collect_replay_metrics(engine, rr, power);
    out.violation = obs::validate_metrics(metrics);
    if (out.violation.empty()) {
      out.violation = check_trunk_telemetry(engine, metrics, power);
    }
  }
  return out;
}

/// Trunk tier: every routing x sleep-policy combination must keep all 504
/// link schedules valid and the whole-fabric energy closure tight; trunk
/// sleeping only saves energy and — under deterministic routing — only
/// delays execution; the randomized leg is reproducible bit-for-bit.
std::optional<Failure> run_trunk_tier(std::uint64_t seed, Rng& rng) {
  SyntheticTraceConfig tcfg;
  tcfg.seed = seed ^ 0x9696969696969696ULL;
  tcfg.nranks = static_cast<Rank>(rng.uniform_int(2, 24));
  tcfg.phases_per_iteration = static_cast<int>(rng.uniform_int(2, 4));
  tcfg.iterations = static_cast<int>(rng.uniform_int(4, 8));
  tcfg.compute_median =
      TimeNs::from_us(rng.uniform_int(std::int64_t{100}, std::int64_t{500}));
  tcfg.compute_jitter_sigma = rng.uniform(0.05, 0.3);
  tcfg.noise_prob = rng.bernoulli(0.3) ? 0.15 : 0.0;
  const TimeNs idle_timeout =
      TimeNs::from_us(rng.uniform_int(std::int64_t{20}, std::int64_t{200}));

  const auto fail = [&](std::string msg) {
    return Failure{seed, "trunk-tier", std::move(msg)};
  };

  const Trace trace = generate_trace(tcfg);
  if (const std::string err = trace.validate(); !err.empty()) {
    return fail("generated trace invalid: " + err);
  }

  const PowerModelConfig power;
  ReplayOptions ref;
  ref.fabric.routing.strategy = RoutingStrategy::Dmodk;
  ref.enable_power_management = false;
  const TrunkLegOutcome dmodk_ref = run_trunk_leg(trace, ref, power);
  if (!dmodk_ref.violation.empty()) {
    return fail("dmodk reference leg: " + dmodk_ref.violation);
  }

  for (const RoutingStrategy routing :
       {RoutingStrategy::Random, RoutingStrategy::Dmodk,
        RoutingStrategy::Consolidate}) {
    for (const TrunkPolicyKind kind :
         {TrunkPolicyKind::Timeout, TrunkPolicyKind::MultiTimeout}) {
      ReplayOptions opt = ref;
      opt.fabric.routing.strategy = routing;
      opt.fabric.trunk.kind = kind;
      opt.fabric.trunk.idle_timeout = idle_timeout;
      const std::string leg = std::string(routing_strategy_name(routing)) +
                              "+" + trunk_policy_name(kind);
      const TrunkLegOutcome out = run_trunk_leg(trace, opt, power);
      if (!out.violation.empty()) {
        return fail(leg + ": " + out.violation);
      }
      if (out.messages != dmodk_ref.messages) {
        return fail(leg + ": message count " + std::to_string(out.messages) +
                    " differs from reference " +
                    std::to_string(dmodk_ref.messages));
      }
      if (out.trunk_sleep <= TimeNs::zero()) {
        return fail(leg + ": no trunk ever slept");
      }
      if (out.fabric.total_energy_joules >
          out.fabric.baseline_energy_joules) {
        return fail(leg + ": whole-fabric managed energy " +
                    std::to_string(out.fabric.total_energy_joules) +
                    " J exceeds the always-on bound " +
                    std::to_string(out.fabric.baseline_energy_joules) + " J");
      }
      if (out.fabric.switch_savings_pct < 0.0 ||
          out.fabric.switch_savings_pct > 100.0) {
        return fail(leg + ": fabric savings " +
                    std::to_string(out.fabric.switch_savings_pct) +
                    "% outside [0, 100]%");
      }
      if (routing == RoutingStrategy::Dmodk && out.exec < dmodk_ref.exec) {
        return fail(leg + ": execution " + std::to_string(out.exec.ns) +
                    " ns finished earlier than the always-on reference " +
                    std::to_string(dmodk_ref.exec.ns) +
                    " ns (wake penalties can only delay)");
      }
    }
  }

  // Reproducibility of the randomized leg: same options, fresh engine,
  // bit-identical outcome.
  ReplayOptions rnd = ref;
  rnd.fabric.routing.strategy = RoutingStrategy::Random;
  rnd.fabric.trunk.kind = TrunkPolicyKind::MultiTimeout;
  rnd.fabric.trunk.idle_timeout = idle_timeout;
  const TrunkLegOutcome r1 = run_trunk_leg(trace, rnd, power);
  const TrunkLegOutcome r2 = run_trunk_leg(trace, rnd, power);
  const auto bits_equal = [](double x, double y) {
    return std::memcmp(&x, &y, sizeof(double)) == 0;
  };
  if (r1.exec != r2.exec ||
      !bits_equal(r1.fabric.total_energy_joules,
                  r2.fabric.total_energy_joules) ||
      r1.trunk_sleep != r2.trunk_sleep) {
    return fail("random+multi-timeout re-run diverged from itself");
  }

  if (g_verbose) {
    std::printf("  seed %" PRIu64 ": trunk ok (ranks %d, timeout %" PRIi64
                " ns, fabric savings %.1f%%)\n",
                seed, tcfg.nranks, idle_timeout.ns,
                r1.fabric.switch_savings_pct);
  }
  return std::nullopt;
}

// --- Phase D: sharded-replay bit-identity tier ----------------------------

struct PdesLeg {
  TimeNs exec{};
  std::vector<TimeNs> finish;
  std::uint64_t messages{0};
  std::uint64_t events{0};
  ReplayDrainStats drain{};
  int shards_used{1};
  std::string audit;
  obs::ReplayMetrics metrics;
};

PdesLeg run_pdes_leg(const Trace& trace, ReplayOptions opt, int shards,
                     const PowerModelConfig& power) {
  opt.shards = shards;
  ReplayEngine engine(&trace, opt);
  const ReplayResult rr = engine.run();
  PdesLeg out;
  out.exec = rr.exec_time;
  out.finish = rr.rank_finish;
  out.messages = rr.messages_sent;
  out.events = rr.events_processed;
  out.drain = rr.drain;
  out.shards_used = rr.shards_used;
  out.audit = engine.audit_drain();
  out.metrics = obs::collect_replay_metrics(engine, rr, power);
  return out;
}

std::optional<Failure> run_pdes_tier(std::uint64_t seed, Rng& rng) {
  SyntheticTraceConfig tcfg;
  tcfg.seed = seed ^ 0x3c3c3c3c3c3c3c3cULL;
  // At least two leaf switches (18 nodes per leaf), so cross-shard traffic
  // actually happens; up to four leaves to exercise shard clamping.
  tcfg.nranks = static_cast<Rank>(rng.uniform_int(19, 64));
  tcfg.phases_per_iteration = static_cast<int>(rng.uniform_int(2, 4));
  tcfg.iterations = static_cast<int>(rng.uniform_int(3, 6));
  tcfg.compute_median =
      TimeNs::from_us(rng.uniform_int(std::int64_t{100}, std::int64_t{500}));
  tcfg.compute_jitter_sigma = rng.uniform(0.05, 0.3);
  tcfg.noise_prob = rng.bernoulli(0.3) ? 0.15 : 0.0;

  const auto fail = [&](std::string msg) {
    return Failure{seed, "pdes-tier", std::move(msg)};
  };

  const Trace trace = generate_trace(tcfg);
  if (const std::string err = trace.validate(); !err.empty()) {
    return fail("generated trace invalid: " + err);
  }

  ReplayOptions opt;
  // Rotate through the full option space: every routing strategy (the
  // per-source counter-hash makes Random deterministic too), managed and
  // baseline legs, and occasionally a trunk sleep policy.
  opt.fabric.routing.strategy =
      rng.bernoulli(0.5) ? RoutingStrategy::Dmodk
                         : (rng.bernoulli(0.5) ? RoutingStrategy::Random
                                               : RoutingStrategy::Consolidate);
  if (rng.bernoulli(0.3)) {
    opt.fabric.trunk.kind = TrunkPolicyKind::Timeout;
    opt.fabric.trunk.idle_timeout = TimeNs::from_us(std::int64_t{50});
  }
  if (rng.bernoulli(0.5)) {
    opt.enable_power_management = true;
    opt.ppa.displacement_factor =
        0.01 * static_cast<double>(rng.uniform_int(1, 10));
    opt.fabric.link.t_react = opt.ppa.t_react;
    opt.fabric.link.t_deact = opt.ppa.t_react;
  }

  const PowerModelConfig power;
  const PdesLeg serial = run_pdes_leg(trace, opt, 1, power);
  if (!serial.audit.empty()) return fail("serial audit: " + serial.audit);

  const int nleaves =
      (static_cast<int>(tcfg.nranks) + 17) / 18;  // ceil(nranks / m1)
  for (const int shards : {2, 4, 8}) {
    const PdesLeg sharded = run_pdes_leg(trace, opt, shards, power);
    const std::string leg = "shards=" + std::to_string(shards);
    if (!sharded.audit.empty()) {
      return fail(leg + " audit: " + sharded.audit);
    }
    if (sharded.shards_used != std::min(shards, nleaves)) {
      return fail(leg + " resolved to " +
                  std::to_string(sharded.shards_used) + " shard(s), expected " +
                  std::to_string(std::min(shards, nleaves)));
    }
    if (sharded.exec != serial.exec) {
      return fail(leg + " exec " + std::to_string(sharded.exec.ns) +
                  " ns != serial " + std::to_string(serial.exec.ns) + " ns");
    }
    if (sharded.finish != serial.finish) {
      return fail(leg + " per-rank finish times diverged from serial");
    }
    if (sharded.messages != serial.messages ||
        sharded.events != serial.events) {
      return fail(leg + " message/event counts diverged from serial (" +
                  std::to_string(sharded.messages) + "/" +
                  std::to_string(sharded.events) + " vs " +
                  std::to_string(serial.messages) + "/" +
                  std::to_string(serial.events) + ")");
    }
    if (!(sharded.drain == serial.drain)) {
      return fail(leg + " drain statistics diverged from serial");
    }
    if (sharded.metrics != serial.metrics) {
      return fail(leg + " telemetry snapshot (link residencies/energies) "
                        "diverged from serial");
    }
  }

  if (g_verbose) {
    std::printf("  seed %" PRIu64 ": pdes ok (ranks %d, %d leaves, "
                "%s%s, exec %.3f ms)\n",
                seed, tcfg.nranks, nleaves,
                routing_strategy_name(opt.fabric.routing.strategy),
                opt.enable_power_management ? "+managed" : "", serial.exec.ms());
  }
  return std::nullopt;
}

// --- Phase E: contention tier ---------------------------------------------

/// Cross-leaf token ring over `n` ranks (2 nodes per leaf; even ranks are
/// visited before odd ranks, so consecutive stops always sit on different
/// leaves) with per-hop byte counts drawn from `rng`. Exactly one message
/// is ever in flight — the zero-load oracle for the contention discipline.
Trace contention_token_ring(int n, Rng& rng) {
  Trace trace("contention-ring", static_cast<Rank>(n));
  std::vector<Rank> order;
  for (Rank r = 0; r < n; r += 2) order.push_back(r);
  for (Rank r = 1; r < n; r += 2) order.push_back(r);
  std::vector<Bytes> bytes(order.size());
  for (Bytes& b : bytes) {
    // Mix eager and rendezvous sizes (threshold 32 KiB).
    b = Bytes{rng.uniform_int(std::int64_t{1}, std::int64_t{100000})};
  }
  for (std::size_t i = 0; i < order.size(); ++i) {
    const std::size_t prev_i = (i + order.size() - 1) % order.size();
    const Rank self = order[i];
    const Rank next = order[(i + 1) % order.size()];
    const Rank prev = order[prev_i];
    if (i == 0) {
      trace.push(self, SendRecord{next, bytes[i], 0});
      trace.push(self, RecvRecord{prev, bytes[prev_i], 0});
    } else {
      trace.push(self, RecvRecord{prev, bytes[prev_i], 0});
      trace.push(self, SendRecord{next, bytes[i], 0});
    }
  }
  return trace;
}

/// run_pdes_leg plus the contention-mode audit stack: an optional hop log
/// (single-shard only) fed through the hop-conservation auditor, and the
/// full replay invariant audit (drain conservation, link schedules, energy
/// closure including the split dynamic component).
PdesLeg run_contention_leg(const Trace& trace, ReplayOptions opt, int shards,
                           const PowerModelConfig& power,
                           std::vector<HopRecord>* log,
                           std::string* hop_audit,
                           std::string* replay_audit) {
  opt.shards = shards;
  ReplayEngine engine(&trace, opt);
  if (log != nullptr) engine.fabric().set_hop_log(log);
  const ReplayResult rr = engine.run();
  PdesLeg out;
  out.exec = rr.exec_time;
  out.finish = rr.rank_finish;
  out.messages = rr.messages_sent;
  out.events = rr.events_processed;
  out.drain = rr.drain;
  out.shards_used = rr.shards_used;
  out.audit = engine.audit_drain();
  if (replay_audit != nullptr) *replay_audit = audit_replay(engine, power);
  if (hop_audit != nullptr && log != nullptr) {
    *hop_audit = audit_hop_log(engine.fabric(), *log);
  }
  out.metrics = obs::collect_replay_metrics(engine, rr, power);
  return out;
}

std::optional<Failure> run_contention_tier(std::uint64_t seed, Rng& rng) {
  const auto fail = [&](std::string msg) {
    return Failure{seed, "contention-tier", std::move(msg)};
  };

  PowerModelConfig power;
  power.split_energy = true;  // exercise the static/dynamic decomposition

  // (a) Zero-load oracle: with exactly one message in flight the per-hop
  // arrival-order discipline must reproduce legacy timings bit for bit —
  // everything observable except the DES event count.
  XgftParams ring_xgft;
  int nring = 0;
  if (rng.bernoulli(0.25)) {
    const int groups = static_cast<int>(rng.uniform_int(2, 3));
    ring_xgft = XgftParams{2, 2, 1, 2, groups, 2};
    nring = 4 * groups;
  } else {
    const int nleaves = static_cast<int>(rng.uniform_int(3, 6));
    const int w2 = static_cast<int>(rng.uniform_int(1, 3));
    ring_xgft = XgftParams{2, nleaves, 1, w2};
    nring = 2 * nleaves;
  }
  const Trace ring = contention_token_ring(nring, rng);
  ReplayOptions ring_opt;
  ring_opt.fabric.xgft = ring_xgft;
  ring_opt.fabric.routing.strategy = RoutingStrategy::Dmodk;
  if (rng.bernoulli(0.3)) {
    ring_opt.fabric.trunk.kind = TrunkPolicyKind::Timeout;
    ring_opt.fabric.trunk.idle_timeout = TimeNs::from_us(std::int64_t{5});
  }
  const PdesLeg ring_off = run_pdes_leg(ring, ring_opt, 1, power);
  ring_opt.fabric.contention = true;
  const PdesLeg ring_on = run_pdes_leg(ring, ring_opt, 1, power);
  if (!ring_off.audit.empty() || !ring_on.audit.empty()) {
    return fail("ring audit: " + ring_off.audit + ring_on.audit);
  }
  if (ring_on.exec != ring_off.exec || ring_on.finish != ring_off.finish ||
      ring_on.messages != ring_off.messages ||
      !(ring_on.drain == ring_off.drain)) {
    return fail("zero-load ring timings diverge between disciplines (exec " +
                std::to_string(ring_on.exec.ns) + " ns vs " +
                std::to_string(ring_off.exec.ns) + " ns)");
  }
  obs::ReplayMetrics ring_a = ring_off.metrics;
  obs::ReplayMetrics ring_b = ring_on.metrics;
  ring_a.events_processed = 0;
  ring_b.events_processed = 0;
  if (!(ring_a == ring_b)) {
    return fail("zero-load ring telemetry diverges between disciplines");
  }

  // (b) Queueing monotonicity. Single-FIFO-stage construction: all senders
  // sit on leaf 0 and target the same trunk class c (dst % w2 == c) on
  // *distinct* destination leaves, so the leaf-0 up-trunk is the only
  // shared link. Arrival times there are fixed by each sender's private
  // uplink; a FIFO with fixed arrivals can only delay the existing flows
  // when one more is inserted. Trunk sleep and power management stay off —
  // wake-penalty absorption could otherwise let a background flow speed a
  // probe up (DESIGN.md §12).
  const int mono_w2 = static_cast<int>(rng.uniform_int(2, 4));
  const int mono_m1 = static_cast<int>(rng.uniform_int(4, 7));
  const int nsenders = static_cast<int>(rng.uniform_int(2, 3));
  const int mono_c = static_cast<int>(rng.uniform_int(0, mono_w2 - 1));
  const int mono_leaves = nsenders + 2;
  const int mono_ranks = mono_m1 * mono_leaves;
  std::vector<TimeNs> mono_start(static_cast<std::size_t>(nsenders) + 1);
  std::vector<Bytes> mono_bytes(static_cast<std::size_t>(nsenders) + 1);
  std::vector<Rank> mono_dst(static_cast<std::size_t>(nsenders) + 1);
  for (std::size_t j = 0; j <= static_cast<std::size_t>(nsenders); ++j) {
    mono_start[j] = TimeNs::from_us(rng.uniform_int(std::int64_t{0},
                                                    std::int64_t{50}));
    mono_bytes[j] =
        Bytes{rng.uniform_int(std::int64_t{1}, std::int64_t{30000})};
    const int base_node = (1 + static_cast<int>(j)) * mono_m1;
    for (int node = base_node; node < base_node + mono_m1; ++node) {
      if (node % mono_w2 == mono_c) {
        mono_dst[j] = static_cast<Rank>(node);
        break;
      }
    }
  }
  const auto mono_trace = [&](int count) {
    Trace t("monotonic-probe", static_cast<Rank>(mono_ranks));
    for (std::size_t j = 0; j < static_cast<std::size_t>(count); ++j) {
      t.push(static_cast<Rank>(j), ComputeRecord{mono_start[j]});
      t.push(static_cast<Rank>(j), SendRecord{mono_dst[j], mono_bytes[j], 0});
      t.push(mono_dst[j], RecvRecord{static_cast<Rank>(j), mono_bytes[j], 0});
    }
    return t;
  };
  ReplayOptions mono_opt;
  mono_opt.fabric.xgft = XgftParams{mono_m1, mono_leaves, 1, mono_w2};
  mono_opt.fabric.routing.strategy = RoutingStrategy::Dmodk;
  mono_opt.fabric.contention = true;
  const PdesLeg base = run_pdes_leg(mono_trace(nsenders), mono_opt, 1, power);
  const PdesLeg more =
      run_pdes_leg(mono_trace(nsenders + 1), mono_opt, 1, power);
  if (!base.audit.empty() || !more.audit.empty()) {
    return fail("monotonicity audit: " + base.audit + more.audit);
  }
  for (std::size_t r = 0; r < static_cast<std::size_t>(mono_ranks); ++r) {
    if (more.finish[r] < base.finish[r]) {
      return fail("adding a background flow made rank " + std::to_string(r) +
                  " finish earlier (" + std::to_string(more.finish[r].ns) +
                  " ns < " + std::to_string(base.finish[r].ns) + " ns)");
    }
  }

  // (c) Contended random trace: hop-conservation audit + energy closure on
  // the serial leg, then bit-identity across shard counts.
  SyntheticTraceConfig tcfg;
  tcfg.seed = seed ^ 0x7e7e7e7e7e7e7e7eULL;
  tcfg.nranks = static_cast<Rank>(rng.uniform_int(19, 48));
  tcfg.phases_per_iteration = static_cast<int>(rng.uniform_int(2, 3));
  tcfg.iterations = static_cast<int>(rng.uniform_int(2, 4));
  tcfg.compute_median =
      TimeNs::from_us(rng.uniform_int(std::int64_t{50}, std::int64_t{300}));
  tcfg.compute_jitter_sigma = rng.uniform(0.05, 0.3);
  tcfg.noise_prob = rng.bernoulli(0.3) ? 0.15 : 0.0;
  const Trace trace = generate_trace(tcfg);
  if (const std::string err = trace.validate(); !err.empty()) {
    return fail("generated trace invalid: " + err);
  }

  ReplayOptions opt;
  opt.fabric.contention = true;
  opt.fabric.routing.strategy =
      rng.bernoulli(0.5) ? RoutingStrategy::Dmodk
                         : (rng.bernoulli(0.5) ? RoutingStrategy::Random
                                               : RoutingStrategy::Consolidate);
  if (rng.bernoulli(0.3)) {
    opt.fabric.trunk.kind = TrunkPolicyKind::Timeout;
    opt.fabric.trunk.idle_timeout = TimeNs::from_us(std::int64_t{50});
  }
  if (rng.bernoulli(0.5)) {
    opt.enable_power_management = true;
    opt.ppa.displacement_factor =
        0.01 * static_cast<double>(rng.uniform_int(1, 10));
    opt.fabric.link.t_react = opt.ppa.t_react;
    opt.fabric.link.t_deact = opt.ppa.t_react;
  }

  std::vector<HopRecord> log;
  std::string hop_err;
  std::string replay_err;
  const PdesLeg serial =
      run_contention_leg(trace, opt, 1, power, &log, &hop_err, &replay_err);
  if (!serial.audit.empty()) return fail("serial audit: " + serial.audit);
  if (!replay_err.empty()) return fail("invariant audit: " + replay_err);
  if (!hop_err.empty()) return fail("hop audit: " + hop_err);
  // A trace can come out collective-only; the hop log covers unicasts.
  if (serial.messages > 0 && log.empty()) {
    return fail("contended run sent " + std::to_string(serial.messages) +
                " message(s) but logged no hop reservations");
  }

  const int nleaves = (static_cast<int>(tcfg.nranks) + 17) / 18;
  for (const int shards : {2, 4, 8}) {
    const PdesLeg sharded =
        run_contention_leg(trace, opt, shards, power, nullptr, nullptr,
                           nullptr);
    const std::string leg = "shards=" + std::to_string(shards);
    if (!sharded.audit.empty()) return fail(leg + " audit: " + sharded.audit);
    if (sharded.shards_used != std::min(shards, nleaves)) {
      return fail(leg + " resolved to " + std::to_string(sharded.shards_used) +
                  " shard(s), expected " +
                  std::to_string(std::min(shards, nleaves)));
    }
    if (sharded.exec != serial.exec || sharded.finish != serial.finish ||
        sharded.messages != serial.messages ||
        sharded.events != serial.events ||
        !(sharded.drain == serial.drain)) {
      return fail(leg + " diverged from the serial contended run");
    }
    if (sharded.metrics != serial.metrics) {
      return fail(leg + " telemetry snapshot diverged from serial");
    }
  }

  if (g_verbose) {
    std::printf("  seed %" PRIu64 ": contention ok (ring %d ranks, probe "
                "%d+1 senders, trace %d ranks, %zu hop records)\n",
                seed, nring, nsenders, tcfg.nranks, log.size());
  }
  return std::nullopt;
}

// --- Phase F: scale-topology tier -----------------------------------------

/// Stressor-at-scale leg (every 8th seed, offset 4): one irregular
/// predictor-family workload (amr/ml_train/bursty, rotated by seed) at 512
/// ranks on the 3-level XGFT(3; 8,8,8; 1,4,2) — the tree `grid --stressors`
/// auto-selects for its 512-rank cells. The managed replay (predictor kind
/// rotated across the family) must pass the full invariant audit and stay
/// bit-identical across shard counts, closing ROADMAP predictor follow-on
/// (d): the irregular workloads exercised at scale through the pluggable-
/// predictor path.
std::optional<Failure> run_stressor_scale_leg(std::uint64_t seed, Rng& rng) {
  const auto fail = [&](std::string msg) {
    return Failure{seed, "scale-tier", std::move(msg)};
  };

  PowerModelConfig power;
  power.split_energy = true;

  const std::vector<std::string> apps = stressor_app_names();
  const std::string app = apps[(seed / 8) % apps.size()];
  WorkloadParams params;
  params.nranks = 512;
  params.iterations = 2;
  params.seed = seed ^ 0x5d5d5d5d5d5d5d5dULL;
  const Trace trace = make_app(app)->generate(params);
  if (const std::string err = trace.validate(); !err.empty()) {
    return fail(app + " 512-rank trace invalid: " + err);
  }

  ReplayOptions opt;
  opt.fabric.xgft = XgftParams{8, 8, 1, 4, 8, 2};
  opt.fabric.routing.strategy = RoutingStrategy::Dmodk;
  opt.fabric.contention = rng.bernoulli(0.5);
  opt.enable_power_management = true;
  opt.ppa.displacement_factor =
      0.01 * static_cast<double>(rng.uniform_int(1, 10));
  opt.ppa.predictor.kind =
      seed % 3 == 0 ? PredictorKind::Ppa
                    : (seed % 3 == 1 ? PredictorKind::MultiTimeout
                                     : PredictorKind::Histogram);
  opt.fabric.link.t_react = opt.ppa.t_react;
  opt.fabric.link.t_deact = opt.ppa.t_react;

  std::string replay_err;
  const PdesLeg serial =
      run_contention_leg(trace, opt, 1, power, nullptr, nullptr, &replay_err);
  if (!serial.audit.empty()) {
    return fail(app + " 512 drain audit: " + serial.audit);
  }
  if (!replay_err.empty()) {
    return fail(app + " 512 invariant audit: " + replay_err);
  }
  for (const int shards : {4, 8}) {
    const PdesLeg sharded = run_contention_leg(trace, opt, shards, power,
                                               nullptr, nullptr, nullptr);
    const std::string leg = app + " 512 shards=" + std::to_string(shards);
    if (!sharded.audit.empty()) return fail(leg + " audit: " + sharded.audit);
    if (sharded.exec != serial.exec || sharded.finish != serial.finish ||
        sharded.messages != serial.messages ||
        sharded.events != serial.events ||
        !(sharded.drain == serial.drain) ||
        sharded.metrics != serial.metrics) {
      return fail(leg + " diverged from the serial run");
    }
  }

  if (g_verbose) {
    std::printf("  seed %" PRIu64 ": scale ok (stressor %s @512, %s, exec "
                "%.3f ms)\n",
                seed, app.c_str(),
                predictor_name(opt.ppa.predictor.kind), serial.exec.ms());
  }
  return std::nullopt;
}

std::optional<Failure> run_scale_topology_tier(std::uint64_t seed, Rng& rng) {
  const auto fail = [&](std::string msg) {
    return Failure{seed, "scale-tier", std::move(msg)};
  };

  PowerModelConfig power;
  power.split_energy = true;

  // (a) More-trunks metamorphic law. Feed-forward workload: nsend eager
  // isends per leaf, destinations chosen injectively with consecutive node
  // offsets per destination leaf (distinct mod w2, hence also distinct mod
  // 2*w2), so every uplink and every down-trunk carries exactly one
  // message and only up-trunks are contended. Arrival times at the
  // up-trunks are fixed by the private uplinks; widening w2 -> 2*w2
  // refines every dmodk trunk class (x == y mod 2*w2 implies x == y mod
  // w2), shrinking each message's competitor set. A FIFO with fixed
  // arrivals and fewer competitors never starts later, so every rank must
  // finish pointwise no later on the wider tree.
  const int w2 = static_cast<int>(rng.uniform_int(2, 3));
  const int m1 = static_cast<int>(rng.uniform_int(6, 8));
  const int m2 = static_cast<int>(rng.uniform_int(5, 6));
  const int nsend = static_cast<int>(rng.uniform_int(1, w2));
  const int nranks = m1 * m2;
  Trace ff("feed-forward", static_cast<Rank>(nranks));
  for (int leaf = 0; leaf < m2; ++leaf) {
    for (int j = 0; j < nsend; ++j) {
      const Rank src = static_cast<Rank>(leaf * m1 + j);
      const int dleaf = (leaf + 1 + j) % m2;
      const Rank dst = static_cast<Rank>(dleaf * m1 + nsend + j);
      const Bytes bytes{rng.uniform_int(std::int64_t{1}, std::int64_t{30000})};
      ff.push(src, ComputeRecord{TimeNs::from_us(
                       rng.uniform_int(std::int64_t{0}, std::int64_t{20}))});
      ff.push(src, IsendRecord{dst, bytes, 0, 1});
      ff.push(src, WaitallRecord{});
      ff.push(dst, RecvRecord{src, bytes, 0});
    }
  }
  if (const std::string err = ff.validate(); !err.empty()) {
    return fail("feed-forward trace invalid: " + err);
  }

  ReplayOptions narrow;
  narrow.fabric.xgft = XgftParams{m1, m2, 1, w2};
  narrow.fabric.routing.strategy = RoutingStrategy::Dmodk;
  narrow.fabric.contention = true;
  ReplayOptions wide = narrow;
  wide.fabric.xgft = XgftParams{m1, m2, 1, 2 * w2};

  std::vector<HopRecord> nlog;
  std::string nhop;
  std::string nreplay;
  const PdesLeg narrow_leg =
      run_contention_leg(ff, narrow, 1, power, &nlog, &nhop, &nreplay);
  if (!narrow_leg.audit.empty()) return fail("narrow audit: " +
                                             narrow_leg.audit);
  if (!nreplay.empty()) return fail("narrow invariant audit: " + nreplay);
  if (!nhop.empty()) return fail("narrow hop audit: " + nhop);
  const PdesLeg wide_leg =
      run_contention_leg(ff, wide, 1, power, nullptr, nullptr, nullptr);
  if (!wide_leg.audit.empty()) return fail("wide audit: " + wide_leg.audit);
  if (wide_leg.messages != narrow_leg.messages) {
    return fail("widening the tree changed the message count");
  }
  for (std::size_t r = 0; r < static_cast<std::size_t>(nranks); ++r) {
    if (wide_leg.finish[r] > narrow_leg.finish[r]) {
      return fail("widening w2 " + std::to_string(w2) + " -> " +
                  std::to_string(2 * w2) + " delayed rank " +
                  std::to_string(r) + " (" +
                  std::to_string(wide_leg.finish[r].ns) + " ns > " +
                  std::to_string(narrow_leg.finish[r].ns) + " ns)");
    }
  }
  if (wide_leg.exec > narrow_leg.exec) {
    return fail("widening the tree lengthened execution");
  }

  // (b) 512-rank 3-level XGFT(3; 8,8,8; 1,4,2), contention on: every
  // routing strategy must audit clean, and the dmodk leg must stay
  // bit-identical across shard counts (8 group domains). Gated to every
  // 8th seed — this is the expensive scale probe. Seeds == 4 (mod 8) run
  // the stressor-at-scale leg (c) instead, so the two expensive probes
  // never stack on one seed.
  if (seed % 8 == 4) return run_stressor_scale_leg(seed, rng);
  if (seed % 8 != 0) {
    if (g_verbose) {
      std::printf("  seed %" PRIu64 ": scale ok (w2 %d -> %d, %d ranks)\n",
                  seed, w2, 2 * w2, nranks);
    }
    return std::nullopt;
  }

  SyntheticTraceConfig big;
  big.seed = seed ^ 0xe1e1e1e1e1e1e1e1ULL;
  big.nranks = 512;
  big.phases_per_iteration = 2;
  big.iterations = 2;
  big.compute_median = TimeNs::from_us(std::int64_t{100});
  big.compute_jitter_sigma = 0.1;
  big.noise_prob = 0.0;
  const Trace btrace = generate_trace(big);
  if (const std::string err = btrace.validate(); !err.empty()) {
    return fail("512-rank trace invalid: " + err);
  }

  ReplayOptions bopt;
  bopt.fabric.xgft = XgftParams{8, 8, 1, 4, 8, 2};
  bopt.fabric.contention = true;
  PdesLeg serial512;
  for (const RoutingStrategy routing :
       {RoutingStrategy::Random, RoutingStrategy::Dmodk,
        RoutingStrategy::Consolidate}) {
    bopt.fabric.routing.strategy = routing;
    std::vector<HopRecord> blog;
    std::string bhop;
    std::string breplay;
    const PdesLeg leg =
        run_contention_leg(btrace, bopt, 1, power, &blog, &bhop, &breplay);
    const std::string name = routing_strategy_name(routing);
    if (!leg.audit.empty()) return fail(name + " 512 audit: " + leg.audit);
    if (!breplay.empty()) {
      return fail(name + " 512 invariant audit: " + breplay);
    }
    if (!bhop.empty()) return fail(name + " 512 hop audit: " + bhop);
    if (routing == RoutingStrategy::Dmodk) serial512 = leg;
  }

  bopt.fabric.routing.strategy = RoutingStrategy::Dmodk;
  for (const int shards : {2, 4, 8}) {
    const PdesLeg sharded =
        run_contention_leg(btrace, bopt, shards, power, nullptr, nullptr,
                           nullptr);
    const std::string leg = "512 shards=" + std::to_string(shards);
    if (!sharded.audit.empty()) return fail(leg + " audit: " + sharded.audit);
    if (sharded.shards_used != std::min(shards, 8)) {
      return fail(leg + " resolved to " + std::to_string(sharded.shards_used) +
                  " shard(s), expected " +
                  std::to_string(std::min(shards, 8)));
    }
    if (sharded.exec != serial512.exec ||
        sharded.finish != serial512.finish ||
        sharded.messages != serial512.messages ||
        sharded.events != serial512.events ||
        !(sharded.drain == serial512.drain) ||
        sharded.metrics != serial512.metrics) {
      return fail(leg + " diverged from the serial 512-rank run");
    }
  }

  if (g_verbose) {
    std::printf("  seed %" PRIu64 ": scale ok (w2 %d -> %d, %d ranks; 512-"
                "rank probe exec %.3f ms)\n",
                seed, w2, 2 * w2, nranks, serial512.exec.ms());
  }
  return std::nullopt;
}

// --- Phase G: predictor tier ----------------------------------------------

/// One (issue time, low-power duration) pair per actuated request, as seen
/// through the agent's LinkPowerPort.
using RequestLog = std::vector<std::pair<TimeNs, TimeNs>>;

class RequestRecorder final : public LinkPowerPort {
 public:
  void request_low_power(TimeNs now, TimeNs duration) override {
    log.push_back({now, duration});
  }
  RequestLog log;
};

struct DryDrive {
  AgentStats stats;
  RequestLog requests;
};

/// Replay prerecorded baseline call timelines through a PmpiAgent (no
/// actuation feedback — the dry methodology of dry_run_hit_rate), exercising
/// the reset-and-reuse protocol between ranks.
DryDrive dry_drive(const std::vector<std::vector<MpiCallEvent>>& timelines,
                   const PpaConfig& cfg) {
  DryDrive out;
  RequestRecorder port;
  PmpiAgent agent(cfg, &port);
  bool fresh = true;
  for (const auto& timeline : timelines) {
    if (!fresh) agent.reset(cfg, &port);
    fresh = false;
    for (const MpiCallEvent& ev : timeline) {
      (void)agent.on_call_enter(ev.call, ev.enter);
      agent.on_call_exit(ev.call, ev.exit);
    }
    agent.finish();
    out.stats.merge(agent.stats());
  }
  out.requests = std::move(port.log);
  return out;
}

/// The pre-interface PmpiAgent loop, reimplemented inline from the core
/// primitives (GramBuilder / PatternDetector / PowerModeController) as an
/// independent oracle: driving the same timelines through today's
/// PmpiAgent + PpaPredictor must reproduce these counters and requests
/// bit-for-bit, or the interface transplant changed behavior.
DryDrive legacy_ppa_drive(
    const std::vector<std::vector<MpiCallEvent>>& timelines,
    const PpaConfig& cfg) {
  DryDrive out;
  for (const auto& timeline : timelines) {
    GramInterner interner;
    GramBuilder grams(cfg.grouping_threshold, &interner);
    PatternDetector detector(cfg, &interner);
    PowerModeController controller(cfg, &interner);
    AgentStats s;
    TimeNs last_exit{};
    bool any_call = false;
    TimeNs pending_low{};
    bool pending_request = false;
    for (const MpiCallEvent& ev : timeline) {
      ++s.total_calls;
      const TimeNs gap = any_call ? ev.enter - last_exit : TimeNs::zero();
      if (pending_request) {
        if (gap < pending_low) ++s.mispredict_wakes;
        pending_request = false;
      }
      any_call = true;

      const bool was_active = controller.active();
      const std::uint64_t scans_before = detector.invocations();
      bool armed_now = false;
      if (auto closed = grams.on_call_enter(ev.call, ev.enter)) {
        ++s.grams_closed;
        if (auto pattern = detector.observe(*closed)) {
          if (!controller.active() &&
              controller.arm(&detector.patterns(), *pattern, ev.call)) {
            detector.set_scanning(false);
            armed_now = true;
            ++s.arms;
            ++s.predicted_calls;
          } else if (!controller.active()) {
            ++s.arm_failures;
          }
        }
      }
      if (was_active && !armed_now) {
        const auto verdict = controller.on_call_enter(ev.call, gap);
        if (verdict == PowerModeController::Verdict::Mispredict) {
          ++s.pattern_mispredicts;
          detector.set_scanning(true);
        } else {
          ++s.predicted_calls;
        }
      }
      const std::uint64_t scans = detector.invocations() - scans_before;
      s.ppa_scan_invocations += scans;
      TimeNs overhead = cfg.interception_overhead;
      if (scans > 0) {
        overhead +=
            cfg.ppa_invocation_overhead * static_cast<std::int64_t>(scans);
      }
      s.modeled_overhead_total += overhead;

      grams.on_call_exit(ev.exit);
      last_exit = ev.exit;
      if (controller.active()) {
        if (auto request = controller.on_call_exit()) {
          ++s.power_requests;
          s.requested_low_power_total += request->low_power_duration;
          pending_low = request->low_power_duration;
          pending_request = true;
          out.requests.push_back({ev.exit, request->low_power_duration});
        }
      }
    }
    if (auto closed = grams.flush()) {
      (void)detector.observe(*closed);
      ++s.grams_closed;
    }
    out.stats.merge(s);
  }
  return out;
}

/// Soundness oracle over one predictor: every issued request must (a) be at
/// least min_low_power_duration long, (b) end at least Treact before its own
/// predicted idle runs out (the Alg. 3 safety contract), and (c) whenever
/// the prediction was correct — the actual gap reached the predicted idle —
/// the link must be full-width at least Treact before the next call (no
/// intrusion on a foreseen gap). Returns "" when sound.
std::string soundness_violation(
    IdlePredictor* p, const PpaConfig& cfg,
    const std::vector<std::vector<MpiCallEvent>>& timelines) {
  const auto us = [](TimeNs t) { return std::to_string(t.ns / 1000); };
  for (const auto& timeline : timelines) {
    p->reset(cfg);
    bool first = true;
    TimeNs prev_exit{};
    std::optional<IdlePredictor::Request> pending;
    for (const MpiCallEvent& ev : timeline) {
      const TimeNs gap = first ? TimeNs::zero() : ev.enter - prev_exit;
      if (pending && !first && gap >= pending->predicted_idle &&
          pending->low_power_duration + cfg.t_react > gap) {
        return std::string(p->name()) + ": correctly predicted gap (" +
               us(gap) + " us >= predicted " + us(pending->predicted_idle) +
               " us) still intruded on by a " +
               us(pending->low_power_duration) + " us sleep";
      }
      pending.reset();
      (void)p->on_call_enter(ev.call, ev.enter, gap, first);
      first = false;
      const auto out = p->on_call_exit(ev.call, ev.exit);
      prev_exit = ev.exit;
      if (out.request) {
        const IdlePredictor::Request& rq = *out.request;
        if (rq.low_power_duration < cfg.min_low_power_duration) {
          return std::string(p->name()) + ": request below the minimum " +
                 "low-power duration (" + us(rq.low_power_duration) +
                 " us < " + us(cfg.min_low_power_duration) + " us)";
        }
        if (rq.low_power_duration + cfg.t_react > rq.predicted_idle) {
          return std::string(p->name()) +
                 ": request sleeps into its own predicted busy time (low " +
                 us(rq.low_power_duration) + " us + Treact > predicted " +
                 us(rq.predicted_idle) + " us)";
        }
        pending = rq;
      }
    }
    (void)p->finish();
  }
  return {};
}

/// True when `sub` appears in `full` in order (not necessarily contiguous).
bool is_request_subsequence(const RequestLog& sub, const RequestLog& full) {
  std::size_t j = 0;
  for (const auto& r : sub) {
    while (j < full.size() && full[j] != r) ++j;
    if (j == full.size()) return false;
    ++j;
  }
  return true;
}

std::optional<Failure> run_predictor_tier(std::uint64_t seed, Rng& rng) {
  SyntheticTraceConfig tcfg;
  tcfg.seed = seed ^ 0x4b4b4b4b4b4b4b4bULL;
  tcfg.nranks = static_cast<Rank>(rng.uniform_int(2, 8));
  tcfg.phases_per_iteration = static_cast<int>(rng.uniform_int(2, 4));
  tcfg.iterations = static_cast<int>(rng.uniform_int(6, 12));
  tcfg.compute_median =
      TimeNs::from_us(rng.uniform_int(std::int64_t{100}, std::int64_t{500}));
  tcfg.compute_jitter_sigma = rng.uniform(0.05, 0.4);
  tcfg.noise_prob = rng.bernoulli(0.5) ? 0.2 : 0.0;

  const auto fail = [&](std::string msg) {
    return Failure{seed, "predictor-tier", std::move(msg)};
  };

  const Trace trace = generate_trace(tcfg);
  if (const std::string err = trace.validate(); !err.empty()) {
    return fail("generated trace invalid: " + err);
  }

  PpaConfig ppa;
  ppa.displacement_factor = 0.01 * static_cast<double>(rng.uniform_int(1, 10));
  const TimeNs guard_threshold =
      TimeNs::from_us(rng.uniform_int(std::int64_t{20}, std::int64_t{200}));

  ReplayOptions base;
  base.fabric.routing.strategy = RoutingStrategy::Dmodk;
  base.fabric.link.t_react = ppa.t_react;
  base.fabric.link.t_deact = ppa.t_react;
  base.enable_power_management = false;
  base.record_call_timeline = true;

  const int nranks = tcfg.nranks;
  ReplayEngine engine(&trace, base);
  const ReplayResult rr = engine.run();
  std::vector<std::vector<MpiCallEvent>> timelines;
  timelines.reserve(static_cast<std::size_t>(nranks));
  for (Rank r = 0; r < nranks; ++r) {
    const auto tl = engine.call_timeline(r);
    timelines.emplace_back(tl.begin(), tl.end());
  }

  // (a) Soundness oracle: every predictor, guarded and not, driven over the
  // recorded timelines.
  {
    PpaPredictor ppa_pred(ppa);
    MultiTimeoutPredictor mt;
    HistogramPredictor hist;
    hist.reset(ppa);
    GuardPredictor guarded_mt;
    guarded_mt.bind(&mt, guard_threshold);
    GuardPredictor guarded_hist;
    guarded_hist.bind(&hist, guard_threshold);
    for (IdlePredictor* p : {static_cast<IdlePredictor*>(&ppa_pred), static_cast<IdlePredictor*>(&mt),
                             static_cast<IdlePredictor*>(&hist),
                             static_cast<IdlePredictor*>(&guarded_mt),
                             static_cast<IdlePredictor*>(&guarded_hist)}) {
      if (std::string err = soundness_violation(p, ppa, timelines);
          !err.empty()) {
        return fail("soundness: " + err);
      }
    }
  }

  // (b) PPA-through-interface bit-identity: the agent with the default
  // predictor must reproduce the pre-interface loop's counters and request
  // stream exactly.
  const DryDrive via_interface = dry_drive(timelines, ppa);
  {
    const DryDrive legacy = legacy_ppa_drive(timelines, ppa);
    if (!(via_interface.stats == legacy.stats)) {
      return fail("agent stats diverged from the pre-interface PPA loop "
                  "(e.g. power_requests " +
                  std::to_string(via_interface.stats.power_requests) + " vs " +
                  std::to_string(legacy.stats.power_requests) + ")");
    }
    if (via_interface.requests != legacy.requests) {
      return fail("agent request stream diverged from the pre-interface PPA "
                  "loop (" + std::to_string(via_interface.requests.size()) +
                  " vs " + std::to_string(legacy.requests.size()) +
                  " requests)");
    }
  }

  // (c) Guard-dominance metamorphic check, per predictor kind: the guard is
  // a pure output filter, so the guarded run must issue a subsequence of the
  // unguarded requests, account for every dropped one, and never wake worse.
  std::uint64_t dry_requests[3] = {0, 0, 0};
  int kind_idx = 0;
  for (const PredictorKind kind :
       {PredictorKind::Ppa, PredictorKind::MultiTimeout,
        PredictorKind::Histogram}) {
    PpaConfig plain = ppa;
    plain.predictor.kind = kind;
    PpaConfig guarded_cfg = plain;
    guarded_cfg.predictor.guard_threshold = guard_threshold;
    const DryDrive unguarded =
        kind == PredictorKind::Ppa ? via_interface : dry_drive(timelines, plain);
    const DryDrive guarded = dry_drive(timelines, guarded_cfg);
    const std::string name = predictor_name(kind);
    dry_requests[kind_idx++] = unguarded.stats.power_requests;
    if (unguarded.stats.power_requests != unguarded.requests.size() ||
        guarded.stats.power_requests != guarded.requests.size()) {
      return fail(name + ": power_requests counter disagrees with the port "
                  "log");
    }
    if (unguarded.stats.guard_suppressed != 0) {
      return fail(name + ": unguarded run reports " +
                  std::to_string(unguarded.stats.guard_suppressed) +
                  " guard-suppressed requests");
    }
    if (unguarded.stats.mispredict_wakes > unguarded.stats.power_requests) {
      return fail(name + ": more mispredict wakes than requests");
    }
    if (guarded.stats.total_calls != unguarded.stats.total_calls ||
        guarded.stats.grams_closed != unguarded.stats.grams_closed) {
      return fail(name + ": guard changed predictor-side accounting "
                  "(total_calls/grams_closed)");
    }
    if (guarded.stats.power_requests + guarded.stats.guard_suppressed !=
        unguarded.stats.power_requests) {
      return fail(name + ": guarded requests (" +
                  std::to_string(guarded.stats.power_requests) +
                  ") + suppressed (" +
                  std::to_string(guarded.stats.guard_suppressed) +
                  ") != unguarded requests (" +
                  std::to_string(unguarded.stats.power_requests) + ")");
    }
    if (guarded.stats.mispredict_wakes > unguarded.stats.mispredict_wakes) {
      return fail(name + ": guard increased mispredict wakes (" +
                  std::to_string(guarded.stats.mispredict_wakes) + " > " +
                  std::to_string(unguarded.stats.mispredict_wakes) + ")");
    }
    if (!is_request_subsequence(guarded.requests, unguarded.requests)) {
      return fail(name + ": guarded request stream is not a subsequence of "
                  "the unguarded one");
    }
  }

  // (d) Closed loop: one managed replay per predictor kind (plus a guarded
  // variant) must audit clean, keep telemetry consistent, and obey the
  // deterministic-routing orderings of phase B.
  const PowerModelConfig power;
  PpaConfig closed_cfgs[4] = {ppa, ppa, ppa, ppa};
  closed_cfgs[1].predictor.kind = PredictorKind::MultiTimeout;
  closed_cfgs[2].predictor.kind = PredictorKind::Histogram;
  closed_cfgs[3].predictor.kind = rng.bernoulli(0.5)
                                      ? PredictorKind::MultiTimeout
                                      : PredictorKind::Histogram;
  closed_cfgs[3].predictor.guard_threshold = guard_threshold;
  for (const PpaConfig& cfg : closed_cfgs) {
    ReplayOptions managed = base;
    managed.record_call_timeline = false;
    managed.enable_power_management = true;
    managed.ppa = cfg;
    const LegOutcome m = run_leg(trace, managed, power, nranks);
    std::string name = predictor_name(cfg.predictor.kind);
    if (cfg.predictor.guard_threshold > TimeNs::zero()) name += "+guard";
    if (!m.audit.empty()) return fail(name + " audit: " + m.audit);
    if (!m.telemetry.empty()) {
      return fail(name + " telemetry: " + m.telemetry);
    }
    if (m.exec < rr.exec_time) {
      return fail(name + " managed run finished earlier than baseline (" +
                  std::to_string(m.exec.ns) + " ns < " +
                  std::to_string(rr.exec_time.ns) + " ns)");
    }
    if (m.messages != rr.messages_sent) {
      return fail(name + " message counts differ between legs (" +
                  std::to_string(m.messages) + " vs " +
                  std::to_string(rr.messages_sent) + ")");
    }
    if (m.savings_pct < 0.0 || m.savings_pct > 100.0) {
      return fail(name + " managed savings " + std::to_string(m.savings_pct) +
                  "% outside [0, 100]%");
    }
  }

  if (g_verbose) {
    std::printf("  seed %" PRIu64 ": predictor ok (%d ranks, dry requests "
                "ppa %" PRIu64 " mt %" PRIu64 " hist %" PRIu64
                ", guard %" PRId64 " us)\n",
                seed, nranks, dry_requests[0], dry_requests[1],
                dry_requests[2], guard_threshold.ns / 1000);
  }
  return std::nullopt;
}

// --- Phase H: host co-management tier -------------------------------------

std::optional<Failure> run_host_tier(std::uint64_t seed, Rng& rng) {
  const auto fail = [&](std::string msg) {
    return Failure{seed, "host-tier", std::move(msg)};
  };

  SyntheticTraceConfig tcfg;
  tcfg.seed = seed ^ 0x4d4d4d4d4d4d4d4dULL;
  tcfg.nranks = static_cast<Rank>(rng.uniform_int(8, 24));
  tcfg.phases_per_iteration = static_cast<int>(rng.uniform_int(2, 4));
  tcfg.iterations = static_cast<int>(rng.uniform_int(4, 8));
  tcfg.compute_median =
      TimeNs::from_us(rng.uniform_int(std::int64_t{100}, std::int64_t{500}));
  tcfg.compute_jitter_sigma = rng.uniform(0.05, 0.3);
  tcfg.noise_prob = rng.bernoulli(0.3) ? 0.15 : 0.0;
  const Trace trace = generate_trace(tcfg);
  if (const std::string err = trace.validate(); !err.empty()) {
    return fail("generated trace invalid: " + err);
  }
  const int nranks = tcfg.nranks;

  const PowerModelConfig power;

  // Countdown policy, capped on most seeds: the cap is drawn between the
  // fleet floor (everyone at the slowest P-state) and flat out, so the
  // allocator actually has to ration.
  HostPowerConfig host;
  host.policy = HostPolicyKind::Countdown;
  const bool capped = rng.bernoulli(0.6);
  if (capped) {
    const double floor_w =
        host.pstates[static_cast<std::size_t>(host.pstate_count - 1)].watts;
    const double full_w = host.pstates[0].watts;
    host.power_cap_watts =
        static_cast<double>(nranks) *
        (floor_w + rng.uniform(0.1, 0.95) * (full_w - floor_w));
  }

  ReplayOptions opt;
  opt.fabric.xgft = XgftParams{4, 6, 1, 2};  // 24 nodes, 6 shard domains
  opt.fabric.routing.strategy = RoutingStrategy::Dmodk;
  opt.enable_power_management = rng.bernoulli(0.7);
  if (opt.enable_power_management) {
    opt.ppa.displacement_factor =
        0.01 * static_cast<double>(rng.uniform_int(1, 10));
    opt.fabric.link.t_react = opt.ppa.t_react;
    opt.fabric.link.t_deact = opt.ppa.t_react;
  }
  opt.host = host;

  // (a) Serial managed leg: full invariant audit, the system-energy
  // closure, and — when capped — the cap-respected invariant at every
  // breakpoint of the merged host timeline.
  ReplayEngine engine(&trace, opt);
  const ReplayResult rr = engine.run();
  if (const std::string err = engine.audit_drain(); !err.empty()) {
    return fail("drain audit: " + err);
  }
  if (const std::string err = audit_replay(engine, power); !err.empty()) {
    return fail("invariant audit: " + err);
  }
  if (const std::string err = audit_system_energy_closure(engine, power);
      !err.empty()) {
    return fail("system-energy closure: " + err);
  }
  if (capped) {
    if (const std::string err = audit_cluster_cap(engine); !err.empty()) {
      return fail("cap invariant: " + err);
    }
  }
  const obs::ReplayMetrics serial =
      obs::collect_replay_metrics(engine, rr, power);
  if (const std::string err = obs::validate_metrics(serial); !err.empty()) {
    return fail("telemetry: " + err);
  }

  // (b) Host-off leg: a disabled config — even with scrambled inert fields
  // — must leave the default exports byte-identical and host-column-free.
  const auto export_json = [&](const ReplayOptions& o) {
    ReplayEngine e(&trace, o);
    const ReplayResult r = e.run();
    obs::CellMetrics cell;
    cell.app = "fuzz-host";
    cell.nranks = nranks;
    cell.managed = obs::collect_replay_metrics(e, r, power);
    std::ostringstream os;
    obs::write_metrics_json(os, {cell});
    return os.str();
  };
  ReplayOptions off_default = opt;
  off_default.host = HostPowerConfig{};
  ReplayOptions off_scrambled = opt;
  HostPowerConfig inert;  // Off policy, no cap: enabled() stays false
  inert.cap_epoch =
      TimeNs::from_us(rng.uniform_int(std::int64_t{50}, std::int64_t{2000}));
  inert.dynamic_uj_per_call = rng.uniform(0.1, 9.0);
  off_scrambled.host = inert;
  const std::string ja = export_json(off_default);
  const std::string jb = export_json(off_scrambled);
  if (ja != jb) {
    return fail("a disabled host config leaked into the default exports");
  }
  if (ja.find("\"hosts\"") != std::string::npos) {
    return fail("host rows present in a host-off export");
  }

  // (c) Sharded legs: host + cap must stay bit-identical to serial (exec,
  // finishes, full telemetry including host energies), audit clean, and
  // keep the cap invariant under the per-shard allocation cache.
  for (const int shards : {2, 4}) {
    ReplayOptions sopt = opt;
    sopt.shards = shards;
    ReplayEngine se(&trace, sopt);
    const ReplayResult srr = se.run();
    const std::string leg = "shards=" + std::to_string(shards);
    if (const std::string err = se.audit_drain(); !err.empty()) {
      return fail(leg + " drain audit: " + err);
    }
    if (const std::string err = audit_replay(se, power); !err.empty()) {
      return fail(leg + " invariant audit: " + err);
    }
    if (capped) {
      if (const std::string err = audit_cluster_cap(se); !err.empty()) {
        return fail(leg + " cap invariant: " + err);
      }
    }
    if (srr.exec_time != rr.exec_time || srr.rank_finish != rr.rank_finish ||
        srr.messages_sent != rr.messages_sent) {
      return fail(leg + " diverged from the serial host run");
    }
    const obs::ReplayMetrics sm = obs::collect_replay_metrics(se, srr, power);
    if (sm != serial) {
      return fail(leg + " telemetry snapshot diverged from serial");
    }
  }

  if (g_verbose) {
    std::printf("  seed %" PRIu64 ": host ok (%d ranks, links %s, cap "
                "%.0f W)\n",
                seed, nranks,
                opt.enable_power_management ? "managed" : "off",
                host.power_cap_watts);
  }
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seeds = 200;
  std::uint64_t start_seed = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--seeds" && i + 1 < argc) {
      seeds = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--start-seed" && i + 1 < argc) {
      start_seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--verbose") {
      g_verbose = true;
    } else {
      std::fprintf(stderr,
                   "usage: fuzz_replay [--seeds N] [--start-seed S] "
                   "[--verbose]\n");
      return 2;
    }
  }

  for (std::uint64_t seed = start_seed; seed < start_seed + seeds; ++seed) {
    // One master stream per seed; phases draw their parameters from it in a
    // fixed order so a seed is fully reproducible in isolation.
    Rng rng(seed);
    if (const auto failure = run_ppa_differential(seed, rng)) {
      std::fprintf(stderr, "fuzz_replay: seed %" PRIu64 " FAILED [%s]: %s\n",
                   failure->seed, failure->phase.c_str(),
                   failure->message.c_str());
      return 1;
    }
    if (const auto failure = run_replay_metamorphic(seed, rng)) {
      std::fprintf(stderr, "fuzz_replay: seed %" PRIu64 " FAILED [%s]: %s\n",
                   failure->seed, failure->phase.c_str(),
                   failure->message.c_str());
      return 1;
    }
    if (const auto failure = run_trunk_tier(seed, rng)) {
      std::fprintf(stderr, "fuzz_replay: seed %" PRIu64 " FAILED [%s]: %s\n",
                   failure->seed, failure->phase.c_str(),
                   failure->message.c_str());
      return 1;
    }
    if (const auto failure = run_pdes_tier(seed, rng)) {
      std::fprintf(stderr, "fuzz_replay: seed %" PRIu64 " FAILED [%s]: %s\n",
                   failure->seed, failure->phase.c_str(),
                   failure->message.c_str());
      return 1;
    }
    if (const auto failure = run_contention_tier(seed, rng)) {
      std::fprintf(stderr, "fuzz_replay: seed %" PRIu64 " FAILED [%s]: %s\n",
                   failure->seed, failure->phase.c_str(),
                   failure->message.c_str());
      return 1;
    }
    if (const auto failure = run_scale_topology_tier(seed, rng)) {
      std::fprintf(stderr, "fuzz_replay: seed %" PRIu64 " FAILED [%s]: %s\n",
                   failure->seed, failure->phase.c_str(),
                   failure->message.c_str());
      return 1;
    }
    if (const auto failure = run_predictor_tier(seed, rng)) {
      std::fprintf(stderr, "fuzz_replay: seed %" PRIu64 " FAILED [%s]: %s\n",
                   failure->seed, failure->phase.c_str(),
                   failure->message.c_str());
      return 1;
    }
    if (const auto failure = run_host_tier(seed, rng)) {
      std::fprintf(stderr, "fuzz_replay: seed %" PRIu64 " FAILED [%s]: %s\n",
                   failure->seed, failure->phase.c_str(),
                   failure->message.c_str());
      return 1;
    }
  }
  std::printf("fuzz_replay: %" PRIu64 " seed(s) passed (start %" PRIu64
              ")\n",
              seeds, start_seed);
  return 0;
}
