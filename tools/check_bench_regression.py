#!/usr/bin/env python3
"""Perf gate for the CI smoke benchmark.

Compares a freshly generated bench_throughput JSON against the committed
baseline, keyed on (cell, nranks, jobs, shards). Two checks:

  * Absolute: any cell whose events_per_sec dropped by more than the
    tolerance (default 20%) vs its baseline row fails the gate.
  * Relative: rows with jobs > 1 or shards > 1 must additionally beat the
    matching serial row (jobs=1, shards=1) of the *current* run by the
    speedup floor — but only when the recording host had enough cores to
    deliver a speedup at all (row's host_cores >= the parallelism level).
    On a single-core CI runner the floor is reported and skipped, so the
    structural rows still exist without making the gate flaky.

Baseline policy: on hosts with noisy-neighbor variance (shared-CPU
containers drift +/-30% between measurement windows with an identical
binary), record each baseline row as the per-cell *minimum* across
several windows. The gate is one-sided, so fast windows always pass and
the committed floor keeps slow windows from false-failing; a real >20%
regression below the slow-window floor still trips it.

A baseline row may carry "new": true — a cell added in the same PR as its
baseline, measured in a single window on the authoring machine instead of
hardened by the multi-window minimum. Such rows are gated with the looser
--new-tolerance until a follow-up re-records them (and drops the flag),
so a fresh cell is covered immediately without making the gate flaky.
The flag is meant to survive at most one committed baseline refresh: a
refresh that re-records a row should drop it, and a refresh that keeps it
should bump it to "new": 2 so the next run can tell. The gate warns on
every surviving flag and fails on "new" >= 2 (a flag that outlived a
refresh) unless --allow-stale-new is passed.

Rows may also carry scheduler columns ("utilization": engine busy
fraction for the recording run, "steals": tasks stolen) — reported here
for visibility, never gated: utilization is a property of the recording
host's core count, not of the code under test. The aggregate
"hetero_mix" and "campaign_mix" rows (wall-clock over an imbalanced
multi-scale grid, direct and via the campaign JSONL session) flow
through the same two checks as per-cell rows.

Usage: check_bench_regression.py BASELINE.json CURRENT.json
           [--tolerance 0.20] [--new-tolerance 0.35] [--speedup-floor 1.2]
"""
import argparse
import json
import sys


def row_key(r):
    return (r["cell"], r["nranks"], r.get("jobs", 1), r.get("shards", 1))


def load_rows(path):
    with open(path) as f:
        rows = json.load(f)
    return {row_key(r): r for r in rows}


def fmt_util(row):
    """'  util 87.3%' when the row carries the scheduler column, else ''."""
    util = row.get("utilization")
    return f"  util {util * 100.0:5.1f}%" if util is not None else ""


def fmt_key(key):
    cell, nranks, jobs, shards = key
    extra = ""
    if jobs != 1:
        extra += f" jobs={jobs}"
    if shards != 1:
        extra += f" shards={shards}"
    return f"{cell}/{nranks}{extra or ' serial'}"


def check_speedups(current, floor):
    """Relative gate: parallel rows vs the same run's serial row."""
    failures = []
    for key in sorted(current):
        cell, nranks, jobs, shards = key
        parallelism = max(jobs, shards)
        if parallelism <= 1:
            continue
        serial = current.get((cell, nranks, 1, 1))
        if serial is None:
            print(f"{fmt_key(key):>28}: no serial row in current run -- "
                  "speedup unchecked")
            continue
        base_eps = serial["events_per_sec"]
        speedup = (current[key]["events_per_sec"] / base_eps
                   if base_eps > 0 else 1.0)
        cores = current[key].get("host_cores", 1)
        if cores < parallelism:
            print(f"{fmt_key(key):>28}: {speedup:5.2f}x vs serial  "
                  f"(floor {floor:.2f}x waived: host has {cores} core(s))")
            continue
        status = "ok" if speedup >= floor else "SPEEDUP REGRESSION"
        if speedup < floor:
            failures.append(key)
        print(f"{fmt_key(key):>28}: {speedup:5.2f}x vs serial  "
              f"(floor {floor:.2f}x)  {status}{fmt_util(current[key])}")
    return failures


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--tolerance", type=float, default=0.20,
                    help="allowed fractional drop in events_per_sec")
    ap.add_argument("--new-tolerance", type=float, default=0.35,
                    help="tolerance applied to baseline rows flagged "
                         '"new": true (single-window measurements)')
    ap.add_argument("--allow-stale-new", action="store_true",
                    help='do not fail on "new" flags that survived a '
                         "committed baseline refresh (value >= 2)")
    ap.add_argument("--speedup-floor", type=float, default=1.2,
                    help="minimum speedup of jobs>1/shards>1 rows over the "
                         "current run's serial row (enforced only when "
                         "host_cores covers the parallelism level)")
    args = ap.parse_args()

    baseline = load_rows(args.baseline)
    current = load_rows(args.current)

    missing = sorted(set(baseline) - set(current))
    if missing:
        print(f"FAIL: {len(missing)} baseline cells absent from current run:")
        for key in missing:
            print(f"  {fmt_key(key)}")
        return 1

    # Cells present in the current run but not in the baseline are fine —
    # a PR that adds a cell gates it only once its baseline row is
    # committed. Report them so the addition is visible in the CI log.
    for key in sorted(set(current) - set(baseline)):
        eps = current[key]["events_per_sec"]
        print(f"{fmt_key(key):>28}: {eps/1e6:7.2f}M events/s  "
              "NEW (no baseline)")

    failures = []
    for key in sorted(baseline):
        base_eps = baseline[key]["events_per_sec"]
        cur_eps = current[key]["events_per_sec"]
        ratio = cur_eps / base_eps if base_eps > 0 else 1.0
        is_new = bool(baseline[key].get("new"))
        tolerance = args.new_tolerance if is_new else args.tolerance
        status = "ok (new)" if is_new else "ok"
        if ratio < 1.0 - tolerance:
            status = "REGRESSION (new cell)" if is_new else "REGRESSION"
            failures.append(key)
        print(f"{fmt_key(key):>28}: "
              f"{base_eps/1e6:7.2f}M -> {cur_eps/1e6:7.2f}M events/s "
              f"({(ratio - 1.0) * 100.0:+6.1f}%)  {status}"
              f"{fmt_util(current[key])}")

    speedup_failures = check_speedups(current, args.speedup_floor)

    # "new" staleness: warn on every surviving flag; a flag that outlived a
    # committed baseline refresh ("new" >= 2) is a gate failure, so fresh
    # cells cannot quietly keep the looser tolerance forever.
    stale_new = []
    for key in sorted(baseline):
        flag = baseline[key].get("new")
        if not flag:
            continue
        generations = flag if isinstance(flag, int) and not isinstance(
            flag, bool) else 1
        if generations >= 2:
            stale_new.append(key)
            print(f'WARNING: {fmt_key(key)} kept "new" through '
                  f"{generations - 1} baseline refresh(es) -- re-record it "
                  "with the multi-window minimum and drop the flag")
        else:
            print(f'WARNING: {fmt_key(key)} is flagged "new" -- the next '
                  "baseline refresh should re-record it (or bump the flag "
                  'to "new": 2)')

    if stale_new and not args.allow_stale_new:
        print(f'\nFAIL: {len(stale_new)} "new" flag(s) survived a baseline '
              "refresh (pass --allow-stale-new to defer)")
        return 1

    if failures or speedup_failures:
        if failures:
            print(f"\nFAIL: {len(failures)} cell(s) regressed more than "
                  f"{args.tolerance * 100.0:.0f}% vs baseline")
        if speedup_failures:
            print(f"\nFAIL: {len(speedup_failures)} parallel row(s) below "
                  f"the {args.speedup_floor:.2f}x speedup floor")
        return 1
    print(f"\nPASS: all {len(baseline)} cells within "
          f"{args.tolerance * 100.0:.0f}% of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
