#!/usr/bin/env python3
"""Perf gate for the CI smoke benchmark.

Compares a freshly generated bench_throughput JSON against the committed
baseline, keyed on (cell, nranks, jobs). Fails (exit 1) if any cell's
events_per_sec dropped by more than the tolerance (default 20%).

Usage: check_bench_regression.py BASELINE.json CURRENT.json [--tolerance 0.20]
"""
import argparse
import json
import sys


def load_rows(path):
    with open(path) as f:
        rows = json.load(f)
    return {(r["cell"], r["nranks"], r.get("jobs", 1)): r for r in rows}


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--tolerance", type=float, default=0.20,
                    help="allowed fractional drop in events_per_sec")
    args = ap.parse_args()

    baseline = load_rows(args.baseline)
    current = load_rows(args.current)

    missing = sorted(set(baseline) - set(current))
    if missing:
        print(f"FAIL: {len(missing)} baseline cells absent from current run:")
        for key in missing:
            print(f"  {key[0]}/{key[1]} jobs={key[2]}")
        return 1

    # Cells present in the current run but not in the baseline are fine —
    # a PR that adds a cell gates it only once its baseline row is
    # committed. Report them so the addition is visible in the CI log.
    for key in sorted(set(current) - set(baseline)):
        eps = current[key]["events_per_sec"]
        print(f"{key[0]:>10}/{key[1]:<4} jobs={key[2]}: "
              f"{eps/1e6:7.2f}M events/s  NEW (no baseline)")

    failures = []
    for key in sorted(baseline):
        base_eps = baseline[key]["events_per_sec"]
        cur_eps = current[key]["events_per_sec"]
        ratio = cur_eps / base_eps if base_eps > 0 else 1.0
        status = "ok"
        if ratio < 1.0 - args.tolerance:
            status = "REGRESSION"
            failures.append(key)
        print(f"{key[0]:>10}/{key[1]:<4} jobs={key[2]}: "
              f"{base_eps/1e6:7.2f}M -> {cur_eps/1e6:7.2f}M events/s "
              f"({(ratio - 1.0) * 100.0:+6.1f}%)  {status}")

    if failures:
        print(f"\nFAIL: {len(failures)} cell(s) regressed more than "
              f"{args.tolerance * 100.0:.0f}% vs baseline")
        return 1
    print(f"\nPASS: all {len(baseline)} cells within "
          f"{args.tolerance * 100.0:.0f}% of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
