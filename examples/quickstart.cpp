// Quickstart: the core prediction API on the paper's own example.
//
// Feeds the ALYA MPI-event stream of the paper's Fig. 2/3 (three
// MPI_Sendrecv = id 41, then two MPI_Allreduce = id 10, repeating) into a
// PmpiAgent — the component the paper runs inside the PMPI layer — and
// shows: gram formation, pattern detection, the power-down (WRPS) requests
// issued with the Alg. 3 safety margin, and the reaction to a mispredict.
//
// Build & run:  ./examples/quickstart
#include <cstdio>
#include <vector>

#include "core/pmpi_agent.hpp"

using namespace ibpower;
using namespace ibpower::literals;

namespace {

/// A LinkPowerPort that just logs WRPS calls (in the real system this is
/// the node's IB link; in the simulator it is network/IbLink).
struct LoggingPort final : LinkPowerPort {
  void request_low_power(TimeNs now, TimeNs duration) override {
    std::printf("      -> WRPS: lanes off at %-9s timer=%s (full width again at %s)\n",
                to_string(now).c_str(), to_string(duration).c_str(),
                to_string(now + duration + 10_us).c_str());
  }
};

}  // namespace

int main() {
  PpaConfig config;
  config.grouping_threshold = 20_us;    // GT = 2 * Treact (paper §III-C)
  config.t_react = 10_us;               // lane reactivation (paper §II)
  config.displacement_factor = 0.10;    // safety margin (paper Alg. 3)
  config.interception_overhead = TimeNs::zero();  // keep the log tidy
  config.ppa_invocation_overhead = TimeNs::zero();

  LoggingPort port;
  PmpiAgent agent(config, &port);

  std::printf("ALYA stream from the paper's Fig. 2: 41-41-41 ... 10 ... 10\n\n");

  TimeNs t{};
  int event = 0;
  auto call = [&](MpiCall c, TimeNs gap) {
    t += gap;
    const bool was_predicting = agent.predicting();
    const TimeNs overhead = agent.on_call_enter(c, t);
    std::printf("  event %2d  %-13s gap=%-8s %s\n", ++event, to_string(c),
                to_string(gap).c_str(),
                agent.predicting()
                    ? (was_predicting ? "[predicting]" : "[PATTERN DETECTED]")
                    : "");
    t += overhead + 1_us;  // 1us in the MPI call itself
    agent.on_call_exit(c, t);  // may log a WRPS request for this call
  };

  auto iteration = [&] {
    call(MpiCall::Sendrecv, 200_us);  // compute phase, then the halo triplet
    call(MpiCall::Sendrecv, 2_us);
    call(MpiCall::Sendrecv, 2_us);
    call(MpiCall::Allreduce, 100_us);
    call(MpiCall::Allreduce, 80_us);
  };

  for (int it = 1; it <= 5; ++it) {
    std::printf("-- iteration %d --\n", it);
    iteration();
  }

  std::printf("\n-- a foreign phase appears (I/O burst): mispredict --\n");
  call(MpiCall::Bcast, 300_us);
  call(MpiCall::Bcast, 300_us);

  std::printf("\n-- the known pattern returns: re-armed after ONE appearance --\n");
  for (int it = 0; it < 2; ++it) iteration();

  agent.finish();
  const AgentStats& s = agent.stats();
  std::printf(
      "\nSummary: %llu calls, %llu grams, %llu pattern(s) detected,\n"
      "         %llu power-down requests totalling %s of low-power time,\n"
      "         %llu mispredict(s), MPI-call hit rate %.1f%%\n",
      static_cast<unsigned long long>(s.total_calls),
      static_cast<unsigned long long>(s.grams_closed),
      static_cast<unsigned long long>(
          agent.detector().patterns().detected_ids().size()),
      static_cast<unsigned long long>(s.power_requests),
      to_string(s.requested_low_power_total).c_str(),
      static_cast<unsigned long long>(s.pattern_mispredicts),
      s.hit_rate_pct());

  // Show the detected pattern the way the paper prints it (Fig. 3).
  for (const PatternId id : agent.detector().patterns().detected_ids()) {
    const PatternInfo& info = agent.detector().patterns()[id];
    std::printf("Detected pattern: ");
    for (std::size_t g = 0; g < info.grams.size(); ++g) {
      std::printf("%s%s", g ? "_" : "",
                  agent.interner().to_string(info.grams[g]).c_str());
    }
    std::printf("  (seen %u times, %u MPI calls per appearance)\n",
                info.frequency, info.n_mpi_calls);
  }
  return 0;
}
