// Bringing your own application to the framework.
//
// Shows the three ways a user plugs workloads in:
//   1. Implement AppModel for a custom communication structure (here: a
//      2D Jacobi stencil with periodic checkpoints).
//   2. Serialize the trace to the text format, reload it, and verify it.
//   3. Run the baseline/managed experiment on it and read out the metrics.
//
// Usage: ./examples/custom_workload [nranks] [iterations]
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "sim/experiment.hpp"
#include "trace/trace_io.hpp"
#include "workloads/scaling.hpp"

using namespace ibpower;

namespace {

/// A 2D Jacobi solver: per sweep, halo exchange along both grid axes, a
/// long relaxation compute, and a convergence allreduce; every 10th sweep
/// writes a checkpoint (gather to rank 0), which breaks the pattern the
/// same way real I/O phases do.
class JacobiModel final : public AppModel {
 public:
  [[nodiscard]] std::string name() const override { return "jacobi2d"; }

  [[nodiscard]] Trace generate(const WorkloadParams& p) const override {
    TraceEmitter em(name(), p);
    const ScalingHelper sc(p, 8, /*alpha=*/1.1);
    int gx, gy;
    grid_factor(p.nranks, &gx, &gy);

    const double relax = sc.comp_us(1800.0);
    const Bytes halo = sc.msg_bytes(32 * 1024);
    Trace& trace = em.raw_trace();
    for (int it = 0; it < p.iterations; ++it) {
      em.compute_all(relax, 0.05);
      // Nonblocking halo exchange along x: post irecv/isend, overlap the
      // boundary-independent relaxation, then waitall.
      for (Rank r = 0; r < p.nranks; ++r) {
        const int i = r % gx;
        const int j = r / gx;
        const Rank east = static_cast<Rank>(((i + 1) % gx) + j * gx);
        const Rank west = static_cast<Rank>(((i - 1 + gx) % gx) + j * gx);
        if (east == r) continue;
        trace.push(r, IrecvRecord{west, halo, 0, 1});
        trace.push(r, IsendRecord{east, halo, 0, 2});
      }
      em.compute_all(40.0, 0.05);  // interior relaxation overlaps the halo
      for (Rank r = 0; r < p.nranks; ++r) {
        const int i = r % gx;
        if (((i + 1) % gx) + (r / gx) * gx == r) continue;
        trace.push(r, WaitallRecord{});
      }
      em.compute_all(1.5, 0.05);
      em.sendrecv_grid(gx, gy, 1, halo, 1);  // y halo stays blocking
      em.compute_all(sc.comp_us(300.0), 0.05);
      em.collective(MpiCall::Allreduce, 8);
      if (it % 10 == 9) {
        em.compute_all(25.0, 0.05);
        em.collective(MpiCall::Gather, 64 * 1024);  // checkpoint
      }
    }
    return em.take();
  }
};

}  // namespace

int main(int argc, char** argv) {
  const int nranks = argc > 1 ? std::atoi(argv[1]) : 16;
  const int iterations = argc > 2 ? std::atoi(argv[2]) : 80;

  // 1. Generate.
  JacobiModel model;
  WorkloadParams params;
  params.nranks = nranks;
  params.iterations = iterations;
  const Trace trace = model.generate(params);
  std::printf("Generated %s: %d ranks, %zu records, %zu MPI calls\n",
              model.name().c_str(), nranks, trace.total_records(),
              trace.total_mpi_calls());

  // 2. Round-trip through the text format and validate.
  std::stringstream buffer;
  write_trace(buffer, trace);
  const Trace reloaded = read_trace(buffer);
  const std::string problem = reloaded.validate();
  std::printf("Round-trip validation: %s\n",
              problem.empty() ? "OK (sends/recvs matched, collectives agree)"
                              : problem.c_str());

  // 3. Baseline vs managed.
  ReplayOptions base_opt;
  ReplayEngine base_engine(&reloaded, base_opt);
  const ReplayResult base = base_engine.run();

  ReplayOptions managed_opt;
  managed_opt.enable_power_management = true;
  managed_opt.ppa.grouping_threshold = TimeNs::from_us(std::int64_t{24});
  managed_opt.ppa.displacement_factor = 0.01;
  ReplayEngine engine(&reloaded, managed_opt);
  const ReplayResult run = engine.run();

  std::vector<const IbLink*> ports;
  for (NodeId n = 0; n < nranks; ++n) {
    ports.push_back(
        &engine.fabric().link(engine.fabric().topology().node_uplink(n)));
  }
  const FleetPowerSummary power = aggregate_power(ports, PowerModelConfig{});

  std::printf("\nBaseline: %s   Managed: %s (%+.3f%%)\n",
              to_string(base.exec_time).c_str(),
              to_string(run.exec_time).c_str(),
              100.0 *
                  (static_cast<double>(run.exec_time.ns) -
                   static_cast<double>(base.exec_time.ns)) /
                  static_cast<double>(base.exec_time.ns));
  std::printf("Switch power savings: %.2f%%   hit rate: %.1f%%\n",
              power.switch_savings_pct, run.agent_total.hit_rate_pct());
  std::printf("Checkpoints every 10th sweep caused %llu pattern "
              "mispredicts (re-armed after one clean appearance each).\n",
              static_cast<unsigned long long>(
                  run.agent_total.pattern_mispredicts));
  return 0;
}
