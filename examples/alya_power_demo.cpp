// Full co-simulation demo: the paper's mechanism end-to-end on ALYA.
//
// Runs the Venus-Dimemas-style replay twice — power-unaware baseline and
// managed (PPA in the PMPI layer of every rank, gating each node's IB
// uplink) — and reports the switch power savings, execution-time cost,
// prediction quality, and a timeline excerpt like the paper's Fig. 6.
//
// Usage: ./examples/alya_power_demo [nranks] [iterations] [displacement%]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "sim/experiment.hpp"

using namespace ibpower;

int main(int argc, char** argv) {
  ExperimentConfig cfg;
  cfg.app = "alya";
  cfg.workload.nranks = argc > 1 ? std::atoi(argv[1]) : 16;
  cfg.workload.iterations = argc > 2 ? std::atoi(argv[2]) : 60;
  cfg.ppa.displacement_factor =
      argc > 3 ? std::atof(argv[3]) / 100.0 : 0.01;
  cfg.ppa.grouping_threshold = default_gt(cfg.app, cfg.workload.nranks);

  std::printf("ALYA, %d ranks, %d iterations, displacement %.1f%%, GT %s\n\n",
              cfg.workload.nranks, cfg.workload.iterations,
              100.0 * cfg.ppa.displacement_factor,
              to_string(cfg.ppa.grouping_threshold).c_str());

  const ExperimentResult r = run_experiment(cfg);

  std::printf("Baseline (always-on) execution : %s\n",
              to_string(r.baseline_time).c_str());
  std::printf("Managed execution              : %s  (%+.3f%%)\n",
              to_string(r.managed_time).c_str(), r.time_increase_pct);
  std::printf("IB switch power savings        : %.2f%%\n",
              r.power.switch_savings_pct);
  std::printf("Mean link low-power residency  : %.1f%%\n",
              100.0 * r.power.mean_low_residency);
  std::printf("Port energy: %.2f J vs %.2f J always-on\n",
              r.power.total_energy_joules, r.power.baseline_energy_joules);
  std::printf("MPI-call hit rate              : %.1f%%\n", r.hit_rate_pct);
  std::printf("Pattern mispredicts            : %llu\n",
              static_cast<unsigned long long>(r.agents.pattern_mispredicts));
  std::printf("Timing mispredicts (wakes)     : %llu (total penalty %s)\n",
              static_cast<unsigned long long>(r.on_demand_wakes),
              to_string(r.wake_penalty_total).c_str());

  std::printf("\nBaseline idle-interval distribution (Table I view):\n");
  static const char* names[3] = {"< 20us     ", "20..200us  ", ">= 200us   "};
  for (int b = 0; b < 3; ++b) {
    const auto& bucket = r.baseline_idle.buckets[static_cast<std::size_t>(b)];
    std::printf("  %s %8zu intervals (%5.1f%%)  %6.2f%% of idle time\n",
                names[b], bucket.count, bucket.pct_intervals,
                bucket.pct_idle_time);
  }

  // Timeline excerpt (Fig. 6 style) from a fresh managed replay.
  const auto app = make_app(cfg.app);
  const Trace trace = app->generate(cfg.workload);
  ReplayOptions opt;
  opt.fabric = cfg.fabric;
  opt.enable_power_management = true;
  opt.ppa = cfg.ppa;
  ReplayEngine engine(&trace, opt);
  const ReplayResult rr = engine.run();
  const StateTimeline tl =
      build_power_timeline(engine.fabric(), cfg.workload.nranks, rr.exec_time);
  std::printf("\nLink power modes ('.' full, '#' low, '~' transition):\n");
  tl.render_ascii(std::cout, 96, {{0, '.'}, {1, '#'}, {2, '~'}});
  return 0;
}
