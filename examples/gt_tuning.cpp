// Tuning the grouping threshold (GT) for an application — the paper's
// §IV-C methodology as a reusable tool.
//
// Sweeps GT from the 2*Treact minimum, scoring each value by the MPI-call
// hit rate on a baseline replay (prediction-only agents, no actuation),
// then confirms the chosen GT in a full closed-loop run.
//
// Usage: ./examples/gt_tuning [app] [nranks]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "sim/experiment.hpp"

using namespace ibpower;

int main(int argc, char** argv) {
  ExperimentConfig cfg;
  cfg.app = argc > 1 ? argv[1] : "nas_mg";
  cfg.workload.nranks = argc > 2 ? std::atoi(argv[2]) : 16;
  cfg.workload.iterations = 60;
  cfg.ppa.displacement_factor = 0.01;

  std::printf("GT tuning for %s @ %d ranks (Treact = %s, minimum GT = %s)\n\n",
              cfg.app.c_str(), cfg.workload.nranks,
              to_string(cfg.ppa.t_react).c_str(),
              to_string(2 * cfg.ppa.t_react).c_str());

  std::vector<TimeNs> candidates;
  for (const int us : {20, 24, 30, 40, 60, 90, 130, 200, 300, 400}) {
    candidates.push_back(TimeNs::from_us(static_cast<std::int64_t>(us)));
  }
  const auto points = sweep_gt(cfg, candidates);

  double best_hit = 0.0;
  for (const auto& p : points) best_hit = std::max(best_hit, p.hit_rate_pct);
  TimeNs chosen{};
  std::printf("  %-10s %-10s\n", "GT", "hit rate");
  for (const auto& p : points) {
    const bool pick = chosen.ns == 0 && p.hit_rate_pct >= best_hit - 1.0;
    if (pick) chosen = p.gt;
    std::printf("  %-10s %6.1f%%  %s%s\n", to_string(p.gt).c_str(),
                p.hit_rate_pct,
                std::string(static_cast<std::size_t>(p.hit_rate_pct / 3), '#')
                    .c_str(),
                pick ? "   <== chosen (smallest within 1% of best)" : "");
  }

  cfg.ppa.grouping_threshold = chosen;
  const ExperimentResult r = run_experiment(cfg);
  std::printf(
      "\nClosed-loop confirmation with GT = %s:\n"
      "  switch power savings %.2f%%, execution time %+.3f%%, hit %.1f%%\n",
      to_string(chosen).c_str(), r.power.switch_savings_pct,
      r.time_increase_pct, r.hit_rate_pct);
  std::printf("\nWhy not just a huge GT? It merges real idle gaps into grams\n"
              "and shrinks the regions where lanes can be shut down (§IV-C).\n");
  return 0;
}
