// The paper's §VI hypothesis: "we are expecting that our system would
// benefit more in weak scaling runs" — strong vs weak scaling savings for
// every application across the size grid.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ibpower;
  using namespace ibpower::bench;

  const int iterations = iterations_from_args(argc, argv, 60);
  print_report_banner(std::cout,
                      "Weak vs strong scaling (paper §VI hypothesis)");

  TablePrinter table({"App", "N proc", "Strong savings [%]",
                      "Weak savings [%]", "Strong incr [%]", "Weak incr [%]"});
  std::string last_app;
  double strong_sum = 0.0, weak_sum = 0.0;
  int cells = 0;
  for (const GridCell& cell : paper_grid()) {
    if (cell.nranks < 32) continue;  // the hypothesis concerns larger runs
    if (cell.app != last_app) {
      table.add_separator();
      last_app = cell.app;
    }
    ExperimentConfig strong = cell_config(cell, 0.01, iterations);
    ExperimentConfig weak = strong;
    weak.workload.weak_scaling = true;
    const auto rs = run_experiment(strong);
    const auto rw = run_experiment(weak);
    strong_sum += rs.power.switch_savings_pct;
    weak_sum += rw.power.switch_savings_pct;
    ++cells;
    table.add_row({pretty_app(cell.app), std::to_string(cell.nranks),
                   TablePrinter::fmt(rs.power.switch_savings_pct),
                   TablePrinter::fmt(rw.power.switch_savings_pct),
                   TablePrinter::fmt(rs.time_increase_pct),
                   TablePrinter::fmt(rw.time_increase_pct)});
  }
  table.add_separator();
  table.add_row({"AVERAGE", "",
                 TablePrinter::fmt(strong_sum / cells),
                 TablePrinter::fmt(weak_sum / cells), "", ""});
  table.print(std::cout);

  std::cout << "\nShape to hold (paper §VI): weak scaling keeps per-rank\n"
               "compute phases long, so the gateable idle share — and the\n"
               "savings — survive at scale instead of collapsing.\n";
  return 0;
}
