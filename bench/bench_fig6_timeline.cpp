// Reproduces the paper's Figure 6: an execution-trace timeline of GROMACS
// with 16 MPI processes showing when IB links enter low-power mode.
//
// Output: an ASCII rendering of the per-node-link power-mode timeline
// ('.' = full power, '#' = low power, '~' = transition), a Paraver-like
// .prv file, and the per-link residency summary Paraver would measure.
#include <fstream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ibpower;
  using namespace ibpower::bench;

  const int iterations = iterations_from_args(argc, argv, 40);
  print_report_banner(std::cout,
                      "Figure 6: GROMACS (16 ranks) link power-mode timeline");

  const GridCell cell{"gromacs", 16};
  ExperimentConfig cfg = cell_config(cell, 0.01, iterations);

  const auto app = make_app(cfg.app);
  const Trace trace = app->generate(cfg.workload);
  ReplayOptions opt;
  opt.fabric = cfg.fabric;
  opt.enable_power_management = true;
  opt.ppa = cfg.ppa;
  ReplayEngine engine(&trace, opt);
  const ReplayResult rr = engine.run();

  const StateTimeline timeline =
      build_power_timeline(engine.fabric(), cell.nranks, rr.exec_time);

  std::cout << "\nLink power modes over " << to_string(rr.exec_time)
            << " ('.' full power, '#' low power, '~' transition):\n\n";
  timeline.render_ascii(std::cout, 100,
                        {{0, '.'}, {1, '#'}, {2, '~'}});

  TablePrinter table({"Link (rank)", "Full power", "Low power", "Transition",
                      "Low residency [%]"});
  for (int n = 0; n < cell.nranks; ++n) {
    const TimeNs full = timeline.residency(n, 0);
    const TimeNs low = timeline.residency(n, 1);
    const TimeNs trans = timeline.residency(n, 2);
    table.add_row({std::to_string(n), to_string(full), to_string(low),
                   to_string(trans),
                   TablePrinter::fmt(100.0 * (low / rr.exec_time), 1)});
  }
  std::cout << "\n";
  table.print(std::cout);

  const std::string prv_path = "fig6_gromacs16.prv";
  std::ofstream prv(prv_path);
  timeline.write_prv(prv, "gromacs");
  std::cout << "\nParaver-like state records written to " << prv_path << "\n";
  std::cout << "Shape to hold (paper Fig. 6): periodic dark (low-power) bands\n"
               "during compute phases on every link, interrupted around the\n"
               "neighbour-search steps where prediction is re-learned.\n";
  return 0;
}
