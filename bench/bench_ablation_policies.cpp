// Ablation benches for the design choices DESIGN.md calls out:
//
//  A. Policy comparison — PPA (closed loop) vs the always-on baseline, a
//     hardware-style idle-timeout policy, and the oracle upper bound
//     (analytic over baseline idle gaps).
//  B. Displacement-factor sweep beyond the paper's {1,5,10}% grid.
//  C. On-demand behaviour in low power: wait-for-wake (paper) vs
//     transmitting at 1X width.
//  D. Power-model weighting: gated-ports (paper numbers) vs the
//     links-are-64%-of-switch weighting.
//  E. Deeper sleep states (paper §VI future work): larger reactivation
//     times with proportionally larger GT, and a lower low-power draw.
#include "bench_common.hpp"
#include "power/policies.hpp"
#include "power/switch_report.hpp"

namespace {

using namespace ibpower;
using namespace ibpower::bench;

struct ManagedOutcome {
  double savings_pct;
  double increase_pct;
  double low_residency;
};

ManagedOutcome run_managed(const ExperimentConfig& cfg, const Trace& trace,
                           TimeNs baseline_time, bool reduced_width = false,
                           PowerModelConfig power = {}) {
  ReplayOptions opt;
  opt.fabric = cfg.fabric;
  opt.fabric.link.transmit_at_reduced_width = reduced_width;
  opt.enable_power_management = true;
  opt.ppa = cfg.ppa;
  ReplayEngine engine(&trace, opt);
  const ReplayResult run = engine.run();
  std::vector<const IbLink*> ports;
  for (NodeId n = 0; n < cfg.workload.nranks; ++n) {
    ports.push_back(
        &engine.fabric().link(engine.fabric().topology().node_uplink(n)));
  }
  const auto fleet = aggregate_power(ports, power);
  const double increase = 100.0 *
                          (static_cast<double>(run.exec_time.ns) -
                           static_cast<double>(baseline_time.ns)) /
                          static_cast<double>(baseline_time.ns);
  return {fleet.switch_savings_pct, increase, fleet.mean_low_residency};
}

}  // namespace

int main(int argc, char** argv) {
  const int iterations = iterations_from_args(argc, argv, 60);
  print_report_banner(std::cout, "Ablations: policies & design choices");

  // ---------------------------------------------------------------- A
  std::cout << "\n--- A. Policy comparison (savings % per IB switch) ---\n";
  {
    TablePrinter table({"App", "PPA (paper)", "Timeout 50us", "Timeout 200us",
                        "Timeout 1ms", "Oracle", "PPA delay [%]"});
    for (const GridCell cell : {GridCell{"gromacs", 8}, GridCell{"alya", 8},
                                GridCell{"wrf", 8}, GridCell{"nas_bt", 9},
                                GridCell{"nas_mg", 8}}) {
      ExperimentConfig cfg = cell_config(cell, 0.01, iterations);
      const auto app = make_app(cfg.app);
      const Trace trace = app->generate(cfg.workload);

      ReplayOptions base_opt;
      base_opt.fabric = cfg.fabric;
      ReplayEngine base_engine(&trace, base_opt);
      const ReplayResult base = base_engine.run();

      // Analytic comparators over the baseline idle gaps.
      auto policy_savings = [&](auto&& evaluate) {
        double sum = 0.0;
        for (NodeId n = 0; n < cell.nranks; ++n) {
          const auto gaps =
              node_link_idle_gaps(base_engine.fabric(), n, base.exec_time);
          sum += evaluate(gaps).low_residency();
        }
        return 57.0 * sum / cell.nranks;  // 1 - 0.43 = 57% cap
      };
      const TimeNs tr = cfg.ppa.t_react;
      const double oracle = policy_savings([&](const auto& gaps) {
        return evaluate_oracle(gaps, base.exec_time, tr, tr);
      });
      auto timeout_savings = [&](TimeNs to) {
        return policy_savings([&](const auto& gaps) {
          return evaluate_idle_timeout(gaps, base.exec_time, tr, tr, to);
        });
      };

      const ManagedOutcome ppa = run_managed(cfg, trace, base.exec_time);
      table.add_row(
          {pretty_app(cell.app), TablePrinter::fmt(ppa.savings_pct),
           TablePrinter::fmt(timeout_savings(TimeNs::from_us(std::int64_t{50}))),
           TablePrinter::fmt(timeout_savings(TimeNs::from_us(std::int64_t{200}))),
           TablePrinter::fmt(timeout_savings(TimeNs::from_ms(1.0))),
           TablePrinter::fmt(oracle), TablePrinter::fmt(ppa.increase_pct)});
    }
    table.print(std::cout);
    std::cout << "Note: timeout policies wake on demand, so every gated gap\n"
              << "adds a full Treact to the critical path (not shown in their\n"
              << "savings); the PPA pays (almost) none of that by design.\n";
  }

  // ---------------------------------------------------------------- B
  std::cout << "\n--- B. Displacement-factor sweep (GROMACS@8, ALYA@8) ---\n";
  {
    TablePrinter table({"Displacement [%]", "GROMACS savings", "GROMACS incr",
                        "ALYA savings", "ALYA incr"});
    for (const double disp : {0.005, 0.01, 0.02, 0.05, 0.10, 0.20, 0.30}) {
      std::vector<std::string> row{TablePrinter::fmt(100.0 * disp, 1)};
      for (const char* app_name : {"gromacs", "alya"}) {
        ExperimentConfig cfg = cell_config({app_name, 8}, disp, iterations);
        const auto app = make_app(cfg.app);
        const Trace trace = app->generate(cfg.workload);
        ReplayOptions base_opt;
        base_opt.fabric = cfg.fabric;
        ReplayEngine base_engine(&trace, base_opt);
        const ReplayResult base = base_engine.run();
        const ManagedOutcome out = run_managed(cfg, trace, base.exec_time);
        row.push_back(TablePrinter::fmt(out.savings_pct));
        row.push_back(TablePrinter::fmt(out.increase_pct, 3));
      }
      table.add_row(std::move(row));
    }
    table.print(std::cout);
    std::cout << "Shape: savings decrease monotonically with displacement\n"
              << "(power-time trade-off, paper §III-B / §IV-B).\n";
  }

  // ---------------------------------------------------------------- C
  std::cout << "\n--- C. Low-power transmission: wait-for-wake vs 1X width ---\n";
  {
    TablePrinter table({"App", "Wait: savings", "Wait: incr", "1X: savings",
                        "1X: incr"});
    for (const GridCell cell : {GridCell{"gromacs", 32}, GridCell{"wrf", 32}}) {
      ExperimentConfig cfg = cell_config(cell, 0.01, iterations);
      const auto app = make_app(cfg.app);
      const Trace trace = app->generate(cfg.workload);
      ReplayOptions base_opt;
      base_opt.fabric = cfg.fabric;
      ReplayEngine base_engine(&trace, base_opt);
      const ReplayResult base = base_engine.run();
      const ManagedOutcome wait = run_managed(cfg, trace, base.exec_time, false);
      const ManagedOutcome lane1 = run_managed(cfg, trace, base.exec_time, true);
      table.add_row({pretty_app(cell.app), TablePrinter::fmt(wait.savings_pct),
                     TablePrinter::fmt(wait.increase_pct, 3),
                     TablePrinter::fmt(lane1.savings_pct),
                     TablePrinter::fmt(lane1.increase_pct, 3)});
    }
    table.print(std::cout);
  }

  // ---------------------------------------------------------------- D
  std::cout << "\n--- D. Power-model weighting (GROMACS@8) ---\n";
  {
    ExperimentConfig cfg = cell_config({"gromacs", 8}, 0.01, iterations);
    const auto app = make_app(cfg.app);
    const Trace trace = app->generate(cfg.workload);
    ReplayOptions base_opt;
    base_opt.fabric = cfg.fabric;
    ReplayEngine base_engine(&trace, base_opt);
    const ReplayResult base = base_engine.run();

    PowerModelConfig gated;
    PowerModelConfig share;
    share.weighting = PowerModelConfig::Weighting::LinkShareOfSwitch;
    const auto a = run_managed(cfg, trace, base.exec_time, false, gated);
    const auto b = run_managed(cfg, trace, base.exec_time, false, share);
    TablePrinter table({"Weighting", "Savings [%]"});
    table.add_row({"Gated ports (paper)", TablePrinter::fmt(a.savings_pct)});
    table.add_row({"Links = 64% of switch", TablePrinter::fmt(b.savings_pct)});
    table.print(std::cout);
  }

  // ---------------------------------------------------------------- E
  std::cout << "\n--- E. Deeper sleep states (paper §VI future work) ---\n";
  {
    TablePrinter table({"Treact", "Low draw", "GT", "Savings [%]",
                        "Time increase [%]"});
    struct Sleep {
      TimeNs t_react;
      double draw;
    };
    for (const Sleep s : {Sleep{TimeNs::from_us(std::int64_t{10}), 0.43},
                          Sleep{TimeNs::from_us(std::int64_t{100}), 0.30},
                          Sleep{TimeNs::from_ms(1.0), 0.15}}) {
      ExperimentConfig cfg = cell_config({"gromacs", 8}, 0.01, iterations);
      cfg.ppa.t_react = s.t_react;
      cfg.ppa.grouping_threshold =
          max(2 * s.t_react, cfg.ppa.grouping_threshold);
      cfg.ppa.min_low_power_duration = s.t_react;
      cfg.fabric.link.t_react = s.t_react;
      cfg.fabric.link.t_deact = s.t_react;
      cfg.power.low_power_fraction = s.draw;

      const auto app = make_app(cfg.app);
      const Trace trace = app->generate(cfg.workload);
      ReplayOptions base_opt;
      base_opt.fabric = cfg.fabric;
      ReplayEngine base_engine(&trace, base_opt);
      const ReplayResult base = base_engine.run();
      const ManagedOutcome out =
          run_managed(cfg, trace, base.exec_time, false, cfg.power);
      table.add_row({to_string(s.t_react), TablePrinter::fmt(s.draw, 2),
                     to_string(cfg.ppa.grouping_threshold),
                     TablePrinter::fmt(out.savings_pct),
                     TablePrinter::fmt(out.increase_pct, 3)});
    }
    table.print(std::cout);
    std::cout << "Shape (paper §VI): with accurate prediction, much larger\n"
              << "reactivation delays (whole-switch sleep, ~1 ms) can be\n"
              << "amortized for deeper savings without large slowdowns.\n";
  }

  // ---------------------------------------------------------------- F
  std::cout << "\n--- F. History-based link DVS (Shang et al. family) vs "
               "WRPS gating ---\n";
  {
    TablePrinter table({"App", "WRPS/PPA savings", "DVS savings",
                        "DVS stretch [% exec]", "DVS note"});
    for (const GridCell cell : {GridCell{"gromacs", 8}, GridCell{"wrf", 8},
                                GridCell{"nas_bt", 9}}) {
      ExperimentConfig cfg = cell_config(cell, 0.01, iterations);
      const auto app = make_app(cfg.app);
      const Trace trace = app->generate(cfg.workload);
      ReplayOptions base_opt;
      base_opt.fabric = cfg.fabric;
      ReplayEngine base_engine(&trace, base_opt);
      const ReplayResult base = base_engine.run();

      // DVS evaluated analytically over the baseline busy intervals.
      double dvs_savings = 0.0;
      TimeNs stretch{};
      for (NodeId n = 0; n < cell.nranks; ++n) {
        const IbLink& link = base_engine.fabric().node_link(n);
        IntervalSet busy;
        for (const auto& iv : link.busy(Direction::Up).intervals()) {
          busy.add(iv);
        }
        for (const auto& iv : link.busy(Direction::Down).intervals()) {
          busy.add(iv);
        }
        const DvsOutcome out = evaluate_history_dvs(busy, base.exec_time);
        dvs_savings += out.savings_pct() / cell.nranks;
        stretch += out.stretch_total;
      }
      const ManagedOutcome ppa = run_managed(cfg, trace, base.exec_time);
      table.add_row(
          {pretty_app(cell.app), TablePrinter::fmt(ppa.savings_pct),
           TablePrinter::fmt(dvs_savings),
           TablePrinter::fmt(100.0 * (stretch / base.exec_time) /
                                 cell.nranks,
                             3),
           "wakes-free but stretches bursts"});
    }
    table.print(std::cout);
    std::cout << "DVS saves aggressively on idle links (quadratic power in\n"
              << "frequency) but every burst that lands on an under-clocked\n"
              << "window is stretched — the risk Abts et al. accept for\n"
              << "datacenters and the paper rejects for HPC (§V).\n";
  }

  // ---------------------------------------------------------------- G
  std::cout << "\n--- G. Per-switch view of a managed GROMACS@16 run ---\n";
  {
    ExperimentConfig cfg = cell_config({"gromacs", 16}, 0.01, iterations);
    const auto app = make_app(cfg.app);
    const Trace trace = app->generate(cfg.workload);
    ReplayOptions opt;
    opt.fabric = cfg.fabric;
    opt.enable_power_management = true;
    opt.ppa = cfg.ppa;
    ReplayEngine engine(&trace, opt);
    (void)engine.run();
    const auto rows = switch_power_report(engine.fabric(), PowerModelConfig{});
    TablePrinter table({"Switch", "Kind", "Active ports",
                        "Savings (active) [%]", "Savings (all 36/14) [%]"});
    int printed = 0;
    for (const auto& row : rows) {
      if (row.active_ports == 0 && printed >= 3) continue;  // skip idle boxes
      table.add_row({std::to_string(row.id), row.is_leaf ? "leaf" : "top",
                     std::to_string(row.active_ports),
                     TablePrinter::fmt(row.savings_active_ports_pct),
                     TablePrinter::fmt(row.savings_all_ports_pct)});
      ++printed;
      if (printed > 6) break;
    }
    table.print(std::cout);
    std::cout << "Gating happens on the node-facing ports of the leaf\n"
              << "switches; trunks and top switches stay always-on (they\n"
              << "carry unpredictable aggregated traffic).\n";
  }
  return 0;
}
