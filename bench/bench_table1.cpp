// Reproduces the paper's Table I: distribution of link idle intervals.
//
// For every application and process count, replay the baseline (power-
// unaware) trace and classify every node-uplink idle interval into the
// paper's buckets (<20 us, 20-200 us, >200 us), reporting the interval
// count, the percentage of intervals, and the percentage of accumulated
// idle time per bucket.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ibpower;
  using namespace ibpower::bench;

  const int iterations = iterations_from_args(argc, argv);
  print_report_banner(std::cout, "Table I: distribution of link idle intervals");

  TablePrinter table({"App", "N proc", "<20us N", "<20us %", "<20us t%",
                      "20-200us N", "20-200 %", "20-200 t%", ">200us N",
                      ">200 %", ">200 t%", "reducible t%"});

  std::string last_app;
  for (const GridCell& cell : paper_grid()) {
    ExperimentConfig cfg = cell_config(cell, 0.01, iterations);

    const auto app = make_app(cfg.app);
    const Trace trace = app->generate(cfg.workload);
    ReplayOptions opt;
    opt.fabric = cfg.fabric;
    ReplayEngine engine(&trace, opt);
    const ReplayResult rr = engine.run();
    const IdleDistribution d =
        aggregate_idle(engine.fabric(), cell.nranks, rr.exec_time);

    if (cell.app != last_app) {
      table.add_separator();
      last_app = cell.app;
    }
    table.add_row({pretty_app(cell.app), std::to_string(cell.nranks),
                   std::to_string(d.buckets[0].count),
                   TablePrinter::fmt(d.buckets[0].pct_intervals),
                   TablePrinter::fmt(d.buckets[0].pct_idle_time, 3),
                   std::to_string(d.buckets[1].count),
                   TablePrinter::fmt(d.buckets[1].pct_intervals),
                   TablePrinter::fmt(d.buckets[1].pct_idle_time, 3),
                   std::to_string(d.buckets[2].count),
                   TablePrinter::fmt(d.buckets[2].pct_intervals),
                   TablePrinter::fmt(d.buckets[2].pct_idle_time, 2),
                   TablePrinter::fmt(100.0 * d.reducible_time_fraction(), 2)});
  }
  table.print(std::cout);

  std::cout << "\nPaper's Table I claim to reproduce: intervals >= 20us carry\n"
               ">99% of accumulated idle time in (almost) all configurations,\n"
               "so nearly all idle time is a candidate for lane gating.\n";
  return 0;
}
