// Simulation-throughput benchmark over the paper's 25-cell evaluation grid.
//
// Runs the full grid through ParallelExperimentRunner at several thread
// counts (default 1/2/4/8), reports wall-clock, events/sec and messages/sec
// per cell, verifies that every parallel result is bit-identical to the
// serial one, and emits machine-readable BENCH_throughput.json with rows
//   {cell, nranks, wall_ms, events_per_sec, messages_per_sec, jobs}
// — the perf trajectory baseline for future PRs.
//
// Usage: bench_throughput [--jobs-list 1,2,4,8] [--jobs N] [--iterations N]
//                         [--quick] [--out BENCH_throughput.json]
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "sim/parallel.hpp"

namespace {

using namespace ibpower;
using namespace ibpower::bench;

std::vector<unsigned> jobs_list_from_args(int argc, char** argv) {
  std::string spec = "1,2,4,8";
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--jobs-list") spec = argv[i + 1];
    if (std::string(argv[i]) == "--jobs") spec = argv[i + 1];
  }
  std::vector<unsigned> jobs;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t next = spec.find(',', pos);
    if (next == std::string::npos) next = spec.size();
    const int v = std::stoi(spec.substr(pos, next - pos));
    if (v > 0) jobs.push_back(static_cast<unsigned>(v));
    pos = next + 1;
  }
  return jobs.empty() ? std::vector<unsigned>{1} : jobs;
}

std::string out_from_args(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--out") return argv[i + 1];
  }
  return "BENCH_throughput.json";
}

struct Row {
  std::string cell;
  int nranks;
  double wall_ms;
  double events_per_sec;
  double messages_per_sec;
  unsigned jobs;
};

}  // namespace

int main(int argc, char** argv) {
  const int iterations = iterations_from_args(argc, argv, 60);
  const std::vector<unsigned> jobs_list = jobs_list_from_args(argc, argv);
  const std::string out = out_from_args(argc, argv);

  const auto cells = paper_grid();
  std::vector<ExperimentConfig> cfgs;
  cfgs.reserve(cells.size());
  for (const auto& cell : cells) {
    cfgs.push_back(cell_config(cell, 0.01, iterations));
  }

  std::vector<Row> rows;
  std::vector<ExperimentResult> reference;  // jobs == 1 results
  double wall_ms_1 = 0.0;
  bool all_identical = true;

  for (const unsigned jobs : jobs_list) {
    ParallelExperimentRunner runner(jobs);
    const auto t0 = std::chrono::steady_clock::now();
    const std::vector<ExperimentResult> results = runner.run_all(cfgs);
    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();

    if (reference.empty()) {
      reference = results;
      if (jobs == 1) wall_ms_1 = wall_ms;
    } else {
      for (std::size_t i = 0; i < results.size(); ++i) {
        if (!bit_identical(results[i], reference[i])) {
          all_identical = false;
          std::fprintf(stderr, "DETERMINISM VIOLATION: cell %s/%d at jobs=%u\n",
                       cells[i].app, cells[i].nranks, jobs);
        }
      }
    }

    const auto& work = runner.last_cell_work_ms();
    std::uint64_t total_events = 0;
    std::uint64_t total_messages = 0;
    for (std::size_t i = 0; i < results.size(); ++i) {
      total_events += results[i].sim_events;
      total_messages += results[i].messages;
      const double cell_s = work[i] / 1e3;
      rows.push_back(Row{
          std::string(cells[i].app), cells[i].nranks, work[i],
          cell_s > 0.0 ? static_cast<double>(results[i].sim_events) / cell_s
                       : 0.0,
          cell_s > 0.0 ? static_cast<double>(results[i].messages) / cell_s
                       : 0.0,
          jobs});
    }

    const double speedup = wall_ms_1 > 0.0 ? wall_ms_1 / wall_ms : 1.0;
    std::printf(
        "jobs %2u: wall %8.1f ms  work %8.1f ms  %6.2fx vs jobs=1  "
        "%.2fM events/s  %.2fM msgs/s\n",
        jobs, wall_ms, runner.last_total_work_ms(), speedup,
        static_cast<double>(total_events) / wall_ms / 1e3,
        static_cast<double>(total_messages) / wall_ms / 1e3);
  }

  std::printf("determinism: parallel results %s serial reference\n",
              all_identical ? "bit-identical to" : "DIFFER FROM");

  std::ofstream os(out);
  if (!os) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  os << "[\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "  {\"cell\": \"%s\", \"nranks\": %d, \"wall_ms\": %.3f, "
                  "\"events_per_sec\": %.1f, \"messages_per_sec\": %.1f, "
                  "\"jobs\": %u}%s\n",
                  r.cell.c_str(), r.nranks, r.wall_ms, r.events_per_sec,
                  r.messages_per_sec, r.jobs, i + 1 < rows.size() ? "," : "");
    os << buf;
  }
  os << "]\n";
  std::printf("wrote %s (%zu rows)\n", out.c_str(), rows.size());
  return all_identical ? 0 : 1;
}
