// Simulation-throughput benchmark over the paper's 25-cell evaluation grid.
//
// Runs the full grid through ParallelExperimentRunner at several thread
// counts (default 1/2/4/8), reports wall-clock, events/sec and messages/sec
// per cell, verifies that every parallel result is bit-identical to the
// serial one, and emits machine-readable BENCH_throughput.json with rows
//   {cell, nranks, wall_ms, gen_ms, base_ms, managed_ms,
//    events_per_sec, messages_per_sec, jobs, shards,
//    utilization, steals, host_cores}
// — the perf trajectory baseline for future PRs. wall_ms is replay work
// only (base + managed legs); trace generation is reported separately in
// gen_ms and charged once per distinct trace (sharers show 0).
// utilization/steals come from the TaskEngine's scheduler counters for the
// level's best pass (every cell row from one run_all shares them).
//
// After the jobs sweep the bench runs the intra-replay shards sweep
// (DESIGN.md §11): every multi-leaf cell (nranks >= 64) re-runs at jobs=1
// with cfg.shards in --shards-list, bit-checked against the serial
// reference, and lands as jobs=1/shards=S rows. host_cores records the
// machine's concurrency so the regression gate only enforces speedup
// floors where the hardware could actually deliver a speedup.
//
// Two aggregate sections follow (skipped under --cells): "hetero_mix"
// rows time a deliberately imbalanced 8/128/1024-rank grid end to end at
// jobs 1/2/4 with the fabric-scale cells elastically sharded (shards = 0),
// and "campaign_mix" rows drive the same mix through CampaignSession as
// JSONL request lines at jobs 1/4. Both are wall-clock rows; the jobs > 1
// entries are the barrier-elimination acceptance pin for multi-core hosts.
//
// Usage: bench_throughput [--jobs-list 1,2,4,8] [--jobs N] [--iterations N]
//                         [--shards-list 2,4,8] [--quick] [--smoke]
//                         [--cells app:nranks,...]
//                         [--out BENCH_throughput.json]
//
// --smoke restricts the run to one small cell per application at jobs=1 —
// the CI perf gate compares its events_per_sec against the committed
// BENCH_baseline.json (tools/check_bench_regression.py).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "obs/sched_export.hpp"
#include "sim/campaign.hpp"
#include "sim/parallel.hpp"

namespace {

using namespace ibpower;
using namespace ibpower::bench;

bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == flag) return true;
  }
  return false;
}

std::vector<unsigned> jobs_list_from_args(int argc, char** argv) {
  // The smoke gate only needs the serial number; a full sweep on a busy
  // shared CI runner would just add noise.
  std::string spec = has_flag(argc, argv, "--smoke") ? "1" : "1,2,4,8";
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--jobs-list") spec = argv[i + 1];
    if (std::string(argv[i]) == "--jobs") spec = argv[i + 1];
  }
  std::vector<unsigned> jobs;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t next = spec.find(',', pos);
    if (next == std::string::npos) next = spec.size();
    const int v = std::stoi(spec.substr(pos, next - pos));
    if (v > 0) jobs.push_back(static_cast<unsigned>(v));
    pos = next + 1;
  }
  return jobs.empty() ? std::vector<unsigned>{1} : jobs;
}

std::vector<int> shards_list_from_args(int argc, char** argv) {
  // Smoke keeps one sharded level so the CI gate covers the sharded hot
  // path without quadrupling the gate's runtime.
  std::string spec = has_flag(argc, argv, "--smoke") ? "4" : "2,4,8";
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--shards-list") spec = argv[i + 1];
  }
  std::vector<int> shards;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t next = spec.find(',', pos);
    if (next == std::string::npos) next = spec.size();
    const int v = std::stoi(spec.substr(pos, next - pos));
    if (v > 1) shards.push_back(v);
    pos = next + 1;
  }
  return shards;
}

std::string out_from_args(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--out") return argv[i + 1];
  }
  return "BENCH_throughput.json";
}

int repeats_from_args(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--repeats") return std::stoi(argv[i + 1]);
  }
  // Smoke cells are a few ms each; best-of-5 keeps scheduler noise out of
  // the CI regression gate.
  return has_flag(argc, argv, "--smoke") ? 5 : 1;
}

// "--cells gromacs:128,alya:64" restricts the grid; app names must match
// the registry. Used by profiling runs that need one cell in isolation.
std::vector<GridCell> cells_from_args(int argc, char** argv,
                                      std::vector<GridCell> fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) != "--cells") continue;
    static std::vector<std::string> names;  // keeps GridCell::app alive
    std::vector<GridCell> cells;
    std::string spec = argv[i + 1];
    // SSO strings keep their bytes inside the object, so the vector must
    // never reallocate once a c_str() has been handed out.
    names.reserve(spec.size());
    std::size_t pos = 0;
    while (pos < spec.size()) {
      std::size_t next = spec.find(',', pos);
      if (next == std::string::npos) next = spec.size();
      const std::string item = spec.substr(pos, next - pos);
      const std::size_t colon = item.find(':');
      if (colon != std::string::npos) {
        names.push_back(item.substr(0, colon));
        cells.push_back(
            {names.back().c_str(), std::stoi(item.substr(colon + 1))});
      }
      pos = next + 1;
    }
    if (!cells.empty()) return cells;
  }
  return fallback;
}

struct Row {
  std::string cell;
  int nranks;
  double wall_ms;     // replay work: base_ms + managed_ms
  double gen_ms;      // trace generation, charged to the owning cell only
  double base_ms;
  double managed_ms;
  double events_per_sec;
  double messages_per_sec;
  unsigned jobs;
  int shards;
  // Engine-level scheduler columns (one value per run_all; every cell row
  // from the same level shares them). utilization < 0 means not captured.
  double utilization = -1.0;
  std::uint64_t steals = 0;
};

// Busy fraction + steal count for the run the runner just finished. Valid
// right after run_all: the engine's counters and clock were reset when the
// run started, so now_ns() is that run's wall time.
ibpower::obs::SchedSummary engine_summary(ParallelExperimentRunner& runner) {
  return ibpower::obs::summarize_sched(runner.last_sched_profile(),
                                       runner.engine().now_ns());
}

}  // namespace

int main(int argc, char** argv) {
  // Smoke cells run longer (more app iterations) than the default grid so
  // each cell takes ~10ms instead of ~2ms: relative timer/scheduler noise
  // shrinks with cell length, which the 20% CI gate tolerance relies on.
  const int iterations = iterations_from_args(
      argc, argv, has_flag(argc, argv, "--smoke") ? 240 : 60);
  const std::vector<unsigned> jobs_list = jobs_list_from_args(argc, argv);
  const std::string out = out_from_args(argc, argv);

  auto cells = paper_grid();
  if (has_flag(argc, argv, "--smoke")) {
    // One small cell per application: enough to catch a hot-path
    // regression, small enough for a CI gate. The "+trunk" cell exercises
    // the whole-fabric configuration (consolidating routing + trunk sleep)
    // at full scale so a slowdown in the trunk hot path is gated too; the
    // plain 128-rank cell gates per-event cost at scale without the trunk
    // machinery in the way (the cross-leaf fan-out is the dominant term
    // there — see DESIGN.md §11's scaling notes). The "+contention" cell
    // gates the per-hop arrival-order reservation discipline (one DES
    // event per hop; DESIGN.md §12). The "+predictor" cell swaps in the
    // pattern-free multi-timeout predictor so the IdlePredictor dispatch
    // and the request-heavy path are gated too (DESIGN.md §13). The
    // "+host" cell runs host-side co-management under a mildly binding
    // power cap, gating the per-call host FSM and the cap epoch/apply
    // machinery (DESIGN.md §15).
    cells = {{"gromacs", 16}, {"alya", 16},          {"wrf", 16},
             {"nas_bt", 16},  {"nas_mg", 16},        {"gromacs", 128},
             {"gromacs+trunk", 128},                 {"gromacs+contention", 128},
             {"gromacs+predictor", 128},             {"gromacs+host", 128}};
  }
  cells = cells_from_args(argc, argv, std::move(cells));
  std::vector<ExperimentConfig> cfgs;
  cfgs.reserve(cells.size());
  for (const auto& cell : cells) {
    cfgs.push_back(cell_config(cell, 0.01, iterations));
  }

  // Per-jobs-level best observations. Repeats iterate over the *whole*
  // jobs sweep (outer loop) rather than hammering one level N times in a
  // row: a transient background-load spike then costs one sweep pass and
  // is discarded by the per-level min instead of poisoning a single level,
  // which is what used to make the recorded 1->8 curve non-monotone.
  struct LevelBest {
    std::vector<ExperimentResult> results;
    double wall_ms = 0.0;
    std::vector<double> work, gen, base, managed;
    double utilization = -1.0;
    std::uint64_t steals = 0;
    bool have = false;
  };
  std::vector<LevelBest> levels(jobs_list.size());
  std::vector<ExperimentResult> reference;  // first level's results
  bool all_identical = true;

  const int repeats = repeats_from_args(argc, argv);
  for (int rep = 0; rep < repeats; ++rep) {
    for (std::size_t k = 0; k < jobs_list.size(); ++k) {
      // ABBA scheduling: odd passes visit the levels in reverse so slow
      // drift in host load cannot systematically favor one end of the
      // sweep.
      const std::size_t li = (rep % 2 == 0) ? k : jobs_list.size() - 1 - k;
      ParallelExperimentRunner runner(jobs_list[li]);
      const auto t0 = std::chrono::steady_clock::now();
      std::vector<ExperimentResult> run = runner.run_all(cfgs);
      const double ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - t0)
              .count();
      const obs::SchedSummary sched = engine_summary(runner);
      LevelBest& best = levels[li];
      if (!best.have) {
        best.have = true;
        best.results = std::move(run);
        best.wall_ms = ms;
        best.utilization = sched.utilization;
        best.steals = sched.steals;
        best.work = runner.last_cell_work_ms();
        best.gen = runner.last_cell_gen_ms();
        best.base = runner.last_cell_base_ms();
        best.managed = runner.last_cell_managed_ms();
        if (reference.empty()) {
          reference = best.results;
        } else {
          for (std::size_t i = 0; i < best.results.size(); ++i) {
            if (!bit_identical(best.results[i], reference[i])) {
              all_identical = false;
              std::fprintf(stderr,
                           "DETERMINISM VIOLATION: cell %s/%d at jobs=%u\n",
                           cells[i].app, cells[i].nranks, jobs_list[li]);
            }
          }
        }
        continue;
      }
      if (ms < best.wall_ms) {
        best.wall_ms = ms;
        best.utilization = sched.utilization;
        best.steals = sched.steals;
      }
      // Keep the fastest observation per cell (results are bit-identical
      // across repeats, so only the timings differ).
      for (std::size_t i = 0; i < best.work.size(); ++i) {
        if (runner.last_cell_work_ms()[i] < best.work[i]) {
          best.work[i] = runner.last_cell_work_ms()[i];
          best.base[i] = runner.last_cell_base_ms()[i];
          best.managed[i] = runner.last_cell_managed_ms()[i];
        }
        best.gen[i] = std::min(best.gen[i], runner.last_cell_gen_ms()[i]);
      }
    }
  }

  std::vector<Row> rows;
  const double wall_ms_1 = levels.front().wall_ms;
  for (std::size_t li = 0; li < jobs_list.size(); ++li) {
    const LevelBest& best = levels[li];
    const unsigned jobs = jobs_list[li];
    std::uint64_t total_events = 0;
    std::uint64_t total_messages = 0;
    double total_work = 0.0;
    double total_gen = 0.0;
    for (std::size_t i = 0; i < best.results.size(); ++i) {
      total_events += best.results[i].sim_events;
      total_messages += best.results[i].messages;
      total_work += best.work[i];
      total_gen += best.gen[i];
      const double cell_s = best.work[i] / 1e3;
      rows.push_back(Row{
          std::string(cells[i].app), cells[i].nranks, best.work[i],
          best.gen[i], best.base[i], best.managed[i],
          cell_s > 0.0
              ? static_cast<double>(best.results[i].sim_events) / cell_s
              : 0.0,
          cell_s > 0.0
              ? static_cast<double>(best.results[i].messages) / cell_s
              : 0.0,
          jobs, 1, best.utilization, best.steals});
    }

    const double speedup = wall_ms_1 > 0.0 ? wall_ms_1 / best.wall_ms : 1.0;
    std::printf(
        "jobs %2u: wall %8.1f ms  work %8.1f ms  gen %6.1f ms  "
        "%6.2fx vs jobs=1  %.2fM events/s  %.2fM msgs/s  util %5.1f%%  "
        "steals %llu\n",
        jobs, best.wall_ms, total_work, total_gen, speedup,
        static_cast<double>(total_events) / best.wall_ms / 1e3,
        static_cast<double>(total_messages) / best.wall_ms / 1e3,
        100.0 * best.utilization,
        static_cast<unsigned long long>(best.steals));
  }

  // ---- intra-replay shards sweep (DESIGN.md §11) ----
  //
  // Re-run every multi-leaf cell at jobs=1 with the replay itself sharded.
  // Only cells spanning 4+ leaves (nranks >= 64 at m1 = 18) are worth a
  // row: below that the executor clamps shards to the leaf count and the
  // sweep would re-measure near-serial runs.
  const std::vector<int> shards_list = shards_list_from_args(argc, argv);
  std::vector<std::size_t> shard_cells;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (cells[i].nranks >= 64) shard_cells.push_back(i);
  }
  if (!shards_list.empty() && !shard_cells.empty()) {
    struct ShardBest {
      std::vector<ExperimentResult> results;
      std::vector<double> work, base, managed;
      double wall_ms = 0.0;
      double utilization = -1.0;
      std::uint64_t steals = 0;
      bool have = false;
    };
    std::vector<ShardBest> sbest(shards_list.size());
    for (int rep = 0; rep < repeats; ++rep) {
      for (std::size_t k = 0; k < shards_list.size(); ++k) {
        const std::size_t li =
            (rep % 2 == 0) ? k : shards_list.size() - 1 - k;
        std::vector<ExperimentConfig> scfgs;
        scfgs.reserve(shard_cells.size());
        for (const std::size_t ci : shard_cells) {
          ExperimentConfig cfg = cfgs[ci];
          cfg.shards = shards_list[li];
          scfgs.push_back(std::move(cfg));
        }
        ParallelExperimentRunner runner(1);
        const auto st0 = std::chrono::steady_clock::now();
        std::vector<ExperimentResult> run = runner.run_all(scfgs);
        const double sms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - st0)
                .count();
        const obs::SchedSummary sched = engine_summary(runner);
        ShardBest& best = sbest[li];
        if (!best.have) {
          best.have = true;
          best.results = std::move(run);
          best.wall_ms = sms;
          best.utilization = sched.utilization;
          best.steals = sched.steals;
          best.work = runner.last_cell_work_ms();
          best.base = runner.last_cell_base_ms();
          best.managed = runner.last_cell_managed_ms();
          // The sharded replay must reproduce the serial jobs-sweep
          // results bit for bit — the tentpole determinism contract.
          for (std::size_t i = 0; i < shard_cells.size(); ++i) {
            if (!bit_identical(best.results[i],
                               reference[shard_cells[i]])) {
              all_identical = false;
              std::fprintf(
                  stderr, "DETERMINISM VIOLATION: cell %s/%d at shards=%d\n",
                  cells[shard_cells[i]].app, cells[shard_cells[i]].nranks,
                  shards_list[li]);
            }
          }
          continue;
        }
        if (sms < best.wall_ms) {
          best.wall_ms = sms;
          best.utilization = sched.utilization;
          best.steals = sched.steals;
        }
        for (std::size_t i = 0; i < best.work.size(); ++i) {
          if (runner.last_cell_work_ms()[i] < best.work[i]) {
            best.work[i] = runner.last_cell_work_ms()[i];
            best.base[i] = runner.last_cell_base_ms()[i];
            best.managed[i] = runner.last_cell_managed_ms()[i];
          }
        }
      }
    }
    for (std::size_t li = 0; li < shards_list.size(); ++li) {
      const ShardBest& best = sbest[li];
      double total_work = 0.0;
      double serial_work = 0.0;
      for (std::size_t i = 0; i < shard_cells.size(); ++i) {
        const std::size_t ci = shard_cells[i];
        total_work += best.work[i];
        serial_work += levels.front().work[ci];
        const double cell_s = best.work[i] / 1e3;
        rows.push_back(Row{
            std::string(cells[ci].app), cells[ci].nranks, best.work[i],
            0.0, best.base[i], best.managed[i],
            cell_s > 0.0
                ? static_cast<double>(best.results[i].sim_events) / cell_s
                : 0.0,
            cell_s > 0.0
                ? static_cast<double>(best.results[i].messages) / cell_s
                : 0.0,
            1, shards_list[li], best.utilization, best.steals});
      }
      std::printf(
          "shards %2d: work %8.1f ms over %zu cells  %6.2fx vs shards=1\n",
          shards_list[li], total_work, shard_cells.size(),
          total_work > 0.0 ? serial_work / total_work : 1.0);
    }
  }

  // ---- heterogeneous-grid scheduling cell (DESIGN.md §14) ----
  //
  // One aggregate row per jobs level: a deliberately imbalanced mix of 8-,
  // 128- and 1024-rank cells (plus a trace sharer) submitted as a single
  // run_all. The 1024-rank pole carries ~90% of the work, so the old
  // phase-barrier scheduler pinned every other worker idle during its
  // replay; the elastic engine shards the pole across idle workers
  // (cfg.shards = 0 resolves to the engine's worker count) and overlaps
  // the small cells' legs with trace generation. wall_ms here is true
  // end-to-end wall clock, not summed work, so the jobs > 1 rows carry the
  // barrier-elimination speedup the regression gate enforces on hosts with
  // enough cores.
  if (!has_flag(argc, argv, "--cells")) {
    const int hetero_iters = 60;  // fixed: rows comparable across modes
    std::vector<ExperimentConfig> hcfgs;
    hcfgs.push_back(cell_config({"alya", 8}, 0.01, hetero_iters));
    {
      ExperimentConfig sharer = hcfgs.back();  // replay-only diff: shares
      sharer.ppa.displacement_factor = 0.05;   // the 8-rank trace
      hcfgs.push_back(std::move(sharer));
    }
    hcfgs.push_back(cell_config({"gromacs", 128}, 0.01, hetero_iters));
    {
      ExperimentConfig big =
          cell_config({"gromacs", 1024}, 0.01, hetero_iters);
      big.fabric.xgft = XgftParams{8, 8, 1, 4, 16, 2};  // 3 levels, 1024
      hcfgs.push_back(std::move(big));
    }
    hcfgs[2].shards = 0;  // elastic: the fabric-scale cells soak up
    hcfgs[3].shards = 0;  // whatever workers the small cells leave idle
    int hetero_ranks = 0;
    for (const auto& cfg : hcfgs) hetero_ranks += cfg.workload.nranks;

    // Serial bit-reference. Results are jobs- and shards-invariant, so one
    // unsharded serial pass covers every level below.
    std::vector<ExperimentResult> href;
    href.reserve(hcfgs.size());
    for (ExperimentConfig cfg : hcfgs) {
      cfg.shards = 1;
      href.push_back(run_experiment(cfg));
    }

    const std::vector<unsigned> hetero_jobs = {1, 2, 4};
    struct HeteroBest {
      double wall_ms = 0.0;
      double gen_ms = 0.0, base_ms = 0.0, managed_ms = 0.0;
      double utilization = -1.0;
      std::uint64_t steals = 0;
      std::uint64_t events = 0, messages = 0;
      bool have = false;
    };
    std::vector<HeteroBest> hbest(hetero_jobs.size());
    // The pole makes each pass ~0.5 s; cap the repeats so smoke stays a
    // gate, not a benchmark marathon (the baseline rows are "new"-flagged
    // with the wider tolerance anyway).
    const int hetero_reps = std::min(repeats, 3);
    for (int rep = 0; rep < hetero_reps; ++rep) {
      for (std::size_t k = 0; k < hetero_jobs.size(); ++k) {
        const std::size_t li =
            (rep % 2 == 0) ? k : hetero_jobs.size() - 1 - k;
        ParallelExperimentRunner runner(hetero_jobs[li]);
        const auto t0 = std::chrono::steady_clock::now();
        const std::vector<ExperimentResult> run = runner.run_all(hcfgs);
        const double ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - t0)
                .count();
        const obs::SchedSummary sched = engine_summary(runner);
        for (std::size_t i = 0; i < run.size(); ++i) {
          if (!bit_identical(run[i], href[i])) {
            all_identical = false;
            std::fprintf(stderr,
                         "DETERMINISM VIOLATION: hetero cell %zu at "
                         "jobs=%u\n",
                         i, hetero_jobs[li]);
          }
        }
        HeteroBest& best = hbest[li];
        if (!best.have || ms < best.wall_ms) {
          best.wall_ms = ms;
          double gen = 0.0, base = 0.0, managed = 0.0;
          for (std::size_t i = 0; i < run.size(); ++i) {
            gen += runner.last_cell_gen_ms()[i];
            base += runner.last_cell_base_ms()[i];
            managed += runner.last_cell_managed_ms()[i];
          }
          best.gen_ms = gen;
          best.base_ms = base;
          best.managed_ms = managed;
          best.utilization = sched.utilization;
          best.steals = sched.steals;
          if (!best.have) {
            for (const ExperimentResult& r : run) {
              best.events += r.sim_events;
              best.messages += r.messages;
            }
          }
          best.have = true;
        }
      }
    }
    const double hetero_wall_1 = hbest.front().wall_ms;
    for (std::size_t li = 0; li < hetero_jobs.size(); ++li) {
      const HeteroBest& best = hbest[li];
      const double s = best.wall_ms / 1e3;
      rows.push_back(Row{
          "hetero_mix", hetero_ranks, best.wall_ms, best.gen_ms,
          best.base_ms, best.managed_ms,
          s > 0.0 ? static_cast<double>(best.events) / s : 0.0,
          s > 0.0 ? static_cast<double>(best.messages) / s : 0.0,
          hetero_jobs[li], 1, best.utilization, best.steals});
      std::printf(
          "hetero jobs %2u: wall %8.1f ms  %6.2fx vs jobs=1  "
          "util %5.1f%%  steals %llu\n",
          hetero_jobs[li], best.wall_ms,
          best.wall_ms > 0.0 ? hetero_wall_1 / best.wall_ms : 1.0,
          100.0 * best.utilization,
          static_cast<unsigned long long>(best.steals));
    }

    // ---- campaign-session throughput (long-running JSONL mode) ----
    //
    // The same mix driven through CampaignSession as parsed JSONL request
    // lines: measures the wire-format round-trip, the refcounted trace
    // cache and in-order row streaming wrapped around the same engine.
    // Formatted rows must be byte-identical across worker counts — the
    // campaign determinism pin, enforced here on real request traffic.
    const std::vector<std::string> req_lines = {
        R"({"id":"alya-8","app":"alya","nranks":8,"iterations":60})",
        R"({"id":"alya-8-disp","app":"alya","nranks":8,"iterations":60,)"
        R"("disp":5})",
        R"({"id":"gromacs-128","app":"gromacs","nranks":128,)"
        R"("iterations":60,"shards":0})",
        R"({"id":"gromacs-1024","app":"gromacs","nranks":1024,)"
        R"("iterations":60,"xgft":"8,8,1,4,16,2","shards":0})",
    };
    const std::vector<unsigned> campaign_jobs = {1, 4};
    struct CampaignBest {
      double wall_ms = 0.0;
      double gen_ms = 0.0, base_ms = 0.0, managed_ms = 0.0;
      double utilization = -1.0;
      std::uint64_t steals = 0;
      std::uint64_t events = 0, messages = 0;
      bool have = false;
    };
    std::vector<CampaignBest> cbest(campaign_jobs.size());
    std::vector<std::string> campaign_ref;  // first level's formatted rows
    for (int rep = 0; rep < hetero_reps; ++rep) {
      for (std::size_t k = 0; k < campaign_jobs.size(); ++k) {
        const std::size_t li =
            (rep % 2 == 0) ? k : campaign_jobs.size() - 1 - k;
        ParallelExperimentRunner runner(campaign_jobs[li]);
        CampaignSession session(runner);
        const auto t0 = std::chrono::steady_clock::now();
        int lineno = 0;
        for (const std::string& line : req_lines) {
          ++lineno;
          CampaignRequest req;
          std::string err;
          if (parse_campaign_request(line, lineno, &req, &err)) {
            session.submit(req);
          } else {
            std::fprintf(stderr, "campaign request rejected: %s\n",
                         err.c_str());
            all_identical = false;
          }
        }
        std::vector<std::string> formatted;
        double gen = 0.0, base = 0.0, managed = 0.0;
        std::uint64_t events = 0, messages = 0;
        CampaignRow row;
        while (session.pop(&row)) {
          formatted.push_back(format_campaign_row(row));
          if (!row.ok) {
            std::fprintf(stderr, "campaign row %s failed: %s\n",
                         row.id.c_str(), row.error.c_str());
            all_identical = false;
            continue;
          }
          gen += row.gen_ms;
          base += row.base_ms;
          managed += row.managed_ms;
          events += row.result.sim_events;
          messages += row.result.messages;
        }
        const double ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - t0)
                .count();
        const obs::SchedSummary sched = engine_summary(runner);
        if (campaign_ref.empty()) {
          campaign_ref = formatted;
        } else if (formatted != campaign_ref) {
          all_identical = false;
          std::fprintf(stderr,
                       "DETERMINISM VIOLATION: campaign rows diverged at "
                       "jobs=%u\n",
                       campaign_jobs[li]);
        }
        CampaignBest& best = cbest[li];
        if (!best.have || ms < best.wall_ms) {
          best.wall_ms = ms;
          best.gen_ms = gen;
          best.base_ms = base;
          best.managed_ms = managed;
          best.utilization = sched.utilization;
          best.steals = sched.steals;
          best.events = events;
          best.messages = messages;
          best.have = true;
        }
      }
    }
    const double campaign_wall_1 = cbest.front().wall_ms;
    for (std::size_t li = 0; li < campaign_jobs.size(); ++li) {
      const CampaignBest& best = cbest[li];
      const double s = best.wall_ms / 1e3;
      rows.push_back(Row{
          "campaign_mix", hetero_ranks, best.wall_ms, best.gen_ms,
          best.base_ms, best.managed_ms,
          s > 0.0 ? static_cast<double>(best.events) / s : 0.0,
          s > 0.0 ? static_cast<double>(best.messages) / s : 0.0,
          campaign_jobs[li], 1, best.utilization, best.steals});
      std::printf(
          "campaign jobs %2u: wall %8.1f ms  %6.2fx vs jobs=1  "
          "util %5.1f%%  steals %llu\n",
          campaign_jobs[li], best.wall_ms,
          best.wall_ms > 0.0 ? campaign_wall_1 / best.wall_ms : 1.0,
          100.0 * best.utilization,
          static_cast<unsigned long long>(best.steals));
    }
  }

  std::printf("determinism: parallel results %s serial reference\n",
              all_identical ? "bit-identical to" : "DIFFER FROM");

  std::ofstream os(out);
  if (!os) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  os << "[\n";
  const unsigned host_cores = ThreadPool::default_concurrency();
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    char sched_cols[96] = "";
    if (r.utilization >= 0.0) {
      std::snprintf(sched_cols, sizeof(sched_cols),
                    "\"utilization\": %.4f, \"steals\": %llu, ",
                    r.utilization,
                    static_cast<unsigned long long>(r.steals));
    }
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "  {\"cell\": \"%s\", \"nranks\": %d, \"wall_ms\": %.3f, "
                  "\"gen_ms\": %.3f, \"base_ms\": %.3f, \"managed_ms\": %.3f, "
                  "\"events_per_sec\": %.1f, \"messages_per_sec\": %.1f, "
                  "\"jobs\": %u, \"shards\": %d, %s\"host_cores\": %u}%s\n",
                  r.cell.c_str(), r.nranks, r.wall_ms, r.gen_ms, r.base_ms,
                  r.managed_ms, r.events_per_sec, r.messages_per_sec, r.jobs,
                  r.shards, sched_cols, host_cores,
                  i + 1 < rows.size() ? "," : "");
    os << buf;
  }
  os << "]\n";
  std::printf("wrote %s (%zu rows)\n", out.c_str(), rows.size());
  return all_identical ? 0 : 1;
}
