// Reproduces the paper's Table IV: PPA overheads at 16 MPI processes,
// averaged over all processes.
//
// Unlike the other benches (which charge the paper's *modeled* overheads to
// simulated time), this one measures the *real* wall-clock cost of our PPA
// implementation, exactly as the paper measured its own (gettimeofday
// around the interception): per-call interception cost, the fraction of
// calls on which the full PPA scan runs, the mean cost of such a scan, and
// the amortized cost per MPI call.
#include <chrono>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ibpower;
  using namespace ibpower::bench;
  using Clock = std::chrono::steady_clock;

  const int iterations = iterations_from_args(argc, argv, 120);
  print_report_banner(std::cout, "Table IV: PPA overheads (16 MPI processes)");

  auto paper_row = [](const std::string& app) -> std::array<double, 3> {
    // {% calls w/ PPA, us per invoked call, us per all calls}
    static const std::map<std::string, std::array<double, 3>> rows = {
        {"gromacs", {4.7, 25.1, 2.1}}, {"alya", {1.2, 16.1, 1.2}},
        {"wrf", {0.4, 7.8, 1.1}},      {"nas_bt", {3.7, 6.9, 1.1}},
        {"nas_mg", {0.5, 26.4, 1.05}},
    };
    return rows.at(app);
  };

  TablePrinter table({"App", "PPA calls [%]", "us/invoked call",
                      "us/all calls", "paper %", "paper us/inv",
                      "paper us/all"});

  double avg_pct = 0.0, avg_inv = 0.0, avg_all = 0.0;
  for (const std::string app_name :
       {"gromacs", "alya", "wrf", "nas_bt", "nas_mg"}) {
    const GridCell cell{app_name.c_str(), app_name == "nas_bt" ? 16 : 16};
    ExperimentConfig cfg = cell_config(cell, 0.01, iterations);

    // Baseline call timelines (the paper measures on traces).
    const auto app = make_app(cfg.app);
    const Trace trace = app->generate(cfg.workload);
    ReplayOptions opt;
    opt.fabric = cfg.fabric;
    opt.record_call_timeline = true;
    ReplayEngine engine(&trace, opt);
    (void)engine.run();

    // Drive one prediction-only agent per rank, timing every interception.
    std::uint64_t total_calls = 0, scan_calls = 0;
    double scan_ns = 0.0, total_ns = 0.0;
    for (Rank r = 0; r < trace.nranks(); ++r) {
      PmpiAgent agent(cfg.ppa, nullptr);
      std::uint64_t scans_before = 0;
      for (const auto& ev : engine.call_timeline(r)) {
        const auto t0 = Clock::now();
        (void)agent.on_call_enter(ev.call, ev.enter);
        agent.on_call_exit(ev.call, ev.exit);
        const auto t1 = Clock::now();
        const double ns =
            static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                    t1 - t0)
                                    .count());
        ++total_calls;
        total_ns += ns;
        const std::uint64_t scans = agent.detector().invocations();
        if (scans != scans_before) {
          ++scan_calls;
          scan_ns += ns;
          scans_before = scans;
        }
      }
      agent.finish();
    }

    const double pct = 100.0 * static_cast<double>(scan_calls) /
                       static_cast<double>(total_calls);
    const double per_invoked =
        scan_calls ? scan_ns / static_cast<double>(scan_calls) / 1e3 : 0.0;
    const double per_all = total_ns / static_cast<double>(total_calls) / 1e3;
    avg_pct += pct / 5.0;
    avg_inv += per_invoked / 5.0;
    avg_all += per_all / 5.0;

    const auto paper = paper_row(app_name);
    table.add_row({pretty_app(app_name), TablePrinter::fmt(pct, 2),
                   TablePrinter::fmt(per_invoked, 3),
                   TablePrinter::fmt(per_all, 3), TablePrinter::fmt(paper[0], 1),
                   TablePrinter::fmt(paper[1], 1),
                   TablePrinter::fmt(paper[2], 2)});
  }
  table.add_separator();
  table.add_row({"Average", TablePrinter::fmt(avg_pct, 2),
                 TablePrinter::fmt(avg_inv, 3), TablePrinter::fmt(avg_all, 3),
                 "2.1", "16.5", "1.3"});
  table.print(std::cout);

  std::cout
      << "\nShapes to hold (paper §IV-D): the full PPA runs on only a small\n"
         "fraction of MPI calls (it is disabled while prediction is active),\n"
         "so the amortized per-call overhead stays at the microsecond scale.\n"
         "Our 2020s-era hardware and flat-hash pattern list come in well\n"
         "under the paper's 2013 uthash numbers, as the paper itself\n"
         "anticipates (\"can be further reduced by using faster hash tables\").\n";
  return 0;
}
