// Shared helpers for the table/figure reproduction benches.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "sim/experiment.hpp"
#include "util/table_printer.hpp"
#include "workloads/app_model.hpp"

namespace ibpower::bench {

/// The paper's evaluation grid (§IV-B): five applications at five sizes
/// (NAS BT uses square process counts).
struct GridCell {
  const char* app;
  int nranks;
};

inline std::vector<GridCell> paper_grid() {
  return {
      {"gromacs", 8}, {"gromacs", 16}, {"gromacs", 32}, {"gromacs", 64},
      {"gromacs", 128},
      {"alya", 8},    {"alya", 16},    {"alya", 32},    {"alya", 64},
      {"alya", 128},
      {"wrf", 8},     {"wrf", 16},     {"wrf", 32},     {"wrf", 64},
      {"wrf", 128},
      {"nas_bt", 9},  {"nas_bt", 16},  {"nas_bt", 36},  {"nas_bt", 64},
      {"nas_bt", 100},
      {"nas_mg", 8},  {"nas_mg", 16},  {"nas_mg", 32},  {"nas_mg", 64},
      {"nas_mg", 128},
  };
}

inline const char* pretty_app(const std::string& app) {
  if (app == "gromacs") return "GROMACS";
  if (app == "alya") return "ALYA";
  if (app == "wrf") return "WRF";
  if (app == "nas_bt") return "NAS BT";
  if (app == "nas_mg") return "NAS MG";
  return app.c_str();
}

/// Standard experiment configuration for a grid cell. A "+trunk" suffix on
/// the app name ("gromacs+trunk") selects the whole-fabric configuration —
/// consolidating routing plus the trunk idle-timeout policy — so the bench
/// grid can carry trunk-subsystem cells under distinct regression keys. A
/// "+contention" suffix enables the per-hop arrival-order reservation
/// discipline (dmodk routing), gating the contention hot path's per-event
/// cost. A "+predictor" suffix swaps the agent's PPA for the pattern-free
/// multi-timeout predictor (DESIGN.md §13), gating the per-call cost of the
/// IdlePredictor indirection and the request-heavy pattern-free path. A
/// "+host" suffix turns on host-side power co-management (DESIGN.md §15):
/// the countdown policy plus a mildly binding cluster power cap, gating the
/// per-call host FSM cost and the cap epoch/apply event machinery.
inline ExperimentConfig cell_config(const GridCell& cell,
                                    double displacement = 0.01,
                                    int iterations = 100) {
  ExperimentConfig cfg;
  std::string app = cell.app;
  if (const std::size_t plus = app.find('+'); plus != std::string::npos) {
    const std::string variant = app.substr(plus + 1);
    app.resize(plus);
    if (variant == "trunk") {
      cfg.fabric.routing.strategy = RoutingStrategy::Consolidate;
      cfg.fabric.trunk.kind = TrunkPolicyKind::Timeout;
    } else if (variant == "contention") {
      cfg.fabric.routing.strategy = RoutingStrategy::Dmodk;
      cfg.fabric.contention = true;
    } else if (variant == "predictor") {
      cfg.ppa.predictor.kind = PredictorKind::MultiTimeout;
    } else if (variant == "host") {
      cfg.host.policy = HostPolicyKind::Countdown;
      // Mildly binding: ~97% of the fleet's flat-out draw, so the cap
      // machinery actually redistributes without dominating the timings.
      cfg.host.power_cap_watts =
          cfg.host.pstates[0].watts * cell.nranks * 0.97;
    }
  }
  cfg.app = app;
  cfg.workload.nranks = cell.nranks;
  cfg.workload.iterations = iterations;
  cfg.workload.seed = 42;
  cfg.ppa.grouping_threshold = default_gt(app, cell.nranks);
  cfg.ppa.displacement_factor = displacement;
  return cfg;
}

/// Parse "--iterations N" / "--quick" style args shared by the benches.
inline int iterations_from_args(int argc, char** argv, int fallback = 100) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--iterations") return std::stoi(argv[i + 1]);
  }
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") return 30;
  }
  return fallback;
}

}  // namespace ibpower::bench
