// Reproduces the paper's Figures 7, 8 and 9: IB-switch power savings (a)
// and application execution-time increase (b) for displacement factors of
// 10%, 5% and 1%, across the five applications and five process counts.
//
// The trace and baseline replay are shared across the three displacement
// settings of a cell; each managed replay runs the full closed loop (PPA +
// power-mode control + lane wake penalties + software overheads).
#include <map>

#include "bench_common.hpp"

namespace {

using namespace ibpower;
using namespace ibpower::bench;

struct CellResult {
  double savings_pct;
  double increase_pct;
  double hit_pct;
};

// Paper values (Fig. 7a/8a/9a and 7b/8b/9b) for side-by-side comparison.
// Indexed [displacement][app][size-index]; displacement order 10%, 5%, 1%.
const std::map<std::string, std::array<std::array<double, 5>, 3>>
    kPaperSavings = {
        {"gromacs", {{{32.8, 30.2, 27.8, 23.4, 15.0},
                      {34.6, 31.8, 29.4, 24.7, 16.3},
                      {36.0, 33.1, 30.6, 25.7, 17.0}}}},
        {"alya", {{{13.2, 11.5, 8.1, 4.8, 2.1},
                   {13.9, 12.1, 8.5, 5.1, 2.2},
                   {14.5, 12.6, 8.9, 5.2, 2.3}}}},
        {"wrf", {{{35.1, 28.5, 20.2, 10.4, 3.6},
                  {36.8, 30.0, 21.2, 10.9, 3.8},
                  {38.1, 31.0, 22.0, 11.4, 4.1}}}},
        {"nas_bt", {{{46.7, 41.9, 30.3, 18.5, 5.5},
                     {49.3, 44.2, 32.0, 19.6, 5.5},
                     {51.3, 46.1, 33.3, 20.4, 5.5}}}},
        {"nas_mg", {{{25.2, 26.4, 17.5, 11.3, 3.4},
                     {26.6, 27.9, 18.5, 11.9, 3.6},
                     {27.7, 29.0, 19.3, 12.3, 3.7}}}},
    };

int size_index(const std::string& app, int nranks) {
  const std::vector<int> sizes = app == "nas_bt"
                                     ? std::vector<int>{9, 16, 36, 64, 100}
                                     : std::vector<int>{8, 16, 32, 64, 128};
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    if (sizes[i] == nranks) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace

int main(int argc, char** argv) {
  const int iterations = iterations_from_args(argc, argv);
  const std::array<double, 3> displacements = {0.10, 0.05, 0.01};
  const std::array<const char*, 3> fig_names = {"Figure 7 (displacement 10%)",
                                                "Figure 8 (displacement 5%)",
                                                "Figure 9 (displacement 1%)"};

  print_report_banner(std::cout,
                      "Figures 7-9: power savings & execution-time increase");

  // results[disp][cell index]
  std::vector<std::vector<CellResult>> results(
      displacements.size(), std::vector<CellResult>(paper_grid().size()));

  const auto grid = paper_grid();
  for (std::size_t c = 0; c < grid.size(); ++c) {
    const GridCell& cell = grid[c];
    const auto app = make_app(cell.app);
    ExperimentConfig cfg = cell_config(cell, 0.01, iterations);
    const Trace trace = app->generate(cfg.workload);

    // Shared baseline.
    ReplayOptions base_opt;
    base_opt.fabric = cfg.fabric;
    ReplayEngine base_engine(&trace, base_opt);
    const ReplayResult base = base_engine.run();

    for (std::size_t d = 0; d < displacements.size(); ++d) {
      ReplayOptions opt;
      opt.fabric = cfg.fabric;
      opt.enable_power_management = true;
      opt.ppa = cfg.ppa;
      opt.ppa.displacement_factor = displacements[d];
      ReplayEngine engine(&trace, opt);
      const ReplayResult run = engine.run();

      std::vector<const IbLink*> ports;
      for (NodeId n = 0; n < cell.nranks; ++n) {
        ports.push_back(
            &engine.fabric().link(engine.fabric().topology().node_uplink(n)));
      }
      const FleetPowerSummary power = aggregate_power(ports, cfg.power);
      const double increase =
          100.0 *
          (static_cast<double>(run.exec_time.ns) -
           static_cast<double>(base.exec_time.ns)) /
          static_cast<double>(base.exec_time.ns);
      results[d][c] = {power.switch_savings_pct, increase,
                       run.agent_total.hit_rate_pct()};
    }
  }

  for (std::size_t d = 0; d < displacements.size(); ++d) {
    std::cout << "\n=== " << fig_names[d] << " ===\n";
    TablePrinter table({"App", "N proc", "Savings [%]", "Paper [%]",
                        "Time increase [%]", "Hit rate [%]"});
    std::string last_app;
    std::array<double, 5> avg_savings{};
    std::array<int, 5> counts{};
    for (std::size_t c = 0; c < grid.size(); ++c) {
      const GridCell& cell = grid[c];
      if (cell.app != last_app) {
        table.add_separator();
        last_app = cell.app;
      }
      const int si = size_index(cell.app, cell.nranks);
      const double paper =
          kPaperSavings.at(cell.app)[d][static_cast<std::size_t>(si)];
      table.add_row({pretty_app(cell.app), std::to_string(cell.nranks),
                     TablePrinter::fmt(results[d][c].savings_pct),
                     TablePrinter::fmt(paper, 1),
                     TablePrinter::fmt(results[d][c].increase_pct),
                     TablePrinter::fmt(results[d][c].hit_pct, 1)});
      avg_savings[static_cast<std::size_t>(si)] += results[d][c].savings_pct;
      ++counts[static_cast<std::size_t>(si)];
    }
    table.add_separator();
    for (int si = 0; si < 5; ++si) {
      // Paper's AVERAGE series.
      static const char* labels[5] = {"8/9", "16", "32/36", "64", "128/100"};
      table.add_row({"AVERAGE", labels[si],
                     TablePrinter::fmt(avg_savings[static_cast<std::size_t>(si)] /
                                       counts[static_cast<std::size_t>(si)]),
                     "", "", ""});
    }
    table.print(std::cout);
  }

  std::cout
      << "\nShapes to hold (paper §IV-B): savings decline with rank count\n"
         "(strong scaling); smaller displacement saves slightly more; the\n"
         "average peaks around 30-33% at 8/9 ranks; execution-time increase\n"
         "stays ~1% on average with larger penalties at the biggest runs.\n";
  return 0;
}
