// google-benchmark microbenchmarks for the hot components: gram formation,
// PPA observation, pattern-list hash table (our uthash stand-in vs
// std::unordered_map), interval bookkeeping, link reservations and the
// replay engine's event throughput.
//
// The BM_EventQueue* family is the event-queue layout experiment for the
// sharded-replay PR (DESIGN.md §11, "EventQueue layout"): the production
// binary heap races two candidate layouts — a 4-ary heap (shallower, more
// comparisons per level but per-level keys share a cache line) and an
// SoA split (64-bit times in their own array so sift comparisons touch
// half the bytes) — under the replay's hold-model: a bounded population
// of outstanding events (~2 per rank) with exponential-ish holds plus the
// same-time finish chains the fast-path slot absorbs. The production
// queue is swapped only if a candidate wins here AND in bench_throughput;
// the measured result is recorded in DESIGN.md either way.
#include <benchmark/benchmark.h>

#include <cstring>
#include <unordered_map>

#include "core/gram_builder.hpp"
#include "core/pmpi_agent.hpp"
#include "core/ppa.hpp"
#include "network/ib_link.hpp"
#include "sim/des.hpp"
#include "sim/replay.hpp"
#include "util/hash_table.hpp"
#include "util/interval_set.hpp"
#include "util/rng.hpp"
#include "workloads/app_model.hpp"

namespace {

using namespace ibpower;
using namespace ibpower::literals;

PpaConfig micro_config() {
  PpaConfig cfg;
  cfg.grouping_threshold = 20_us;
  cfg.t_react = 10_us;
  return cfg;
}

void BM_GramBuilder(benchmark::State& state) {
  const MpiCall calls[] = {MpiCall::Sendrecv, MpiCall::Sendrecv,
                           MpiCall::Sendrecv, MpiCall::Allreduce,
                           MpiCall::Allreduce};
  for (auto _ : state) {
    GramInterner interner;
    GramBuilder builder(20_us, &interner);
    TimeNs t{};
    for (int i = 0; i < 1000; ++i) {
      const MpiCall c = calls[i % 5];
      t += (i % 5 == 0 || i % 5 == 3 || i % 5 == 4) ? 100_us : 2_us;
      benchmark::DoNotOptimize(builder.on_call_enter(c, t));
      t += 1_us;
      builder.on_call_exit(t);
    }
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_GramBuilder);

void BM_PpaObserveRegular(benchmark::State& state) {
  // Steady-state: pattern already detected, observe() in light mode.
  for (auto _ : state) {
    state.PauseTiming();
    GramInterner interner;
    const GramId a = interner.intern({MpiCall::Sendrecv, MpiCall::Sendrecv});
    const GramId b = interner.intern({MpiCall::Allreduce});
    PatternDetector detector(micro_config(), &interner);
    state.ResumeTiming();
    for (std::size_t i = 0; i < 2000; ++i) {
      ClosedGram g;
      g.id = (i % 2) ? b : a;
      g.position = i;
      g.preceding_idle = 100_us;
      benchmark::DoNotOptimize(detector.observe(g));
    }
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_PpaObserveRegular);

void BM_AgentFullLoop(benchmark::State& state) {
  for (auto _ : state) {
    PmpiAgent agent(micro_config(), nullptr);
    TimeNs t{};
    for (int i = 0; i < 500; ++i) {
      const bool boundary = (i % 5 == 0);
      t += boundary ? 200_us : 2_us;
      const MpiCall c = (i % 5 < 3) ? MpiCall::Sendrecv : MpiCall::Allreduce;
      t += agent.on_call_enter(c, t) + 1_us;
      agent.on_call_exit(c, t);
    }
    benchmark::DoNotOptimize(agent.stats().total_calls);
  }
  state.SetItemsProcessed(state.iterations() * 500);
}
BENCHMARK(BM_AgentFullLoop);

void BM_FlatHashMapPatternLookup(benchmark::State& state) {
  struct SeqHash {
    std::uint64_t operator()(const std::vector<GramId>& v) const {
      return fnv1a(v.data(), v.size() * sizeof(GramId));
    }
  };
  FlatHashMap<std::vector<GramId>, int, SeqHash> map;
  Rng rng(1);
  std::vector<std::vector<GramId>> keys;
  for (int i = 0; i < 512; ++i) {
    std::vector<GramId> key(3);
    for (auto& g : key) g = static_cast<GramId>(rng.uniform_below(64));
    map.insert_or_assign(key, i);
    keys.push_back(std::move(key));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.find(keys[i++ & 511]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlatHashMapPatternLookup);

void BM_UnorderedMapPatternLookup(benchmark::State& state) {
  struct SeqHash {
    std::size_t operator()(const std::vector<GramId>& v) const {
      return fnv1a(v.data(), v.size() * sizeof(GramId));
    }
  };
  std::unordered_map<std::vector<GramId>, int, SeqHash> map;
  Rng rng(1);
  std::vector<std::vector<GramId>> keys;
  for (int i = 0; i < 512; ++i) {
    std::vector<GramId> key(3);
    for (auto& g : key) g = static_cast<GramId>(rng.uniform_below(64));
    map.emplace(key, i);
    keys.push_back(std::move(key));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.find(keys[i++ & 511]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UnorderedMapPatternLookup);

void BM_IntervalSetAppend(benchmark::State& state) {
  for (auto _ : state) {
    IntervalSet set;
    TimeNs t{};
    for (int i = 0; i < 1000; ++i) {
      set.add(t, t + 5_us);
      t += 12_us;
    }
    benchmark::DoNotOptimize(set.total());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_IntervalSetAppend);

void BM_LinkReserve(benchmark::State& state) {
  IbLink link;
  TimeNs t{};
  for (auto _ : state) {
    t += 10_us;
    benchmark::DoNotOptimize(link.reserve(Direction::Up, t, 2048));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LinkReserve);

// --- EventQueue layout candidates (experiment-only; see header note) ---
//
// Both candidates keep the production design invariants: stationary
// callback slab + free list, (time, seq) tie order, one-element fast-path
// slot. Only the heap organ differs.

/// 4-ary heap over the production 24-byte keys.
class FourAryQueue {
 public:
  using Callback = EventQueue::Callback;

  void reserve(std::size_t n) {
    heap_.reserve(n);
    slots_.reserve(n);
    free_.reserve(n);
  }

  void schedule_tie(TimeNs t, std::uint64_t tie, Callback cb) {
    const Key key{t, tie, 0};
    if (!has_next_ && (heap_.empty() || earlier(key, heap_.front()))) {
      next_key_ = key;
      next_cb_ = std::move(cb);
      has_next_ = true;
    } else if (has_next_ && earlier(key, next_key_)) {
      heap_push(next_key_, std::move(next_cb_));
      next_key_ = key;
      next_cb_ = std::move(cb);
    } else {
      heap_push(key, std::move(cb));
    }
  }

  [[nodiscard]] TimeNs next_time() const {
    if (has_next_) return next_key_.t;
    if (!heap_.empty()) return heap_.front().t;
    return TimeNs{0};
  }

  bool run_next() {
    Callback cb;
    if (has_next_) {
      cb = std::move(next_cb_);
      has_next_ = false;
    } else if (!heap_.empty()) {
      const Key top = heap_.front();
      cb = std::move(slots_[top.slot]);
      free_.push_back(top.slot);
      const Key last = heap_.back();
      heap_.pop_back();
      if (!heap_.empty()) sift_down(last);
    } else {
      return false;
    }
    cb();
    return true;
  }

 private:
  struct Key {
    TimeNs t;
    std::uint64_t seq;
    std::uint32_t slot;
  };
  static bool earlier(const Key& a, const Key& b) {
    if (a.t != b.t) return a.t < b.t;
    return a.seq < b.seq;
  }
  void heap_push(const Key& key, Callback cb) {
    std::uint32_t slot;
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
      slots_[slot] = std::move(cb);
    } else {
      slot = static_cast<std::uint32_t>(slots_.size());
      slots_.push_back(std::move(cb));
    }
    Key k = key;
    k.slot = slot;
    std::size_t i = heap_.size();
    heap_.push_back(k);
    while (i > 0) {
      const std::size_t parent = (i - 1) / 4;
      if (!earlier(k, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = k;
  }
  void sift_down(const Key& e) {
    const std::size_t n = heap_.size();
    std::size_t i = 0;
    while (true) {
      const std::size_t first = 4 * i + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t limit = std::min(first + 4, n);
      for (std::size_t c = first + 1; c < limit; ++c) {
        if (earlier(heap_[c], heap_[best])) best = c;
      }
      if (!earlier(heap_[best], e)) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = e;
  }

  std::vector<Key> heap_;
  std::vector<Callback> slots_;
  std::vector<std::uint32_t> free_;
  Key next_key_{};
  Callback next_cb_;
  bool has_next_{false};
};

/// Binary heap with SoA keys: times in one array (the only field sift
/// comparisons read), seq+slot in a parallel array.
class SoAQueue {
 public:
  using Callback = EventQueue::Callback;

  void reserve(std::size_t n) {
    times_.reserve(n);
    meta_.reserve(n);
    slots_.reserve(n);
    free_.reserve(n);
  }

  void schedule_tie(TimeNs t, std::uint64_t tie, Callback cb) {
    if (!has_next_ &&
        (times_.empty() || before(t.ns, tie, times_[0], meta_[0].seq))) {
      next_t_ = t.ns;
      next_seq_ = tie;
      next_cb_ = std::move(cb);
      has_next_ = true;
    } else if (has_next_ && before(t.ns, tie, next_t_, next_seq_)) {
      heap_push(next_t_, next_seq_, std::move(next_cb_));
      next_t_ = t.ns;
      next_seq_ = tie;
      next_cb_ = std::move(cb);
    } else {
      heap_push(t.ns, tie, std::move(cb));
    }
  }

  [[nodiscard]] TimeNs next_time() const {
    if (has_next_) return TimeNs{next_t_};
    if (!times_.empty()) return TimeNs{times_[0]};
    return TimeNs{0};
  }

  bool run_next() {
    Callback cb;
    if (has_next_) {
      cb = std::move(next_cb_);
      has_next_ = false;
    } else if (!times_.empty()) {
      cb = std::move(slots_[meta_[0].slot]);
      free_.push_back(meta_[0].slot);
      const std::int64_t lt = times_.back();
      const Meta lm = meta_.back();
      times_.pop_back();
      meta_.pop_back();
      if (!times_.empty()) sift_down(lt, lm);
    } else {
      return false;
    }
    cb();
    return true;
  }

 private:
  struct Meta {
    std::uint64_t seq;
    std::uint32_t slot;
  };
  static bool before(std::int64_t ta, std::uint64_t sa, std::int64_t tb,
                     std::uint64_t sb) {
    if (ta != tb) return ta < tb;
    return sa < sb;
  }
  void heap_push(std::int64_t t, std::uint64_t seq, Callback cb) {
    std::uint32_t slot;
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
      slots_[slot] = std::move(cb);
    } else {
      slot = static_cast<std::uint32_t>(slots_.size());
      slots_.push_back(std::move(cb));
    }
    std::size_t i = times_.size();
    times_.push_back(t);
    meta_.push_back({seq, slot});
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!before(t, seq, times_[parent], meta_[parent].seq)) break;
      times_[i] = times_[parent];
      meta_[i] = meta_[parent];
      i = parent;
    }
    times_[i] = t;
    meta_[i] = {seq, slot};
  }
  void sift_down(std::int64_t t, Meta m) {
    const std::size_t n = times_.size();
    std::size_t i = 0;
    while (true) {
      std::size_t child = 2 * i + 1;
      if (child >= n) break;
      if (child + 1 < n &&
          before(times_[child + 1], meta_[child + 1].seq, times_[child],
                 meta_[child].seq)) {
        ++child;
      }
      if (!before(times_[child], meta_[child].seq, t, m.seq)) break;
      times_[i] = times_[child];
      meta_[i] = meta_[child];
      i = child;
    }
    times_[i] = t;
    meta_[i] = m;
  }

  std::vector<std::int64_t> times_;
  std::vector<Meta> meta_;
  std::vector<Callback> slots_;
  std::vector<std::uint32_t> free_;
  std::int64_t next_t_{0};
  std::uint64_t next_seq_{0};
  Callback next_cb_;
  bool has_next_{false};
};

/// Replay-shaped hold model: `population` outstanding events (the replay
/// holds ~2 per rank), each pop reschedules one event at now + hold where
/// ~30% of holds are zero (finish-call chains at the current timestamp —
/// the fast-path slot's diet) and the rest spread over a few microseconds.
template <class Queue>
void run_hold_model(Queue& q, int population, int pops) {
  std::uint64_t lcg = 0x243f6a8885a308d3ULL;
  std::int64_t now = 0;
  std::uint64_t seq = 0;
  int remaining = pops;
  auto hold = [&]() -> std::int64_t {
    lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
    const std::uint32_t draw = static_cast<std::uint32_t>(lcg >> 33);
    if (draw % 10 < 3) return 0;
    return 1 + static_cast<std::int64_t>(draw % 5000);
  };
  for (int i = 0; i < population; ++i) {
    q.schedule_tie(TimeNs{now + hold()}, seq++, [] {});
  }
  // Each executed event re-arms itself once, keeping the population
  // constant — exactly the rank-chain structure of the replay. The driver
  // clock follows the queue head so replacements never land in the past
  // (the production queue asserts monotonic scheduling).
  while (remaining > 0) {
    now = q.next_time().ns;
    if (!q.run_next()) break;
    --remaining;
    q.schedule_tie(TimeNs{now + hold()}, seq++, [] {});
  }
}

template <class Queue>
void BM_EventQueueHoldModel(benchmark::State& state) {
  const int population = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Queue q;
    q.reserve(static_cast<std::size_t>(2 * population) + 16);
    run_hold_model(q, population, 100000);
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}

void BM_EventQueueBinaryHeap(benchmark::State& state) {
  BM_EventQueueHoldModel<EventQueue>(state);
}
BENCHMARK(BM_EventQueueBinaryHeap)->Arg(32)->Arg(256)->Arg(2048);

void BM_EventQueueFourAry(benchmark::State& state) {
  BM_EventQueueHoldModel<FourAryQueue>(state);
}
BENCHMARK(BM_EventQueueFourAry)->Arg(32)->Arg(256)->Arg(2048);

void BM_EventQueueSoA(benchmark::State& state) {
  BM_EventQueueHoldModel<SoAQueue>(state);
}
BENCHMARK(BM_EventQueueSoA)->Arg(32)->Arg(256)->Arg(2048);

void BM_ReplayAlya8(benchmark::State& state) {
  WorkloadParams params;
  params.nranks = 8;
  params.iterations = 10;
  const Trace trace = make_app("alya")->generate(params);
  double events = 0.0;
  for (auto _ : state) {
    ReplayOptions opt;
    ReplayEngine engine(&trace, opt);
    const auto rr = engine.run();
    benchmark::DoNotOptimize(rr.events_processed);
    events += static_cast<double>(rr.events_processed);
  }
  state.counters["events/s"] =
      benchmark::Counter(events, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ReplayAlya8)->Unit(benchmark::kMillisecond);

void BM_ReplayManagedAlya8(benchmark::State& state) {
  WorkloadParams params;
  params.nranks = 8;
  params.iterations = 10;
  const Trace trace = make_app("alya")->generate(params);
  for (auto _ : state) {
    ReplayOptions opt;
    opt.enable_power_management = true;
    opt.ppa.grouping_threshold = 24_us;
    ReplayEngine engine(&trace, opt);
    const auto rr = engine.run();
    benchmark::DoNotOptimize(rr.events_processed);
  }
}
BENCHMARK(BM_ReplayManagedAlya8)->Unit(benchmark::kMillisecond);

void BM_WorkloadGeneration(benchmark::State& state) {
  WorkloadParams params;
  params.nranks = static_cast<int>(state.range(0));
  params.iterations = 20;
  const auto app = make_app("wrf");
  for (auto _ : state) {
    benchmark::DoNotOptimize(app->generate(params).total_records());
  }
}
BENCHMARK(BM_WorkloadGeneration)->Arg(8)->Arg(64)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
