// google-benchmark microbenchmarks for the hot components: gram formation,
// PPA observation, pattern-list hash table (our uthash stand-in vs
// std::unordered_map), interval bookkeeping, link reservations and the
// replay engine's event throughput.
#include <benchmark/benchmark.h>

#include <unordered_map>

#include "core/gram_builder.hpp"
#include "core/pmpi_agent.hpp"
#include "core/ppa.hpp"
#include "network/ib_link.hpp"
#include "sim/replay.hpp"
#include "util/hash_table.hpp"
#include "util/interval_set.hpp"
#include "util/rng.hpp"
#include "workloads/app_model.hpp"

namespace {

using namespace ibpower;
using namespace ibpower::literals;

PpaConfig micro_config() {
  PpaConfig cfg;
  cfg.grouping_threshold = 20_us;
  cfg.t_react = 10_us;
  return cfg;
}

void BM_GramBuilder(benchmark::State& state) {
  const MpiCall calls[] = {MpiCall::Sendrecv, MpiCall::Sendrecv,
                           MpiCall::Sendrecv, MpiCall::Allreduce,
                           MpiCall::Allreduce};
  for (auto _ : state) {
    GramInterner interner;
    GramBuilder builder(20_us, &interner);
    TimeNs t{};
    for (int i = 0; i < 1000; ++i) {
      const MpiCall c = calls[i % 5];
      t += (i % 5 == 0 || i % 5 == 3 || i % 5 == 4) ? 100_us : 2_us;
      benchmark::DoNotOptimize(builder.on_call_enter(c, t));
      t += 1_us;
      builder.on_call_exit(t);
    }
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_GramBuilder);

void BM_PpaObserveRegular(benchmark::State& state) {
  // Steady-state: pattern already detected, observe() in light mode.
  for (auto _ : state) {
    state.PauseTiming();
    GramInterner interner;
    const GramId a = interner.intern({MpiCall::Sendrecv, MpiCall::Sendrecv});
    const GramId b = interner.intern({MpiCall::Allreduce});
    PatternDetector detector(micro_config(), &interner);
    state.ResumeTiming();
    for (std::size_t i = 0; i < 2000; ++i) {
      ClosedGram g;
      g.id = (i % 2) ? b : a;
      g.position = i;
      g.preceding_idle = 100_us;
      benchmark::DoNotOptimize(detector.observe(g));
    }
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_PpaObserveRegular);

void BM_AgentFullLoop(benchmark::State& state) {
  for (auto _ : state) {
    PmpiAgent agent(micro_config(), nullptr);
    TimeNs t{};
    for (int i = 0; i < 500; ++i) {
      const bool boundary = (i % 5 == 0);
      t += boundary ? 200_us : 2_us;
      const MpiCall c = (i % 5 < 3) ? MpiCall::Sendrecv : MpiCall::Allreduce;
      t += agent.on_call_enter(c, t) + 1_us;
      agent.on_call_exit(c, t);
    }
    benchmark::DoNotOptimize(agent.stats().total_calls);
  }
  state.SetItemsProcessed(state.iterations() * 500);
}
BENCHMARK(BM_AgentFullLoop);

void BM_FlatHashMapPatternLookup(benchmark::State& state) {
  struct SeqHash {
    std::uint64_t operator()(const std::vector<GramId>& v) const {
      return fnv1a(v.data(), v.size() * sizeof(GramId));
    }
  };
  FlatHashMap<std::vector<GramId>, int, SeqHash> map;
  Rng rng(1);
  std::vector<std::vector<GramId>> keys;
  for (int i = 0; i < 512; ++i) {
    std::vector<GramId> key(3);
    for (auto& g : key) g = static_cast<GramId>(rng.uniform_below(64));
    map.insert_or_assign(key, i);
    keys.push_back(std::move(key));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.find(keys[i++ & 511]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlatHashMapPatternLookup);

void BM_UnorderedMapPatternLookup(benchmark::State& state) {
  struct SeqHash {
    std::size_t operator()(const std::vector<GramId>& v) const {
      return fnv1a(v.data(), v.size() * sizeof(GramId));
    }
  };
  std::unordered_map<std::vector<GramId>, int, SeqHash> map;
  Rng rng(1);
  std::vector<std::vector<GramId>> keys;
  for (int i = 0; i < 512; ++i) {
    std::vector<GramId> key(3);
    for (auto& g : key) g = static_cast<GramId>(rng.uniform_below(64));
    map.emplace(key, i);
    keys.push_back(std::move(key));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.find(keys[i++ & 511]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UnorderedMapPatternLookup);

void BM_IntervalSetAppend(benchmark::State& state) {
  for (auto _ : state) {
    IntervalSet set;
    TimeNs t{};
    for (int i = 0; i < 1000; ++i) {
      set.add(t, t + 5_us);
      t += 12_us;
    }
    benchmark::DoNotOptimize(set.total());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_IntervalSetAppend);

void BM_LinkReserve(benchmark::State& state) {
  IbLink link;
  TimeNs t{};
  for (auto _ : state) {
    t += 10_us;
    benchmark::DoNotOptimize(link.reserve(Direction::Up, t, 2048));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LinkReserve);

void BM_ReplayAlya8(benchmark::State& state) {
  WorkloadParams params;
  params.nranks = 8;
  params.iterations = 10;
  const Trace trace = make_app("alya")->generate(params);
  double events = 0.0;
  for (auto _ : state) {
    ReplayOptions opt;
    ReplayEngine engine(&trace, opt);
    const auto rr = engine.run();
    benchmark::DoNotOptimize(rr.events_processed);
    events += static_cast<double>(rr.events_processed);
  }
  state.counters["events/s"] =
      benchmark::Counter(events, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ReplayAlya8)->Unit(benchmark::kMillisecond);

void BM_ReplayManagedAlya8(benchmark::State& state) {
  WorkloadParams params;
  params.nranks = 8;
  params.iterations = 10;
  const Trace trace = make_app("alya")->generate(params);
  for (auto _ : state) {
    ReplayOptions opt;
    opt.enable_power_management = true;
    opt.ppa.grouping_threshold = 24_us;
    ReplayEngine engine(&trace, opt);
    const auto rr = engine.run();
    benchmark::DoNotOptimize(rr.events_processed);
  }
}
BENCHMARK(BM_ReplayManagedAlya8)->Unit(benchmark::kMillisecond);

void BM_WorkloadGeneration(benchmark::State& state) {
  WorkloadParams params;
  params.nranks = static_cast<int>(state.range(0));
  params.iterations = 20;
  const auto app = make_app("wrf");
  for (auto _ : state) {
    benchmark::DoNotOptimize(app->generate(params).total_records());
  }
}
BENCHMARK(BM_WorkloadGeneration)->Arg(8)->Arg(64)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
