// Reproduces the paper's Figure 10: correctly-predicted MPI call rate as a
// function of the grouping threshold (GT), for GROMACS at 64 and 128
// processes, plus the methodology of §IV-C (GT is chosen by sweeping from
// the minimum of 2*Treact and picking the best hit rate).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ibpower;
  using namespace ibpower::bench;

  const int iterations = iterations_from_args(argc, argv, 80);
  print_report_banner(std::cout,
                      "Figure 10: hit rate vs grouping threshold (GROMACS)");

  std::vector<TimeNs> gts;
  for (int us = 20; us <= 400; us += 20) {
    gts.push_back(TimeNs::from_us(static_cast<std::int64_t>(us)));
  }

  for (const int nranks : {64, 128}) {
    ExperimentConfig cfg = cell_config({"gromacs", nranks}, 0.01, iterations);
    const auto points = sweep_gt(cfg, gts);

    std::cout << "\nGROMACS, " << nranks << " processes\n";
    TablePrinter table({"GT [us]", "Correctly predicted MPI calls [%]", ""});
    double best_hit = 0.0;
    TimeNs best_gt{};
    for (const auto& p : points) {
      if (p.hit_rate_pct > best_hit) {
        best_hit = p.hit_rate_pct;
        best_gt = p.gt;
      }
    }
    for (const auto& p : points) {
      const int bars = static_cast<int>(p.hit_rate_pct / 2.0);
      table.add_row({TablePrinter::fmt(p.gt.us(), 0),
                     TablePrinter::fmt(p.hit_rate_pct, 1),
                     std::string(static_cast<std::size_t>(bars), '#')});
    }
    table.print(std::cout);
    std::cout << "Best GT = " << to_string(best_gt) << " with hit rate "
              << TablePrinter::pct(best_hit, 1) << "\n";
  }

  std::cout << "\nShape to hold (paper Fig. 10): the hit-rate curve rises\n"
               "from the 2*Treact minimum, reaches a plateau, and large GT\n"
               "values do not keep improving call prediction.\n";
  return 0;
}
