// Reproduces the paper's Table III: the chosen grouping threshold (GT) and
// the resulting MPI-call hit rate per application and process count.
//
// Methodology follows §IV-C: sweep GT from the minimum of 2*Treact upward
// on the baseline call timelines (prediction-only agents) and choose the
// smallest GT within 1% of the best hit rate (a large GT needlessly
// shrinks the gateable idle regions).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ibpower;
  using namespace ibpower::bench;

  const int iterations = iterations_from_args(argc, argv, 80);
  print_report_banner(std::cout, "Table III: chosen GT and MPI call hit rate");

  // Paper hit rates for comparison (Table III).
  auto paper_hit = [](const std::string& app, int idx) {
    static const std::map<std::string, std::array<double, 5>> hits = {
        {"gromacs", {42, 44, 48, 44, 59}}, {"alya", {93, 93, 93, 93, 93}},
        {"wrf", {25, 33, 32, 31, 31}},     {"nas_bt", {97, 98, 98, 98, 98}},
        {"nas_mg", {74, 79, 70, 74, 74}},
    };
    return hits.at(app)[static_cast<std::size_t>(idx)];
  };

  TablePrinter table({"App", "N proc", "Chosen GT [us]", "Hit rate [%]",
                      "Paper GT [us]", "Paper hit [%]"});
  auto paper_gt = [](const std::string& app, int idx) -> int {
    static const std::map<std::string, std::array<int, 5>> gts = {
        {"gromacs", {20, 222, 20, 22, 136}}, {"alya", {20, 72, 36, 36, 20}},
        {"wrf", {56, 30, 30, 36, 22}},       {"nas_bt", {20, 22, 46, 20, 50}},
        {"nas_mg", {300, 382, 300, 290, 150}},
    };
    return gts.at(app)[static_cast<std::size_t>(idx)];
  };

  std::string last_app;
  int size_idx = 0;
  for (const GridCell& cell : paper_grid()) {
    if (cell.app != last_app) {
      table.add_separator();
      last_app = cell.app;
      size_idx = 0;
    }
    ExperimentConfig cfg = cell_config(cell, 0.01, iterations);

    // Candidate GT values: fine sweep at the low end + the MG-scale values.
    std::vector<TimeNs> gts;
    for (const int us : {20, 24, 30, 36, 50, 72, 100, 150, 220, 300, 380}) {
      gts.push_back(TimeNs::from_us(static_cast<std::int64_t>(us)));
    }
    const auto points = sweep_gt(cfg, gts);
    double best = 0.0;
    for (const auto& p : points) best = std::max(best, p.hit_rate_pct);
    TimeNs chosen = points.front().gt;
    double chosen_hit = points.front().hit_rate_pct;
    for (const auto& p : points) {
      if (p.hit_rate_pct >= best - 1.0) {
        chosen = p.gt;
        chosen_hit = p.hit_rate_pct;
        break;  // smallest qualifying GT
      }
    }

    table.add_row({pretty_app(cell.app), std::to_string(cell.nranks),
                   TablePrinter::fmt(chosen.us(), 0),
                   TablePrinter::fmt(chosen_hit, 1),
                   std::to_string(paper_gt(cell.app, size_idx)),
                   TablePrinter::fmt(paper_hit(cell.app, size_idx), 0)});
    ++size_idx;
  }
  table.print(std::cout);

  std::cout << "\nShapes to hold (paper Table III): ALYA and NAS BT predict\n"
               ">90% of calls; NAS MG sits in the 70s and needs a much larger\n"
               "GT than the other applications; WRF is the least predictable.\n";
  return 0;
}
