// Metrics-vs-auditor lockdown (obs/): the telemetry layer is only
// trustworthy if it reproduces the check/ subsystem's independent
// recomputations exactly — residencies equal to the integer partition the
// auditor verifies, energies bit-equal to integrate_link_energy, counters
// conserved. These tests pin that contract on seeded synthetic traces and
// on full experiment cells, alongside unit coverage of the histogram
// primitives.
#include "obs/collect.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <limits>

#include "check/invariant_auditor.hpp"
#include "check/trace_gen.hpp"
#include "obs/instrumented.hpp"

namespace ibpower {
namespace {

using obs::IdleHistogram;
using obs::PredictionTelemetry;

// --- histogram primitives -------------------------------------------------

TEST(IdleHistogram, BucketEdges) {
  EXPECT_EQ(IdleHistogram::bucket_of(TimeNs{-5}), 0u);
  EXPECT_EQ(IdleHistogram::bucket_of(TimeNs{0}), 0u);
  EXPECT_EQ(IdleHistogram::bucket_of(TimeNs{1}), 0u);
  EXPECT_EQ(IdleHistogram::bucket_of(TimeNs{2}), 1u);
  EXPECT_EQ(IdleHistogram::bucket_of(TimeNs{3}), 1u);
  EXPECT_EQ(IdleHistogram::bucket_of(TimeNs{4}), 2u);
  EXPECT_EQ(IdleHistogram::bucket_of(TimeNs{7}), 2u);
  EXPECT_EQ(IdleHistogram::bucket_of(TimeNs{8}), 3u);
  // Power-of-two lower edges are inclusive.
  for (std::size_t i = 1; i + 1 < IdleHistogram::kBuckets; ++i) {
    const TimeNs edge{IdleHistogram::bucket_floor_ns(i)};
    EXPECT_EQ(IdleHistogram::bucket_of(edge), i) << "bucket " << i;
    EXPECT_EQ(IdleHistogram::bucket_of(TimeNs{edge.ns - 1}), i - 1)
        << "bucket " << i;
  }
  // Everything past the last edge saturates into the final bucket.
  EXPECT_EQ(IdleHistogram::bucket_of(TimeNs{std::numeric_limits<std::int64_t>::max()}),
            IdleHistogram::kBuckets - 1);
}

TEST(IdleHistogram, ObserveMergeMean) {
  IdleHistogram a;
  a.observe(TimeNs{100});
  a.observe(TimeNs{300});
  EXPECT_EQ(a.samples, 2u);
  EXPECT_EQ(a.total.ns, 400);
  EXPECT_EQ(a.mean().ns, 200);

  IdleHistogram b;
  b.observe(TimeNs{100});
  b.merge(a);
  EXPECT_EQ(b.samples, 3u);
  EXPECT_EQ(b.total.ns, 500);
  std::uint64_t bucket_sum = 0;
  for (const std::uint64_t c : b.counts) bucket_sum += c;
  EXPECT_EQ(bucket_sum, b.samples);

  EXPECT_EQ(IdleHistogram{}.mean(), TimeNs::zero());
}

TEST(PredictionTelemetry, SampleConservation) {
  PredictionTelemetry t;
  // A gap with no preceding request is not an "actual" observation.
  t.on_next_call_gap(TimeNs{50});
  EXPECT_EQ(t.actual_idle.samples, 0u);

  t.on_power_request(TimeNs{1000});
  EXPECT_TRUE(t.awaiting_actual);
  t.on_next_call_gap(TimeNs{900});
  EXPECT_FALSE(t.awaiting_actual);
  t.on_power_request(TimeNs{1000});  // trails the stream

  EXPECT_EQ(t.predicted_idle.samples, 2u);
  EXPECT_EQ(t.actual_idle.samples, 1u);
  EXPECT_EQ(t.predicted_idle.samples,
            t.actual_idle.samples + (t.awaiting_actual ? 1u : 0u));
}

// --- metrics vs auditor on seeded replays ---------------------------------

obs::ReplayMetrics replay_and_collect(const Trace& trace, bool managed,
                                      const PowerModelConfig& power) {
  ReplayOptions opt;
  opt.fabric.routing.strategy = RoutingStrategy::Dmodk;
  opt.enable_power_management = managed;
  if (managed) {
    opt.ppa.displacement_factor = 0.01;
    opt.fabric.link.t_react = opt.ppa.t_react;
    opt.fabric.link.t_deact = opt.ppa.t_react;
  }
  ReplayEngine engine(&trace, opt);
  const ReplayResult rr = engine.run();
  EXPECT_EQ(audit_replay(engine, power), "");
  return obs::collect_replay_metrics(engine, rr, power);
}

TEST(ObsMetrics, ResidencyAndEnergyBitEqualToAuditor) {
  const PowerModelConfig power;
  for (const std::uint64_t seed : {1u, 7u, 23u, 91u}) {
    SyntheticTraceConfig tcfg;
    tcfg.seed = seed;
    tcfg.nranks = 6;
    tcfg.iterations = 8;
    const Trace trace = generate_trace(tcfg);

    ReplayOptions opt;
    opt.fabric.routing.strategy = RoutingStrategy::Dmodk;
    opt.enable_power_management = true;
    opt.ppa.displacement_factor = 0.01;
    opt.fabric.link.t_react = opt.ppa.t_react;
    opt.fabric.link.t_deact = opt.ppa.t_react;
    ReplayEngine engine(&trace, opt);
    const ReplayResult rr = engine.run();
    ASSERT_EQ(audit_replay(engine, power), "") << "seed " << seed;

    const obs::ReplayMetrics m =
        obs::collect_replay_metrics(engine, rr, power);
    EXPECT_EQ(obs::validate_metrics(m), "") << "seed " << seed;
    ASSERT_EQ(m.links.size(), static_cast<std::size_t>(tcfg.nranks));

    for (const obs::LinkMetrics& lm : m.links) {
      const IbLink& link = engine.fabric().link(
          engine.fabric().topology().node_uplink(lm.link));
      // Residencies: telemetry's event-log walk vs IbLink's per-mode
      // passes — integer nanoseconds, exact equality.
      EXPECT_EQ(lm.residency[0], link.residency(LinkPowerMode::FullPower));
      EXPECT_EQ(lm.residency[1], link.residency(LinkPowerMode::LowPower));
      EXPECT_EQ(lm.residency[2], link.residency(LinkPowerMode::Transition));
      EXPECT_EQ(lm.residency[0] + lm.residency[1] + lm.residency[2], lm.exec);
      // Energy: bit-equal to the auditor's independent integration.
      const double audited = integrate_link_energy(link, power);
      EXPECT_EQ(std::memcmp(&lm.energy_joules, &audited, sizeof(double)), 0)
          << "seed " << seed << " link " << lm.link;
      EXPECT_EQ(lm.low_power_requests, link.low_power_requests());
      EXPECT_EQ(lm.on_demand_wakes, link.on_demand_wakes());
    }
  }
}

TEST(ObsMetrics, PredictionCountersConserved) {
  SyntheticTraceConfig tcfg;
  tcfg.seed = 3;
  tcfg.nranks = 8;
  tcfg.iterations = 10;
  const Trace trace = generate_trace(tcfg);
  const PowerModelConfig power;
  const obs::ReplayMetrics m = replay_and_collect(trace, true, power);

  ASSERT_FALSE(m.ranks.empty());
  AgentStats total;
  std::uint64_t power_requests = 0;
  for (const obs::RankMetrics& r : m.ranks) {
    // Detected/armed/hit/miss/relaunch conservation per rank: every arm is
    // ended by exactly one mispredict (which relaunches the PPA) unless the
    // controller is still active at end of run.
    EXPECT_EQ(r.stats.arms,
              r.stats.pattern_mispredicts + (r.active_at_end ? 1u : 0u))
        << "rank " << r.rank;
    // Hit + miss never exceed the interception count.
    EXPECT_LE(r.stats.predicted_calls + r.stats.pattern_mispredicts,
              r.stats.total_calls)
        << "rank " << r.rank;
    // Every power request contributed one predicted-idle sample.
    EXPECT_EQ(r.prediction.predicted_idle.samples, r.stats.power_requests);
    EXPECT_EQ(r.prediction.predicted_idle.samples,
              r.prediction.actual_idle.samples +
                  (r.prediction.awaiting_actual ? 1u : 0u))
        << "rank " << r.rank;
    total.merge(r.stats);
    power_requests += r.stats.power_requests;
  }
  // The link-side request counters must account for every agent request.
  std::uint64_t link_requests = 0;
  for (const obs::LinkMetrics& lm : m.links) {
    link_requests += lm.low_power_requests;
  }
  EXPECT_EQ(link_requests, power_requests);
  EXPECT_GT(total.total_calls, 0u);
}

TEST(ObsMetrics, BaselineSnapshotIsPowerInert) {
  SyntheticTraceConfig tcfg;
  tcfg.seed = 11;
  tcfg.nranks = 4;
  const Trace trace = generate_trace(tcfg);
  const PowerModelConfig power;
  const obs::ReplayMetrics m = replay_and_collect(trace, false, power);

  EXPECT_FALSE(m.managed);
  EXPECT_TRUE(m.ranks.empty());
  for (const obs::LinkMetrics& lm : m.links) {
    EXPECT_TRUE(lm.events.empty());
    EXPECT_EQ(lm.residency[0], lm.exec);  // always full power
    EXPECT_EQ(lm.residency[1], TimeNs::zero());
    EXPECT_EQ(lm.transitions, 0u);
    EXPECT_EQ(lm.low_power_requests, 0u);
    EXPECT_EQ(lm.savings_pct, 0.0);
  }
}

// --- instrumented experiments --------------------------------------------

TEST(ObsMetrics, InstrumentedExperimentAgreesWithResult) {
  ExperimentConfig cfg;
  cfg.app = "alya";
  cfg.workload.nranks = 8;
  cfg.workload.iterations = 6;
  cfg.ppa.grouping_threshold = default_gt(cfg.app, cfg.workload.nranks);
  cfg.ppa.displacement_factor = 0.01;

  const obs::InstrumentedResult inst = obs::run_instrumented_experiment(cfg);
  EXPECT_TRUE(bit_identical(inst.result, run_experiment(cfg)));
  EXPECT_EQ(obs::validate_metrics(inst.baseline), "");
  EXPECT_EQ(obs::validate_metrics(inst.managed), "");

  // The telemetry roll-up reproduces the experiment's own aggregates.
  EXPECT_EQ(inst.baseline.exec_time, inst.result.baseline_time);
  EXPECT_EQ(inst.managed.exec_time, inst.result.managed_time);
  EXPECT_EQ(inst.managed.messages_sent, inst.result.messages);
  EXPECT_EQ(inst.baseline.events_processed + inst.managed.events_processed,
            inst.result.sim_events);

  AgentStats total;
  for (const obs::RankMetrics& r : inst.managed.ranks) total.merge(r.stats);
  EXPECT_EQ(total, inst.result.agents);

  std::uint64_t wakes = 0;
  TimeNs penalty{};
  for (const obs::LinkMetrics& lm : inst.managed.links) {
    wakes += lm.on_demand_wakes;
    penalty += lm.wake_penalty_total;
  }
  EXPECT_EQ(wakes, inst.result.on_demand_wakes);
  EXPECT_EQ(penalty, inst.result.wake_penalty_total);
}

TEST(ObsMetrics, ValidateMetricsFlagsCorruption) {
  SyntheticTraceConfig tcfg;
  tcfg.seed = 5;
  tcfg.nranks = 4;
  const Trace trace = generate_trace(tcfg);
  const PowerModelConfig power;
  obs::ReplayMetrics m = replay_and_collect(trace, true, power);
  ASSERT_EQ(obs::validate_metrics(m), "");

  obs::ReplayMetrics broken = m;
  ASSERT_FALSE(broken.links.empty());
  broken.links[0].residency[0] += TimeNs{1};  // break the partition
  EXPECT_NE(obs::validate_metrics(broken), "");

  broken = m;
  broken.drain.messages_matched += 1;  // break drain conservation
  EXPECT_NE(obs::validate_metrics(broken), "");

  broken = m;
  ASSERT_FALSE(broken.ranks.empty());
  broken.ranks[0].stats.arms += 1;  // break arms conservation
  EXPECT_NE(obs::validate_metrics(broken), "");

  if (!m.links.empty() && m.links[0].events.size() >= 2) {
    broken = m;
    std::swap(broken.links[0].events[0], broken.links[0].events[1]);
    EXPECT_NE(obs::validate_metrics(broken), "");
  }
}

}  // namespace
}  // namespace ibpower
