// Host-side power co-management (DESIGN.md §15).
//
// Contracts under test: the per-rank HostPowerModel FSM mirrors the IbLink
// schedule discipline (append/supersede, on-demand wake, finish, clamped
// residency, energy closure); the cluster power-cap allocation is a pure
// deterministic function of the bookkeeping board that never exceeds the
// budget; the engine integration is bit-identical across shard counts;
// and a disabled host config leaves every export byte-identical.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "check/invariant_auditor.hpp"
#include "host/host_power.hpp"
#include "obs/collect.hpp"
#include "obs/exporters.hpp"
#include "sim/experiment.hpp"
#include "sim/parallel.hpp"
#include "sim/replay.hpp"
#include "workloads/apps.hpp"

namespace ibpower {
namespace {

TimeNs us(double v) { return TimeNs::from_us(v); }

HostPowerConfig countdown_cfg() {
  HostPowerConfig cfg;
  cfg.policy = HostPolicyKind::Countdown;
  return cfg;
}

// --- config & parsing -------------------------------------------------------

TEST(HostPowerConfig, DefaultIsValidAndDisabled) {
  const HostPowerConfig cfg;
  EXPECT_TRUE(cfg.valid());
  EXPECT_FALSE(cfg.enabled());
  EXPECT_TRUE(countdown_cfg().enabled());
  HostPowerConfig capped;
  capped.power_cap_watts = 500.0;
  EXPECT_TRUE(capped.enabled());
}

TEST(HostPowerConfig, RejectsMalformedTables) {
  HostPowerConfig rising_watts;
  rising_watts.pstates[1].watts = 95.0;  // not strictly decreasing
  EXPECT_FALSE(rising_watts.valid());

  HostPowerConfig slow_p0;
  slow_p0.pstates[0].speed = 0.9;  // P0 must run at full speed
  EXPECT_FALSE(slow_p0.valid());

  HostPowerConfig hot_sleep;
  hot_sleep.cstates[0].watts = 50.0;  // sleep must undercut the floor P-state
  EXPECT_FALSE(hot_sleep.valid());

  HostPowerConfig shrinking_exit;
  shrinking_exit.cstates[1].exit = TimeNs::from_us(std::int64_t{1});
  EXPECT_FALSE(shrinking_exit.valid());
}

TEST(HostPowerConfig, ParsePolicyNames) {
  HostPolicyKind kind = HostPolicyKind::Off;
  EXPECT_TRUE(parse_host_policy("countdown", &kind));
  EXPECT_EQ(kind, HostPolicyKind::Countdown);
  EXPECT_TRUE(parse_host_policy("off", &kind));
  EXPECT_EQ(kind, HostPolicyKind::Off);
  EXPECT_FALSE(parse_host_policy("dvfs", &kind));
  EXPECT_STREQ(host_policy_name(HostPolicyKind::Countdown), "countdown");
}

TEST(HostPowerConfig, ParsePstateTable) {
  HostPowerConfig cfg;
  ASSERT_TRUE(parse_host_pstates("120:1.0,80:0.7", &cfg));
  EXPECT_EQ(cfg.pstate_count, 2);
  EXPECT_DOUBLE_EQ(cfg.pstates[0].watts, 120.0);
  EXPECT_DOUBLE_EQ(cfg.pstates[1].speed, 0.7);
  EXPECT_TRUE(cfg.valid());

  const HostPowerConfig before = cfg;
  EXPECT_FALSE(parse_host_pstates("", &cfg));
  EXPECT_FALSE(parse_host_pstates("90", &cfg));
  EXPECT_FALSE(parse_host_pstates("90:0.9", &cfg));         // P0 speed != 1
  EXPECT_FALSE(parse_host_pstates("90:1.0,95:0.8", &cfg));  // watts rise
  EXPECT_FALSE(parse_host_pstates("90:1.0,", &cfg));        // trailing comma
  EXPECT_TRUE(cfg == before);  // failures leave the config untouched
}

// --- FSM --------------------------------------------------------------------

TEST(HostPowerModel, SleepPicksDeepestFittingCState) {
  HostPowerModel host(countdown_cfg());
  // Default C-states: shallow 1+2 us overhead, deep 4+10 us.
  host.request_sleep(us(100), us(50));  // deep fits
  ASSERT_EQ(host.segments().size(), 4u);
  EXPECT_EQ(host.segments()[1].mode, HostMode::Sleep);
  EXPECT_EQ(host.segments()[1].level, 1);
  EXPECT_EQ(host.segments()[1].begin, us(104));  // entry = 4 us
  EXPECT_EQ(host.segments()[3].begin, us(160));  // wake at 100+50+10

  HostPowerModel shallow(countdown_cfg());
  shallow.request_sleep(us(100), us(5));  // only the shallow state fits
  ASSERT_EQ(shallow.segments().size(), 4u);
  EXPECT_EQ(shallow.segments()[1].level, 0);

  HostPowerModel none(countdown_cfg());
  none.request_sleep(us(100), us(2));  // nothing fits: no-op
  EXPECT_TRUE(none.segments().empty());
  EXPECT_EQ(none.sleep_requests(), 0u);
}

TEST(HostPowerModel, NewRequestSupersedesScheduledSleep) {
  HostPowerModel host(countdown_cfg());
  host.request_sleep(us(100), us(50));
  host.request_sleep(us(120), us(200));  // reprogram mid-sleep
  EXPECT_EQ(host.sleep_requests(), 2u);
  EXPECT_EQ(host.validate_schedule(), "");
  host.finish(us(1000));
  // The second request's wake is the only one left.
  EXPECT_EQ(host.segments().back().begin, us(330));
  EXPECT_EQ(host.mode_at(us(300)), HostMode::Sleep);
}

TEST(HostPowerModel, OnDemandWakeChargesExitLatency) {
  HostPowerModel host(countdown_cfg());
  host.request_sleep(us(100), us(100));  // deep sleep until 200, wake at 210
  const TimeNs penalty = host.on_call_arrival(us(150));
  EXPECT_EQ(penalty, us(10));  // deep exit latency
  EXPECT_EQ(host.on_demand_wakes(), 1u);
  EXPECT_EQ(host.wake_penalty_total(), us(10));
  EXPECT_EQ(host.mode_at(us(155)), HostMode::Transition);
  EXPECT_EQ(host.mode_at(us(161)), HostMode::Active);
  EXPECT_EQ(host.validate_schedule(), "");

  // An active host pays nothing.
  EXPECT_EQ(host.on_call_arrival(us(500)), TimeNs{});
  EXPECT_EQ(host.on_demand_wakes(), 1u);
  EXPECT_EQ(host.mpi_calls(), 2u);
}

TEST(HostPowerModel, ArrivalNearScheduledWakeWaitsForIt) {
  HostPowerModel host(countdown_cfg());
  host.request_sleep(us(100), us(100));  // scheduled active at 210
  // At 205 the scheduled wake (210) beats an on-demand one (205+10): the
  // call just waits and no extra transition is inserted.
  const TimeNs penalty = host.on_call_arrival(us(205));
  EXPECT_EQ(penalty, us(5));
  EXPECT_EQ(host.on_demand_wakes(), 0u);
  EXPECT_EQ(host.validate_schedule(), "");
}

TEST(HostPowerModel, SetPstateChangesSpeedAndRelevels) {
  HostPowerModel host(countdown_cfg());
  EXPECT_DOUBLE_EQ(host.speed(), 1.0);
  host.set_pstate(us(50), 2);
  EXPECT_EQ(host.pstate(), 2);
  EXPECT_DOUBLE_EQ(host.speed(), 0.6);
  EXPECT_EQ(host.pstate_changes(), 1u);
  host.set_pstate(us(60), 2);  // no-op
  EXPECT_EQ(host.pstate_changes(), 1u);

  // A pending sleep keeps its shape but wakes into the new P-state.
  host.request_sleep(us(100), us(50));
  host.set_pstate(us(110), 0);
  EXPECT_EQ(host.validate_schedule(), "");
  host.finish(us(500));
  EXPECT_EQ(host.segments().back().mode, HostMode::Active);
  EXPECT_EQ(host.segments().back().level, 0);
}

TEST(HostPowerModel, ResidencyPartitionsExecTime) {
  HostPowerModel host(countdown_cfg());
  host.request_sleep(us(100), us(50));
  (void)host.on_call_arrival(us(120));
  host.request_sleep(us(300), us(80));
  host.set_pstate(us(450), 1);
  host.finish(us(1000));
  const TimeNs total = host.residency(HostMode::Active) +
                       host.residency(HostMode::Sleep) +
                       host.residency(HostMode::Transition);
  EXPECT_EQ(total, us(1000));
  EXPECT_EQ(audit_host_schedule(host), "");
}

TEST(HostPowerModel, FinishClampsScheduledFuture) {
  HostPowerModel host(countdown_cfg());
  host.request_sleep(us(100), us(500));  // sleeps past the end of time
  host.finish(us(200));
  EXPECT_EQ(host.end_time(), us(200));
  const TimeNs total = host.residency(HostMode::Active) +
                       host.residency(HostMode::Sleep) +
                       host.residency(HostMode::Transition);
  EXPECT_EQ(total, us(200));
}

TEST(HostPowerModel, MeanWattsReflectsSchedule) {
  HostPowerModel host(countdown_cfg());
  // Fully active window: P0 draw.
  EXPECT_DOUBLE_EQ(host.mean_watts(us(0), us(100)), 90.0);
  host.set_pstate(us(100), 2);
  EXPECT_DOUBLE_EQ(host.mean_watts(us(100), us(200)), 45.0);
  // Half the window at P0, half at P2.
  EXPECT_DOUBLE_EQ(host.mean_watts(us(0), us(200)), (90.0 + 45.0) / 2.0);
}

// --- energy accounting ------------------------------------------------------

TEST(HostPowerEnergy, ClosureAcrossSleepAndDvfs) {
  HostPowerModel host(countdown_cfg());
  for (int i = 0; i < 40; ++i) {
    host.request_sleep(us(100 + 200 * i), us(120));
    (void)host.on_call_arrival(us(180 + 200 * i));
  }
  host.set_pstate(us(4000), 1);
  host.set_pstate(us(6000), 0);
  host.finish(us(10000));
  EXPECT_EQ(audit_host_energy_closure(host), "");

  const HostPowerSummary sum = summarize_host(host);
  EXPECT_GT(sum.energy_joules, 0.0);
  EXPECT_DOUBLE_EQ(sum.energy_joules,
                   sum.static_energy_joules + sum.dynamic_energy_joules);
  // Sleep + DVFS must undercut the flat-out P0 baseline.
  EXPECT_LT(sum.energy_joules, sum.baseline_energy_joules);
  EXPECT_GT(sum.savings_pct, 0.0);
}

TEST(HostPowerEnergy, IdleHostAtP0MatchesBaselineStaticDraw) {
  HostPowerModel host(countdown_cfg());
  host.finish(us(1000));
  const HostPowerSummary sum = summarize_host(host);
  EXPECT_DOUBLE_EQ(sum.static_energy_joules, sum.baseline_energy_joules);
  EXPECT_DOUBLE_EQ(sum.dynamic_energy_joules, 0.0);
  EXPECT_EQ(audit_host_energy_closure(host), "");
}

// --- cluster power cap ------------------------------------------------------

TEST(PowerCapAllocation, DeterministicAndWithinBudget) {
  HostPowerConfig cfg;
  cfg.power_cap_watts = 400.0;  // 6 ranks, floor 45 W each = 270 W minimum
  constexpr std::size_t n = 6;
  std::vector<CapRankSlot> slots(n);
  for (std::size_t i = 0; i < n; ++i) {
    slots[i].epoch = 1;
    slots[i].demand_watts = 30.0 + 10.0 * static_cast<double>(i);
  }
  std::vector<std::uint8_t> a(n);
  std::vector<std::uint8_t> b(n);
  std::vector<std::uint32_t> scratch(n);
  allocate_power_cap(cfg, slots.data(), n, a.data(), scratch.data());
  allocate_power_cap(cfg, slots.data(), n, b.data(), scratch.data());
  EXPECT_EQ(a, b);  // pure function of the board

  double assigned = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_LT(a[i], cfg.pstate_count);
    assigned += cfg.pstates[a[i]].watts;
  }
  EXPECT_LE(assigned, cfg.power_cap_watts);
  // 400 W cannot run all six flat out (540 W) but beats the floor (270 W):
  // at least one rank above the floor, at least one below P0.
  EXPECT_TRUE(std::any_of(a.begin(), a.end(),
                          [](std::uint8_t p) { return p < 2; }));
  EXPECT_TRUE(std::any_of(a.begin(), a.end(),
                          [](std::uint8_t p) { return p > 0; }));
}

TEST(PowerCapAllocation, GenerousCapRunsEveryoneFlatOut) {
  HostPowerConfig cfg;
  cfg.power_cap_watts = 10000.0;
  constexpr std::size_t n = 8;
  std::vector<CapRankSlot> slots(n);
  for (std::size_t i = 0; i < n; ++i) slots[i].demand_watts = 45.0;
  std::vector<std::uint8_t> out(n);
  std::vector<std::uint32_t> scratch(n);
  allocate_power_cap(cfg, slots.data(), n, out.data(), scratch.data());
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(out[i], 0);
}

TEST(PowerCapAllocation, RetiredRanksFreezeTheirDraw) {
  HostPowerConfig cfg;
  cfg.power_cap_watts = 225.0;  // 4 live at floor = 180; one retired at 45
  constexpr std::size_t n = 5;
  std::vector<CapRankSlot> slots(n);
  for (std::size_t i = 0; i < n; ++i) slots[i].demand_watts = 90.0;
  slots[4].retired = true;
  slots[4].retired_watts = 45.0;
  std::vector<std::uint8_t> out(n);
  std::vector<std::uint32_t> scratch(n);
  allocate_power_cap(cfg, slots.data(), n, out.data(), scratch.data());
  double live = 0.0;
  for (std::size_t i = 0; i < 4; ++i) live += cfg.pstates[out[i]].watts;
  EXPECT_LE(live + slots[4].retired_watts, cfg.power_cap_watts);
}

// --- engine integration -----------------------------------------------------

ExperimentConfig host_config(const std::string& app, int nranks,
                             int iterations, HostPowerConfig host) {
  ExperimentConfig cfg;
  cfg.app = app;
  cfg.workload.nranks = nranks;
  cfg.workload.iterations = iterations;
  cfg.workload.seed = 7;
  cfg.ppa.grouping_threshold = default_gt(app, nranks);
  cfg.host = host;
  return normalize_config(cfg);
}

ReplayOptions managed_options(const ExperimentConfig& cfg, int shards) {
  ReplayOptions opt;
  opt.fabric = cfg.fabric;
  opt.enable_power_management = true;
  opt.ppa = cfg.ppa;
  opt.eager_threshold = cfg.eager_threshold;
  opt.shards = shards;
  opt.host = cfg.host;
  return opt;
}

TEST(HostReplay, CountdownRunAuditsClean) {
  const ExperimentConfig cfg =
      host_config("gromacs", 16, 20, countdown_cfg());
  const Trace trace = generate_experiment_trace(cfg);
  ReplayEngine engine(&trace, managed_options(cfg, 1));
  const ReplayResult rr = engine.run();
  ASSERT_NE(engine.host(0), nullptr);
  EXPECT_EQ(audit_replay(engine), "");

  std::uint64_t sleeps = 0;
  for (Rank r = 0; r < trace.nranks(); ++r) {
    ASSERT_NE(engine.host(r), nullptr);
    EXPECT_EQ(engine.host(r)->end_time(), rr.exec_time);
    sleeps += engine.host(r)->sleep_requests();
  }
  EXPECT_GT(sleeps, 0u);  // the predictor stream actually drove the hosts
}

TEST(HostReplay, DisabledConfigAllocatesNoHostState) {
  const ExperimentConfig cfg =
      host_config("gromacs", 16, 20, HostPowerConfig{});
  const Trace trace = generate_experiment_trace(cfg);
  ReplayEngine engine(&trace, managed_options(cfg, 1));
  (void)engine.run();
  EXPECT_EQ(engine.host(0), nullptr);
}

TEST(HostReplay, DisabledConfigKeepsExportsByteIdentical) {
  const ExperimentConfig cfg =
      host_config("gromacs", 16, 20, HostPowerConfig{});
  const Trace trace = generate_experiment_trace(cfg);

  const auto snapshot_json = [&](const ReplayOptions& opt) {
    ReplayEngine engine(&trace, opt);
    const ReplayResult rr = engine.run();
    obs::CellMetrics cell;
    cell.app = cfg.app;
    cell.nranks = trace.nranks();
    cell.managed = obs::collect_replay_metrics(engine, rr, PowerModelConfig{});
    std::ostringstream os;
    obs::write_metrics_json(os, {cell});
    return os.str();
  };

  ReplayOptions plain = managed_options(cfg, 1);
  ReplayOptions off = managed_options(cfg, 1);
  off.host = HostPowerConfig{};  // explicit default-off config
  const std::string a = snapshot_json(plain);
  const std::string b = snapshot_json(off);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.find("\"hosts\""), std::string::npos);
}

TEST(HostReplay, HostRowsAppearOnlyWhenEnabled) {
  const ExperimentConfig cfg =
      host_config("gromacs", 16, 20, countdown_cfg());
  const Trace trace = generate_experiment_trace(cfg);
  ReplayEngine engine(&trace, managed_options(cfg, 1));
  const ReplayResult rr = engine.run();
  const obs::ReplayMetrics m =
      obs::collect_replay_metrics(engine, rr, PowerModelConfig{});
  ASSERT_EQ(m.hosts.size(), static_cast<std::size_t>(trace.nranks()));
  EXPECT_EQ(obs::validate_metrics(m), "");
  std::ostringstream os;
  obs::CellMetrics cell;
  cell.app = cfg.app;
  cell.nranks = trace.nranks();
  cell.managed = m;
  obs::write_metrics_json(os, {cell});
  EXPECT_NE(os.str().find("\"hosts\""), std::string::npos);
}

TEST(HostReplay, BitIdenticalAcrossShardCounts) {
  HostPowerConfig host = countdown_cfg();
  host.power_cap_watts = 2500.0;  // binding: 32 ranks * 90 W = 2880 W
  const ExperimentConfig cfg = host_config("gromacs", 32, 16, host);
  const Trace trace = generate_experiment_trace(cfg);

  struct Snap {
    ReplayResult rr;
    obs::ReplayMetrics metrics;
  };
  const auto snap = [&](int shards) {
    ReplayEngine engine(&trace, managed_options(cfg, shards));
    Snap s;
    s.rr = engine.run();
    EXPECT_EQ(audit_replay(engine), "") << "shards=" << shards;
    s.metrics = obs::collect_replay_metrics(engine, s.rr, PowerModelConfig{});
    return s;
  };

  const Snap serial = snap(1);
  EXPECT_GT(serial.metrics.hosts.front().pstate_changes, 0u);
  for (const int shards : {2, 4}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    const Snap sharded = snap(shards);
    EXPECT_EQ(sharded.rr.exec_time, serial.rr.exec_time);
    EXPECT_EQ(sharded.rr.rank_finish, serial.rr.rank_finish);
    EXPECT_TRUE(sharded.metrics == serial.metrics);
  }
}

TEST(HostReplay, CapRespectedInvariantHolds) {
  HostPowerConfig host = countdown_cfg();
  host.power_cap_watts = 1300.0;  // 16 ranks * 90 W = 1440 W demand
  const ExperimentConfig cfg = host_config("gromacs", 16, 20, host);
  const Trace trace = generate_experiment_trace(cfg);
  ReplayEngine engine(&trace, managed_options(cfg, 1));
  (void)engine.run();
  EXPECT_EQ(audit_cluster_cap(engine), "");
  EXPECT_EQ(audit_system_energy_closure(engine, PowerModelConfig{}), "");
}

TEST(HostReplay, InfeasibleCapThrows) {
  HostPowerConfig host;
  host.power_cap_watts = 100.0;  // 16 ranks * 45 W floor = 720 W minimum
  const ExperimentConfig cfg = host_config("gromacs", 16, 8, host);
  const Trace trace = generate_experiment_trace(cfg);
  const ReplayOptions opt = managed_options(cfg, 1);
  EXPECT_THROW({ ReplayEngine engine(&trace, opt); }, std::runtime_error);
}

TEST(HostReplay, ShardedCapNeedsWideEpoch) {
  HostPowerConfig host;
  host.power_cap_watts = 2000.0;
  host.cap_epoch = TimeNs{200};  // far below 4x the conservative lookahead
  const ExperimentConfig cfg = host_config("gromacs", 32, 8, host);
  const Trace trace = generate_experiment_trace(cfg);
  const ReplayOptions opt = managed_options(cfg, 4);
  EXPECT_THROW({ ReplayEngine engine(&trace, opt); }, std::runtime_error);
}

TEST(HostExperiment, ResultCarriesSystemEnergyAndIsDeterministic) {
  HostPowerConfig host = countdown_cfg();
  host.power_cap_watts = 1350.0;
  const ExperimentConfig cfg = host_config("gromacs", 16, 20, host);

  const ExperimentResult serial = run_experiment(cfg);
  EXPECT_GT(serial.hosts.total_energy_joules, 0.0);
  EXPECT_GT(serial.hosts.savings_pct, 0.0);
  EXPECT_GT(serial.system_energy_joules, 0.0);
  EXPECT_LT(serial.system_energy_joules,
            serial.system_baseline_energy_joules);

  ParallelExperimentRunner runner(4);
  EXPECT_TRUE(bit_identical(serial, runner.run(cfg)));

  ExperimentConfig sharded = cfg;
  sharded.shards = 4;
  EXPECT_TRUE(bit_identical(serial, run_experiment(sharded)));
}

TEST(HostExperiment, HostOffLeavesResultFieldsZero) {
  const ExperimentConfig cfg =
      host_config("gromacs", 16, 20, HostPowerConfig{});
  const ExperimentResult r = run_experiment(cfg);
  EXPECT_DOUBLE_EQ(r.hosts.total_energy_joules, 0.0);
  EXPECT_DOUBLE_EQ(r.system_energy_joules, 0.0);
  EXPECT_DOUBLE_EQ(r.system_baseline_energy_joules, 0.0);
}

}  // namespace
}  // namespace ibpower
