#include "sim/report.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace ibpower {
namespace {

std::vector<LabelledResult> sample_results() {
  LabelledResult a;
  a.app = "alya";
  a.nranks = 8;
  a.displacement = 0.01;
  a.result.baseline_time = TimeNs::from_ms(100.0);
  a.result.managed_time = TimeNs::from_ms(101.0);
  a.result.time_increase_pct = 1.0;
  a.result.power.switch_savings_pct = 17.5;
  a.result.hit_rate_pct = 95.0;
  a.result.mpi_calls = 1234;
  LabelledResult b;
  b.app = "wrf";
  b.nranks = 64;
  b.displacement = 0.10;
  b.result.power.switch_savings_pct = 12.25;
  return {a, b};
}

TEST(Report, CsvHasHeaderAndOneRowPerResult) {
  std::ostringstream os;
  write_results_csv(os, sample_results());
  std::istringstream lines(os.str());
  std::string line;
  int count = 0;
  while (std::getline(lines, line)) ++count;
  EXPECT_EQ(count, 3);  // header + 2 rows
  EXPECT_EQ(os.str().substr(0, results_csv_header().size()),
            results_csv_header());
}

TEST(Report, CsvColumnsLineUp) {
  std::ostringstream os;
  write_results_csv(os, sample_results());
  std::istringstream lines(os.str());
  std::string header, row;
  std::getline(lines, header);
  std::getline(lines, row);
  const auto commas = [](const std::string& s) {
    return std::count(s.begin(), s.end(), ',');
  };
  EXPECT_EQ(commas(header), commas(row));
  EXPECT_NE(row.find("alya,8"), std::string::npos);
  EXPECT_NE(row.find("17.5"), std::string::npos);
}

TEST(Report, EmptyCsvStillHasHeader) {
  std::ostringstream os;
  write_results_csv(os, {});
  EXPECT_EQ(os.str(), results_csv_header() + "\n");
}

TEST(Report, JsonIsWellFormedEnough) {
  std::ostringstream os;
  write_results_json(os, sample_results());
  const std::string out = os.str();
  EXPECT_EQ(out.front(), '[');
  EXPECT_EQ(out[out.size() - 2], ']');
  EXPECT_EQ(std::count(out.begin(), out.end(), '{'), 2);
  EXPECT_EQ(std::count(out.begin(), out.end(), '}'), 2);
  EXPECT_NE(out.find("\"app\": \"wrf\""), std::string::npos);
  EXPECT_NE(out.find("\"switch_savings_pct\": 12.25"), std::string::npos);
  // Exactly one separating comma between the two objects.
  EXPECT_NE(out.find("},\n"), std::string::npos);
}

TEST(Report, JsonEmptyArray) {
  std::ostringstream os;
  write_results_json(os, {});
  EXPECT_EQ(os.str(), "[\n]\n");
}

}  // namespace
}  // namespace ibpower
