// Domain-sharded conservative parallel DES (DESIGN.md §11).
//
// The contract under test: a replay sharded over N leaf-switch domains is
// bit-identical to the serial replay — same execution time, same per-rank
// finish times, same per-call timelines, same link reservation histories
// (via the telemetry snapshot), same drain statistics — for every shard
// count, because every event carries a (time, tie) key derived from
// simulation state rather than thread interleaving. Alongside identity,
// the suite pins the shard-resolution policy (auto, clamping, lookahead
// gating) and the per-shard execution profile invariants.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "obs/collect.hpp"
#include "sim/experiment.hpp"
#include "sim/replay.hpp"
#include "sim/replay_memory.hpp"
#include "sim/sharded_replay.hpp"
#include "util/thread_pool.hpp"

namespace ibpower {
namespace {

ExperimentConfig big_config(const std::string& app, int nranks,
                            int iterations = 12) {
  ExperimentConfig cfg;
  cfg.app = app;
  cfg.workload.nranks = nranks;
  cfg.workload.iterations = iterations;
  cfg.workload.seed = 7;
  cfg.ppa.grouping_threshold = default_gt(app, nranks);
  return normalize_config(cfg);
}

ReplayOptions options_for(const ExperimentConfig& cfg, bool managed,
                          int shards) {
  ReplayOptions opt;
  opt.fabric = cfg.fabric;
  opt.enable_power_management = managed;
  if (managed) opt.ppa = cfg.ppa;
  opt.eager_threshold = cfg.eager_threshold;
  opt.record_call_timeline = true;
  opt.shards = shards;
  return opt;
}

struct Snapshot {
  ReplayResult rr;
  std::vector<std::vector<MpiCallEvent>> timelines;
  obs::ReplayMetrics metrics;
  std::string audit;
};

Snapshot run_snapshot(const Trace& trace, const ReplayOptions& opt) {
  ReplayEngine engine(&trace, opt);
  Snapshot s;
  s.rr = engine.run();
  s.timelines.reserve(static_cast<std::size_t>(trace.nranks()));
  for (Rank r = 0; r < trace.nranks(); ++r) {
    const auto tl = engine.call_timeline(r);
    s.timelines.emplace_back(tl.begin(), tl.end());
  }
  s.metrics = obs::collect_replay_metrics(engine, s.rr, PowerModelConfig{});
  s.audit = engine.audit_drain();
  return s;
}

void expect_bit_identical(const Snapshot& sharded, const Snapshot& serial,
                          int shards) {
  SCOPED_TRACE("shards=" + std::to_string(shards));
  EXPECT_TRUE(sharded.audit.empty()) << sharded.audit;
  EXPECT_EQ(sharded.rr.exec_time, serial.rr.exec_time);
  EXPECT_EQ(sharded.rr.rank_finish, serial.rr.rank_finish);
  EXPECT_EQ(sharded.rr.messages_sent, serial.rr.messages_sent);
  EXPECT_EQ(sharded.rr.events_processed, serial.rr.events_processed);
  EXPECT_TRUE(sharded.rr.drain == serial.rr.drain);
  ASSERT_EQ(sharded.timelines.size(), serial.timelines.size());
  for (std::size_t r = 0; r < serial.timelines.size(); ++r) {
    ASSERT_EQ(sharded.timelines[r].size(), serial.timelines[r].size())
        << "rank " << r;
    for (std::size_t i = 0; i < serial.timelines[r].size(); ++i) {
      EXPECT_EQ(sharded.timelines[r][i].call, serial.timelines[r][i].call);
      EXPECT_EQ(sharded.timelines[r][i].enter, serial.timelines[r][i].enter);
      EXPECT_EQ(sharded.timelines[r][i].exit, serial.timelines[r][i].exit);
    }
  }
  // The telemetry snapshot embeds every link's full reservation history
  // (residencies, busy spans, energies) — byte-level equality here means
  // the fabric evolved identically event for event.
  EXPECT_TRUE(sharded.metrics == serial.metrics);
}

TEST(ShardedReplay, BaselineBitIdenticalAcrossShardCounts128Ranks) {
  const ExperimentConfig cfg = big_config("alya", 128);
  const Trace trace = generate_experiment_trace(cfg);
  const Snapshot serial = run_snapshot(trace, options_for(cfg, false, 1));
  ASSERT_TRUE(serial.audit.empty()) << serial.audit;
  for (const int shards : {2, 4, 8}) {
    const Snapshot sharded =
        run_snapshot(trace, options_for(cfg, false, shards));
    EXPECT_EQ(sharded.rr.shards_used, shards);
    expect_bit_identical(sharded, serial, shards);
  }
}

TEST(ShardedReplay, ManagedBitIdenticalAcrossShardCounts128Ranks) {
  const ExperimentConfig cfg = big_config("gromacs", 128, 10);
  const Trace trace = generate_experiment_trace(cfg);
  const Snapshot serial = run_snapshot(trace, options_for(cfg, true, 1));
  ASSERT_TRUE(serial.audit.empty()) << serial.audit;
  for (const int shards : {2, 4, 8}) {
    const Snapshot sharded =
        run_snapshot(trace, options_for(cfg, true, shards));
    expect_bit_identical(sharded, serial, shards);
    EXPECT_EQ(sharded.rr.agent_total.total_calls,
              serial.rr.agent_total.total_calls);
    EXPECT_EQ(sharded.rr.agent_total.predicted_calls,
              serial.rr.agent_total.predicted_calls);
  }
}

TEST(ShardedReplay, TrunkPolicyAndRandomRoutingStayIdentical) {
  // The trunk sleep machinery and the counter-hash Random routing draw
  // streams are the states most exposed to event reordering; both must be
  // invariant under sharding.
  ExperimentConfig cfg = big_config("nas_mg", 64, 8);
  cfg.fabric.routing.strategy = RoutingStrategy::Random;
  cfg.fabric.trunk.kind = TrunkPolicyKind::Timeout;
  cfg.fabric.trunk.idle_timeout = TimeNs::from_us(std::int64_t{50});
  cfg = normalize_config(cfg);
  const Trace trace = generate_experiment_trace(cfg);
  const Snapshot serial = run_snapshot(trace, options_for(cfg, false, 1));
  ASSERT_TRUE(serial.audit.empty()) << serial.audit;
  for (const int shards : {2, 4}) {
    const Snapshot sharded =
        run_snapshot(trace, options_for(cfg, false, shards));
    expect_bit_identical(sharded, serial, shards);
  }
}

TEST(ShardedReplay, ShardProfileAccountsForEveryEvent) {
  const ExperimentConfig cfg = big_config("alya", 72, 8);
  const Trace trace = generate_experiment_trace(cfg);
  ReplayEngine engine(&trace, options_for(cfg, false, 4));
  const ReplayResult rr = engine.run();
  ASSERT_EQ(rr.shards_used, 4);
  ASSERT_EQ(rr.shard_profiles.size(), 4u);
  std::uint64_t events = 0;
  std::uint64_t posts = 0;
  for (const ShardProfile& p : rr.shard_profiles) {
    events += p.events;
    posts += p.boundary_posts;
  }
  EXPECT_EQ(events, rr.events_processed);
  // 72 ranks span 4 leaves with cross-leaf traffic: shards must actually
  // have talked to each other.
  EXPECT_GT(posts, 0u);
}

TEST(ShardedReplay, SerialRunReportsOneShardProfile) {
  const ExperimentConfig cfg = big_config("alya", 8, 4);
  const Trace trace = generate_experiment_trace(cfg);
  ReplayEngine engine(&trace, options_for(cfg, false, 1));
  const ReplayResult rr = engine.run();
  EXPECT_EQ(rr.shards_used, 1);
  ASSERT_EQ(rr.shard_profiles.size(), 1u);
  EXPECT_EQ(rr.shard_profiles[0].events, rr.events_processed);
  EXPECT_EQ(rr.shard_profiles[0].boundary_posts, 0u);
}

TEST(ShardedReplay, ShardCountResolutionPolicy) {
  // Clamped to leaves in use; 1 without lookahead; auto follows hardware
  // concurrency off-pool and stays serial inside a pool worker.
  EXPECT_EQ(resolve_shard_count(8, 4, true), 4);
  EXPECT_EQ(resolve_shard_count(3, 8, true), 3);
  EXPECT_EQ(resolve_shard_count(1, 8, true), 1);
  EXPECT_EQ(resolve_shard_count(8, 1, true), 1);
  EXPECT_EQ(resolve_shard_count(8, 8, false), 1);
  EXPECT_EQ(resolve_shard_count(0, 64, true),
            static_cast<int>(ThreadPool::default_concurrency()));
  ThreadPool pool(2);
  auto fut = pool.submit([] { return resolve_shard_count(0, 64, true); });
  EXPECT_EQ(fut.get(), 1) << "auto must stay serial inside a pool worker";
}

TEST(ShardedReplay, SingleLeafTraceForcesSerialExecution) {
  // 16 ranks fit in one leaf (m1 = 18): no boundary exists to cut, so the
  // engine must fall back to serial no matter what was requested.
  const ExperimentConfig cfg = big_config("alya", 16, 4);
  const Trace trace = generate_experiment_trace(cfg);
  ReplayEngine engine(&trace, options_for(cfg, false, 8));
  const ReplayResult rr = engine.run();
  EXPECT_EQ(rr.shards_used, 1);
}

TEST(ShardedReplay, ZeroHopLatencyForcesSerialExecution) {
  ExperimentConfig cfg = big_config("alya", 64, 4);
  cfg.fabric.hop_latency = TimeNs::zero();
  const Trace trace = generate_experiment_trace(cfg);
  ReplayEngine engine(&trace, options_for(cfg, false, 8));
  const ReplayResult rr = engine.run();
  EXPECT_EQ(rr.shards_used, 1) << "no lookahead -> no conservative window";
}

TEST(ShardedReplay, ShardedReplayReusesWorkspaceBitIdentically) {
  // The ReplayMemory reset-and-reuse contract extends to the per-shard
  // slabs: alternating serial and sharded replays on one workspace must
  // keep reproducing the fresh-engine results.
  const ExperimentConfig cfg = big_config("alya", 64, 6);
  const Trace trace = generate_experiment_trace(cfg);
  const Snapshot fresh = run_snapshot(trace, options_for(cfg, false, 1));

  ReplayMemory mem;
  for (const int shards : {4, 1, 2, 4}) {
    ReplayEngine engine(&trace, options_for(cfg, false, shards), &mem);
    const ReplayResult rr = engine.run();
    EXPECT_EQ(rr.exec_time, fresh.rr.exec_time) << "shards " << shards;
    EXPECT_EQ(rr.rank_finish, fresh.rr.rank_finish) << "shards " << shards;
    EXPECT_TRUE(rr.drain == fresh.rr.drain) << "shards " << shards;
    EXPECT_TRUE(engine.audit_drain().empty());
  }
}

TEST(ShardedReplay, ExperimentLegsHonorConfigShards) {
  // The experiment layer forwards cfg.shards into both legs; results stay
  // bit-identical to the serial legs (the whole-run determinism contract).
  ExperimentConfig serial_cfg = big_config("alya", 64, 6);
  ExperimentConfig sharded_cfg = serial_cfg;
  sharded_cfg.shards = 4;
  const Trace trace = generate_experiment_trace(serial_cfg);
  const BaselineLegResult b1 = run_baseline_leg(serial_cfg, trace);
  const BaselineLegResult b4 = run_baseline_leg(sharded_cfg, trace);
  EXPECT_EQ(b4.time, b1.time);
  EXPECT_EQ(b4.events, b1.events);
  const ManagedLegResult m1 = run_managed_leg(serial_cfg, trace);
  const ManagedLegResult m4 = run_managed_leg(sharded_cfg, trace);
  EXPECT_EQ(m4.time, m1.time);
  EXPECT_EQ(m4.messages, m1.messages);
  EXPECT_EQ(m4.events, m1.events);
}

}  // namespace
}  // namespace ibpower
