// Round-trip test for the Paraver-like .prv timeline format against the
// checked-in Fig. 6 fixture: parse -> serialize -> re-parse must be the
// identity, and re-serialization must be byte-stable. Guards both
// directions of the format against silent drift (the fixture is also what
// bench_fig6_timeline regenerates).
#include "trace/paraver.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

namespace ibpower {
namespace {

const char* fixture_path() {
  return IBPOWER_REPO_DIR "/fig6_gromacs16.prv";
}

void expect_same_timeline(const StateTimeline& a, const StateTimeline& b) {
  EXPECT_EQ(a.nrows(), b.nrows());
  EXPECT_EQ(a.duration(), b.duration());
  ASSERT_EQ(a.records().size(), b.records().size());
  for (std::size_t i = 0; i < a.records().size(); ++i) {
    const StateTimeline::Record& ra = a.records()[i];
    const StateTimeline::Record& rb = b.records()[i];
    EXPECT_EQ(ra.row, rb.row) << "record " << i;
    EXPECT_EQ(ra.span.begin, rb.span.begin) << "record " << i;
    EXPECT_EQ(ra.span.end, rb.span.end) << "record " << i;
    EXPECT_EQ(ra.state, rb.state) << "record " << i;
  }
}

TEST(PrvRoundtrip, Fig6FixtureParses) {
  std::ifstream in(fixture_path());
  ASSERT_TRUE(in.is_open()) << fixture_path();
  std::string app;
  const StateTimeline tl = StateTimeline::read_prv(in, &app);
  EXPECT_EQ(app, "gromacs");
  EXPECT_EQ(tl.nrows(), 16);
  EXPECT_EQ(tl.duration().ns, 186623805);
  EXPECT_FALSE(tl.records().empty());
}

TEST(PrvRoundtrip, ParseSerializeReparseIsIdentity) {
  std::ifstream in(fixture_path());
  ASSERT_TRUE(in.is_open()) << fixture_path();
  std::string app;
  const StateTimeline first = StateTimeline::read_prv(in, &app);

  std::ostringstream out1;
  first.write_prv(out1, app);
  std::istringstream back1(out1.str());
  std::string app2;
  const StateTimeline second = StateTimeline::read_prv(back1, &app2);
  EXPECT_EQ(app2, app);
  expect_same_timeline(first, second);

  // Serialization is byte-stable across round trips.
  std::ostringstream out2;
  second.write_prv(out2, app2);
  EXPECT_EQ(out1.str(), out2.str());
}

TEST(PrvRoundtrip, ResidencySurvivesRoundTrip) {
  std::ifstream in(fixture_path());
  ASSERT_TRUE(in.is_open()) << fixture_path();
  const StateTimeline first = StateTimeline::read_prv(in);
  std::ostringstream out;
  first.write_prv(out, "gromacs");
  std::istringstream back(out.str());
  const StateTimeline second = StateTimeline::read_prv(back);
  for (std::int32_t row = 0; row < first.nrows(); ++row) {
    for (const std::int32_t state : {0, 1, 2}) {
      EXPECT_EQ(first.residency(row, state), second.residency(row, state))
          << "row " << row << " state " << state;
    }
  }
}

}  // namespace
}  // namespace ibpower
