#include "workloads/app_model.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "trace/trace_io.hpp"
#include "util/stats.hpp"
#include "workloads/apps.hpp"

namespace ibpower {
namespace {

struct AppSize {
  const char* app;
  int nranks;
};

std::string param_name(const ::testing::TestParamInfo<AppSize>& info) {
  return std::string(info.param.app) + "_" + std::to_string(info.param.nranks);
}

class WorkloadValidity : public ::testing::TestWithParam<AppSize> {};

TEST_P(WorkloadValidity, GeneratesValidTrace) {
  const auto [app_name, nranks] = GetParam();
  const auto app = make_app(app_name);
  ASSERT_TRUE(app->supports(nranks));
  WorkloadParams params;
  params.nranks = nranks;
  params.iterations = 12;
  const Trace trace = app->generate(params);
  EXPECT_EQ(trace.nranks(), nranks);
  EXPECT_EQ(trace.validate(), "") << app_name << " @" << nranks;
  EXPECT_GT(trace.total_mpi_calls(), 0u);
}

TEST_P(WorkloadValidity, DeterministicForSeed) {
  const auto [app_name, nranks] = GetParam();
  const auto app = make_app(app_name);
  WorkloadParams params;
  params.nranks = nranks;
  params.iterations = 6;
  params.seed = 777;
  std::ostringstream a, b;
  write_trace(a, app->generate(params));
  write_trace(b, app->generate(params));
  EXPECT_EQ(a.str(), b.str());
}

TEST_P(WorkloadValidity, SeedChangesJitter) {
  const auto [app_name, nranks] = GetParam();
  const auto app = make_app(app_name);
  WorkloadParams p1, p2;
  p1.nranks = p2.nranks = nranks;
  p1.iterations = p2.iterations = 6;
  p1.seed = 1;
  p2.seed = 2;
  std::ostringstream a, b;
  write_trace(a, app->generate(p1));
  write_trace(b, app->generate(p2));
  EXPECT_NE(a.str(), b.str());
}

INSTANTIATE_TEST_SUITE_P(
    AllAppsAndSizes, WorkloadValidity,
    ::testing::Values(AppSize{"gromacs", 8}, AppSize{"gromacs", 32},
                      AppSize{"alya", 8}, AppSize{"alya", 16},
                      AppSize{"wrf", 8}, AppSize{"wrf", 32},
                      AppSize{"nas_bt", 9}, AppSize{"nas_bt", 16},
                      AppSize{"nas_mg", 8}, AppSize{"nas_mg", 32},
                      AppSize{"nas_lu", 9}, AppSize{"nas_lu", 16}),
    param_name);

TEST(Workloads, RegistryListsAllApps) {
  const auto names = app_names();
  ASSERT_EQ(names.size(), 6u);  // the paper's five + nas_lu
  for (const auto& name : names) {
    EXPECT_EQ(make_app(name)->name(), name);
  }
}

TEST(Workloads, UnknownAppThrows) {
  EXPECT_THROW(make_app("linpack"), std::invalid_argument);
}

TEST(Workloads, BtRequiresSquares) {
  const NasBtModel bt;
  EXPECT_TRUE(bt.supports(9));
  EXPECT_TRUE(bt.supports(100));
  EXPECT_FALSE(bt.supports(8));
  EXPECT_FALSE(bt.supports(32));
  EXPECT_EQ(bt.paper_process_counts(),
            (std::vector<int>{9, 16, 36, 64, 100}));
}

TEST(Workloads, StrongScalingShrinksCompute) {
  const auto app = make_app("alya");
  WorkloadParams small, large;
  small.nranks = 8;
  large.nranks = 64;
  small.iterations = large.iterations = 5;
  auto total_compute = [](const Trace& t) {
    TimeNs sum{};
    for (const auto& rec : t.stream(0)) {
      if (const auto* c = std::get_if<ComputeRecord>(&rec)) sum += c->duration;
    }
    return sum;
  };
  const TimeNs c8 = total_compute(app->generate(small));
  const TimeNs c64 = total_compute(app->generate(large));
  // Per-rank compute shrinks roughly 8x.
  EXPECT_LT(c64 * 4, c8);
}

TEST(Workloads, WeakScalingKeepsComputePerRank) {
  const auto app = make_app("alya");
  WorkloadParams small, large;
  small.nranks = 8;
  large.nranks = 64;
  small.iterations = large.iterations = 5;
  small.weak_scaling = large.weak_scaling = true;
  auto total_compute = [](const Trace& t) {
    TimeNs sum{};
    for (const auto& rec : t.stream(0)) {
      if (const auto* c = std::get_if<ComputeRecord>(&rec)) sum += c->duration;
    }
    return sum;
  };
  const TimeNs c8 = total_compute(app->generate(small));
  const TimeNs c64 = total_compute(app->generate(large));
  EXPECT_LT(rel_diff(static_cast<double>(c8.ns), static_cast<double>(c64.ns)),
            0.2);
}

TEST(Workloads, AlyaStreamMatchesPaperFig2) {
  // Per iteration: exactly 3 Sendrecv then 2 Allreduce (modulo the rare
  // extra convergence allreduce).
  const auto app = make_app("alya");
  WorkloadParams params;
  params.nranks = 4;
  params.iterations = 3;
  params.seed = 5;  // seed without extra reductions in 3 iterations
  const Trace t = app->generate(params);
  std::vector<MpiCall> calls;
  for (const auto& rec : t.stream(0)) {
    if (call_of(rec) != MpiCall::None) calls.push_back(call_of(rec));
  }
  ASSERT_GE(calls.size(), 5u);
  const std::vector<MpiCall> iteration(calls.begin(), calls.begin() + 5);
  EXPECT_EQ(iteration,
            (std::vector<MpiCall>{MpiCall::Sendrecv, MpiCall::Sendrecv,
                                  MpiCall::Sendrecv, MpiCall::Allreduce,
                                  MpiCall::Allreduce}));
}

TEST(Workloads, WrfCallCountVariesWithPerturbation) {
  const auto app = make_app("wrf");
  WorkloadParams params;
  params.nranks = 8;
  params.iterations = 40;
  const Trace t = app->generate(params);
  // Perturbed steps add ~32 extra exchanges each: total calls should far
  // exceed the clean-step minimum.
  const std::size_t clean_minimum = 40u * 5u * 8u;
  EXPECT_GT(t.total_mpi_calls(), clean_minimum + 40u);
}

TEST(Workloads, ScaleParameterGrowsBursts) {
  const auto app = make_app("gromacs");
  WorkloadParams a, b;
  a.nranks = b.nranks = 8;
  a.iterations = b.iterations = 4;
  b.scale = 2.0;
  auto first_burst = [](const Trace& t) {
    for (const auto& rec : t.stream(0)) {
      if (const auto* c = std::get_if<ComputeRecord>(&rec)) return c->duration;
    }
    return TimeNs::zero();
  };
  EXPECT_GT(first_burst(app->generate(b)), first_burst(app->generate(a)));
}

}  // namespace
}  // namespace ibpower
