#include "trace/trace.hpp"

#include <gtest/gtest.h>

namespace ibpower {
namespace {

using namespace ibpower::literals;

TEST(Trace, BasicAccounting) {
  Trace t("demo", 2);
  t.push(0, ComputeRecord{10_us});
  t.push(0, SendRecord{1, 1024, 0});
  t.push(1, RecvRecord{0, 1024, 0});
  t.push(0, CollectiveRecord{MpiCall::Barrier, 0});
  t.push(1, CollectiveRecord{MpiCall::Barrier, 0});
  EXPECT_EQ(t.nranks(), 2);
  EXPECT_EQ(t.total_records(), 5u);
  EXPECT_EQ(t.total_mpi_calls(), 4u);
  EXPECT_EQ(t.app_name(), "demo");
}

TEST(Trace, ValidAcceptsMatchedP2P) {
  Trace t("demo", 2);
  t.push(0, SendRecord{1, 2048, 7});
  t.push(1, RecvRecord{0, 2048, 7});
  EXPECT_EQ(t.validate(), "");
}

TEST(Trace, ValidateCatchesUnmatchedSend) {
  Trace t("demo", 2);
  t.push(0, SendRecord{1, 2048, 7});
  EXPECT_NE(t.validate(), "");
}

TEST(Trace, ValidateCatchesUnmatchedRecv) {
  Trace t("demo", 2);
  t.push(1, RecvRecord{0, 2048, 7});
  EXPECT_NE(t.validate(), "");
}

TEST(Trace, ValidateCatchesSizeMismatch) {
  Trace t("demo", 2);
  t.push(0, SendRecord{1, 2048, 7});
  t.push(1, RecvRecord{0, 4096, 7});
  EXPECT_NE(t.validate(), "");
}

TEST(Trace, ValidateCatchesTagMismatch) {
  Trace t("demo", 2);
  t.push(0, SendRecord{1, 2048, 7});
  t.push(1, RecvRecord{0, 2048, 8});
  EXPECT_NE(t.validate(), "");
}

TEST(Trace, ValidateCatchesInvalidPeer) {
  Trace t("demo", 2);
  t.push(0, SendRecord{5, 2048, 0});
  EXPECT_NE(t.validate(), "");
  Trace t2("demo", 2);
  t2.push(0, SendRecord{0, 2048, 0});  // self-send
  EXPECT_NE(t2.validate(), "");
}

TEST(Trace, ValidateSendrecvMutualRing) {
  Trace t("demo", 3);
  for (Rank r = 0; r < 3; ++r) {
    const Rank to = (r + 1) % 3;
    const Rank from = (r + 2) % 3;
    t.push(r, SendrecvRecord{to, from, 512, 0});
  }
  EXPECT_EQ(t.validate(), "");
}

TEST(Trace, ValidateCatchesBrokenSendrecvRing) {
  Trace t("demo", 3);
  t.push(0, SendrecvRecord{1, 2, 512, 0});
  t.push(1, SendrecvRecord{2, 0, 512, 0});
  // Rank 2 missing: its expected recv/sends unmatched.
  EXPECT_NE(t.validate(), "");
}

TEST(Trace, ValidateCollectiveAgreement) {
  Trace t("demo", 2);
  t.push(0, CollectiveRecord{MpiCall::Allreduce, 8});
  t.push(1, CollectiveRecord{MpiCall::Allreduce, 8});
  EXPECT_EQ(t.validate(), "");
  t.push(0, CollectiveRecord{MpiCall::Barrier, 0});
  EXPECT_NE(t.validate(), "");  // rank 1 lacks the barrier
  t.push(1, CollectiveRecord{MpiCall::Bcast, 0});
  EXPECT_NE(t.validate(), "");  // disagreeing ops
}

TEST(Trace, ValidateCollectiveSizeAgreement) {
  Trace t("demo", 2);
  t.push(0, CollectiveRecord{MpiCall::Allreduce, 8});
  t.push(1, CollectiveRecord{MpiCall::Allreduce, 16});
  EXPECT_NE(t.validate(), "");
}

TEST(MpiEvent, CallOfRecords) {
  EXPECT_EQ(call_of(ComputeRecord{1_us}), MpiCall::None);
  EXPECT_EQ(call_of(SendRecord{1, 8, 0}), MpiCall::Send);
  EXPECT_EQ(call_of(RecvRecord{1, 8, 0}), MpiCall::Recv);
  EXPECT_EQ(call_of(SendrecvRecord{1, 2, 8, 0}), MpiCall::Sendrecv);
  EXPECT_EQ(call_of(CollectiveRecord{MpiCall::Allreduce, 8}),
            MpiCall::Allreduce);
}

TEST(MpiEvent, PaperCallIds) {
  // Fig. 2 of the paper relies on these numeric ids.
  EXPECT_EQ(static_cast<int>(MpiCall::Allreduce), 10);
  EXPECT_EQ(static_cast<int>(MpiCall::Sendrecv), 41);
}

TEST(MpiEvent, Classification) {
  EXPECT_TRUE(is_collective(MpiCall::Allreduce));
  EXPECT_TRUE(is_collective(MpiCall::Barrier));
  EXPECT_FALSE(is_collective(MpiCall::Send));
  EXPECT_TRUE(is_p2p(MpiCall::Sendrecv));
  EXPECT_FALSE(is_p2p(MpiCall::Bcast));
}

TEST(MpiEvent, Names) {
  EXPECT_STREQ(to_string(MpiCall::Sendrecv), "MPI_Sendrecv");
  EXPECT_STREQ(to_string(MpiCall::Allreduce), "MPI_Allreduce");
}

}  // namespace
}  // namespace ibpower
