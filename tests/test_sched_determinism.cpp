// The tentpole's acceptance pins: grid exports bit-identical to serial at
// every tested jobs × shards combination (work-stealing and elastic shard
// pumps included), and the phase barrier measurably gone — on a
// heterogeneous grid some replay leg *starts* before the last trace
// generation *finishes*, which the old generate-all/join/replay-all
// scheduler could never do.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "sim/parallel.hpp"

namespace ibpower {
namespace {

ExperimentConfig small_config(const std::string& app, int nranks) {
  ExperimentConfig cfg;
  cfg.app = app;
  cfg.workload.nranks = nranks;
  cfg.workload.iterations = 6;
  cfg.workload.seed = 42;
  cfg.ppa.grouping_threshold = default_gt(app, nranks);
  cfg.ppa.displacement_factor = 0.01;
  return cfg;
}

/// A small heterogeneous grid: cells of very different cost, plus a shared
/// trace, so the task graph actually has a long pole and idle workers.
std::vector<ExperimentConfig> hetero_grid(int shards) {
  std::vector<ExperimentConfig> cfgs;
  cfgs.push_back(small_config("alya", 8));
  cfgs.push_back(small_config("gromacs", 16));
  cfgs.push_back(small_config("nas_mg", 8));
  ExperimentConfig big = small_config("wrf", 16);
  big.workload.iterations = 12;  // the long pole
  cfgs.push_back(big);
  ExperimentConfig sharer = small_config("alya", 8);
  sharer.ppa.grouping_threshold = TimeNs::from_us(150.0);
  cfgs.push_back(sharer);  // shares cell 0's trace
  for (ExperimentConfig& cfg : cfgs) cfg.shards = shards;
  return cfgs;
}

TEST(SchedDeterminism, GridBitIdenticalAcrossJobsAndShards) {
  // Serial ground truth: one replay at a time, unsharded.
  const std::vector<ExperimentConfig> serial_cfgs = hetero_grid(1);
  std::vector<ExperimentResult> serial;
  serial.reserve(serial_cfgs.size());
  for (const auto& cfg : serial_cfgs) serial.push_back(run_experiment(cfg));

  for (const unsigned jobs : {1u, 2u, 8u}) {
    for (const int shards : {1, 4}) {
      const std::vector<ExperimentConfig> cfgs = hetero_grid(shards);
      ParallelExperimentRunner runner(jobs, /*clamp_to_hardware=*/false);
      const std::vector<ExperimentResult> got = runner.run_all(cfgs);
      ASSERT_EQ(got.size(), serial.size());
      for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_TRUE(bit_identical(serial[i], got[i]))
            << "cell " << i << " diverged at jobs=" << jobs
            << " shards=" << shards;
      }
    }
  }
}

TEST(SchedDeterminism, StealPathRepeatsBitIdentical) {
  // Property test for the steal path: an oversubscribed engine (8 workers)
  // re-running the same grid must reproduce serial bits every repeat, no
  // matter which tasks end up stolen each time.
  const std::vector<ExperimentConfig> cfgs = hetero_grid(1);
  std::vector<ExperimentResult> serial;
  serial.reserve(cfgs.size());
  for (const auto& cfg : cfgs) serial.push_back(run_experiment(cfg));

  ParallelExperimentRunner runner(8, /*clamp_to_hardware=*/false);
  for (int repeat = 0; repeat < 3; ++repeat) {
    const std::vector<ExperimentResult> got = runner.run_all(cfgs);
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_TRUE(bit_identical(serial[i], got[i]))
          << "repeat " << repeat << " cell " << i;
    }
  }
}

TEST(SchedDeterminism, ReplayLegStartsBeforeLastGenFinishes) {
  // The barrier-elimination proof, straight from the scheduler profile: at
  // least one replay leg's start_ns precedes the latest generation task's
  // finish_ns. Structurally guaranteed by the engine even at one worker —
  // a finished gen's dependents sit on top of the worker's LIFO deque, so
  // its legs run before the next (injected) generation task is touched.
  const std::vector<ExperimentConfig> cfgs = hetero_grid(1);
  for (const unsigned jobs : {1u, 2u}) {
    ParallelExperimentRunner runner(jobs, /*clamp_to_hardware=*/false);
    runner.set_profiling(true);
    (void)runner.run_all(cfgs);
    const SchedProfile prof = runner.last_sched_profile();
    ASSERT_FALSE(prof.tasks.empty());

    std::int64_t last_gen_finish = -1;
    std::int64_t first_leg_start = -1;
    int gens = 0;
    int legs = 0;
    for (const SchedTaskProfile& t : prof.tasks) {
      if (std::strcmp(t.label, "gen") == 0) {
        last_gen_finish = std::max(last_gen_finish, t.finish_ns);
        ++gens;
      } else if (std::strcmp(t.label, "baseline") == 0 ||
                 std::strcmp(t.label, "managed") == 0) {
        first_leg_start = first_leg_start < 0
                              ? t.start_ns
                              : std::min(first_leg_start, t.start_ns);
        ++legs;
      }
    }
    ASSERT_EQ(gens, 4) << "4 distinct traces expected (one pair shares)";
    ASSERT_EQ(legs, 2 * static_cast<int>(cfgs.size()));
    EXPECT_LT(first_leg_start, last_gen_finish)
        << "phase barrier detected at jobs=" << jobs
        << ": no leg overlapped trace generation";
  }
}

TEST(SchedDeterminism, SweepGtBitIdenticalAcrossJobs) {
  const ExperimentConfig cfg = small_config("nas_mg", 8);
  std::vector<TimeNs> values;
  for (const int us : {20, 40, 90, 200}) {
    values.push_back(TimeNs::from_us(static_cast<std::int64_t>(us)));
  }
  const std::vector<GtSweepPoint> serial = sweep_gt(cfg, values);
  for (const unsigned jobs : {1u, 2u, 8u}) {
    ParallelExperimentRunner runner(jobs, /*clamp_to_hardware=*/false);
    const std::vector<GtSweepPoint> got = runner.sweep_gt(cfg, values);
    ASSERT_EQ(got.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(got[i].gt, serial[i].gt) << "jobs=" << jobs;
      EXPECT_EQ(got[i].hit_rate_pct, serial[i].hit_rate_pct)
          << "jobs=" << jobs;
    }
  }
}

}  // namespace
}  // namespace ibpower
