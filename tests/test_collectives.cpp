#include "sim/collectives.hpp"

#include <gtest/gtest.h>

namespace ibpower {
namespace {

using namespace ibpower::literals;

const CollectiveCostModel kModel(1_us, 40.0);

TEST(Collectives, SingleRankIsCheap) {
  EXPECT_EQ(kModel.cost(MpiCall::Allreduce, 1024, 1), 1_us);
}

TEST(Collectives, BarrierLogarithmic) {
  EXPECT_EQ(kModel.cost(MpiCall::Barrier, 0, 2), 1_us);
  EXPECT_EQ(kModel.cost(MpiCall::Barrier, 0, 8), 3_us);
  EXPECT_EQ(kModel.cost(MpiCall::Barrier, 0, 9), 4_us);  // ceil(log2 9) = 4
  EXPECT_EQ(kModel.cost(MpiCall::Barrier, 0, 128), 7_us);
}

TEST(Collectives, AllreduceIsBcastPlusExtraLatencyStages) {
  // allreduce = 2*stages*lat + 2*ser; bcast = stages*lat + 2*ser.
  const TimeNs bcast = kModel.cost(MpiCall::Bcast, 4096, 16);
  const TimeNs allreduce = kModel.cost(MpiCall::Allreduce, 4096, 16);
  EXPECT_EQ(allreduce - bcast, 1_us * 4);
}

TEST(Collectives, BandwidthTermIndependentOfRanks) {
  // Pipelined algorithms: payload term does not multiply with tree depth.
  const Bytes big = 1 << 20;
  const TimeNs c16 = kModel.cost(MpiCall::Allreduce, big, 16);
  const TimeNs c128 = kModel.cost(MpiCall::Allreduce, big, 128);
  // Only the latency term grows: 2*(7-4) stages * 1us.
  EXPECT_EQ(c128 - c16, 1_us * 6);
}

TEST(Collectives, AlltoallLatencyLinearInRanks) {
  const TimeNs small = kModel.cost(MpiCall::Alltoall, 1024, 8);
  const TimeNs large = kModel.cost(MpiCall::Alltoall, 1024, 64);
  EXPECT_EQ(small, 1_us * 7 + TimeNs{205} * 2);
  EXPECT_EQ(large, 1_us * 63 + TimeNs{205} * 2);
}

TEST(Collectives, CostGrowsWithBytes) {
  EXPECT_LT(kModel.cost(MpiCall::Allreduce, 8, 16),
            kModel.cost(MpiCall::Allreduce, 1 << 20, 16));
}

TEST(Collectives, CostGrowsWithRanks) {
  for (const MpiCall op : {MpiCall::Allreduce, MpiCall::Bcast,
                           MpiCall::Alltoall, MpiCall::Barrier}) {
    EXPECT_LE(kModel.cost(op, 4096, 8), kModel.cost(op, 4096, 128))
        << to_string(op);
  }
}

TEST(Collectives, SerializationMatchesBandwidth) {
  // 40 Gb/s -> 5 bytes per ns.
  EXPECT_EQ(kModel.serialization(4000), TimeNs{800});
}

TEST(Collectives, GatherScatterSymmetry) {
  EXPECT_EQ(kModel.cost(MpiCall::Gather, 2048, 32),
            kModel.cost(MpiCall::Scatter, 2048, 32));
}

}  // namespace
}  // namespace ibpower
