// Tests for the check/ subsystem's post-run invariant auditors. The
// positive direction (clean runs audit clean) is exercised over every link
// lifecycle the public API can produce — idle, gated, on-demand woken —
// and over full baseline/managed replays of a synthetic trace; the
// negative direction uses the one violation reachable without poking
// internals: auditing a replay that never ran.
#include "check/invariant_auditor.hpp"

#include <gtest/gtest.h>

#include "check/trace_gen.hpp"

namespace ibpower {
namespace {

using namespace ibpower::literals;

TEST(InvariantAuditor, IdleFinishedLinkAuditsClean) {
  IbLink link;
  link.finish(1_ms);
  EXPECT_EQ(audit_link_schedule(link), "");
  EXPECT_EQ(audit_energy_closure(link, PowerModelConfig{}), "");
  // No gating: the whole execution is FullPower residency.
  EXPECT_EQ(link.residency(LinkPowerMode::FullPower), 1_ms);
  EXPECT_EQ(summarize_link(link, PowerModelConfig{}).savings_pct, 0.0);
}

TEST(InvariantAuditor, GatedLinkAuditsClean) {
  IbLink link;
  link.request_low_power(100_us, 500_us);
  // Finish well after the scheduled reactivation so the schedule ends at
  // FullPower (t_react defaults to 10 us).
  link.finish(1_ms);
  ASSERT_EQ(audit_link_schedule(link), "");
  EXPECT_EQ(audit_energy_closure(link, PowerModelConfig{}), "");
  const LinkPowerSummary s = summarize_link(link, PowerModelConfig{});
  EXPECT_GT(s.savings_pct, 0.0);
  EXPECT_LE(s.savings_pct, 57.0);  // (1 - 0.43) * 100
  // Residency partition, the invariant audit_link_schedule enforces.
  EXPECT_EQ(link.residency(LinkPowerMode::FullPower) +
                link.residency(LinkPowerMode::LowPower) +
                link.residency(LinkPowerMode::Transition),
            1_ms);
}

TEST(InvariantAuditor, OnDemandWokenLinkAuditsClean) {
  IbLink link;
  link.request_low_power(0_us, 2_ms);
  // Transmit mid-gate: the message triggers an on-demand wake, splicing an
  // early Transition -> FullPower edge into the schedule.
  const auto res = link.reserve(Direction::Up, 500_us, Bytes{65536});
  EXPECT_GT(res.power_delay, TimeNs::zero());
  EXPECT_EQ(link.on_demand_wakes(), 1u);
  link.finish(3_ms);
  EXPECT_EQ(audit_link_schedule(link), "");
  EXPECT_EQ(audit_energy_closure(link, PowerModelConfig{}), "");
}

TEST(InvariantAuditor, EnergyClosureHoldsAcrossLowPowerFractions) {
  IbLink link;
  link.request_low_power(50_us, 300_us);
  link.finish(2_ms);
  for (const double frac : {0.2, 0.43, 0.9}) {
    PowerModelConfig cfg;
    cfg.low_power_fraction = frac;
    EXPECT_EQ(audit_energy_closure(link, cfg), "") << "fraction " << frac;
  }
}

TEST(InvariantAuditor, UnranReplayIsFlagged) {
  SyntheticTraceConfig tcfg;
  tcfg.seed = 5;
  tcfg.nranks = 4;
  tcfg.iterations = 2;
  const Trace trace = generate_trace(tcfg);
  const ReplayEngine engine(&trace, ReplayOptions{});
  const std::string err = audit_replay(engine);
  EXPECT_NE(err.find("run() has not been called"), std::string::npos) << err;
}

TEST(InvariantAuditor, BaselineAndManagedReplaysAuditClean) {
  SyntheticTraceConfig tcfg;
  tcfg.seed = 17;
  tcfg.nranks = 8;
  tcfg.phases_per_iteration = 3;
  tcfg.iterations = 8;
  const Trace trace = generate_trace(tcfg);
  ASSERT_EQ(trace.validate(), "");

  ReplayOptions base;
  base.fabric.routing.strategy = RoutingStrategy::Dmodk;
  base.enable_power_management = false;
  base.record_call_timeline = true;
  ReplayOptions managed = base;
  managed.enable_power_management = true;

  for (const ReplayOptions& opt : {base, managed}) {
    ReplayEngine engine(&trace, opt);
    (void)engine.run();
    EXPECT_EQ(audit_replay(engine, PowerModelConfig{}), "")
        << (opt.enable_power_management ? "managed" : "baseline");
  }
}

}  // namespace
}  // namespace ibpower
