#include "util/hash_table.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/rng.hpp"

namespace ibpower {
namespace {

TEST(FlatHashMap, InsertFindBasic) {
  FlatHashMap<int, std::string> m;
  m.insert_or_assign(1, "one");
  m.insert_or_assign(2, "two");
  ASSERT_NE(m.find(1), nullptr);
  EXPECT_EQ(*m.find(1), "one");
  EXPECT_EQ(*m.find(2), "two");
  EXPECT_EQ(m.find(3), nullptr);
  EXPECT_EQ(m.size(), 2u);
}

TEST(FlatHashMap, InsertOrAssignOverwrites) {
  FlatHashMap<int, int> m;
  m.insert_or_assign(7, 1);
  m.insert_or_assign(7, 2);
  EXPECT_EQ(m.size(), 1u);
  EXPECT_EQ(*m.find(7), 2);
}

TEST(FlatHashMap, SubscriptDefaultConstructs) {
  FlatHashMap<int, int> m;
  EXPECT_EQ(m[42], 0);
  m[42] = 9;
  EXPECT_EQ(*m.find(42), 9);
}

TEST(FlatHashMap, EraseBasic) {
  FlatHashMap<int, int> m;
  for (int i = 0; i < 10; ++i) m.insert_or_assign(i, i * i);
  EXPECT_TRUE(m.erase(5));
  EXPECT_FALSE(m.erase(5));
  EXPECT_EQ(m.find(5), nullptr);
  EXPECT_EQ(m.size(), 9u);
  for (int i = 0; i < 10; ++i) {
    if (i == 5) continue;
    ASSERT_NE(m.find(i), nullptr) << i;
    EXPECT_EQ(*m.find(i), i * i);
  }
}

TEST(FlatHashMap, GrowsThroughRehash) {
  FlatHashMap<int, int> m;
  for (int i = 0; i < 10000; ++i) m.insert_or_assign(i, i + 1);
  EXPECT_EQ(m.size(), 10000u);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_NE(m.find(i), nullptr) << i;
    EXPECT_EQ(*m.find(i), i + 1);
  }
}

TEST(FlatHashMap, MoveOnlyValues) {
  FlatHashMap<int, std::unique_ptr<int>> m;
  m[1] = std::make_unique<int>(11);
  m[2] = std::make_unique<int>(22);
  for (int i = 3; i < 100; ++i) m[i] = std::make_unique<int>(i);
  ASSERT_NE(m.find(1), nullptr);
  EXPECT_EQ(**m.find(1), 11);
  EXPECT_TRUE(m.erase(1));
  EXPECT_EQ(m.find(1), nullptr);
}

TEST(FlatHashMap, VectorKeys) {
  struct SeqHash {
    std::uint64_t operator()(const std::vector<int>& v) const {
      return fnv1a(v.data(), v.size() * sizeof(int));
    }
  };
  FlatHashMap<std::vector<int>, int, SeqHash> m;
  m.insert_or_assign({1, 2, 3}, 1);
  m.insert_or_assign({1, 2, 4}, 2);
  ASSERT_NE(m.find({1, 2, 3}), nullptr);
  EXPECT_EQ(*m.find({1, 2, 3}), 1);
  EXPECT_EQ(*m.find({1, 2, 4}), 2);
  EXPECT_EQ(m.find({1, 2}), nullptr);
}

TEST(FlatHashMap, ForEachVisitsAll) {
  FlatHashMap<int, int> m;
  for (int i = 0; i < 50; ++i) m.insert_or_assign(i, 1);
  int sum = 0;
  m.for_each([&](int key, int value) { sum += key * value; });
  EXPECT_EQ(sum, 49 * 50 / 2);
}

TEST(FlatHashMap, ClearResets) {
  FlatHashMap<int, int> m;
  for (int i = 0; i < 10; ++i) m.insert_or_assign(i, i);
  m.clear();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find(3), nullptr);
  m.insert_or_assign(3, 33);
  EXPECT_EQ(*m.find(3), 33);
}

TEST(FlatHashMap, ReserveAvoidsIntermediateRehash) {
  FlatHashMap<int, int> m;
  m.reserve(1000);
  const std::size_t cap = m.capacity();
  for (int i = 0; i < 1000; ++i) m.insert_or_assign(i, i);
  EXPECT_EQ(m.capacity(), cap);
}

// Property: behaves identically to std::unordered_map under a random
// insert/erase/find workload (this is the uthash-replacement guarantee).
class FlatHashMapProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlatHashMapProperty, MatchesUnorderedMap) {
  Rng rng(GetParam());
  FlatHashMap<std::uint64_t, std::uint64_t> m;
  std::unordered_map<std::uint64_t, std::uint64_t> ref;
  for (int step = 0; step < 20000; ++step) {
    const std::uint64_t key = rng.uniform_below(500);  // force collisions
    const double action = rng.uniform01();
    if (action < 0.5) {
      const std::uint64_t value = rng();
      m.insert_or_assign(key, value);
      ref[key] = value;
    } else if (action < 0.75) {
      EXPECT_EQ(m.erase(key), ref.erase(key) > 0);
    } else {
      const auto* found = m.find(key);
      const auto it = ref.find(key);
      if (it == ref.end()) {
        EXPECT_EQ(found, nullptr);
      } else {
        ASSERT_NE(found, nullptr);
        EXPECT_EQ(*found, it->second);
      }
    }
    ASSERT_EQ(m.size(), ref.size());
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, FlatHashMapProperty,
                         ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace ibpower
