// TaskEngine unit tests: dependency edges, the work-stealing path, the
// exception backstop, profiling records, and reset/reuse. The bit-identity
// of whole experiment exports lives in test_sched_determinism; here the
// engine is exercised directly with slot-writing tasks, the same discipline
// its real callers use.
#include "util/task_engine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace ibpower {
namespace {

TEST(TaskEngine, RunsEverySubmittedTask) {
  TaskEngine engine(3);
  constexpr std::size_t kTasks = 500;
  std::vector<int> slot(kTasks, 0);
  for (std::size_t i = 0; i < kTasks; ++i) {
    (void)engine.submit([&slot, i] { slot[i] = static_cast<int>(i) + 1; });
  }
  engine.wait_all();
  for (std::size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(slot[i], static_cast<int>(i) + 1) << i;
  }
}

TEST(TaskEngine, ZeroWorkersDegradesToOne) {
  TaskEngine engine(0);
  EXPECT_EQ(engine.size(), 1u);
  std::atomic<int> ran{0};
  (void)engine.submit([&ran] { ran.fetch_add(1); });
  engine.wait_all();
  EXPECT_EQ(ran.load(), 1);
}

TEST(TaskEngine, DependencyOrdersExecution) {
  TaskEngine engine(4);
  // A chain a -> b -> c and a diamond d -> {e, f} -> g; each task records
  // the value it observed, proving its deps finished first.
  std::atomic<int> x{0};
  const TaskId a = engine.submit([&x] { x.store(1); });
  const TaskId b = engine.submit_after({a}, [&x] {
    if (x.load() == 1) x.store(2);
  });
  int c_saw = -1;
  const TaskId c = engine.submit_after({b}, [&x, &c_saw] { c_saw = x.load(); });

  std::atomic<int> fanin{0};
  const TaskId d = engine.submit([&fanin] { fanin.store(10); });
  const TaskId e = engine.submit_after({d}, [&fanin] { fanin.fetch_add(1); });
  const TaskId f = engine.submit_after({d}, [&fanin] { fanin.fetch_add(2); });
  int g_saw = -1;
  (void)engine.submit_after({e, f, c},
                            [&fanin, &g_saw] { g_saw = fanin.load(); });
  engine.wait_all();
  EXPECT_EQ(c_saw, 2);
  EXPECT_EQ(g_saw, 13);
}

TEST(TaskEngine, AlreadyFinishedDependencyIsSatisfied) {
  TaskEngine engine(2);
  std::atomic<int> x{0};
  const TaskId a = engine.submit([&x] { x.store(7); });
  engine.wait_all();  // `a` has certainly finished
  int saw = -1;
  (void)engine.submit_after({a}, [&x, &saw] { saw = x.load(); });
  engine.wait_all();
  EXPECT_EQ(saw, 7);
}

TEST(TaskEngine, WorkerSubmittedTasksRun) {
  // Tasks submitted from inside a worker go to that worker's own deque and
  // are stealable; recursive fan-out must still run everything.
  TaskEngine engine(3);
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) {
    (void)engine.submit([&engine, &ran] {
      for (int j = 0; j < 25; ++j) {
        (void)engine.submit([&ran] { ran.fetch_add(1); });
      }
    });
  }
  engine.wait_all();
  EXPECT_EQ(ran.load(), 8 * 25);
}

TEST(TaskEngine, CurrentAndWorkerIndexInsideTasks) {
  TaskEngine engine(2);
  EXPECT_EQ(TaskEngine::current(), nullptr);
  EXPECT_EQ(TaskEngine::current_worker_index(), -1);
  std::atomic<bool> saw_engine{false};
  std::atomic<int> bad_index{0};
  for (int i = 0; i < 32; ++i) {
    (void)engine.submit([&engine, &saw_engine, &bad_index] {
      if (TaskEngine::current() == &engine) saw_engine.store(true);
      const int w = TaskEngine::current_worker_index();
      if (w < 0 || w >= static_cast<int>(engine.size())) {
        bad_index.fetch_add(1);
      }
    });
  }
  engine.wait_all();
  EXPECT_TRUE(saw_engine.load());
  EXPECT_EQ(bad_index.load(), 0);
}

TEST(TaskEngine, StealHappensAndDependentsRelease) {
  // Force a steal: a finished task pushes both its dependents onto the
  // finishing worker's own deque; that worker pops one (LIFO) and spins in
  // it until the *other* has run too — which only a thief can do. The test
  // terminating at all proves the steal path works; the profile must agree.
  TaskEngine engine(2);
  engine.set_profiling(true);
  std::atomic<bool> go{false};
  std::atomic<int> rendezvous{0};
  // `a` is held open until both dependents are wired in, so they become
  // ready together as a batch on a's worker's deque — never via injection.
  const TaskId a = engine.submit([&go] {
    while (!go.load()) std::this_thread::yield();
  });
  for (int i = 0; i < 2; ++i) {
    (void)engine.submit_after({a}, [&rendezvous] {
      rendezvous.fetch_add(1);
      while (rendezvous.load() < 2) std::this_thread::yield();
    });
  }
  go.store(true);
  engine.wait_all();
  EXPECT_EQ(rendezvous.load(), 2);
  const SchedProfile prof = engine.profile();
  std::uint64_t steals = 0;
  for (const SchedWorkerProfile& w : prof.workers) steals += w.steals;
  int stolen_tasks = 0;
  for (const SchedTaskProfile& t : prof.tasks) stolen_tasks += t.stolen;
  EXPECT_GE(steals, 1u);
  EXPECT_GE(stolen_tasks, 1);
}

TEST(TaskEngine, EscapedExceptionRethrownFromWaitAll) {
  TaskEngine engine(2);
  std::atomic<int> ran{0};
  (void)engine.submit([] { throw std::runtime_error("task blew up"); });
  for (int i = 0; i < 20; ++i) {
    (void)engine.submit([&ran] { ran.fetch_add(1); });
  }
  EXPECT_THROW(engine.wait_all(), std::runtime_error);
  EXPECT_EQ(ran.load(), 20);  // the error did not kill the workers
  // The engine stays usable and the error does not re-fire.
  (void)engine.submit([&ran] { ran.fetch_add(1); });
  engine.wait_all();
  EXPECT_EQ(ran.load(), 21);
}

TEST(TaskEngine, ExceptionCompletesTaskSoDependentsRelease) {
  TaskEngine engine(2);
  const TaskId a = engine.submit([] { throw std::runtime_error("boom"); });
  std::atomic<bool> dependent_ran{false};
  (void)engine.submit_after({a}, [&dependent_ran] { dependent_ran = true; });
  EXPECT_THROW(engine.wait_all(), std::runtime_error);
  EXPECT_TRUE(dependent_ran.load());
}

TEST(TaskEngine, ProfilingRecordsCoherentTimestamps) {
  TaskEngine engine(2);
  engine.set_profiling(true);
  const TaskId a = engine.submit([] {}, "first");
  (void)engine.submit_after({a}, [] {}, "second");
  engine.wait_all();
  const SchedProfile prof = engine.profile();
  ASSERT_EQ(prof.tasks.size(), 2u);
  for (const SchedTaskProfile& t : prof.tasks) {
    EXPECT_LE(t.submit_ns, t.ready_ns);
    EXPECT_LE(t.ready_ns, t.start_ns);
    EXPECT_LE(t.start_ns, t.finish_ns);
    EXPECT_GE(t.worker, 0);
  }
  EXPECT_STREQ(prof.tasks[0].label, "first");
  EXPECT_STREQ(prof.tasks[1].label, "second");
  // The dependent could not start before its dependency finished.
  EXPECT_GE(prof.tasks[1].ready_ns, prof.tasks[0].finish_ns);
  EXPECT_LE(prof.tasks[1].finish_ns, engine.now_ns());
}

TEST(TaskEngine, ResetClearsTasksAndCounters) {
  TaskEngine engine(2);
  engine.set_profiling(true);
  std::atomic<int> ran{0};
  for (int i = 0; i < 10; ++i) {
    (void)engine.submit([&ran] { ran.fetch_add(1); });
  }
  engine.wait_all();
  EXPECT_EQ(engine.profile().tasks.size(), 10u);
  engine.reset();
  const SchedProfile prof = engine.profile();
  EXPECT_TRUE(prof.tasks.empty());
  for (const SchedWorkerProfile& w : prof.workers) {
    EXPECT_EQ(w.executed, 0u);
    EXPECT_EQ(w.steals, 0u);
  }
  // Ids restart and the engine still runs work.
  const TaskId a = engine.submit([&ran] { ran.fetch_add(1); });
  EXPECT_EQ(a, 0u);
  engine.wait_all();
  EXPECT_EQ(ran.load(), 11);
}

TEST(TaskEngine, ManyWorkersManyTasksEachRunsExactlyOnce) {
  // Oversubscribed stress (8 workers on however few cores CI has): every
  // task appends its id to a per-slot count; stealing must never duplicate
  // or drop work.
  TaskEngine engine(8);
  constexpr std::size_t kTasks = 2000;
  std::vector<std::atomic<int>> count(kTasks);
  for (auto& c : count) c.store(0);
  for (std::size_t i = 0; i < kTasks; ++i) {
    (void)engine.submit([&count, i] { count[i].fetch_add(1); });
  }
  engine.wait_all();
  for (std::size_t i = 0; i < kTasks; ++i) EXPECT_EQ(count[i].load(), 1) << i;
  std::uint64_t executed = 0;
  for (const SchedWorkerProfile& w : engine.profile().workers) {
    executed += w.executed;
  }
  EXPECT_EQ(executed, static_cast<std::uint64_t>(kTasks));
}

TEST(StealDequeTest, OwnerLifoThiefFifo) {
  StealDeque dq(4);  // small capacity so the test exercises growth
  for (TaskId i = 0; i < 100; ++i) dq.push(i);
  TaskId v = 0;
  ASSERT_TRUE(dq.steal(&v));
  EXPECT_EQ(v, 0u);  // thief takes the oldest
  ASSERT_TRUE(dq.pop(&v));
  EXPECT_EQ(v, 99u);  // owner takes the newest
  std::set<TaskId> seen{0, 99};
  while (dq.pop(&v)) EXPECT_TRUE(seen.insert(v).second);
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_FALSE(dq.pop(&v));
  EXPECT_FALSE(dq.steal(&v));
}

}  // namespace
}  // namespace ibpower
