#include "power/policies.hpp"

#include <gtest/gtest.h>

namespace ibpower {
namespace {

using namespace ibpower::literals;

const std::vector<TimeInterval> kGaps = {
    {0_us, 5_us},        // 5us: too short for anything
    {100_us, 150_us},    // 50us
    {200_us, 1200_us},   // 1ms
};

TEST(Policies, OracleGatesOnlyProfitableGaps) {
  const auto out = evaluate_oracle(kGaps, 2_ms, 10_us, 10_us);
  EXPECT_EQ(out.gated_gaps, 2u);
  // (50-20) + (1000-20) us
  EXPECT_EQ(out.low_power_time, 30_us + 980_us);
  EXPECT_EQ(out.wake_penalties, 0u);
  EXPECT_EQ(out.wake_delay_total, TimeNs::zero());
}

TEST(Policies, OracleLowResidency) {
  const auto out = evaluate_oracle(kGaps, 2_ms, 10_us, 10_us);
  EXPECT_NEAR(out.low_residency(), (30.0 + 980.0) / 2000.0, 1e-9);
}

TEST(Policies, OracleExactBoundaryNotGated) {
  // A gap of exactly 2*Treact gains nothing.
  const std::vector<TimeInterval> gaps = {{0_us, 20_us}};
  const auto out = evaluate_oracle(gaps, 1_ms, 10_us, 10_us);
  EXPECT_EQ(out.gated_gaps, 0u);
}

TEST(Policies, IdleTimeoutGatesAfterTimeout) {
  const auto out = evaluate_idle_timeout(kGaps, 2_ms, 10_us, 10_us, 100_us);
  // Only the 1ms gap exceeds timeout + deact: low = 1000 - 100 - 10.
  EXPECT_EQ(out.gated_gaps, 1u);
  EXPECT_EQ(out.low_power_time, 890_us);
  EXPECT_EQ(out.wake_penalties, 1u);
  EXPECT_EQ(out.wake_delay_total, 10_us);
}

TEST(Policies, IdleTimeoutZeroTimeoutStillPaysDeact) {
  const auto out = evaluate_idle_timeout(kGaps, 2_ms, 10_us, 10_us, 0_us);
  EXPECT_EQ(out.gated_gaps, 2u);
  EXPECT_EQ(out.low_power_time, 40_us + 990_us);
  EXPECT_EQ(out.wake_delay_total, 20_us);
}

TEST(Policies, OracleBeatsTimeoutInLowPowerTime) {
  for (const auto timeout : {0_us, 50_us, 100_us}) {
    const auto oracle = evaluate_oracle(kGaps, 2_ms, 10_us, 10_us);
    const auto to = evaluate_idle_timeout(kGaps, 2_ms, 10_us, 10_us, timeout);
    // Oracle never pays wake delays; with timeout 0 the timeout policy can
    // briefly gate more low-power time but pays wake penalties.
    EXPECT_EQ(oracle.wake_delay_total, TimeNs::zero());
    EXPECT_GE(oracle.low_power_time + oracle.wake_delay_total + 20_us * 2,
              to.low_power_time);
  }
}

TEST(Policies, EmptyGaps) {
  const auto oracle = evaluate_oracle({}, 1_ms, 10_us, 10_us);
  EXPECT_EQ(oracle.low_power_time, TimeNs::zero());
  EXPECT_DOUBLE_EQ(oracle.low_residency(), 0.0);
}

// ---- history-based DVS (Shang et al. family) ----

TEST(HistoryDvs, IdleLinkSinksToLowestFrequency) {
  IntervalSet busy;  // never used
  const auto out = evaluate_history_dvs(busy, TimeNs::from_ms(50.0));
  // First window at full speed, everything after at the ladder bottom.
  EXPECT_EQ(out.windows_at_step[0], 1u);
  EXPECT_EQ(out.windows_at_step[3], 49u);
  // Mean power ~ 0.25^2 for 49/50 windows.
  EXPECT_NEAR(out.mean_power_fraction, (1.0 + 49 * 0.0625) / 50.0, 1e-9);
  EXPECT_EQ(out.stretch_total, TimeNs::zero());
}

TEST(HistoryDvs, SaturatedLinkStaysAtFullSpeed) {
  IntervalSet busy;
  busy.add(TimeNs::zero(), TimeNs::from_ms(50.0));
  const auto out = evaluate_history_dvs(busy, TimeNs::from_ms(50.0));
  EXPECT_DOUBLE_EQ(out.mean_power_fraction, 1.0);
  EXPECT_EQ(out.stretch_total, TimeNs::zero());
  EXPECT_EQ(out.windows_at_step[0], 50u);
}

TEST(HistoryDvs, BurstAfterIdleWindowGetsStretched) {
  // Idle first window drops the frequency; the burst in window 2 is
  // stretched by full/f - 1.
  IntervalSet busy;
  busy.add(TimeNs::from_ms(1.2), TimeNs::from_ms(1.7));  // 0.5ms busy
  const auto out = evaluate_history_dvs(busy, TimeNs::from_ms(3.0));
  // Window 0 idle -> window 1 at 0.25: stretch = 0.5ms * 3 = 1.5ms.
  EXPECT_EQ(out.stretch_total, TimeNs::from_ms(1.5));
  EXPECT_LT(out.mean_power_fraction, 1.0);
}

TEST(HistoryDvs, ThresholdLadder) {
  DvsConfig cfg;
  cfg.window = TimeNs::from_ms(1.0);
  IntervalSet busy;
  // Window 0: 50% utilization -> step 1 (0.75) for window 1.
  busy.add(TimeNs::zero(), TimeNs::from_us(500.0));
  // Window 1: 20% utilization -> step 2 (0.5) for window 2.
  busy.add(TimeNs::from_ms(1.0), TimeNs::from_ms(1.2));
  // Window 2: 5% -> step 3 (0.25).
  busy.add(TimeNs::from_ms(2.0), TimeNs::from_ms(2.05));
  const auto out = evaluate_history_dvs(busy, TimeNs::from_ms(4.0), cfg);
  EXPECT_EQ(out.windows_at_step[0], 1u);  // window 0 (no history)
  EXPECT_EQ(out.windows_at_step[1], 1u);  // window 1
  EXPECT_EQ(out.windows_at_step[2], 1u);  // window 2
  EXPECT_EQ(out.windows_at_step[3], 1u);  // window 3
}

TEST(HistoryDvs, PowerExponentMatters) {
  IntervalSet busy;
  DvsConfig linear;
  linear.power_exponent = 1.0;
  DvsConfig cubic;
  cubic.power_exponent = 3.0;
  const auto lin = evaluate_history_dvs(busy, TimeNs::from_ms(20.0), linear);
  const auto cub = evaluate_history_dvs(busy, TimeNs::from_ms(20.0), cubic);
  EXPECT_GT(lin.mean_power_fraction, cub.mean_power_fraction);
}

TEST(HistoryDvs, ConfigValidation) {
  DvsConfig cfg;
  EXPECT_TRUE(cfg.valid());
  cfg.thresholds.pop_back();
  EXPECT_FALSE(cfg.valid());
}

}  // namespace
}  // namespace ibpower
