// Steady-state allocation contract of the arena-backed replay engine
// (DESIGN.md §7, "Memory architecture"): once a ReplayMemory workspace has
// been warmed by a first replay, a repeat replay of the same shape performs
// zero heap allocations across the *full* engine — channel rings, waiting
// lists, request bookkeeping, call timelines, collective state and the
// event queue — not just the DES core. The only allowed allocations are the
// returned ReplayResult's rank_finish and shard_profiles vectors (outputs
// the caller owns).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "sim/experiment.hpp"
#include "sim/replay.hpp"
#include "sim/replay_memory.hpp"

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace ibpower {
namespace {

ExperimentConfig noalloc_config(const std::string& app, int nranks = 8) {
  ExperimentConfig cfg;
  cfg.app = app;
  cfg.workload.nranks = nranks;
  cfg.workload.iterations = 6;
  cfg.workload.seed = 42;
  cfg.ppa.grouping_threshold = default_gt(app, nranks);
  return normalize_config(cfg);
}

ReplayOptions baseline_options(const ExperimentConfig& cfg) {
  ReplayOptions opt;
  opt.fabric = cfg.fabric;
  opt.enable_power_management = false;
  opt.eager_threshold = cfg.eager_threshold;
  opt.record_call_timeline = true;  // timelines are part of the contract
  return opt;
}

TEST(ReplayNoAlloc, SteadyStateBaselineReplayIsAllocationFree) {
  const ExperimentConfig cfg = noalloc_config("alya");
  const Trace trace = generate_experiment_trace(cfg);
  const ReplayOptions opt = baseline_options(cfg);

  ReplayMemory mem;
  // Warm-up 1 establishes the peak footprint; warm-up 2 lets the arena
  // coalesce its overflow blocks into the single steady-state slab.
  ReplayResult warm;
  {
    ReplayEngine engine(&trace, opt, &mem);
    warm = engine.run();
  }
  {
    ReplayEngine engine(&trace, opt, &mem);
    (void)engine.run();
  }

  const std::uint64_t before = g_alloc_count.load();
  ReplayResult rr;
  std::size_t timeline_events = 0;
  {
    ReplayEngine engine(&trace, opt, &mem);
    rr = engine.run();
    for (Rank r = 0; r < trace.nranks(); ++r) {
      timeline_events += engine.call_timeline(r).size();
    }
  }
  const std::uint64_t after = g_alloc_count.load();

  // The only allowed allocations are the rank_finish and shard_profiles
  // vectors in the returned result.
  EXPECT_LE(after - before, 2u)
      << "steady-state replay (channels, timelines, event queue) must not "
         "touch the heap";

  // The measured replay must have exercised the machinery it claims is
  // allocation-free: real channel traffic, parked receives, recorded
  // timelines, and a drained queue.
  EXPECT_GT(rr.drain.messages_enqueued, 0u);
  EXPECT_EQ(rr.drain.messages_enqueued, rr.drain.messages_matched);
  EXPECT_GT(rr.drain.channels_created, 0u);
  EXPECT_GT(timeline_events, 0u);
  EXPECT_GT(rr.events_processed, 100u);
  EXPECT_EQ(rr.exec_time, warm.exec_time);  // reuse is invisible in results
}

TEST(ReplayNoAlloc, SteadyStateHoldsAcrossProtocolMix) {
  // nas_lu's wavefront forwards pencils with nonblocking sends while its
  // halo exchange stays eager — the request maps, pending-sender
  // bookkeeping and rendezvous parking must also be steady-state free.
  const ExperimentConfig cfg = noalloc_config("nas_lu", 9);
  const Trace trace = generate_experiment_trace(cfg);
  ReplayOptions opt = baseline_options(cfg);
  opt.eager_threshold = 1024;  // push the 2 KiB pencils onto rendezvous

  ReplayMemory mem;
  {
    ReplayEngine engine(&trace, opt, &mem);
    (void)engine.run();
  }
  {
    ReplayEngine engine(&trace, opt, &mem);
    (void)engine.run();
  }

  const std::uint64_t before = g_alloc_count.load();
  ReplayResult rr;
  {
    ReplayEngine engine(&trace, opt, &mem);
    rr = engine.run();
  }
  const std::uint64_t after = g_alloc_count.load();
  EXPECT_LE(after - before, 2u);
  EXPECT_GT(rr.drain.sends_rendezvous, 0u);
}

TEST(ReplayNoAlloc, ManagedReplayReachesNearZeroSteadyState) {
  // The managed leg's learning structures (interner, pattern store) key
  // their hash maps on heap-backed gram contents, so the strict-zero
  // contract applies to the replay machinery only; the whole leg must still
  // collapse to a small fraction of its first-run allocation count once the
  // workspace is warm.
  const ExperimentConfig cfg = noalloc_config("alya");
  const Trace trace = generate_experiment_trace(cfg);
  ReplayOptions opt;
  opt.fabric = cfg.fabric;
  opt.enable_power_management = true;
  opt.ppa = cfg.ppa;
  opt.eager_threshold = cfg.eager_threshold;

  ReplayMemory mem;
  const std::uint64_t cold_before = g_alloc_count.load();
  {
    ReplayEngine engine(&trace, opt, &mem);
    (void)engine.run();
  }
  const std::uint64_t cold = g_alloc_count.load() - cold_before;

  {
    ReplayEngine engine(&trace, opt, &mem);
    (void)engine.run();
  }

  const std::uint64_t warm_before = g_alloc_count.load();
  ReplayResult rr;
  {
    ReplayEngine engine(&trace, opt, &mem);
    rr = engine.run();
  }
  const std::uint64_t warm = g_alloc_count.load() - warm_before;

  EXPECT_GT(rr.agent_total.total_calls, 0u);
  EXPECT_LT(warm, cold / 4)
      << "warm managed replay allocated " << warm << " times vs " << cold
      << " cold — reset-and-reuse is not retaining capacity";
}

TEST(ReplayNoAlloc, TrunkPolicySteadyStateIsAllocationFree) {
  // The trunk subsystem (routing engine, sleep controller, per-trunk
  // timers) joins the reset-and-reuse protocol: with power management off,
  // a warmed consolidate + timeout replay touches the heap only for the
  // returned result's vectors.
  // 24 ranks span two leaves, so the replay exercises trunk reservations
  // and on-demand wakes, not just the armed idle timers.
  ExperimentConfig cfg = noalloc_config("alya", 24);
  cfg.fabric.routing.strategy = RoutingStrategy::Consolidate;
  cfg.fabric.trunk.kind = TrunkPolicyKind::Timeout;
  const Trace trace = generate_experiment_trace(cfg);
  const ReplayOptions opt = baseline_options(cfg);

  ReplayMemory mem;
  {
    ReplayEngine engine(&trace, opt, &mem);
    (void)engine.run();
  }
  {
    ReplayEngine engine(&trace, opt, &mem);
    (void)engine.run();
  }

  const std::uint64_t before = g_alloc_count.load();
  ReplayResult rr;
  TimeNs trunk_sleep{};
  {
    ReplayEngine engine(&trace, opt, &mem);
    rr = engine.run();
    const auto& topo = engine.fabric().topology();
    for (LinkId l = topo.num_nodes(); l < topo.num_links(); ++l) {
      trunk_sleep = trunk_sleep +
                    engine.fabric().link(l).residency(LinkPowerMode::LowPower);
    }
  }
  const std::uint64_t after = g_alloc_count.load();
  EXPECT_LE(after - before, 2u)
      << "trunk routing/sleep machinery must not allocate in steady state";
  // The measured run actually slept trunks — the contract covered the new
  // machinery, not a no-op.
  EXPECT_GT(trunk_sleep, TimeNs::zero());
  EXPECT_GT(rr.events_processed, 100u);
}

TEST(ReplayNoAlloc, ShapeChangeReconvergesToAllocationFree) {
  // Switching the XGFT shape forces one re-provisioning replay; after it,
  // the workspace is warm for the new shape and the contract holds again.
  const ExperimentConfig cfg = noalloc_config("alya");
  const Trace trace = generate_experiment_trace(cfg);
  ReplayOptions opt = baseline_options(cfg);

  ReplayMemory mem;
  {
    ReplayEngine engine(&trace, opt, &mem);
    (void)engine.run();
  }

  // New shape: same 8-rank trace fits in a 32-node fabric.
  opt.fabric.xgft = XgftParams{8, 4, 1, 6};
  ReplayResult fresh_shape;
  {
    ReplayEngine engine(&trace, opt);  // private workspace, new shape
    fresh_shape = engine.run();
  }
  {
    ReplayEngine engine(&trace, opt, &mem);  // re-provisions the workspace
    (void)engine.run();
  }
  {
    ReplayEngine engine(&trace, opt, &mem);
    (void)engine.run();
  }

  const std::uint64_t before = g_alloc_count.load();
  ReplayResult rr;
  {
    ReplayEngine engine(&trace, opt, &mem);
    rr = engine.run();
  }
  const std::uint64_t after = g_alloc_count.load();
  EXPECT_LE(after - before, 2u)
      << "shape change must reconverge to the steady-state contract";
  EXPECT_EQ(rr.exec_time, fresh_shape.exec_time);
  EXPECT_EQ(rr.rank_finish, fresh_shape.rank_finish);
}

TEST(ReplayNoAlloc, AlternatingTopologyShapesStayBitIdenticalToFresh) {
  // One workspace cycled through three topology shapes — the paper 2-level
  // tree, a small 2-level tree, and a 3-level tree — with contention on:
  // every leg must match a fresh private-workspace engine exactly, and
  // re-warming any shape reconverges to the allocation-free steady state.
  const ExperimentConfig cfg = noalloc_config("alya");
  const Trace trace = generate_experiment_trace(cfg);
  ReplayOptions opt = baseline_options(cfg);
  opt.fabric.contention = true;

  const XgftParams shapes[3] = {XgftParams{18, 14, 1, 18},
                                XgftParams{8, 4, 1, 6},
                                XgftParams{2, 2, 1, 2, 2, 2}};
  ReplayResult fresh[3];
  for (int s = 0; s < 3; ++s) {
    ReplayOptions o = opt;
    o.fabric.xgft = shapes[s];
    ReplayEngine engine(&trace, o);
    fresh[s] = engine.run();
  }

  ReplayMemory mem;
  for (int round = 0; round < 2; ++round) {
    for (int s = 0; s < 3; ++s) {
      ReplayOptions o = opt;
      o.fabric.xgft = shapes[s];
      ReplayEngine engine(&trace, o, &mem);
      const ReplayResult rr = engine.run();
      EXPECT_EQ(rr.exec_time, fresh[s].exec_time)
          << "round " << round << " shape " << s;
      EXPECT_EQ(rr.rank_finish, fresh[s].rank_finish);
      EXPECT_EQ(rr.events_processed, fresh[s].events_processed);
      EXPECT_TRUE(rr.drain == fresh[s].drain);
      EXPECT_TRUE(engine.audit_drain().empty());
    }
  }

  // Re-warm the final shape, then demand the steady-state contract again.
  for (int warm = 0; warm < 2; ++warm) {
    ReplayOptions o = opt;
    o.fabric.xgft = shapes[2];
    ReplayEngine engine(&trace, o, &mem);
    (void)engine.run();
  }
  const std::uint64_t before = g_alloc_count.load();
  {
    ReplayOptions o = opt;
    o.fabric.xgft = shapes[2];
    ReplayEngine engine(&trace, o, &mem);
    (void)engine.run();
  }
  const std::uint64_t after = g_alloc_count.load();
  EXPECT_LE(after - before, 2u)
      << "shape cycling must reconverge to the steady-state contract";
}

TEST(ReplayNoAlloc, ContentionSteadyStateIsAllocationFree) {
  // The per-hop event chains allocate their HopMsg blocks from the shard
  // arenas; a warmed workspace replays a contended trace with zero heap
  // traffic, like the legacy discipline.
  const ExperimentConfig cfg = noalloc_config("gromacs");
  const Trace trace = generate_experiment_trace(cfg);
  ReplayOptions opt = baseline_options(cfg);
  opt.fabric.contention = true;

  ReplayMemory mem;
  for (int warm = 0; warm < 2; ++warm) {
    ReplayEngine engine(&trace, opt, &mem);
    (void)engine.run();
  }
  const std::uint64_t before = g_alloc_count.load();
  ReplayResult rr;
  {
    ReplayEngine engine(&trace, opt, &mem);
    rr = engine.run();
  }
  const std::uint64_t after = g_alloc_count.load();
  EXPECT_LE(after - before, 2u)
      << "contention-mode steady state must stay allocation-free";
  EXPECT_GT(rr.messages_sent, 0u);
}

TEST(ReplayNoAlloc, ReusedWorkspaceIsBitIdenticalToFreshEngine) {
  const ExperimentConfig cfg = noalloc_config("gromacs");
  const Trace trace = generate_experiment_trace(cfg);
  const ReplayOptions opt = baseline_options(cfg);

  ReplayResult fresh;
  {
    ReplayEngine engine(&trace, opt);  // private workspace
    fresh = engine.run();
  }

  ReplayMemory mem;
  for (int repeat = 0; repeat < 3; ++repeat) {
    ReplayEngine engine(&trace, opt, &mem);
    const ReplayResult reused = engine.run();
    EXPECT_EQ(reused.exec_time, fresh.exec_time) << "repeat " << repeat;
    EXPECT_EQ(reused.rank_finish, fresh.rank_finish) << "repeat " << repeat;
    EXPECT_EQ(reused.events_processed, fresh.events_processed);
    EXPECT_EQ(reused.messages_sent, fresh.messages_sent);
    EXPECT_TRUE(reused.drain == fresh.drain) << "repeat " << repeat;
    EXPECT_TRUE(engine.audit_drain().empty());
  }
}

}  // namespace
}  // namespace ibpower
