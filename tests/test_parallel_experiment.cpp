// Determinism contract: ParallelExperimentRunner must produce results
// bit-identical to the serial run_experiment / sweep_gt paths, at any
// thread count, on every repeat.
#include "sim/parallel.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "obs/exporters.hpp"
#include "obs/instrumented.hpp"

namespace ibpower {
namespace {

ExperimentConfig small_config(const std::string& app, int nranks) {
  ExperimentConfig cfg;
  cfg.app = app;
  cfg.workload.nranks = nranks;
  cfg.workload.iterations = 6;
  cfg.workload.seed = 42;
  cfg.ppa.grouping_threshold = default_gt(app, nranks);
  cfg.ppa.displacement_factor = 0.01;
  return cfg;
}

TEST(ParallelExperiment, RunMatchesSerialAcrossRepeats) {
  const ExperimentConfig cfg = small_config("alya", 8);
  const ExperimentResult serial = run_experiment(cfg);
  EXPECT_TRUE(bit_identical(serial, run_experiment(cfg)));  // serial is stable

  ParallelExperimentRunner runner(4);
  for (int repeat = 0; repeat < 3; ++repeat) {
    const ExperimentResult parallel = runner.run(cfg);
    EXPECT_TRUE(bit_identical(serial, parallel))
        << "repeat " << repeat << " diverged from serial";
  }
}

TEST(ParallelExperiment, RunAllMatchesSerialLoop) {
  // A mixed slice of the paper grid, including the nonblocking-heavy apps.
  std::vector<ExperimentConfig> cfgs;
  cfgs.push_back(small_config("alya", 8));
  cfgs.push_back(small_config("gromacs", 8));
  cfgs.push_back(small_config("wrf", 8));
  cfgs.push_back(small_config("nas_bt", 9));
  cfgs.push_back(small_config("nas_mg", 8));

  std::vector<ExperimentResult> serial;
  serial.reserve(cfgs.size());
  for (const auto& cfg : cfgs) serial.push_back(run_experiment(cfg));

  ParallelExperimentRunner runner(4);
  const std::vector<ExperimentResult> parallel = runner.run_all(cfgs);
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_TRUE(bit_identical(serial[i], parallel[i]))
        << cfgs[i].app << "/" << cfgs[i].workload.nranks;
  }
  ASSERT_EQ(runner.last_cell_work_ms().size(), cfgs.size());
  EXPECT_GT(runner.last_total_work_ms(), 0.0);
}

TEST(ParallelExperiment, SingleJobDegenerateCaseMatches) {
  const ExperimentConfig cfg = small_config("gromacs", 8);
  const ExperimentResult serial = run_experiment(cfg);
  ParallelExperimentRunner runner(1);
  EXPECT_TRUE(bit_identical(serial, runner.run(cfg)));
}

TEST(ParallelExperiment, SweepGtMatchesSerial) {
  const ExperimentConfig cfg = small_config("nas_mg", 8);
  std::vector<TimeNs> values;
  for (const int us : {20, 40, 90, 200, 300}) {
    values.push_back(TimeNs::from_us(static_cast<std::int64_t>(us)));
  }
  const std::vector<GtSweepPoint> serial = sweep_gt(cfg, values);

  ParallelExperimentRunner runner(4);
  for (int repeat = 0; repeat < 3; ++repeat) {
    const std::vector<GtSweepPoint> parallel = runner.sweep_gt(cfg, values);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(parallel[i].gt, serial[i].gt);
      EXPECT_EQ(parallel[i].hit_rate_pct, serial[i].hit_rate_pct);
    }
  }
}

TEST(ParallelExperiment, SharedTraceGridBitIdenticalJobs1Vs8) {
  // The shared-trace path: cells with identical (app, workload) but
  // different GT values replay one generated Trace. Results must be
  // bit-identical between --jobs 1 and --jobs 8, and identical to the
  // serial loop that regenerates the trace per cell.
  std::vector<ExperimentConfig> cfgs;
  for (const int gt_us : {20, 60, 150, 400}) {
    ExperimentConfig cfg = small_config("alya", 8);
    cfg.ppa.grouping_threshold =
        TimeNs::from_us(static_cast<std::int64_t>(gt_us));
    cfgs.push_back(cfg);
  }
  cfgs.push_back(small_config("nas_mg", 8));  // a second trace slot
  cfgs.push_back(small_config("alya", 8));    // shares slot 0's trace

  std::vector<ExperimentResult> serial;
  serial.reserve(cfgs.size());
  for (const auto& cfg : cfgs) serial.push_back(run_experiment(cfg));

  ParallelExperimentRunner one(1);
  ParallelExperimentRunner eight(8);
  const std::vector<ExperimentResult> r1 = one.run_all(cfgs);
  const std::vector<ExperimentResult> r8 = eight.run_all(cfgs);
  ASSERT_EQ(r1.size(), cfgs.size());
  ASSERT_EQ(r8.size(), cfgs.size());
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    EXPECT_TRUE(bit_identical(serial[i], r1[i])) << "cell " << i << " jobs=1";
    EXPECT_TRUE(bit_identical(r1[i], r8[i])) << "cell " << i << " jobs=8";
  }

  // Generation cost is charged once per distinct trace; sharers report 0.
  ASSERT_EQ(one.last_cell_gen_ms().size(), cfgs.size());
  EXPECT_GT(one.last_cell_gen_ms()[0], 0.0);
  EXPECT_GT(one.last_cell_gen_ms()[4], 0.0);
  EXPECT_EQ(one.last_cell_gen_ms()[1], 0.0);
  EXPECT_EQ(one.last_cell_gen_ms()[5], 0.0);
}

TEST(ParallelExperiment, CostAccountingSeparatesGenFromLegWork) {
  const ExperimentConfig cfg = small_config("alya", 8);
  ParallelExperimentRunner runner(2);
  (void)runner.run(cfg);
  ASSERT_EQ(runner.last_cell_work_ms().size(), 1u);
  ASSERT_EQ(runner.last_cell_gen_ms().size(), 1u);
  ASSERT_EQ(runner.last_cell_base_ms().size(), 1u);
  ASSERT_EQ(runner.last_cell_managed_ms().size(), 1u);
  // Leg work excludes generation, and the breakdown sums to the total.
  EXPECT_GT(runner.last_total_gen_ms(), 0.0);
  EXPECT_DOUBLE_EQ(
      runner.last_cell_work_ms()[0],
      runner.last_cell_base_ms()[0] + runner.last_cell_managed_ms()[0]);
}

TEST(ParallelExperiment, UnsupportedRankCountPropagatesAsException) {
  ExperimentConfig cfg = small_config("nas_bt", 9);
  cfg.workload.nranks = 10;  // not a square — nas_bt rejects it
  ParallelExperimentRunner runner(2);
  EXPECT_THROW((void)runner.run(cfg), std::invalid_argument);
  EXPECT_THROW((void)runner.run_all({cfg}), std::invalid_argument);
}

/// Render a cell list through every telemetry sink into one byte string.
std::string telemetry_bytes(const std::vector<ExperimentConfig>& cfgs,
                            const std::vector<obs::InstrumentedResult>& inst) {
  std::vector<obs::CellMetrics> cells;
  cells.reserve(inst.size());
  for (std::size_t i = 0; i < inst.size(); ++i) {
    cells.push_back(obs::make_cell_metrics(cfgs[i], inst[i]));
  }
  std::ostringstream os;
  obs::write_metrics_json(os, cells);
  for (const obs::CellMetrics& cell : cells) {
    obs::write_link_series_csv(os, cell.managed);
    obs::write_power_prv(os, cell.managed, cell.app);
  }
  return os.str();
}

TEST(ParallelExperiment, TelemetryBytesIdenticalAcrossJobCounts) {
  // Satellite determinism contract: JSON, CSV and .prv exports must be
  // byte-identical between --jobs 1 and --jobs 8 (per-cell probe slots,
  // gathered in submission order).
  std::vector<ExperimentConfig> cfgs;
  cfgs.push_back(small_config("alya", 8));
  cfgs.push_back(small_config("gromacs", 8));
  cfgs.push_back(small_config("nas_mg", 8));
  cfgs.push_back(small_config("wrf", 8));

  ParallelExperimentRunner serial_runner(1);
  const std::vector<obs::InstrumentedResult> serial =
      obs::run_instrumented_grid(serial_runner, cfgs);
  const std::string serial_bytes = telemetry_bytes(cfgs, serial);
  EXPECT_FALSE(serial_bytes.empty());

  ParallelExperimentRunner parallel_runner(8);
  for (int repeat = 0; repeat < 2; ++repeat) {
    const std::vector<obs::InstrumentedResult> parallel =
        obs::run_instrumented_grid(parallel_runner, cfgs);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_TRUE(bit_identical(serial[i].result, parallel[i].result))
          << cfgs[i].app;
      EXPECT_EQ(serial[i].baseline, parallel[i].baseline) << cfgs[i].app;
      EXPECT_EQ(serial[i].managed, parallel[i].managed) << cfgs[i].app;
    }
    EXPECT_EQ(telemetry_bytes(cfgs, parallel), serial_bytes)
        << "repeat " << repeat;
  }
}

TEST(ParallelExperiment, InstrumentedRunMatchesUninstrumented) {
  // The probe hook must be observation-only: the instrumented grid's
  // results stay bit-identical to the probe-free paths.
  const ExperimentConfig cfg = small_config("alya", 8);
  const ExperimentResult plain = run_experiment(cfg);
  ParallelExperimentRunner runner(4);
  const std::vector<obs::InstrumentedResult> inst =
      obs::run_instrumented_grid(runner, {cfg});
  ASSERT_EQ(inst.size(), 1u);
  EXPECT_TRUE(bit_identical(plain, inst[0].result));
  const obs::InstrumentedResult serial = obs::run_instrumented_experiment(cfg);
  EXPECT_TRUE(bit_identical(plain, serial.result));
  EXPECT_EQ(serial.baseline, inst[0].baseline);
  EXPECT_EQ(serial.managed, inst[0].managed);
}

TEST(ParallelExperiment, RunAllRejectsMismatchedProbeCount) {
  ParallelExperimentRunner runner(2);
  const std::vector<ExperimentConfig> cfgs{small_config("alya", 8)};
  const std::vector<LegProbes> probes(2);
  EXPECT_THROW((void)runner.run_all(cfgs, probes), std::invalid_argument);
}

TEST(ParallelExperiment, SimEventsPopulated) {
  const ExperimentResult r = run_experiment(small_config("alya", 8));
  EXPECT_GT(r.sim_events, 0u);
  EXPECT_GT(r.mpi_calls, 0u);
}

// --- trace_cache_key: what shares a trace and what must not ------------

TEST(TraceCacheKey, PredictorAndPolicyOnlyDiffsShareATrace) {
  // Knobs that only affect the *replay* (predictor, GT, displacement,
  // trunk policy, routing) must map to the same key — and therefore to a
  // single generation task, observable as gen_ms == 0 for the sharer.
  ExperimentConfig a = small_config("alya", 8);
  ExperimentConfig b = a;
  b.ppa.predictor.kind = PredictorKind::Histogram;
  b.ppa.grouping_threshold = TimeNs::from_us(400.0);
  b.ppa.displacement_factor = 0.10;
  b.fabric.trunk.kind = TrunkPolicyKind::Timeout;
  b.fabric.routing.strategy = RoutingStrategy::Consolidate;
  EXPECT_EQ(trace_cache_key(a), trace_cache_key(b));

  ParallelExperimentRunner runner(2);
  (void)runner.run_all({a, b});
  ASSERT_EQ(runner.last_cell_gen_ms().size(), 2u);
  EXPECT_GT(runner.last_cell_gen_ms()[0], 0.0);
  EXPECT_EQ(runner.last_cell_gen_ms()[1], 0.0) << "trace was regenerated";
}

TEST(TraceCacheKey, TraceAffectingParamDiffsGetDistinctKeys) {
  const ExperimentConfig base = small_config("alya", 8);
  const std::string k0 = trace_cache_key(base);

  ExperimentConfig m = base;
  m.app = "gromacs";
  EXPECT_NE(trace_cache_key(m), k0);

  m = base;
  m.workload.nranks = 16;
  EXPECT_NE(trace_cache_key(m), k0);

  m = base;
  m.workload.iterations += 1;
  EXPECT_NE(trace_cache_key(m), k0);

  m = base;
  m.workload.seed += 1;
  EXPECT_NE(trace_cache_key(m), k0);

  m = base;
  m.workload.weak_scaling = !m.workload.weak_scaling;
  EXPECT_NE(trace_cache_key(m), k0);

  // Scale is keyed by exact bit pattern: even an ULP nudge is a new trace.
  m = base;
  m.workload.scale = std::nextafter(m.workload.scale, 2.0);
  EXPECT_NE(trace_cache_key(m), k0);
}

TEST(TraceCacheKey, DistinctKeysActuallyRegenerate) {
  ExperimentConfig a = small_config("alya", 8);
  ExperimentConfig b = a;
  b.workload.seed += 1;  // trace-affecting → must NOT share
  ParallelExperimentRunner runner(2);
  (void)runner.run_all({a, b});
  ASSERT_EQ(runner.last_cell_gen_ms().size(), 2u);
  EXPECT_GT(runner.last_cell_gen_ms()[0], 0.0);
  EXPECT_GT(runner.last_cell_gen_ms()[1], 0.0)
      << "seed diff wrongly shared a trace";
}

}  // namespace
}  // namespace ibpower
