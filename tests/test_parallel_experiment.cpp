// Determinism contract: ParallelExperimentRunner must produce results
// bit-identical to the serial run_experiment / sweep_gt paths, at any
// thread count, on every repeat.
#include "sim/parallel.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace ibpower {
namespace {

ExperimentConfig small_config(const std::string& app, int nranks) {
  ExperimentConfig cfg;
  cfg.app = app;
  cfg.workload.nranks = nranks;
  cfg.workload.iterations = 6;
  cfg.workload.seed = 42;
  cfg.ppa.grouping_threshold = default_gt(app, nranks);
  cfg.ppa.displacement_factor = 0.01;
  return cfg;
}

TEST(ParallelExperiment, RunMatchesSerialAcrossRepeats) {
  const ExperimentConfig cfg = small_config("alya", 8);
  const ExperimentResult serial = run_experiment(cfg);
  EXPECT_TRUE(bit_identical(serial, run_experiment(cfg)));  // serial is stable

  ParallelExperimentRunner runner(4);
  for (int repeat = 0; repeat < 3; ++repeat) {
    const ExperimentResult parallel = runner.run(cfg);
    EXPECT_TRUE(bit_identical(serial, parallel))
        << "repeat " << repeat << " diverged from serial";
  }
}

TEST(ParallelExperiment, RunAllMatchesSerialLoop) {
  // A mixed slice of the paper grid, including the nonblocking-heavy apps.
  std::vector<ExperimentConfig> cfgs;
  cfgs.push_back(small_config("alya", 8));
  cfgs.push_back(small_config("gromacs", 8));
  cfgs.push_back(small_config("wrf", 8));
  cfgs.push_back(small_config("nas_bt", 9));
  cfgs.push_back(small_config("nas_mg", 8));

  std::vector<ExperimentResult> serial;
  serial.reserve(cfgs.size());
  for (const auto& cfg : cfgs) serial.push_back(run_experiment(cfg));

  ParallelExperimentRunner runner(4);
  const std::vector<ExperimentResult> parallel = runner.run_all(cfgs);
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_TRUE(bit_identical(serial[i], parallel[i]))
        << cfgs[i].app << "/" << cfgs[i].workload.nranks;
  }
  ASSERT_EQ(runner.last_cell_work_ms().size(), cfgs.size());
  EXPECT_GT(runner.last_total_work_ms(), 0.0);
}

TEST(ParallelExperiment, SingleJobDegenerateCaseMatches) {
  const ExperimentConfig cfg = small_config("gromacs", 8);
  const ExperimentResult serial = run_experiment(cfg);
  ParallelExperimentRunner runner(1);
  EXPECT_TRUE(bit_identical(serial, runner.run(cfg)));
}

TEST(ParallelExperiment, SweepGtMatchesSerial) {
  const ExperimentConfig cfg = small_config("nas_mg", 8);
  std::vector<TimeNs> values;
  for (const int us : {20, 40, 90, 200, 300}) {
    values.push_back(TimeNs::from_us(static_cast<std::int64_t>(us)));
  }
  const std::vector<GtSweepPoint> serial = sweep_gt(cfg, values);

  ParallelExperimentRunner runner(4);
  for (int repeat = 0; repeat < 3; ++repeat) {
    const std::vector<GtSweepPoint> parallel = runner.sweep_gt(cfg, values);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(parallel[i].gt, serial[i].gt);
      EXPECT_EQ(parallel[i].hit_rate_pct, serial[i].hit_rate_pct);
    }
  }
}

TEST(ParallelExperiment, UnsupportedRankCountPropagatesAsException) {
  ExperimentConfig cfg = small_config("nas_bt", 9);
  cfg.workload.nranks = 10;  // not a square — nas_bt rejects it
  ParallelExperimentRunner runner(2);
  EXPECT_THROW((void)runner.run(cfg), std::invalid_argument);
  EXPECT_THROW((void)runner.run_all({cfg}), std::invalid_argument);
}

TEST(ParallelExperiment, SimEventsPopulated) {
  const ExperimentResult r = run_experiment(small_config("alya", 8));
  EXPECT_GT(r.sim_events, 0u);
  EXPECT_GT(r.mpi_calls, 0u);
}

}  // namespace
}  // namespace ibpower
