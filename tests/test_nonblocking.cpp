// Nonblocking point-to-point (Isend/Irecv/Wait/Waitall) semantics in the
// trace model and the replay engine.
#include <gtest/gtest.h>

#include <sstream>

#include "sim/replay.hpp"
#include "trace/trace_io.hpp"

namespace ibpower {
namespace {

using namespace ibpower::literals;

ReplayOptions opts() {
  ReplayOptions o;
  o.fabric.routing.strategy = RoutingStrategy::Dmodk;
  return o;
}

TEST(Nonblocking, ValidateAcceptsMatchedIsendIrecv) {
  Trace t("demo", 2);
  t.push(0, IsendRecord{1, 2048, 0, 1});
  t.push(0, WaitRecord{1});
  t.push(1, IrecvRecord{0, 2048, 0, 7});
  t.push(1, WaitRecord{7});
  EXPECT_EQ(t.validate(), "");
}

TEST(Nonblocking, ValidateCatchesUnretiredRequest) {
  Trace t("demo", 2);
  t.push(0, IsendRecord{1, 2048, 0, 1});
  t.push(1, RecvRecord{0, 2048, 0});
  EXPECT_NE(t.validate(), "");  // request 1 never waited on
}

TEST(Nonblocking, ValidateCatchesRequestReuse) {
  Trace t("demo", 2);
  t.push(0, IsendRecord{1, 2048, 0, 1});
  t.push(0, IsendRecord{1, 2048, 1, 1});  // same id while outstanding
  t.push(0, WaitallRecord{});
  t.push(1, RecvRecord{0, 2048, 0});
  t.push(1, RecvRecord{0, 2048, 1});
  EXPECT_NE(t.validate(), "");
}

TEST(Nonblocking, ValidateCatchesWaitOnUnknownRequest) {
  Trace t("demo", 2);
  t.push(0, WaitRecord{5});
  t.push(1, ComputeRecord{1_us});
  EXPECT_NE(t.validate(), "");
}

TEST(Nonblocking, WaitallRetiresEverything) {
  Trace t("demo", 2);
  t.push(0, IsendRecord{1, 128, 0, 1});
  t.push(0, IsendRecord{1, 128, 1, 2});
  t.push(0, WaitallRecord{});
  t.push(1, RecvRecord{0, 128, 0});
  t.push(1, RecvRecord{0, 128, 1});
  EXPECT_EQ(t.validate(), "");
}

TEST(Nonblocking, TraceIoRoundTrip) {
  Trace t("demo", 2);
  t.push(0, IsendRecord{1, 4096, 3, 11});
  t.push(0, ComputeRecord{10_us});
  t.push(0, WaitRecord{11});
  t.push(1, IrecvRecord{0, 4096, 3, 4});
  t.push(1, WaitallRecord{});
  std::stringstream ss;
  write_trace(ss, t);
  const Trace loaded = read_trace(ss);
  ASSERT_EQ(loaded.stream(0).size(), 3u);
  EXPECT_EQ(loaded.stream(0)[0], t.stream(0)[0]);
  EXPECT_EQ(loaded.stream(0)[2], t.stream(0)[2]);
  EXPECT_EQ(loaded.stream(1)[0], t.stream(1)[0]);
  EXPECT_EQ(loaded.stream(1)[1], t.stream(1)[1]);
}

TEST(Nonblocking, IsendOverlapsWithCompute) {
  // Nonblocking: the sender computes while the (rendezvous) transfer waits
  // for the receiver; a blocking send would serialize.
  const Bytes big = 1 << 20;
  Trace t("demo", 2);
  t.push(0, IsendRecord{1, big, 0, 1});
  t.push(0, ComputeRecord{500_us});
  t.push(0, WaitRecord{1});
  t.push(1, ComputeRecord{400_us});
  t.push(1, RecvRecord{0, big, 0});
  ASSERT_EQ(t.validate(), "");
  ReplayEngine engine(&t, opts());
  const auto rr = engine.run();
  // Transfer starts at 400us (recv posted); sender's wait completes at
  // ~400us + injection, overlapped with its 500us compute.
  EXPECT_LT(rr.rank_finish[0], 700_us);
  EXPECT_GT(rr.rank_finish[1], 600_us);  // receiver waits for delivery
}

TEST(Nonblocking, BlockingSendWouldSerializeSameTrace) {
  const Bytes big = 1 << 20;
  Trace t("demo", 2);
  t.push(0, SendRecord{1, big, 0});
  t.push(0, ComputeRecord{500_us});
  t.push(1, ComputeRecord{400_us});
  t.push(1, RecvRecord{0, big, 0});
  ReplayEngine engine(&t, opts());
  const auto rr = engine.run();
  // Blocking rendezvous: the sender waits until 400us before computing.
  EXPECT_GT(rr.rank_finish[0], 900_us);
}

TEST(Nonblocking, IrecvPrepostedCompletesOnArrival) {
  Trace t("demo", 2);
  t.push(1, IrecvRecord{0, 2048, 0, 9});
  t.push(1, ComputeRecord{300_us});
  t.push(1, WaitRecord{9});
  t.push(0, ComputeRecord{100_us});
  t.push(0, SendRecord{1, 2048, 0});
  ASSERT_EQ(t.validate(), "");
  ReplayEngine engine(&t, opts());
  const auto rr = engine.run();
  // Arrival (~101us) is hidden behind the 300us compute.
  EXPECT_LT(rr.rank_finish[1], 302_us);
}

TEST(Nonblocking, WaitBlocksUntilArrival) {
  Trace t("demo", 2);
  t.push(1, IrecvRecord{0, 2048, 0, 9});
  t.push(1, WaitRecord{9});
  t.push(0, ComputeRecord{250_us});
  t.push(0, SendRecord{1, 2048, 0});
  ReplayEngine engine(&t, opts());
  const auto rr = engine.run();
  EXPECT_GT(rr.rank_finish[1], 250_us);
}

TEST(Nonblocking, WaitallGathersMultipleArrivals) {
  Trace t("demo", 3);
  t.push(0, IrecvRecord{1, 2048, 0, 1});
  t.push(0, IrecvRecord{2, 2048, 0, 2});
  t.push(0, WaitallRecord{});
  t.push(1, ComputeRecord{100_us});
  t.push(1, SendRecord{0, 2048, 0});
  t.push(2, ComputeRecord{400_us});
  t.push(2, SendRecord{0, 2048, 0});
  ASSERT_EQ(t.validate(), "");
  ReplayEngine engine(&t, opts());
  const auto rr = engine.run();
  EXPECT_GT(rr.rank_finish[0], 400_us);  // governed by the slowest arrival
  EXPECT_LT(rr.rank_finish[0], 410_us);
}

TEST(Nonblocking, RendezvousIsendMatchedByIrecv) {
  const Bytes big = 1 << 20;
  Trace t("demo", 2);
  t.push(0, IsendRecord{1, big, 0, 1});
  t.push(0, WaitRecord{1});
  t.push(1, ComputeRecord{200_us});
  t.push(1, IrecvRecord{0, big, 0, 2});
  t.push(1, WaitRecord{2});
  ASSERT_EQ(t.validate(), "");
  ReplayEngine engine(&t, opts());
  const auto rr = engine.run();
  // Transfer starts at 200us; ser ~210us.
  EXPECT_GT(rr.rank_finish[1], 400_us);
  EXPECT_LT(rr.rank_finish[0], rr.rank_finish[1]);  // sender frees earlier
}

TEST(Nonblocking, HaloExchangePatternWithWaitall) {
  // The canonical irecv/isend/waitall halo: all four ranks overlap.
  Trace t("demo", 4);
  for (Rank r = 0; r < 4; ++r) {
    const Rank next = (r + 1) % 4;
    const Rank prev = (r + 3) % 4;
    t.push(r, IrecvRecord{prev, 8192, 0, 1});
    t.push(r, IsendRecord{next, 8192, 0, 2});
    t.push(r, ComputeRecord{100_us});
    t.push(r, WaitallRecord{});
    t.push(r, ComputeRecord{50_us});
  }
  ASSERT_EQ(t.validate(), "");
  ReplayEngine engine(&t, opts());
  const auto rr = engine.run();
  for (Rank r = 0; r < 4; ++r) {
    // Communication fully overlapped: ~150us + epsilon each.
    const auto idx = static_cast<std::size_t>(r);
    EXPECT_LT(rr.rank_finish[idx], 160_us) << r;
    EXPECT_GT(rr.rank_finish[idx], 150_us - 1_us) << r;
  }
}

TEST(Nonblocking, AgentSeesNonblockingCallIds) {
  Trace t("demo", 2);
  for (int it = 0; it < 20; ++it) {
    for (Rank r = 0; r < 2; ++r) {
      const Rank peer = 1 - r;
      t.push(r, ComputeRecord{300_us});
      t.push(r, IrecvRecord{peer, 4096, it, 1});
      t.push(r, IsendRecord{peer, 4096, it, 2});
      t.push(r, WaitallRecord{});
    }
  }
  ASSERT_EQ(t.validate(), "");
  ReplayOptions o = opts();
  o.enable_power_management = true;
  o.ppa.grouping_threshold = 20_us;
  ReplayEngine engine(&t, o);
  const auto rr = engine.run();
  // The [Irecv, Isend, Waitall] gram repeats: pattern detected and gated.
  EXPECT_GE(rr.agent_total.arms, 2u);
  EXPECT_GT(rr.agent_total.power_requests, 0u);
  EXPECT_GT(
      engine.fabric().node_link(0).residency(LinkPowerMode::LowPower),
      1_ms);
}

TEST(Nonblocking, DeadlockDetectedOnMissingSender) {
  Trace t("demo", 2);
  t.push(0, IrecvRecord{1, 2048, 0, 1});
  t.push(0, WaitRecord{1});
  t.push(1, ComputeRecord{1_us});
  ReplayEngine engine(&t, opts());
  EXPECT_THROW(engine.run(), std::runtime_error);
}

}  // namespace
}  // namespace ibpower
