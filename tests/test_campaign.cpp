// CampaignSession + JSONL wire format: request parsing (including the
// loud-rejection contract for unknown keys), in-order row delivery with
// interleaved error rows, refcounted trace sharing, and the determinism
// pin — formatted rows byte-identical at any worker count.
#include "sim/campaign.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/experiment.hpp"

namespace ibpower {
namespace {

ExperimentConfig small_config(const std::string& app, int nranks) {
  ExperimentConfig cfg;
  cfg.app = app;
  cfg.workload.nranks = nranks;
  cfg.workload.iterations = 6;
  cfg.workload.seed = 42;
  cfg.ppa.grouping_threshold = default_gt(app, nranks);
  cfg.ppa.displacement_factor = 0.01;
  return cfg;
}

TEST(CampaignParse, FullRequest) {
  CampaignRequest req;
  std::string err;
  ASSERT_TRUE(parse_campaign_request(
      R"({"id":"r1","app":"gromacs","nranks":16,"iterations":30,"seed":7,)"
      R"("scale":1.5,"weak_scaling":true,"gt_us":40,"disp":2,)"
      R"("treact_us":5,"predictor":"histogram","guard_us":12,)"
      R"("routing":"consolidate","trunk_policy":"timeout",)"
      R"("trunk_timeout_us":80,"spill_us":60,"contention":true,)"
      R"("xgft":"8,8,1,4","split_energy":true,"shards":4})",
      1, &req, &err))
      << err;
  EXPECT_EQ(req.id, "r1");
  EXPECT_EQ(req.cfg.app, "gromacs");
  EXPECT_EQ(req.cfg.workload.nranks, 16);
  EXPECT_EQ(req.cfg.workload.iterations, 30);
  EXPECT_EQ(req.cfg.workload.seed, 7u);
  EXPECT_DOUBLE_EQ(req.cfg.workload.scale, 1.5);
  EXPECT_TRUE(req.cfg.workload.weak_scaling);
  EXPECT_EQ(req.cfg.ppa.grouping_threshold, TimeNs::from_us(40.0));
  EXPECT_DOUBLE_EQ(req.cfg.ppa.displacement_factor, 0.02);
  EXPECT_EQ(req.cfg.ppa.t_react, TimeNs::from_us(5.0));
  EXPECT_EQ(req.cfg.ppa.predictor.kind, PredictorKind::Histogram);
  EXPECT_EQ(req.cfg.ppa.predictor.guard_threshold, TimeNs::from_us(12.0));
  EXPECT_EQ(req.cfg.fabric.routing.strategy, RoutingStrategy::Consolidate);
  EXPECT_EQ(req.cfg.fabric.trunk.kind, TrunkPolicyKind::Timeout);
  EXPECT_EQ(req.cfg.fabric.trunk.idle_timeout, TimeNs::from_us(80.0));
  EXPECT_EQ(req.cfg.fabric.routing.spill_threshold, TimeNs::from_us(60.0));
  EXPECT_TRUE(req.cfg.fabric.contention);
  EXPECT_EQ(req.cfg.fabric.xgft.m1, 8);
  EXPECT_EQ(req.cfg.fabric.xgft.w2, 4);
  EXPECT_TRUE(req.cfg.power.split_energy);
  EXPECT_EQ(req.cfg.shards, 4);
}

TEST(CampaignParse, DefaultsIdAndGroupingThreshold) {
  CampaignRequest req;
  std::string err;
  ASSERT_TRUE(parse_campaign_request(R"({"app":"alya","nranks":8})", 7, &req,
                                     &err))
      << err;
  EXPECT_EQ(req.id, "req-7");
  EXPECT_EQ(req.cfg.ppa.grouping_threshold, default_gt("alya", 8));

  // An explicit GT below the feasibility floor is clamped to 2*Treact,
  // exactly like the CLI's --gt.
  ASSERT_TRUE(parse_campaign_request(
      R"({"app":"alya","nranks":8,"gt_us":1,"treact_us":10})", 8, &req, &err))
      << err;
  EXPECT_EQ(req.cfg.ppa.grouping_threshold, TimeNs::from_us(20.0));
}

TEST(CampaignParse, RejectsBadInput) {
  CampaignRequest req;
  std::string err;
  EXPECT_FALSE(parse_campaign_request(R"({"app":"alya","typo_knob":3})", 1,
                                      &req, &err));
  EXPECT_NE(err.find("typo_knob"), std::string::npos);
  EXPECT_FALSE(parse_campaign_request("not json", 1, &req, &err));
  EXPECT_FALSE(parse_campaign_request(R"({"app":"alya"} trailing)", 1, &req,
                                      &err));
  EXPECT_FALSE(parse_campaign_request(R"({"predictor":"nope"})", 1, &req,
                                      &err));
  EXPECT_FALSE(parse_campaign_request(R"({"xgft":"1,2,3"})", 1, &req, &err));
  EXPECT_FALSE(parse_campaign_request(R"({"app":123})", 1, &req, &err));
}

TEST(CampaignFormat, ErrorRowAndEscaping) {
  CampaignRow row;
  row.id = "we\"ird\n";
  row.ok = false;
  row.error = "bad \"app\"";
  EXPECT_EQ(format_campaign_row(row),
            "{\"v\":\"ibpower-campaign:v1\",\"id\":\"we\\\"ird\\n\","
            "\"ok\":false,\"error\":\"bad \\\"app\\\"\"}");
}

TEST(CampaignSessionTest, RowMatchesSerialExperiment) {
  const ExperimentConfig cfg = small_config("alya", 8);
  const ExperimentResult serial = run_experiment(cfg);

  ParallelExperimentRunner runner(2, /*clamp_to_hardware=*/false);
  CampaignSession session(runner);
  session.submit(CampaignRequest{"only", cfg});
  CampaignRow row;
  ASSERT_TRUE(session.pop(&row));
  EXPECT_EQ(row.id, "only");
  ASSERT_TRUE(row.ok) << row.error;
  EXPECT_TRUE(bit_identical(serial, row.result));
  EXPECT_FALSE(session.pop(&row));  // stream exhausted
}

TEST(CampaignSessionTest, RowsArriveInSubmissionOrderWithErrors) {
  ParallelExperimentRunner runner(4, /*clamp_to_hardware=*/false);
  CampaignSession session(runner);
  session.submit(CampaignRequest{"a", small_config("gromacs", 8)});
  session.submit_error("b", "malformed line");
  ExperimentConfig bad = small_config("alya", 8);
  bad.app = "nosuchapp";
  session.submit(CampaignRequest{"c", bad});
  session.submit(CampaignRequest{"d", small_config("alya", 8)});

  CampaignRow row;
  ASSERT_TRUE(session.pop(&row));
  EXPECT_EQ(row.id, "a");
  EXPECT_TRUE(row.ok) << row.error;
  ASSERT_TRUE(session.pop(&row));
  EXPECT_EQ(row.id, "b");
  EXPECT_FALSE(row.ok);
  EXPECT_EQ(row.error, "malformed line");
  ASSERT_TRUE(session.pop(&row));
  EXPECT_EQ(row.id, "c");
  EXPECT_FALSE(row.ok);  // sim-time failure becomes an in-order error row
  ASSERT_TRUE(session.pop(&row));
  EXPECT_EQ(row.id, "d");
  EXPECT_TRUE(row.ok) << row.error;
  EXPECT_FALSE(session.pop(&row));
}

TEST(CampaignSessionTest, SharedTraceIsBuiltOnceAndEvicted) {
  ParallelExperimentRunner runner(2, /*clamp_to_hardware=*/false);
  CampaignSession session(runner);
  ExperimentConfig a = small_config("alya", 8);
  ExperimentConfig b = a;
  b.ppa.grouping_threshold = TimeNs::from_us(200.0);  // replay-only diff
  session.submit(CampaignRequest{"a", a});
  session.submit(CampaignRequest{"b", b});
  CampaignRow ra, rb;
  ASSERT_TRUE(session.pop(&ra));
  ASSERT_TRUE(session.pop(&rb));
  ASSERT_TRUE(ra.ok && rb.ok) << ra.error << rb.error;
  const CampaignCacheStats stats = session.cache_stats();
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.trace_builds, 1u);
  EXPECT_EQ(stats.trace_hits, 1u);
  EXPECT_EQ(stats.evictions, 1u);  // refcount hit zero after both finalized
  EXPECT_EQ(stats.max_live_traces, 1u);
  EXPECT_TRUE(rb.trace_shared);

  // Same workload again after eviction: the trace is rebuilt (the cache
  // holds only in-flight entries) and the row still matches byte-for-byte.
  session.submit(CampaignRequest{"a2", a});
  CampaignRow ra2;
  ASSERT_TRUE(session.pop(&ra2));
  ASSERT_TRUE(ra2.ok) << ra2.error;
  EXPECT_EQ(session.cache_stats().trace_builds, 2u);
  EXPECT_TRUE(bit_identical(ra.result, ra2.result));
}

TEST(CampaignSessionTest, FormattedRowsByteIdenticalAcrossJobCounts) {
  // The acceptance pin: the same request stream produces byte-identical
  // JSONL rows at any worker count, stolen tasks and shared traces
  // included. Shards exercise the elastic path inside engine workers.
  std::vector<CampaignRequest> reqs;
  reqs.push_back({"r0", small_config("alya", 8)});
  reqs.push_back({"r1", small_config("gromacs", 8)});
  ExperimentConfig shared = small_config("alya", 8);
  shared.ppa.displacement_factor = 0.05;  // replay-only diff → shares r0's
  reqs.push_back({"r2", shared});
  ExperimentConfig sharded = small_config("nas_mg", 8);
  sharded.shards = 4;
  reqs.push_back({"r3", sharded});

  auto rows_at = [&reqs](unsigned jobs) {
    ParallelExperimentRunner runner(jobs, /*clamp_to_hardware=*/false);
    CampaignSession session(runner);
    for (const CampaignRequest& r : reqs) session.submit(r);
    std::vector<std::string> rows;
    CampaignRow row;
    while (session.pop(&row)) rows.push_back(format_campaign_row(row));
    return rows;
  };

  const std::vector<std::string> at1 = rows_at(1);
  ASSERT_EQ(at1.size(), reqs.size());
  for (const unsigned jobs : {2u, 8u}) {
    const std::vector<std::string> at = rows_at(jobs);
    ASSERT_EQ(at.size(), at1.size());
    for (std::size_t i = 0; i < at1.size(); ++i) {
      EXPECT_EQ(at[i], at1[i]) << "row " << i << " diverged at jobs=" << jobs;
    }
  }
}

TEST(CampaignSessionTest, TryPopNeverBlocks) {
  ParallelExperimentRunner runner(1);
  CampaignSession session(runner);
  CampaignRow row;
  EXPECT_FALSE(session.try_pop(&row));  // nothing submitted
  session.submit(CampaignRequest{"x", small_config("alya", 8)});
  // Drain: poll try_pop (it must return false, not block, while running).
  while (!session.try_pop(&row)) {
  }
  EXPECT_EQ(row.id, "x");
  EXPECT_FALSE(session.try_pop(&row));
}

}  // namespace
}  // namespace ibpower
