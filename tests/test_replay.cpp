#include "sim/replay.hpp"

#include <gtest/gtest.h>

namespace ibpower {
namespace {

using namespace ibpower::literals;

ReplayOptions base_options() {
  ReplayOptions opt;
  opt.fabric.routing.strategy = RoutingStrategy::Dmodk;
  return opt;
}

TEST(Replay, ComputeOnlyTraceFinishesAtBurstSum) {
  Trace t("demo", 2);
  t.push(0, ComputeRecord{100_us});
  t.push(0, ComputeRecord{50_us});
  t.push(1, ComputeRecord{20_us});
  ReplayEngine engine(&t, base_options());
  const auto rr = engine.run();
  EXPECT_EQ(rr.rank_finish[0], 150_us);
  EXPECT_EQ(rr.rank_finish[1], 20_us);
  EXPECT_EQ(rr.exec_time, 150_us);
}

TEST(Replay, EagerSendRecvTiming) {
  Trace t("demo", 2);
  t.push(0, ComputeRecord{100_us});
  t.push(0, SendRecord{1, 2048, 0});
  t.push(1, RecvRecord{0, 2048, 0});
  ReplayEngine engine(&t, base_options());
  const auto rr = engine.run();
  // Sender: 100us + injection (410ns).
  EXPECT_EQ(rr.rank_finish[0], 100_us + TimeNs{410});
  // Receiver blocked from 0 until delivery (> 101us).
  EXPECT_GT(rr.rank_finish[1], 101_us);
  EXPECT_LT(rr.rank_finish[1], 105_us);
  EXPECT_EQ(rr.messages_sent, 1u);
}

TEST(Replay, RecvAfterArrivalDoesNotBlock) {
  Trace t("demo", 2);
  t.push(0, SendRecord{1, 2048, 0});
  t.push(1, ComputeRecord{1_ms});
  t.push(1, RecvRecord{0, 2048, 0});
  ReplayEngine engine(&t, base_options());
  const auto rr = engine.run();
  // Message arrived long before the recv posts: recv is (nearly) instant.
  EXPECT_EQ(rr.rank_finish[1], 1_ms);
}

TEST(Replay, RendezvousSenderWaitsForReceiver) {
  const Bytes big = 1 << 20;  // above eager threshold
  Trace t("demo", 2);
  t.push(0, SendRecord{1, big, 0});
  t.push(1, ComputeRecord{500_us});
  t.push(1, RecvRecord{0, big, 0});
  ReplayEngine engine(&t, base_options());
  const auto rr = engine.run();
  // Sender cannot finish before the recv posts at 500us.
  EXPECT_GT(rr.rank_finish[0], 500_us);
  // Transfer: ~210us serialization after 500us.
  EXPECT_GT(rr.rank_finish[1], 700_us);
  EXPECT_LT(rr.rank_finish[1], 730_us);
}

TEST(Replay, RendezvousReceiverWaitsForSender) {
  const Bytes big = 1 << 20;
  Trace t("demo", 2);
  t.push(0, ComputeRecord{500_us});
  t.push(0, SendRecord{1, big, 0});
  t.push(1, RecvRecord{0, big, 0});
  ReplayEngine engine(&t, base_options());
  const auto rr = engine.run();
  EXPECT_GT(rr.rank_finish[1], 700_us);
}

TEST(Replay, SendrecvRingCompletes) {
  Trace t("demo", 4);
  for (Rank r = 0; r < 4; ++r) {
    t.push(r, ComputeRecord{TimeNs::from_us(std::int64_t(10 * (r + 1)))});
    t.push(r, SendrecvRecord{(r + 1) % 4, (r + 3) % 4, 4096, 0});
  }
  ASSERT_EQ(t.validate(), "");
  ReplayEngine engine(&t, base_options());
  const auto rr = engine.run();
  // Ring dependency: rank r receives from r-1, so only ranks downstream of
  // the slowest sender (rank 3, 40us) wait for it: rank 0 recvs from 3.
  EXPECT_GT(rr.rank_finish[0], 40_us);
  EXPECT_GT(rr.rank_finish[3], 40_us);  // own compute
  // Ranks 1 and 2 receive from faster upstream peers and finish earlier.
  EXPECT_LT(rr.rank_finish[1], 30_us);
  EXPECT_GT(rr.rank_finish[1], 20_us);
}

TEST(Replay, CollectiveSynchronizesRanks) {
  Trace t("demo", 3);
  t.push(0, ComputeRecord{10_us});
  t.push(1, ComputeRecord{200_us});
  t.push(2, ComputeRecord{50_us});
  for (Rank r = 0; r < 3; ++r) {
    t.push(r, CollectiveRecord{MpiCall::Allreduce, 8});
  }
  ReplayEngine engine(&t, base_options());
  const auto rr = engine.run();
  // All leave together, after the slowest entry (200us) + cost.
  EXPECT_EQ(rr.rank_finish[0], rr.rank_finish[1]);
  EXPECT_EQ(rr.rank_finish[1], rr.rank_finish[2]);
  EXPECT_GT(rr.rank_finish[0], 200_us);
}

TEST(Replay, ConsecutiveCollectivesKeepOrder) {
  Trace t("demo", 2);
  for (int k = 0; k < 5; ++k) {
    for (Rank r = 0; r < 2; ++r) {
      t.push(r, CollectiveRecord{MpiCall::Barrier, 0});
    }
  }
  ReplayEngine engine(&t, base_options());
  const auto rr = engine.run();
  EXPECT_GT(rr.exec_time, TimeNs::zero());
}

TEST(Replay, DeadlockDetected) {
  Trace t("demo", 2);
  t.push(0, RecvRecord{1, 2048, 0});  // nobody sends
  t.push(1, ComputeRecord{10_us});
  ReplayEngine engine(&t, base_options());
  EXPECT_THROW(engine.run(), std::runtime_error);
}

TEST(Replay, CollectiveDeadlockDetected) {
  Trace t("demo", 2);
  t.push(0, CollectiveRecord{MpiCall::Barrier, 0});
  // Rank 1 never joins.
  t.push(1, ComputeRecord{10_us});
  ReplayEngine engine(&t, base_options());
  EXPECT_THROW(engine.run(), std::runtime_error);
}

TEST(Replay, CallTimelineRecorded) {
  Trace t("demo", 2);
  t.push(0, ComputeRecord{10_us});
  t.push(0, SendRecord{1, 2048, 0});
  t.push(1, RecvRecord{0, 2048, 0});
  ReplayOptions opt = base_options();
  opt.record_call_timeline = true;
  ReplayEngine engine(&t, opt);
  (void)engine.run();
  ASSERT_EQ(engine.call_timeline(0).size(), 1u);
  EXPECT_EQ(engine.call_timeline(0)[0].call, MpiCall::Send);
  EXPECT_EQ(engine.call_timeline(0)[0].enter, 10_us);
  ASSERT_EQ(engine.call_timeline(1).size(), 1u);
  EXPECT_EQ(engine.call_timeline(1)[0].call, MpiCall::Recv);
}

TEST(Replay, BusyIntervalsRecordedForIdleAnalysis) {
  Trace t("demo", 2);
  t.push(0, ComputeRecord{100_us});
  t.push(0, SendRecord{1, 2048, 0});
  t.push(1, RecvRecord{0, 2048, 0});
  ReplayEngine engine(&t, base_options());
  const auto rr = engine.run();
  const auto& link0 = engine.fabric().node_link(0);
  EXPECT_FALSE(link0.busy(Direction::Up).empty());
  EXPECT_EQ(link0.end_time(), rr.exec_time);
}

TEST(Replay, ManagedRunGatesRegularTrace) {
  // ALYA-like: long compute + small comm, highly periodic.
  Trace t("demo", 4);
  for (int it = 0; it < 30; ++it) {
    for (Rank r = 0; r < 4; ++r) {
      t.push(r, ComputeRecord{300_us});
      t.push(r, SendrecvRecord{(r + 1) % 4, (r + 3) % 4, 4096, 0});
    }
    for (Rank r = 0; r < 4; ++r) {
      t.push(r, ComputeRecord{100_us});
      t.push(r, CollectiveRecord{MpiCall::Allreduce, 8});
    }
  }
  ASSERT_EQ(t.validate(), "");

  ReplayOptions baseline = base_options();
  ReplayEngine base_engine(&t, baseline);
  const auto base = base_engine.run();

  ReplayOptions managed = base_options();
  managed.enable_power_management = true;
  managed.ppa.grouping_threshold = 20_us;
  ReplayEngine engine(&t, managed);
  const auto run = engine.run();

  EXPECT_GE(run.agent_total.arms, 4u);  // every rank armed
  EXPECT_GT(run.agent_total.power_requests, 0u);
  TimeNs low_total{};
  for (Rank r = 0; r < 4; ++r) {
    low_total += engine.fabric().node_link(r).residency(LinkPowerMode::LowPower);
  }
  EXPECT_GT(low_total, 4 * 1_ms);  // substantial gating
  // Execution-time increase stays small (paper: ~1%); allow 5% here.
  const double increase =
      (static_cast<double>(run.exec_time.ns) -
       static_cast<double>(base.exec_time.ns)) /
      static_cast<double>(base.exec_time.ns);
  EXPECT_LT(increase, 0.05);
  EXPECT_GE(increase, -0.001);
}

TEST(Replay, TagsKeepChannelsIndependent) {
  // Two messages with different tags, received in the opposite order.
  Trace t("demo", 2);
  t.push(0, SendRecord{1, 2048, /*tag=*/1});
  t.push(0, ComputeRecord{10_us});
  t.push(0, SendRecord{1, 2048, /*tag=*/2});
  t.push(1, RecvRecord{0, 2048, /*tag=*/2});
  t.push(1, RecvRecord{0, 2048, /*tag=*/1});
  ASSERT_EQ(t.validate(), "");
  ReplayEngine engine(&t, base_options());
  const auto rr = engine.run();
  // Tag 2 arrives later (sent at 10us); the first recv must wait for it.
  EXPECT_GT(rr.rank_finish[1], 10_us);
}

TEST(Replay, SameTagFifoOrder) {
  // Two same-tag messages of different sizes: matching is FIFO per channel.
  Trace t("demo", 2);
  t.push(0, SendRecord{1, 2048, 0});
  t.push(0, SendRecord{1, 4096, 0});
  t.push(1, RecvRecord{0, 2048, 0});
  t.push(1, RecvRecord{0, 4096, 0});
  ASSERT_EQ(t.validate(), "");
  ReplayEngine engine(&t, base_options());
  EXPECT_NO_THROW(engine.run());
}

TEST(Replay, OverheadsDelayManagedRun) {
  // A compute-only-ish trace with a few calls: managed time must exceed
  // baseline by at least the interception overheads on the critical path.
  Trace t("demo", 2);
  for (int i = 0; i < 10; ++i) {
    t.push(0, ComputeRecord{100_us});
    t.push(0, SendRecord{1, 2048, 0});
    t.push(1, RecvRecord{0, 2048, 0});
    t.push(1, ComputeRecord{1_us});
  }
  ReplayOptions base_opt = base_options();
  ReplayEngine base_engine(&t, base_opt);
  const auto base = base_engine.run();

  ReplayOptions managed = base_options();
  managed.enable_power_management = true;
  managed.ppa.grouping_threshold = 20_us;
  managed.ppa.interception_overhead = 1_us;
  managed.ppa.ppa_invocation_overhead = TimeNs::zero();
  ReplayEngine engine(&t, managed);
  const auto run = engine.run();
  // Rank 0's 10 sends each pay >= 1us on its critical path.
  EXPECT_GE(run.exec_time - base.exec_time, 10_us);
}

TEST(Replay, WakePenaltyHitsLateMessage) {
  // Rank 0 computes long enough that its link is gated by the agent, then
  // an unpredicted early message (pattern break) pays a wake penalty.
  Trace t("demo", 2);
  for (int i = 0; i < 12; ++i) {
    t.push(0, ComputeRecord{500_us});
    t.push(0, SendRecord{1, 2048, 0});
    t.push(1, RecvRecord{0, 2048, 0});
  }
  // Break the pattern: a much earlier send.
  t.push(0, ComputeRecord{40_us});
  t.push(0, SendRecord{1, 2048, 0});
  t.push(1, RecvRecord{0, 2048, 0});
  ReplayOptions managed = base_options();
  managed.enable_power_management = true;
  managed.ppa.grouping_threshold = 20_us;
  managed.ppa.interception_overhead = TimeNs::zero();
  managed.ppa.ppa_invocation_overhead = TimeNs::zero();
  ReplayEngine engine(&t, managed);
  (void)engine.run();
  EXPECT_GE(engine.fabric().node_link(0).on_demand_wakes(), 1u);
  EXPECT_GT(engine.fabric().node_link(0).wake_penalty_total(), TimeNs::zero());
}

TEST(Replay, CollectiveWakePenaltyDelaysParticipation) {
  // A rank whose link is asleep at collective entry pays the wake before
  // joining; everyone still leaves together.
  Trace t("demo", 2);
  t.push(0, ComputeRecord{100_us});
  t.push(1, ComputeRecord{100_us});
  for (Rank r = 0; r < 2; ++r) {
    t.push(r, CollectiveRecord{MpiCall::Barrier, 0});
  }
  ReplayOptions opt = base_options();
  ReplayEngine engine(&t, opt);
  // Put rank 0's link to sleep manually before running: simulate by a
  // pre-scheduled low-power span covering the collective entry.
  engine.fabric().node_link(0).request_low_power(0_us, 1_ms);
  const auto rr = engine.run();
  EXPECT_EQ(rr.rank_finish[0], rr.rank_finish[1]);
  EXPECT_GT(rr.rank_finish[0], 110_us);  // 100us + wake 10us + cost
}

TEST(Replay, BaselineRunHasNoAgents) {
  Trace t("demo", 2);
  t.push(0, ComputeRecord{10_us});
  ReplayEngine engine(&t, base_options());
  const auto rr = engine.run();
  EXPECT_EQ(rr.agent_total.total_calls, 0u);
  EXPECT_EQ(engine.agent(0), nullptr);
}

}  // namespace
}  // namespace ibpower
