#include "sim/experiment.hpp"

#include <gtest/gtest.h>

namespace ibpower {
namespace {

using namespace ibpower::literals;

ExperimentConfig small_config(const std::string& app, int nranks) {
  ExperimentConfig cfg;
  cfg.app = app;
  cfg.workload.nranks = nranks;
  cfg.workload.iterations = 25;
  cfg.ppa.grouping_threshold = default_gt(app, nranks);
  cfg.ppa.displacement_factor = 0.10;
  cfg.fabric.routing.strategy = RoutingStrategy::Dmodk;
  return cfg;
}

TEST(Experiment, AlyaSmokeRun) {
  const auto r = run_experiment(small_config("alya", 8));
  EXPECT_GT(r.baseline_time, TimeNs::zero());
  EXPECT_GT(r.managed_time, TimeNs::zero());
  EXPECT_GT(r.power.switch_savings_pct, 0.0);
  EXPECT_LT(r.power.switch_savings_pct, 57.0);
  EXPECT_GT(r.hit_rate_pct, 50.0);
  EXPECT_LT(r.time_increase_pct, 5.0);
  EXPECT_GT(r.mpi_calls, 0u);
  EXPECT_EQ(r.agents.total_calls, r.mpi_calls);
}

TEST(Experiment, BaselineIdleDistributionPopulated) {
  const auto r = run_experiment(small_config("alya", 8));
  EXPECT_GT(r.baseline_idle.total_intervals, 0u);
  EXPECT_GT(r.baseline_idle.reducible_time_fraction(), 0.5);
}

TEST(Experiment, InvalidRankCountThrows) {
  EXPECT_THROW((void)run_experiment(small_config("nas_bt", 8)),
               std::invalid_argument);
}

TEST(Experiment, NodeLinkIdleGapsCoverExecution) {
  const ExperimentConfig cfg = small_config("alya", 4);
  const auto app = make_app(cfg.app);
  const Trace trace = app->generate(cfg.workload);
  ReplayOptions opt;
  opt.fabric = cfg.fabric;
  ReplayEngine engine(&trace, opt);
  const auto rr = engine.run();

  const auto gaps = node_link_idle_gaps(engine.fabric(), 0, rr.exec_time);
  TimeNs idle{};
  for (const auto& gap : gaps) idle += gap.duration();
  const auto& link = engine.fabric().node_link(0);
  IntervalSet busy;
  for (const auto& iv : link.busy(Direction::Up).intervals()) busy.add(iv);
  for (const auto& iv : link.busy(Direction::Down).intervals()) busy.add(iv);
  EXPECT_EQ(idle + busy.total(), rr.exec_time);
}

TEST(Experiment, PowerTimelineMatchesResidency) {
  const ExperimentConfig cfg = small_config("alya", 4);
  const auto app = make_app(cfg.app);
  const Trace trace = app->generate(cfg.workload);
  ReplayOptions opt;
  opt.fabric = cfg.fabric;
  opt.enable_power_management = true;
  opt.ppa = cfg.ppa;
  ReplayEngine engine(&trace, opt);
  const auto rr = engine.run();

  const StateTimeline tl =
      build_power_timeline(engine.fabric(), 4, rr.exec_time);
  for (NodeId n = 0; n < 4; ++n) {
    const auto& link = engine.fabric().node_link(n);
    EXPECT_EQ(tl.residency(n, static_cast<int>(LinkPowerMode::LowPower)),
              link.residency(LinkPowerMode::LowPower))
        << "node " << n;
    // Timeline covers the full execution.
    const TimeNs total =
        tl.residency(n, 0) + tl.residency(n, 1) + tl.residency(n, 2);
    EXPECT_EQ(total, rr.exec_time);
  }
}

TEST(Experiment, GtSweepProducesPoints) {
  ExperimentConfig cfg = small_config("gromacs", 8);
  cfg.workload.iterations = 15;
  const auto points = sweep_gt(cfg, {20_us, 50_us, 100_us});
  ASSERT_EQ(points.size(), 3u);
  for (const auto& p : points) {
    EXPECT_GE(p.hit_rate_pct, 0.0);
    EXPECT_LE(p.hit_rate_pct, 100.0);
    EXPECT_GE(p.gt, 20_us);
  }
}

TEST(Experiment, GtClampedToTwiceTreact) {
  ExperimentConfig cfg = small_config("alya", 4);
  cfg.workload.iterations = 8;
  const auto points = sweep_gt(cfg, {1_us});
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].gt, 20_us);
}

TEST(Experiment, DryRunHitRateMatchesManagedBallpark) {
  // Dry-run prediction over baseline timelines should roughly agree with
  // the closed-loop hit rate for a regular app.
  ExperimentConfig cfg = small_config("alya", 8);
  cfg.workload.iterations = 40;
  const auto r = run_experiment(cfg);

  const auto app = make_app(cfg.app);
  const Trace trace = app->generate(cfg.workload);
  ReplayOptions opt;
  opt.fabric = cfg.fabric;
  opt.record_call_timeline = true;
  ReplayEngine engine(&trace, opt);
  (void)engine.run();
  std::vector<std::vector<MpiCallEvent>> timelines;
  for (Rank rk = 0; rk < trace.nranks(); ++rk) {
    const auto tl = engine.call_timeline(rk);
    timelines.emplace_back(tl.begin(), tl.end());
  }
  const double dry = dry_run_hit_rate(timelines, cfg.ppa);
  EXPECT_NEAR(dry, r.hit_rate_pct, 15.0);
}

TEST(Experiment, DefaultGtRespectsLowerBound) {
  for (const auto& app : app_names()) {
    for (const int n : {8, 9, 16, 32, 64, 100, 128}) {
      EXPECT_GE(default_gt(app, n), 20_us) << app << " " << n;
    }
  }
}

}  // namespace
}  // namespace ibpower
