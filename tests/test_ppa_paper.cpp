// Validates the literal Algorithm-2 reference implementation against the
// paper's Fig. 3 walkthrough, event by event, and cross-checks it against
// the production periodicity detector.
#include "core/ppa_paper.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/gram_builder.hpp"
#include "core/ppa.hpp"
#include "util/rng.hpp"

namespace ibpower {
namespace {

using namespace ibpower::literals;

constexpr MpiCall SR = MpiCall::Sendrecv;
constexpr MpiCall AR = MpiCall::Allreduce;

PpaConfig paper_config() {
  PpaConfig cfg;
  cfg.grouping_threshold = 20_us;
  cfg.t_react = 10_us;
  return cfg;
}

/// Drives GramBuilder + PaperPpa with the Fig. 2 ALYA stream.
class PaperHarness {
 public:
  PaperHarness() : builder_(20_us, &interner_), ppa_(paper_config(), &interner_) {}

  std::optional<std::string> call(MpiCall c, TimeNs gap) {
    t_ += gap;
    auto closed = builder_.on_call_enter(c, t_);
    t_ += 1_us;
    builder_.on_call_exit(t_);
    ++n_events_;
    return ppa_.on_event(closed);
  }

  void alya_iteration() {
    call(SR, 200_us);
    call(SR, 2_us);
    call(SR, 2_us);
    call(AR, 100_us);
    call(AR, 80_us);
  }

  GramInterner interner_;
  GramBuilder builder_;
  PaperPpa ppa_;
  TimeNs t_{};
  int n_events_{0};
};

TEST(PaperPpa, Fig3WalkthroughExact) {
  PaperHarness h;
  std::optional<std::string> predicted;
  for (int it = 0; it < 5 && !predicted; ++it) {
    for (int c = 0; c < 5 && !predicted; ++c) {
      static const MpiCall seq[5] = {SR, SR, SR, AR, AR};
      static const TimeNs gaps[5] = {200_us, 2_us, 2_us, 100_us, 80_us};
      predicted = h.call(seq[c], gaps[c]);
    }
  }

  // Prediction turns true at MPI event 21 with the tri-gram pattern,
  // predicted from gram position 12 — exactly the paper's Fig. 3.
  ASSERT_TRUE(predicted.has_value());
  EXPECT_EQ(*predicted, "41-41-41_10_10");
  EXPECT_EQ(h.n_events_, 21);
  EXPECT_EQ(h.ppa_.predicted_from(), 12u);
  EXPECT_EQ(h.ppa_.max_pattern_size(), 3);

  // The insertion log matches the paper's table.
  struct Expected {
    int event;
    const char* action;
    const char* pattern;
    std::uint32_t freq;
  };
  const Expected expected[] = {
      {9, "add", "41-41-41_10", 1},
      {11, "add", "10_10", 1},
      {13, "add", "10_41-41-41", 1},
      {15, "match", "41-41-41_10", 2},
      {17, "grow", "41-41-41_10_10", 1},
      {17, "consec", "41-41-41_10_10", 2},
      {21, "consec", "41-41-41_10_10", 3},
      {21, "detect", "41-41-41_10_10", 3},
  };
  const auto& log = h.ppa_.log();
  ASSERT_EQ(log.size(), std::size(expected));
  for (std::size_t i = 0; i < std::size(expected); ++i) {
    EXPECT_EQ(log[i].mpi_event, expected[i].event) << "row " << i;
    EXPECT_EQ(log[i].action, expected[i].action) << "row " << i;
    EXPECT_EQ(log[i].pattern, expected[i].pattern) << "row " << i;
    EXPECT_EQ(log[i].frequency, expected[i].freq) << "row " << i;
  }

  // Occurrence positions of the detected tri-gram: 3, 6, 9 (Fig. 3).
  const auto* tri = h.ppa_.find("41-41-41_10_10");
  ASSERT_NE(tri, nullptr);
  EXPECT_EQ(tri->positions, (std::vector<std::size_t>{3, 6, 9}));
  EXPECT_TRUE(tri->detected);

  // The bi-gram prefix's frequency was decremented on growth (paper §III-A).
  const auto* bi = h.ppa_.find("41-41-41_10");
  ASSERT_NE(bi, nullptr);
  EXPECT_EQ(bi->frequency, 1u);
}

TEST(PaperPpa, ProductionDetectorAgreesOnPatternContent) {
  // Both detectors must identify the same pattern on the ALYA stream; the
  // production (periodicity) formulation fires earlier (event 16 vs 21),
  // as documented in core/ppa.hpp.
  PaperHarness paper;
  std::optional<std::string> paper_key;
  int paper_event = 0;

  GramInterner interner2;
  GramBuilder builder2(20_us, &interner2);
  PatternDetector production(paper_config(), &interner2);
  std::optional<PatternId> production_id;
  int production_event = 0;

  TimeNs t{};
  int event = 0;
  static const MpiCall seq[5] = {SR, SR, SR, AR, AR};
  static const TimeNs gaps[5] = {200_us, 2_us, 2_us, 100_us, 80_us};
  for (int it = 0; it < 6; ++it) {
    for (int c = 0; c < 5; ++c) {
      ++event;
      t += gaps[c];
      auto k = paper.call(seq[c], gaps[c]);
      if (k && !paper_key) {
        paper_key = k;
        paper_event = event;
      }
      if (auto closed = builder2.on_call_enter(seq[c], t)) {
        if (auto id = production.observe(*closed); id && !production_id) {
          production_id = id;
          production_event = event;
          production.set_scanning(false);
        }
      }
      t += 1_us;
      builder2.on_call_exit(t);
    }
  }

  ASSERT_TRUE(paper_key.has_value());
  ASSERT_TRUE(production_id.has_value());
  EXPECT_LE(production_event, paper_event);  // periodicity fires no later

  // Same pattern content.
  const PatternInfo& info = production.patterns()[*production_id];
  std::string production_key;
  for (std::size_t g = 0; g < info.grams.size(); ++g) {
    if (g) production_key += '_';
    production_key += interner2.to_string(info.grams[g]);
  }
  EXPECT_EQ(production_key, *paper_key);
}

TEST(PaperPpa, RearmsImmediatelyOnDetectedPattern) {
  PaperHarness h;
  std::optional<std::string> predicted;
  for (int it = 0; it < 5 && !predicted; ++it) h.alya_iteration();
  // (alya_iteration may overshoot; ensure detection happened)
  for (int it = 0; it < 3 && !h.ppa_.predicting(); ++it) h.alya_iteration();
  ASSERT_TRUE(h.ppa_.predicting());
}

TEST(PaperPpa, CheckORejectsNonExtendablePattern) {
  // Stream where a bi-gram repeats but its continuations differ:
  // A B X A B Y A B X ... The bi-gram (A,B) matches at its second
  // occurrence, but growing to (A,B,X) fails checkO when the prior
  // occurrence continued with Y — the candidate must be removed.
  GramInterner interner;
  PaperPpa ppa(paper_config(), &interner);
  const GramId A = interner.intern({SR});
  const GramId B = interner.intern({AR});
  const GramId X = interner.intern({MpiCall::Bcast});
  const GramId Y = interner.intern({MpiCall::Reduce});

  auto feed = [&](GramId id, std::size_t pos) {
    ClosedGram g;
    g.id = id;
    g.position = pos;
    return ppa.on_event(g);
  };
  // A B Y A B X A B Y A B X ... (alternating continuation, period 6).
  const GramId stream[] = {A, B, Y, A, B, X, A, B, Y, A, B, X, A, B, Y};
  std::size_t pos = 0;
  for (const GramId id : stream) (void)feed(id, pos++);

  bool removed = false;
  for (const auto& row : ppa.log()) {
    if (row.action == "remove") removed = true;
  }
  EXPECT_TRUE(removed);
}

TEST(PaperPpa, SingleRepeatedGramAgreesWithProduction) {
  // Degenerate stream A A A A ... (minimal period 1). Resolved behavior,
  // pinned here: both implementations detect the doubled gram [A, A] at the
  // sixth gram — the earliest point where the bi-gram has appeared three
  // times back-to-back. No divergence on this stream.
  GramInterner interner;
  PaperPpa paper(paper_config(), &interner);
  PatternDetector production(paper_config(), &interner);
  const GramId A = interner.intern({SR});

  int paper_at = -1, production_at = -1;
  std::string paper_key;
  std::optional<PatternId> production_id;
  for (int i = 0; i < 12; ++i) {
    ClosedGram g;
    g.id = A;
    g.position = static_cast<std::size_t>(i);
    g.preceding_idle = 100_us;
    if (auto k = paper.on_event(g); k && paper_at < 0) {
      paper_key = *k;
      paper_at = i;
    }
    if (production.scanning()) {
      if (auto id = production.observe(g); id) {
        production_id = id;
        production_at = i;
        production.set_scanning(false);
      }
    }
  }
  EXPECT_EQ(paper_at, 5);
  EXPECT_EQ(production_at, 5);
  EXPECT_EQ(paper_key, "41_41");
  ASSERT_TRUE(production_id.has_value());
  const PatternInfo& info = production.patterns()[*production_id];
  ASSERT_EQ(info.length(), 2u);
  EXPECT_EQ(info.grams[0], A);
  EXPECT_EQ(info.grams[1], A);
}

TEST(PaperPpa, GrowthChainDetectsFullDistinctPeriod) {
  // A B C D A B C D ... with four pairwise-distinct grams. Each growth step
  // creates the grown entry with only the position it grew at, so checkO's
  // occurrence list dead-ends after one added gram; the content-scan
  // fallback over the gram array is what lets the chain reach the full
  // period. Pins that the literal Algorithm 2 detects patterns longer than
  // three grams at all, and the exact timing: the paper implementation
  // fires at gram 15 (fourth appearance fully visible), the production
  // periodicity formulation one appearance earlier at gram 11.
  GramInterner interner;
  PaperPpa paper(paper_config(), &interner);
  PatternDetector production(paper_config(), &interner);
  const GramId period[] = {
      interner.intern({MpiCall::Send}), interner.intern({MpiCall::Recv}),
      interner.intern({MpiCall::Bcast}), interner.intern({AR})};

  int paper_at = -1, production_at = -1;
  std::string paper_key;
  std::optional<PatternId> production_id;
  for (int i = 0; i < 40; ++i) {
    ClosedGram g;
    g.id = period[static_cast<std::size_t>(i % 4)];
    g.position = static_cast<std::size_t>(i);
    g.preceding_idle = 100_us;
    if (auto k = paper.on_event(g); k && paper_at < 0) {
      paper_key = *k;
      paper_at = i;
    }
    if (production.scanning()) {
      if (auto id = production.observe(g); id) {
        production_id = id;
        production_at = i;
        production.set_scanning(false);
      }
    }
  }
  EXPECT_EQ(paper_at, 15);
  EXPECT_EQ(production_at, 11);

  // Both detect the full period, same content (paper's key is unrotated).
  std::string expect_key;
  for (const GramId id : period) {
    if (!expect_key.empty()) expect_key += '_';
    expect_key += interner.to_string(id);
  }
  EXPECT_EQ(paper_key, expect_key);
  ASSERT_TRUE(production_id.has_value());
  const PatternInfo& info = production.patterns()[*production_id];
  ASSERT_EQ(info.length(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(info.grams[i], period[i]);
}

// Differential property: the two Algorithm-2 implementations agree on
// random noise-free periodic gram streams (same predicted pattern content,
// possibly rotated; production fires no later).
class PpaDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PpaDifferential, AgreeOnRandomPeriodicStreams) {
  Rng rng(GetParam());
  GramInterner interner;
  // Random period 2..6 over 5 distinct single-call grams.
  const int period = 2 + static_cast<int>(rng.uniform_below(5));
  const MpiCall calls[] = {MpiCall::Send, MpiCall::Recv, MpiCall::Bcast,
                           MpiCall::Sendrecv, MpiCall::Allreduce};
  std::vector<GramId> block;
  for (int i = 0; i < period; ++i) {
    block.push_back(interner.intern({calls[rng.uniform_below(5)]}));
  }
  block[0] = interner.intern({MpiCall::Sendrecv});
  block[static_cast<std::size_t>(period - 1)] =
      interner.intern({MpiCall::Allreduce});

  PaperPpa paper(paper_config(), &interner);
  PatternDetector production(paper_config(), &interner);
  std::optional<std::string> paper_key;
  std::optional<PatternId> production_id;
  int paper_at = -1, production_at = -1;

  for (int i = 0; i < 20 * period; ++i) {
    ClosedGram g;
    g.id = block[static_cast<std::size_t>(i % period)];
    g.position = static_cast<std::size_t>(i);
    g.preceding_idle = 100_us;
    if (auto k = paper.on_event(g); k && !paper_key) {
      paper_key = k;
      paper_at = i;
    }
    if (production.scanning()) {
      if (auto id = production.observe(g); id && !production_id) {
        production_id = id;
        production_at = i;
        production.set_scanning(false);
      }
    }
  }

  ASSERT_TRUE(paper_key.has_value()) << "period " << period;
  ASSERT_TRUE(production_id.has_value());
  EXPECT_LE(production_at, paper_at);

  // Same *content* modulo rotation: both detected lengths divide the period
  // and their gram multisets agree with the block.
  const PatternInfo& info = production.patterns()[*production_id];
  EXPECT_EQ(period % static_cast<int>(info.length()), 0);
  // Paper key length (count the '_'-separated grams).
  const std::size_t paper_len =
      1 + static_cast<std::size_t>(
              std::count(paper_key->begin(), paper_key->end(), '_'));
  EXPECT_EQ(period % static_cast<int>(paper_len), 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PpaDifferential,
                         ::testing::Range<std::uint64_t>(200, 216));

TEST(PaperPpa, NoPredictionOnCubeFreeStream) {
  GramInterner interner;
  PaperPpa ppa(paper_config(), &interner);
  const GramId a = interner.intern({SR});
  const GramId b = interner.intern({AR});
  bool predicted = false;
  for (int i = 0; i < 300; ++i) {
    const int parity = __builtin_popcount(static_cast<unsigned>(i)) & 1;
    ClosedGram g;
    g.id = parity ? a : b;
    g.position = static_cast<std::size_t>(i);
    if (ppa.on_event(g)) predicted = true;
  }
  EXPECT_FALSE(predicted);  // Thue-Morse has no three consecutive repeats
}

}  // namespace
}  // namespace ibpower
