// Configuration-knob coverage: every PpaConfig field must actually change
// behaviour the way the paper describes, and ExperimentConfig must keep the
// agent and the link model consistent.
#include <gtest/gtest.h>

#include "core/pmpi_agent.hpp"
#include "sim/experiment.hpp"

namespace ibpower {
namespace {

using namespace ibpower::literals;

constexpr MpiCall SR = MpiCall::Sendrecv;
constexpr MpiCall AR = MpiCall::Allreduce;

PpaConfig base_config() {
  PpaConfig cfg;
  cfg.grouping_threshold = 20_us;
  cfg.t_react = 10_us;
  cfg.interception_overhead = TimeNs::zero();
  cfg.ppa_invocation_overhead = TimeNs::zero();
  return cfg;
}

struct CountingPort final : LinkPowerPort {
  int requests{0};
  TimeNs last_duration{};
  void request_low_power(TimeNs, TimeNs duration) override {
    ++requests;
    last_duration = duration;
  }
};

int calls_until_armed(const PpaConfig& cfg, int max_iterations = 30) {
  PmpiAgent agent(cfg, nullptr);
  TimeNs t{};
  int calls = 0;
  for (int it = 0; it < max_iterations; ++it) {
    for (const auto& [c, gap] :
         std::initializer_list<std::pair<MpiCall, TimeNs>>{
             {SR, 150_us}, {AR, 100_us}}) {
      t += gap;
      ++calls;
      (void)agent.on_call_enter(c, t);
      t += 1_us;
      agent.on_call_exit(c, t);
      if (agent.predicting()) return calls;
    }
  }
  return -1;
}

TEST(ConfigKnobs, ConsecutiveAppearancesThreshold) {
  PpaConfig two = base_config();
  two.consecutive_appearances_to_detect = 2;
  PpaConfig four = base_config();
  four.consecutive_appearances_to_detect = 4;
  const int at2 = calls_until_armed(two);
  const int at3 = calls_until_armed(base_config());
  const int at4 = calls_until_armed(four);
  ASSERT_GT(at2, 0);
  ASSERT_GT(at3, 0);
  ASSERT_GT(at4, 0);
  EXPECT_LT(at2, at3);
  EXPECT_LT(at3, at4);
  // One more appearance = one more period (2 grams = 2 calls).
  EXPECT_EQ(at3 - at2, 2);
  EXPECT_EQ(at4 - at3, 2);
}

TEST(ConfigKnobs, DisplacementScalesSafetyMargin) {
  for (const double disp : {0.01, 0.10, 0.30}) {
    PpaConfig cfg = base_config();
    cfg.displacement_factor = disp;
    CountingPort port;
    PmpiAgent agent(cfg, &port);
    TimeNs t{};
    for (int it = 0; it < 10; ++it) {
      for (const auto& [c, gap] :
           std::initializer_list<std::pair<MpiCall, TimeNs>>{
               {SR, 150_us}, {AR, 100_us}}) {
        t += gap;
        (void)agent.on_call_enter(c, t);
        t += 1_us;
        agent.on_call_exit(c, t);
      }
    }
    ASSERT_GT(port.requests, 0) << disp;
    // Request durations are G - (G*disp + Treact) for G in {150, 100}us.
    const TimeNs expected_150 = 150_us - 150_us * disp - 10_us;
    const TimeNs expected_100 = 100_us - 100_us * disp - 10_us;
    EXPECT_TRUE(port.last_duration == expected_150 ||
                port.last_duration == expected_100)
        << "disp " << disp << ": " << to_string(port.last_duration);
  }
}

TEST(ConfigKnobs, MinLowPowerSuppressesSmallWindows) {
  PpaConfig cfg = base_config();
  cfg.min_low_power_duration = 200_us;  // bigger than any predicted window
  CountingPort port;
  PmpiAgent agent(cfg, &port);
  TimeNs t{};
  for (int it = 0; it < 10; ++it) {
    for (const auto& [c, gap] :
         std::initializer_list<std::pair<MpiCall, TimeNs>>{
             {SR, 150_us}, {AR, 100_us}}) {
      t += gap;
      (void)agent.on_call_enter(c, t);
      t += 1_us;
      agent.on_call_exit(c, t);
    }
  }
  EXPECT_TRUE(agent.predicting());  // prediction still works
  EXPECT_EQ(port.requests, 0);      // but nothing worth gating
}

TEST(ConfigKnobs, EwmaTracksDriftFasterThanMean) {
  // Feed a boundary whose gap drifts from 100us to 300us; the EWMA estimate
  // must end much closer to 300us than the running mean.
  auto final_estimate = [](double alpha) {
    GapEstimate est;
    for (int i = 0; i < 50; ++i) est.observe(100_us, alpha);
    for (int i = 0; i < 10; ++i) est.observe(300_us, alpha);
    return est.mean();
  };
  const TimeNs mean = final_estimate(0.0);
  const TimeNs ewma = final_estimate(0.5);
  EXPECT_LT(mean, 150_us);
  EXPECT_GT(ewma, 280_us);
}

TEST(ConfigKnobs, MaxPatternGramsBoundsDetection) {
  // A period-6 gram stream cannot be detected when the search is capped at
  // 4 grams (and 6 is not reducible).
  PpaConfig capped = base_config();
  capped.max_pattern_grams = 4;
  GramInterner interner;
  PatternDetector detector(capped, &interner);
  const MpiCall calls[6] = {SR, AR, MpiCall::Bcast, SR, SR, AR};
  std::vector<GramId> block;
  for (const MpiCall c : calls) block.push_back(interner.intern({c}));
  bool armed = false;
  for (int i = 0; i < 120; ++i) {
    ClosedGram g;
    g.id = block[static_cast<std::size_t>(i % 6)];
    g.position = static_cast<std::size_t>(i);
    g.preceding_idle = 100_us;
    if (detector.observe(g)) armed = true;
  }
  EXPECT_FALSE(armed);

  PpaConfig roomy = base_config();
  roomy.max_pattern_grams = 8;
  PatternDetector detector2(roomy, &interner);
  for (int i = 0; i < 120 && !armed; ++i) {
    ClosedGram g;
    g.id = block[static_cast<std::size_t>(i % 6)];
    g.position = static_cast<std::size_t>(i);
    g.preceding_idle = 100_us;
    if (detector2.observe(g)) armed = true;
  }
  EXPECT_TRUE(armed);
}

TEST(ConfigKnobs, ExperimentSyncsTreactIntoLinkModel) {
  ExperimentConfig cfg;
  cfg.app = "alya";
  cfg.workload.nranks = 4;
  cfg.workload.iterations = 15;
  cfg.ppa.t_react = 40_us;
  cfg.ppa.grouping_threshold = 80_us;  // >= 2 * Treact
  cfg.ppa.min_low_power_duration = 40_us;
  // If the link model kept the default 10us Treact while the agent assumed
  // 40us, wake penalties would be systematically mis-sized; the experiment
  // runner must propagate it. (This is a regression test: the run completes
  // with sane, bounded slowdown.)
  const auto r = run_experiment(cfg);
  EXPECT_GT(r.power.switch_savings_pct, 0.0);
  EXPECT_LT(r.time_increase_pct, 5.0);
}

TEST(ConfigKnobs, InvalidConfigsRejected) {
  PpaConfig cfg = base_config();
  cfg.displacement_factor = 1.5;
  EXPECT_FALSE(cfg.valid());
  cfg = base_config();
  cfg.consecutive_appearances_to_detect = 1;
  EXPECT_FALSE(cfg.valid());
  cfg = base_config();
  cfg.min_pattern_grams = 1;
  EXPECT_FALSE(cfg.valid());
  cfg = base_config();
  cfg.gap_ewma_alpha = 2.0;
  EXPECT_FALSE(cfg.valid());
  cfg = base_config();
  cfg.max_pattern_grams = cfg.min_pattern_grams - 1;
  EXPECT_FALSE(cfg.valid());
}

}  // namespace
}  // namespace ibpower
