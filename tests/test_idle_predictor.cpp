// Property tests of the pluggable IdlePredictor family (DESIGN.md §13):
// monotone adaptation of the multi-timeout estimate under over- and
// under-prediction, reset-equals-fresh for every kind (the reset-and-reuse
// contract of DESIGN.md §7 at the predictor level), guard suppression and
// guard dominance as pure output filtering, histogram sample gating and
// conservative quantile prediction, and steady-state allocation behaviour
// under a counting global allocator (own binary for the same reason as
// test_replay_noalloc: operator new replacement is file-global).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "core/idle_predictor.hpp"

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace ibpower {
namespace {

PpaConfig predictor_config(PredictorKind kind) {
  PpaConfig cfg;
  cfg.displacement_factor = 0.01;  // safety = D/100 + 10us, easy to reason
  cfg.predictor.kind = kind;
  return cfg;
}

constexpr TimeNs us(std::int64_t v) { return TimeNs::from_us(v); }

/// One interception boundary: `call` entered after an idle gap of `gap`
/// since the previous call's exit on the rank.
struct Step {
  MpiCall call;
  TimeNs gap;
};

std::vector<Step> repeat(const std::vector<Step>& period, int times) {
  std::vector<Step> out;
  out.reserve(period.size() * static_cast<std::size_t>(times));
  for (int i = 0; i < times; ++i) {
    out.insert(out.end(), period.begin(), period.end());
  }
  return out;
}

/// Feeds a predictor one call boundary at a time, synthesizing monotone
/// enter/exit timestamps from the requested gaps (each call lasts 1us).
/// Holds the first-call state across steps so tests can interleave stepping
/// with estimate inspection.
struct Driver {
  IdlePredictor* p;
  TimeNs prev_exit = us(5);
  bool first = true;

  IdlePredictor::ExitOutcome step(MpiCall call, TimeNs gap) {
    const TimeNs enter = first ? prev_exit : prev_exit + gap;
    (void)p->on_call_enter(call, enter, first ? TimeNs::zero() : gap, first);
    const TimeNs exit = enter + us(1);
    auto out = p->on_call_exit(call, exit);
    prev_exit = exit;
    first = false;
    return out;
  }

  void run(const std::vector<Step>& steps) {
    for (const Step& s : steps) (void)step(s.call, s.gap);
  }
};

std::vector<IdlePredictor::ExitOutcome> drive(IdlePredictor* p,
                                              const std::vector<Step>& steps) {
  std::vector<IdlePredictor::ExitOutcome> out;
  out.reserve(steps.size());
  Driver d{p};
  for (const Step& s : steps) out.push_back(d.step(s.call, s.gap));
  return out;
}

/// Same walk without recording — the allocation-count tests must not
/// allocate result storage of their own.
void drive_silent(IdlePredictor* p, const std::vector<Step>& steps) {
  Driver d{p};
  d.run(steps);
}

::testing::AssertionResult same_exits(
    const std::vector<IdlePredictor::ExitOutcome>& a,
    const std::vector<IdlePredictor::ExitOutcome>& b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure()
           << "exit counts differ: " << a.size() << " vs " << b.size();
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].request.has_value() != b[i].request.has_value() ||
        a[i].guard_suppressed != b[i].guard_suppressed ||
        (a[i].request.has_value() &&
         (a[i].request->predicted_idle != b[i].request->predicted_idle ||
          a[i].request->low_power_duration !=
              b[i].request->low_power_duration))) {
      return ::testing::AssertionFailure() << "exit " << i << " differs";
    }
  }
  return ::testing::AssertionSuccess();
}

/// A stream the PPA fully learns: gaps >= GT make every call its own gram,
/// so the gram sequence has period 3 and arms after three appearances.
std::vector<Step> ppa_periodic_stream(int periods) {
  return repeat({{MpiCall::Sendrecv, us(100)},
                 {MpiCall::Bcast, us(150)},
                 {MpiCall::Allreduce, us(120)}},
                periods);
}

// --- Multi-timeout adaptation ----------------------------------------------

TEST(MultiTimeout, UnderPredictionDoublesEstimateMonotonicallyToCeiling) {
  const PpaConfig cfg = predictor_config(PredictorKind::MultiTimeout);
  MultiTimeoutPredictor p;
  p.reset(cfg);
  ASSERT_EQ(p.estimate(), cfg.predictor.mt_initial);

  Driver d{&p};
  TimeNs prev = p.estimate();
  for (int i = 0; i < 12; ++i) {
    (void)d.step(MpiCall::Allreduce, us(25000));  // >= 4x any estimate
    EXPECT_GE(p.estimate(), prev) << "step " << i;
    EXPECT_LE(p.estimate(), cfg.predictor.mt_max) << "step " << i;
    prev = p.estimate();
  }
  EXPECT_EQ(p.estimate(), cfg.predictor.mt_max);
}

TEST(MultiTimeout, OverPredictionHalvesEstimateMonotonicallyToFloor) {
  const PpaConfig cfg = predictor_config(PredictorKind::MultiTimeout);
  MultiTimeoutPredictor p;
  p.reset(cfg);
  Driver d{&p};
  // Start the estimate at the ceiling so every observed gap under-runs it.
  for (int i = 0; i < 12; ++i) (void)d.step(MpiCall::Allreduce, us(25000));
  ASSERT_EQ(p.estimate(), cfg.predictor.mt_max);

  // Real idle gaps (>= GT) shorter than the estimate: halve every step,
  // never overshoot past the floor, and stay there.
  TimeNs prev = p.estimate();
  for (int i = 0; i < 12; ++i) {
    (void)d.step(MpiCall::Allreduce, us(21));
    EXPECT_LE(p.estimate(), prev) << "step " << i;
    EXPECT_GE(p.estimate(), cfg.predictor.mt_min) << "step " << i;
    prev = p.estimate();
  }
  EXPECT_EQ(p.estimate(), cfg.predictor.mt_min);
}

TEST(MultiTimeout, IntraGramGapsDoNotAdaptTheEstimate) {
  const PpaConfig cfg = predictor_config(PredictorKind::MultiTimeout);
  MultiTimeoutPredictor p;
  p.reset(cfg);
  Driver d{&p};
  for (int i = 0; i < 4; ++i) (void)d.step(MpiCall::Allreduce, us(25000));
  const TimeNs before = p.estimate();
  ASSERT_GT(before, cfg.predictor.mt_min);

  // A burst of sub-GT gaps is intra-gram spacing, not gateable idle: the
  // estimate must survive it untouched (this is what preserves the trailing
  // idle period after a message burst on the irregular workloads).
  for (int i = 0; i < 64; ++i) (void)d.step(MpiCall::Send, us(5));
  EXPECT_EQ(p.estimate(), before);
}

TEST(MultiTimeout, HysteresisBandHoldsTheEstimate) {
  const PpaConfig cfg = predictor_config(PredictorKind::MultiTimeout);
  MultiTimeoutPredictor p;
  p.reset(cfg);
  Driver d{&p};
  const TimeNs est = p.estimate();
  // Gaps in [D, 4D) neither double nor halve.
  for (int i = 0; i < 16; ++i) (void)d.step(MpiCall::Allreduce, 2 * est);
  EXPECT_EQ(p.estimate(), est);
}

TEST(MultiTimeout, SelfThrottlesWhenEstimateCannotCoverSafetyMargin) {
  const PpaConfig cfg = predictor_config(PredictorKind::MultiTimeout);
  MultiTimeoutPredictor p;
  p.reset(cfg);
  Driver d{&p};
  // Collapse to the 20us floor: low = 20 - (0.2 + 10) = 9.8us, below the
  // 10us minimum residency — no request may be issued.
  for (int i = 0; i < 8; ++i) (void)d.step(MpiCall::Allreduce, us(21));
  ASSERT_EQ(p.estimate(), cfg.predictor.mt_min);
  for (int i = 0; i < 8; ++i) {
    const auto out = d.step(MpiCall::Allreduce, us(21));
    EXPECT_FALSE(out.request.has_value()) << "step " << i;
  }
}

TEST(MultiTimeout, RequestCarriesAlgorithm3SafetyMargin) {
  const PpaConfig cfg = predictor_config(PredictorKind::MultiTimeout);
  MultiTimeoutPredictor p;
  p.reset(cfg);
  Driver d{&p};
  for (int i = 0; i < 12; ++i) (void)d.step(MpiCall::Allreduce, us(25000));
  ASSERT_EQ(p.estimate(), cfg.predictor.mt_max);

  const auto out = d.step(MpiCall::Allreduce, us(25000));
  ASSERT_TRUE(out.request.has_value());
  const TimeNs predicted = out.request->predicted_idle;
  EXPECT_EQ(predicted, cfg.predictor.mt_max);
  const TimeNs safety = predicted * cfg.displacement_factor + cfg.t_react;
  EXPECT_EQ(out.request->low_power_duration, predicted - safety);
}

// --- Reset equals fresh ----------------------------------------------------

TEST(ResetEqualsFresh, MultiTimeout) {
  const PpaConfig cfg = predictor_config(PredictorKind::MultiTimeout);
  const std::vector<Step> history = repeat({{MpiCall::Allreduce, us(25000)},
                                            {MpiCall::Send, us(30)}},
                                           10);
  const std::vector<Step> probe = repeat({{MpiCall::Allreduce, us(400)}}, 6);

  MultiTimeoutPredictor reused;
  reused.reset(cfg);
  drive_silent(&reused, history);
  reused.reset(cfg);
  const auto reused_exits = drive(&reused, probe);

  MultiTimeoutPredictor fresh;
  fresh.reset(cfg);
  const auto fresh_exits = drive(&fresh, probe);

  EXPECT_TRUE(same_exits(reused_exits, fresh_exits));
  EXPECT_EQ(reused.estimate(), fresh.estimate());
}

TEST(ResetEqualsFresh, Histogram) {
  const PpaConfig cfg = predictor_config(PredictorKind::Histogram);
  const std::vector<Step> history = repeat({{MpiCall::Send, us(2000)},
                                            {MpiCall::Allreduce, us(30)}},
                                           12);
  const std::vector<Step> probe = repeat({{MpiCall::Bcast, us(900)},
                                          {MpiCall::Reduce, us(40)}},
                                         12);

  HistogramPredictor reused;
  reused.reset(cfg);
  drive_silent(&reused, history);
  reused.reset(cfg);
  const auto reused_exits = drive(&reused, probe);

  HistogramPredictor fresh;
  fresh.reset(cfg);
  const auto fresh_exits = drive(&fresh, probe);

  EXPECT_TRUE(same_exits(reused_exits, fresh_exits));
  for (const MpiCall c : {MpiCall::Send, MpiCall::Allreduce, MpiCall::Bcast,
                          MpiCall::Reduce}) {
    EXPECT_EQ(reused.predicted_gap_after(c), fresh.predicted_gap_after(c));
  }
}

TEST(ResetEqualsFresh, Ppa) {
  const PpaConfig cfg = predictor_config(PredictorKind::Ppa);
  const std::vector<Step> history = ppa_periodic_stream(8);
  const std::vector<Step> probe = ppa_periodic_stream(10);

  PpaPredictor reused(cfg);
  drive_silent(&reused, history);
  (void)reused.finish();
  reused.reset(cfg);
  const auto reused_exits = drive(&reused, probe);

  PpaPredictor fresh(cfg);
  const auto fresh_exits = drive(&fresh, probe);

  EXPECT_TRUE(same_exits(reused_exits, fresh_exits));
  EXPECT_EQ(reused.predicting(), fresh.predicting());
  EXPECT_EQ(reused.detector().invocations(), fresh.detector().invocations());
}

TEST(ResetEqualsFresh, GuardOverMultiTimeout) {
  const PpaConfig cfg = predictor_config(PredictorKind::MultiTimeout);
  const std::vector<Step> probe = repeat({{MpiCall::Allreduce, us(25000)}}, 8);

  MultiTimeoutPredictor inner_reused;
  GuardPredictor reused;
  reused.bind(&inner_reused, us(150));
  reused.reset(cfg);
  drive_silent(&reused, repeat({{MpiCall::Send, us(300)}}, 20));
  reused.reset(cfg);
  const auto reused_exits = drive(&reused, probe);

  MultiTimeoutPredictor inner_fresh;
  GuardPredictor fresh;
  fresh.bind(&inner_fresh, us(150));
  fresh.reset(cfg);
  const auto fresh_exits = drive(&fresh, probe);

  EXPECT_TRUE(same_exits(reused_exits, fresh_exits));
}

// --- Histogram properties --------------------------------------------------

TEST(Histogram, SampleGateBlocksPredictionUntilMinSamples) {
  const PpaConfig cfg = predictor_config(PredictorKind::Histogram);
  HistogramPredictor p;
  p.reset(cfg);
  Driver d{&p};

  // hist_min_samples = 8 observations of the gap *after* Send are needed.
  // Each {Send, Allreduce} round attributes one gap to Send (the long one
  // before the Allreduce entry).
  const auto round = [&d] {
    (void)d.step(MpiCall::Send, us(40));
    (void)d.step(MpiCall::Allreduce, us(2000));
  };
  for (std::uint32_t i = 0; i + 1 < cfg.predictor.hist_min_samples; ++i) {
    round();
    EXPECT_EQ(p.predicted_gap_after(MpiCall::Send), TimeNs::zero())
        << "after " << (i + 1) << " samples";
  }
  round();
  EXPECT_GT(p.predicted_gap_after(MpiCall::Send), TimeNs::zero());
  // A call id never observed stays gated forever.
  EXPECT_EQ(p.predicted_gap_after(MpiCall::Barrier), TimeNs::zero());
}

TEST(Histogram, PredictionIsConservativeLowerBoundOfObservedGaps) {
  const PpaConfig cfg = predictor_config(PredictorKind::Histogram);
  HistogramPredictor p;
  p.reset(cfg);
  drive_silent(&p, repeat({{MpiCall::Send, us(40)},
                           {MpiCall::Allreduce, us(2000)}},
                          16));
  const TimeNs predicted = p.predicted_gap_after(MpiCall::Send);
  EXPECT_GT(predicted, TimeNs::zero());
  // min(quantile bucket floor, EWMA) can never exceed the largest observed
  // gap — the predictor errs toward shorter sleeps under heavy tails.
  EXPECT_LE(predicted, us(2000));
}

TEST(Histogram, AttributesGapsToThePrecedingCallId) {
  const PpaConfig cfg = predictor_config(PredictorKind::Histogram);
  HistogramPredictor p;
  p.reset(cfg);
  // Long idle (2000us) follows Send; only sub-safety idle (15us) follows
  // Allreduce. Predictions must reflect the conditional distributions, and
  // the request stream must follow only the long-idle call id — an
  // Allreduce-exit prediction of ~8us cannot cover the Alg. 3 safety
  // margin.
  const auto exits = drive(&p, repeat({{MpiCall::Send, us(15)},
                                       {MpiCall::Allreduce, us(2000)}},
                                      20));
  EXPECT_GT(p.predicted_gap_after(MpiCall::Send),
            4 * p.predicted_gap_after(MpiCall::Allreduce));
  for (std::size_t i = exits.size() - 6; i < exits.size(); ++i) {
    // Even index = Send exit (long idle follows), odd = Allreduce exit.
    EXPECT_EQ(exits[i].request.has_value(), i % 2 == 0) << "exit " << i;
  }
}

// --- Guard suppression and dominance ---------------------------------------

TEST(Guard, SuppressesRequestsAtOrBelowThresholdOnly) {
  const PpaConfig cfg = predictor_config(PredictorKind::MultiTimeout);
  const std::vector<Step> steps = repeat({{MpiCall::Allreduce, us(25000)}}, 10);

  MultiTimeoutPredictor unguarded;
  unguarded.reset(cfg);
  const auto plain = drive(&unguarded, steps);

  MultiTimeoutPredictor inner;
  GuardPredictor guarded;
  const TimeNs threshold = us(150);
  guarded.bind(&inner, threshold);
  guarded.reset(cfg);
  const auto filtered = drive(&guarded, steps);

  ASSERT_EQ(plain.size(), filtered.size());
  std::size_t suppressed = 0;
  for (std::size_t i = 0; i < plain.size(); ++i) {
    ASSERT_TRUE(plain[i].request.has_value()) << "exit " << i;
    if (plain[i].request->predicted_idle <= threshold) {
      // Short prediction: dropped and flagged.
      EXPECT_FALSE(filtered[i].request.has_value()) << "exit " << i;
      EXPECT_TRUE(filtered[i].guard_suppressed) << "exit " << i;
      ++suppressed;
    } else {
      // Long prediction: passed through byte-for-byte.
      ASSERT_TRUE(filtered[i].request.has_value()) << "exit " << i;
      EXPECT_EQ(filtered[i].request->predicted_idle,
                plain[i].request->predicted_idle);
      EXPECT_EQ(filtered[i].request->low_power_duration,
                plain[i].request->low_power_duration);
      EXPECT_FALSE(filtered[i].guard_suppressed) << "exit " << i;
    }
  }
  // The estimate walk 50 -> 100 -> 200 -> ... guarantees both regimes occur.
  EXPECT_GT(suppressed, 0u);
  EXPECT_LT(suppressed, plain.size());
}

TEST(Guard, GuardedRequestStreamIsSubsetOfUnguarded) {
  // Dominance is structural: adaptation is issuance-independent, so the
  // guarded predictor sees identical observations and its requests are
  // exactly the unguarded requests minus the suppressed ones. Check it on
  // an irregular gap mix over every inner kind.
  const std::vector<Step> steps =
      repeat({{MpiCall::Send, us(25000)},
              {MpiCall::Allreduce, us(30)},
              {MpiCall::Bcast, us(400)},
              {MpiCall::Reduce, us(25)}},
             12);
  for (const PredictorKind kind :
       {PredictorKind::MultiTimeout, PredictorKind::Histogram}) {
    const PpaConfig cfg = predictor_config(kind);
    MultiTimeoutPredictor mt_plain, mt_inner;
    HistogramPredictor hist_plain, hist_inner;
    IdlePredictor* plain_p = kind == PredictorKind::MultiTimeout
                                 ? static_cast<IdlePredictor*>(&mt_plain)
                                 : &hist_plain;
    IdlePredictor* inner_p = kind == PredictorKind::MultiTimeout
                                 ? static_cast<IdlePredictor*>(&mt_inner)
                                 : &hist_inner;
    plain_p->reset(cfg);
    const auto plain = drive(plain_p, steps);

    GuardPredictor guarded;
    guarded.bind(inner_p, us(100));
    guarded.reset(cfg);
    const auto filtered = drive(&guarded, steps);

    ASSERT_EQ(plain.size(), filtered.size());
    for (std::size_t i = 0; i < plain.size(); ++i) {
      if (filtered[i].request.has_value()) {
        ASSERT_TRUE(plain[i].request.has_value())
            << predictor_name(kind) << " exit " << i
            << ": guarded issued a request the unguarded run did not";
        EXPECT_EQ(filtered[i].request->predicted_idle,
                  plain[i].request->predicted_idle);
      }
      EXPECT_EQ(filtered[i].guard_suppressed,
                plain[i].request.has_value() &&
                    !filtered[i].request.has_value())
          << predictor_name(kind) << " exit " << i;
    }
  }
}

// --- Steady-state allocation behaviour -------------------------------------

/// Allocations of one reset + full drive after two identical warm-up
/// rounds (warm-up 1 sizes learned structures, warm-up 2 confirms the
/// shape — the test_replay_noalloc idiom).
std::uint64_t steady_allocs(IdlePredictor* p, const PpaConfig& cfg,
                            const std::vector<Step>& steps) {
  p->reset(cfg);
  drive_silent(p, steps);
  p->reset(cfg);
  drive_silent(p, steps);
  const std::uint64_t before = g_alloc_count.load();
  p->reset(cfg);
  drive_silent(p, steps);
  (void)p->finish();
  return g_alloc_count.load() - before;
}

TEST(IdlePredictorNoAlloc, PatternFreeKindsAreAllocationFreeInSteadyState) {
  const std::vector<Step> irregular =
      repeat({{MpiCall::Send, us(25000)},
              {MpiCall::Allreduce, us(30)},
              {MpiCall::Bcast, us(400)}},
             20);

  MultiTimeoutPredictor mt;
  EXPECT_EQ(steady_allocs(&mt, predictor_config(PredictorKind::MultiTimeout),
                          irregular),
            0u)
      << "multi-timeout";

  HistogramPredictor hist;
  EXPECT_EQ(steady_allocs(&hist, predictor_config(PredictorKind::Histogram),
                          irregular),
            0u)
      << "histogram";

  MultiTimeoutPredictor guarded_inner;
  GuardPredictor guard;
  guard.bind(&guarded_inner, us(100));
  EXPECT_EQ(steady_allocs(&guard,
                          predictor_config(PredictorKind::MultiTimeout),
                          irregular),
            0u)
      << "guard(multi-timeout)";
}

TEST(IdlePredictorNoAlloc, PpaSteadyStateAllocationsAreLengthIndependent) {
  // The PPA keys its interner and pattern store on heap-backed gram
  // contents, so re-learning after reset legitimately re-allocates those
  // few vectors (the near-zero contract of test_replay_noalloc). What must
  // hold is that the warm count is a small constant set by the *vocabulary*
  // (distinct grams/patterns), independent of how long the stream runs.
  const PpaConfig cfg = predictor_config(PredictorKind::Ppa);
  PpaPredictor short_run(cfg);
  const std::uint64_t warm_short =
      steady_allocs(&short_run, cfg, ppa_periodic_stream(20));
  PpaPredictor long_run(cfg);
  const std::uint64_t warm_long =
      steady_allocs(&long_run, cfg, ppa_periodic_stream(80));
  EXPECT_EQ(warm_short, warm_long);
  EXPECT_LT(warm_long, 24u);
}

}  // namespace
}  // namespace ibpower
