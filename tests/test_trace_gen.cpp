// Tests for the check/ subsystem's seeded random generators: gram streams
// for the PPA differential oracle and synthetic MPI traces for replay
// fuzzing. The load-bearing properties are determinism (a seed fully
// reproduces a failure) and structural validity (every generated trace is
// deadlock-free per Trace::validate()).
#include "check/trace_gen.hpp"

#include <gtest/gtest.h>

#include <set>

namespace ibpower {
namespace {

TEST(GramStream, DeterministicForSeed) {
  GramStreamConfig cfg;
  cfg.seed = 7;
  cfg.noise_prob = 0.2;
  cfg.idle_jitter_sigma = 0.3;
  const GramStreamGenerator a(cfg);
  const GramStreamGenerator b(cfg);
  ASSERT_EQ(a.grams().size(), b.grams().size());
  ASSERT_EQ(a.period(), b.period());
  EXPECT_EQ(a.noisy(), b.noisy());
  for (std::size_t i = 0; i < a.grams().size(); ++i) {
    EXPECT_EQ(a.grams()[i].id, b.grams()[i].id);
    EXPECT_EQ(a.grams()[i].position, b.grams()[i].position);
    EXPECT_EQ(a.grams()[i].begin, b.grams()[i].begin);
    EXPECT_EQ(a.grams()[i].end, b.grams()[i].end);
    EXPECT_EQ(a.grams()[i].preceding_idle, b.grams()[i].preceding_idle);
  }
}

TEST(GramStream, NoiseFreeStreamIsExactlyPeriodic) {
  GramStreamConfig cfg;
  cfg.seed = 11;
  cfg.period_len = 5;
  cfg.vocab = 3;
  cfg.periods = 9;
  const GramStreamGenerator gen(cfg);
  EXPECT_FALSE(gen.noisy());
  ASSERT_EQ(gen.period().size(), 5u);
  ASSERT_EQ(gen.grams().size(), 45u);
  TimeNs prev_end = TimeNs::zero();
  for (std::size_t i = 0; i < gen.grams().size(); ++i) {
    const ClosedGram& g = gen.grams()[i];
    EXPECT_EQ(g.id, gen.period()[i % 5]);
    EXPECT_EQ(g.position, i);
    // Timeline sanity: positive idle, non-overlapping ordered grams.
    EXPECT_GT(g.preceding_idle, TimeNs::zero());
    EXPECT_EQ(g.begin, prev_end + g.preceding_idle);
    EXPECT_GT(g.end, g.begin);
    prev_end = g.end;
  }
}

TEST(GramStream, DistinctPeriodIsPairwiseDistinct) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    GramStreamConfig cfg;
    cfg.seed = seed;
    cfg.vocab = 6;
    cfg.period_len = 5;
    cfg.distinct_period = true;
    const GramStreamGenerator gen(cfg);
    const std::set<GramId> unique(gen.period().begin(), gen.period().end());
    EXPECT_EQ(unique.size(), gen.period().size()) << "seed " << seed;
  }
}

TEST(GramStream, NoiseSubstitutionsSetTheNoisyFlag) {
  GramStreamConfig cfg;
  cfg.seed = 3;
  cfg.vocab = 4;
  cfg.noise_prob = 1.0;  // every position redrawn; some differ w.h.p.
  const GramStreamGenerator gen(cfg);
  EXPECT_TRUE(gen.noisy());
  // noisy() means at least one position deviates from the period.
  bool deviates = false;
  for (std::size_t i = 0; i < gen.grams().size() && !deviates; ++i) {
    deviates = gen.grams()[i].id != gen.period()[i % gen.period().size()];
  }
  EXPECT_TRUE(deviates);
}

TEST(TraceGen, DeterministicForSeed) {
  SyntheticTraceConfig cfg;
  cfg.seed = 42;
  cfg.nranks = 6;
  cfg.noise_prob = 0.3;
  const Trace a = generate_trace(cfg);
  const Trace b = generate_trace(cfg);
  ASSERT_EQ(a.nranks(), b.nranks());
  for (Rank r = 0; r < a.nranks(); ++r) {
    EXPECT_EQ(a.stream(r), b.stream(r)) << "rank " << r;
  }
}

TEST(TraceGen, GeneratedTracesAlwaysValidate) {
  // The replay fuzzer leans on this: every seed must yield a structurally
  // valid, deadlock-free trace across rank counts, phase mixes, and noise.
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    SyntheticTraceConfig cfg;
    cfg.seed = seed;
    cfg.nranks = static_cast<Rank>(2 + seed % 9);
    cfg.phases_per_iteration = static_cast<int>(1 + seed % 5);
    cfg.iterations = 4;
    cfg.noise_prob = (seed % 3 == 0) ? 0.5 : 0.0;
    const Trace tr = generate_trace(cfg);
    EXPECT_EQ(tr.validate(), "") << "seed " << seed;
    EXPECT_GT(tr.total_mpi_calls(), 0u) << "seed " << seed;
  }
}

TEST(TraceGen, StructureIndependentOfRankCount) {
  // The per-iteration phase sequence is drawn before any per-rank jitter,
  // so two traces differing only in nranks share the same phase kinds —
  // checked via the rank-0 MPI call sequence prefix shape (call count per
  // iteration is rank-count-invariant for ring/collective phases).
  SyntheticTraceConfig small;
  small.seed = 9;
  small.nranks = 4;
  small.compute_jitter_sigma = 0.0;
  SyntheticTraceConfig big = small;
  big.nranks = 12;
  const Trace a = generate_trace(small);
  const Trace b = generate_trace(big);
  // Compare rank-0 record type sequences (payload peers differ by design).
  const auto& sa = a.stream(0);
  const auto& sb = b.stream(0);
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i].index(), sb[i].index()) << "record " << i;
  }
}

}  // namespace
}  // namespace ibpower
