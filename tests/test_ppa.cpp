// PPA unit tests, including the paper's Fig. 3 ALYA walkthrough.
#include "core/ppa.hpp"

#include <gtest/gtest.h>

#include "core/gram_builder.hpp"

namespace ibpower {
namespace {

using namespace ibpower::literals;

constexpr MpiCall SR = MpiCall::Sendrecv;   // id 41
constexpr MpiCall AR = MpiCall::Allreduce;  // id 10

PpaConfig test_config() {
  PpaConfig cfg;
  cfg.grouping_threshold = 20_us;
  cfg.t_react = 10_us;
  return cfg;
}

/// Drives GramBuilder + PatternDetector from (call, gap) pairs, mimicking
/// the PMPI stream.
class PpaHarness {
 public:
  explicit PpaHarness(const PpaConfig& cfg = test_config())
      : cfg_(cfg), builder_(cfg.grouping_threshold, &interner_),
        detector_(cfg, &interner_) {}

  /// Returns the armed pattern if this call's gram closure triggered one.
  /// Mirrors the agent: a successful arm disables scanning.
  std::optional<PatternId> call(MpiCall c, TimeNs gap, TimeNs dur = 1_us) {
    ++n_calls_;
    t_ += gap;
    std::optional<PatternId> armed;
    if (auto closed = builder_.on_call_enter(c, t_)) {
      armed = detector_.observe(*closed);
      if (armed) {
        detector_.set_scanning(false);
        armed_at_call_ = n_calls_;
      }
    }
    t_ += dur;
    builder_.on_call_exit(t_);
    return armed;
  }

  GramInterner interner_;
  PpaConfig cfg_;
  GramBuilder builder_;
  PatternDetector detector_;
  TimeNs t_{};
  int n_calls_{0};
  int armed_at_call_{-1};
};

/// One ALYA iteration (paper Fig. 2): 41-41-41 gram, then two 10 grams.
/// Gaps: tiny inside the triplet; `g1` before the first 10, `g2` before the
/// second 10, `g0` before the triplet.
void alya_iteration(PpaHarness& h, std::optional<PatternId>* armed = nullptr,
                    TimeNs g0 = 200_us, TimeNs g1 = 100_us,
                    TimeNs g2 = 80_us) {
  auto track = [&](std::optional<PatternId> a) {
    if (armed && a && !armed->has_value()) *armed = a;
  };
  track(h.call(SR, g0));
  track(h.call(SR, 2_us));
  track(h.call(SR, 2_us));
  track(h.call(AR, g1));
  track(h.call(AR, g2));
}

TEST(Ppa, DetectsAlyaPatternWithinPaperBound) {
  // Paper Fig. 3: prediction becomes true at MPI event 21; our periodicity
  // formulation of the same stated policy fires at event 16 (see ppa.hpp).
  PpaHarness h;
  std::optional<PatternId> armed;
  for (int it = 0; it < 5 && !armed; ++it) alya_iteration(h, &armed);
  ASSERT_TRUE(armed.has_value());
  EXPECT_LE(h.n_calls_, 21);  // at or before the paper's walkthrough
  EXPECT_GE(h.n_calls_, 16);

  const PatternInfo& info = h.detector_.patterns()[*armed];
  EXPECT_TRUE(info.detected);
  ASSERT_EQ(info.length(), 3u);
  EXPECT_EQ(h.interner_.to_string(info.grams[0]), "41-41-41");
  EXPECT_EQ(h.interner_.to_string(info.grams[1]), "10");
  EXPECT_EQ(h.interner_.to_string(info.grams[2]), "10");
  EXPECT_EQ(info.n_mpi_calls, 5u);
}

TEST(Ppa, GapEstimatesMatchGeneratedGaps) {
  PpaHarness h;
  std::optional<PatternId> armed;
  for (int it = 0; it < 6; ++it) alya_iteration(h, &armed);
  ASSERT_TRUE(armed.has_value());
  const PatternInfo& info = h.detector_.patterns()[*armed];
  // gap_after[0]: after 41-41-41 gram -> 100us; gap_after[1]: between the
  // two 10s -> 80us; gap_after[2]: wrap -> 200us.
  ASSERT_TRUE(info.gap_after[0].has_value());
  ASSERT_TRUE(info.gap_after[1].has_value());
  ASSERT_TRUE(info.gap_after[2].has_value());
  EXPECT_EQ(info.gap_after[0].mean(), 100_us);
  EXPECT_EQ(info.gap_after[1].mean(), 80_us);
  EXPECT_EQ(info.gap_after[2].mean(), 200_us);
}

TEST(Ppa, NoDetectionWithoutThreeConsecutiveRepeats) {
  PpaHarness h;
  // The Thue-Morse sequence is cube-free: no block ever appears three times
  // consecutively, so the three-consecutive-appearances policy must never
  // fire on it.
  for (int i = 0; i < 200; ++i) {
    const int parity = __builtin_popcount(static_cast<unsigned>(i)) & 1;
    auto armed = h.call(parity ? SR : AR, 100_us);
    EXPECT_FALSE(armed.has_value()) << "at gram " << i;
  }
  EXPECT_EQ(h.detector_.patterns().detected_ids().size(), 0u);
}

TEST(Ppa, RequiresThreeConsecutiveAppearances) {
  PpaHarness h;
  std::optional<PatternId> armed;
  // Two appearances only: A B A B (grams). Should not detect.
  for (int it = 0; it < 2; ++it) alya_iteration(h, &armed);
  // Push a divergent gram sequence.
  h.call(MpiCall::Bcast, 300_us);
  h.call(MpiCall::Bcast, 300_us);
  EXPECT_FALSE(armed.has_value());
}

TEST(Ppa, FreezesMaxPatternLengthOnFirstDetection) {
  PpaHarness h;
  std::optional<PatternId> armed;
  for (int it = 0; it < 6; ++it) alya_iteration(h, &armed);
  ASSERT_TRUE(armed.has_value());
  EXPECT_EQ(h.detector_.effective_max_length(), 3);
}

TEST(Ppa, RearmsOnFirstReappearanceAfterMispredict) {
  PpaHarness h;
  std::optional<PatternId> armed;
  for (int it = 0; it < 6; ++it) alya_iteration(h, &armed);
  ASSERT_TRUE(armed.has_value());
  ASSERT_FALSE(h.detector_.scanning());  // controller took over

  // Mispredict: a foreign phase appears. In the agent, the divergent call's
  // gram closure is processed *before* scanning resumes, so the stale
  // trailing appearance cannot instantly re-arm; every later closure
  // includes the divergent gram in the trailing window.
  std::optional<PatternId> rearmed;
  {
    auto a = h.call(MpiCall::Bcast, 300_us);  // closure observed unscanned
    EXPECT_FALSE(a.has_value());
    h.detector_.set_scanning(true);  // mispredict handled, PPA relaunched
  }
  for (int k = 0; k < 3; ++k) {
    auto a = h.call(MpiCall::Bcast, 300_us);
    if (a && !rearmed) rearmed = a;
  }
  EXPECT_FALSE(rearmed.has_value());

  // One full reappearance of the known pattern re-arms immediately
  // (paper: "we declare on the first new appearance").
  const int calls_before = h.n_calls_;
  for (int it = 0; it < 2 && !rearmed; ++it) alya_iteration(h, &rearmed);
  ASSERT_TRUE(rearmed.has_value());
  EXPECT_EQ(*rearmed, *armed);
  // Needs at most one appearance (5 calls) + the closing call of the next.
  EXPECT_LE(h.armed_at_call_ - calls_before, 6);
}

TEST(Ppa, ScanningDisabledDoesNoPatternWork) {
  PpaHarness h;
  h.detector_.set_scanning(false);
  for (int it = 0; it < 6; ++it) alya_iteration(h);
  EXPECT_EQ(h.detector_.invocations(), 0u);
  EXPECT_EQ(h.detector_.patterns().detected_ids().size(), 0u);
  // Grams were still recorded (light periodicity updates).
  EXPECT_GT(h.detector_.gram_count(), 0u);
}

TEST(Ppa, BiGramMinimum) {
  // Stream of identical single-call grams: the minimum repeat unit is a
  // bi-gram (paper §III-A), so the detected pattern has length 2.
  PpaHarness h;
  std::optional<PatternId> armed;
  for (int i = 0; i < 10 && !armed; ++i) {
    armed = h.call(AR, 100_us);
  }
  ASSERT_TRUE(armed.has_value());
  EXPECT_EQ(h.detector_.patterns()[*armed].length(), 2u);
}

TEST(Ppa, PrefersSmallestPeriod) {
  // Stream ABABAB...: period 2, not 4.
  PpaHarness h;
  std::optional<PatternId> armed;
  for (int i = 0; i < 12 && !armed; ++i) {
    armed = h.call(i % 2 == 0 ? SR : AR, 100_us);
  }
  ASSERT_TRUE(armed.has_value());
  EXPECT_EQ(h.detector_.patterns()[*armed].length(), 2u);
}

TEST(Ppa, LongerNaturalPeriodDetected) {
  // Period-4 gram pattern A B B C.
  PpaHarness h;
  std::optional<PatternId> armed;
  const MpiCall seq[] = {SR, AR, AR, MpiCall::Bcast};
  for (int i = 0; i < 40 && !armed; ++i) {
    armed = h.call(seq[i % 4], 100_us);
  }
  ASSERT_TRUE(armed.has_value());
  EXPECT_EQ(h.detector_.patterns()[*armed].length(), 4u);
}

TEST(Ppa, FrequencyCountsAppearances) {
  PpaHarness h;
  std::optional<PatternId> armed;
  for (int it = 0; it < 6; ++it) alya_iteration(h, &armed);
  ASSERT_TRUE(armed.has_value());
  const PatternInfo& info = h.detector_.patterns()[*armed];
  EXPECT_GE(info.frequency, 3u);
}

TEST(Ppa, PatternListKeysDistinguishContent) {
  PatternList pl;
  bool created = false;
  const PatternId a = pl.find_or_create({1, 2}, &created);
  EXPECT_TRUE(created);
  const PatternId b = pl.find_or_create({1, 2}, &created);
  EXPECT_FALSE(created);
  EXPECT_EQ(a, b);
  const PatternId c = pl.find_or_create({2, 1}, &created);
  EXPECT_TRUE(created);
  EXPECT_NE(a, c);
  EXPECT_EQ(pl.find({1, 2}), a);
  EXPECT_EQ(pl.find({9, 9}), kInvalidPattern);
}

TEST(Ppa, MarkDetectedIsIdempotent) {
  PatternList pl;
  bool created;
  const PatternId a = pl.find_or_create({1, 2}, &created);
  pl.mark_detected(a);
  pl.mark_detected(a);
  EXPECT_EQ(pl.detected_ids().size(), 1u);
  EXPECT_TRUE(pl[a].detected);
}

TEST(Ppa, SingleRepeatedGramDetectsDoubledGram) {
  // Degenerate stream: one gram repeated forever. The minimal period is 1,
  // but bi-grams are the smallest candidates, so the resolved behavior
  // (pinned here and in test_ppa_paper.cpp, where PaperPpa agrees exactly)
  // is the doubled gram [A, A], fired at the sixth gram — the earliest
  // point where the bi-gram has appeared three times back-to-back.
  GramInterner interner;
  PatternDetector det(test_config(), &interner);
  const GramId A = interner.intern({SR});
  std::optional<PatternId> armed;
  int armed_at = -1;
  for (int i = 0; i < 12; ++i) {
    ClosedGram g;
    g.id = A;
    g.position = static_cast<std::size_t>(i);
    g.preceding_idle = 100_us;
    if (auto id = det.observe(g); id && !armed) {
      armed = id;
      armed_at = i;
      det.set_scanning(false);
    }
  }
  ASSERT_TRUE(armed.has_value());
  EXPECT_EQ(armed_at, 5);
  const PatternInfo& info = det.patterns()[*armed];
  ASSERT_EQ(info.length(), 2u);
  EXPECT_EQ(info.grams[0], A);
  EXPECT_EQ(info.grams[1], A);
}

TEST(GapEstimate, RunningMean) {
  GapEstimate est;
  est.observe(100_us, 0.0);
  est.observe(200_us, 0.0);
  est.observe(300_us, 0.0);
  EXPECT_EQ(est.mean(), 200_us);
  EXPECT_EQ(est.samples(), 3u);
}

TEST(GapEstimate, Ewma) {
  GapEstimate est;
  est.observe(100_us, 0.5);
  est.observe(200_us, 0.5);
  EXPECT_EQ(est.mean(), 150_us);
  est.observe(200_us, 0.5);
  EXPECT_EQ(est.mean(), 175_us);
}

}  // namespace
}  // namespace ibpower
