#include "network/fabric.hpp"

#include <gtest/gtest.h>

#include "sim/experiment.hpp"

namespace ibpower {
namespace {

using namespace ibpower::literals;

FabricConfig test_config() {
  FabricConfig cfg;
  cfg.routing.strategy = RoutingStrategy::Dmodk;  // deterministic for tests
  return cfg;
}

TEST(Fabric, UnicastSameLeafLatency) {
  Fabric fabric(test_config(), 8);
  const auto tx = fabric.unicast(0, 1, 2048, 0_us);
  // Path: 2 links; delivery = last start + ser + hop + mpi latency.
  EXPECT_GT(tx.delivery, 1_us);         // at least MPI latency
  EXPECT_LT(tx.delivery, 10_us);        // small message, short path
  EXPECT_EQ(tx.power_penalty, TimeNs::zero());
  EXPECT_EQ(tx.sender_free, TimeNs{410});
}

TEST(Fabric, CrossLeafSlowerThanSameLeaf) {
  Fabric fabric(test_config(), 40);
  const auto near = fabric.unicast(0, 1, 2048, 0_us);
  const auto far = fabric.unicast(2, 30, 2048, 0_us);  // different leaves
  EXPECT_GT(far.delivery - 0_us, near.delivery - 0_us);
}

TEST(Fabric, DeliveryScalesWithSize) {
  Fabric fabric(test_config(), 8);
  const auto small = fabric.unicast(0, 1, 2048, 0_us);
  const auto big = fabric.unicast(2, 3, 1 << 20, 0_us);
  EXPECT_GT(big.delivery.ns - big.sender_free.ns, 0);
  EXPECT_GT(big.sender_free, small.sender_free);
}

TEST(Fabric, BusyRecordedOnNodeLinks) {
  Fabric fabric(test_config(), 8);
  fabric.unicast(0, 1, 4096, 10_us);
  EXPECT_FALSE(fabric.node_link(0).busy(Direction::Up).empty());
  EXPECT_FALSE(fabric.node_link(1).busy(Direction::Down).empty());
  EXPECT_TRUE(fabric.node_link(2).busy(Direction::Up).empty());
}

TEST(Fabric, PowerPenaltyPropagates) {
  Fabric fabric(test_config(), 8);
  fabric.node_link(0).request_low_power(0_us, 1_ms);
  const auto tx = fabric.unicast(0, 1, 2048, 100_us);
  EXPECT_EQ(tx.power_penalty, 10_us);  // on-demand wake of the source uplink
}

TEST(Fabric, WakeNodeLink) {
  Fabric fabric(test_config(), 8);
  EXPECT_EQ(fabric.wake_node_link(3, 50_us), TimeNs::zero());
  fabric.node_link(3).request_low_power(100_us, 1_ms);
  EXPECT_EQ(fabric.wake_node_link(3, 200_us), 10_us);
  // After the wake the link is full power again.
  EXPECT_EQ(fabric.wake_node_link(3, 300_us), TimeNs::zero());
}

TEST(Fabric, OccupyNodeLinkBothDirections) {
  Fabric fabric(test_config(), 8);
  fabric.occupy_node_link(2, 10_us, 20_us);
  EXPECT_EQ(fabric.node_link(2).busy(Direction::Up).total(), 10_us);
  EXPECT_EQ(fabric.node_link(2).busy(Direction::Down).total(), 10_us);
}

TEST(Fabric, RandomRoutingSpreadsTrunks) {
  FabricConfig cfg;
  cfg.routing.strategy = RoutingStrategy::Random;
  Fabric fabric(cfg, 252);
  for (int i = 0; i < 200; ++i) {
    fabric.unicast(0, 200, 2048, TimeNs::from_us(std::int64_t{i * 10}));
  }
  // Count distinct up-trunks of leaf 0 that saw traffic.
  int used = 0;
  const auto& topo = fabric.topology();
  for (int t = 0; t < topo.num_top_switches(); ++t) {
    if (!fabric.link(topo.trunk_link(0, t)).busy(Direction::Up).empty()) {
      ++used;
    }
  }
  EXPECT_GT(used, 10);  // random routing uses many trunks
}

TEST(Fabric, DeterministicRoutingIsStable) {
  Fabric f1(test_config(), 252), f2(test_config(), 252);
  const auto a = f1.unicast(0, 200, 2048, 0_us);
  const auto b = f2.unicast(0, 200, 2048, 0_us);
  EXPECT_EQ(a.delivery, b.delivery);
}

TEST(Fabric, FinishClosesAllLinks) {
  Fabric fabric(test_config(), 4);
  fabric.unicast(0, 1, 2048, 0_us);
  fabric.finish(1_ms);
  EXPECT_EQ(fabric.node_link(0).end_time(), 1_ms);
  EXPECT_EQ(fabric.link(fabric.topology().num_links() - 1).end_time(), 1_ms);
}

TEST(Fabric, SegmentPipeliningBeatsStoreAndForward) {
  // Large message across leaves: delivery should reflect one serialization
  // plus per-hop segment offsets, not 4 full serializations.
  Fabric fabric(test_config(), 40);
  const Bytes big = 1 << 20;  // ser = ~210us
  const auto tx = fabric.unicast(0, 30, big, 0_us);
  const TimeNs one_ser = fabric.node_link(0).serialization_time(big);
  EXPECT_LT(tx.delivery, one_ser + one_ser);  // far less than 2 sers
  EXPECT_GT(tx.delivery, one_ser);
}

TEST(Fabric, ZeroByteUnicastLeavesLinksIdle) {
  // Metadata-only sends traverse the path but serialize nothing: the
  // delivery still pays hop latency, yet idle-gap extraction must see the
  // uplink as one uninterrupted gap — no phantom busy segments.
  Fabric fabric(test_config(), 252);
  const auto tx = fabric.unicast(0, 200, 0, 100_us);
  EXPECT_GT(tx.delivery, 100_us);  // latency still applies
  EXPECT_TRUE(fabric.node_link(0).busy(Direction::Up).empty());

  fabric.finish(1_ms);
  const auto gaps = node_link_idle_gaps(fabric, 0, 1_ms);
  ASSERT_EQ(gaps.size(), 1u);
  EXPECT_EQ(gaps[0].begin, TimeNs::zero());
  EXPECT_EQ(gaps[0].end, 1_ms);
}

TEST(Fabric, ResetAcrossTopologyShapeChange) {
  // reset() may change the XGFT shape entirely; the reused fabric must be
  // indistinguishable from a freshly constructed one.
  FabricConfig small = test_config();
  small.xgft = XgftParams{8, 4, 1, 6};  // 32 nodes, 24 trunks
  Fabric reused(test_config(), 252);
  reused.unicast(0, 200, 2048, 0_us);
  reused.reset(small, 32);

  Fabric fresh(small, 32);
  EXPECT_EQ(reused.topology().num_nodes(), 32);
  EXPECT_EQ(reused.topology().num_links(), fresh.topology().num_links());
  for (int i = 0; i < 8; ++i) {
    const TimeNs ready = TimeNs::from_us(std::int64_t{i} * 40);
    const auto a = reused.unicast(i, 31 - i, 2048, ready);
    const auto b = fresh.unicast(i, 31 - i, 2048, ready);
    EXPECT_EQ(a.delivery, b.delivery) << "message " << i;
    EXPECT_EQ(a.sender_free, b.sender_free) << "message " << i;
  }
  // And back up to the paper topology: state from the small shape is gone.
  reused.reset(test_config(), 252);
  Fabric fresh_big(test_config(), 252);
  EXPECT_EQ(reused.unicast(0, 200, 2048, 0_us).delivery,
            fresh_big.unicast(0, 200, 2048, 0_us).delivery);
}

TEST(Fabric, ResetShapeChangeWithTrunkPolicy) {
  // Shape changes must also re-arm the trunk sleep controller for the new
  // trunk count.
  FabricConfig cfg = test_config();
  cfg.trunk.kind = TrunkPolicyKind::Timeout;
  FabricConfig small = cfg;
  small.xgft = XgftParams{8, 4, 1, 6};
  Fabric fabric(cfg, 252);
  fabric.reset(small, 32);
  const auto& topo = fabric.topology();
  // All 24 trunks of the small shape sleep when idle...
  EXPECT_EQ(fabric.link(topo.num_nodes()).mode_at(500_us),
            LinkPowerMode::LowPower);
  EXPECT_EQ(fabric.link(topo.num_links() - 1).mode_at(500_us),
            LinkPowerMode::LowPower);
  // ...and a message still pays the on-demand wake.
  const auto tx = fabric.unicast(0, 31, 2048, 500_us);
  EXPECT_GT(tx.power_penalty, TimeNs::zero());
}

}  // namespace
}  // namespace ibpower
