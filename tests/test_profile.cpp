#include "trace/profile.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "workloads/app_model.hpp"

namespace ibpower {
namespace {

using namespace ibpower::literals;

TEST(Profile, CountsRecordsByKind) {
  Trace t("demo", 2);
  t.push(0, ComputeRecord{100_us});
  t.push(0, SendRecord{1, 2048, 0});
  t.push(1, RecvRecord{0, 2048, 0});
  t.push(0, CollectiveRecord{MpiCall::Allreduce, 64});
  t.push(1, CollectiveRecord{MpiCall::Allreduce, 64});
  const TraceProfile p = profile_trace(t);
  EXPECT_EQ(p.ranks, 2u);
  EXPECT_EQ(p.total_records, 5u);
  EXPECT_EQ(p.mpi_calls, 4u);
  EXPECT_EQ(p.p2p_messages, 1u);
  EXPECT_EQ(p.p2p_bytes_total, 2048);
  EXPECT_EQ(p.collectives, 2u);
  EXPECT_EQ(p.collective_bytes_total, 128);
  EXPECT_EQ(p.call_mix.at(MpiCall::Send), 1u);
  EXPECT_EQ(p.call_mix.at(MpiCall::Allreduce), 2u);
  EXPECT_EQ(p.total_compute, 100_us);
}

TEST(Profile, SizeHistogramBuckets) {
  Trace t("demo", 2);
  t.push(0, SendRecord{1, 1024, 0});   // bucket 10
  t.push(0, SendRecord{1, 1025, 1});   // bucket 10
  t.push(0, SendRecord{1, 2048, 2});   // bucket 11
  for (int tag = 0; tag < 3; ++tag) {
    t.push(1, RecvRecord{0, tag == 2 ? 2048 : (tag == 0 ? 1024 : 1025), tag});
  }
  const TraceProfile p = profile_trace(t);
  EXPECT_EQ(p.size_histogram[10], 2u);
  EXPECT_EQ(p.size_histogram[11], 1u);
}

TEST(Profile, NonblockingSendsCounted) {
  Trace t("demo", 2);
  t.push(0, IsendRecord{1, 4096, 0, 1});
  t.push(0, WaitRecord{1});
  t.push(1, IrecvRecord{0, 4096, 0, 1});
  t.push(1, WaitRecord{1});
  const TraceProfile p = profile_trace(t);
  EXPECT_EQ(p.p2p_messages, 1u);  // isend counts; irecv/waits do not
  EXPECT_EQ(p.mpi_calls, 4u);
  EXPECT_EQ(p.call_mix.at(MpiCall::Wait), 2u);
}

TEST(Profile, RealWorkloadsProfileSanely) {
  for (const auto& name : app_names()) {
    const auto app = make_app(name);
    WorkloadParams params;
    params.nranks = (name == "nas_bt" || name == "nas_lu") ? 9 : 8;
    params.iterations = 5;
    const TraceProfile p = profile_trace(app->generate(params));
    EXPECT_GT(p.mpi_calls, 0u) << name;
    EXPECT_GT(p.total_compute, TimeNs::zero()) << name;
    EXPECT_GT(p.p2p_messages, 0u) << name;
    EXPECT_GT(p.collectives, 0u) << name;
    // Paper call ids present where expected.
    if (name == "alya") {
      EXPECT_GT(p.call_mix.at(MpiCall::Sendrecv), 0u);
      EXPECT_GT(p.call_mix.at(MpiCall::Allreduce), 0u);
    }
  }
}

TEST(Profile, PrintContainsKeyLines) {
  const auto app = make_app("alya");
  WorkloadParams params;
  params.nranks = 4;
  params.iterations = 3;
  const TraceProfile p = profile_trace(app->generate(params));
  std::ostringstream os;
  print_profile(os, p);
  const std::string out = os.str();
  EXPECT_NE(out.find("ranks"), std::string::npos);
  EXPECT_NE(out.find("MPI_Sendrecv="), std::string::npos);
  EXPECT_NE(out.find("message sizes"), std::string::npos);
}

}  // namespace
}  // namespace ibpower
