// Golden regression pinning the Fig. 9 reproduction (displacement 1%) at
// the paper grid's smallest sizes with reduced iterations, so the full
// experiment pipeline — workload generation, baseline + managed replay,
// PPA, power-mode control, power model — is guarded end to end by ctest.
//
// The bands are centered on the values measured at the time this test was
// written (seed 42, 30 iterations; the pipeline is deterministic, so the
// slack only absorbs deliberate small model refinements). A change that
// moves a cell outside its band is a real behavior change and must update
// the band knowingly. EXPERIMENTS.md tracks the full-grid counterpart.
#include <gtest/gtest.h>

#include <string>

#include "sim/experiment.hpp"
#include "workloads/app_model.hpp"

namespace ibpower {
namespace {

struct GoldenCell {
  const char* app;
  int nranks;
  double savings_pct;   // measured at 30 iterations, displacement 1%
  double savings_band;  // +/- tolerance (percentage points)
};

// Paper Fig. 9a smallest-size ordering for reference: NAS BT 51.3,
// WRF 38.1, GROMACS 36.0, NAS MG 27.7, ALYA 14.5.
constexpr GoldenCell kGolden[] = {
    {"gromacs", 8, 33.66, 1.5},
    {"alya", 8, 15.96, 1.5},
    {"wrf", 8, 26.90, 1.5},
    {"nas_bt", 9, 43.79, 1.5},
    {"nas_mg", 8, 16.75, 1.5},
};

ExperimentResult run_cell(const GoldenCell& cell) {
  ExperimentConfig cfg;
  cfg.app = cell.app;
  cfg.workload.nranks = cell.nranks;
  cfg.workload.iterations = 30;
  cfg.workload.seed = 42;
  cfg.ppa.grouping_threshold = default_gt(cell.app, cell.nranks);
  cfg.ppa.displacement_factor = 0.01;
  return run_experiment(cfg);
}

TEST(GoldenRegression, Fig9SmallSizeSavingsWithinBands) {
  double nas_bt = 0.0, alya = 0.0;
  for (const GoldenCell& cell : kGolden) {
    const ExperimentResult r = run_cell(cell);
    const double savings = r.power.switch_savings_pct;
    EXPECT_NEAR(savings, cell.savings_pct, cell.savings_band) << cell.app;
    // Hard physical bounds regardless of band drift.
    EXPECT_GT(savings, 0.0) << cell.app;
    EXPECT_LT(savings, 57.0) << cell.app;  // (1 - 0.43) * 100 ceiling
    // Managed runs may only slow the application down, and at displacement
    // 1% the paper reports sub-percent increases across the board.
    EXPECT_GE(r.time_increase_pct, 0.0) << cell.app;
    EXPECT_LT(r.time_increase_pct, 5.0) << cell.app;
    EXPECT_GT(r.hit_rate_pct, 0.0) << cell.app;
    if (std::string(cell.app) == "nas_bt") nas_bt = savings;
    if (std::string(cell.app) == "alya") alya = savings;
  }
  // Fig. 9 shape: NAS BT saves the most at the smallest size, ALYA is near
  // the bottom (its savings are the paper's smallest-app column).
  for (const GoldenCell& cell : kGolden) {
    if (std::string(cell.app) == "nas_bt") continue;
    EXPECT_LT(cell.savings_pct, nas_bt) << cell.app;
  }
  EXPECT_LT(alya, 20.0);
}

TEST(GoldenRegression, Fig9CellIsDeterministic) {
  // The band test above is only meaningful because reruns are bit-stable.
  const ExperimentResult a = run_cell(kGolden[1]);
  const ExperimentResult b = run_cell(kGolden[1]);
  EXPECT_TRUE(bit_identical(a, b));
}

}  // namespace
}  // namespace ibpower
