#include "core/power_mode_control.hpp"

#include <gtest/gtest.h>

namespace ibpower {
namespace {

using namespace ibpower::literals;
using Verdict = PowerModeController::Verdict;

constexpr MpiCall SR = MpiCall::Sendrecv;
constexpr MpiCall AR = MpiCall::Allreduce;

class PowerModeControlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cfg_.grouping_threshold = 20_us;
    cfg_.t_react = 10_us;
    cfg_.displacement_factor = 0.10;
    cfg_.min_low_power_duration = 10_us;

    // Pattern: [41,41,41], [10], [10]; gaps 100us, 80us, wrap 200us.
    const GramId triplet = interner_.intern({SR, SR, SR});
    const GramId single = interner_.intern({AR});
    bool created;
    pid_ = patterns_.find_or_create({triplet, single, single}, &created);
    PatternInfo& info = patterns_[pid_];
    info.gap_after[0].observe(100_us, 0.0);
    info.gap_after[1].observe(80_us, 0.0);
    info.gap_after[2].observe(200_us, 0.0);
    patterns_.mark_detected(pid_);
  }

  PowerModeController make() { return PowerModeController(cfg_, &interner_); }

  PpaConfig cfg_;
  GramInterner interner_;
  PatternList patterns_;
  PatternId pid_{};
};

TEST_F(PowerModeControlTest, ArmVerifiesFirstCall) {
  auto ctl = make();
  EXPECT_FALSE(ctl.arm(&patterns_, pid_, AR));  // pattern starts with SR
  EXPECT_FALSE(ctl.active());
  EXPECT_TRUE(ctl.arm(&patterns_, pid_, SR));
  EXPECT_TRUE(ctl.active());
  EXPECT_EQ(ctl.pattern_id(), pid_);
}

TEST_F(PowerModeControlTest, WalksFullAppearanceAndEmitsRequests) {
  auto ctl = make();
  ASSERT_TRUE(ctl.arm(&patterns_, pid_, SR));

  // Arming consumed SR #1. Its exit: gram not complete yet.
  EXPECT_FALSE(ctl.on_call_exit().has_value());
  // SR #2, #3 inside the gram (gaps < GT).
  EXPECT_EQ(ctl.on_call_enter(SR, 2_us), Verdict::Ok);
  EXPECT_FALSE(ctl.on_call_exit().has_value());
  EXPECT_EQ(ctl.on_call_enter(SR, 2_us), Verdict::Ok);
  // Gram 0 complete at this exit: request for the 100us boundary.
  const auto req0 = ctl.on_call_exit();
  ASSERT_TRUE(req0.has_value());
  EXPECT_EQ(req0->predicted_idle, 100_us);
  // safety = 100*0.10 + 10 = 20us -> low duration 80us.
  EXPECT_EQ(req0->low_power_duration, 80_us);

  // AR arrives after a real gap.
  EXPECT_EQ(ctl.on_call_enter(AR, 100_us), Verdict::Ok);
  const auto req1 = ctl.on_call_exit();
  ASSERT_TRUE(req1.has_value());
  EXPECT_EQ(req1->predicted_idle, 80_us);
  EXPECT_EQ(req1->low_power_duration, 80_us - 8_us - 10_us);

  // Second AR; its boundary is the wrap gap (200us).
  EXPECT_EQ(ctl.on_call_enter(AR, 80_us), Verdict::Ok);
  const auto req2 = ctl.on_call_exit();
  ASSERT_TRUE(req2.has_value());
  EXPECT_EQ(req2->predicted_idle, 200_us);
  EXPECT_EQ(req2->low_power_duration, 200_us - 20_us - 10_us);

  // Wraps to gram 0 again.
  EXPECT_EQ(ctl.on_call_enter(SR, 200_us), Verdict::Ok);
  EXPECT_TRUE(ctl.active());
}

TEST_F(PowerModeControlTest, WrongCallIsMispredict) {
  auto ctl = make();
  ASSERT_TRUE(ctl.arm(&patterns_, pid_, SR));
  EXPECT_EQ(ctl.on_call_enter(AR, 2_us), Verdict::Mispredict);
  EXPECT_FALSE(ctl.active());
}

TEST_F(PowerModeControlTest, UnexpectedGapMidGramIsMispredict) {
  auto ctl = make();
  ASSERT_TRUE(ctl.arm(&patterns_, pid_, SR));
  // Second SR should be < GT away; a large gap breaks the gram structure.
  EXPECT_EQ(ctl.on_call_enter(SR, 50_us), Verdict::Mispredict);
  EXPECT_FALSE(ctl.active());
}

TEST_F(PowerModeControlTest, MissingGapAtBoundaryIsMispredict) {
  auto ctl = make();
  ASSERT_TRUE(ctl.arm(&patterns_, pid_, SR));
  (void)ctl.on_call_exit();
  ASSERT_EQ(ctl.on_call_enter(SR, 2_us), Verdict::Ok);
  ASSERT_EQ(ctl.on_call_enter(SR, 2_us), Verdict::Ok);
  (void)ctl.on_call_exit();
  // AR expected after >= GT, but arrives grouped.
  EXPECT_EQ(ctl.on_call_enter(AR, 5_us), Verdict::Mispredict);
}

TEST_F(PowerModeControlTest, ObservedGapsUpdateEstimates) {
  cfg_.gap_ewma_alpha = 0.0;  // running mean
  auto ctl = make();
  ASSERT_TRUE(ctl.arm(&patterns_, pid_, SR));
  (void)ctl.on_call_exit();
  ASSERT_EQ(ctl.on_call_enter(SR, 2_us), Verdict::Ok);
  ASSERT_EQ(ctl.on_call_enter(SR, 2_us), Verdict::Ok);
  (void)ctl.on_call_exit();
  // Boundary 0 observed at 140us: mean of {100, 140} = 120.
  ASSERT_EQ(ctl.on_call_enter(AR, 140_us), Verdict::Ok);
  EXPECT_EQ(patterns_[pid_].gap_after[0].mean(), 120_us);
}

TEST_F(PowerModeControlTest, BorderlinePredictionEmitted) {
  // Boundary-1 gap of 25us: safety = 2.5 + 10 -> low = 12.5us >= 10us min.
  PatternInfo& info = patterns_[pid_];
  info.gap_after[1] = GapEstimate{};
  info.gap_after[1].observe(25_us, 0.0);
  auto ctl = make();
  ASSERT_TRUE(ctl.arm(&patterns_, pid_, SR));
  (void)ctl.on_call_exit();
  ASSERT_EQ(ctl.on_call_enter(SR, 2_us), Verdict::Ok);
  ASSERT_EQ(ctl.on_call_enter(SR, 2_us), Verdict::Ok);
  (void)ctl.on_call_exit();
  ASSERT_EQ(ctl.on_call_enter(AR, 100_us), Verdict::Ok);
  const auto req = ctl.on_call_exit();
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->low_power_duration, 25_us - 2500_ns - 10_us);
}

TEST_F(PowerModeControlTest, TooShortPredictionSuppressed) {
  // Boundary-1 gap of 20us: low = 20 - 2 - 10 = 8us < 10us min: no request.
  PatternInfo& info = patterns_[pid_];
  info.gap_after[1] = GapEstimate{};
  info.gap_after[1].observe(20_us, 0.0);
  auto ctl = make();
  ASSERT_TRUE(ctl.arm(&patterns_, pid_, SR));
  (void)ctl.on_call_exit();
  ASSERT_EQ(ctl.on_call_enter(SR, 2_us), Verdict::Ok);
  ASSERT_EQ(ctl.on_call_enter(SR, 2_us), Verdict::Ok);
  (void)ctl.on_call_exit();
  ASSERT_EQ(ctl.on_call_enter(AR, 100_us), Verdict::Ok);
  EXPECT_FALSE(ctl.on_call_exit().has_value());
  // The controller still advances: the next expected gram is the second AR.
  ASSERT_EQ(ctl.on_call_enter(AR, 20_us), Verdict::Ok);
  EXPECT_TRUE(ctl.active());
}

TEST_F(PowerModeControlTest, DisarmStopsActivity) {
  auto ctl = make();
  ASSERT_TRUE(ctl.arm(&patterns_, pid_, SR));
  ctl.disarm();
  EXPECT_FALSE(ctl.active());
  EXPECT_FALSE(ctl.on_call_exit().has_value());
}

TEST_F(PowerModeControlTest, SingleCallGramArmsWithBoundaryPending) {
  // Pattern of two single-call grams: [10], [41].
  bool created;
  const PatternId pid2 = patterns_.find_or_create(
      {interner_.intern({AR}), interner_.intern({SR})}, &created);
  patterns_[pid2].gap_after[0].observe(60_us, 0.0);
  patterns_[pid2].gap_after[1].observe(90_us, 0.0);
  auto ctl = make();
  ASSERT_TRUE(ctl.arm(&patterns_, pid2, AR));
  // The arming call alone completes gram 0: its exit must emit a request.
  const auto req = ctl.on_call_exit();
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->predicted_idle, 60_us);
}

}  // namespace
}  // namespace ibpower
