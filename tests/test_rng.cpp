#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace ibpower {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, Uniform01Range) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Rng rng(9);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, UniformBelowBounds) {
  Rng rng(11);
  std::vector<int> histogram(10, 0);
  for (int i = 0; i < 50000; ++i) {
    const auto v = rng.uniform_below(10);
    ASSERT_LT(v, 10u);
    ++histogram[static_cast<std::size_t>(v)];
  }
  for (const int count : histogram) {
    EXPECT_NEAR(count, 5000, 500);  // roughly uniform
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliProbability) {
  Rng rng(17);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(19);
  double sum = 0.0, sum2 = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal(5.0, 2.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / kN;
  const double var = sum2 / kN - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, LognormalMedian) {
  Rng rng(23);
  std::vector<double> samples;
  constexpr int kN = 50001;
  samples.reserve(kN);
  for (int i = 0; i < kN; ++i) samples.push_back(rng.lognormal(100.0, 0.5));
  std::nth_element(samples.begin(), samples.begin() + kN / 2, samples.end());
  EXPECT_NEAR(samples[kN / 2], 100.0, 5.0);
  for (const double s : samples) EXPECT_GT(s, 0.0);
}

TEST(Rng, ExponentialMean) {
  Rng rng(29);
  double sum = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(42.0);
  EXPECT_NEAR(sum / kN, 42.0, 1.0);
}

TEST(Rng, SplitStreamsAreIndependentAndDeterministic) {
  Rng parent1(31), parent2(31);
  Rng child1 = parent1.split();
  Rng child2 = parent2.split();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(child1(), child2());
  // Child differs from a fresh parent stream.
  Rng parent3(31);
  Rng child3 = parent3.split();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (child3() == parent3()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, ReseedReproduces) {
  Rng rng(37);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(rng());
  rng.reseed(37);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng(), first[static_cast<std::size_t>(i)]);
}

}  // namespace
}  // namespace ibpower
