// ReplayDrainStats — the always-compiled channel/rendezvous counters that
// surface the replay drain statistics in release builds (they used to be
// observable only through the IBPOWER_AUDIT=ON drain checks). The
// regression contract: these counters obey the exact conservation laws
// audit_drain enforces, in every build type — this same test runs in both
// the plain tier-1 CI job and the sanitizer+audit job, so a release/audit
// divergence fails one of the two.
#include "sim/replay.hpp"

#include <gtest/gtest.h>

#include "check/trace_gen.hpp"

namespace ibpower {
namespace {

ReplayResult run_seeded(std::uint64_t seed, bool managed, bool rendezvous,
                        ReplayDrainStats* live = nullptr) {
  SyntheticTraceConfig tcfg;
  tcfg.seed = seed;
  tcfg.nranks = 6;
  tcfg.iterations = 8;
  if (rendezvous) tcfg.max_bytes = 256 * 1024;  // beyond the eager threshold

  const Trace trace = generate_trace(tcfg);
  ReplayOptions opt;
  opt.fabric.routing.strategy = RoutingStrategy::Dmodk;
  opt.enable_power_management = managed;
  ReplayEngine engine(&trace, opt);
  const ReplayResult rr = engine.run();
  EXPECT_EQ(engine.audit_drain(), "") << "seed " << seed;
  if (live != nullptr) *live = engine.drain_stats();
  return rr;
}

void expect_conserved(const ReplayDrainStats& d, const ReplayResult& rr) {
  EXPECT_EQ(d.messages_enqueued, d.messages_matched);
  EXPECT_EQ(d.recvs_waited, d.recvs_satisfied);
  EXPECT_EQ(d.rendezvous_blocked, d.rendezvous_resumed);
  EXPECT_EQ(d.sends_eager + d.sends_rendezvous, rr.messages_sent);
}

TEST(ReplayDrainStats, ConservedOnSeededTraces) {
  for (const std::uint64_t seed : {1u, 5u, 19u, 67u}) {
    for (const bool managed : {false, true}) {
      ReplayDrainStats live;
      const ReplayResult rr = run_seeded(seed, managed, false, &live);
      // The result carries the same counters the engine accumulated.
      EXPECT_EQ(rr.drain, live);
      expect_conserved(rr.drain, rr);
      EXPECT_GT(rr.drain.channels_created, 0u);
      EXPECT_GT(rr.drain.sends_eager + rr.drain.sends_rendezvous, 0u);
    }
  }
}

TEST(ReplayDrainStats, RendezvousPathExercised) {
  const ReplayResult rr = run_seeded(7, false, true);
  expect_conserved(rr.drain, rr);
  EXPECT_GT(rr.drain.sends_rendezvous, 0u)
      << "large messages should take the rendezvous protocol";
  // Rendezvous bookkeeping balances even when senders had to park.
  EXPECT_EQ(rr.drain.rendezvous_blocked, rr.drain.rendezvous_resumed);
}

TEST(ReplayDrainStats, ProtocolCountersLegInvariant) {
  // Power management changes timing — so which side of a match parks first
  // (enqueued vs waited) can shift between legs — but never the protocol
  // structure: channel population and eager/rendezvous classification
  // depend only on the trace and the threshold.
  ReplayDrainStats base, managed;
  (void)run_seeded(13, false, false, &base);
  (void)run_seeded(13, true, false, &managed);
  EXPECT_EQ(base.channels_created, managed.channels_created);
  EXPECT_EQ(base.sends_eager, managed.sends_eager);
  EXPECT_EQ(base.sends_rendezvous, managed.sends_rendezvous);
}

TEST(ReplayDrainStats, DeterministicAcrossRepeats) {
  ReplayDrainStats first;
  (void)run_seeded(29, true, true, &first);
  for (int repeat = 0; repeat < 3; ++repeat) {
    ReplayDrainStats again;
    (void)run_seeded(29, true, true, &again);
    EXPECT_EQ(first, again) << "repeat " << repeat;
  }
}

}  // namespace
}  // namespace ibpower
