// Property tests of the pattern-prediction algorithm on randomized
// periodic streams.
#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <vector>

#include "core/gram_builder.hpp"
#include "core/idle_predictor.hpp"
#include "core/pmpi_agent.hpp"
#include "core/ppa.hpp"
#include "util/rng.hpp"

namespace ibpower {
namespace {

using namespace ibpower::literals;

PpaConfig prop_config() {
  PpaConfig cfg;
  cfg.grouping_threshold = 20_us;
  cfg.t_react = 10_us;
  cfg.interception_overhead = TimeNs::zero();
  cfg.ppa_invocation_overhead = TimeNs::zero();
  return cfg;
}

const MpiCall kCalls[] = {MpiCall::Send,   MpiCall::Recv,     MpiCall::Bcast,
                          MpiCall::Reduce, MpiCall::Sendrecv, MpiCall::Allreduce,
                          MpiCall::Gather, MpiCall::Barrier};

struct StreamSpec {
  int period;             // grams per pattern appearance
  std::vector<MpiCall> gram_first_call;  // one call per gram (single-call grams)
};

StreamSpec random_spec(Rng& rng) {
  StreamSpec spec;
  spec.period = 2 + static_cast<int>(rng.uniform_below(6));  // 2..7
  for (int i = 0; i < spec.period; ++i) {
    spec.gram_first_call.push_back(kCalls[rng.uniform_below(8)]);
  }
  // A constant sequence would collapse to a shorter period; force at least
  // two distinct calls for periods > 1 (otherwise smallest-L wins, which is
  // also correct but harder to assert on).
  spec.gram_first_call[0] = MpiCall::Sendrecv;
  spec.gram_first_call[static_cast<std::size_t>(spec.period - 1)] =
      MpiCall::Allreduce;
  return spec;
}

class PpaStreamProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PpaStreamProperty, PeriodicStreamsArePredicted) {
  Rng rng(GetParam());
  const StreamSpec spec = random_spec(rng);

  PmpiAgent agent(prop_config(), nullptr);
  TimeNs t{};
  const int appearances = 30;
  for (int a = 0; a < appearances; ++a) {
    for (const MpiCall c : spec.gram_first_call) {
      t += TimeNs::from_us(rng.uniform(60.0, 70.0));  // gaps >> GT
      (void)agent.on_call_enter(c, t);
      t += 1_us;
      agent.on_call_exit(c, t);
    }
  }
  agent.finish();

  const AgentStats& s = agent.stats();
  EXPECT_GE(s.arms, 1u) << "period " << spec.period;
  EXPECT_EQ(s.pattern_mispredicts, 0u);
  // Detection takes at most consecutive_appearances_to_detect + 1
  // appearances (the detected period may be a rotation/divisor of the
  // spec's); everything after must be predicted.
  const auto total = static_cast<double>(s.total_calls);
  EXPECT_GT(s.hit_rate_pct(), 100.0 * (total - 8.0 * spec.period) / total);

  // The detected pattern's length divides (or equals) the spec period.
  ASSERT_FALSE(agent.detector().patterns().detected_ids().empty());
  const PatternInfo& info = agent.detector().patterns()
      [agent.detector().patterns().detected_ids().front()];
  EXPECT_EQ(spec.period % static_cast<int>(info.length()), 0)
      << "detected length " << info.length() << " vs period " << spec.period;
}

TEST_P(PpaStreamProperty, NoisyStreamsKeepStatsSane) {
  Rng rng(GetParam() ^ 0xabcdef);
  PmpiAgent agent(prop_config(), nullptr);
  TimeNs t{};
  for (int i = 0; i < 3000; ++i) {
    const MpiCall c = kCalls[rng.uniform_below(8)];
    t += TimeNs::from_us(rng.bernoulli(0.5) ? rng.uniform(0.5, 15.0)
                                            : rng.uniform(25.0, 500.0));
    (void)agent.on_call_enter(c, t);
    t += TimeNs::from_us(rng.uniform(0.5, 5.0));
    agent.on_call_exit(c, t);
  }
  agent.finish();
  const AgentStats& s = agent.stats();
  EXPECT_EQ(s.total_calls, 3000u);
  EXPECT_LE(s.predicted_calls, s.total_calls);
  EXPECT_LE(s.pattern_mispredicts, s.arms + 1);
  EXPECT_LE(s.power_requests, s.total_calls);
  EXPECT_GE(s.requested_low_power_total, TimeNs::zero());
}

TEST_P(PpaStreamProperty, GapEstimatesBracketObservations) {
  Rng rng(GetParam() ^ 0x777);
  PmpiAgent agent(prop_config(), nullptr);
  TimeNs t{};
  const double lo = 80.0, hi = 120.0;
  for (int a = 0; a < 40; ++a) {
    for (const MpiCall c : {MpiCall::Sendrecv, MpiCall::Allreduce}) {
      t += TimeNs::from_us(rng.uniform(lo, hi));
      (void)agent.on_call_enter(c, t);
      t += 1_us;
      agent.on_call_exit(c, t);
    }
  }
  agent.finish();
  for (const PatternId id : agent.detector().patterns().detected_ids()) {
    const PatternInfo& info = agent.detector().patterns()[id];
    for (const GapEstimate& est : info.gap_after) {
      if (!est.has_value()) continue;
      EXPECT_GE(est.mean(), TimeNs::from_us(lo - 1.0));
      EXPECT_LE(est.mean(), TimeNs::from_us(hi + 2.0));
    }
  }
}

TEST_P(PpaStreamProperty, AmbiguousPeriodsResolveToSmallestLength) {
  // Ambiguity by construction: a period of L pairwise-distinct calls means
  // L is the unique smallest repeating unit, while 2L, 3L, ... also qualify
  // as periods of the very same stream. Alg. 2 scans lengths ascending, so
  // the detected pattern must pin exactly L — a regression toward any
  // multiple (e.g. scanning 2L first, or freezing max length too early)
  // fails here. Driven through the IdlePredictor interface the agent now
  // uses.
  Rng rng(GetParam() ^ 0x5eed);
  std::vector<MpiCall> calls(std::begin(kCalls), std::end(kCalls));
  for (std::size_t i = calls.size() - 1; i > 0; --i) {
    std::swap(calls[i], calls[rng.uniform_below(i + 1)]);
  }
  const int period = 2 + static_cast<int>(rng.uniform_below(6));  // 2..7
  calls.resize(static_cast<std::size_t>(period));

  PpaPredictor ppa(prop_config());
  TimeNs t{};
  TimeNs prev_exit{};
  bool first = true;
  for (int a = 0; a < 30; ++a) {
    for (const MpiCall c : calls) {
      t += TimeNs::from_us(rng.uniform(60.0, 70.0));  // gaps >> GT
      (void)ppa.on_call_enter(c, t, first ? TimeNs::zero() : t - prev_exit,
                              first);
      first = false;
      t += 1_us;
      (void)ppa.on_call_exit(c, t);
      prev_exit = t;
    }
  }
  (void)ppa.finish();

  ASSERT_FALSE(ppa.detector().patterns().detected_ids().empty());
  const PatternInfo& info =
      ppa.detector().patterns()[ppa.detector().patterns()
                                    .detected_ids()
                                    .front()];
  EXPECT_EQ(static_cast<int>(info.length()), period)
      << "detected a multiple of the smallest period";
}

INSTANTIATE_TEST_SUITE_P(Seeds, PpaStreamProperty,
                         ::testing::Range<std::uint64_t>(1, 17));

}  // namespace
}  // namespace ibpower
