#include "trace/trace_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace ibpower {
namespace {

using namespace ibpower::literals;

Trace sample_trace() {
  Trace t("sample", 3);
  t.push(0, ComputeRecord{123_us});
  t.push(0, SendRecord{1, 2048, 5});
  t.push(1, RecvRecord{0, 2048, 5});
  t.push(2, ComputeRecord{7_us});
  for (Rank r = 0; r < 3; ++r) {
    t.push(r, SendrecvRecord{(r + 1) % 3, (r + 2) % 3, 512, 1});
    t.push(r, CollectiveRecord{MpiCall::Allreduce, 8});
  }
  return t;
}

TEST(TraceIo, RoundTripPreservesEverything) {
  const Trace original = sample_trace();
  std::stringstream ss;
  write_trace(ss, original);
  const Trace loaded = read_trace(ss);

  EXPECT_EQ(loaded.app_name(), original.app_name());
  ASSERT_EQ(loaded.nranks(), original.nranks());
  for (Rank r = 0; r < original.nranks(); ++r) {
    ASSERT_EQ(loaded.stream(r).size(), original.stream(r).size()) << r;
    for (std::size_t i = 0; i < original.stream(r).size(); ++i) {
      EXPECT_EQ(loaded.stream(r)[i], original.stream(r)[i])
          << "rank " << r << " record " << i;
    }
  }
}

TEST(TraceIo, RoundTripValidity) {
  std::stringstream ss;
  write_trace(ss, sample_trace());
  EXPECT_EQ(read_trace(ss).validate(), "");
}

TEST(TraceIo, ReadRejectsEmpty) {
  std::stringstream ss("# just a comment\n");
  EXPECT_THROW(read_trace(ss), TraceFormatError);
}

TEST(TraceIo, ReadRejectsRecordOutsideRank) {
  std::stringstream ss("app x\nranks 2\nc 100\n");
  EXPECT_THROW(read_trace(ss), TraceFormatError);
}

TEST(TraceIo, ReadRejectsBadRankId) {
  std::stringstream ss("app x\nranks 2\nrank 5\nend\n");
  EXPECT_THROW(read_trace(ss), TraceFormatError);
}

TEST(TraceIo, ReadRejectsUnknownRecord) {
  std::stringstream ss("app x\nranks 1\nrank 0\nz 1 2 3\nend\n");
  EXPECT_THROW(read_trace(ss), TraceFormatError);
}

TEST(TraceIo, ReadRejectsNegativeCompute) {
  std::stringstream ss("app x\nranks 1\nrank 0\nc -5\nend\n");
  EXPECT_THROW(read_trace(ss), TraceFormatError);
}

TEST(TraceIo, ReadRejectsNonCollectiveId) {
  // 1 is MPI_Send: not a collective.
  std::stringstream ss("app x\nranks 1\nrank 0\ng 1 8\nend\n");
  EXPECT_THROW(read_trace(ss), TraceFormatError);
}

TEST(TraceIo, SkipsCommentsAndBlankLines) {
  std::stringstream ss(
      "# header\n\napp demo\nranks 1\n# mid comment\nrank 0\nc 42\nend\n");
  const Trace t = read_trace(ss);
  ASSERT_EQ(t.stream(0).size(), 1u);
  EXPECT_EQ(std::get<ComputeRecord>(t.stream(0)[0]).duration, TimeNs{42});
}

TEST(TraceIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/ibpower_trace_test.txt";
  write_trace_file(path, sample_trace());
  const Trace loaded = read_trace_file(path);
  EXPECT_EQ(loaded.total_records(), sample_trace().total_records());
  EXPECT_THROW(read_trace_file("/nonexistent/path/x.txt"), TraceFormatError);
}

}  // namespace
}  // namespace ibpower
