#include "power/switch_report.hpp"

#include <gtest/gtest.h>

#include "sim/experiment.hpp"
#include "sim/replay.hpp"

namespace ibpower {
namespace {

using namespace ibpower::literals;

TEST(SwitchReport, CoversWholeTopology) {
  Fabric fabric(FabricConfig{}, 8);
  fabric.finish(1_ms);
  const auto rows = switch_power_report(fabric, PowerModelConfig{});
  const auto& topo = fabric.topology();
  ASSERT_EQ(rows.size(), static_cast<std::size_t>(topo.num_leaf_switches() +
                                                  topo.num_top_switches()));
  int leaves = 0, tops = 0;
  for (const auto& row : rows) {
    (row.is_leaf ? leaves : tops) += 1;
    EXPECT_EQ(row.total_ports, row.is_leaf ? 36 : 14);
  }
  EXPECT_EQ(leaves, topo.num_leaf_switches());
  EXPECT_EQ(tops, topo.num_top_switches());
}

TEST(SwitchReport, IdleFabricHasZeroSavings) {
  Fabric fabric(FabricConfig{}, 8);
  fabric.finish(1_ms);
  for (const auto& row : switch_power_report(fabric, PowerModelConfig{})) {
    EXPECT_DOUBLE_EQ(row.savings_all_ports_pct, 0.0);
    EXPECT_EQ(row.active_ports, 0);
  }
}

TEST(SwitchReport, GatedNodePortsShowUpOnLeafSwitch) {
  Fabric fabric(FabricConfig{}, 8);
  // Gate the links of the first 8 nodes (all on leaf switch 0).
  for (NodeId n = 0; n < 8; ++n) {
    fabric.node_link(n).request_low_power(0_us, 900_us);
  }
  fabric.finish(1_ms);
  const auto rows = switch_power_report(fabric, PowerModelConfig{});
  const auto& leaf0 = rows[0];
  ASSERT_TRUE(leaf0.is_leaf);
  EXPECT_EQ(leaf0.active_ports, 8);
  EXPECT_GT(leaf0.savings_active_ports_pct, 40.0);
  // Diluted over all 36 physical ports.
  EXPECT_NEAR(leaf0.savings_all_ports_pct,
              leaf0.savings_active_ports_pct * 8.0 / 36.0, 1e-9);
  // Top switches saw nothing.
  for (const auto& row : rows) {
    if (!row.is_leaf) {
      EXPECT_DOUBLE_EQ(row.savings_all_ports_pct, 0.0);
    }
  }
}

TEST(SwitchReport, ManagedRunProducesLeafSavings) {
  // Full pipeline: managed ALYA run, then the per-switch view.
  ExperimentConfig cfg;
  cfg.app = "alya";
  cfg.workload.nranks = 8;
  cfg.workload.iterations = 25;
  cfg.ppa.grouping_threshold = default_gt(cfg.app, 8);
  const auto app = make_app(cfg.app);
  const Trace trace = app->generate(cfg.workload);
  ReplayOptions opt;
  opt.enable_power_management = true;
  opt.ppa = cfg.ppa;
  ReplayEngine engine(&trace, opt);
  (void)engine.run();

  const auto rows = switch_power_report(engine.fabric(), PowerModelConfig{});
  // All 8 ranks sit on leaf 0 (18 nodes per leaf).
  EXPECT_GT(rows[0].savings_active_ports_pct, 1.0);
  EXPECT_GT(rows[0].mean_low_residency, 0.0);
  // Trunks were used (cross-node traffic does not leave leaf 0 though,
  // since all ranks share it) - verify no spurious savings anywhere.
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LE(rows[i].savings_all_ports_pct, rows[0].savings_all_ports_pct);
  }
}

}  // namespace
}  // namespace ibpower
