#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <vector>

namespace ibpower {
namespace {

TEST(ThreadPool, ResultsGatherInSubmissionOrder) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPool, SingleThreadExecutesInFifoOrder) {
  // With one worker the shared FIFO queue is a strict serial executor.
  ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.submit([&order, i] { order.push_back(i); }));
  }
  for (auto& f : futures) f.get();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto ok = pool.submit([] { return 7; });
  auto bad = pool.submit(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_EQ(ok.get(), 7);
  EXPECT_THROW(
      {
        try {
          (void)bad.get();
        } catch (const std::runtime_error& e) {
          EXPECT_STREQ(e.what(), "task failed");
          throw;
        }
      },
      std::runtime_error);
}

TEST(ThreadPool, ThrowingTaskDoesNotKillWorkers) {
  ThreadPool pool(1);
  auto bad = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The worker that ran the throwing task must still serve new tasks.
  auto after = pool.submit([] { return 42; });
  EXPECT_EQ(after.get(), 42);
}

TEST(ThreadPool, ZeroRequestedThreadsDegradesToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.submit([] { return 3; }).get(), 3);
}

TEST(ThreadPool, DefaultConcurrencyIsAtLeastOne) {
  EXPECT_GE(ThreadPool::default_concurrency(), 1u);
}

TEST(ThreadPool, MoveOnlyTaskCaptures) {
  ThreadPool pool(2);
  auto ptr = std::make_unique<int>(99);
  auto fut = pool.submit([p = std::move(ptr)] { return *p; });
  EXPECT_EQ(fut.get(), 99);
}

TEST(ThreadPool, ManyConcurrentTasksAllRun) {
  ThreadPool pool(4);
  std::atomic<int> sum{0};
  std::vector<std::future<void>> futures;
  for (int i = 1; i <= 1000; ++i) {
    futures.push_back(pool.submit([&sum, i] {
      sum.fetch_add(i, std::memory_order_relaxed);
    }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(sum.load(), 1000 * 1001 / 2);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 200; ++i) {
      (void)pool.submit([&ran] { ran.fetch_add(1); });
    }
  }  // ~ThreadPool joins after the queue drains
  EXPECT_EQ(ran.load(), 200);
}

// --- cgroup CPU quota parsing (default_concurrency's clamp) -------------

TEST(CpuQuota, CgroupV2Limited) {
  EXPECT_EQ(parse_cpu_quota("250000 100000", nullptr), 3u);  // ceil(2.5)
  EXPECT_EQ(parse_cpu_quota("100000 100000", nullptr), 1u);
  EXPECT_EQ(parse_cpu_quota("800000 100000\n", nullptr), 8u);
}

TEST(CpuQuota, CgroupV2Unlimited) {
  EXPECT_EQ(parse_cpu_quota("max 100000", nullptr), 0u);
  EXPECT_EQ(parse_cpu_quota("max 100000\n", nullptr), 0u);
}

TEST(CpuQuota, CgroupV1) {
  EXPECT_EQ(parse_cpu_quota("150000", "100000"), 2u);  // ceil(1.5)
  EXPECT_EQ(parse_cpu_quota("100000", "100000"), 1u);
  EXPECT_EQ(parse_cpu_quota("-1", "100000"), 0u);  // unlimited
}

TEST(CpuQuota, MalformedIsUnlimited) {
  EXPECT_EQ(parse_cpu_quota("", nullptr), 0u);
  EXPECT_EQ(parse_cpu_quota("banana 100000", nullptr), 0u);
  EXPECT_EQ(parse_cpu_quota("100000", nullptr), 0u);   // v2 missing period
  EXPECT_EQ(parse_cpu_quota("100000", "0"), 0u);       // zero period
  EXPECT_EQ(parse_cpu_quota("100000", "banana"), 0u);
}

TEST(CpuQuota, DefaultConcurrencyRespectsQuota) {
  // On any host, the cached default can never exceed what the cgroup quota
  // (if one applies here) allows, and is always at least one.
  const unsigned n = ThreadPool::default_concurrency();
  EXPECT_GE(n, 1u);
  EXPECT_LE(n, std::max(1u, std::thread::hardware_concurrency()));
}

}  // namespace
}  // namespace ibpower
