// Round-trip and equivalence tests for the obs/ power-state .prv writer
// (the Fig. 6 view rebuilt from telemetry):
//  * the timeline reconstructed from a ReplayMetrics snapshot must be
//    byte-identical to build_power_timeline() run on the live fabric
//  * write -> read_prv -> write must be the identity on bytes (mirroring
//    test_prv_roundtrip.cpp for the trace/ fixture)
//  * per-state residencies of the parsed timeline must equal the
//    telemetry's own residency counters
#include "obs/exporters.hpp"

#include <gtest/gtest.h>

#include <cinttypes>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "check/trace_gen.hpp"
#include "obs/collect.hpp"
#include "sim/experiment.hpp"

namespace ibpower {
namespace {

struct Snapshot {
  obs::ReplayMetrics metrics;
  std::string live_prv;  // build_power_timeline on the live fabric
};

Snapshot managed_snapshot(std::uint64_t seed, Rank nranks) {
  SyntheticTraceConfig tcfg;
  tcfg.seed = seed;
  tcfg.nranks = nranks;
  tcfg.iterations = 8;
  const Trace trace = generate_trace(tcfg);

  ReplayOptions opt;
  opt.fabric.routing.strategy = RoutingStrategy::Dmodk;
  opt.enable_power_management = true;
  opt.ppa.displacement_factor = 0.01;
  opt.fabric.link.t_react = opt.ppa.t_react;
  opt.fabric.link.t_deact = opt.ppa.t_react;
  ReplayEngine engine(&trace, opt);
  const ReplayResult rr = engine.run();

  Snapshot snap;
  snap.metrics = obs::collect_replay_metrics(engine, rr, PowerModelConfig{});
  std::ostringstream os;
  build_power_timeline(engine.fabric(), nranks, rr.exec_time)
      .write_prv(os, "synthetic");
  snap.live_prv = os.str();
  return snap;
}

TEST(ObsPrv, TimelineMatchesLiveFabricBytes) {
  for (const std::uint64_t seed : {2u, 17u, 40u}) {
    const Snapshot snap = managed_snapshot(seed, 6);
    std::ostringstream os;
    obs::write_power_prv(os, snap.metrics, "synthetic");
    EXPECT_EQ(os.str(), snap.live_prv) << "seed " << seed;
  }
}

TEST(ObsPrv, WriteReadWriteIsIdentity) {
  const Snapshot snap = managed_snapshot(9, 8);
  std::ostringstream first;
  obs::write_power_prv(first, snap.metrics, "synthetic");

  std::istringstream back(first.str());
  std::string app;
  const StateTimeline parsed = StateTimeline::read_prv(back, &app);
  EXPECT_EQ(app, "synthetic");
  EXPECT_EQ(parsed.nrows(), 8);
  EXPECT_EQ(parsed.duration(), snap.metrics.exec_time);

  std::ostringstream second;
  parsed.write_prv(second, app);
  EXPECT_EQ(first.str(), second.str());
}

TEST(ObsPrv, ParsedResidenciesMatchTelemetryCounters) {
  const Snapshot snap = managed_snapshot(21, 6);
  std::ostringstream os;
  obs::write_power_prv(os, snap.metrics, "synthetic");
  std::istringstream back(os.str());
  const StateTimeline parsed = StateTimeline::read_prv(back);

  bool any_low = false;
  for (const obs::LinkMetrics& lm : snap.metrics.links) {
    for (const std::int32_t state : {0, 1, 2}) {
      EXPECT_EQ(parsed.residency(lm.link, state),
                lm.residency[static_cast<std::size_t>(state)])
          << "link " << lm.link << " state " << state;
    }
    any_low = any_low || lm.residency[1] > TimeNs::zero();
  }
  // The managed run must actually exercise low power, or this test proves
  // nothing about state 1/2 intervals.
  EXPECT_TRUE(any_low);
}

TEST(ObsPrv, LinkSeriesCsvCoversExecExactly) {
  const Snapshot snap = managed_snapshot(33, 4);
  std::ostringstream os;
  obs::write_link_series_csv(os, snap.metrics);
  std::istringstream in(os.str());
  std::string header;
  ASSERT_TRUE(std::getline(in, header));
  EXPECT_EQ(header, obs::link_series_csv_header());

  // Rows per link must tile [0, exec] gap-free and in order.
  std::vector<TimeNs> covered(snap.metrics.links.size(), TimeNs::zero());
  std::vector<std::int64_t> next_begin(snap.metrics.links.size(), 0);
  std::string line;
  while (std::getline(in, line)) {
    std::int64_t link = 0, seq = 0, begin = 0, end = 0;
    int mode = 0;
    char name[32] = {0};
    ASSERT_EQ(std::sscanf(line.c_str(),
                          "%" SCNd64 ",%" SCNd64 ",%" SCNd64 ",%" SCNd64
                          ",%d,%31s",
                          &link, &seq, &begin, &end, &mode, name),
              6)
        << line;
    const auto idx = static_cast<std::size_t>(link);
    ASSERT_LT(idx, covered.size());
    EXPECT_EQ(begin, next_begin[idx]) << line;  // gap-free tiling
    EXPECT_LT(begin, end) << line;
    EXPECT_STREQ(name, link_mode_name(static_cast<LinkPowerMode>(mode)));
    next_begin[idx] = end;
    covered[idx] += TimeNs{end - begin};
  }
  for (std::size_t i = 0; i < covered.size(); ++i) {
    EXPECT_EQ(covered[i], snap.metrics.links[i].exec) << "link " << i;
  }
}

}  // namespace
}  // namespace ibpower
