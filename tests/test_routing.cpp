// RoutingEngine contract tests: the random engine's byte-identity with the
// historical hard-coded draw, true D-mod-k vs the legacy hash variant, the
// consolidating router's minimal-prefix packing, and reset semantics.
#include "network/routing.hpp"

#include <gtest/gtest.h>

#include "network/fabric.hpp"
#include "util/rng.hpp"

namespace ibpower {
namespace {

using namespace ibpower::literals;

/// Distinct up-trunks of `leaf` that carried any traffic.
int used_up_trunks(const Fabric& fabric, SwitchId leaf) {
  const auto& topo = fabric.topology();
  int used = 0;
  for (int t = 0; t < topo.num_top_switches(); ++t) {
    if (!fabric.link(topo.trunk_link(leaf, t)).busy(Direction::Up).empty()) {
      ++used;
    }
  }
  return used;
}

TEST(Routing, ParseAndNameRoundTrip) {
  for (const RoutingStrategy s : {RoutingStrategy::Random,
                                  RoutingStrategy::Dmodk,
                                  RoutingStrategy::Consolidate}) {
    RoutingStrategy parsed{};
    ASSERT_TRUE(parse_routing_strategy(routing_strategy_name(s), parsed));
    EXPECT_EQ(parsed, s);
  }
  RoutingStrategy out = RoutingStrategy::Dmodk;
  EXPECT_FALSE(parse_routing_strategy("adaptive", out));
  EXPECT_EQ(out, RoutingStrategy::Dmodk);  // untouched on failure
}

TEST(Routing, RandomConsumesOneDrawPerUnicastIncludingSameLeafPairs) {
  // The counter contract: RandomRouting advances its per-source counter
  // exactly once per unicast — same-leaf pairs included, whose pick
  // route() discards — so a mirror engine fed the same consultation
  // sequence predicts every cross-leaf trunk choice.
  FabricConfig cfg;
  cfg.routing.strategy = RoutingStrategy::Random;
  Fabric fabric(cfg, 252);
  const auto& topo = fabric.topology();

  auto mirror = make_routing_engine(RoutingStrategy::Random);
  mirror->reset(topo, cfg.routing);
  for (int i = 0; i < 60; ++i) {
    const bool same_leaf = i % 3 == 0;  // draws must be consumed here too
    const NodeId dst = same_leaf ? 1 : 200;
    const TimeNs ready = TimeNs::from_us(std::int64_t{i} * 50);
    const SwitchId expect = mirror->pick_top(0, dst, 2048, ready);
    const IbLink& trunk = fabric.link(topo.trunk_link(0, expect));
    const TimeNs before = trunk.busy(Direction::Up).total();
    fabric.unicast(0, dst, 2048, ready);
    if (!same_leaf) {
      EXPECT_GT(trunk.busy(Direction::Up).total(), before)
          << "unicast " << i << " did not use predicted trunk " << expect;
    }
  }
}

TEST(Routing, RandomDrawStreamIsPerSourceInterleavingIndependent) {
  // The property sharded replay depends on: a source's k-th draw is a pure
  // function of (seed, src, k), so reordering unicasts *across* sources
  // must not change any source's trunk choices. Run the same per-source
  // message sequences under two different global interleavings and compare
  // which leaf-0 up-trunks carried traffic (only src 0 lives on leaf 0, so
  // that set is exactly src 0's draw footprint).
  FabricConfig cfg;
  cfg.routing.strategy = RoutingStrategy::Random;
  Fabric interleaved(cfg, 252);
  Fabric batched(cfg, 252);
  const auto& topo = interleaved.topology();
  for (int i = 0; i < 24; ++i) {  // A/B alternating
    interleaved.unicast(0, 200, 2048, TimeNs::from_us(std::int64_t{i} * 60));
    interleaved.unicast(18, 230, 2048,
                        TimeNs::from_us(std::int64_t{i} * 60));
  }
  for (int i = 0; i < 24; ++i) {  // all of B first, then all of A
    batched.unicast(18, 230, 2048, TimeNs::from_us(std::int64_t{i} * 60));
  }
  for (int i = 0; i < 24; ++i) {
    batched.unicast(0, 200, 2048, TimeNs::from_us(std::int64_t{i} * 60));
  }
  int footprint = 0;
  for (int t = 0; t < topo.num_top_switches(); ++t) {
    const bool a =
        !interleaved.link(topo.trunk_link(0, t)).busy(Direction::Up).empty();
    const bool b =
        !batched.link(topo.trunk_link(0, t)).busy(Direction::Up).empty();
    EXPECT_EQ(a, b) << "src 0's draw for top " << t
                    << " changed with cross-source interleaving";
    footprint += a ? 1 : 0;
  }
  EXPECT_GT(footprint, 1);  // 24 draws over 18 tops: more than one trunk
}

TEST(Routing, DmodkSharesDestinationTrunk) {
  FabricConfig cfg;
  cfg.routing.strategy = RoutingStrategy::Dmodk;
  Fabric fabric(cfg, 252);
  const auto& topo = fabric.topology();
  const NodeId dst = 200;  // leaf 11
  const SwitchId expect = dst % topo.num_top_switches();
  // Senders on three different leaves, all to the same destination.
  fabric.unicast(0, dst, 2048, 0_us);
  fabric.unicast(20, dst, 2048, 0_us);
  fabric.unicast(40, dst, 2048, 0_us);
  // All flows converge on the destination's D-mod-k down-trunk: three
  // serializations, FIFO back-to-back (abutting intervals coalesce).
  const IbLink& down = fabric.link(topo.trunk_link(topo.leaf_of(dst), expect));
  EXPECT_EQ(down.busy(Direction::Down).total(),
            3 * down.serialization_time(2048));
  // ...and no other down-trunk of that leaf saw traffic.
  for (int t = 0; t < topo.num_top_switches(); ++t) {
    if (t == expect) continue;
    EXPECT_TRUE(fabric.link(topo.trunk_link(topo.leaf_of(dst), t))
                    .busy(Direction::Down)
                    .empty());
  }
}

TEST(Routing, DmodkHashVariantSpreadsSameDestinationFlows) {
  // The legacy (src*31 + dst) % ntop hash survives as a documented ablation:
  // unlike true D-mod-k it scatters same-destination flows across trunks.
  FabricConfig cfg;
  cfg.routing.strategy = RoutingStrategy::Dmodk;
  cfg.routing.dmodk_hash = true;
  Fabric fabric(cfg, 252);
  const auto& topo = fabric.topology();
  const NodeId dst = 200;
  const int ntop = topo.num_top_switches();
  for (const NodeId src : {0, 1, 2}) {
    const auto expect = static_cast<SwitchId>((src * 31 + dst) % ntop);
    const IbLink& up = fabric.link(topo.trunk_link(topo.leaf_of(src), expect));
    const TimeNs before = up.busy(Direction::Up).total();
    fabric.unicast(src, dst, 2048, 0_us);
    EXPECT_GT(up.busy(Direction::Up).total(), before) << "src " << src;
  }
}

TEST(Routing, ConsolidatePacksOntoFirstTopSwitch) {
  // Light traffic, spaced out: every message's backlog stays within the
  // spill threshold, so the whole exchange packs onto top switch 0 and the
  // other 17 trunk pairs never light up.
  FabricConfig cfg;
  cfg.routing.strategy = RoutingStrategy::Consolidate;
  Fabric fabric(cfg, 252);
  for (int i = 0; i < 40; ++i) {
    fabric.unicast(i % 10, 200 + (i % 10), 2048,
                   TimeNs::from_us(std::int64_t{i} * 20));
  }
  EXPECT_EQ(used_up_trunks(fabric, 0), 1);
  EXPECT_TRUE(
      fabric.link(fabric.topology().trunk_link(0, 0)).busy(Direction::Up)
          .empty() == false);
}

TEST(Routing, ConsolidateSpillsUnderBacklog) {
  // A burst of large simultaneous messages between the same leaf pair: the
  // first top switch saturates past the spill threshold, so later messages
  // spill to the next switches in the prefix — but only as far as needed.
  FabricConfig cfg;
  cfg.routing.strategy = RoutingStrategy::Consolidate;
  cfg.routing.spill_threshold = 10_us;
  Fabric fabric(cfg, 252);
  const Bytes big = 1 << 20;  // ~210 us serialization each
  for (int i = 0; i < 6; ++i) {
    fabric.unicast(i, 200 + i, big, 0_us);
  }
  const int used = used_up_trunks(fabric, 0);
  EXPECT_GT(used, 1);   // backlog forced a spill
  EXPECT_LT(used, 18);  // but the prefix stayed minimal
  // The used trunks are exactly the prefix [0, used).
  const auto& topo = fabric.topology();
  for (int t = 0; t < used; ++t) {
    EXPECT_FALSE(
        fabric.link(topo.trunk_link(0, t)).busy(Direction::Up).empty());
  }
}

TEST(Routing, ResetReproducesRandomDrawStream) {
  FabricConfig cfg;
  cfg.routing.strategy = RoutingStrategy::Random;
  Fabric fabric(cfg, 252);
  std::vector<TimeNs> first;
  for (int i = 0; i < 20; ++i) {
    first.push_back(
        fabric.unicast(0, 200, 2048, TimeNs::from_us(std::int64_t{i} * 100))
            .delivery);
  }
  fabric.reset(cfg, 252);  // must reseed the engine's draw stream
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(
        fabric.unicast(0, 200, 2048, TimeNs::from_us(std::int64_t{i} * 100))
            .delivery,
        first[static_cast<std::size_t>(i)])
        << "replay diverged at message " << i;
  }
}

TEST(Routing, ResetAcrossStrategyChange) {
  // A fabric reset may swap the routing strategy; the swapped-in engine
  // must behave exactly like a fresh fabric built with that strategy.
  FabricConfig random_cfg;
  random_cfg.routing.strategy = RoutingStrategy::Random;
  FabricConfig consolidate_cfg;
  consolidate_cfg.routing.strategy = RoutingStrategy::Consolidate;

  Fabric reused(random_cfg, 252);
  reused.unicast(0, 200, 2048, 0_us);
  reused.reset(consolidate_cfg, 252);

  Fabric fresh(consolidate_cfg, 252);
  for (int i = 0; i < 10; ++i) {
    const TimeNs ready = TimeNs::from_us(std::int64_t{i} * 30);
    EXPECT_EQ(reused.unicast(0, 200 + i, 2048, ready).delivery,
              fresh.unicast(0, 200 + i, 2048, ready).delivery)
        << "message " << i;
  }
  EXPECT_EQ(used_up_trunks(reused, 0), used_up_trunks(fresh, 0));
}

TEST(Routing, ConsolidateResetClearsLoadCounters) {
  FabricConfig cfg;
  cfg.routing.strategy = RoutingStrategy::Consolidate;
  cfg.routing.spill_threshold = 10_us;
  Fabric fabric(cfg, 252);
  const Bytes big = 1 << 20;
  for (int i = 0; i < 6; ++i) fabric.unicast(i, 200 + i, big, 0_us);
  ASSERT_GT(used_up_trunks(fabric, 0), 1);  // counters forced spilling
  fabric.reset(cfg, 252);
  // With counters cleared a single light message goes back to switch 0.
  fabric.unicast(0, 200, 2048, 0_us);
  EXPECT_EQ(used_up_trunks(fabric, 0), 1);
}

}  // namespace
}  // namespace ibpower
