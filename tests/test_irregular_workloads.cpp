// Tests of the three irregular-workload stressors (amr, ml_train, bursty) —
// trace generators built to defeat the PPA's consecutive-repeat detection
// while leaving long gateable idle for the pattern-free predictors
// (DESIGN.md §13). The suite pins: well-formed deterministic traces across
// seeds and sizes, registry separation (stressors are reachable through
// make_app but excluded from the paper-grid app_names), bit-identical
// sharded replay, and the negative property the whole family exists for —
// the PPA detects no pattern on amr and bursty.
#include "workloads/app_model.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "sim/experiment.hpp"
#include "trace/trace_io.hpp"
#include "workloads/apps.hpp"

namespace ibpower {
namespace {

struct AppSize {
  const char* app;
  int nranks;
};

std::string param_name(const ::testing::TestParamInfo<AppSize>& info) {
  return std::string(info.param.app) + "_" + std::to_string(info.param.nranks);
}

class StressorValidity : public ::testing::TestWithParam<AppSize> {};

TEST_P(StressorValidity, GeneratesValidTrace) {
  const auto [app_name, nranks] = GetParam();
  const auto app = make_app(app_name);
  ASSERT_TRUE(app->supports(nranks));
  WorkloadParams params;
  params.nranks = nranks;
  params.iterations = 12;
  const Trace trace = app->generate(params);
  EXPECT_EQ(trace.nranks(), nranks);
  EXPECT_EQ(trace.validate(), "") << app_name << " @" << nranks;
  EXPECT_GT(trace.total_mpi_calls(), 0u);
}

TEST_P(StressorValidity, DeterministicForSeed) {
  const auto [app_name, nranks] = GetParam();
  const auto app = make_app(app_name);
  WorkloadParams params;
  params.nranks = nranks;
  params.iterations = 6;
  params.seed = 777;
  std::ostringstream a, b;
  write_trace(a, app->generate(params));
  write_trace(b, app->generate(params));
  EXPECT_EQ(a.str(), b.str());
}

TEST_P(StressorValidity, SeedChangesJitter) {
  const auto [app_name, nranks] = GetParam();
  const auto app = make_app(app_name);
  WorkloadParams p1, p2;
  p1.nranks = p2.nranks = nranks;
  p1.iterations = p2.iterations = 6;
  p1.seed = 1;
  p2.seed = 2;
  std::ostringstream a, b;
  write_trace(a, app->generate(p1));
  write_trace(b, app->generate(p2));
  EXPECT_NE(a.str(), b.str());
}

INSTANTIATE_TEST_SUITE_P(
    AllStressorsAndSizes, StressorValidity,
    ::testing::Values(AppSize{"amr", 8}, AppSize{"amr", 32},
                      AppSize{"ml_train", 8}, AppSize{"ml_train", 16},
                      AppSize{"bursty", 8}, AppSize{"bursty", 32}),
    param_name);

TEST(Stressors, RegistryKeepsStressorsOutOfThePaperGrid) {
  const auto stressors = stressor_app_names();
  ASSERT_EQ(stressors,
            (std::vector<std::string>{"amr", "ml_train", "bursty"}));
  for (const auto& name : stressors) {
    EXPECT_EQ(make_app(name)->name(), name);
  }
  // The paper-grid registry must stay exactly the six apps: cmd_grid
  // iterates it, and adding rows would break byte-identity of default
  // grid exports.
  const auto grid = app_names();
  EXPECT_EQ(grid.size(), 6u);
  for (const auto& name : stressors) {
    EXPECT_EQ(std::find(grid.begin(), grid.end(), name), grid.end())
        << name << " leaked into app_names()";
  }
}

ExperimentConfig stressor_config(const std::string& app, int nranks,
                                 int iterations, std::uint64_t seed) {
  ExperimentConfig cfg;
  cfg.app = app;
  cfg.workload.nranks = nranks;
  cfg.workload.iterations = iterations;
  cfg.workload.seed = seed;
  cfg.ppa.grouping_threshold = default_gt(app, nranks);
  return normalize_config(cfg);
}

TEST(Stressors, ShardedReplayBitIdenticalToSerial) {
  for (const char* app : {"amr", "ml_train", "bursty"}) {
    ExperimentConfig serial = stressor_config(app, 32, 5, 11);
    ExperimentConfig sharded = serial;
    sharded.shards = 4;
    const ExperimentResult a = run_experiment(serial);
    const ExperimentResult b = run_experiment(sharded);
    EXPECT_TRUE(bit_identical(a, b)) << app;
  }
}

TEST(Stressors, RepeatedRunsBitIdentical) {
  for (const char* app : {"amr", "ml_train", "bursty"}) {
    const ExperimentConfig cfg = stressor_config(app, 8, 8, 5);
    const ExperimentResult a = run_experiment(cfg);
    const ExperimentResult b = run_experiment(cfg);
    EXPECT_TRUE(bit_identical(a, b)) << app;
  }
}

// The negative property that motivates the predictor family: on the AMR and
// bursty stressors the PPA never sees any gram pattern three times
// consecutively, so it never arms and saves nothing. Pinned over several
// seeds — a generator change that re-introduces periodicity fails here.
TEST(Stressors, PpaDetectsNoPatternOnAmr) {
  for (const std::uint64_t seed : {1ull, 7ull, 42ull}) {
    const ExperimentResult r =
        run_experiment(stressor_config("amr", 8, 30, seed));
    EXPECT_EQ(r.agents.arms, 0u) << "seed " << seed;
    EXPECT_EQ(r.agents.predicted_calls, 0u) << "seed " << seed;
    EXPECT_EQ(r.agents.power_requests, 0u) << "seed " << seed;
  }
}

TEST(Stressors, PpaDetectsNoPatternOnBursty) {
  for (const std::uint64_t seed : {1ull, 7ull, 42ull}) {
    const ExperimentResult r =
        run_experiment(stressor_config("bursty", 8, 30, seed));
    EXPECT_EQ(r.agents.arms, 0u) << "seed " << seed;
    EXPECT_EQ(r.agents.predicted_calls, 0u) << "seed " << seed;
    EXPECT_EQ(r.agents.power_requests, 0u) << "seed " << seed;
  }
}

}  // namespace
}  // namespace ibpower
