// Property tests of the replay engine on randomized (but valid) traces:
// every run must terminate without deadlock, respect causality, and keep
// the power/time accounting invariants.
#include <gtest/gtest.h>

#include "sim/experiment.hpp"
#include "sim/replay.hpp"
#include "util/rng.hpp"

namespace ibpower {
namespace {

using namespace ibpower::literals;

/// Generates a random valid trace: random per-rank compute bursts, randomly
/// interleaved ring exchanges (always matched), random collectives
/// (identical sequence on all ranks), random message sizes spanning the
/// eager/rendezvous boundary.
Trace random_trace(std::uint64_t seed, int nranks, int steps) {
  Rng rng(seed);
  Trace trace("random", nranks);
  for (int s = 0; s < steps; ++s) {
    const double action = rng.uniform01();
    if (action < 0.45) {
      for (Rank r = 0; r < nranks; ++r) {
        trace.push(r, ComputeRecord{TimeNs::from_us(rng.uniform(1.0, 400.0))});
      }
    } else if (action < 0.75) {
      const int shift = 1 + static_cast<int>(rng.uniform_below(
                                static_cast<std::uint64_t>(nranks - 1)));
      const Bytes bytes = 1 << (6 + rng.uniform_below(16));  // 64B..2MB
      const auto tag = static_cast<std::int32_t>(rng.uniform_below(8));
      for (Rank r = 0; r < nranks; ++r) {
        const Rank to = static_cast<Rank>((r + shift) % nranks);
        const Rank from = static_cast<Rank>((r - shift + nranks) % nranks);
        trace.push(r, SendrecvRecord{to, from, bytes, tag});
      }
    } else if (action < 0.9) {
      // Unidirectional ring: rank r sends to r+1; r receives from r-1.
      const Bytes bytes = 1 << (6 + rng.uniform_below(16));
      const auto tag = static_cast<std::int32_t>(100 + rng.uniform_below(8));
      for (Rank r = 0; r < nranks; ++r) {
        const Rank to = static_cast<Rank>((r + 1) % nranks);
        // Receive-before-send on even ranks exercises both matching orders.
        if (r % 2 == 0) {
          trace.push(r, RecvRecord{static_cast<Rank>((r - 1 + nranks) % nranks),
                                   bytes, tag});
          trace.push(r, SendRecord{to, bytes, tag});
        } else {
          trace.push(r, SendRecord{to, bytes, tag});
          trace.push(r, RecvRecord{static_cast<Rank>((r - 1 + nranks) % nranks),
                                   bytes, tag});
        }
      }
    } else {
      static const MpiCall colls[] = {MpiCall::Allreduce, MpiCall::Barrier,
                                      MpiCall::Bcast, MpiCall::Alltoall};
      const MpiCall op = colls[rng.uniform_below(4)];
      const Bytes bytes = op == MpiCall::Barrier
                              ? 0
                              : static_cast<Bytes>(1)
                                    << (3 + rng.uniform_below(12));
      for (Rank r = 0; r < nranks; ++r) {
        trace.push(r, CollectiveRecord{op, bytes});
      }
    }
  }
  return trace;
}

class ReplayProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReplayProperty, RandomTraceInvariants) {
  const std::uint64_t seed = GetParam();
  Rng meta(seed);
  const int nranks = 3 + static_cast<int>(meta.uniform_below(10));
  const Trace trace = random_trace(seed, nranks, 40);
  ASSERT_EQ(trace.validate(), "");

  // 1. Unidirectional rings in the generator have a send-before-recv
  //    ordering hazard only if BOTH sides block; even ranks recv first and
  //    odd ranks send first, and sends up to the eager threshold complete
  //    immediately, so the trace must replay without deadlock.
  ReplayOptions opt;
  opt.fabric.routing.strategy = RoutingStrategy::Dmodk;
  ReplayEngine baseline(&trace, opt);
  const ReplayResult base = baseline.run();
  EXPECT_GT(base.exec_time, TimeNs::zero());

  // 2. Busy intervals never exceed the execution window; idle + busy
  //    partitions it exactly.
  for (Rank r = 0; r < nranks; ++r) {
    const auto gaps = node_link_idle_gaps(baseline.fabric(), r, base.exec_time);
    TimeNs idle{};
    for (const auto& g : gaps) {
      EXPECT_GE(g.begin, TimeNs::zero());
      EXPECT_LE(g.end, base.exec_time);
      idle += g.duration();
    }
    EXPECT_LE(idle, base.exec_time);
  }

  // 3. Managed replay: terminates, never finishes before causality allows
  //    (within a tolerance: gating can only delay, and overheads add time),
  //    and link mode residencies partition the execution exactly.
  ReplayOptions managed = opt;
  managed.enable_power_management = true;
  managed.ppa.grouping_threshold = 24_us;
  ReplayEngine engine(&trace, managed);
  const ReplayResult run = engine.run();
  // Gating and overheads can only add delay locally, but FIFO link
  // contention is not anomaly-free (delaying one message can reorder a
  // queue and shorten the critical path, Graham-style), so allow a small
  // speedup margin.
  EXPECT_GE(static_cast<double>(run.exec_time.ns),
            0.99 * static_cast<double>(base.exec_time.ns));

  for (Rank r = 0; r < nranks; ++r) {
    const IbLink& link = engine.fabric().node_link(r);
    const TimeNs sum = link.residency(LinkPowerMode::FullPower) +
                       link.residency(LinkPowerMode::LowPower) +
                       link.residency(LinkPowerMode::Transition);
    EXPECT_EQ(sum, run.exec_time) << "rank " << r;
  }

  // 4. Agent bookkeeping is conserved.
  EXPECT_EQ(run.agent_total.total_calls, trace.total_mpi_calls());
  EXPECT_LE(run.agent_total.predicted_calls, run.agent_total.total_calls);
  EXPECT_LE(run.agent_total.arms,
            run.agent_total.pattern_mispredicts + 1u * static_cast<unsigned>(nranks));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReplayProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST(ReplayProperty, DeterministicAcrossRuns) {
  const Trace trace = random_trace(99, 6, 30);
  ReplayOptions opt;
  opt.enable_power_management = true;
  opt.ppa.grouping_threshold = 24_us;
  ReplayEngine a(&trace, opt), b(&trace, opt);
  const auto ra = a.run();
  const auto rb = b.run();
  EXPECT_EQ(ra.exec_time, rb.exec_time);
  EXPECT_EQ(ra.events_processed, rb.events_processed);
  EXPECT_EQ(ra.agent_total.predicted_calls, rb.agent_total.predicted_calls);
}

}  // namespace
}  // namespace ibpower
