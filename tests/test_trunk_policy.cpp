// Trunk sleep policy tests: autonomous idle-timeout sleeping on trunk
// links, on-demand wake penalties on the message path, the opportunistic
// multi-timeout adaptation, baseline-leg isolation, and the whole-fabric
// energy acceptance criterion (consolidate + timeout beats the uplink-only
// managed configuration on the 128-rank cells).
#include "power/trunk_policy.hpp"

#include <gtest/gtest.h>

#include "check/invariant_auditor.hpp"
#include "network/fabric.hpp"
#include "obs/collect.hpp"
#include "sim/experiment.hpp"

namespace ibpower {
namespace {

using namespace ibpower::literals;

FabricConfig trunk_config(TrunkPolicyKind kind) {
  FabricConfig cfg;
  cfg.routing.strategy = RoutingStrategy::Dmodk;  // deterministic trunks
  cfg.trunk.kind = kind;
  return cfg;
}

TEST(TrunkPolicy, ParseAndNameRoundTrip) {
  for (const TrunkPolicyKind k : {TrunkPolicyKind::Off,
                                  TrunkPolicyKind::Timeout,
                                  TrunkPolicyKind::MultiTimeout}) {
    TrunkPolicyKind parsed{};
    ASSERT_TRUE(parse_trunk_policy(trunk_policy_name(k), parsed));
    EXPECT_EQ(parsed, k);
  }
  TrunkPolicyKind out = TrunkPolicyKind::Timeout;
  EXPECT_FALSE(parse_trunk_policy("sometimes", out));
  EXPECT_EQ(out, TrunkPolicyKind::Timeout);
}

TEST(TrunkPolicy, IdleTrunksSleepAfterTimeout) {
  // No traffic at all: every trunk was armed at construction, so its lanes
  // drop idle_timeout + t_deact in; node uplinks have no policy and stay
  // at full power.
  Fabric fabric(trunk_config(TrunkPolicyKind::Timeout), 252);
  const LinkId trunk0 = fabric.topology().num_nodes();
  EXPECT_EQ(fabric.link(trunk0).mode_at(30_us), LinkPowerMode::FullPower);
  EXPECT_EQ(fabric.link(trunk0).mode_at(500_us), LinkPowerMode::LowPower);
  EXPECT_EQ(fabric.node_link(0).mode_at(500_us), LinkPowerMode::FullPower);

  fabric.finish(1_ms);
  // Timer fires at 50 us, lanes down at 60 us, asleep for the rest.
  EXPECT_EQ(fabric.link(trunk0).residency(LinkPowerMode::LowPower),
            1_ms - 60_us);
  EXPECT_EQ(fabric.node_link(0).residency(LinkPowerMode::LowPower),
            TimeNs::zero());
}

TEST(TrunkPolicy, OffLeavesTrunksAlwaysOn) {
  Fabric fabric(trunk_config(TrunkPolicyKind::Off), 252);
  fabric.finish(1_ms);
  const LinkId trunk0 = fabric.topology().num_nodes();
  EXPECT_EQ(fabric.link(trunk0).residency(LinkPowerMode::FullPower), 1_ms);
  EXPECT_FALSE(fabric.trunk_controller().enabled());
}

TEST(TrunkPolicy, MessageWakesSleepingTrunksOnDemand) {
  Fabric fabric(trunk_config(TrunkPolicyKind::Timeout), 252);
  // By 500 us both trunks of the 0 -> 250 route are asleep; the message
  // pays one t_react on the up-trunk and one on the down-trunk.
  const auto tx = fabric.unicast(0, 250, 2048, 500_us);
  EXPECT_EQ(tx.power_penalty, 20_us);

  // The wake restarted the idle timers: after the transmission clears, the
  // trunks go back to sleep on their own.
  const SwitchId top = 250 % fabric.topology().num_top_switches();
  const IbLink& up = fabric.link(fabric.topology().trunk_link(0, top));
  EXPECT_EQ(up.mode_at(520_us), LinkPowerMode::FullPower);
  EXPECT_EQ(up.mode_at(700_us), LinkPowerMode::LowPower);
}

TEST(TrunkPolicy, AwakeTrunkCarriesTrafficPenaltyFree) {
  Fabric fabric(trunk_config(TrunkPolicyKind::Timeout), 252);
  // Before the 50 us timer fires nothing has dropped yet.
  const auto tx = fabric.unicast(0, 250, 2048, 10_us);
  EXPECT_EQ(tx.power_penalty, TimeNs::zero());
}

TEST(TrunkPolicy, MultiTimeoutAdaptsPerTrunk) {
  FabricConfig cfg = trunk_config(TrunkPolicyKind::MultiTimeout);
  Fabric fabric(cfg, 252);
  const SwitchId top = 250 % fabric.topology().num_top_switches();
  const auto up_index = static_cast<std::size_t>(
      fabric.topology().trunk_link(0, top) - fabric.topology().num_nodes());
  const TrunkSleepController& ctl = fabric.trunk_controller();
  ASSERT_EQ(ctl.timeout_of(up_index), 50_us);

  // Message while the trunk is still awake: no penalty, no adaptation.
  fabric.unicast(0, 250, 2048, 0_us);
  EXPECT_EQ(ctl.timeout_of(up_index), 50_us);

  // Wake after a short idle gap (~150 us < 4x50 us): premature sleep, the
  // timer doubles.
  fabric.unicast(0, 250, 2048, 150_us);
  EXPECT_EQ(ctl.timeout_of(up_index), 100_us);

  // Wake after a long idle gap (~500 us >= 4x100 us): the sleep amortized
  // its penalty, the timer halves back.
  fabric.unicast(0, 250, 2048, 650_us);
  EXPECT_EQ(ctl.timeout_of(up_index), 50_us);

  // A trunk that saw no traffic keeps the configured timer.
  EXPECT_EQ(ctl.timeout_of(up_index + 1), 50_us);
}

TEST(TrunkPolicy, MultiTimeoutRespectsBounds) {
  FabricConfig cfg = trunk_config(TrunkPolicyKind::MultiTimeout);
  cfg.trunk.idle_timeout = 50_us;
  cfg.trunk.min_timeout = 40_us;
  cfg.trunk.max_timeout = 80_us;
  Fabric fabric(cfg, 252);
  const SwitchId top = 250 % fabric.topology().num_top_switches();
  const auto up_index = static_cast<std::size_t>(
      fabric.topology().trunk_link(0, top) - fabric.topology().num_nodes());
  const TrunkSleepController& ctl = fabric.trunk_controller();

  // Repeated premature wakes saturate at max_timeout.
  TimeNs ready = 150_us;
  for (int i = 0; i < 4; ++i) {
    fabric.unicast(0, 250, 2048, ready);
    ready += 150_us;
  }
  EXPECT_EQ(ctl.timeout_of(up_index), 80_us);
  // A long-gap wake halves, clamped to min_timeout.
  fabric.unicast(0, 250, 2048, ready + 2_ms);
  EXPECT_EQ(ctl.timeout_of(up_index), 40_us);
}

TEST(TrunkPolicy, BaselineLegForcesTrunkPolicyOff) {
  ExperimentConfig cfg;
  cfg.app = "alya";
  cfg.workload.nranks = 8;
  cfg.workload.iterations = 4;
  cfg.fabric.trunk.kind = TrunkPolicyKind::Timeout;
  const ExperimentConfig norm = normalize_config(cfg);
  const Trace trace = generate_experiment_trace(norm);

  TrunkPolicyKind seen = TrunkPolicyKind::Timeout;
  const auto probe = [&seen](const ReplayEngine& engine, const ReplayResult&) {
    seen = engine.fabric().config().trunk.kind;
  };
  (void)run_baseline_leg(norm, trace, probe);
  EXPECT_EQ(seen, TrunkPolicyKind::Off)
      << "the always-on baseline must not run a trunk sleep policy";
}

TEST(TrunkPolicy, AuditAndTelemetryHoldAcrossPolicyMatrix) {
  // Every routing x policy combination must keep all 504 link schedules
  // valid, the energy closure tight, and the telemetry snapshot (now
  // including trunk rows) self-consistent.
  for (const RoutingStrategy routing : {RoutingStrategy::Dmodk,
                                        RoutingStrategy::Consolidate}) {
    for (const TrunkPolicyKind kind : {TrunkPolicyKind::Timeout,
                                       TrunkPolicyKind::MultiTimeout}) {
      ExperimentConfig cfg;
      cfg.app = "alya";
      cfg.workload.nranks = 8;
      cfg.workload.iterations = 6;
      cfg.fabric.routing.strategy = routing;
      cfg.fabric.trunk.kind = kind;
      const ExperimentConfig norm = normalize_config(cfg);
      const Trace trace = generate_experiment_trace(norm);

      std::string audit_err;
      obs::ReplayMetrics metrics;
      const auto probe = [&](const ReplayEngine& engine,
                             const ReplayResult& rr) {
        audit_err = audit_replay(engine, norm.power);
        metrics = obs::collect_replay_metrics(engine, rr, norm.power);
      };
      const ManagedLegResult leg = run_managed_leg(norm, trace, probe);
      SCOPED_TRACE(std::string(routing_strategy_name(routing)) + " + " +
                   trunk_policy_name(kind));
      EXPECT_TRUE(audit_err.empty()) << audit_err;
      EXPECT_EQ(metrics.trunks.size(), 252u);
      const std::string metrics_err = obs::validate_metrics(metrics);
      EXPECT_TRUE(metrics_err.empty()) << metrics_err;
      // Trunk sleeping only saves energy: whole-fabric managed energy stays
      // below the all-ports always-on bound.
      EXPECT_LT(leg.fabric_power.total_energy_joules,
                leg.fabric_power.baseline_energy_joules);
    }
  }
}

TEST(TrunkPolicy, WholeFabricEnergyBeatsUplinkOnlyManaged) {
  // Acceptance criterion: on the gromacs-128 and alya-128 cells,
  // consolidate + timeout must bring whole-fabric managed energy strictly
  // below the uplink-only managed configuration (random routing, trunks
  // always on) while staying within the paper's 1% overhead bound.
  for (const char* app : {"gromacs", "alya"}) {
    ExperimentConfig uplink_only;
    uplink_only.app = app;
    uplink_only.workload.nranks = 128;
    uplink_only.workload.iterations = 30;
    uplink_only.ppa.grouping_threshold = default_gt(app, 128);

    ExperimentConfig whole_fabric = uplink_only;
    whole_fabric.fabric.routing.strategy = RoutingStrategy::Consolidate;
    whole_fabric.fabric.trunk.kind = TrunkPolicyKind::Timeout;

    const ExperimentResult a = run_experiment(uplink_only);
    const ExperimentResult b = run_experiment(whole_fabric);
    SCOPED_TRACE(app);
    EXPECT_LT(b.fabric_power.total_energy_joules,
              a.fabric_power.total_energy_joules);
    EXPECT_LE(static_cast<double>(b.managed_time.ns),
              1.01 * static_cast<double>(a.managed_time.ns))
        << "trunk management exceeded the 1% slowdown bound";
    // The baseline leg forces trunks off but keeps the configured routing,
    // so each leg is self-consistent: both stay close.
    EXPECT_LE(static_cast<double>(b.baseline_time.ns),
              1.01 * static_cast<double>(a.baseline_time.ns));
  }
}

}  // namespace
}  // namespace ibpower
