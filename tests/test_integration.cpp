// Cross-module integration tests asserting the paper's qualitative results
// (the shapes DESIGN.md §4 commits to), on reduced iteration counts so the
// suite stays fast.
#include <gtest/gtest.h>

#include "power/policies.hpp"
#include "sim/experiment.hpp"

namespace ibpower {
namespace {

using namespace ibpower::literals;

ExperimentConfig config(const std::string& app, int nranks,
                        double displacement = 0.01) {
  ExperimentConfig cfg;
  cfg.app = app;
  cfg.workload.nranks = nranks;
  cfg.workload.iterations = 30;
  cfg.ppa.grouping_threshold = default_gt(app, nranks);
  cfg.ppa.displacement_factor = displacement;
  cfg.fabric.routing.strategy = RoutingStrategy::Dmodk;
  return cfg;
}

TEST(Integration, SavingsDeclineUnderStrongScaling) {
  // Figs. 7-9: strong scaling erodes savings for every app.
  for (const char* app : {"alya", "wrf"}) {
    const auto small = run_experiment(config(app, 8));
    const auto large = run_experiment(config(app, 64));
    EXPECT_GT(small.power.switch_savings_pct,
              large.power.switch_savings_pct)
        << app;
  }
}

TEST(Integration, SmallerDisplacementSavesMore) {
  // Fig. 7 vs Fig. 9: displacement 1% saves more than 10%.
  const auto d01 = run_experiment(config("alya", 8, 0.01));
  const auto d10 = run_experiment(config("alya", 8, 0.10));
  EXPECT_GE(d01.power.switch_savings_pct, d10.power.switch_savings_pct);
}

TEST(Integration, ExecutionTimeIncreaseSmall) {
  // Paper: average increase ~1%; we allow a 3% ceiling per app here.
  for (const char* app : {"alya", "gromacs", "nas_mg"}) {
    const auto r = run_experiment(config(app, 8));
    EXPECT_LT(r.time_increase_pct, 3.0) << app;
    EXPECT_GE(r.time_increase_pct, -0.5) << app;
  }
}

TEST(Integration, RegularAppsPredictBetterThanIrregular) {
  // Table III ordering: NAS BT / ALYA >> WRF.
  auto bt_cfg = config("nas_bt", 9);
  const auto bt = run_experiment(bt_cfg);
  const auto alya = run_experiment(config("alya", 8));
  const auto wrf = run_experiment(config("wrf", 8));
  EXPECT_GT(bt.hit_rate_pct, 85.0);
  EXPECT_GT(alya.hit_rate_pct, 85.0);
  EXPECT_LT(wrf.hit_rate_pct, alya.hit_rate_pct);
}

TEST(Integration, IdleTimeDominatedByLongIntervals) {
  // Table I: intervals >= 20us carry > 99% of idle time.
  for (const char* app : {"alya", "gromacs", "wrf"}) {
    const auto r = run_experiment(config(app, 8));
    EXPECT_GT(r.baseline_idle.reducible_time_fraction(), 0.95) << app;
  }
}

TEST(Integration, WrfIdleIntervalCountsMostlyTiny) {
  // Table I WRF row: ~94% of intervals below 20us.
  const auto r = run_experiment(config("wrf", 16));
  EXPECT_GT(r.baseline_idle.buckets[0].pct_intervals, 60.0);
}

TEST(Integration, OracleUpperBoundsPpa) {
  const ExperimentConfig cfg = config("alya", 8);
  const auto r = run_experiment(cfg);

  // Oracle over the baseline idle gaps of every node link.
  const auto app = make_app(cfg.app);
  const Trace trace = app->generate(cfg.workload);
  ReplayOptions opt;
  opt.fabric = cfg.fabric;
  ReplayEngine engine(&trace, opt);
  const auto rr = engine.run();
  double oracle_low = 0.0;
  for (NodeId n = 0; n < cfg.workload.nranks; ++n) {
    const auto gaps = node_link_idle_gaps(engine.fabric(), n, rr.exec_time);
    const auto out = evaluate_oracle(gaps, rr.exec_time, cfg.ppa.t_react,
                                     cfg.ppa.t_react);
    oracle_low += out.low_residency();
  }
  oracle_low /= cfg.workload.nranks;
  EXPECT_GE(oracle_low + 1e-9, r.power.mean_low_residency);
}

TEST(Integration, WeakScalingRetainsSavings) {
  // §VI: the mechanism should hold up better under weak scaling.
  ExperimentConfig strong = config("alya", 64);
  ExperimentConfig weak = config("alya", 64);
  weak.workload.weak_scaling = true;
  const auto s = run_experiment(strong);
  const auto w = run_experiment(weak);
  EXPECT_GT(w.power.switch_savings_pct, s.power.switch_savings_pct);
}

TEST(Integration, TimingMispredictsBounded) {
  const auto r = run_experiment(config("alya", 8));
  // Wake penalties exist but must be rare relative to power requests.
  EXPECT_LT(r.on_demand_wakes, r.agents.power_requests);
}

TEST(Integration, DeterministicResults) {
  const auto a = run_experiment(config("gromacs", 8));
  const auto b = run_experiment(config("gromacs", 8));
  EXPECT_EQ(a.managed_time, b.managed_time);
  EXPECT_DOUBLE_EQ(a.power.switch_savings_pct, b.power.switch_savings_pct);
  EXPECT_DOUBLE_EQ(a.hit_rate_pct, b.hit_rate_pct);
}

}  // namespace
}  // namespace ibpower
