// Property tests of the IbLink lane state machine under randomized
// interleavings of power requests and transmissions.
#include <gtest/gtest.h>

#include "network/ib_link.hpp"
#include "util/rng.hpp"

namespace ibpower {
namespace {

using namespace ibpower::literals;

class LinkProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LinkProperty, RandomOpsKeepInvariants) {
  Rng rng(GetParam());
  IbLink link;
  TimeNs t{};
  TimeNs last_busy_end[2] = {};

  for (int op = 0; op < 400; ++op) {
    t += TimeNs::from_us(rng.uniform(1.0, 200.0));
    if (rng.bernoulli(0.3)) {
      link.request_low_power(t, TimeNs::from_us(rng.uniform(5.0, 500.0)));
    } else {
      const auto dir = rng.bernoulli(0.5) ? Direction::Up : Direction::Down;
      const Bytes bytes = 1 << (6 + rng.uniform_below(14));
      const auto res = link.reserve(dir, t, bytes);
      // Causality: data never flows before it is ready.
      EXPECT_GE(res.start, t);
      EXPECT_EQ(res.end - res.start, link.serialization_time(bytes));
      // Wake penalty is bounded by the reactivation time plus any residual
      // deactivation that must finish first.
      EXPECT_LE(res.power_delay, 2 * link.config().t_react);
      // FIFO per direction.
      EXPECT_GE(res.start, last_busy_end[static_cast<int>(dir)]);
      last_busy_end[static_cast<int>(dir)] = res.end;
    }
  }

  const TimeNs end = t + 1_ms;
  link.finish(end);

  // Mode segments are strictly ordered and alternate (no two consecutive
  // segments share a mode).
  const auto& segs = link.segments();
  for (std::size_t i = 1; i < segs.size(); ++i) {
    EXPECT_LT(segs[i - 1].begin, segs[i].begin);
    EXPECT_NE(segs[i - 1].mode, segs[i].mode);
  }

  // Residencies partition the execution.
  const TimeNs sum = link.residency(LinkPowerMode::FullPower) +
                     link.residency(LinkPowerMode::LowPower) +
                     link.residency(LinkPowerMode::Transition);
  EXPECT_EQ(sum, end);

  // Busy intervals are disjoint within a direction (IntervalSet invariant)
  // and no transmission overlaps a low-power span: data only flows at full
  // width in the default configuration.
  for (const Direction dir : {Direction::Up, Direction::Down}) {
    for (const auto& iv : link.busy(dir).intervals()) {
      // Sample the mode at a few points inside the busy window.
      for (const TimeNs probe :
           {iv.begin, iv.begin + TimeNs{(iv.end - iv.begin).ns / 2}}) {
        EXPECT_NE(link.mode_at(probe), LinkPowerMode::LowPower)
            << "transmission during low power at " << to_string(probe);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LinkProperty,
                         ::testing::Range<std::uint64_t>(100, 112));

TEST(LinkProperty, ReducedWidthAblationAllowsLowPowerTransmission) {
  LinkConfig cfg;
  cfg.transmit_at_reduced_width = true;
  IbLink link(cfg);
  link.request_low_power(0_us, 10_ms);
  const auto res = link.reserve(Direction::Up, 1_ms, 4096);
  EXPECT_EQ(res.power_delay, TimeNs::zero());
  EXPECT_EQ(link.mode_at(1_ms), LinkPowerMode::LowPower);
  link.finish(20_ms);
}

}  // namespace
}  // namespace ibpower
