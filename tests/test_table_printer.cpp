#include "util/table_printer.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace ibpower {
namespace {

TEST(TablePrinter, AlignsColumns) {
  TablePrinter t({"App", "Value"});
  t.add_row({"GROMACS", "1"});
  t.add_row({"x", "123456"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  // All lines have equal width.
  std::istringstream lines(out);
  std::string line;
  std::size_t width = 0;
  while (std::getline(lines, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width) << line;
  }
  EXPECT_NE(out.find("GROMACS"), std::string::npos);
  EXPECT_NE(out.find("123456"), std::string::npos);
}

TEST(TablePrinter, SeparatorInserted) {
  TablePrinter t({"A"});
  t.add_row({"1"});
  t.add_separator();
  t.add_row({"2"});
  std::ostringstream os;
  t.print(os);
  // Rules: top, under header, separator, bottom = 4 lines starting with '+'.
  int rules = 0;
  std::istringstream lines(os.str());
  std::string line;
  while (std::getline(lines, line)) {
    if (!line.empty() && line[0] == '+') ++rules;
  }
  EXPECT_EQ(rules, 4);
}

TEST(TablePrinter, ShortRowsPadded) {
  TablePrinter t({"A", "B", "C"});
  t.add_row({"only one"});
  std::ostringstream os;
  t.print(os);
  EXPECT_EQ(t.row_count(), 1u);
}

TEST(TablePrinter, FmtHelpers) {
  EXPECT_EQ(TablePrinter::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::fmt(3.0, 0), "3");
  EXPECT_EQ(TablePrinter::pct(12.345, 1), "12.3%");
}

TEST(TablePrinter, BannerMentionsTableII) {
  std::ostringstream os;
  print_report_banner(os, "test");
  const std::string out = os.str();
  EXPECT_NE(out.find("XGFT(2;18,14;1,18)"), std::string::npos);
  EXPECT_NE(out.find("40 Gbit/s"), std::string::npos);
  EXPECT_NE(out.find("Treact = 10 us"), std::string::npos);
  EXPECT_NE(out.find("43%"), std::string::npos);
}

}  // namespace
}  // namespace ibpower
