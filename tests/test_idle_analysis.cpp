#include "trace/idle_analysis.hpp"

#include <gtest/gtest.h>

namespace ibpower {
namespace {

using namespace ibpower::literals;

TEST(IdleAnalysis, ClassifiesIntoPaperBuckets) {
  const std::vector<TimeNs> durations = {
      5_us, 10_us, 19_us,          // bucket 0: < 20us
      20_us, 100_us, 199_us,       // bucket 1: 20-200us
      200_us, 1_ms,                // bucket 2: >= 200us
  };
  const IdleDistribution d = classify_idle_durations(durations);
  EXPECT_EQ(d.buckets[0].count, 3u);
  EXPECT_EQ(d.buckets[1].count, 3u);
  EXPECT_EQ(d.buckets[2].count, 2u);
  EXPECT_EQ(d.total_intervals, 8u);
  EXPECT_EQ(d.total_idle, 5_us + 10_us + 19_us + 20_us + 100_us + 199_us +
                              200_us + 1_ms);
}

TEST(IdleAnalysis, PercentagesSumTo100) {
  const std::vector<TimeNs> durations = {1_us, 50_us, 500_us, 2_us, 300_us};
  const IdleDistribution d = classify_idle_durations(durations);
  double pct_count = 0.0, pct_time = 0.0;
  for (const auto& b : d.buckets) {
    pct_count += b.pct_intervals;
    pct_time += b.pct_idle_time;
  }
  EXPECT_NEAR(pct_count, 100.0, 1e-9);
  EXPECT_NEAR(pct_time, 100.0, 1e-9);
}

TEST(IdleAnalysis, EmptyInput) {
  const IdleDistribution d = classify_idle_durations({});
  EXPECT_EQ(d.total_intervals, 0u);
  EXPECT_EQ(d.total_idle, TimeNs::zero());
  EXPECT_DOUBLE_EQ(d.reducible_time_fraction(), 0.0);
}

TEST(IdleAnalysis, ZeroAndNegativeDurationsIgnored) {
  const IdleDistribution d =
      classify_idle_durations({TimeNs::zero(), TimeNs{-5}, 30_us});
  EXPECT_EQ(d.total_intervals, 1u);
  EXPECT_EQ(d.buckets[1].count, 1u);
}

TEST(IdleAnalysis, ReducibleFractionMatchesPaperClaim) {
  // Long intervals dominate idle time even when tiny intervals dominate the
  // count — the paper's Table I core observation.
  std::vector<TimeNs> durations(1000, 2_us);  // 2ms total
  durations.push_back(500_ms);
  const IdleDistribution d = classify_idle_durations(durations);
  EXPECT_GT(d.buckets[0].pct_intervals, 99.0);
  EXPECT_GT(d.reducible_time_fraction(), 0.99);
}

TEST(IdleAnalysis, CustomEdges) {
  IdleBucketEdges edges;
  edges.short_edge = 50_us;
  edges.long_edge = 500_us;
  const IdleDistribution d =
      classify_idle_durations({40_us, 60_us, 600_us}, edges);
  EXPECT_EQ(d.buckets[0].count, 1u);
  EXPECT_EQ(d.buckets[1].count, 1u);
  EXPECT_EQ(d.buckets[2].count, 1u);
}

TEST(IdleAnalysis, IntervalOverloadMatchesDurations) {
  std::vector<TimeInterval> intervals = {{0_us, 10_us}, {20_us, 320_us}};
  const IdleDistribution a = classify_idle_intervals(intervals);
  const IdleDistribution b = classify_idle_durations({10_us, 300_us});
  EXPECT_EQ(a.buckets[0].count, b.buckets[0].count);
  EXPECT_EQ(a.buckets[2].count, b.buckets[2].count);
  EXPECT_EQ(a.total_idle, b.total_idle);
}

}  // namespace
}  // namespace ibpower
