#include "core/gram_builder.hpp"

#include <gtest/gtest.h>

namespace ibpower {
namespace {

using namespace ibpower::literals;

constexpr MpiCall SR = MpiCall::Sendrecv;
constexpr MpiCall AR = MpiCall::Allreduce;

class GramBuilderTest : public ::testing::Test {
 protected:
  GramInterner interner_;
  GramBuilder builder_{20_us, &interner_};
  TimeNs t_{};

  // Feed a call lasting `dur` after an idle gap of `gap`.
  std::optional<ClosedGram> call(MpiCall c, TimeNs gap, TimeNs dur = 1_us) {
    t_ += gap;
    auto closed = builder_.on_call_enter(c, t_);
    t_ += dur;
    builder_.on_call_exit(t_);
    return closed;
  }
};

TEST_F(GramBuilderTest, FirstCallOpensGramWithoutClosing) {
  EXPECT_FALSE(call(SR, 0_us).has_value());
  EXPECT_EQ(builder_.open_calls().size(), 1u);
  EXPECT_EQ(builder_.closed_count(), 0u);
}

TEST_F(GramBuilderTest, CloseGapsGroupCalls) {
  call(SR, 0_us);
  call(SR, 5_us);   // < GT: groups
  call(SR, 19_us);  // < GT: groups
  EXPECT_EQ(builder_.open_calls().size(), 3u);
  EXPECT_EQ(builder_.closed_count(), 0u);
}

TEST_F(GramBuilderTest, DistantCallClosesGram) {
  call(SR, 0_us);
  call(SR, 2_us);
  const auto closed = call(AR, 50_us);  // >= GT: closes [SR, SR]
  ASSERT_TRUE(closed.has_value());
  EXPECT_EQ(closed->n_calls, 2u);
  EXPECT_EQ(closed->position, 0u);
  EXPECT_EQ(interner_.calls_of(closed->id),
            (std::vector<MpiCall>{SR, SR}));
  EXPECT_EQ(builder_.open_calls().size(), 1u);  // the AR
}

TEST_F(GramBuilderTest, GapExactlyAtThresholdCloses) {
  call(SR, 0_us);
  const auto closed = call(SR, 20_us);  // == GT closes (Alg. 1: < GT groups)
  EXPECT_TRUE(closed.has_value());
}

TEST_F(GramBuilderTest, PrecedingIdleRecorded) {
  call(SR, 0_us);
  call(AR, 100_us);            // closes gram 0
  const auto g1 = call(SR, 70_us);  // closes gram 1 ([AR])
  ASSERT_TRUE(g1.has_value());
  EXPECT_EQ(g1->preceding_idle, 100_us);
  EXPECT_EQ(g1->n_calls, 1u);
}

TEST_F(GramBuilderTest, GramTimesSpanFirstEnterToLastExit) {
  call(SR, 0_us, 2_us);   // [0, 2]
  call(SR, 5_us, 3_us);   // [7, 10]
  const auto closed = call(AR, 90_us);
  ASSERT_TRUE(closed.has_value());
  EXPECT_EQ(closed->begin, 0_us);
  EXPECT_EQ(closed->end, 10_us);
}

TEST_F(GramBuilderTest, FlushClosesOpenGram) {
  call(SR, 0_us);
  call(SR, 2_us);
  const auto closed = builder_.flush();
  ASSERT_TRUE(closed.has_value());
  EXPECT_EQ(closed->n_calls, 2u);
  EXPECT_FALSE(builder_.flush().has_value());  // now empty
}

TEST_F(GramBuilderTest, PositionsIncrease) {
  call(SR, 0_us);
  const auto g0 = call(AR, 50_us);
  const auto g1 = call(SR, 50_us);
  const auto g2 = call(AR, 50_us);
  ASSERT_TRUE(g0 && g1 && g2);
  EXPECT_EQ(g0->position, 0u);
  EXPECT_EQ(g1->position, 1u);
  EXPECT_EQ(g2->position, 2u);
  EXPECT_EQ(builder_.closed_count(), 3u);
}

TEST_F(GramBuilderTest, IdenticalContentsShareGramId) {
  call(SR, 0_us);
  call(SR, 2_us);
  const auto a = call(AR, 50_us);  // closes [SR,SR]
  const auto b = call(SR, 50_us);  // closes [AR]
  call(SR, 2_us);
  const auto c = call(AR, 50_us);  // closes [SR,SR] again
  ASSERT_TRUE(a && b && c);
  EXPECT_EQ(a->id, c->id);
  EXPECT_NE(a->id, b->id);
}

TEST(GramInterner, ToStringMatchesPaperNotation) {
  GramInterner interner;
  const GramId id = interner.intern({SR, SR, SR});
  EXPECT_EQ(interner.to_string(id), "41-41-41");
  const GramId id2 = interner.intern({AR});
  EXPECT_EQ(interner.to_string(id2), "10");
}

TEST(GramInterner, InternIsIdempotent) {
  GramInterner interner;
  const GramId a = interner.intern({SR, AR});
  const GramId b = interner.intern({SR, AR});
  const GramId c = interner.intern({AR, SR});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(interner.size(), 2u);
}

}  // namespace
}  // namespace ibpower
