#include "util/time_types.hpp"

#include <gtest/gtest.h>

namespace ibpower {
namespace {

using namespace ibpower::literals;

TEST(TimeNs, LiteralsAndConversions) {
  EXPECT_EQ((1_us).ns, 1000);
  EXPECT_EQ((1_ms).ns, 1000000);
  EXPECT_EQ((1_s).ns, 1000000000);
  EXPECT_EQ(TimeNs::from_us(std::int64_t{20}).ns, 20000);
  EXPECT_DOUBLE_EQ((1500_ns).us(), 1.5);
  EXPECT_DOUBLE_EQ((2500_us).ms(), 2.5);
  EXPECT_DOUBLE_EQ((1_s).s(), 1.0);
}

TEST(TimeNs, FromUsRoundsToNearest) {
  EXPECT_EQ(TimeNs::from_us(0.0004).ns, 0);
  EXPECT_EQ(TimeNs::from_us(0.0006).ns, 1);
  EXPECT_EQ(TimeNs::from_us(1.2345).ns, 1235);  // 1234.5 ns rounds up
}

TEST(TimeNs, Arithmetic) {
  EXPECT_EQ((3_us + 2_us).ns, 5000);
  EXPECT_EQ((3_us - 5_us).ns, -2000);
  EXPECT_EQ((3_us * std::int64_t{4}).ns, 12000);
  EXPECT_EQ((3_us * 4).ns, 12000);
  EXPECT_EQ((4 * 3_us).ns, 12000);
  EXPECT_DOUBLE_EQ(6_us / 3_us, 2.0);
}

TEST(TimeNs, ScaleByDoubleRoundsToNearest) {
  EXPECT_EQ((100_us * 0.1).ns, 10000);
  EXPECT_EQ((TimeNs{3} * 0.5).ns, 2);  // 1.5 + 0.5 = 2
  EXPECT_EQ((1_ms * 0.0001).ns, 100);
}

TEST(TimeNs, Comparisons) {
  EXPECT_LT(1_us, 2_us);
  EXPECT_LE(2_us, 2_us);
  EXPECT_GT(1_ms, 999_us);
  EXPECT_EQ(min(3_us, 4_us), 3_us);
  EXPECT_EQ(max(3_us, 4_us), 4_us);
}

TEST(TimeNs, ClampNonnegative) {
  EXPECT_EQ(clamp_nonnegative(TimeNs{-5}), TimeNs::zero());
  EXPECT_EQ(clamp_nonnegative(5_ns), 5_ns);
}

TEST(TimeNs, ToString) {
  EXPECT_EQ(to_string(500_ns), "500ns");
  EXPECT_EQ(to_string(1500_ns), "1.5us");
  EXPECT_EQ(to_string(TimeNs::from_ms(2.5)), "2.5ms");
  EXPECT_EQ(to_string(TimeNs{0} - TimeNs{1500}), "-1.5us");
}

TEST(TimeInterval, DurationAndContains) {
  const TimeInterval iv{10_us, 20_us};
  EXPECT_EQ(iv.duration(), 10_us);
  EXPECT_FALSE(iv.empty());
  EXPECT_TRUE(iv.contains(10_us));
  EXPECT_TRUE(iv.contains(19_us));
  EXPECT_FALSE(iv.contains(20_us));  // half-open
  EXPECT_FALSE(iv.contains(9_us));
}

TEST(TimeInterval, Overlaps) {
  const TimeInterval a{0_us, 10_us};
  EXPECT_TRUE(a.overlaps({5_us, 15_us}));
  EXPECT_FALSE(a.overlaps({10_us, 15_us}));  // touching is not overlapping
  EXPECT_TRUE(a.overlaps({0_us, 1_us}));
}

TEST(TimeInterval, EmptyInterval) {
  const TimeInterval e{5_us, 5_us};
  EXPECT_TRUE(e.empty());
  EXPECT_EQ(e.duration(), TimeNs::zero());
}

}  // namespace
}  // namespace ibpower
