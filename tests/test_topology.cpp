#include "network/topology.hpp"

#include <gtest/gtest.h>

#include <set>

namespace ibpower {
namespace {

TEST(Topology, PaperInstanceDimensions) {
  // XGFT(2; 18, 14; 1, 18) — Table II.
  const FatTreeTopology topo;
  EXPECT_EQ(topo.num_nodes(), 252);
  EXPECT_EQ(topo.num_leaf_switches(), 14);
  EXPECT_EQ(topo.num_top_switches(), 18);
  EXPECT_EQ(topo.num_links(), 252 + 14 * 18);
}

TEST(Topology, LeafAssignment) {
  const FatTreeTopology topo;
  EXPECT_EQ(topo.leaf_of(0), 0);
  EXPECT_EQ(topo.leaf_of(17), 0);
  EXPECT_EQ(topo.leaf_of(18), 1);
  EXPECT_EQ(topo.leaf_of(251), 13);
}

TEST(Topology, LinkIdsDisjoint) {
  const FatTreeTopology topo;
  std::set<LinkId> ids;
  for (int n = 0; n < topo.num_nodes(); ++n) {
    ids.insert(topo.node_uplink(n));
  }
  for (int l = 0; l < topo.num_leaf_switches(); ++l) {
    for (int t = 0; t < topo.num_top_switches(); ++t) {
      ids.insert(topo.trunk_link(l, t));
    }
  }
  EXPECT_EQ(static_cast<int>(ids.size()), topo.num_links());
  for (const LinkId id : ids) {
    EXPECT_GE(id, 0);
    EXPECT_LT(id, topo.num_links());
  }
}

TEST(Topology, IsNodeLink) {
  const FatTreeTopology topo;
  EXPECT_TRUE(topo.is_node_link(topo.node_uplink(100)));
  EXPECT_FALSE(topo.is_node_link(topo.trunk_link(0, 0)));
}

TEST(Topology, SameLeafRoute) {
  const FatTreeTopology topo;
  const auto path = topo.route(0, 5, /*top=*/3);
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(path[0], topo.node_uplink(0));
  EXPECT_EQ(path[1], topo.node_uplink(5));
  EXPECT_EQ(topo.hop_count(0, 5), 1);
}

TEST(Topology, CrossLeafRoute) {
  const FatTreeTopology topo;
  const auto path = topo.route(0, 20, /*top=*/7);
  ASSERT_EQ(path.size(), 4u);
  EXPECT_EQ(path[0], topo.node_uplink(0));
  EXPECT_EQ(path[1], topo.trunk_link(0, 7));
  EXPECT_EQ(path[2], topo.trunk_link(1, 7));
  EXPECT_EQ(path[3], topo.node_uplink(20));
  EXPECT_EQ(topo.hop_count(0, 20), 3);
}

TEST(Topology, LeafSwitchPortCountIsSx6036Class) {
  const FatTreeTopology topo;
  // 18 node ports + 18 up ports = 36 ports (SX6036).
  EXPECT_EQ(topo.leaf_switch_ports(0).size(), 36u);
  EXPECT_EQ(topo.top_switch_ports(0).size(), 14u);
}

TEST(Topology, CustomParams) {
  const FatTreeTopology topo(XgftParams{4, 3, 1, 2});
  EXPECT_EQ(topo.num_nodes(), 12);
  EXPECT_EQ(topo.num_leaf_switches(), 3);
  EXPECT_EQ(topo.num_top_switches(), 2);
  const auto path = topo.route(0, 11, 1);
  ASSERT_EQ(path.size(), 4u);
}

}  // namespace
}  // namespace ibpower
