#include "network/topology.hpp"

#include <gtest/gtest.h>

#include <set>
#include <tuple>

namespace ibpower {
namespace {

TEST(Topology, PaperInstanceDimensions) {
  // XGFT(2; 18, 14; 1, 18) — Table II.
  const FatTreeTopology topo;
  EXPECT_EQ(topo.num_nodes(), 252);
  EXPECT_EQ(topo.num_leaf_switches(), 14);
  EXPECT_EQ(topo.num_top_switches(), 18);
  EXPECT_EQ(topo.num_links(), 252 + 14 * 18);
}

TEST(Topology, LeafAssignment) {
  const FatTreeTopology topo;
  EXPECT_EQ(topo.leaf_of(0), 0);
  EXPECT_EQ(topo.leaf_of(17), 0);
  EXPECT_EQ(topo.leaf_of(18), 1);
  EXPECT_EQ(topo.leaf_of(251), 13);
}

TEST(Topology, LinkIdsDisjoint) {
  const FatTreeTopology topo;
  std::set<LinkId> ids;
  for (int n = 0; n < topo.num_nodes(); ++n) {
    ids.insert(topo.node_uplink(n));
  }
  for (int l = 0; l < topo.num_leaf_switches(); ++l) {
    for (int t = 0; t < topo.num_top_switches(); ++t) {
      ids.insert(topo.trunk_link(l, t));
    }
  }
  EXPECT_EQ(static_cast<int>(ids.size()), topo.num_links());
  for (const LinkId id : ids) {
    EXPECT_GE(id, 0);
    EXPECT_LT(id, topo.num_links());
  }
}

TEST(Topology, IsNodeLink) {
  const FatTreeTopology topo;
  EXPECT_TRUE(topo.is_node_link(topo.node_uplink(100)));
  EXPECT_FALSE(topo.is_node_link(topo.trunk_link(0, 0)));
}

TEST(Topology, SameLeafRoute) {
  const FatTreeTopology topo;
  const auto path = topo.route(0, 5, /*top=*/3);
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(path[0], topo.node_uplink(0));
  EXPECT_EQ(path[1], topo.node_uplink(5));
  EXPECT_EQ(topo.hop_count(0, 5), 1);
}

TEST(Topology, CrossLeafRoute) {
  const FatTreeTopology topo;
  const auto path = topo.route(0, 20, /*top=*/7);
  ASSERT_EQ(path.size(), 4u);
  EXPECT_EQ(path[0], topo.node_uplink(0));
  EXPECT_EQ(path[1], topo.trunk_link(0, 7));
  EXPECT_EQ(path[2], topo.trunk_link(1, 7));
  EXPECT_EQ(path[3], topo.node_uplink(20));
  EXPECT_EQ(topo.hop_count(0, 20), 3);
}

TEST(Topology, LeafSwitchPortCountIsSx6036Class) {
  const FatTreeTopology topo;
  // 18 node ports + 18 up ports = 36 ports (SX6036).
  EXPECT_EQ(topo.leaf_switch_ports(0).size(), 36u);
  EXPECT_EQ(topo.top_switch_ports(0).size(), 14u);
}

TEST(Topology, CustomParams) {
  const FatTreeTopology topo(XgftParams{4, 3, 1, 2});
  EXPECT_EQ(topo.num_nodes(), 12);
  EXPECT_EQ(topo.num_leaf_switches(), 3);
  EXPECT_EQ(topo.num_top_switches(), 2);
  const auto path = topo.route(0, 11, 1);
  ASSERT_EQ(path.size(), 4u);
}

TEST(Topology, ExplicitUnitThirdLevelIsTheTwoLevelTree) {
  const FatTreeTopology two(XgftParams{18, 14, 1, 18});
  const FatTreeTopology explicit3(XgftParams{18, 14, 1, 18, 1, 1});
  EXPECT_EQ(two.levels(), 2);
  EXPECT_EQ(explicit3.levels(), 2);
  EXPECT_EQ(explicit3.num_nodes(), two.num_nodes());
  EXPECT_EQ(explicit3.num_links(), two.num_links());
  for (const auto [src, dst, top] :
       {std::tuple{0, 20, 7}, std::tuple{0, 5, 3}, std::tuple{200, 37, 17}}) {
    const auto a = two.route(src, dst, top);
    const auto b = explicit3.route(src, dst, top);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t h = 0; h < a.size(); ++h) EXPECT_EQ(a[h], b[h]);
  }
}

TEST(Topology, ThreeLevel512RankDimensions) {
  // XGFT(3; 8,8,8; 1,4,2): 512 nodes, 64 leaves in 8 groups of 8, 8 roots.
  const FatTreeTopology topo(XgftParams{8, 8, 1, 4, 8, 2});
  EXPECT_EQ(topo.levels(), 3);
  EXPECT_EQ(topo.num_nodes(), 512);
  EXPECT_EQ(topo.num_leaf_switches(), 64);
  EXPECT_EQ(topo.num_groups(), 8);
  EXPECT_EQ(topo.num_top_switches(), 8);
  // 512 uplinks + 64*4 leaf trunks + 8 groups * 8 roots mid trunks.
  EXPECT_EQ(topo.num_links(), 512 + 256 + 64);
  EXPECT_EQ(topo.leaf_of(511), 63);
  EXPECT_EQ(topo.group_of_leaf(63), 7);
}

TEST(Topology, ThreeLevelCrossGroupRoute) {
  const FatTreeTopology topo(XgftParams{2, 2, 1, 2, 2, 2});
  EXPECT_EQ(topo.levels(), 3);
  EXPECT_EQ(topo.num_nodes(), 8);
  // Node 0 (leaf 0, group 0) -> node 6 (leaf 3, group 1).
  const auto path = topo.route(0, 6, /*top=*/3);
  ASSERT_EQ(path.size(), 6u);
  EXPECT_EQ(path[0], topo.node_uplink(0));
  EXPECT_EQ(path[1], topo.trunk_link(0, 3));
  EXPECT_EQ(path[2], topo.mid_trunk_link(0, 3));
  EXPECT_EQ(path[3], topo.mid_trunk_link(1, 3));
  EXPECT_EQ(path[4], topo.trunk_link(3, 3));
  EXPECT_EQ(path[5], topo.node_uplink(6));
  EXPECT_EQ(topo.hop_count(0, 6), 5);
  EXPECT_EQ(topo.route_length(0, 6), 6);
}

TEST(Topology, ThreeLevelSameGroupRouteSharesTheMidTrunk) {
  const FatTreeTopology topo(XgftParams{2, 2, 1, 2, 2, 2});
  // Node 0 (leaf 0) -> node 2 (leaf 1), both group 0: the climb and the
  // descent use the same group-to-root trunk (full-duplex link).
  const auto path = topo.route(0, 2, /*top=*/1);
  ASSERT_EQ(path.size(), 6u);
  EXPECT_EQ(path[2], topo.mid_trunk_link(0, 1));
  EXPECT_EQ(path[3], topo.mid_trunk_link(0, 1));
}

TEST(Topology, ThreeLevelLinkIdsDisjoint) {
  const FatTreeTopology topo(XgftParams{2, 2, 1, 2, 2, 2});
  std::set<LinkId> ids;
  for (int n = 0; n < topo.num_nodes(); ++n) ids.insert(topo.node_uplink(n));
  for (int l = 0; l < topo.num_leaf_switches(); ++l) {
    for (int a = 0; a < 2; ++a) {
      ids.insert(topo.num_nodes() + l * 2 + a);
    }
  }
  for (int g = 0; g < topo.num_groups(); ++g) {
    for (int t = 0; t < topo.num_top_switches(); ++t) {
      ids.insert(topo.mid_trunk_link(g, t));
    }
  }
  EXPECT_EQ(static_cast<int>(ids.size()), topo.num_links());
  for (const LinkId id : ids) {
    EXPECT_GE(id, 0);
    EXPECT_LT(id, topo.num_links());
  }
}

}  // namespace
}  // namespace ibpower
