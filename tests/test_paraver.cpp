#include "trace/paraver.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace ibpower {
namespace {

using namespace ibpower::literals;

TEST(StateTimeline, ResidencyComputation) {
  StateTimeline tl(2, 100_us);
  tl.add(0, 0_us, 40_us, 1);
  tl.add(0, 40_us, 100_us, 0);
  tl.add(1, 10_us, 30_us, 1);
  EXPECT_EQ(tl.residency(0, 1), 40_us);
  EXPECT_EQ(tl.residency(0, 0), 60_us);
  EXPECT_EQ(tl.residency(1, 1), 20_us);
  EXPECT_EQ(tl.residency(1, 0), TimeNs::zero());
}

TEST(StateTimeline, ResidencyClipsToDuration) {
  StateTimeline tl(1, 50_us);
  tl.add(0, 40_us, 80_us, 2);
  EXPECT_EQ(tl.residency(0, 2), 10_us);
}

TEST(StateTimeline, EmptySpansIgnored) {
  StateTimeline tl(1, 50_us);
  tl.add(0, 10_us, 10_us, 1);
  EXPECT_TRUE(tl.records().empty());
}

TEST(StateTimeline, PrvOutputSortedAndComplete) {
  StateTimeline tl(2, 100_us);
  tl.add(1, 50_us, 60_us, 2);
  tl.add(0, 0_us, 40_us, 1);
  std::ostringstream os;
  tl.write_prv(os, "demo");
  const std::string out = os.str();
  EXPECT_NE(out.find("duration_ns=100000"), std::string::npos);
  EXPECT_NE(out.find("app=demo"), std::string::npos);
  // Sorted by begin: rank 0 record first.
  const auto p0 = out.find("1:0:0:40000:1");
  const auto p1 = out.find("1:1:50000:60000:2");
  ASSERT_NE(p0, std::string::npos);
  ASSERT_NE(p1, std::string::npos);
  EXPECT_LT(p0, p1);
}

TEST(StateTimeline, AsciiRenderMajorityState) {
  StateTimeline tl(1, 100_us);
  tl.add(0, 0_us, 50_us, 0);
  tl.add(0, 50_us, 100_us, 1);
  std::ostringstream os;
  tl.render_ascii(os, 10, {{0, '.'}, {1, '#'}});
  const std::string line = os.str();
  EXPECT_NE(line.find("....."), std::string::npos);
  EXPECT_NE(line.find("#####"), std::string::npos);
}

TEST(StateTimeline, AsciiRenderUnknownStateGlyph) {
  StateTimeline tl(1, 10_us);
  tl.add(0, 0_us, 10_us, 42);
  std::ostringstream os;
  tl.render_ascii(os, 4, {{0, '.'}});
  EXPECT_NE(os.str().find("????"), std::string::npos);
}

TEST(StateTimeline, PrvRoundTrip) {
  StateTimeline tl(3, 500_us);
  tl.add(0, 0_us, 200_us, 0);
  tl.add(0, 200_us, 500_us, 1);
  tl.add(2, 100_us, 150_us, 2);
  std::ostringstream os;
  tl.write_prv(os, "demo");

  std::istringstream is(os.str());
  std::string app;
  const StateTimeline loaded = StateTimeline::read_prv(is, &app);
  EXPECT_EQ(app, "demo");
  EXPECT_EQ(loaded.nrows(), 3);
  EXPECT_EQ(loaded.duration(), 500_us);
  EXPECT_EQ(loaded.records().size(), tl.records().size());
  for (int row = 0; row < 3; ++row) {
    for (int state = 0; state < 3; ++state) {
      EXPECT_EQ(loaded.residency(row, state), tl.residency(row, state))
          << row << "/" << state;
    }
  }
}

TEST(StateTimeline, ReadPrvRejectsGarbage) {
  std::istringstream no_header("1:0:0:10:1\n");
  EXPECT_THROW(StateTimeline::read_prv(no_header), std::runtime_error);

  std::istringstream bad_record(
      "#Paraver-like (ibpower:v1): duration_ns=100:rows=1:app=x\nnot-a-record\n");
  EXPECT_THROW(StateTimeline::read_prv(bad_record), std::runtime_error);

  std::istringstream bad_row(
      "#Paraver-like (ibpower:v1): duration_ns=100:rows=1:app=x\n1:5:0:10:1\n");
  EXPECT_THROW(StateTimeline::read_prv(bad_row), std::runtime_error);
}

TEST(StateTimeline, MultiRowRender) {
  StateTimeline tl(3, 30_us);
  for (int r = 0; r < 3; ++r) tl.add(r, 0_us, 30_us, r);
  std::ostringstream os;
  tl.render_ascii(os, 6, {{0, 'a'}, {1, 'b'}, {2, 'c'}});
  const std::string out = os.str();
  EXPECT_NE(out.find("aaaaaa"), std::string::npos);
  EXPECT_NE(out.find("bbbbbb"), std::string::npos);
  EXPECT_NE(out.find("cccccc"), std::string::npos);
}

}  // namespace
}  // namespace ibpower
