#include "sim/des.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "util/inplace_callback.hpp"

// Counting allocator: replace global operator new so the no-allocation
// scheduling guarantee of the DES hot path is pinned by a test rather than
// a heaptrack spot check.
namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace ibpower {
namespace {

using namespace ibpower::literals;

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(30_us, [&] { order.push_back(3); });
  q.schedule(10_us, [&] { order.push_back(1); });
  q.schedule(20_us, [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30_us);
  EXPECT_EQ(q.processed(), 3u);
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5_us, [&order, i] { order.push_back(i); });
  }
  q.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CallbacksCanSchedule) {
  EventQueue q;
  int fired = 0;
  q.schedule(1_us, [&] {
    ++fired;
    q.schedule(2_us, [&] {
      ++fired;
      q.schedule(3_us, [&] { ++fired; });
    });
  });
  q.run();
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(q.now(), 3_us);
}

TEST(EventQueue, SchedulingAtNowIsAllowed) {
  EventQueue q;
  bool ran = false;
  q.schedule(5_us, [&] { q.schedule(5_us, [&] { ran = true; }); });
  q.run();
  EXPECT_TRUE(ran);
}

TEST(EventQueue, RunNextSteps) {
  EventQueue q;
  q.schedule(1_us, [] {});
  q.schedule(2_us, [] {});
  EXPECT_TRUE(q.run_next());
  EXPECT_EQ(q.now(), 1_us);
  EXPECT_TRUE(q.run_next());
  EXPECT_FALSE(q.run_next());
}

TEST(EventQueue, EmptyQueue) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.run_next());
  EXPECT_EQ(q.now(), TimeNs::zero());
}

TEST(EventQueue, ReservedSchedulingDoesNotAllocate) {
  EventQueue q;
  q.reserve(1024);
  int sink = 0;
  const std::int64_t x = 1, y = 2, z = 3;  // 32-byte capture, fits inline
  const std::uint64_t before = g_alloc_count.load();
  for (int i = 0; i < 1000; ++i) {
    q.schedule(TimeNs{i}, [&sink, x, y, z] {
      sink += static_cast<int>(x + y + z);
    });
  }
  q.run();
  const std::uint64_t after = g_alloc_count.load();
  EXPECT_EQ(after - before, 0u)
      << "scheduling/running 1000 reserved events should not touch the heap";
  EXPECT_EQ(sink, 6000);
}

TEST(InplaceCallback, SmallCapturesStoreInline) {
  struct Small {
    std::int64_t a[6];
    void operator()() const {}
  };
  static_assert(EventQueue::Callback::stores_inline<Small>());
  struct Big {
    std::int64_t a[7];
    void operator()() const {}
  };
  static_assert(!EventQueue::Callback::stores_inline<Big>());
}

TEST(InplaceCallback, OversizedCapturesFallBackToHeap) {
  std::int64_t big[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  std::int64_t sum = 0;
  InplaceCallback<48> cb = [big, &sum] {
    for (const std::int64_t v : big) sum += v;
  };
  cb();
  EXPECT_EQ(sum, 36);
}

TEST(InplaceCallback, MoveTransfersOwnership) {
  int fired = 0;
  InplaceCallback<48> a = [&fired] { ++fired; };
  InplaceCallback<48> b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));
  EXPECT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(fired, 1);
  a = std::move(b);
  EXPECT_FALSE(static_cast<bool>(b));
  a();
  EXPECT_EQ(fired, 2);
}

TEST(InplaceCallback, MoveOnlyCaptureRunsAndDestroys) {
  auto p = std::make_unique<int>(5);
  int got = 0;
  {
    InplaceCallback<48> cb = [p = std::move(p), &got] { got = *p; };
    cb();
  }
  EXPECT_EQ(got, 5);
}

TEST(EventQueue, InterleavedScheduleAndRunNextKeepsOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(TimeNs{10}, [&] { order.push_back(1); });
  q.schedule(TimeNs{30}, [&] { order.push_back(3); });
  EXPECT_TRUE(q.run_next());
  q.schedule(TimeNs{20}, [&] { order.push_back(2); });
  q.schedule(TimeNs{40}, [&] { order.push_back(4); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(EventQueue, ManyEventsStressOrder) {
  EventQueue q;
  TimeNs last{-1};
  bool monotonic = true;
  for (int i = 0; i < 10000; ++i) {
    const TimeNs t{(i * 7919) % 10007};
    q.schedule(t, [&, t] {
      if (t < last) monotonic = false;
      last = t;
    });
  }
  q.run();
  EXPECT_TRUE(monotonic);
  EXPECT_EQ(q.processed(), 10000u);
}

}  // namespace
}  // namespace ibpower
