#include "sim/des.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ibpower {
namespace {

using namespace ibpower::literals;

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(30_us, [&] { order.push_back(3); });
  q.schedule(10_us, [&] { order.push_back(1); });
  q.schedule(20_us, [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30_us);
  EXPECT_EQ(q.processed(), 3u);
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5_us, [&order, i] { order.push_back(i); });
  }
  q.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CallbacksCanSchedule) {
  EventQueue q;
  int fired = 0;
  q.schedule(1_us, [&] {
    ++fired;
    q.schedule(2_us, [&] {
      ++fired;
      q.schedule(3_us, [&] { ++fired; });
    });
  });
  q.run();
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(q.now(), 3_us);
}

TEST(EventQueue, SchedulingAtNowIsAllowed) {
  EventQueue q;
  bool ran = false;
  q.schedule(5_us, [&] { q.schedule(5_us, [&] { ran = true; }); });
  q.run();
  EXPECT_TRUE(ran);
}

TEST(EventQueue, RunNextSteps) {
  EventQueue q;
  q.schedule(1_us, [] {});
  q.schedule(2_us, [] {});
  EXPECT_TRUE(q.run_next());
  EXPECT_EQ(q.now(), 1_us);
  EXPECT_TRUE(q.run_next());
  EXPECT_FALSE(q.run_next());
}

TEST(EventQueue, EmptyQueue) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.run_next());
  EXPECT_EQ(q.now(), TimeNs::zero());
}

TEST(EventQueue, ManyEventsStressOrder) {
  EventQueue q;
  TimeNs last{-1};
  bool monotonic = true;
  for (int i = 0; i < 10000; ++i) {
    const TimeNs t{(i * 7919) % 10007};
    q.schedule(t, [&, t] {
      if (t < last) monotonic = false;
      last = t;
    });
  }
  q.run();
  EXPECT_TRUE(monotonic);
  EXPECT_EQ(q.processed(), 10000u);
}

}  // namespace
}  // namespace ibpower
