#include "sim/des.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "util/inplace_callback.hpp"

// Counting allocator: replace global operator new so the no-allocation
// scheduling guarantee of the DES hot path is pinned by a test rather than
// a heaptrack spot check.
namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace ibpower {
namespace {

using namespace ibpower::literals;

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(30_us, [&] { order.push_back(3); });
  q.schedule(10_us, [&] { order.push_back(1); });
  q.schedule(20_us, [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30_us);
  EXPECT_EQ(q.processed(), 3u);
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5_us, [&order, i] { order.push_back(i); });
  }
  q.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CallbacksCanSchedule) {
  EventQueue q;
  int fired = 0;
  q.schedule(1_us, [&] {
    ++fired;
    q.schedule(2_us, [&] {
      ++fired;
      q.schedule(3_us, [&] { ++fired; });
    });
  });
  q.run();
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(q.now(), 3_us);
}

TEST(EventQueue, SchedulingAtNowIsAllowed) {
  EventQueue q;
  bool ran = false;
  q.schedule(5_us, [&] { q.schedule(5_us, [&] { ran = true; }); });
  q.run();
  EXPECT_TRUE(ran);
}

TEST(EventQueue, RunNextSteps) {
  EventQueue q;
  q.schedule(1_us, [] {});
  q.schedule(2_us, [] {});
  EXPECT_TRUE(q.run_next());
  EXPECT_EQ(q.now(), 1_us);
  EXPECT_TRUE(q.run_next());
  EXPECT_FALSE(q.run_next());
}

TEST(EventQueue, EmptyQueue) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.run_next());
  EXPECT_EQ(q.now(), TimeNs::zero());
}

TEST(EventQueue, ReservedSchedulingDoesNotAllocate) {
  EventQueue q;
  q.reserve(1024);
  int sink = 0;
  const std::int64_t x = 1, y = 2, z = 3;  // 32-byte capture, fits inline
  const std::uint64_t before = g_alloc_count.load();
  for (int i = 0; i < 1000; ++i) {
    q.schedule(TimeNs{i}, [&sink, x, y, z] {
      sink += static_cast<int>(x + y + z);
    });
  }
  q.run();
  const std::uint64_t after = g_alloc_count.load();
  EXPECT_EQ(after - before, 0u)
      << "scheduling/running 1000 reserved events should not touch the heap";
  EXPECT_EQ(sink, 6000);
}

TEST(InplaceCallback, SmallCapturesStoreInline) {
  struct Small {
    std::int64_t a[6];
    void operator()() const {}
  };
  static_assert(EventQueue::Callback::stores_inline<Small>());
  struct Big {
    std::int64_t a[7];
    void operator()() const {}
  };
  static_assert(!EventQueue::Callback::stores_inline<Big>());
}

TEST(InplaceCallback, OversizedCapturesFallBackToHeap) {
  std::int64_t big[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  std::int64_t sum = 0;
  InplaceCallback<48> cb = [big, &sum] {
    for (const std::int64_t v : big) sum += v;
  };
  cb();
  EXPECT_EQ(sum, 36);
}

TEST(InplaceCallback, MoveTransfersOwnership) {
  int fired = 0;
  InplaceCallback<48> a = [&fired] { ++fired; };
  InplaceCallback<48> b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));
  EXPECT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(fired, 1);
  a = std::move(b);
  EXPECT_FALSE(static_cast<bool>(b));
  a();
  EXPECT_EQ(fired, 2);
}

TEST(InplaceCallback, MoveOnlyCaptureRunsAndDestroys) {
  auto p = std::make_unique<int>(5);
  int got = 0;
  {
    InplaceCallback<48> cb = [p = std::move(p), &got] { got = *p; };
    cb();
  }
  EXPECT_EQ(got, 5);
}

TEST(EventQueue, InterleavedScheduleAndRunNextKeepsOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(TimeNs{10}, [&] { order.push_back(1); });
  q.schedule(TimeNs{30}, [&] { order.push_back(3); });
  EXPECT_TRUE(q.run_next());
  q.schedule(TimeNs{20}, [&] { order.push_back(2); });
  q.schedule(TimeNs{40}, [&] { order.push_back(4); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(EventQueue, FastPathDemotionKeepsOrder) {
  // Exercise the one-element `next` buffer: schedule a future event (takes
  // the fast path), then repeatedly schedule earlier events that must
  // demote the previous minimum into the heap — order must be unchanged.
  EventQueue q;
  std::vector<int> order;
  q.schedule(TimeNs{50}, [&] { order.push_back(50); });
  q.schedule(TimeNs{40}, [&] { order.push_back(40); });  // demotes 50
  q.schedule(TimeNs{30}, [&] { order.push_back(30); });  // demotes 40
  q.schedule(TimeNs{45}, [&] { order.push_back(45); });  // plain heap push
  q.schedule(TimeNs{30}, [&] { order.push_back(31); });  // tie: keeps order
  q.run();
  EXPECT_EQ(order, (std::vector<int>{30, 31, 40, 45, 50}));
}

TEST(EventQueue, ScheduleAtNowPopNextChains) {
  // The dominant replay pattern: each callback schedules the next event at
  // the current time, which must ride the O(1) fast path and still
  // interleave correctly with later heap entries.
  EventQueue q;
  std::vector<int> order;
  int depth = 0;
  q.schedule(TimeNs{100}, [&] { order.push_back(-1); });
  std::function<void()> chain = [&] {
    order.push_back(depth);
    if (++depth < 5) q.schedule(q.now(), [&] { chain(); });
  };
  q.schedule(TimeNs{10}, [&] { chain(); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, -1}));
  EXPECT_EQ(q.now(), TimeNs{100});
}

TEST(EventQueue, ResetForReuseClearsStateKeepsDeterminism) {
  EventQueue q;
  std::vector<int> first;
  q.schedule(TimeNs{2}, [&] { first.push_back(2); });
  q.schedule(TimeNs{1}, [&] { first.push_back(1); });
  q.run();
  EXPECT_EQ(q.processed(), 2u);

  q.reset_for_reuse();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.now(), TimeNs::zero());
  EXPECT_EQ(q.processed(), 0u);

  // Identical schedule sequence after reset produces the identical run —
  // seq restarts, so tie-breaking cannot depend on prior use.
  std::vector<int> again;
  q.schedule(TimeNs{5}, [&] { again.push_back(0); });
  q.schedule(TimeNs{5}, [&] { again.push_back(1); });
  q.schedule(TimeNs{3}, [&] { again.push_back(2); });
  q.run();
  EXPECT_EQ(again, (std::vector<int>{2, 0, 1}));
}

TEST(EventQueue, ReusedQueueDoesNotAllocate) {
  EventQueue q;
  for (int warm = 0; warm < 2; ++warm) {
    for (int i = 0; i < 500; ++i) {
      q.schedule(TimeNs{i}, [] {});
    }
    q.run();
    q.reset_for_reuse();
  }
  const std::uint64_t before = g_alloc_count.load();
  int sink = 0;
  for (int i = 0; i < 500; ++i) {
    q.schedule(TimeNs{i}, [&sink] { ++sink; });
  }
  q.run();
  const std::uint64_t after = g_alloc_count.load();
  EXPECT_EQ(after - before, 0u)
      << "a reused queue must keep heap/slab/free-list capacity";
  EXPECT_EQ(sink, 500);
}

TEST(EventQueue, ManyEventsStressOrder) {
  EventQueue q;
  TimeNs last{-1};
  bool monotonic = true;
  for (int i = 0; i < 10000; ++i) {
    const TimeNs t{(i * 7919) % 10007};
    q.schedule(t, [&, t] {
      if (t < last) monotonic = false;
      last = t;
    });
  }
  q.run();
  EXPECT_TRUE(monotonic);
  EXPECT_EQ(q.processed(), 10000u);
}

}  // namespace
}  // namespace ibpower
