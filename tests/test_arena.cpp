#include "util/arena.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace ibpower {
namespace {

TEST(MonotonicArena, AllocationsAreAlignedAndDisjoint) {
  MonotonicArena arena;
  auto* a = static_cast<char*>(arena.allocate(3, 1));
  auto* b = arena.allocate_array<std::uint64_t>(4);
  auto* c = arena.allocate_array<std::uint32_t>(1);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % alignof(std::uint64_t), 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c) % alignof(std::uint32_t), 0u);
  // Write everything and read it back: no overlap.
  a[0] = 'x';
  for (std::uint64_t i = 0; i < 4; ++i) b[i] = 0x1111111111111111ull * (i + 1);
  *c = 0xdeadbeef;
  EXPECT_EQ(a[0], 'x');
  EXPECT_EQ(b[3], 0x4444444444444444ull);
  EXPECT_EQ(*c, 0xdeadbeefu);
}

TEST(MonotonicArena, GrowsBeyondInitialBlockAndCoalescesOnReset) {
  MonotonicArena arena(1024);
  // Force growth past both the explicit 1 KiB and the 64 KiB block floor.
  for (int i = 0; i < 40; ++i) (void)arena.allocate(8 * 1024, 8);
  EXPECT_GE(arena.bytes_used(), 320u * 1024u);
  EXPECT_GT(arena.block_count(), 1u);

  arena.reset();
  EXPECT_EQ(arena.bytes_used(), 0u);
  // Coalesced: one slab sized at least the observed peak.
  EXPECT_EQ(arena.block_count(), 1u);
  EXPECT_GE(arena.bytes_capacity(), 320u * 1024u);

  // The same workload now fits the retained slab without growing.
  for (int i = 0; i < 40; ++i) (void)arena.allocate(8 * 1024, 8);
  EXPECT_EQ(arena.block_count(), 1u);
}

TEST(MonotonicArena, ResetRecyclesMemory) {
  MonotonicArena arena;
  auto* first = arena.allocate_array<int>(8);
  arena.reset();
  auto* second = arena.allocate_array<int>(8);
  EXPECT_EQ(first, second);  // same bump start after reset
}

TEST(ArenaVector, PushGrowIndexIterate) {
  MonotonicArena arena;
  ArenaVector<int> v(&arena);
  EXPECT_TRUE(v.empty());
  for (int i = 0; i < 100; ++i) v.push_back(i);
  ASSERT_EQ(v.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(v[static_cast<std::size_t>(i)], i);
  int sum = 0;
  for (const int x : v) sum += x;
  EXPECT_EQ(sum, 4950);
}

TEST(ArenaVector, InsertAndEraseKeepOrder) {
  MonotonicArena arena;
  ArenaVector<int> v(&arena);
  v.push_back(10);
  v.push_back(30);
  v.insert_at(1, 20);           // middle
  v.insert_at(0, 5);            // front
  v.insert_at(v.size(), 40);    // back
  ASSERT_EQ(v.size(), 5u);
  const int want[] = {5, 10, 20, 30, 40};
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(v[i], want[i]);
  v.erase_at(0);
  v.erase_at(2);  // erases 30
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 10);
  EXPECT_EQ(v[1], 20);
  EXPECT_EQ(v[2], 40);
}

TEST(ArenaVector, ReserveThenPushDoesNotMoveData) {
  MonotonicArena arena;
  ArenaVector<int> v(&arena);
  v.reserve(64);
  const int* base = v.data();
  for (int i = 0; i < 64; ++i) v.push_back(i);
  EXPECT_EQ(v.data(), base);
}

TEST(ArenaQueue, FifoAcrossRingWrap) {
  MonotonicArena arena;
  ArenaQueue<int> q;
  q.attach(&arena);
  EXPECT_TRUE(q.empty());
  // Interleave pushes and pops so head travels around the ring repeatedly.
  int next_in = 0;
  int next_out = 0;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 7; ++i) q.push_back(next_in++);
    for (int i = 0; i < 5; ++i) {
      ASSERT_FALSE(q.empty());
      EXPECT_EQ(q.front(), next_out++);
      q.pop_front();
    }
  }
  while (!q.empty()) {
    EXPECT_EQ(q.front(), next_out++);
    q.pop_front();
  }
  EXPECT_EQ(next_out, next_in);
}

TEST(ArenaQueue, GrowthPreservesOrderMidStream) {
  MonotonicArena arena;
  ArenaQueue<std::uint64_t> q;
  q.attach(&arena);
  // Partially drain before growing so the ring is wrapped when it doubles.
  for (std::uint64_t i = 0; i < 6; ++i) q.push_back(i);
  q.pop_front();
  q.pop_front();
  for (std::uint64_t i = 6; i < 40; ++i) q.push_back(i);  // forces growth
  for (std::uint64_t want = 2; want < 40; ++want) {
    ASSERT_FALSE(q.empty());
    EXPECT_EQ(q.front(), want);
    q.pop_front();
  }
  EXPECT_TRUE(q.empty());
}

TEST(ArenaContainers, AttachAfterArenaResetStartsClean) {
  MonotonicArena arena;
  ArenaVector<int> v(&arena);
  for (int i = 0; i < 1000; ++i) v.push_back(i);
  arena.reset();           // invalidates v's storage...
  v.attach(&arena);        // ...so it must be re-attached before reuse
  EXPECT_TRUE(v.empty());
  v.push_back(7);
  EXPECT_EQ(v[0], 7);
}

}  // namespace
}  // namespace ibpower
