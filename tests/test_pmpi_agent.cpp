// End-to-end tests of the per-rank agent: gram formation -> PPA -> power
// mode control -> WRPS requests on a mock link port.
#include "core/pmpi_agent.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ibpower {
namespace {

using namespace ibpower::literals;

constexpr MpiCall SR = MpiCall::Sendrecv;
constexpr MpiCall AR = MpiCall::Allreduce;

struct MockPort final : LinkPowerPort {
  struct Request {
    TimeNs now;
    TimeNs duration;
  };
  std::vector<Request> requests;
  void request_low_power(TimeNs now, TimeNs duration) override {
    requests.push_back({now, duration});
  }
};

PpaConfig test_config() {
  PpaConfig cfg;
  cfg.grouping_threshold = 20_us;
  cfg.t_react = 10_us;
  cfg.displacement_factor = 0.10;
  cfg.interception_overhead = TimeNs::zero();  // keep timing exact here
  cfg.ppa_invocation_overhead = TimeNs::zero();
  return cfg;
}

class AgentDriver {
 public:
  explicit AgentDriver(const PpaConfig& cfg, LinkPowerPort* port)
      : agent_(cfg, port) {}

  void call(MpiCall c, TimeNs gap, TimeNs dur = 1_us) {
    t_ += gap;
    const TimeNs ovh = agent_.on_call_enter(c, t_);
    t_ += ovh + dur;
    agent_.on_call_exit(c, t_);
  }

  void alya_iteration(TimeNs g0 = 200_us, TimeNs g1 = 100_us,
                      TimeNs g2 = 80_us) {
    call(SR, g0);
    call(SR, 2_us);
    call(SR, 2_us);
    call(AR, g1);
    call(AR, g2);
  }

  PmpiAgent agent_;
  TimeNs t_{};
};

TEST(PmpiAgent, DetectsAndIssuesPowerRequests) {
  MockPort port;
  AgentDriver d(test_config(), &port);
  for (int it = 0; it < 10; ++it) d.alya_iteration();
  d.agent_.finish();

  const AgentStats& stats = d.agent_.stats();
  EXPECT_EQ(stats.total_calls, 50u);
  EXPECT_GE(stats.arms, 1u);
  EXPECT_EQ(stats.pattern_mispredicts, 0u);
  EXPECT_GT(stats.power_requests, 0u);
  ASSERT_FALSE(port.requests.empty());

  // Requests must match Alg. 3 for the three boundaries (100, 80, 200 us
  // with 10% displacement and Treact = 10us).
  std::vector<TimeNs> expected = {
      100_us - 10_us - 10_us,  // 80us
      80_us - 8_us - 10_us,    // 62us
      200_us - 20_us - 10_us,  // 170us
  };
  for (std::size_t i = 0; i < port.requests.size(); ++i) {
    const TimeNs dur = port.requests[i].duration;
    EXPECT_TRUE(dur == expected[0] || dur == expected[1] || dur == expected[2])
        << "request " << i << " = " << to_string(dur);
  }
}

TEST(PmpiAgent, HitRateHighForRegularStream) {
  MockPort port;
  AgentDriver d(test_config(), &port);
  for (int it = 0; it < 100; ++it) d.alya_iteration();
  d.agent_.finish();
  // 5 calls/iter; scanning takes ~3 iterations; everything after is hit.
  EXPECT_GT(d.agent_.stats().hit_rate_pct(), 90.0);
}

TEST(PmpiAgent, NoRequestsWithoutPattern) {
  MockPort port;
  AgentDriver d(test_config(), &port);
  // Thue-Morse: cube-free, so never 3 consecutive repeats.
  for (int i = 0; i < 100; ++i) {
    const int parity = __builtin_popcount(static_cast<unsigned>(i)) & 1;
    d.call(parity ? SR : AR, 100_us);
  }
  d.agent_.finish();
  EXPECT_EQ(d.agent_.stats().arms, 0u);
  EXPECT_TRUE(port.requests.empty());
}

TEST(PmpiAgent, MispredictStopsRequestsUntilRearm) {
  MockPort port;
  AgentDriver d(test_config(), &port);
  for (int it = 0; it < 6; ++it) d.alya_iteration();
  ASSERT_GE(d.agent_.stats().arms, 1u);
  const auto requests_before = port.requests.size();

  // Divergent phase: pattern mispredict.
  for (int k = 0; k < 4; ++k) d.call(MpiCall::Bcast, 300_us);
  EXPECT_EQ(d.agent_.stats().pattern_mispredicts, 1u);
  const auto requests_during = port.requests.size();
  // At most the already-armed boundary request could have fired at the
  // first divergent call; after that, nothing.
  EXPECT_LE(requests_during - requests_before, 1u);

  // Pattern reappears: re-arm on first appearance, requests resume.
  for (int it = 0; it < 3; ++it) d.alya_iteration();
  d.agent_.finish();
  EXPECT_GE(d.agent_.stats().arms, 2u);
  EXPECT_GT(port.requests.size(), requests_during);
}

TEST(PmpiAgent, OverheadChargedPerCall) {
  PpaConfig cfg = test_config();
  cfg.interception_overhead = 1_us;
  cfg.ppa_invocation_overhead = 16_us;
  MockPort port;
  AgentDriver d(cfg, &port);
  for (int it = 0; it < 4; ++it) d.alya_iteration();
  d.agent_.finish();
  const AgentStats& stats = d.agent_.stats();
  EXPECT_EQ(stats.total_calls, 20u);
  // Every call pays interception; PPA scans add 16us each.
  const TimeNs expected = 1_us * 20 +
                          16_us * static_cast<std::int64_t>(
                                      stats.ppa_scan_invocations);
  EXPECT_EQ(stats.modeled_overhead_total, expected);
  EXPECT_GT(stats.ppa_scan_invocations, 0u);
}

TEST(PmpiAgent, PpaScansStopWhilePredicting) {
  MockPort port;
  AgentDriver d(test_config(), &port);
  for (int it = 0; it < 6; ++it) d.alya_iteration();
  const auto scans_at_arm = d.agent_.stats().ppa_scan_invocations;
  for (int it = 0; it < 20; ++it) d.alya_iteration();
  d.agent_.finish();
  // No further scanning once the controller is active.
  EXPECT_EQ(d.agent_.stats().ppa_scan_invocations, scans_at_arm);
}

TEST(PmpiAgent, RequestsCarryExitTimestamps) {
  MockPort port;
  AgentDriver d(test_config(), &port);
  for (int it = 0; it < 10; ++it) d.alya_iteration();
  ASSERT_FALSE(port.requests.empty());
  for (std::size_t i = 1; i < port.requests.size(); ++i) {
    EXPECT_GT(port.requests[i].now, port.requests[i - 1].now);
  }
}

TEST(PmpiAgent, DryRunWithoutPortIsSafe) {
  AgentDriver d(test_config(), nullptr);
  for (int it = 0; it < 10; ++it) d.alya_iteration();
  d.agent_.finish();
  EXPECT_GT(d.agent_.stats().power_requests, 0u);  // counted, not actuated
}

TEST(PmpiAgent, StatsMergeAddsFields) {
  AgentStats a, b;
  a.total_calls = 10;
  a.predicted_calls = 5;
  b.total_calls = 30;
  b.predicted_calls = 25;
  a.merge(b);
  EXPECT_EQ(a.total_calls, 40u);
  EXPECT_EQ(a.predicted_calls, 30u);
  EXPECT_DOUBLE_EQ(a.hit_rate_pct(), 75.0);
}

TEST(PmpiAgent, RejectsInvalidConfig) {
  PpaConfig cfg = test_config();
  cfg.grouping_threshold = 5_us;  // < 2 * Treact
  EXPECT_FALSE(cfg.valid());
}

}  // namespace
}  // namespace ibpower
