#include "power/power_model.hpp"

#include <gtest/gtest.h>

namespace ibpower {
namespace {

using namespace ibpower::literals;

IbLink make_link_with_low(TimeNs low_start, TimeNs low_request,
                          TimeNs end) {
  IbLink link;
  link.request_low_power(low_start, low_request);
  link.finish(end);
  return link;
}

TEST(PowerModel, AlwaysOnLinkHasZeroSavings) {
  IbLink link;
  link.finish(1_ms);
  const auto s = summarize_link(link, PowerModelConfig{});
  EXPECT_DOUBLE_EQ(s.savings_pct, 0.0);
  EXPECT_DOUBLE_EQ(s.mean_power_fraction, 1.0);
  EXPECT_DOUBLE_EQ(s.low_residency, 0.0);
}

TEST(PowerModel, FullyGatedLinkApproaches57PercentSavings) {
  // Low power = 43% of nominal: savings cap = 57%.
  IbLink link;
  link.request_low_power(0_us, TimeNs::from_ms(100.0));
  link.finish(TimeNs::from_ms(100.0));
  const auto s = summarize_link(link, PowerModelConfig{});
  EXPECT_GT(s.savings_pct, 56.0);  // transitions shave a little
  EXPECT_LT(s.savings_pct, 57.0);
}

TEST(PowerModel, HalfLowPowerIsHalfOfCap) {
  IbLink link;
  // Low residency: request d=510us => low spans [10,510) = 500us of 1ms.
  link.request_low_power(0_us, 510_us);
  link.finish(1_ms);
  const auto s = summarize_link(link, PowerModelConfig{});
  EXPECT_NEAR(s.low_residency, 0.5, 1e-9);
  EXPECT_NEAR(s.savings_pct, 57.0 * 0.5, 1e-6);
}

TEST(PowerModel, TransitionsChargedAtFullPower) {
  IbLink link;
  link.request_low_power(0_us, 110_us);  // 10 deact + 100 low + 10 react
  link.finish(120_us);
  const auto s = summarize_link(link, PowerModelConfig{});
  EXPECT_EQ(s.transition_time, 20_us);
  EXPECT_EQ(s.low_time, 100_us);
  // power fraction = (20/120) * 1.0 + (100/120) * 0.43
  EXPECT_NEAR(s.mean_power_fraction, 20.0 / 120 + 0.43 * 100 / 120, 1e-9);
}

TEST(PowerModel, LinkShareWeightingScalesSavings) {
  PowerModelConfig cfg;
  cfg.weighting = PowerModelConfig::Weighting::LinkShareOfSwitch;
  IbLink link = make_link_with_low(0_us, 510_us, 1_ms);
  const auto s = summarize_link(link, cfg);
  EXPECT_NEAR(s.savings_pct, 0.64 * 57.0 * 0.5, 1e-6);
}

TEST(PowerModel, EnergyMatchesMeanPower) {
  PowerModelConfig cfg;
  cfg.port_nominal_watts = 4.2;
  IbLink link;
  link.finish(1_s);
  const auto s = summarize_link(link, cfg);
  EXPECT_NEAR(s.energy_joules, 4.2, 1e-9);  // 4.2 W for 1 s, always on
}

TEST(PowerModel, AggregateAveragesOverPorts) {
  IbLink gated = make_link_with_low(0_us, 510_us, 1_ms);  // 50% low
  IbLink idle_on;
  idle_on.finish(1_ms);
  const std::vector<const IbLink*> ports{&gated, &idle_on};
  const auto fleet = aggregate_power(ports, PowerModelConfig{});
  EXPECT_NEAR(fleet.mean_low_residency, 0.25, 1e-9);
  EXPECT_NEAR(fleet.switch_savings_pct, 57.0 * 0.25, 1e-6);
  EXPECT_GT(fleet.baseline_energy_joules, fleet.total_energy_joules);
}

TEST(PowerModel, AggregateEmpty) {
  const auto fleet = aggregate_power({}, PowerModelConfig{});
  EXPECT_DOUBLE_EQ(fleet.switch_savings_pct, 0.0);
}

TEST(PowerModel, CustomLowPowerFraction) {
  PowerModelConfig cfg;
  cfg.low_power_fraction = 0.25;  // deeper sleep ablation
  IbLink link = make_link_with_low(0_us, 510_us, 1_ms);
  const auto s = summarize_link(link, cfg);
  EXPECT_NEAR(s.savings_pct, 75.0 * 0.5, 1e-6);
}

}  // namespace
}  // namespace ibpower
