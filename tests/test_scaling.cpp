#include "workloads/scaling.hpp"

#include <gtest/gtest.h>

namespace ibpower {
namespace {

WorkloadParams params(int nranks, bool weak = false, double scale = 1.0) {
  WorkloadParams p;
  p.nranks = nranks;
  p.weak_scaling = weak;
  p.scale = scale;
  return p;
}

TEST(ScalingHelper, StrongScalingAtReferenceIsIdentity) {
  const ScalingHelper sc(params(8), 8, 1.3);
  EXPECT_DOUBLE_EQ(sc.comp_us(100.0), 100.0);
  EXPECT_EQ(sc.msg_bytes(4096), 4096);
}

TEST(ScalingHelper, StrongScalingShrinksWithAlpha) {
  const ScalingHelper linear(params(64), 8, 1.0);
  const ScalingHelper super(params(64), 8, 1.5);
  EXPECT_DOUBLE_EQ(linear.comp_us(800.0), 100.0);  // (8/64)^1 = 1/8
  EXPECT_LT(super.comp_us(800.0), 100.0);          // superlinear erosion
  EXPECT_NEAR(super.comp_us(800.0), 800.0 * std::pow(0.125, 1.5), 1e-9);
}

TEST(ScalingHelper, WeakScalingIgnoresRanks) {
  const ScalingHelper a(params(8, true), 8, 1.5);
  const ScalingHelper b(params(128, true), 8, 1.5);
  EXPECT_DOUBLE_EQ(a.comp_us(100.0), b.comp_us(100.0));
  EXPECT_EQ(a.msg_bytes(4096), b.msg_bytes(4096));
}

TEST(ScalingHelper, ScaleMultiplier) {
  const ScalingHelper sc(params(8, false, 2.5), 8, 1.0);
  EXPECT_DOUBLE_EQ(sc.comp_us(100.0), 250.0);
}

TEST(ScalingHelper, MessageSurfaceScaling) {
  const ScalingHelper sc(params(64), 8, 1.0);
  // (8/64)^(2/3) = 0.25
  EXPECT_EQ(sc.msg_bytes(40960), 10240);
}

TEST(ScalingHelper, MessageFloor) {
  const ScalingHelper sc(params(128), 8, 1.0);
  EXPECT_GE(sc.msg_bytes(256), 64);
}

TEST(GridFactor, NearSquare) {
  int gx = 0, gy = 0;
  grid_factor(16, &gx, &gy);
  EXPECT_EQ(gx, 4);
  EXPECT_EQ(gy, 4);
  grid_factor(8, &gx, &gy);
  EXPECT_EQ(gx * gy, 8);
  EXPECT_GE(gx, gy);
  grid_factor(128, &gx, &gy);
  EXPECT_EQ(gx, 16);
  EXPECT_EQ(gy, 8);
}

TEST(GridFactor, PrimeDegeneratesToLine) {
  int gx = 0, gy = 0;
  grid_factor(13, &gx, &gy);
  EXPECT_EQ(gx, 13);
  EXPECT_EQ(gy, 1);
}

}  // namespace
}  // namespace ibpower
