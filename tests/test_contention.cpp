// Contention-accurate multi-hop fabric (FabricConfig::contention).
//
// The contract under test, end to end through the replay engine:
//
//   * zero load ⇒ the per-hop event discipline is bit-identical to the
//     legacy whole-route reservation (same deliveries, same link
//     histories) — contention only ever changes *queueing*, never the
//     uncongested path model;
//   * under contention, trunk FIFO order follows leading-segment *arrival*
//     (a later-sent message that reaches a shared trunk first goes first —
//     the case the legacy send-order discipline gets wrong);
//   * zero-byte cross-leaf messages bypass the trunk queues entirely and
//     accrue no dynamic energy;
//   * the hop log decomposes every delivery into per-hop wait +
//     serialization + hop latency (check/hop_audit.hpp) with exact payload
//     conservation against the split-energy model;
//   * consolidating routing trades queueing delay for fabric energy
//     against random routing on an all-to-all burst;
//   * more trunks per leaf never slow a feed-forward workload down
//     (deterministic instance of the fuzz metamorphic law);
//   * sharded replays stay bit-identical to serial with contention on.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "check/hop_audit.hpp"
#include "check/invariant_auditor.hpp"
#include "obs/collect.hpp"
#include "obs/exporters.hpp"
#include "sim/experiment.hpp"
#include "sim/replay.hpp"

namespace ibpower {
namespace {

using namespace ibpower::literals;

struct RunOut {
  ReplayResult rr;
  obs::ReplayMetrics metrics;
};

RunOut run_trace(const Trace& t, const ReplayOptions& opt,
                 const PowerModelConfig& pcfg = {},
                 std::vector<HopRecord>* log = nullptr,
                 std::string* hop_audit_err = nullptr) {
  ReplayEngine engine(&t, opt);
  if (log != nullptr) engine.fabric().set_hop_log(log);
  RunOut out;
  out.rr = engine.run();
  EXPECT_TRUE(engine.audit_drain().empty());
  const std::string replay_audit = audit_replay(engine, pcfg);
  EXPECT_TRUE(replay_audit.empty()) << replay_audit;
  if (hop_audit_err != nullptr) {
    *hop_audit_err = audit_hop_log(engine.fabric(), *log);
  }
  out.metrics = obs::collect_replay_metrics(engine, out.rr, pcfg);
  return out;
}

/// Token-ring trace over all `n` ranks in an order that makes every hop
/// cross-leaf; exactly one message is ever in flight, alternating eager and
/// rendezvous sizes — the zero-load oracle.
Trace cross_leaf_token_ring(int n, int nodes_per_leaf) {
  Trace t("ring", n);
  // Visit even ranks then odd ranks: with 2 nodes per leaf consecutive
  // stops always sit on different leaves.
  std::vector<Rank> order;
  for (Rank r = 0; r < n; r += 2) order.push_back(r);
  for (Rank r = 1; r < n; r += 2) order.push_back(r);
  EXPECT_EQ(nodes_per_leaf, 2);
  for (std::size_t i = 0; i < order.size(); ++i) {
    const Rank self = order[i];
    const Rank next = order[(i + 1) % order.size()];
    const Rank prev = order[(i + order.size() - 1) % order.size()];
    const Bytes bytes = i % 2 == 0 ? Bytes{2048} : Bytes{65536};
    const Bytes prev_bytes = (i + order.size() - 1) % 2 == 0
                                 ? Bytes{2048}
                                 : Bytes{65536};
    if (i == 0) {
      t.push(self, SendRecord{next, bytes, 0});
      t.push(self, RecvRecord{prev, prev_bytes, 0});
    } else {
      t.push(self, RecvRecord{prev, prev_bytes, 0});
      t.push(self, SendRecord{next, bytes, 0});
    }
  }
  return t;
}

ReplayOptions small_fabric_options(const XgftParams& xgft, bool contention) {
  ReplayOptions opt;
  opt.fabric.xgft = xgft;
  opt.fabric.routing.strategy = RoutingStrategy::Dmodk;
  opt.fabric.contention = contention;
  return opt;
}

void expect_zero_load_identical(const RunOut& off, const RunOut& on) {
  EXPECT_EQ(on.rr.exec_time, off.rr.exec_time);
  EXPECT_EQ(on.rr.rank_finish, off.rr.rank_finish);
  EXPECT_EQ(on.rr.messages_sent, off.rr.messages_sent);
  EXPECT_TRUE(on.rr.drain == off.rr.drain);
  // The per-hop discipline runs more DES events; everything *observable* —
  // including every link's full reservation/mode history — must match
  // bit for bit.
  obs::ReplayMetrics a = off.metrics;
  obs::ReplayMetrics b = on.metrics;
  a.events_processed = 0;
  b.events_processed = 0;
  EXPECT_TRUE(a == b);
}

TEST(Contention, ZeroLoadBitIdenticalToLegacyModel) {
  const XgftParams xgft{2, 4, 1, 3};  // 8 nodes, 4 leaves, 3 tops
  const Trace t = cross_leaf_token_ring(8, 2);
  const RunOut off = run_trace(t, small_fabric_options(xgft, false));
  const RunOut on = run_trace(t, small_fabric_options(xgft, true));
  expect_zero_load_identical(off, on);
}

TEST(Contention, ZeroLoadBitIdenticalWithTrunkSleepPolicy) {
  const XgftParams xgft{2, 4, 1, 3};
  const Trace t = cross_leaf_token_ring(8, 2);
  ReplayOptions off_opt = small_fabric_options(xgft, false);
  off_opt.fabric.trunk.kind = TrunkPolicyKind::Timeout;
  off_opt.fabric.trunk.idle_timeout = 5_us;
  ReplayOptions on_opt = off_opt;
  on_opt.fabric.contention = true;
  const RunOut off = run_trace(t, off_opt);
  const RunOut on = run_trace(t, on_opt);
  expect_zero_load_identical(off, on);
}

TEST(Contention, ZeroLoadBitIdenticalOnThreeLevelTree) {
  const XgftParams xgft{2, 2, 1, 2, 2, 2};  // 8 nodes, 4 leaves, 2 groups
  const Trace t = cross_leaf_token_ring(8, 2);
  const RunOut off = run_trace(t, small_fabric_options(xgft, false));
  const RunOut on = run_trace(t, small_fabric_options(xgft, true));
  expect_zero_load_identical(off, on);
}

TEST(Contention, TrunkFifoFollowsArrivalOrderNotSendOrder) {
  // Rank 0 (leaf 0) queues a 16 KB same-leaf filler on its uplink, then
  // immediately isends a cross-leaf probe: the probe is *sent* first but
  // reaches the shared trunk late (~3.8 us). Rank 2 (leaf 0) sends its own
  // probe at 1 us, which reaches the trunk at ~1.5 us. Legacy reserves in
  // send order, so rank 2's probe queues behind an interval that isn't
  // physically there yet; arrival-order FIFO lets it go first.
  const XgftParams xgft{3, 2, 1, 1};  // 6 nodes, 2 leaves, 1 trunk per leaf
  Trace t("arrival-order", 6);
  t.push(0, IsendRecord{1, 16384, 0, 1});
  t.push(0, IsendRecord{3, 2048, 0, 2});
  t.push(0, WaitallRecord{});
  t.push(1, RecvRecord{0, 16384, 0});
  t.push(2, ComputeRecord{1_us});
  t.push(2, SendRecord{4, 2048, 0});
  t.push(3, RecvRecord{0, 2048, 0});
  t.push(4, RecvRecord{2, 2048, 0});

  const RunOut off = run_trace(t, small_fabric_options(xgft, false));
  const RunOut on = run_trace(t, small_fabric_options(xgft, true));
  // Rank 4's message does not queue behind the late-arriving probe.
  EXPECT_LT(on.rr.rank_finish[4], off.rr.rank_finish[4]);
  // The displaced probe still delivers; nobody deadlocks or regresses the
  // total by more than the probe's own wait.
  EXPECT_EQ(on.rr.messages_sent, off.rr.messages_sent);
}

TEST(Contention, ZeroByteMessagesBypassTrunkQueues) {
  const XgftParams xgft{2, 2, 1, 2};  // 4 nodes, 2 leaves, 2 tops
  Trace t("zero-byte", 4);
  t.push(0, SendRecord{2, 0, 0});  // cross-leaf, zero payload
  t.push(2, RecvRecord{0, 0, 0});
  t.push(1, SendRecord{0, 0, 1});  // same-leaf, zero payload
  t.push(0, RecvRecord{1, 0, 1});

  std::vector<HopRecord> log;
  std::string hop_err;
  const ReplayOptions opt = small_fabric_options(xgft, true);
  ReplayEngine engine(&t, opt);
  engine.fabric().set_hop_log(&log);
  (void)engine.run();
  hop_err = audit_hop_log(engine.fabric(), log);
  EXPECT_TRUE(hop_err.empty()) << hop_err;

  // Both messages log exactly their two endpoint uplinks — the cross-leaf
  // one passed its trunk hops without reserving them.
  ASSERT_EQ(log.size(), 4u);
  const FatTreeTopology& topo = engine.fabric().topology();
  for (const HopRecord& r : log) {
    EXPECT_TRUE(topo.is_node_link(r.link));
    EXPECT_EQ(r.end, r.start);  // zero serialization
  }
  // No payload anywhere ⇒ no dynamic energy anywhere.
  for (LinkId l = 0; l < topo.num_links(); ++l) {
    EXPECT_EQ(engine.fabric().link(l).payload_bytes_total(), 0);
  }
}

TEST(Contention, HopAuditCleanOnGeneratedWorkload) {
  ExperimentConfig cfg;
  cfg.app = "alya";
  cfg.workload.nranks = 36;
  cfg.workload.iterations = 4;
  cfg.workload.seed = 11;
  cfg.ppa.grouping_threshold = default_gt(cfg.app, cfg.workload.nranks);
  cfg = normalize_config(cfg);
  const Trace trace = generate_experiment_trace(cfg);

  for (const bool contention : {false, true}) {
    SCOPED_TRACE(contention ? "contention" : "legacy");
    ReplayOptions opt;
    opt.fabric = cfg.fabric;
    opt.fabric.contention = contention;
    opt.eager_threshold = cfg.eager_threshold;
    PowerModelConfig pcfg;
    pcfg.split_energy = true;
    std::vector<HopRecord> log;
    std::string hop_err;
    const RunOut out = run_trace(trace, opt, pcfg, &log, &hop_err);
    EXPECT_TRUE(hop_err.empty()) << hop_err;
    EXPECT_FALSE(log.empty());
    const std::string verr = obs::validate_metrics(out.metrics);
    EXPECT_TRUE(verr.empty()) << verr;
  }
}

TEST(Contention, ConsolidateTradesDelayForEnergyOnAllToAllBurst) {
  // Synthetic all-to-all burst, trunk sleep armed, split accounting on:
  // consolidation packs the burst onto a minimal trunk prefix, so the
  // fabric spends no more energy than random routing while queueing at
  // least as long.
  const XgftParams xgft{4, 4, 1, 4};  // 16 nodes, 4 leaves, 4 tops
  const int n = 16;
  Trace t("burst", n);
  for (Rank r = 0; r < n; ++r) {
    RequestId req = 1;
    for (Rank p = 0; p < n; ++p) {
      if (p == r) continue;
      t.push(r, IrecvRecord{p, 2048, 0, req++});
    }
    for (Rank p = 0; p < n; ++p) {
      if (p == r) continue;
      t.push(r, IsendRecord{p, 2048, 0, req++});
    }
    t.push(r, WaitallRecord{});
  }

  PowerModelConfig pcfg;
  pcfg.split_energy = true;
  const auto run_with = [&](RoutingStrategy s) {
    ReplayOptions opt = small_fabric_options(xgft, true);
    opt.fabric.routing.strategy = s;
    opt.fabric.trunk.kind = TrunkPolicyKind::Timeout;
    opt.fabric.trunk.idle_timeout = 5_us;
    return run_trace(t, opt, pcfg);
  };
  const RunOut random = run_with(RoutingStrategy::Random);
  const RunOut consolidate = run_with(RoutingStrategy::Consolidate);

  // Energy compares as *power* (energy over the run's own makespan summed
  // across trunks): consolidation stretches the makespan, so absolute
  // joules are not comparable across the two runs — the paper's claim is
  // that the consolidated fabric draws less while it runs.
  const auto trunk_power_watts = [](const obs::ReplayMetrics& m) {
    double e = 0.0;
    for (const obs::LinkMetrics& l : m.trunks) e += l.energy_joules;
    return e / (static_cast<double>(m.exec_time.ns) * 1e-9);
  };
  EXPECT_LE(trunk_power_watts(consolidate.metrics),
            trunk_power_watts(random.metrics));
  EXPECT_GE(consolidate.rr.exec_time, random.rr.exec_time);
  // Same traffic ⇒ identical dynamic energy; only the static
  // (mode-residency) component moves.
  const auto dynamic_energy = [](const obs::ReplayMetrics& m) {
    double e = 0.0;
    for (const obs::LinkMetrics& l : m.links) e += l.dynamic_energy_joules;
    for (const obs::LinkMetrics& l : m.trunks) e += l.dynamic_energy_joules;
    return e;
  };
  EXPECT_DOUBLE_EQ(dynamic_energy(consolidate.metrics),
                   dynamic_energy(random.metrics));
}

TEST(Contention, MoreTrunksPerLeafNeverSlowFeedForwardTraffic) {
  // Deterministic instance of the fuzz metamorphic law: under dmodk a
  // w2 -> 2*w2 widening refines every trunk class, so each message sees at
  // most the competitors it saw before and finishes no later.
  const int n = 16;
  Trace t("feed-forward", n);
  // Leaf 0 senders, injective destinations on distinct residues/leaves.
  const Rank dsts[4] = {4, 8, 12, 5};
  for (int i = 0; i < 4; ++i) {
    t.push(static_cast<Rank>(i), IsendRecord{dsts[i], 8192, 0, 1});
    t.push(static_cast<Rank>(i), WaitallRecord{});
    t.push(dsts[i], RecvRecord{static_cast<Rank>(i), 8192, 0});
  }
  const RunOut narrow =
      run_trace(t, small_fabric_options(XgftParams{4, 4, 1, 2}, true));
  const RunOut wide =
      run_trace(t, small_fabric_options(XgftParams{4, 4, 1, 4}, true));
  ASSERT_EQ(narrow.rr.rank_finish.size(), wide.rr.rank_finish.size());
  for (std::size_t r = 0; r < narrow.rr.rank_finish.size(); ++r) {
    EXPECT_LE(wide.rr.rank_finish[r], narrow.rr.rank_finish[r])
        << "rank " << r;
  }
  EXPECT_LE(wide.rr.exec_time, narrow.rr.exec_time);
}

TEST(Contention, SplitEnergyFieldsGateJsonExports) {
  const XgftParams xgft{2, 2, 1, 2};
  Trace t("export", 4);
  t.push(0, SendRecord{2, 4096, 0});
  t.push(2, RecvRecord{0, 4096, 0});

  const auto json_for = [&](bool split) {
    PowerModelConfig pcfg;
    pcfg.split_energy = split;
    const RunOut out = run_trace(t, small_fabric_options(xgft, true), pcfg);
    const std::string verr = obs::validate_metrics(out.metrics);
    EXPECT_TRUE(verr.empty()) << verr;
    std::ostringstream os;
    obs::CellMetrics cell;
    cell.app = "export";
    cell.nranks = 4;
    cell.baseline = out.metrics;
    obs::write_metrics_json(os, {cell});
    return os.str();
  };
  const std::string off = json_for(false);
  const std::string on = json_for(true);
  EXPECT_EQ(off.find("static_energy_joules"), std::string::npos);
  EXPECT_NE(on.find("static_energy_joules"), std::string::npos);
  EXPECT_NE(on.find("dynamic_energy_joules"), std::string::npos);
  EXPECT_NE(on.find("payload_bytes"), std::string::npos);
}

TEST(Contention, ShardedReplayBitIdenticalUnderContention) {
  ExperimentConfig cfg;
  cfg.app = "alya";
  cfg.workload.nranks = 128;
  cfg.workload.iterations = 8;
  cfg.workload.seed = 7;
  cfg.ppa.grouping_threshold = default_gt(cfg.app, cfg.workload.nranks);
  cfg = normalize_config(cfg);
  const Trace trace = generate_experiment_trace(cfg);

  ReplayOptions opt;
  opt.fabric = cfg.fabric;
  opt.fabric.contention = true;
  opt.eager_threshold = cfg.eager_threshold;
  opt.record_call_timeline = true;

  const auto snapshot = [&](int shards) {
    ReplayOptions o = opt;
    o.shards = shards;
    ReplayEngine engine(&trace, o);
    RunOut out;
    out.rr = engine.run();
    EXPECT_TRUE(engine.audit_drain().empty());
    out.metrics =
        obs::collect_replay_metrics(engine, out.rr, PowerModelConfig{});
    return out;
  };
  const RunOut serial = snapshot(1);
  for (const int shards : {2, 4, 8}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    const RunOut sharded = snapshot(shards);
    EXPECT_EQ(sharded.rr.shards_used, shards);
    EXPECT_EQ(sharded.rr.exec_time, serial.rr.exec_time);
    EXPECT_EQ(sharded.rr.rank_finish, serial.rr.rank_finish);
    EXPECT_EQ(sharded.rr.events_processed, serial.rr.events_processed);
    EXPECT_TRUE(sharded.rr.drain == serial.rr.drain);
    EXPECT_TRUE(sharded.metrics == serial.metrics);
  }
}

}  // namespace
}  // namespace ibpower
