#include "util/stats.hpp"

#include <gtest/gtest.h>

namespace ibpower {
namespace {

TEST(StreamingStats, EmptyDefaults) {
  StreamingStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(StreamingStats, SingleValue) {
  StreamingStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(StreamingStats, KnownMoments) {
  StreamingStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(StreamingStats, MergeEqualsCombinedStream) {
  StreamingStats a, b, combined;
  for (int i = 0; i < 100; ++i) {
    const double x = i * 0.37;
    combined.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_NEAR(a.mean(), combined.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), combined.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), combined.min());
  EXPECT_DOUBLE_EQ(a.max(), combined.max());
}

TEST(StreamingStats, MergeWithEmpty) {
  StreamingStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Percentile, NearestRank) {
  std::vector<double> v{15, 20, 35, 40, 50};
  EXPECT_DOUBLE_EQ(percentile(v, 30), 20);
  EXPECT_DOUBLE_EQ(percentile(v, 40), 20);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 35);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 50);
  EXPECT_DOUBLE_EQ(percentile(v, 0), 15);
}

TEST(Percentile, Empty) { EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0); }

TEST(Percentile, UnsortedInput) {
  EXPECT_DOUBLE_EQ(percentile({9, 1, 5}, 50), 5);
}

TEST(RelDiff, Basics) {
  EXPECT_DOUBLE_EQ(rel_diff(10.0, 10.0), 0.0);
  EXPECT_NEAR(rel_diff(10.0, 11.0), 1.0 / 11.0, 1e-12);
  EXPECT_DOUBLE_EQ(rel_diff(0.0, 0.0), 0.0);
}

}  // namespace
}  // namespace ibpower
