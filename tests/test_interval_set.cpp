#include "util/interval_set.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/rng.hpp"

namespace ibpower {
namespace {

using namespace ibpower::literals;

TEST(IntervalSet, AddDisjointInOrder) {
  IntervalSet s;
  s.add(0_us, 10_us);
  s.add(20_us, 30_us);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s.total(), 20_us);
}

TEST(IntervalSet, MergesOverlapping) {
  IntervalSet s;
  s.add(0_us, 10_us);
  s.add(5_us, 15_us);
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s.intervals()[0], (TimeInterval{0_us, 15_us}));
}

TEST(IntervalSet, MergesTouching) {
  IntervalSet s;
  s.add(0_us, 10_us);
  s.add(10_us, 20_us);
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s.total(), 20_us);
}

TEST(IntervalSet, EmptyAddIsNoop) {
  IntervalSet s;
  s.add(5_us, 5_us);
  EXPECT_TRUE(s.empty());
}

TEST(IntervalSet, OutOfOrderInsertion) {
  IntervalSet s;
  s.add(20_us, 30_us);
  s.add(0_us, 10_us);
  s.add(12_us, 15_us);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s.intervals()[0].begin, 0_us);
  EXPECT_EQ(s.intervals()[1].begin, 12_us);
  EXPECT_EQ(s.intervals()[2].begin, 20_us);
}

TEST(IntervalSet, OutOfOrderMergeSpanningSeveral) {
  IntervalSet s;
  s.add(0_us, 5_us);
  s.add(10_us, 15_us);
  s.add(20_us, 25_us);
  s.add(3_us, 22_us);  // bridges all three
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s.intervals()[0], (TimeInterval{0_us, 25_us}));
}

TEST(IntervalSet, Contains) {
  IntervalSet s;
  s.add(10_us, 20_us);
  EXPECT_TRUE(s.contains(10_us));
  EXPECT_TRUE(s.contains(19_us));
  EXPECT_FALSE(s.contains(20_us));
  EXPECT_FALSE(s.contains(5_us));
}

TEST(IntervalSet, ComplementBasics) {
  IntervalSet s;
  s.add(10_us, 20_us);
  s.add(30_us, 40_us);
  const auto gaps = s.complement(0_us, 50_us);
  ASSERT_EQ(gaps.size(), 3u);
  EXPECT_EQ(gaps[0], (TimeInterval{0_us, 10_us}));
  EXPECT_EQ(gaps[1], (TimeInterval{20_us, 30_us}));
  EXPECT_EQ(gaps[2], (TimeInterval{40_us, 50_us}));
}

TEST(IntervalSet, ComplementOfEmptyIsWindow) {
  IntervalSet s;
  const auto gaps = s.complement(5_us, 15_us);
  ASSERT_EQ(gaps.size(), 1u);
  EXPECT_EQ(gaps[0], (TimeInterval{5_us, 15_us}));
}

TEST(IntervalSet, ComplementClipsToWindow) {
  IntervalSet s;
  s.add(0_us, 10_us);
  s.add(90_us, 200_us);
  const auto gaps = s.complement(5_us, 100_us);
  ASSERT_EQ(gaps.size(), 1u);
  EXPECT_EQ(gaps[0], (TimeInterval{10_us, 90_us}));
}

TEST(IntervalSet, ComplementPlusSetCoversWindow) {
  IntervalSet s;
  s.add(10_us, 20_us);
  s.add(40_us, 60_us);
  const TimeNs window = 100_us;
  const auto gaps = s.complement(0_us, window);
  TimeNs covered = s.overlap(0_us, window);
  for (const auto& gap : gaps) covered += gap.duration();
  EXPECT_EQ(covered, window);
}

TEST(IntervalSet, Overlap) {
  IntervalSet s;
  s.add(10_us, 20_us);
  s.add(30_us, 40_us);
  EXPECT_EQ(s.overlap(0_us, 100_us), 20_us);
  EXPECT_EQ(s.overlap(15_us, 35_us), 10_us);
  EXPECT_EQ(s.overlap(20_us, 30_us), 0_us);
}

// Property test: IntervalSet against a brute-force boolean timeline.
class IntervalSetProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IntervalSetProperty, MatchesBruteForce) {
  Rng rng(GetParam());
  constexpr int kHorizon = 2000;
  std::vector<bool> covered(kHorizon, false);
  IntervalSet s;
  for (int k = 0; k < 60; ++k) {
    const auto a = static_cast<std::int64_t>(rng.uniform_below(kHorizon));
    const auto len = static_cast<std::int64_t>(rng.uniform_below(100));
    const std::int64_t b = std::min<std::int64_t>(a + len, kHorizon);
    s.add(TimeNs{a}, TimeNs{b});
    for (std::int64_t i = a; i < b; ++i) covered[static_cast<std::size_t>(i)] = true;
  }
  // Total matches.
  const auto expected_total = static_cast<std::int64_t>(
      std::count(covered.begin(), covered.end(), true));
  EXPECT_EQ(s.total().ns, expected_total);
  // Point membership matches on a sample grid.
  for (int i = 0; i < kHorizon; i += 7) {
    EXPECT_EQ(s.contains(TimeNs{i}), covered[static_cast<std::size_t>(i)])
        << "at " << i;
  }
  // Intervals are sorted, disjoint, non-touching.
  const auto& ivs = s.intervals();
  for (std::size_t i = 1; i < ivs.size(); ++i) {
    EXPECT_LT(ivs[i - 1].end, ivs[i].begin);
  }
  // Complement is exact.
  const auto gaps = s.complement(TimeNs{0}, TimeNs{kHorizon});
  TimeNs gap_total{};
  for (const auto& gap : gaps) gap_total += gap.duration();
  EXPECT_EQ(gap_total.ns + expected_total, kHorizon);
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, IntervalSetProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace ibpower
