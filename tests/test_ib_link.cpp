#include "network/ib_link.hpp"

#include <gtest/gtest.h>

namespace ibpower {
namespace {

using namespace ibpower::literals;

LinkConfig test_config() {
  LinkConfig cfg;
  cfg.t_react = 10_us;
  cfg.t_deact = 10_us;
  cfg.full_bandwidth_gbps = 40.0;
  return cfg;
}

TEST(IbLink, SerializationTime) {
  IbLink link(test_config());
  // 40 Gb/s = 5 bytes/ns: 2 KB -> 409.6 ns.
  EXPECT_EQ(link.serialization_time(2048), TimeNs{410});
  EXPECT_EQ(link.serialization_time(0), TimeNs::zero());
  // 1 MB -> 209715.2 ns.
  EXPECT_EQ(link.serialization_time(1 << 20), TimeNs{209715});
}

TEST(IbLink, FullPowerByDefault) {
  IbLink link(test_config());
  EXPECT_EQ(link.mode_at(0_us), LinkPowerMode::FullPower);
  EXPECT_EQ(link.mode_at(1_s), LinkPowerMode::FullPower);
}

TEST(IbLink, RequestSchedulesFullCycle) {
  IbLink link(test_config());
  link.request_low_power(100_us, 80_us);
  EXPECT_EQ(link.mode_at(99_us), LinkPowerMode::FullPower);
  EXPECT_EQ(link.mode_at(105_us), LinkPowerMode::Transition);  // deactivating
  EXPECT_EQ(link.mode_at(111_us), LinkPowerMode::LowPower);
  EXPECT_EQ(link.mode_at(179_us), LinkPowerMode::LowPower);
  EXPECT_EQ(link.mode_at(185_us), LinkPowerMode::Transition);  // timer fired
  EXPECT_EQ(link.mode_at(191_us), LinkPowerMode::FullPower);
}

TEST(IbLink, TinyRequestIgnored) {
  IbLink link(test_config());
  link.request_low_power(0_us, 10_us);  // <= t_deact: nothing to gain
  EXPECT_EQ(link.mode_at(5_us), LinkPowerMode::FullPower);
  EXPECT_EQ(link.low_power_requests(), 0u);
}

TEST(IbLink, ReserveAtFullPowerNoPenalty) {
  IbLink link(test_config());
  const auto res = link.reserve(Direction::Up, 50_us, 2048);
  EXPECT_EQ(res.start, 50_us);
  EXPECT_EQ(res.power_delay, TimeNs::zero());
  EXPECT_EQ(res.end, 50_us + TimeNs{410});
}

TEST(IbLink, FifoContentionPerDirection) {
  IbLink link(test_config());
  const auto a = link.reserve(Direction::Up, 0_us, 1 << 20);
  const auto b = link.reserve(Direction::Up, 0_us, 2048);
  EXPECT_EQ(b.start, a.end);  // queued behind
  const auto c = link.reserve(Direction::Down, 0_us, 2048);
  EXPECT_EQ(c.start, 0_us);  // full duplex: other direction free
}

TEST(IbLink, OnDemandWakeFromLowPower) {
  IbLink link(test_config());
  link.request_low_power(0_us, 1_ms);  // low until 1ms, full at 1.01ms
  // A message at 100us can't wait for the timer: wake now, pay Treact.
  const auto res = link.reserve(Direction::Up, 100_us, 2048);
  EXPECT_EQ(res.power_delay, 10_us);
  EXPECT_EQ(res.start, 110_us);
  EXPECT_EQ(link.on_demand_wakes(), 1u);
  // Schedule was rewritten: full power after the wake.
  EXPECT_EQ(link.mode_at(120_us), LinkPowerMode::FullPower);
  EXPECT_EQ(link.mode_at(105_us), LinkPowerMode::Transition);
}

TEST(IbLink, ScheduledWakeCloseEnoughIsWaitedFor) {
  IbLink link(test_config());
  link.request_low_power(0_us, 100_us);  // full again at 110us
  // At 105us the scheduled reactivation (110us) beats on-demand (115us).
  const auto res = link.reserve(Direction::Up, 105_us, 2048);
  EXPECT_EQ(res.start, 110_us);
  EXPECT_EQ(res.power_delay, 5_us);
  EXPECT_EQ(link.on_demand_wakes(), 0u);
}

TEST(IbLink, WakeDuringDeactivationWaitsForIt) {
  IbLink link(test_config());
  link.request_low_power(0_us, 1_ms);
  // At 5us lanes are still shutting down; wake can only start at 10us.
  const auto res = link.reserve(Direction::Up, 5_us, 2048);
  EXPECT_EQ(res.start, 20_us);  // 10 (deact end) + 10 (react)
  EXPECT_EQ(res.power_delay, 15_us);
}

TEST(IbLink, ReserveDuringReactivationWaits) {
  IbLink link(test_config());
  link.request_low_power(0_us, 100_us);
  // 105us is inside the scheduled reactivation [100, 110].
  const auto res = link.reserve(Direction::Up, 105_us, 2048);
  EXPECT_EQ(res.start, 110_us);
  EXPECT_EQ(res.power_delay, 5_us);
  EXPECT_EQ(link.on_demand_wakes(), 0u);
}

TEST(IbLink, TransmitAtReducedWidthAblation) {
  LinkConfig cfg = test_config();
  cfg.transmit_at_reduced_width = true;
  IbLink link(cfg);
  link.request_low_power(0_us, 1_ms);
  const auto res = link.reserve(Direction::Up, 100_us, 2048);
  EXPECT_EQ(res.power_delay, TimeNs::zero());
  EXPECT_EQ(res.start, 100_us);
  EXPECT_EQ(res.end - res.start, TimeNs{410} * 4);  // 1 of 4 lanes
  EXPECT_EQ(link.mode_at(200_us), LinkPowerMode::LowPower);  // stayed low
}

TEST(IbLink, ResidencyAccounting) {
  IbLink link(test_config());
  link.request_low_power(100_us, 80_us);  // trans 10, low 70, trans 10
  link.finish(300_us);
  EXPECT_EQ(link.residency(LinkPowerMode::LowPower), 70_us);
  EXPECT_EQ(link.residency(LinkPowerMode::Transition), 20_us);
  EXPECT_EQ(link.residency(LinkPowerMode::FullPower), 300_us - 90_us);
}

TEST(IbLink, ResidencySumsToEndTime) {
  IbLink link(test_config());
  link.request_low_power(50_us, 100_us);
  link.request_low_power(400_us, 200_us);
  link.finish(1_ms);
  const TimeNs sum = link.residency(LinkPowerMode::FullPower) +
                     link.residency(LinkPowerMode::LowPower) +
                     link.residency(LinkPowerMode::Transition);
  EXPECT_EQ(sum, 1_ms);
}

TEST(IbLink, NewRequestSupersedesPendingSchedule) {
  IbLink link(test_config());
  link.request_low_power(0_us, 500_us);
  // Owner asks again while the first span is still active.
  link.request_low_power(200_us, 100_us);
  EXPECT_EQ(link.mode_at(205_us), LinkPowerMode::Transition);
  EXPECT_EQ(link.mode_at(250_us), LinkPowerMode::LowPower);
  EXPECT_EQ(link.mode_at(311_us), LinkPowerMode::FullPower);
  EXPECT_EQ(link.mode_at(450_us), LinkPowerMode::FullPower);  // old span gone
}

TEST(IbLink, BusyRecording) {
  IbLink link(test_config());
  link.reserve(Direction::Up, 0_us, 2048);
  link.reserve(Direction::Up, 100_us, 2048);
  link.occupy(Direction::Down, 50_us, 60_us);
  EXPECT_EQ(link.busy(Direction::Up).size(), 2u);
  EXPECT_EQ(link.busy(Direction::Down).total(), 10_us);
  link.finish(200_us);
}

TEST(IbLink, LowPowerRequestCounted) {
  IbLink link(test_config());
  link.request_low_power(0_us, 100_us);
  link.request_low_power(500_us, 100_us);
  EXPECT_EQ(link.low_power_requests(), 2u);
}

TEST(IbLink, RequestDefersPastInFlightTraffic) {
  // Lanes cannot shut down while data is queued: a request issued during a
  // long transmission starts deactivating only once the wire is clear.
  IbLink link(test_config());
  const auto res = link.reserve(Direction::Down, 0_us, 4 << 20);  // ~840us
  link.request_low_power(10_us, 2_ms);
  EXPECT_EQ(link.mode_at(res.end - 1_ns), LinkPowerMode::FullPower);
  EXPECT_EQ(link.mode_at(res.end + 5_us), LinkPowerMode::Transition);
  EXPECT_EQ(link.mode_at(res.end + 15_us), LinkPowerMode::LowPower);
  // Timer expiry unchanged: reactivation begins at 10us + 2ms.
  EXPECT_EQ(link.mode_at(2_ms + 10_us + 5_us), LinkPowerMode::Transition);
}

TEST(IbLink, RequestConsumedByTrafficIsDropped) {
  IbLink link(test_config());
  (void)link.reserve(Direction::Up, 0_us, 4 << 20);  // busy until ~840us
  link.request_low_power(10_us, 500_us);  // window ends before wire clears
  EXPECT_EQ(link.low_power_requests(), 0u);
  EXPECT_EQ(link.mode_at(400_us), LinkPowerMode::FullPower);
}

TEST(IbLink, ReserveDefersScheduledShutdown) {
  // A transmission that is on the wire when a scheduled shutdown would
  // begin pushes the shutdown back; the timer expiry stays fixed.
  IbLink link(test_config());
  link.request_low_power(100_us, 1_ms);  // shutdown at 100us, timer at 1.1ms
  // Long message starting at 50us is still flowing at 100us.
  const auto res = link.reserve(Direction::Up, 50_us, 1 << 20);  // ~210us
  EXPECT_EQ(res.power_delay, TimeNs::zero());
  EXPECT_EQ(link.mode_at(150_us), LinkPowerMode::FullPower);  // deferred
  EXPECT_EQ(link.mode_at(res.end + 15_us), LinkPowerMode::LowPower);
  // Reactivation still at the original timer expiry.
  EXPECT_EQ(link.mode_at(100_us + 1_ms + 5_us), LinkPowerMode::Transition);
  EXPECT_EQ(link.mode_at(100_us + 1_ms + 15_us), LinkPowerMode::FullPower);
}

TEST(IbLink, ReserveCancelsShutdownWhenWindowTooSmall) {
  IbLink link(test_config());
  link.request_low_power(100_us, 130_us);  // low span [110, 230), react 240
  // Message occupies the wire until past most of the span.
  (void)link.reserve(Direction::Up, 90_us, 1 << 20);  // ends ~300us
  // The whole span is gone: no low power at any point.
  for (const auto t : {120_us, 200_us, 260_us, 400_us}) {
    EXPECT_NE(link.mode_at(t), LinkPowerMode::LowPower) << to_string(t);
  }
}

TEST(IbLink, ZeroByteReservationLeavesNoTrace) {
  // MPI metadata-only calls reserve zero bytes: the reservation resolves to
  // an empty instant (start == end) and must not leave a busy segment
  // behind — otherwise idle-gap extraction would see phantom traffic.
  IbLink link(test_config());
  const auto res = link.reserve(Direction::Up, 100_us, 0);
  EXPECT_EQ(res.start, res.end);
  EXPECT_EQ(res.power_delay, TimeNs::zero());
  EXPECT_TRUE(link.busy(Direction::Up).empty());
  EXPECT_EQ(link.serialization_time(0), TimeNs::zero());
}

TEST(IbLink, ZeroByteReservationStillPaysWakePenalty) {
  // Even an empty message cannot complete until lanes are up: the sender
  // observes the wake latency, but the wire itself stays untouched.
  IbLink link(test_config());
  link.request_low_power(100_us, 10_ms);  // low from 110us on
  const auto res = link.reserve(Direction::Up, 500_us, 0);
  EXPECT_EQ(res.power_delay, 10_us);  // t_react
  EXPECT_EQ(res.start, res.end);
  EXPECT_TRUE(link.busy(Direction::Up).empty());
}

TEST(IbLink, OccupyBlocksLaterRequests) {
  IbLink link(test_config());
  link.occupy(Direction::Down, 0_us, 500_us);  // collective phase
  link.request_low_power(100_us, 200_us);      // window inside the occupancy
  EXPECT_EQ(link.low_power_requests(), 0u);
  link.request_low_power(100_us, 800_us);      // extends past it
  EXPECT_EQ(link.mode_at(400_us), LinkPowerMode::FullPower);
  EXPECT_EQ(link.mode_at(600_us), LinkPowerMode::LowPower);
}

}  // namespace
}  // namespace ibpower
