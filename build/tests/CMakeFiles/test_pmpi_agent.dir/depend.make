# Empty dependencies file for test_pmpi_agent.
# This may be replaced when dependencies are built.
