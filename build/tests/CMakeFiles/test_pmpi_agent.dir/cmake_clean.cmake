file(REMOVE_RECURSE
  "CMakeFiles/test_pmpi_agent.dir/test_pmpi_agent.cpp.o"
  "CMakeFiles/test_pmpi_agent.dir/test_pmpi_agent.cpp.o.d"
  "test_pmpi_agent"
  "test_pmpi_agent.pdb"
  "test_pmpi_agent[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pmpi_agent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
