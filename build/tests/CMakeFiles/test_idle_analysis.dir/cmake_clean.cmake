file(REMOVE_RECURSE
  "CMakeFiles/test_idle_analysis.dir/test_idle_analysis.cpp.o"
  "CMakeFiles/test_idle_analysis.dir/test_idle_analysis.cpp.o.d"
  "test_idle_analysis"
  "test_idle_analysis.pdb"
  "test_idle_analysis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_idle_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
