file(REMOVE_RECURSE
  "CMakeFiles/test_property_replay.dir/test_property_replay.cpp.o"
  "CMakeFiles/test_property_replay.dir/test_property_replay.cpp.o.d"
  "test_property_replay"
  "test_property_replay.pdb"
  "test_property_replay[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
