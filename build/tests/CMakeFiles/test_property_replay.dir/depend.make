# Empty dependencies file for test_property_replay.
# This may be replaced when dependencies are built.
