# Empty compiler generated dependencies file for test_link_power_property.
# This may be replaced when dependencies are built.
