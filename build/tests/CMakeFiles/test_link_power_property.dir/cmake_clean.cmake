file(REMOVE_RECURSE
  "CMakeFiles/test_link_power_property.dir/test_link_power_property.cpp.o"
  "CMakeFiles/test_link_power_property.dir/test_link_power_property.cpp.o.d"
  "test_link_power_property"
  "test_link_power_property.pdb"
  "test_link_power_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_link_power_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
