file(REMOVE_RECURSE
  "CMakeFiles/test_gram_builder.dir/test_gram_builder.cpp.o"
  "CMakeFiles/test_gram_builder.dir/test_gram_builder.cpp.o.d"
  "test_gram_builder"
  "test_gram_builder.pdb"
  "test_gram_builder[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gram_builder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
