# Empty dependencies file for test_time_types.
# This may be replaced when dependencies are built.
