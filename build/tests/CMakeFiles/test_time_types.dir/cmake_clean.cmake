file(REMOVE_RECURSE
  "CMakeFiles/test_time_types.dir/test_time_types.cpp.o"
  "CMakeFiles/test_time_types.dir/test_time_types.cpp.o.d"
  "test_time_types"
  "test_time_types.pdb"
  "test_time_types[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_time_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
