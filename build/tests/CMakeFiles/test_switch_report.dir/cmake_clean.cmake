file(REMOVE_RECURSE
  "CMakeFiles/test_switch_report.dir/test_switch_report.cpp.o"
  "CMakeFiles/test_switch_report.dir/test_switch_report.cpp.o.d"
  "test_switch_report"
  "test_switch_report.pdb"
  "test_switch_report[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_switch_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
