# Empty dependencies file for test_switch_report.
# This may be replaced when dependencies are built.
