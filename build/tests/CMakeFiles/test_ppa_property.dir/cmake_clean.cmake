file(REMOVE_RECURSE
  "CMakeFiles/test_ppa_property.dir/test_ppa_property.cpp.o"
  "CMakeFiles/test_ppa_property.dir/test_ppa_property.cpp.o.d"
  "test_ppa_property"
  "test_ppa_property.pdb"
  "test_ppa_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ppa_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
