# Empty compiler generated dependencies file for test_ppa_property.
# This may be replaced when dependencies are built.
