file(REMOVE_RECURSE
  "CMakeFiles/test_config_knobs.dir/test_config_knobs.cpp.o"
  "CMakeFiles/test_config_knobs.dir/test_config_knobs.cpp.o.d"
  "test_config_knobs"
  "test_config_knobs.pdb"
  "test_config_knobs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_config_knobs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
