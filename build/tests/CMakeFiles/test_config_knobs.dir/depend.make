# Empty dependencies file for test_config_knobs.
# This may be replaced when dependencies are built.
