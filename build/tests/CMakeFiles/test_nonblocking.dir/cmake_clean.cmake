file(REMOVE_RECURSE
  "CMakeFiles/test_nonblocking.dir/test_nonblocking.cpp.o"
  "CMakeFiles/test_nonblocking.dir/test_nonblocking.cpp.o.d"
  "test_nonblocking"
  "test_nonblocking.pdb"
  "test_nonblocking[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nonblocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
