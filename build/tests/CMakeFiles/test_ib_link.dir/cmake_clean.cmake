file(REMOVE_RECURSE
  "CMakeFiles/test_ib_link.dir/test_ib_link.cpp.o"
  "CMakeFiles/test_ib_link.dir/test_ib_link.cpp.o.d"
  "test_ib_link"
  "test_ib_link.pdb"
  "test_ib_link[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ib_link.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
