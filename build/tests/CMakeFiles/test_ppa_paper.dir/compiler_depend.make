# Empty compiler generated dependencies file for test_ppa_paper.
# This may be replaced when dependencies are built.
