file(REMOVE_RECURSE
  "CMakeFiles/test_ppa_paper.dir/test_ppa_paper.cpp.o"
  "CMakeFiles/test_ppa_paper.dir/test_ppa_paper.cpp.o.d"
  "test_ppa_paper"
  "test_ppa_paper.pdb"
  "test_ppa_paper[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ppa_paper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
