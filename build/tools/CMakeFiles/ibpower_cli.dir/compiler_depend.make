# Empty compiler generated dependencies file for ibpower_cli.
# This may be replaced when dependencies are built.
