file(REMOVE_RECURSE
  "CMakeFiles/ibpower_cli.dir/ibpower_cli.cpp.o"
  "CMakeFiles/ibpower_cli.dir/ibpower_cli.cpp.o.d"
  "ibpower_cli"
  "ibpower_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibpower_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
