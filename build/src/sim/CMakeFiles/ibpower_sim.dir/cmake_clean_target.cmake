file(REMOVE_RECURSE
  "libibpower_sim.a"
)
