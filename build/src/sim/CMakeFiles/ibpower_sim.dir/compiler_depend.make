# Empty compiler generated dependencies file for ibpower_sim.
# This may be replaced when dependencies are built.
