file(REMOVE_RECURSE
  "CMakeFiles/ibpower_sim.dir/experiment.cpp.o"
  "CMakeFiles/ibpower_sim.dir/experiment.cpp.o.d"
  "CMakeFiles/ibpower_sim.dir/replay.cpp.o"
  "CMakeFiles/ibpower_sim.dir/replay.cpp.o.d"
  "CMakeFiles/ibpower_sim.dir/report.cpp.o"
  "CMakeFiles/ibpower_sim.dir/report.cpp.o.d"
  "libibpower_sim.a"
  "libibpower_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibpower_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
