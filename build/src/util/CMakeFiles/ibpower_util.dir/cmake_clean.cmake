file(REMOVE_RECURSE
  "CMakeFiles/ibpower_util.dir/interval_set.cpp.o"
  "CMakeFiles/ibpower_util.dir/interval_set.cpp.o.d"
  "CMakeFiles/ibpower_util.dir/stats.cpp.o"
  "CMakeFiles/ibpower_util.dir/stats.cpp.o.d"
  "CMakeFiles/ibpower_util.dir/table_printer.cpp.o"
  "CMakeFiles/ibpower_util.dir/table_printer.cpp.o.d"
  "CMakeFiles/ibpower_util.dir/time_types.cpp.o"
  "CMakeFiles/ibpower_util.dir/time_types.cpp.o.d"
  "libibpower_util.a"
  "libibpower_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibpower_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
