# Empty dependencies file for ibpower_util.
# This may be replaced when dependencies are built.
