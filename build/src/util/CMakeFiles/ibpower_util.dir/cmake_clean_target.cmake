file(REMOVE_RECURSE
  "libibpower_util.a"
)
