file(REMOVE_RECURSE
  "libibpower_power.a"
)
