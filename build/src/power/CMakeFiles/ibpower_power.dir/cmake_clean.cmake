file(REMOVE_RECURSE
  "CMakeFiles/ibpower_power.dir/policies.cpp.o"
  "CMakeFiles/ibpower_power.dir/policies.cpp.o.d"
  "CMakeFiles/ibpower_power.dir/power_model.cpp.o"
  "CMakeFiles/ibpower_power.dir/power_model.cpp.o.d"
  "CMakeFiles/ibpower_power.dir/switch_report.cpp.o"
  "CMakeFiles/ibpower_power.dir/switch_report.cpp.o.d"
  "libibpower_power.a"
  "libibpower_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibpower_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
