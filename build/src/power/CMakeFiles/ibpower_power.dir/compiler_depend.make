# Empty compiler generated dependencies file for ibpower_power.
# This may be replaced when dependencies are built.
