# Empty dependencies file for ibpower_core.
# This may be replaced when dependencies are built.
