file(REMOVE_RECURSE
  "libibpower_core.a"
)
