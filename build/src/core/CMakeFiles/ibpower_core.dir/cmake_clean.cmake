file(REMOVE_RECURSE
  "CMakeFiles/ibpower_core.dir/gram.cpp.o"
  "CMakeFiles/ibpower_core.dir/gram.cpp.o.d"
  "CMakeFiles/ibpower_core.dir/gram_builder.cpp.o"
  "CMakeFiles/ibpower_core.dir/gram_builder.cpp.o.d"
  "CMakeFiles/ibpower_core.dir/pattern.cpp.o"
  "CMakeFiles/ibpower_core.dir/pattern.cpp.o.d"
  "CMakeFiles/ibpower_core.dir/pmpi_agent.cpp.o"
  "CMakeFiles/ibpower_core.dir/pmpi_agent.cpp.o.d"
  "CMakeFiles/ibpower_core.dir/power_mode_control.cpp.o"
  "CMakeFiles/ibpower_core.dir/power_mode_control.cpp.o.d"
  "CMakeFiles/ibpower_core.dir/ppa.cpp.o"
  "CMakeFiles/ibpower_core.dir/ppa.cpp.o.d"
  "CMakeFiles/ibpower_core.dir/ppa_paper.cpp.o"
  "CMakeFiles/ibpower_core.dir/ppa_paper.cpp.o.d"
  "libibpower_core.a"
  "libibpower_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibpower_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
