
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/gram.cpp" "src/core/CMakeFiles/ibpower_core.dir/gram.cpp.o" "gcc" "src/core/CMakeFiles/ibpower_core.dir/gram.cpp.o.d"
  "/root/repo/src/core/gram_builder.cpp" "src/core/CMakeFiles/ibpower_core.dir/gram_builder.cpp.o" "gcc" "src/core/CMakeFiles/ibpower_core.dir/gram_builder.cpp.o.d"
  "/root/repo/src/core/pattern.cpp" "src/core/CMakeFiles/ibpower_core.dir/pattern.cpp.o" "gcc" "src/core/CMakeFiles/ibpower_core.dir/pattern.cpp.o.d"
  "/root/repo/src/core/pmpi_agent.cpp" "src/core/CMakeFiles/ibpower_core.dir/pmpi_agent.cpp.o" "gcc" "src/core/CMakeFiles/ibpower_core.dir/pmpi_agent.cpp.o.d"
  "/root/repo/src/core/power_mode_control.cpp" "src/core/CMakeFiles/ibpower_core.dir/power_mode_control.cpp.o" "gcc" "src/core/CMakeFiles/ibpower_core.dir/power_mode_control.cpp.o.d"
  "/root/repo/src/core/ppa.cpp" "src/core/CMakeFiles/ibpower_core.dir/ppa.cpp.o" "gcc" "src/core/CMakeFiles/ibpower_core.dir/ppa.cpp.o.d"
  "/root/repo/src/core/ppa_paper.cpp" "src/core/CMakeFiles/ibpower_core.dir/ppa_paper.cpp.o" "gcc" "src/core/CMakeFiles/ibpower_core.dir/ppa_paper.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ibpower_util.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ibpower_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
