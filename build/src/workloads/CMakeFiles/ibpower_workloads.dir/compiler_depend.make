# Empty compiler generated dependencies file for ibpower_workloads.
# This may be replaced when dependencies are built.
