
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/alya.cpp" "src/workloads/CMakeFiles/ibpower_workloads.dir/alya.cpp.o" "gcc" "src/workloads/CMakeFiles/ibpower_workloads.dir/alya.cpp.o.d"
  "/root/repo/src/workloads/app_model.cpp" "src/workloads/CMakeFiles/ibpower_workloads.dir/app_model.cpp.o" "gcc" "src/workloads/CMakeFiles/ibpower_workloads.dir/app_model.cpp.o.d"
  "/root/repo/src/workloads/gromacs.cpp" "src/workloads/CMakeFiles/ibpower_workloads.dir/gromacs.cpp.o" "gcc" "src/workloads/CMakeFiles/ibpower_workloads.dir/gromacs.cpp.o.d"
  "/root/repo/src/workloads/nas_bt.cpp" "src/workloads/CMakeFiles/ibpower_workloads.dir/nas_bt.cpp.o" "gcc" "src/workloads/CMakeFiles/ibpower_workloads.dir/nas_bt.cpp.o.d"
  "/root/repo/src/workloads/nas_lu.cpp" "src/workloads/CMakeFiles/ibpower_workloads.dir/nas_lu.cpp.o" "gcc" "src/workloads/CMakeFiles/ibpower_workloads.dir/nas_lu.cpp.o.d"
  "/root/repo/src/workloads/nas_mg.cpp" "src/workloads/CMakeFiles/ibpower_workloads.dir/nas_mg.cpp.o" "gcc" "src/workloads/CMakeFiles/ibpower_workloads.dir/nas_mg.cpp.o.d"
  "/root/repo/src/workloads/registry.cpp" "src/workloads/CMakeFiles/ibpower_workloads.dir/registry.cpp.o" "gcc" "src/workloads/CMakeFiles/ibpower_workloads.dir/registry.cpp.o.d"
  "/root/repo/src/workloads/wrf.cpp" "src/workloads/CMakeFiles/ibpower_workloads.dir/wrf.cpp.o" "gcc" "src/workloads/CMakeFiles/ibpower_workloads.dir/wrf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ibpower_util.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ibpower_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
