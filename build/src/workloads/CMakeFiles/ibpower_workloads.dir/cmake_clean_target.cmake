file(REMOVE_RECURSE
  "libibpower_workloads.a"
)
