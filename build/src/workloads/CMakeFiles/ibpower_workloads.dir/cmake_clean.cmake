file(REMOVE_RECURSE
  "CMakeFiles/ibpower_workloads.dir/alya.cpp.o"
  "CMakeFiles/ibpower_workloads.dir/alya.cpp.o.d"
  "CMakeFiles/ibpower_workloads.dir/app_model.cpp.o"
  "CMakeFiles/ibpower_workloads.dir/app_model.cpp.o.d"
  "CMakeFiles/ibpower_workloads.dir/gromacs.cpp.o"
  "CMakeFiles/ibpower_workloads.dir/gromacs.cpp.o.d"
  "CMakeFiles/ibpower_workloads.dir/nas_bt.cpp.o"
  "CMakeFiles/ibpower_workloads.dir/nas_bt.cpp.o.d"
  "CMakeFiles/ibpower_workloads.dir/nas_lu.cpp.o"
  "CMakeFiles/ibpower_workloads.dir/nas_lu.cpp.o.d"
  "CMakeFiles/ibpower_workloads.dir/nas_mg.cpp.o"
  "CMakeFiles/ibpower_workloads.dir/nas_mg.cpp.o.d"
  "CMakeFiles/ibpower_workloads.dir/registry.cpp.o"
  "CMakeFiles/ibpower_workloads.dir/registry.cpp.o.d"
  "CMakeFiles/ibpower_workloads.dir/wrf.cpp.o"
  "CMakeFiles/ibpower_workloads.dir/wrf.cpp.o.d"
  "libibpower_workloads.a"
  "libibpower_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibpower_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
