# Empty compiler generated dependencies file for ibpower_network.
# This may be replaced when dependencies are built.
