
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/network/fabric.cpp" "src/network/CMakeFiles/ibpower_network.dir/fabric.cpp.o" "gcc" "src/network/CMakeFiles/ibpower_network.dir/fabric.cpp.o.d"
  "/root/repo/src/network/ib_link.cpp" "src/network/CMakeFiles/ibpower_network.dir/ib_link.cpp.o" "gcc" "src/network/CMakeFiles/ibpower_network.dir/ib_link.cpp.o.d"
  "/root/repo/src/network/topology.cpp" "src/network/CMakeFiles/ibpower_network.dir/topology.cpp.o" "gcc" "src/network/CMakeFiles/ibpower_network.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ibpower_util.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ibpower_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ibpower_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
