file(REMOVE_RECURSE
  "CMakeFiles/ibpower_network.dir/fabric.cpp.o"
  "CMakeFiles/ibpower_network.dir/fabric.cpp.o.d"
  "CMakeFiles/ibpower_network.dir/ib_link.cpp.o"
  "CMakeFiles/ibpower_network.dir/ib_link.cpp.o.d"
  "CMakeFiles/ibpower_network.dir/topology.cpp.o"
  "CMakeFiles/ibpower_network.dir/topology.cpp.o.d"
  "libibpower_network.a"
  "libibpower_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibpower_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
