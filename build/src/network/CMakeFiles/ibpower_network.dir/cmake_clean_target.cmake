file(REMOVE_RECURSE
  "libibpower_network.a"
)
