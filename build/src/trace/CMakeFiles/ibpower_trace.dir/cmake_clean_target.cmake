file(REMOVE_RECURSE
  "libibpower_trace.a"
)
