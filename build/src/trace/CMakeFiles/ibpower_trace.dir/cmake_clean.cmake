file(REMOVE_RECURSE
  "CMakeFiles/ibpower_trace.dir/idle_analysis.cpp.o"
  "CMakeFiles/ibpower_trace.dir/idle_analysis.cpp.o.d"
  "CMakeFiles/ibpower_trace.dir/mpi_event.cpp.o"
  "CMakeFiles/ibpower_trace.dir/mpi_event.cpp.o.d"
  "CMakeFiles/ibpower_trace.dir/paraver.cpp.o"
  "CMakeFiles/ibpower_trace.dir/paraver.cpp.o.d"
  "CMakeFiles/ibpower_trace.dir/profile.cpp.o"
  "CMakeFiles/ibpower_trace.dir/profile.cpp.o.d"
  "CMakeFiles/ibpower_trace.dir/trace.cpp.o"
  "CMakeFiles/ibpower_trace.dir/trace.cpp.o.d"
  "CMakeFiles/ibpower_trace.dir/trace_io.cpp.o"
  "CMakeFiles/ibpower_trace.dir/trace_io.cpp.o.d"
  "libibpower_trace.a"
  "libibpower_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibpower_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
