# Empty dependencies file for ibpower_trace.
# This may be replaced when dependencies are built.
