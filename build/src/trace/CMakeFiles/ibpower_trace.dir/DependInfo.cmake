
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/idle_analysis.cpp" "src/trace/CMakeFiles/ibpower_trace.dir/idle_analysis.cpp.o" "gcc" "src/trace/CMakeFiles/ibpower_trace.dir/idle_analysis.cpp.o.d"
  "/root/repo/src/trace/mpi_event.cpp" "src/trace/CMakeFiles/ibpower_trace.dir/mpi_event.cpp.o" "gcc" "src/trace/CMakeFiles/ibpower_trace.dir/mpi_event.cpp.o.d"
  "/root/repo/src/trace/paraver.cpp" "src/trace/CMakeFiles/ibpower_trace.dir/paraver.cpp.o" "gcc" "src/trace/CMakeFiles/ibpower_trace.dir/paraver.cpp.o.d"
  "/root/repo/src/trace/profile.cpp" "src/trace/CMakeFiles/ibpower_trace.dir/profile.cpp.o" "gcc" "src/trace/CMakeFiles/ibpower_trace.dir/profile.cpp.o.d"
  "/root/repo/src/trace/trace.cpp" "src/trace/CMakeFiles/ibpower_trace.dir/trace.cpp.o" "gcc" "src/trace/CMakeFiles/ibpower_trace.dir/trace.cpp.o.d"
  "/root/repo/src/trace/trace_io.cpp" "src/trace/CMakeFiles/ibpower_trace.dir/trace_io.cpp.o" "gcc" "src/trace/CMakeFiles/ibpower_trace.dir/trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ibpower_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
