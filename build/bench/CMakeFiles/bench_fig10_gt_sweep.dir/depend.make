# Empty dependencies file for bench_fig10_gt_sweep.
# This may be replaced when dependencies are built.
