
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table4_overheads.cpp" "bench/CMakeFiles/bench_table4_overheads.dir/bench_table4_overheads.cpp.o" "gcc" "bench/CMakeFiles/bench_table4_overheads.dir/bench_table4_overheads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ibpower_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/ibpower_power.dir/DependInfo.cmake"
  "/root/repo/build/src/network/CMakeFiles/ibpower_network.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/ibpower_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ibpower_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ibpower_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ibpower_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
