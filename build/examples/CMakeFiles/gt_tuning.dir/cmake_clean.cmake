file(REMOVE_RECURSE
  "CMakeFiles/gt_tuning.dir/gt_tuning.cpp.o"
  "CMakeFiles/gt_tuning.dir/gt_tuning.cpp.o.d"
  "gt_tuning"
  "gt_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gt_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
