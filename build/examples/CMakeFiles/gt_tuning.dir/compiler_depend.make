# Empty compiler generated dependencies file for gt_tuning.
# This may be replaced when dependencies are built.
