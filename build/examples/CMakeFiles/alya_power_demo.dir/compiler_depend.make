# Empty compiler generated dependencies file for alya_power_demo.
# This may be replaced when dependencies are built.
