file(REMOVE_RECURSE
  "CMakeFiles/alya_power_demo.dir/alya_power_demo.cpp.o"
  "CMakeFiles/alya_power_demo.dir/alya_power_demo.cpp.o.d"
  "alya_power_demo"
  "alya_power_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alya_power_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
