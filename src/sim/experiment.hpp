// Experiment orchestration: baseline vs managed co-simulation runs and the
// derived metrics every table/figure reproduction consumes.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "power/policies.hpp"
#include "power/power_model.hpp"
#include "sim/replay.hpp"
#include "trace/idle_analysis.hpp"
#include "trace/paraver.hpp"
#include "workloads/app_model.hpp"

namespace ibpower {

struct ExperimentConfig {
  std::string app{"alya"};
  WorkloadParams workload{};
  PpaConfig ppa{};
  FabricConfig fabric{};
  PowerModelConfig power{};
  Bytes eager_threshold{32 * 1024};
  bool record_call_timeline{false};
  /// Intra-replay shard count (ReplayOptions::shards): 1 = serial, <= 0 =
  /// auto. Bit-identical results for every value — a performance knob only.
  int shards{1};
  /// Host-side power co-management (managed leg only; DESIGN.md §15).
  /// Disabled by default, leaving every result field and export byte
  /// untouched.
  HostPowerConfig host{};
};

struct ExperimentResult {
  TimeNs baseline_time{};
  TimeNs managed_time{};
  double time_increase_pct{0.0};
  FleetPowerSummary power{};       // over the managed run's node uplinks
  /// Whole-fabric view: all links (node uplinks + trunks) of the managed
  /// run. With the trunk policy off the trunks are always-on, so this is
  /// the uplink-only savings diluted over 504 ports; with a trunk policy
  /// active it is the paper's whole-switch number.
  FleetPowerSummary fabric_power{};
  AgentStats agents{};             // summed over ranks
  double hit_rate_pct{0.0};
  IdleDistribution baseline_idle{};  // Table I input, baseline run
  std::uint64_t on_demand_wakes{0};  // timing mispredictions (link level)
  TimeNs wake_penalty_total{};
  std::uint64_t mpi_calls{0};
  std::uint64_t messages{0};
  std::uint64_t sim_events{0};  // DES events, baseline + managed replays
  /// Host co-management roll-up (zeros when ExperimentConfig::host is off).
  HostFleetSummary hosts{};
  /// Total system energy of the managed run: every fabric link plus every
  /// rank's host. The baseline is the power-unaware system (always-on
  /// links, hosts flat out at P0). Zeros when host co-management is off.
  double system_energy_joules{0.0};
  double system_baseline_energy_joules{0.0};
  double system_savings_pct{0.0};
};

/// Generate the workload trace and run baseline + managed replays.
[[nodiscard]] ExperimentResult run_experiment(const ExperimentConfig& cfg);

/// Bitwise equality of every field — the determinism contract between the
/// serial path and ParallelExperimentRunner (doubles compared by bits, not
/// by value, so even rounding differences would be caught).
[[nodiscard]] bool bit_identical(const ExperimentResult& a,
                                 const ExperimentResult& b);

// --- Decomposed legs of run_experiment ------------------------------------
//
// The parallel experiment runner (sim/parallel.hpp) schedules these as
// independent tasks: the baseline and managed replays of one experiment
// share only the immutable Trace, so they can run concurrently and still
// combine into a result bit-identical to run_experiment's.

/// Copy of `cfg` with the Treact propagated into the link model (the single
/// source of truth rule run_experiment applies). Legs require a normalized
/// config.
[[nodiscard]] ExperimentConfig normalize_config(const ExperimentConfig& cfg);

/// Generate the workload trace for a (normalized) config. Throws
/// std::invalid_argument when the app does not support cfg.workload.nranks.
[[nodiscard]] Trace generate_experiment_trace(const ExperimentConfig& cfg);

/// Canonical key over *everything* that affects generate_experiment_trace:
/// the app name and every WorkloadParams field (nranks, iterations, seed,
/// scale — by exact bit pattern, not by value — and weak_scaling). Two
/// configs with equal keys produce bit-identical traces, so the parallel
/// runner and the campaign session share one generated Trace between them;
/// configs differing only in predictor/policy/fabric/power knobs map to the
/// same key on purpose. This is the single source of truth for trace
/// sharing — anyone adding a trace-affecting field to WorkloadParams must
/// extend it (test_parallel_experiment pins the field coverage).
[[nodiscard]] std::string trace_cache_key(const ExperimentConfig& cfg);

/// Observation hook invoked with the finished engine (links closed, audits
/// run) just before a leg discards it. The obs/ telemetry layer hangs off
/// this: the sim layer never names the metrics types, so sim stays free of
/// any obs dependency and an empty probe costs one bool test per leg.
/// Probes run on whatever thread executes the leg (the pool worker under
/// ParallelExperimentRunner), so a probe must only touch state owned by its
/// own cell — the per-task-local-buffer discipline of DESIGN.md §7.
using ReplayProbe = std::function<void(const ReplayEngine&, const ReplayResult&)>;

/// Per-cell probe pair for the decomposed legs.
struct LegProbes {
  ReplayProbe baseline;
  ReplayProbe managed;
};

struct BaselineLegResult {
  TimeNs time{};
  IdleDistribution idle{};
  std::uint64_t events{0};
};

struct ManagedLegResult {
  TimeNs time{};
  AgentStats agents{};
  double hit_rate_pct{0.0};
  FleetPowerSummary power{};
  FleetPowerSummary fabric_power{};  // all links, uplinks + trunks
  std::uint64_t on_demand_wakes{0};
  TimeNs wake_penalty_total{};
  std::uint64_t messages{0};
  std::uint64_t events{0};
  HostFleetSummary hosts{};  // zeros when host co-management is off
};

/// `memory` is an optional reusable ReplayMemory workspace (the parallel
/// runner passes each worker's own); null means the engine allocates a
/// private one, exactly as before.
[[nodiscard]] BaselineLegResult run_baseline_leg(const ExperimentConfig& cfg,
                                                 const Trace& trace,
                                                 const ReplayProbe& probe = {},
                                                 ReplayMemory* memory = nullptr);
[[nodiscard]] ManagedLegResult run_managed_leg(const ExperimentConfig& cfg,
                                               const Trace& trace,
                                               const ReplayProbe& probe = {},
                                               ReplayMemory* memory = nullptr);
[[nodiscard]] ExperimentResult combine_legs(const Trace& trace,
                                            const BaselineLegResult& baseline,
                                            const ManagedLegResult& managed);

struct GtSweepPoint {
  TimeNs gt{};
  double hit_rate_pct{0.0};
};

/// One baseline replay recording per-rank call timelines (the shared input
/// of every GT dry run in a sweep). The returned timelines are owned copies
/// — safe to keep after `memory` is reused.
[[nodiscard]] std::vector<std::vector<MpiCallEvent>> baseline_call_timelines(
    const ExperimentConfig& cfg, const Trace& trace,
    ReplayMemory* memory = nullptr);

/// Score one GT value against prerecorded baseline timelines (clamps GT to
/// >= 2*Treact exactly like sweep_gt).
[[nodiscard]] GtSweepPoint score_gt(
    const std::vector<std::vector<MpiCallEvent>>& timelines,
    const PpaConfig& base_ppa, TimeNs gt);

/// Idle gaps of one node's uplink (busy union of both directions,
/// complemented over [0, exec]).
[[nodiscard]] std::vector<TimeInterval> node_link_idle_gaps(
    const Fabric& fabric, NodeId node, TimeNs exec);

/// Table I: idle-interval distribution aggregated over all used node
/// uplinks of a finished run.
[[nodiscard]] IdleDistribution aggregate_idle(const Fabric& fabric,
                                              int nranks, TimeNs exec);

/// Fig. 6: per-node-link power-mode timeline of a finished managed run.
/// States use the LinkPowerMode enum values.
[[nodiscard]] StateTimeline build_power_timeline(const Fabric& fabric,
                                                 int nranks, TimeNs exec);

/// Fig. 10 / Table III methodology: replay the *baseline* call timelines
/// through prediction-only agents (no actuation) to score a GT value.
/// Returns the aggregate MPI-call hit rate in percent.
[[nodiscard]] double dry_run_hit_rate(
    const std::vector<std::vector<MpiCallEvent>>& call_timelines,
    const PpaConfig& ppa);

/// Sweep GT over `values` against one baseline run of `cfg`.
[[nodiscard]] std::vector<GtSweepPoint> sweep_gt(const ExperimentConfig& cfg,
                                                 const std::vector<TimeNs>& values);

/// The grouping threshold our calibration selected per app/size (the
/// analogue of the paper's Table III choices).
[[nodiscard]] TimeNs default_gt(const std::string& app, int nranks);

}  // namespace ibpower
