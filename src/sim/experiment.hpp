// Experiment orchestration: baseline vs managed co-simulation runs and the
// derived metrics every table/figure reproduction consumes.
#pragma once

#include <string>
#include <vector>

#include "power/policies.hpp"
#include "power/power_model.hpp"
#include "sim/replay.hpp"
#include "trace/idle_analysis.hpp"
#include "trace/paraver.hpp"
#include "workloads/app_model.hpp"

namespace ibpower {

struct ExperimentConfig {
  std::string app{"alya"};
  WorkloadParams workload{};
  PpaConfig ppa{};
  FabricConfig fabric{};
  PowerModelConfig power{};
  Bytes eager_threshold{32 * 1024};
  bool record_call_timeline{false};
};

struct ExperimentResult {
  TimeNs baseline_time{};
  TimeNs managed_time{};
  double time_increase_pct{0.0};
  FleetPowerSummary power{};       // over the managed run's node uplinks
  AgentStats agents{};             // summed over ranks
  double hit_rate_pct{0.0};
  IdleDistribution baseline_idle{};  // Table I input, baseline run
  std::uint64_t on_demand_wakes{0};  // timing mispredictions (link level)
  TimeNs wake_penalty_total{};
  std::uint64_t mpi_calls{0};
  std::uint64_t messages{0};
};

/// Generate the workload trace and run baseline + managed replays.
[[nodiscard]] ExperimentResult run_experiment(const ExperimentConfig& cfg);

/// Idle gaps of one node's uplink (busy union of both directions,
/// complemented over [0, exec]).
[[nodiscard]] std::vector<TimeInterval> node_link_idle_gaps(
    const Fabric& fabric, NodeId node, TimeNs exec);

/// Table I: idle-interval distribution aggregated over all used node
/// uplinks of a finished run.
[[nodiscard]] IdleDistribution aggregate_idle(const Fabric& fabric,
                                              int nranks, TimeNs exec);

/// Fig. 6: per-node-link power-mode timeline of a finished managed run.
/// States use the LinkPowerMode enum values.
[[nodiscard]] StateTimeline build_power_timeline(const Fabric& fabric,
                                                 int nranks, TimeNs exec);

/// Fig. 10 / Table III methodology: replay the *baseline* call timelines
/// through prediction-only agents (no actuation) to score a GT value.
/// Returns the aggregate MPI-call hit rate in percent.
[[nodiscard]] double dry_run_hit_rate(
    const std::vector<std::vector<MpiCallEvent>>& call_timelines,
    const PpaConfig& ppa);

struct GtSweepPoint {
  TimeNs gt{};
  double hit_rate_pct{0.0};
};

/// Sweep GT over `values` against one baseline run of `cfg`.
[[nodiscard]] std::vector<GtSweepPoint> sweep_gt(const ExperimentConfig& cfg,
                                                 const std::vector<TimeNs>& values);

/// The grouping threshold our calibration selected per app/size (the
/// analogue of the paper's Table III choices).
[[nodiscard]] TimeNs default_gt(const std::string& app, int nranks);

}  // namespace ibpower
