#include "sim/campaign.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "core/config.hpp"
#include "network/routing.hpp"
#include "power/trunk_policy.hpp"
#include "util/expect.hpp"

namespace ibpower {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

std::string describe(const std::exception_ptr& err) {
  try {
    std::rethrow_exception(err);
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown error";
  }
}

}  // namespace

CampaignSession::CampaignSession(ParallelExperimentRunner& runner)
    : runner_(&runner) {}

CampaignSession::~CampaignSession() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return done_count_ == slots_.size(); });
}

void CampaignSession::submit(CampaignRequest req) {
  Slot* slot = nullptr;
  TraceEntry* entry = nullptr;
  bool fresh = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    slots_.push_back(std::make_unique<Slot>());
    slot = slots_.back().get();
    slot->id = std::move(req.id);
    slot->cfg = normalize_config(req.cfg);
    slot->key = trace_cache_key(slot->cfg);
    ++stats_.requests;
    auto& up = cache_[slot->key];
    if (up == nullptr) {
      up = std::make_unique<TraceEntry>();
      fresh = true;
      ++stats_.trace_builds;
    } else {
      ++stats_.trace_hits;
      slot->row.trace_shared = true;
    }
    entry = up.get();
    ++entry->refs;
    stats_.max_live_traces =
        std::max<std::uint64_t>(stats_.max_live_traces, cache_.size());
  }

  TaskEngine& engine = runner_->engine();
  if (fresh) {
    // One generation task per live key; later same-key requests depend on
    // this same task id (finished deps are free), replaying the one Trace
    // the entry holds until its last reference finalizes.
    entry->gen_task = engine.submit(
        [slot, entry] {
          try {
            const auto t0 = Clock::now();
            entry->trace = generate_experiment_trace(slot->cfg);
            slot->row.gen_ms = ms_since(t0);
          } catch (...) {
            entry->error = std::current_exception();
          }
        },
        "campaign-gen");
  }
  ParallelExperimentRunner* runner = runner_;
  const TaskId base = engine.submit_after(
      {entry->gen_task},
      [slot, entry, runner] {
        if (entry->error) return;  // finalize reports the generation error
        try {
          const auto t0 = Clock::now();
          slot->base = run_baseline_leg(slot->cfg, entry->trace, {},
                                        runner->worker_memory());
          slot->row.base_ms = ms_since(t0);
        } catch (...) {
          slot->base_err = std::current_exception();
        }
      },
      "campaign-baseline");
  const TaskId managed = engine.submit_after(
      {entry->gen_task},
      [slot, entry, runner] {
        if (entry->error) return;
        try {
          const auto t0 = Clock::now();
          slot->managed = run_managed_leg(slot->cfg, entry->trace, {},
                                          runner->worker_memory());
          slot->row.managed_ms = ms_since(t0);
        } catch (...) {
          slot->managed_err = std::current_exception();
        }
      },
      "campaign-managed");
  engine.submit_after({base, managed},
                      [this, slot, entry] { finalize(slot, entry); },
                      "campaign-finalize");
}

void CampaignSession::finalize(Slot* slot, TraceEntry* entry) {
  // Combine while our reference still pins the trace (combine_legs reads
  // mpi_calls out of it); release the reference only afterwards.
  CampaignRow& row = slot->row;
  row.id = slot->id;
  if (entry->error) {
    row.ok = false;
    row.error = describe(entry->error);
  } else if (slot->base_err) {
    row.ok = false;
    row.error = describe(slot->base_err);
  } else if (slot->managed_err) {
    row.ok = false;
    row.error = describe(slot->managed_err);
  } else {
    row.ok = true;
    row.result = combine_legs(entry->trace, slot->base, slot->managed);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (--entry->refs == 0) {
      cache_.erase(slot->key);
      ++stats_.evictions;
    }
    slot->done = true;
    ++done_count_;
    // Notify under the lock: the destructor may tear the session (and
    // this cv) down the instant the predicate holds, so the broadcast
    // must complete before a waiter can observe the final done_count_.
    cv_.notify_all();
  }
}

void CampaignSession::submit_error(std::string id, std::string message) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    slots_.push_back(std::make_unique<Slot>());
    Slot* slot = slots_.back().get();
    slot->id = id;
    slot->row.id = std::move(id);
    slot->row.ok = false;
    slot->row.error = std::move(message);
    slot->done = true;
    ++done_count_;
    ++stats_.requests;
    cv_.notify_all();  // under the lock, same lifetime reasoning as above
  }
}

bool CampaignSession::pop(CampaignRow* out) {
  std::unique_lock<std::mutex> lock(mu_);
  if (next_pop_ >= slots_.size()) return false;
  Slot* slot = slots_[next_pop_].get();
  cv_.wait(lock, [slot] { return slot->done; });
  *out = std::move(slot->row);
  ++next_pop_;
  return true;
}

bool CampaignSession::try_pop(CampaignRow* out) {
  std::unique_lock<std::mutex> lock(mu_);
  if (next_pop_ >= slots_.size()) return false;
  Slot* slot = slots_[next_pop_].get();
  if (!slot->done) return false;
  *out = std::move(slot->row);
  ++next_pop_;
  return true;
}

CampaignCacheStats CampaignSession::cache_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

// ---------------------------------------------------------------------------
// JSONL wire format

namespace {

/// Minimal cursor over one flat JSON object. Supports string, number, bool
/// and null values — the whole request vocabulary — and rejects everything
/// else with a positioned message.
struct JsonCursor {
  const char* p;
  std::string err;

  void skip_ws() {
    while (*p == ' ' || *p == '\t' || *p == '\r' || *p == '\n') ++p;
  }
  bool fail(const std::string& what) {
    if (err.empty()) err = what;
    return false;
  }
  bool expect(char c) {
    skip_ws();
    if (*p != c) return fail(std::string("expected '") + c + "'");
    ++p;
    return true;
  }
  bool parse_string(std::string* out) {
    skip_ws();
    if (*p != '"') return fail("expected string");
    ++p;
    out->clear();
    while (*p != '"') {
      if (*p == '\0') return fail("unterminated string");
      if (*p == '\\') {
        ++p;
        switch (*p) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          default: return fail("unsupported escape");
        }
        ++p;
      } else {
        out->push_back(*p++);
      }
    }
    ++p;
    return true;
  }
  bool parse_number(double* out) {
    skip_ws();
    char* end = nullptr;
    *out = std::strtod(p, &end);
    if (end == p) return fail("expected number");
    p = end;
    return true;
  }
  bool parse_bool(bool* out) {
    skip_ws();
    if (std::strncmp(p, "true", 4) == 0) {
      *out = true;
      p += 4;
      return true;
    }
    if (std::strncmp(p, "false", 5) == 0) {
      *out = false;
      p += 5;
      return true;
    }
    return fail("expected true/false");
  }
};

bool parse_xgft(const std::string& spec, XgftParams* out, std::string* err) {
  int v[6] = {0, 0, 0, 0, 1, 1};
  int n = 0;
  const char* p = spec.c_str();
  while (*p != '\0' && n < 6) {
    char* end = nullptr;
    v[n] = static_cast<int>(std::strtol(p, &end, 10));
    if (end == p) break;
    ++n;
    p = end;
    if (*p == ',') ++p;
  }
  if ((n != 4 && n != 6) || *p != '\0') {
    *err = "bad xgft '" + spec + "' (want M1,M2,W1,W2 or M1,M2,W1,W2,M3,W3)";
    return false;
  }
  out->m1 = v[0];
  out->m2 = v[1];
  out->w1 = v[2];
  out->w2 = v[3];
  out->m3 = v[4];
  out->w3 = v[5];
  return true;
}

void append_escaped(std::string* out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
}

void append_double(std::string* out, const char* key, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), ",\"%s\":%.17g", key, v);
  *out += buf;
}

void append_u64(std::string* out, const char* key, std::uint64_t v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), ",\"%s\":%llu", key,
                static_cast<unsigned long long>(v));
  *out += buf;
}

}  // namespace

bool parse_campaign_request(const std::string& line, int lineno,
                            CampaignRequest* out, std::string* error) {
  CampaignRequest req;
  req.id = "req-" + std::to_string(lineno);
  ExperimentConfig& cfg = req.cfg;
  bool has_gt = false;
  double gt_us = 0.0;

  JsonCursor c{line.c_str(), {}};
  if (!c.expect('{')) {
    *error = c.err;
    return false;
  }
  c.skip_ws();
  bool first = true;
  while (*c.p != '}') {
    if (!first && !c.expect(',')) {
      *error = c.err;
      return false;
    }
    first = false;
    std::string key;
    if (!c.parse_string(&key) || !c.expect(':')) {
      *error = c.err;
      return false;
    }
    std::string sval;
    double dval = 0.0;
    bool bval = false;
    bool ok = true;
    if (key == "id" || key == "app" || key == "routing" ||
        key == "trunk_policy" || key == "predictor" || key == "xgft") {
      ok = c.parse_string(&sval);
    } else if (key == "weak_scaling" || key == "contention" ||
               key == "split_energy") {
      ok = c.parse_bool(&bval);
    } else {
      ok = c.parse_number(&dval);
    }
    if (!ok) {
      *error = "key '" + key + "': " + c.err;
      return false;
    }
    if (key == "id") {
      req.id = sval;
    } else if (key == "app") {
      cfg.app = sval;
    } else if (key == "nranks") {
      cfg.workload.nranks = static_cast<int>(dval);
    } else if (key == "iterations") {
      cfg.workload.iterations = static_cast<int>(dval);
    } else if (key == "seed") {
      cfg.workload.seed = static_cast<std::uint64_t>(dval);
    } else if (key == "scale") {
      cfg.workload.scale = dval;
    } else if (key == "weak_scaling") {
      cfg.workload.weak_scaling = bval;
    } else if (key == "gt_us") {
      has_gt = true;
      gt_us = dval;
    } else if (key == "disp") {
      cfg.ppa.displacement_factor = dval / 100.0;
    } else if (key == "treact_us") {
      cfg.ppa.t_react = TimeNs::from_us(dval);
    } else if (key == "guard_us") {
      cfg.ppa.predictor.guard_threshold = TimeNs::from_us(dval);
    } else if (key == "predictor") {
      if (!parse_predictor(sval, &cfg.ppa.predictor.kind)) {
        *error = "unknown predictor '" + sval + "'";
        return false;
      }
    } else if (key == "routing") {
      if (!parse_routing_strategy(sval, cfg.fabric.routing.strategy)) {
        *error = "unknown routing '" + sval + "'";
        return false;
      }
    } else if (key == "trunk_policy") {
      if (!parse_trunk_policy(sval, cfg.fabric.trunk.kind)) {
        *error = "unknown trunk_policy '" + sval + "'";
        return false;
      }
    } else if (key == "trunk_timeout_us") {
      cfg.fabric.trunk.idle_timeout = TimeNs::from_us(dval);
    } else if (key == "spill_us") {
      cfg.fabric.routing.spill_threshold = TimeNs::from_us(dval);
    } else if (key == "contention") {
      cfg.fabric.contention = bval;
    } else if (key == "split_energy") {
      cfg.power.split_energy = bval;
    } else if (key == "xgft") {
      if (!parse_xgft(sval, &cfg.fabric.xgft, error)) return false;
    } else if (key == "eager") {
      cfg.eager_threshold = Bytes{static_cast<std::int64_t>(dval)};
    } else if (key == "shards") {
      cfg.shards = static_cast<int>(dval);
    } else {
      // Reject typos loudly: a misspelled knob silently running a default
      // experiment is the worst campaign failure mode.
      *error = "unknown key '" + key + "'";
      return false;
    }
    c.skip_ws();
  }
  ++c.p;
  c.skip_ws();
  if (*c.p != '\0') {
    *error = "trailing characters after object";
    return false;
  }

  // Mirror the CLI's --gt handling: default from the calibration table,
  // always clamped to the 2*Treact feasibility floor.
  cfg.ppa.grouping_threshold = has_gt
                                   ? TimeNs::from_us(gt_us)
                                   : default_gt(cfg.app, cfg.workload.nranks);
  cfg.ppa.grouping_threshold =
      max(cfg.ppa.grouping_threshold, 2 * cfg.ppa.t_react);

  *out = std::move(req);
  return true;
}

std::string format_campaign_row(const CampaignRow& row) {
  std::string out = "{\"v\":\"ibpower-campaign:v1\",\"id\":\"";
  append_escaped(&out, row.id);
  out += "\"";
  if (!row.ok) {
    out += ",\"ok\":false,\"error\":\"";
    append_escaped(&out, row.error);
    out += "\"}";
    return out;
  }
  const ExperimentResult& r = row.result;
  out += ",\"ok\":true";
  append_u64(&out, "baseline_ns", static_cast<std::uint64_t>(r.baseline_time.ns));
  append_u64(&out, "managed_ns", static_cast<std::uint64_t>(r.managed_time.ns));
  append_double(&out, "time_increase_pct", r.time_increase_pct);
  append_double(&out, "uplink_savings_pct", r.power.switch_savings_pct);
  append_double(&out, "fabric_savings_pct", r.fabric_power.switch_savings_pct);
  append_double(&out, "low_residency", r.power.mean_low_residency);
  append_double(&out, "hit_rate_pct", r.hit_rate_pct);
  append_u64(&out, "on_demand_wakes", r.on_demand_wakes);
  append_u64(&out, "wake_penalty_ns",
             static_cast<std::uint64_t>(r.wake_penalty_total.ns));
  append_u64(&out, "mpi_calls", r.mpi_calls);
  append_u64(&out, "messages", r.messages);
  append_u64(&out, "sim_events", r.sim_events);
  out += "}";
  return out;
}

}  // namespace ibpower
