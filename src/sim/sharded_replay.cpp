#include "sim/sharded_replay.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <limits>
#include <memory>
#include <thread>

#include "util/expect.hpp"
#include "util/task_engine.hpp"
#include "util/thread_pool.hpp"

namespace ibpower {

namespace {
constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max();

std::int64_t saturating_add(std::int64_t a, std::int64_t b) {
  return a > kInf - b ? kInf : a + b;
}
}  // namespace

int resolve_shard_count(int requested, int nleaves_used, bool has_lookahead) {
  if (!has_lookahead || nleaves_used <= 1) return 1;
  int shards = requested;
  if (shards <= 0) {
    if (TaskEngine* engine = TaskEngine::current()) {
      // Auto inside a TaskEngine worker: shard to the engine's width — the
      // elastic run shares the engine's workers (no thread spawn), so idle
      // peers can pump while busy ones keep their own cells.
      shards = static_cast<int>(engine->size());
    } else if (ThreadPool::in_worker()) {
      // Plain ThreadPool worker: nested fan-out would oversubscribe the
      // machine; cell-level parallelism wins there.
      shards = 1;
    } else {
      shards = static_cast<int>(ThreadPool::default_concurrency());
    }
  }
  return std::clamp(shards, 1, nleaves_used);
}

ShardExecutor::ShardExecutor(std::vector<EventQueue*> queues, TimeNs lookahead)
    : profiles_(queues.size()), lookahead_(lookahead) {
  IBP_EXPECTS(!queues.empty());
  IBP_EXPECTS(queues.size() == 1 || lookahead > TimeNs::zero());
  shards_.reserve(queues.size());
  for (EventQueue* q : queues) {
    IBP_EXPECTS(q != nullptr);
    auto s = std::make_unique<Shard>();
    s->queue = q;
    s->inbox_min.store(kInf, std::memory_order_relaxed);
    s->self_cap = kInf;
    shards_.push_back(std::move(s));
  }
}

void ShardExecutor::post(int from, int to, TimeNs t, std::uint64_t tie,
                         Callback cb) {
  IBP_EXPECTS(to >= 0 && to < nshards());
  if (to == from) {
    shards_[static_cast<std::size_t>(to)]->queue->schedule_tie(t, tie,
                                                               std::move(cb));
    return;
  }
  Shard& target = *shards_[static_cast<std::size_t>(to)];
  {
    std::lock_guard<std::mutex> lock(target.inbox_mutex);
    target.inbox.push_back(PendingEvent{t.ns, tie, std::move(cb)});
    // Single writer at a time (the mutex); the release pairs with the
    // acquire in effective_horizon so a reader that misses the new horizon
    // still sees this in-flight event's time.
    const std::int64_t im =
        target.inbox_min.load(std::memory_order_relaxed);
    if (t.ns < im) {
      target.inbox_min.store(t.ns, std::memory_order_release);
    }
  }
  Shard& self = *shards_[static_cast<std::size_t>(from)];
  self.posted.fetch_add(1, std::memory_order_release);
  // Cap our own batch at the earliest time the receiver could react and
  // post back (owner-thread-only field; see the header's protocol note).
  const std::int64_t echo = saturating_add(t.ns, lookahead_.ns);
  if (echo < self.self_cap) self.self_cap = echo;
  ++profiles_[static_cast<std::size_t>(from)].boundary_posts;
}

void ShardExecutor::drain_inbox(int i, std::vector<PendingEvent>& scratch) {
  Shard& s = *shards_[static_cast<std::size_t>(i)];
  scratch.clear();
  {
    std::lock_guard<std::mutex> lock(s.inbox_mutex);
    if (s.inbox.empty()) return;
    scratch.swap(s.inbox);
    // Fold the arrivals into the queue and republish the horizon BEFORE
    // releasing inbox_min: between the two stores a reader sees either the
    // old inbox_min (covering the arrivals) or, via the release/acquire
    // pair on inbox_min, the already-lowered horizon — never a stale
    // horizon with an empty-looking inbox.
    for (PendingEvent& ev : scratch) {
      s.queue->schedule_tie(TimeNs{ev.t}, ev.tie, std::move(ev.cb));
    }
    s.horizon.store(s.queue->next_time().ns, std::memory_order_release);
    s.inbox_min.store(kInf, std::memory_order_release);
  }
  s.drained.fetch_add(scratch.size(), std::memory_order_release);
  scratch.clear();
}

bool ShardExecutor::try_terminate() {
  // Monotone-counter double-read: if the posted/drained totals are equal,
  // every effective horizon reads infinity in between, and the totals have
  // not moved, then no event exists anywhere and none was in flight during
  // the sweep — nothing can ever be created again.
  std::uint64_t posted1 = 0;
  std::uint64_t drained1 = 0;
  for (const auto& s : shards_) {
    posted1 += s->posted.load(std::memory_order_acquire);
    drained1 += s->drained.load(std::memory_order_acquire);
  }
  if (posted1 != drained1) return false;
  for (const auto& s : shards_) {
    if (effective_horizon(*s) != kInf) return false;
  }
  std::uint64_t posted2 = 0;
  std::uint64_t drained2 = 0;
  for (const auto& s : shards_) {
    posted2 += s->posted.load(std::memory_order_acquire);
    drained2 += s->drained.load(std::memory_order_acquire);
  }
  return posted2 == posted1 && drained2 == drained1;
}

bool ShardExecutor::pump(int i, std::vector<PendingEvent>& scratch) {
  Shard& self = *shards_[static_cast<std::size_t>(i)];
  EventQueue& queue = *self.queue;
  const std::int64_t lookahead = lookahead_.ns;
  const int n = nshards();

  // 1. Publish our own horizon. Every event still in the queue is at
  //    >= next_time(), and every future post happens while executing one
  //    of them, so this is a sound promise (in-flight arrivals are the
  //    receiver-side inbox_min's job).
  self.horizon.store(queue.next_time().ns, std::memory_order_release);

  // 2. Compute the execution bound from the other shards' promises.
  std::int64_t min_h = kInf;
  for (int j = 0; j < n; ++j) {
    if (j == i) continue;
    min_h = std::min(min_h,
                     effective_horizon(*shards_[static_cast<std::size_t>(j)]));
  }
  const std::int64_t bound =
      min_h == kInf ? kInf : saturating_add(min_h, lookahead);

  // 3. Drain the inbox — strictly after the horizon reads, so any post
  //    that raced past our read is either in the queue now or provably
  //    at >= bound.
  drain_inbox(i, scratch);

  // 4. Run the whole window. Neighbor arrivals during the batch are
  //    >= bound by the lookahead argument; echoes of our *own* posts can
  //    undercut it, so each post lowers self_cap and the loop re-checks.
  self.self_cap = kInf;
  if (queue.next_time().ns < bound) {
    while (queue.next_time().ns < std::min(bound, self.self_cap)) {
      queue.run_next();
    }
    return true;
  }

  // 5. Nothing executable. Either the whole simulation drained, or a
  //    neighbor's horizon has to advance first.
  if (queue.empty()) {
    self.horizon.store(kInf, std::memory_order_release);
    if (try_terminate()) {
      terminated_.store(true, std::memory_order_release);
      return true;
    }
  }
  ++profiles_[static_cast<std::size_t>(i)].stall_waits;
  return false;
}

void ShardExecutor::worker(int i) {
  ShardProfile& prof = profiles_[static_cast<std::size_t>(i)];
  std::vector<PendingEvent> scratch;
  while (!failed_.load(std::memory_order_relaxed) &&
         !terminated_.load(std::memory_order_acquire)) {
    if (pump(i, scratch)) continue;
    const auto stall_begin = std::chrono::steady_clock::now();
    // Yield instead of spinning: shard counts may exceed cores (and must
    // make progress even on a single-core host).
    std::this_thread::yield();
    prof.stall_ns += std::chrono::duration_cast<std::chrono::nanoseconds>(
                         std::chrono::steady_clock::now() - stall_begin)
                         .count();
  }
}

void ShardExecutor::participant_loop() {
  const int n = nshards();
  std::vector<PendingEvent> scratch;
  try {
    while (!failed_.load(std::memory_order_relaxed) &&
           !terminated_.load(std::memory_order_acquire)) {
      bool progress = false;
      for (int i = 0; i < n; ++i) {
        Shard& s = *shards_[static_cast<std::size_t>(i)];
        // try_lock, never lock: a participant that finds every shard taken
        // just sweeps again — no participant ever waits on another, so a
        // descheduled helper can't stall the coordinator.
        if (s.pump_mutex.try_lock()) {
          if (pump(i, scratch)) progress = true;
          s.pump_mutex.unlock();
        }
        if (terminated_.load(std::memory_order_acquire) ||
            failed_.load(std::memory_order_relaxed)) {
          return;
        }
      }
      if (!progress) std::this_thread::yield();
    }
  } catch (...) {
    {
      std::lock_guard<std::mutex> lock(error_mutex_);
      if (!error_) error_ = std::current_exception();
    }
    failed_.store(true, std::memory_order_relaxed);
  }
}

void ShardExecutor::record_events() {
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    profiles_[i].events = shards_[i]->queue->processed() -
                          shards_[i]->events_start;
  }
}

void ShardExecutor::run() {
  const int n = nshards();
  for (auto& s : shards_) s->events_start = s->queue->processed();
  if (n == 1) {
    shards_[0]->queue->run();
    record_events();
    return;
  }
  auto run_guarded = [this](int i) {
    try {
      worker(i);
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(error_mutex_);
        if (!error_) error_ = std::current_exception();
      }
      failed_.store(true, std::memory_order_relaxed);
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n - 1));
  for (int i = 1; i < n; ++i) {
    threads.emplace_back(run_guarded, i);
  }
  run_guarded(0);
  for (auto& t : threads) t.join();
  record_events();
  if (error_) std::rethrow_exception(error_);
}

void ShardExecutor::run_elastic(TaskEngine* engine) {
  const int n = nshards();
  for (auto& s : shards_) s->events_start = s->queue->processed();
  if (n == 1) {
    shards_[0]->queue->run();
    record_events();
    return;
  }

  // Helpers rendezvous through a shared control block rather than the
  // executor itself: a queued helper task may start long after this run
  // finished (or never), so it must be able to discover "run over" without
  // touching a dead ShardExecutor. The coordinator nulls `exec` at the end
  // and waits only for helpers that actually entered (`active`).
  struct HelperGate {
    std::mutex mu;
    std::condition_variable cv;
    ShardExecutor* exec{nullptr};
    int active{0};
  };
  auto gate = std::make_shared<HelperGate>();
  gate->exec = this;

  int nhelpers = n - 1;
  if (engine != nullptr) {
    const int peers = static_cast<int>(engine->size()) - 1;
    nhelpers = std::min(nhelpers, std::max(peers, 0));
    for (int h = 0; h < nhelpers; ++h) {
      engine->submit(
          [gate] {
            ShardExecutor* exec = nullptr;
            {
              std::lock_guard<std::mutex> lock(gate->mu);
              if (gate->exec != nullptr) {
                exec = gate->exec;
                ++gate->active;
              }
            }
            if (exec == nullptr) return;  // run already drained
            exec->participant_loop();
            {
              std::lock_guard<std::mutex> lock(gate->mu);
              --gate->active;
            }
            gate->cv.notify_all();
          },
          "shard-pump");
    }
  }

  participant_loop();

  {
    std::unique_lock<std::mutex> lock(gate->mu);
    gate->exec = nullptr;  // unstarted helpers become no-ops
    gate->cv.wait(lock, [&] { return gate->active == 0; });
  }
  record_events();
  if (error_) std::rethrow_exception(error_);
}

}  // namespace ibpower
