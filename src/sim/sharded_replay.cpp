#include "sim/sharded_replay.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <thread>

#include "util/expect.hpp"
#include "util/thread_pool.hpp"

namespace ibpower {

namespace {
constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max();

std::int64_t saturating_add(std::int64_t a, std::int64_t b) {
  return a > kInf - b ? kInf : a + b;
}
}  // namespace

int resolve_shard_count(int requested, int nleaves_used, bool has_lookahead) {
  if (!has_lookahead || nleaves_used <= 1) return 1;
  int shards = requested;
  if (shards <= 0) {
    // Auto: one shard per core — unless we are already a worker of the
    // grid-level ThreadPool, where nested fan-out would oversubscribe the
    // machine; cell-level parallelism wins there.
    shards = ThreadPool::in_worker()
                 ? 1
                 : static_cast<int>(ThreadPool::default_concurrency());
  }
  return std::clamp(shards, 1, nleaves_used);
}

ShardExecutor::ShardExecutor(std::vector<EventQueue*> queues, TimeNs lookahead)
    : profiles_(queues.size()), lookahead_(lookahead) {
  IBP_EXPECTS(!queues.empty());
  IBP_EXPECTS(queues.size() == 1 || lookahead > TimeNs::zero());
  shards_.reserve(queues.size());
  for (EventQueue* q : queues) {
    IBP_EXPECTS(q != nullptr);
    auto s = std::make_unique<Shard>();
    s->queue = q;
    s->inbox_min.store(kInf, std::memory_order_relaxed);
    s->self_cap = kInf;
    shards_.push_back(std::move(s));
  }
}

void ShardExecutor::post(int from, int to, TimeNs t, std::uint64_t tie,
                         Callback cb) {
  IBP_EXPECTS(to >= 0 && to < nshards());
  if (to == from) {
    shards_[static_cast<std::size_t>(to)]->queue->schedule_tie(t, tie,
                                                               std::move(cb));
    return;
  }
  Shard& target = *shards_[static_cast<std::size_t>(to)];
  {
    std::lock_guard<std::mutex> lock(target.inbox_mutex);
    target.inbox.push_back(PendingEvent{t.ns, tie, std::move(cb)});
    // Single writer at a time (the mutex); the release pairs with the
    // acquire in effective_horizon so a reader that misses the new horizon
    // still sees this in-flight event's time.
    const std::int64_t im =
        target.inbox_min.load(std::memory_order_relaxed);
    if (t.ns < im) {
      target.inbox_min.store(t.ns, std::memory_order_release);
    }
  }
  Shard& self = *shards_[static_cast<std::size_t>(from)];
  self.posted.fetch_add(1, std::memory_order_release);
  // Cap our own batch at the earliest time the receiver could react and
  // post back (owner-thread-only field; see the header's protocol note).
  const std::int64_t echo = saturating_add(t.ns, lookahead_.ns);
  if (echo < self.self_cap) self.self_cap = echo;
  ++profiles_[static_cast<std::size_t>(from)].boundary_posts;
}

void ShardExecutor::drain_inbox(int i, std::vector<PendingEvent>& scratch) {
  Shard& s = *shards_[static_cast<std::size_t>(i)];
  scratch.clear();
  {
    std::lock_guard<std::mutex> lock(s.inbox_mutex);
    if (s.inbox.empty()) return;
    scratch.swap(s.inbox);
    // Fold the arrivals into the queue and republish the horizon BEFORE
    // releasing inbox_min: between the two stores a reader sees either the
    // old inbox_min (covering the arrivals) or, via the release/acquire
    // pair on inbox_min, the already-lowered horizon — never a stale
    // horizon with an empty-looking inbox.
    for (PendingEvent& ev : scratch) {
      s.queue->schedule_tie(TimeNs{ev.t}, ev.tie, std::move(ev.cb));
    }
    s.horizon.store(s.queue->next_time().ns, std::memory_order_release);
    s.inbox_min.store(kInf, std::memory_order_release);
  }
  s.drained.fetch_add(scratch.size(), std::memory_order_release);
  scratch.clear();
}

bool ShardExecutor::try_terminate() {
  // Monotone-counter double-read: if the posted/drained totals are equal,
  // every effective horizon reads infinity in between, and the totals have
  // not moved, then no event exists anywhere and none was in flight during
  // the sweep — nothing can ever be created again.
  std::uint64_t posted1 = 0;
  std::uint64_t drained1 = 0;
  for (const auto& s : shards_) {
    posted1 += s->posted.load(std::memory_order_acquire);
    drained1 += s->drained.load(std::memory_order_acquire);
  }
  if (posted1 != drained1) return false;
  for (const auto& s : shards_) {
    if (effective_horizon(*s) != kInf) return false;
  }
  std::uint64_t posted2 = 0;
  std::uint64_t drained2 = 0;
  for (const auto& s : shards_) {
    posted2 += s->posted.load(std::memory_order_acquire);
    drained2 += s->drained.load(std::memory_order_acquire);
  }
  return posted2 == posted1 && drained2 == drained1;
}

void ShardExecutor::worker(int i) {
  Shard& self = *shards_[static_cast<std::size_t>(i)];
  EventQueue& queue = *self.queue;
  ShardProfile& prof = profiles_[static_cast<std::size_t>(i)];
  const std::uint64_t events_before = queue.processed();
  std::vector<PendingEvent> scratch;
  const std::int64_t lookahead = lookahead_.ns;
  const int n = nshards();

  while (!failed_.load(std::memory_order_relaxed)) {
    // 1. Publish our own horizon. Every event still in the queue is at
    //    >= next_time(), and every future post happens while executing one
    //    of them, so this is a sound promise (in-flight arrivals are the
    //    receiver-side inbox_min's job).
    self.horizon.store(queue.next_time().ns, std::memory_order_release);

    // 2. Compute the execution bound from the other shards' promises.
    std::int64_t min_h = kInf;
    for (int j = 0; j < n; ++j) {
      if (j == i) continue;
      min_h = std::min(min_h,
                       effective_horizon(*shards_[static_cast<std::size_t>(j)]));
    }
    const std::int64_t bound =
        min_h == kInf ? kInf : saturating_add(min_h, lookahead);

    // 3. Drain the inbox — strictly after the horizon reads, so any post
    //    that raced past our read is either in the queue now or provably
    //    at >= bound.
    drain_inbox(i, scratch);

    // 4. Run the whole window. Neighbor arrivals during the batch are
    //    >= bound by the lookahead argument; echoes of our *own* posts can
    //    undercut it, so each post lowers self_cap and the loop re-checks.
    self.self_cap = kInf;
    if (queue.next_time().ns < bound) {
      while (queue.next_time().ns < std::min(bound, self.self_cap)) {
        queue.run_next();
      }
      continue;
    }

    // 5. Nothing executable. Either the whole simulation drained, or a
    //    neighbor's horizon has to advance first.
    if (queue.empty()) {
      self.horizon.store(kInf, std::memory_order_release);
      if (try_terminate()) break;
    }
    ++prof.stall_waits;
    const auto stall_begin = std::chrono::steady_clock::now();
    // Yield instead of spinning: shard counts may exceed cores (and must
    // make progress even on a single-core host).
    std::this_thread::yield();
    prof.stall_ns += std::chrono::duration_cast<std::chrono::nanoseconds>(
                         std::chrono::steady_clock::now() - stall_begin)
                         .count();
  }
  prof.events = queue.processed() - events_before;
}

void ShardExecutor::run() {
  const int n = nshards();
  if (n == 1) {
    shards_[0]->queue->run();
    profiles_[0].events = shards_[0]->queue->processed();
    return;
  }
  auto run_guarded = [this](int i) {
    try {
      worker(i);
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(error_mutex_);
        if (!error_) error_ = std::current_exception();
      }
      failed_.store(true, std::memory_order_relaxed);
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n - 1));
  for (int i = 1; i < n; ++i) {
    threads.emplace_back(run_guarded, i);
  }
  run_guarded(0);
  for (auto& t : threads) t.join();
  if (error_) std::rethrow_exception(error_);
}

}  // namespace ibpower
