// ParallelExperimentRunner — barrier-free experiment scheduling on a
// work-stealing TaskEngine.
//
// Determinism contract (DESIGN.md §7/§14): parallelism exists only *across*
// independent EventQueues — the two legs of one experiment, the cells of a
// grid, the dry runs of a GT sweep. One replay never shares mutable state
// with another (each borrows the *executing* worker's private ReplayMemory;
// the Trace is shared read-only), and results are gathered in submission
// order, so every output is bit-identical to the serial run_experiment /
// sweep_gt paths at any worker count — including when a task was stolen.
//
// Task graph (DESIGN.md §14): run_all used to be two phases with a global
// join between them — generate every trace, wait for ALL of them, then run
// every replay leg. TaskEngine replaces the barrier with dependency edges:
// each distinct trace is one generation task, and a cell's baseline/managed
// legs depend only on *their* trace's task, so they start the instant it
// finishes while slower generations are still running. Trace sharing is
// keyed by trace_cache_key (the full trace-affecting config), charged to
// the first cell with each key.
//
// Memory layout: the runner owns one ReplayMemory per engine worker. A leg
// task asks the engine which worker it is on and borrows that worker's
// workspace — no locking, since two tasks with the same worker index never
// run concurrently; a *stolen* task simply borrows the thief's workspace.
//
// Elastic shards: a sharded replay leg (cfg.shards != 1) running on an
// engine worker shares this same engine for its shard pumps (ShardExecutor
// elastic mode), so --jobs and --shards draw from one pool instead of
// competing for cores.
#pragma once

#include <memory>
#include <vector>

#include "sim/experiment.hpp"
#include "sim/replay_memory.hpp"
#include "util/task_engine.hpp"
#include "util/thread_pool.hpp"

namespace ibpower {

class ParallelExperimentRunner {
 public:
  /// `jobs` is a performance knob, not a semantic one: results are
  /// bit-identical at any worker count, so by default the runner clamps the
  /// engine to the machine's usable cores (cgroup-quota-aware). Replays are
  /// CPU-bound — oversubscribed workers only multiply workspace footprint
  /// (cache/TLB pressure from extra per-worker arenas) and scheduler churn,
  /// which is how `--jobs 8` on a small host used to run *slower* than
  /// `--jobs 1`. Tests pass clamp_to_hardware=false to get genuinely
  /// multi-worker engines (and the steal path) on 1-core CI hosts.
  explicit ParallelExperimentRunner(
      unsigned jobs = ThreadPool::default_concurrency(),
      bool clamp_to_hardware = true);

  [[nodiscard]] unsigned jobs() const { return engine_.size(); }

  /// The underlying engine — the campaign session schedules directly on it
  /// and sharded replays lend themselves pump helpers through it.
  [[nodiscard]] TaskEngine& engine() { return engine_; }

  /// The calling task's worker workspace (null when called off-engine,
  /// which makes the legs fall back to a private workspace). Public for the
  /// campaign session, whose leg tasks run on this runner's engine.
  [[nodiscard]] ReplayMemory* worker_memory() const;

  /// run_experiment with the baseline and managed replays in parallel.
  /// Must not be called from inside the engine's own workers.
  [[nodiscard]] ExperimentResult run(const ExperimentConfig& cfg) {
    return run(cfg, LegProbes{});
  }

  /// As run(), additionally invoking the cell's probes with each finished
  /// engine (obs/ telemetry collection). Probes execute on engine workers;
  /// they must write only caller-owned, per-cell storage (DESIGN.md §7) so
  /// the gathered output is bit-identical at any thread count.
  [[nodiscard]] ExperimentResult run(const ExperimentConfig& cfg,
                                     const LegProbes& probes);

  /// Run many experiments concurrently; result i corresponds to cfgs[i].
  /// Every *distinct* trace (by trace_cache_key) is one generation task;
  /// each cell's two replay legs depend only on their own trace task — no
  /// phase barrier (see header note).
  [[nodiscard]] std::vector<ExperimentResult> run_all(
      const std::vector<ExperimentConfig>& cfgs) {
    return run_all(cfgs, {});
  }

  /// As run_all() with per-cell probes; `probes` must be empty or match
  /// cfgs.size(). Same task-local-buffer discipline as run() with probes.
  [[nodiscard]] std::vector<ExperimentResult> run_all(
      const std::vector<ExperimentConfig>& cfgs,
      const std::vector<LegProbes>& probes);

  /// sweep_gt with the per-GT dry runs fanned out (one baseline replay,
  /// then |values| independent prediction-only scoring tasks).
  [[nodiscard]] std::vector<GtSweepPoint> sweep_gt(
      const ExperimentConfig& cfg, const std::vector<TimeNs>& values);

  /// Record per-task scheduler timestamps for the next run_all()/run()
  /// (--sched-profile). last_sched_profile() returns them.
  void set_profiling(bool on) { engine_.set_profiling(on); }
  [[nodiscard]] SchedProfile last_sched_profile() const {
    return engine_.profile();
  }

  // --- cost accounting of the most recent run()/run_all()/sweep_gt() ---
  //
  // Reported per cell, in submission order, and *separately* per phase:
  // trace generation is bookkept apart from replay-leg work so the
  // efficiency numbers bench_throughput derives are not skewed by cells
  // that merely shared an already-generated trace (a shared trace is
  // charged to the cell that generated it; sharers report 0 gen ms).

  /// Replay work per cell: baseline + managed leg time (ms). Summed across
  /// cells this is the serial-equivalent replay work; divided by observed
  /// wall-clock it yields the effective speedup.
  [[nodiscard]] const std::vector<double>& last_cell_work_ms() const {
    return cell_work_ms_;
  }
  /// Trace-generation time per cell (ms; 0 for cells that shared a trace).
  [[nodiscard]] const std::vector<double>& last_cell_gen_ms() const {
    return cell_gen_ms_;
  }
  /// Baseline-leg time per cell (ms).
  [[nodiscard]] const std::vector<double>& last_cell_base_ms() const {
    return cell_base_ms_;
  }
  /// Managed-leg time per cell (ms).
  [[nodiscard]] const std::vector<double>& last_cell_managed_ms() const {
    return cell_managed_ms_;
  }
  [[nodiscard]] double last_total_work_ms() const;
  [[nodiscard]] double last_total_gen_ms() const;

 private:
  TaskEngine engine_;
  // One workspace per engine worker, indexed by TaskEngine worker index.
  // unique_ptr keeps addresses stable and the workspaces uncopied.
  std::vector<std::unique_ptr<ReplayMemory>> worker_memory_;
  std::vector<double> cell_work_ms_;
  std::vector<double> cell_gen_ms_;
  std::vector<double> cell_base_ms_;
  std::vector<double> cell_managed_ms_;
};

}  // namespace ibpower
