// ParallelExperimentRunner — fans independent replays out over a ThreadPool.
//
// Determinism contract (DESIGN.md §7): parallelism exists only *across*
// independent EventQueues — the two legs of one experiment, the cells of a
// grid, the dry runs of a GT sweep. One replay never shares mutable state
// with another (each constructs its own Fabric, agents and queue; the Trace
// is shared read-only), and results are gathered in submission order, so
// every output is bit-identical to the serial run_experiment / sweep_gt
// paths at any thread count.
#pragma once

#include <vector>

#include "sim/experiment.hpp"
#include "util/thread_pool.hpp"

namespace ibpower {

class ParallelExperimentRunner {
 public:
  explicit ParallelExperimentRunner(
      unsigned jobs = ThreadPool::default_concurrency())
      : pool_(jobs) {}

  [[nodiscard]] unsigned jobs() const { return pool_.size(); }

  /// run_experiment with the baseline and managed replays in parallel.
  /// Must not be called from inside the pool's own workers.
  [[nodiscard]] ExperimentResult run(const ExperimentConfig& cfg) {
    return run(cfg, LegProbes{});
  }

  /// As run(), additionally invoking the cell's probes with each finished
  /// engine (obs/ telemetry collection). Probes execute on pool workers;
  /// they must write only caller-owned, per-cell storage (DESIGN.md §7) so
  /// the gathered output is bit-identical at any thread count.
  [[nodiscard]] ExperimentResult run(const ExperimentConfig& cfg,
                                     const LegProbes& probes);

  /// Run many experiments concurrently; result i corresponds to cfgs[i].
  /// Phase 1 generates all traces in parallel, phase 2 runs each cell's two
  /// replay legs as independent tasks (2N tasks for N cells).
  [[nodiscard]] std::vector<ExperimentResult> run_all(
      const std::vector<ExperimentConfig>& cfgs) {
    return run_all(cfgs, {});
  }

  /// As run_all() with per-cell probes; `probes` must be empty or match
  /// cfgs.size(). Same task-local-buffer discipline as run() with probes.
  [[nodiscard]] std::vector<ExperimentResult> run_all(
      const std::vector<ExperimentConfig>& cfgs,
      const std::vector<LegProbes>& probes);

  /// sweep_gt with the per-GT dry runs fanned out (one baseline replay,
  /// then |values| independent prediction-only scoring tasks).
  [[nodiscard]] std::vector<GtSweepPoint> sweep_gt(
      const ExperimentConfig& cfg, const std::vector<TimeNs>& values);

  /// Per-cell task time (trace generation + both replay legs, ms) of the
  /// most recent run()/run_all(), in submission order. Summed across cells
  /// this is the serial-equivalent work; divided by observed wall-clock it
  /// yields the effective speedup.
  [[nodiscard]] const std::vector<double>& last_cell_work_ms() const {
    return cell_work_ms_;
  }
  [[nodiscard]] double last_total_work_ms() const;

 private:
  ThreadPool pool_;
  std::vector<double> cell_work_ms_;
};

}  // namespace ibpower
