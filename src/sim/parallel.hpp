// ParallelExperimentRunner — fans independent replays out over a ThreadPool.
//
// Determinism contract (DESIGN.md §7): parallelism exists only *across*
// independent EventQueues — the two legs of one experiment, the cells of a
// grid, the dry runs of a GT sweep. One replay never shares mutable state
// with another (each borrows its worker's private ReplayMemory; the Trace
// is shared read-only), and results are gathered in submission order, so
// every output is bit-identical to the serial run_experiment / sweep_gt
// paths at any thread count.
//
// Memory layout (DESIGN.md §7, "Memory architecture"): the runner owns one
// ReplayMemory per pool worker. A leg task asks the pool which worker it is
// on and borrows that worker's workspace — no locking, since tasks with the
// same worker index never run concurrently. Across cells a worker reuses
// its arena, event queue, fabric and agents (reset-and-reuse), so grid
// sweeps stop hammering the global allocator from every thread — the
// contention that previously made --jobs 2 *slower* than --jobs 1.
//
// Work layout: trace generation also runs on the pool, and cells whose
// (app, workload) coincide — a GT sweep grid — share one generated Trace
// read-only instead of regenerating it per cell.
#pragma once

#include <memory>
#include <vector>

#include "sim/experiment.hpp"
#include "sim/replay_memory.hpp"
#include "util/thread_pool.hpp"

namespace ibpower {

class ParallelExperimentRunner {
 public:
  /// `jobs` is a performance knob, not a semantic one: results are
  /// bit-identical at any worker count, so the runner clamps the pool to
  /// the hardware concurrency. Replays are CPU-bound — oversubscribed
  /// workers only multiply workspace footprint (cache/TLB pressure from
  /// extra per-worker arenas) and scheduler churn, which is how `--jobs 8`
  /// on a small host used to run *slower* than `--jobs 1`.
  explicit ParallelExperimentRunner(
      unsigned jobs = ThreadPool::default_concurrency());

  [[nodiscard]] unsigned jobs() const { return pool_.size(); }

  /// run_experiment with the baseline and managed replays in parallel.
  /// Must not be called from inside the pool's own workers.
  [[nodiscard]] ExperimentResult run(const ExperimentConfig& cfg) {
    return run(cfg, LegProbes{});
  }

  /// As run(), additionally invoking the cell's probes with each finished
  /// engine (obs/ telemetry collection). Probes execute on pool workers;
  /// they must write only caller-owned, per-cell storage (DESIGN.md §7) so
  /// the gathered output is bit-identical at any thread count.
  [[nodiscard]] ExperimentResult run(const ExperimentConfig& cfg,
                                     const LegProbes& probes);

  /// Run many experiments concurrently; result i corresponds to cfgs[i].
  /// Phase 1 generates every *distinct* (app, workload) trace once, in
  /// parallel; phase 2 runs each cell's two replay legs as independent
  /// tasks (2N tasks for N cells) against the shared read-only traces.
  [[nodiscard]] std::vector<ExperimentResult> run_all(
      const std::vector<ExperimentConfig>& cfgs) {
    return run_all(cfgs, {});
  }

  /// As run_all() with per-cell probes; `probes` must be empty or match
  /// cfgs.size(). Same task-local-buffer discipline as run() with probes.
  [[nodiscard]] std::vector<ExperimentResult> run_all(
      const std::vector<ExperimentConfig>& cfgs,
      const std::vector<LegProbes>& probes);

  /// sweep_gt with the per-GT dry runs fanned out (one baseline replay,
  /// then |values| independent prediction-only scoring tasks).
  [[nodiscard]] std::vector<GtSweepPoint> sweep_gt(
      const ExperimentConfig& cfg, const std::vector<TimeNs>& values);

  // --- cost accounting of the most recent run()/run_all()/sweep_gt() ---
  //
  // Reported per cell, in submission order, and *separately* per phase:
  // trace generation is bookkept apart from replay-leg work so the
  // efficiency numbers bench_throughput derives are not skewed by cells
  // that merely shared an already-generated trace (a shared trace is
  // charged to the cell that generated it; sharers report 0 gen ms).

  /// Replay work per cell: baseline + managed leg time (ms). Summed across
  /// cells this is the serial-equivalent replay work; divided by observed
  /// wall-clock it yields the effective speedup.
  [[nodiscard]] const std::vector<double>& last_cell_work_ms() const {
    return cell_work_ms_;
  }
  /// Trace-generation time per cell (ms; 0 for cells that shared a trace).
  [[nodiscard]] const std::vector<double>& last_cell_gen_ms() const {
    return cell_gen_ms_;
  }
  /// Baseline-leg time per cell (ms).
  [[nodiscard]] const std::vector<double>& last_cell_base_ms() const {
    return cell_base_ms_;
  }
  /// Managed-leg time per cell (ms).
  [[nodiscard]] const std::vector<double>& last_cell_managed_ms() const {
    return cell_managed_ms_;
  }
  [[nodiscard]] double last_total_work_ms() const;
  [[nodiscard]] double last_total_gen_ms() const;

 private:
  /// The calling task's worker workspace (null when called off-pool, which
  /// makes the legs fall back to a private workspace).
  [[nodiscard]] ReplayMemory* worker_memory() const;

  ThreadPool pool_;
  // One workspace per pool worker, indexed by ThreadPool worker index.
  // unique_ptr keeps addresses stable and the workspaces uncopied.
  std::vector<std::unique_ptr<ReplayMemory>> worker_memory_;
  std::vector<double> cell_work_ms_;
  std::vector<double> cell_gen_ms_;
  std::vector<double> cell_base_ms_;
  std::vector<double> cell_managed_ms_;
};

}  // namespace ibpower
