// CampaignSession — a long-running experiment service over the TaskEngine.
//
// The ROADMAP's north star is a campaign server: thousands of experiment
// requests streaming through one process, sharing read-only traces, with
// work-stealing across workers. This is its seed (DESIGN.md §14). A session
// wraps a ParallelExperimentRunner and accepts requests incrementally —
// unlike run_all there is no closed batch: each submit() immediately wires
// gen → {baseline, managed} → finalize tasks into the engine, trace
// generation is deduplicated through a *refcounted* cache (concurrent
// requests with the same trace_cache_key share one generation task and one
// in-memory Trace; the entry is evicted the moment its last in-flight
// request finalizes, so a long campaign's memory is bounded by what is
// in flight, not by its history), and finished rows stream back out in
// submission order through pop()/try_pop().
//
// Determinism: a row's simulation fields are produced by exactly the same
// leg code, per-worker ReplayMemory borrow and combine_legs as the serial
// path, so format_campaign_row output is byte-identical at any jobs/shards
// setting (pinned under TSan by test_campaign). Cache hit/miss *timing* is
// scheduling-dependent, so rows never include cache or wall-clock fields —
// those live in CampaignCacheStats and the CampaignRow timing members for
// profiling consumers (bench_throughput).
//
// The JSONL wire format (ibpower-campaign:v1):
//   request:  {"id":"r1","app":"gromacs","nranks":128,"predictor":"histogram"}
//   row:      {"v":"ibpower-campaign:v1","id":"r1","ok":true,...}
//   error:    {"v":"ibpower-campaign:v1","id":"r1","ok":false,"error":"..."}
// Unknown request keys are rejected (a typo'd knob must not silently run a
// default experiment); sim-time failures (unknown app, unsupported rank
// count) come back as in-order error rows rather than killing the stream.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "sim/parallel.hpp"

namespace ibpower {

/// One experiment request, parsed from a JSONL line.
struct CampaignRequest {
  std::string id;
  ExperimentConfig cfg;
};

/// One finished (or failed) experiment, in submission order.
struct CampaignRow {
  std::string id;
  bool ok{false};
  std::string error;          // when !ok
  ExperimentResult result{};  // when ok
  // Profiling extras — scheduling-dependent, deliberately NOT part of
  // format_campaign_row (rows must be byte-identical at any worker count).
  bool trace_shared{false};   // trace came from the refcounted cache
  double gen_ms{0.0};
  double base_ms{0.0};
  double managed_ms{0.0};
};

struct CampaignCacheStats {
  std::uint64_t requests{0};
  std::uint64_t trace_builds{0};   // generation tasks actually scheduled
  std::uint64_t trace_hits{0};     // requests that shared a live entry
  std::uint64_t evictions{0};      // entries freed when refs hit zero
  std::uint64_t max_live_traces{0};
};

class CampaignSession {
 public:
  /// The session schedules on `runner`'s engine and borrows its per-worker
  /// ReplayMemory. The runner must outlive the session and must not be used
  /// for run()/run_all() while the session has requests in flight (both
  /// reset the engine's task table between runs).
  explicit CampaignSession(ParallelExperimentRunner& runner);

  /// Blocks until every in-flight request has finalized (unpopped rows are
  /// discarded), so worker tasks never outlive the session.
  ~CampaignSession();

  CampaignSession(const CampaignSession&) = delete;
  CampaignSession& operator=(const CampaignSession&) = delete;

  /// Enqueue one experiment. Returns immediately; the row arrives through
  /// pop() in submission order.
  void submit(CampaignRequest req);

  /// Enqueue an already-failed row (e.g. a malformed request line), keeping
  /// the output stream aligned with the input stream.
  void submit_error(std::string id, std::string message);

  /// Next row in submission order, blocking until it finishes. False when
  /// every submitted row has already been popped.
  bool pop(CampaignRow* out);

  /// As pop(), but returns false instead of blocking when the next row in
  /// order is still running (lets a driver interleave reads with submits).
  bool try_pop(CampaignRow* out);

  [[nodiscard]] CampaignCacheStats cache_stats() const;

 private:
  struct TraceEntry {
    Trace trace;
    std::exception_ptr error;
    TaskId gen_task{0};
    int refs{0};
  };
  struct Slot {
    std::string id;
    std::string key;
    ExperimentConfig cfg;
    BaselineLegResult base{};
    ManagedLegResult managed{};
    std::exception_ptr base_err;
    std::exception_ptr managed_err;
    CampaignRow row;
    bool done{false};
  };

  void finalize(Slot* slot, TraceEntry* entry);

  ParallelExperimentRunner* runner_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::unique_ptr<Slot>> slots_;  // stable addresses, by sequence
  std::size_t next_pop_{0};
  std::size_t done_count_{0};
  std::unordered_map<std::string, std::unique_ptr<TraceEntry>> cache_;
  CampaignCacheStats stats_;
};

/// Parse one JSONL request line (flat object; see header note for the key
/// set). `lineno` seeds the default id ("req-<lineno>") when the line has
/// none. Returns false with a message on malformed input, unknown keys, or
/// unknown enum names.
[[nodiscard]] bool parse_campaign_request(const std::string& line, int lineno,
                                          CampaignRequest* out,
                                          std::string* error);

/// Deterministic one-line JSON for a finished row (doubles printed %.17g,
/// so equal bit patterns give equal bytes).
[[nodiscard]] std::string format_campaign_row(const CampaignRow& row);

}  // namespace ibpower
