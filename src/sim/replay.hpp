// ReplayEngine — the Venus-Dimemas style co-simulation (paper §IV-A).
//
// The engine replays a Trace: computation bursts advance a rank's clock by
// their recorded duration; communication is timed by the Fabric (network
// model). With power management enabled, every rank runs a PmpiAgent bound
// to its node uplink — exactly the paper's PMPI-layer deployment — whose
// modeled software overheads and lane wake penalties feed back into the
// simulated timeline, so the managed run's execution-time increase emerges
// from the same closed loop the paper measures.
//
// Protocol model: small sends are eager (sender frees after injection;
// message heads to the destination immediately), large sends rendezvous
// (sender blocks until the receive is posted). MPI_Sendrecv's send half is
// always eager, mirroring its deadlock-free semantics. Collectives
// synchronize all ranks and complete max-entry + analytic cost later.
//
// Memory story (DESIGN.md §7): all mutable replay state — rank states,
// channel rings, waiting-recv lists, request bookkeeping, collective entry
// arrays and call timelines — is carved from a MonotonicArena owned by a
// ReplayMemory workspace. The engine either borrows a caller-provided
// workspace (the parallel runner gives each worker its own, reused across
// cells) or owns a private one. At steady state a replay performs zero heap
// allocations on its hot path; the event queue, fabric and agents are
// likewise recycled through ReplayMemory's reset-and-reuse protocol.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "core/pmpi_agent.hpp"
#include "host/host_power.hpp"
#include "network/fabric.hpp"
#include "sim/collectives.hpp"
#include "sim/des.hpp"
#include "sim/replay_memory.hpp"
#include "sim/sharded_replay.hpp"
#include "trace/trace.hpp"
#include "util/arena.hpp"
#include "util/hash_table.hpp"

namespace ibpower {

struct ReplayOptions {
  FabricConfig fabric{};
  /// Enable the paper's mechanism (PmpiAgent per rank). When false the run
  /// is the power-unaware baseline: no interception overheads, no gating.
  bool enable_power_management{false};
  PpaConfig ppa{};
  /// Sends larger than this use the rendezvous protocol.
  Bytes eager_threshold{32 * 1024};
  /// Record per-rank MPI call events (needed for Paraver output and
  /// call-level analyses; costs memory on large traces).
  bool record_call_timeline{false};
  /// Intra-replay shard count for the conservative parallel DES. 1 = serial;
  /// <= 0 = auto (hardware concurrency, serial inside ThreadPool workers).
  /// Clamped to the number of shard domains in use (leaf switches on
  /// 2-level trees, whole groups on 3-level trees); forced serial when the
  /// topology has no lookahead (zero hop latency). Results are bit-identical
  /// for every shard count — the event order is keyed by simulation state,
  /// never by thread interleaving.
  int shards{1};
  /// Host-side power co-management (DESIGN.md §15). Disabled by default:
  /// the replay then schedules no host events, perturbs no timelines and
  /// allocates no host state, keeping every output byte-identical to
  /// pre-host builds.
  HostPowerConfig host{};
};

/// Always-compiled channel/rendezvous bookkeeping counters. These used to be
/// observable only indirectly through the audit-build drain checks; they are
/// now first-class telemetry so release builds can report them too (obs/).
/// Conservation contract at drain (a finished, non-deadlocked replay):
///   messages_enqueued  == messages_matched
///   recvs_waited       == recvs_satisfied
///   rendezvous_blocked == rendezvous_resumed
struct ReplayDrainStats {
  std::uint64_t channels_created{0};
  std::uint64_t sends_eager{0};        // eager-protocol sends (incl. isend)
  std::uint64_t sends_rendezvous{0};   // rendezvous-protocol sends (incl. isend)
  std::uint64_t messages_enqueued{0};  // parked in a channel queue
  std::uint64_t messages_matched{0};   // consumed from a channel queue
  std::uint64_t recvs_waited{0};       // receives parked on a channel
  std::uint64_t recvs_satisfied{0};    // parked receives completed
  std::uint64_t rendezvous_blocked{0};  // blocking senders parked
  std::uint64_t rendezvous_resumed{0};  // parked senders resumed

  /// Fold another stats block in (per-shard counters merged after a run).
  void accumulate(const ReplayDrainStats& o) {
    channels_created += o.channels_created;
    sends_eager += o.sends_eager;
    sends_rendezvous += o.sends_rendezvous;
    messages_enqueued += o.messages_enqueued;
    messages_matched += o.messages_matched;
    recvs_waited += o.recvs_waited;
    recvs_satisfied += o.recvs_satisfied;
    rendezvous_blocked += o.rendezvous_blocked;
    rendezvous_resumed += o.rendezvous_resumed;
  }

  friend bool operator==(const ReplayDrainStats&,
                         const ReplayDrainStats&) = default;
};

struct ReplayResult {
  TimeNs exec_time{};
  std::vector<TimeNs> rank_finish;
  AgentStats agent_total{};       // zeros for baseline runs
  std::uint64_t events_processed{0};
  std::uint64_t messages_sent{0};
  ReplayDrainStats drain{};
  /// Shard count the replay actually ran with (after auto/clamping) and the
  /// per-shard execution profile (events, boundary posts, horizon stalls).
  int shards_used{1};
  std::vector<ShardProfile> shard_profiles;
};

class ReplayEngine {
 public:
  /// `memory` is an optional reusable workspace (per-worker in the parallel
  /// runner). When null the engine owns a private one. Constructing an
  /// engine borrows the workspace exclusively and invalidates anything a
  /// previous borrower handed out (call-timeline spans in particular).
  explicit ReplayEngine(const Trace* trace, const ReplayOptions& options,
                        ReplayMemory* memory = nullptr);

  /// Runs the replay to completion. Throws std::runtime_error on deadlock
  /// (malformed trace). Must be called exactly once.
  ReplayResult run();

  [[nodiscard]] Fabric& fabric() { return *fabric_; }
  [[nodiscard]] const Fabric& fabric() const { return *fabric_; }
  [[nodiscard]] const PmpiAgent* agent(Rank r) const {
    const auto idx = static_cast<std::size_t>(r);
    return idx < agents_count_ ? agents_[idx] : nullptr;
  }
  /// Rank r's host power model; null unless options().host.enabled().
  [[nodiscard]] const HostPowerModel* host(Rank r) const {
    return hosts_ == nullptr ? nullptr
                             : hosts_[static_cast<std::size_t>(r)];
  }
  [[nodiscard]] int nranks() const { return trace_->nranks(); }
  /// View of rank r's recorded call events. Arena-backed: valid until the
  /// engine's ReplayMemory is borrowed by the next engine (copy out to keep).
  [[nodiscard]] std::span<const MpiCallEvent> call_timeline(Rank r) const {
    const auto& tl = call_timelines_[static_cast<std::size_t>(r)];
    return {tl.data(), tl.size()};
  }
  [[nodiscard]] const ReplayOptions& options() const { return opt_; }
  [[nodiscard]] const ReplayDrainStats& drain_stats() const { return drain_; }

  /// Post-run invariant audit (check/ subsystem): message conservation
  /// (every send consumed by exactly one recv — all channel queues and
  /// waiting lists drained), request discipline (no pending or unretired
  /// completed requests, nobody blocked in Wait), every rank done, and —
  /// when the call timeline was recorded — per-rank call monotonicity with
  /// non-negative idle intervals. Returns an empty string when all
  /// invariants hold, else a description of the first violation. Audit
  /// builds (-DIBPOWER_AUDIT=ON) run this automatically at the end of
  /// run(); tools/fuzz_replay runs it in every build.
  [[nodiscard]] std::string audit_drain() const;

 private:
  using ChannelMsg = ReplayChannelMsg;
  using WaitingRecv = ReplayWaitingRecv;
  using Channel = ReplayChannel;

  // One collective's rendezvous board. Unlike the rest of the replay state
  // it is written from every shard (each rank enters from its own shard), so
  // the shared counters are atomics: `count` is an acq_rel entry turnstile
  // whose release chain publishes every entrant's writes to whichever shard
  // hosts the last entrant, and `max_enter` is a relaxed CAS-max (the
  // turnstile orders it). The completion time derives only from the max —
  // commutative, so it is identical for every entry interleaving. The
  // per-rank arrays are written and read only by that rank's shard.
  struct alignas(64) CollectiveBoard {
    std::atomic<int> count{0};
    std::atomic<std::int64_t> max_enter{0};  // ns; entry times are >= 0
    TimeNs* entered{nullptr};  // arena array [nranks]: effective entry
    TimeNs* enter{nullptr};    // arena array [nranks]: call-enter time
  };
  // Sorted-array request bookkeeping, carved from the arena. A rank has at
  // most a handful of outstanding nonblocking requests, so contiguous
  // storage with binary search beats node-based std::map/std::set: no
  // allocation per insert/erase once the small arrays have grown, and
  // iteration order stays ascending-by-id (identical to the std::map
  // semantics it replaces, so results are bit-identical).
  struct ReqEntry {
    RequestId id{0};
    TimeNs when{};
  };
  class RequestMap {
   public:
    void attach(MonotonicArena* arena) { entries_.attach(arena); }
    void insert_or_assign(RequestId id, TimeNs when) {
      const std::size_t pos = lower_bound(id);
      if (pos < entries_.size() && entries_[pos].id == id) {
        entries_[pos].when = when;
      } else {
        entries_.insert_at(pos, {id, when});
      }
    }
    [[nodiscard]] const TimeNs* find(RequestId id) const {
      const std::size_t pos = lower_bound(id);
      return pos < entries_.size() && entries_[pos].id == id
                 ? &entries_[pos].when
                 : nullptr;
    }
    bool erase(RequestId id) {
      const std::size_t pos = lower_bound(id);
      if (pos >= entries_.size() || entries_[pos].id != id) return false;
      entries_.erase_at(pos);
      return true;
    }
    void clear() { entries_.clear(); }
    [[nodiscard]] bool empty() const { return entries_.empty(); }
    /// Visit entries in ascending id order.
    template <class Fn>
    void for_each(Fn&& fn) const {
      for (const auto& e : entries_) fn(e.id, e.when);
    }

   private:
    [[nodiscard]] std::size_t lower_bound(RequestId id) const {
      return static_cast<std::size_t>(
          std::lower_bound(
              entries_.begin(), entries_.end(), id,
              [](const ReqEntry& e, RequestId v) { return e.id < v; }) -
          entries_.begin());
    }
    ArenaVector<ReqEntry> entries_;
  };

  class RequestSet {
   public:
    void attach(MonotonicArena* arena) { ids_.attach(arena); }
    void insert(RequestId id) {
      const auto it = std::lower_bound(ids_.begin(), ids_.end(), id);
      if (it == ids_.end() || *it != id) {
        ids_.insert_at(static_cast<std::size_t>(it - ids_.begin()), id);
      }
    }
    bool erase(RequestId id) {
      const auto it = std::lower_bound(ids_.begin(), ids_.end(), id);
      if (it == ids_.end() || *it != id) return false;
      ids_.erase_at(static_cast<std::size_t>(it - ids_.begin()));
      return true;
    }
    [[nodiscard]] bool contains(RequestId id) const {
      return std::binary_search(ids_.begin(), ids_.end(), id);
    }
    [[nodiscard]] bool empty() const { return ids_.empty(); }

   private:
    ArenaVector<RequestId> ids_;
  };

  struct RankState {
    std::size_t pc{0};
    TimeNs now{};
    int coll_index{0};
    bool done{false};
    // Deterministic tie-break counters (see the tie-key scheme below). Both
    // are bumped only by events executing in this rank's shard, in the
    // shard's deterministic pop order, so the keys they produce are
    // invariant under the shard count.
    std::uint64_t chain_seq{0};  // class-0 advance/finish chain events
    std::uint64_t msg_seq{0};    // class-1 message events originated here
    // Nonblocking-request bookkeeping.
    RequestMap completed_requests;  // not yet retired
    RequestSet pending_requests;    // completion unknown
    bool blocked_in_wait{false};
    bool wait_is_waitall{false};
    RequestId wait_request{0};
    TimeNs wait_enter{};
    TimeNs wait_t{};  // post-overhead time inside the Wait
  };

  // --- shard-count-invariant event keys ------------------------------------
  //
  // Every event is scheduled with an explicit (time, tie) key derived from
  // simulation state, never from an insertion counter, so the per-shard pop
  // order — and therefore the whole replay — is bit-identical for any shard
  // count (DESIGN.md §11). Three key classes share the 64-bit tie space:
  //   class 0 (rank chain):  (0 << 62) | rank << 40 | chain_seq++
  //   class 1 (messages):    (1 << 62) | origin_rank << 40 | msg_seq++
  //   class 2 (collectives): (2 << 62) | board_index << 40 | rank
  static constexpr std::uint64_t kTieRankChain = 0;
  static constexpr std::uint64_t kTieMessage = std::uint64_t{1} << 62;
  static constexpr std::uint64_t kTieCollective = std::uint64_t{2} << 62;

  [[nodiscard]] std::uint64_t rank_tie(Rank r) {
    auto& st = ranks_[static_cast<std::size_t>(r)];
    return kTieRankChain |
           (static_cast<std::uint64_t>(static_cast<std::uint32_t>(r)) << 40) |
           st.chain_seq++;
  }
  [[nodiscard]] std::uint64_t msg_tie(Rank origin) {
    auto& st = ranks_[static_cast<std::size_t>(origin)];
    return kTieMessage |
           (static_cast<std::uint64_t>(static_cast<std::uint32_t>(origin))
            << 40) |
           st.msg_seq++;
  }

  // Cross-shard in-flight rendezvous transfer: built at the match site (the
  // destination shard), read by the CTS handler (source shard) which fills
  // in the handoff fields, then consumed by the DestHalf2 handler back in
  // the destination shard. Exclusively owned by the in-flight message at
  // every point, so no synchronization beyond the event posts themselves.
  struct XferMsg {
    Rank src{-1};
    Bytes bytes{0};
    bool src_nonblocking{false};
    RequestId src_request{0};
    TimeNs send_enter{};
    WaitingRecv w{};
    TimeNs at{};       // CTS arrival time == transfer ready time
    SwitchId top{0};   // filled by the CTS handler
    TimeNs handoff{};  // filled by the CTS handler
  };
  // Cross-shard RTS (rendezvous announce) payload; too large for an inline
  // event capture, so it rides in the source shard's arena.
  struct RtsMsg {
    Rank src{-1};
    Rank dst{-1};
    std::int32_t tag{0};
    std::uint32_t seq{0};
    TimeNs at{};  // RTS arrival time (the match "now" at the destination)
    ChannelMsg msg{};
  };
  // Contention-mode in-flight message (FabricConfig::contention): one arena
  // record per cross-leaf message, advanced hop by hop by hop_event() so
  // each hop's reservation happens at its leading-segment *arrival* time —
  // arrival-order FIFO behind competing flows on every link. Hop 0 (the
  // source uplink) is reserved inline at the send/CTS site so sender_free
  // stays synchronous; `hop` is the next hop to reserve and `head` its
  // leading-segment arrival. The climbing half (hop < hops/2) runs in the
  // source rank's shard, the descending half in the destination's; the
  // crossing post carries a gap >= hop_latency — the contention-mode
  // conservative lookahead.
  struct HopMsg {
    Rank src{-1};
    Rank dst{-1};
    Bytes bytes{0};
    SwitchId top{0};
    std::int32_t hop{1};
    std::int32_t tag{0};
    std::uint32_t seq{0};
    bool eager{true};
    TimeNs head{};
    WaitingRecv w{};  // rendezvous completion context (eager: unused)
  };

  // Per-shard mutable counters, merged into the engine totals after the run
  // (cache-line padded: shards bump them concurrently).
  struct alignas(64) ShardLocal {
    ReplayDrainStats drain{};
    std::uint64_t messages{0};
    int done{0};
  };

  // Per-shard power-cap allocation cache (cache-line padded: each shard
  // writes only its own entry). The epoch-k allocation is a pure function
  // of the cap board, so every shard computes the identical assignment
  // exactly once per epoch and its ranks read their slots from it.
  struct alignas(64) CapShardState {
    std::int64_t epoch{-1};
    std::uint8_t* assign{nullptr};   // arena array [nranks]
    std::uint32_t* order{nullptr};   // arena scratch [nranks]
  };

  [[nodiscard]] static std::uint64_t channel_key(Rank src, Rank dst,
                                                 std::int32_t tag) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 44) |
           (static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst)) << 24) |
           static_cast<std::uint64_t>(static_cast<std::uint32_t>(tag) &
                                      0xffffffu);
  }

  Channel& channel(Rank src, Rank dst, std::int32_t tag);

  [[nodiscard]] bool cross_leaf(Rank a, Rank b) const;
  [[nodiscard]] ShardLocal& local_of(Rank r) {
    return locals_[static_cast<std::size_t>(
        rank_shard_[static_cast<std::size_t>(r)])];
  }
  [[nodiscard]] ReplayShardSlab& slab_of(Rank r) {
    return *slab_ptrs_[static_cast<std::size_t>(
        rank_shard_[static_cast<std::size_t>(r)])];
  }

  /// Schedule a class-0 (rank chain) event. Always lands in rank r's own
  /// shard — chain events are only created while executing that shard.
  void sched_rank(Rank r, TimeNs t, EventQueue::Callback cb);
  /// Schedule a class-1 message event into the shard owning `owner`'s rank,
  /// posted from `poster`'s shard (cross-shard when they differ).
  void post_msg(Rank poster, Rank owner, TimeNs t, EventQueue::Callback cb);

  /// Cross-leaf eager send: reserves the source half now, posts the
  /// destination half as an event at the trunk handoff. Returns when the
  /// sender's uplink frees.
  TimeNs send_cross_eager(Rank src, Rank dst, std::int32_t tag, Bytes bytes,
                          TimeNs t);
  /// Contention-mode initiation shared by the eager and CTS paths: picks
  /// the route, reserves hop 0 inline at `t`, and posts the hop-1 event at
  /// its leading-segment arrival. Returns the hop-0 reservation end (the
  /// sender-free time).
  TimeNs launch_contended(Rank src, Rank dst, Bytes bytes, TimeNs t,
                          std::int32_t tag, std::uint32_t seq, bool eager,
                          const WaitingRecv& w);
  /// Reserve HopMsg's next hop and either chain the following hop event or
  /// complete the message (eager arrival / rendezvous completion).
  void hop_event(HopMsg* m);
  /// Cross-leaf rendezvous send: posts an RTS to the destination shard.
  void send_cross_rendezvous(Rank src, Rank dst, std::int32_t tag, Bytes bytes,
                             TimeNs t, TimeNs enter, bool nonblocking,
                             RequestId request);
  /// Destination-shard arrival with MPI non-overtaking enforcement: admits
  /// in sender-assigned sequence order, parking early arrivals.
  void channel_arrive(Rank src, Rank dst, std::int32_t tag, std::uint32_t seq,
                      const ChannelMsg& m, TimeNs now);
  void admit_arrival(Channel& ch, Rank src, Rank dst, const ChannelMsg& m,
                     TimeNs now);
  /// Matched a cross-leaf rendezvous message with a receive: post the CTS
  /// back to the source shard (transfer starts there on arrival).
  void post_cts(const ChannelMsg& m, const WaitingRecv& w, TimeNs t_match);
  void handle_cts(XferMsg* x);
  void handle_dest_half2(XferMsg* x);
  /// Same-leaf rendezvous service (fully inline, both ends in this shard):
  /// performs the transfer, resumes the sender, returns the delivery time.
  TimeNs serve_rendezvous_inline(const ChannelMsg& m, Rank dst, TimeNs t);

  void post_collective_finish(Rank poster, Rank q, std::size_t board,
                              TimeNs completion);
  void finish_collective(std::size_t board, Rank q, TimeNs completion);

  /// Execute the record at ranks_[r].pc; either finishes it (scheduling the
  /// next advance) or leaves the rank blocked.
  void advance(Rank r);

  void do_compute(Rank r, const ComputeRecord& rec);
  void do_send(Rank r, const SendRecord& rec, TimeNs enter, TimeNs t);
  void do_recv(Rank r, const RecvRecord& rec, TimeNs enter, TimeNs t);
  void do_sendrecv(Rank r, const SendrecvRecord& rec, TimeNs enter, TimeNs t);
  void do_collective(Rank r, const CollectiveRecord& rec, TimeNs enter,
                     TimeNs t);
  void do_isend(Rank r, const IsendRecord& rec, TimeNs enter, TimeNs t);
  void do_irecv(Rank r, const IrecvRecord& rec, TimeNs enter, TimeNs t);
  void do_wait(Rank r, const WaitRecord& rec, TimeNs enter, TimeNs t);
  void do_waitall(Rank r, TimeNs enter, TimeNs t);

  /// Record that request `req` of rank `r` completes at `when`; resumes the
  /// rank if it is blocked waiting on it.
  void complete_request(Rank r, RequestId req, TimeNs when);
  /// Try to finish a blocked Wait/Waitall; returns true if resumed.
  void try_resume_wait(Rank r);
  /// Pop the next waiting receive of a channel and satisfy it with an
  /// arrival at `delivery` (blocking recvs resume; irecvs complete their
  /// request).
  void satisfy_waiting(Channel& ch, TimeNs delivery);

  /// Deliver an eager message (wakes a waiting receiver or enqueues).
  void deliver_eager(Rank src, Rank dst, std::int32_t tag, TimeNs delivery);

  /// Complete an MPI call on rank r at `exit` and schedule the next record.
  void finish_call(Rank r, MpiCall call, TimeNs enter, TimeNs exit);

  /// Resume a receiver blocked in WaitingRecv at `exit`.
  void resume_blocked_recv(const WaitingRecv& w, TimeNs exit);

  /// Cold path: build the deadlock diagnostic and throw. Kept out of run()
  /// so no diagnostic state is assembled unless the replay actually failed.
  [[noreturn]] void throw_deadlock() const;

  /// Power-cap epoch event for rank r at t = k * cap_epoch_: publish the
  /// rank's demand (mean draw over the last epoch) to its CapRankSlot — or
  /// retire the slot if the rank is done — then self-reschedule. Class-0
  /// (rank chain) events: timeline-neutral, deterministic under sharding.
  void cap_epoch_event(Rank r, std::int64_t k);
  /// Apply event at t = k * cap_epoch_ + cap_epoch_ / 2: read the full slot
  /// board (safe: every shard's epoch-k writes are at least two lookaheads
  /// in its past), compute the epoch-k allocation once per shard, and move
  /// rank r to its assigned P-state.
  void cap_apply_event(Rank r, std::int64_t k);

  const Trace* trace_;
  ReplayOptions opt_;
  std::unique_ptr<ReplayMemory> owned_memory_;  // only when none was passed
  ReplayMemory* mem_;
  Fabric* fabric_;           // owned by *mem_
  CollectiveCostModel coll_model_;
  EventQueue* queue_;        // shard 0's queue, owned by *mem_
  MonotonicArena* arena_;    // shard 0's arena, owned by *mem_
  RankState* ranks_;         // arena array [nranks]
  PmpiAgent** agents_;       // arena array [agents_count_], owned by *mem_
  std::size_t agents_count_{0};
  // --- host-side power co-management (null/false unless opt_.host.enabled())
  HostPowerModel** hosts_{nullptr};   // arena array [nranks], owned by *mem_
  HostLinkPort* host_ports_{nullptr};  // arena array [nranks] (Countdown only)
  bool host_on_{false};  // opt_.host.enabled(): hosts exist, hooks active
  bool cap_on_{false};   // opt_.host.power_cap_watts > 0: epoch events run
  TimeNs cap_epoch_{};
  CapRankSlot* cap_slots_{nullptr};    // arena array [nranks]
  CapShardState* cap_shards_{nullptr};  // arena array [nshards_]
  ArenaVector<MpiCallEvent>* call_timelines_;  // arena array [nranks]
  // --- sharding ---
  int nshards_{1};
  TimeNs ctrl_delay_{};  // RTS/CTS latency (2 * hop_latency)
  /// Conservative cross-shard lookahead: ctrl_delay_ in legacy mode (every
  /// cross-shard post is a handoff/RTS/CTS >= 2 hops out), hop_latency in
  /// contention mode (per-hop handoffs are only one switch out).
  TimeNs lookahead_{};
  bool contention_{false};
  std::int32_t* rank_shard_;   // arena array [nranks]
  EventQueue** shard_queues_;  // arena array [nshards_]
  ReplayShardSlab** slab_ptrs_;  // arena array [nshards_]
  ShardLocal* locals_;         // arena array [nshards_], 64-byte aligned
  ShardExecutor* exec_{nullptr};  // live only inside run() when nshards_ > 1
  CollectiveBoard* boards_;    // arena array [nboards_], pre-counted
  std::size_t nboards_{0};
  // Post-run merged totals (per-shard ShardLocals folded in by run()).
  int done_count_{0};
  std::uint64_t messages_{0};
  ReplayDrainStats drain_;
  bool ran_{false};
};

}  // namespace ibpower
