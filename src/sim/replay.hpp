// ReplayEngine — the Venus-Dimemas style co-simulation (paper §IV-A).
//
// The engine replays a Trace: computation bursts advance a rank's clock by
// their recorded duration; communication is timed by the Fabric (network
// model). With power management enabled, every rank runs a PmpiAgent bound
// to its node uplink — exactly the paper's PMPI-layer deployment — whose
// modeled software overheads and lane wake penalties feed back into the
// simulated timeline, so the managed run's execution-time increase emerges
// from the same closed loop the paper measures.
//
// Protocol model: small sends are eager (sender frees after injection;
// message heads to the destination immediately), large sends rendezvous
// (sender blocks until the receive is posted). MPI_Sendrecv's send half is
// always eager, mirroring its deadlock-free semantics. Collectives
// synchronize all ranks and complete max-entry + analytic cost later.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "core/pmpi_agent.hpp"
#include "network/fabric.hpp"
#include "sim/collectives.hpp"
#include "sim/des.hpp"
#include "trace/trace.hpp"
#include "util/hash_table.hpp"

namespace ibpower {

struct ReplayOptions {
  FabricConfig fabric{};
  /// Enable the paper's mechanism (PmpiAgent per rank). When false the run
  /// is the power-unaware baseline: no interception overheads, no gating.
  bool enable_power_management{false};
  PpaConfig ppa{};
  /// Sends larger than this use the rendezvous protocol.
  Bytes eager_threshold{32 * 1024};
  /// Record per-rank MPI call events (needed for Paraver output and
  /// call-level analyses; costs memory on large traces).
  bool record_call_timeline{false};
};

/// Always-compiled channel/rendezvous bookkeeping counters. These used to be
/// observable only indirectly through the audit-build drain checks; they are
/// now first-class telemetry so release builds can report them too (obs/).
/// Conservation contract at drain (a finished, non-deadlocked replay):
///   messages_enqueued  == messages_matched
///   recvs_waited       == recvs_satisfied
///   rendezvous_blocked == rendezvous_resumed
struct ReplayDrainStats {
  std::uint64_t channels_created{0};
  std::uint64_t sends_eager{0};        // eager-protocol sends (incl. isend)
  std::uint64_t sends_rendezvous{0};   // rendezvous-protocol sends (incl. isend)
  std::uint64_t messages_enqueued{0};  // parked in a channel queue
  std::uint64_t messages_matched{0};   // consumed from a channel queue
  std::uint64_t recvs_waited{0};       // receives parked on a channel
  std::uint64_t recvs_satisfied{0};    // parked receives completed
  std::uint64_t rendezvous_blocked{0};  // blocking senders parked
  std::uint64_t rendezvous_resumed{0};  // parked senders resumed

  friend bool operator==(const ReplayDrainStats&,
                         const ReplayDrainStats&) = default;
};

struct ReplayResult {
  TimeNs exec_time{};
  std::vector<TimeNs> rank_finish;
  AgentStats agent_total{};       // zeros for baseline runs
  std::uint64_t events_processed{0};
  std::uint64_t messages_sent{0};
  ReplayDrainStats drain{};
};

class ReplayEngine {
 public:
  ReplayEngine(const Trace* trace, const ReplayOptions& options);

  /// Runs the replay to completion. Throws std::runtime_error on deadlock
  /// (malformed trace). Must be called exactly once.
  ReplayResult run();

  [[nodiscard]] Fabric& fabric() { return *fabric_; }
  [[nodiscard]] const Fabric& fabric() const { return *fabric_; }
  [[nodiscard]] const PmpiAgent* agent(Rank r) const {
    const auto idx = static_cast<std::size_t>(r);
    return idx < agents_.size() ? agents_[idx].get() : nullptr;
  }
  [[nodiscard]] const std::vector<MpiCallEvent>& call_timeline(Rank r) const {
    return call_timelines_[static_cast<std::size_t>(r)];
  }
  [[nodiscard]] const ReplayOptions& options() const { return opt_; }
  [[nodiscard]] const ReplayDrainStats& drain_stats() const { return drain_; }

  /// Post-run invariant audit (check/ subsystem): message conservation
  /// (every send consumed by exactly one recv — all channel queues and
  /// waiting lists drained), request discipline (no pending or unretired
  /// completed requests, nobody blocked in Wait), every rank done, and —
  /// when the call timeline was recorded — per-rank call monotonicity with
  /// non-negative idle intervals. Returns an empty string when all
  /// invariants hold, else a description of the first violation. Audit
  /// builds (-DIBPOWER_AUDIT=ON) run this automatically at the end of
  /// run(); tools/fuzz_replay runs it in every build.
  [[nodiscard]] std::string audit_drain() const;

 private:
  // --- channel bookkeeping ---
  struct ChannelMsg {
    bool rendezvous{false};
    TimeNs ready_or_delivery{};  // eager: delivery; rendezvous: sender ready
    Bytes bytes{0};
    // Rendezvous-from-Isend: the sender is not blocked; its request
    // completes when the transfer is injected.
    bool src_nonblocking{false};
    Rank src{-1};
    RequestId src_request{0};
  };
  struct WaitingRecv {
    Rank dst{-1};
    MpiCall call{MpiCall::None};
    TimeNs posted{};
    TimeNs enter{};
    TimeNs min_exit{};
    // Irecv: the rank is not blocked; the request completes on delivery.
    bool nonblocking{false};
    RequestId request{0};
  };
  struct Channel {
    std::deque<ChannelMsg> queue;
    std::deque<WaitingRecv> waiting;
  };
  struct BlockedRank {
    Rank rank{-1};
    TimeNs enter{};
  };
  struct CollectiveState {
    int count{0};
    TimeNs max_enter{};
    std::vector<TimeNs> entered;
    std::vector<BlockedRank> blocked;
  };
  // Sorted-vector request bookkeeping. A rank has at most a handful of
  // outstanding nonblocking requests, so contiguous storage with binary
  // search beats node-based std::map/std::set: no allocation per
  // insert/erase once the small vectors have grown, and iteration order
  // stays ascending-by-id (identical to the std::map semantics it
  // replaces, so results are bit-identical).
  class RequestMap {
   public:
    void insert_or_assign(RequestId id, TimeNs when) {
      const auto it = lower_bound(id);
      if (it != entries_.end() && it->first == id) {
        it->second = when;
      } else {
        entries_.insert(it, {id, when});
      }
    }
    [[nodiscard]] const TimeNs* find(RequestId id) const {
      const auto it = lower_bound(id);
      return it != entries_.end() && it->first == id ? &it->second : nullptr;
    }
    bool erase(RequestId id) {
      const auto it = lower_bound(id);
      if (it == entries_.end() || it->first != id) return false;
      entries_.erase(it);
      return true;
    }
    void clear() { entries_.clear(); }
    [[nodiscard]] bool empty() const { return entries_.empty(); }
    /// Visit entries in ascending id order.
    template <class Fn>
    void for_each(Fn&& fn) const {
      for (const auto& [id, when] : entries_) fn(id, when);
    }

   private:
    using Entries = std::vector<std::pair<RequestId, TimeNs>>;
    [[nodiscard]] Entries::iterator lower_bound(RequestId id) {
      return std::lower_bound(
          entries_.begin(), entries_.end(), id,
          [](const auto& e, RequestId v) { return e.first < v; });
    }
    [[nodiscard]] Entries::const_iterator lower_bound(RequestId id) const {
      return std::lower_bound(
          entries_.begin(), entries_.end(), id,
          [](const auto& e, RequestId v) { return e.first < v; });
    }
    Entries entries_;
  };

  class RequestSet {
   public:
    void insert(RequestId id) {
      const auto it = std::lower_bound(ids_.begin(), ids_.end(), id);
      if (it == ids_.end() || *it != id) ids_.insert(it, id);
    }
    bool erase(RequestId id) {
      const auto it = std::lower_bound(ids_.begin(), ids_.end(), id);
      if (it == ids_.end() || *it != id) return false;
      ids_.erase(it);
      return true;
    }
    [[nodiscard]] bool contains(RequestId id) const {
      return std::binary_search(ids_.begin(), ids_.end(), id);
    }
    [[nodiscard]] bool empty() const { return ids_.empty(); }

   private:
    std::vector<RequestId> ids_;
  };

  struct RankState {
    std::size_t pc{0};
    TimeNs now{};
    int coll_index{0};
    bool done{false};
    // Nonblocking-request bookkeeping.
    RequestMap completed_requests;  // not yet retired
    RequestSet pending_requests;    // completion unknown
    bool blocked_in_wait{false};
    bool wait_is_waitall{false};
    RequestId wait_request{0};
    TimeNs wait_enter{};
    TimeNs wait_t{};  // post-overhead time inside the Wait
  };

  [[nodiscard]] static std::uint64_t channel_key(Rank src, Rank dst,
                                                 std::int32_t tag) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 44) |
           (static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst)) << 24) |
           static_cast<std::uint64_t>(static_cast<std::uint32_t>(tag) &
                                      0xffffffu);
  }

  Channel& channel(Rank src, Rank dst, std::int32_t tag);

  /// Execute the record at ranks_[r].pc; either finishes it (scheduling the
  /// next advance) or leaves the rank blocked.
  void advance(Rank r);

  void do_compute(Rank r, const ComputeRecord& rec);
  void do_send(Rank r, const SendRecord& rec, TimeNs enter, TimeNs t);
  void do_recv(Rank r, const RecvRecord& rec, TimeNs enter, TimeNs t);
  void do_sendrecv(Rank r, const SendrecvRecord& rec, TimeNs enter, TimeNs t);
  void do_collective(Rank r, const CollectiveRecord& rec, TimeNs enter,
                     TimeNs t);
  void do_isend(Rank r, const IsendRecord& rec, TimeNs enter, TimeNs t);
  void do_irecv(Rank r, const IrecvRecord& rec, TimeNs enter, TimeNs t);
  void do_wait(Rank r, const WaitRecord& rec, TimeNs enter, TimeNs t);
  void do_waitall(Rank r, TimeNs enter, TimeNs t);

  /// Record that request `req` of rank `r` completes at `when`; resumes the
  /// rank if it is blocked waiting on it.
  void complete_request(Rank r, RequestId req, TimeNs when);
  /// Try to finish a blocked Wait/Waitall; returns true if resumed.
  void try_resume_wait(Rank r);
  /// Pop the next waiting receive of a channel and satisfy it with an
  /// arrival at `delivery` (blocking recvs resume; irecvs complete their
  /// request).
  void satisfy_waiting(Channel& ch, TimeNs delivery);

  /// Deliver an eager message (wakes a waiting receiver or enqueues).
  void deliver_eager(Rank src, Rank dst, std::int32_t tag, TimeNs delivery);

  /// Complete an MPI call on rank r at `exit` and schedule the next record.
  void finish_call(Rank r, MpiCall call, TimeNs enter, TimeNs exit);

  /// Resume a receiver blocked in WaitingRecv at `exit`.
  void resume_blocked_recv(const WaitingRecv& w, TimeNs exit);

  const Trace* trace_;
  ReplayOptions opt_;
  std::unique_ptr<Fabric> fabric_;
  CollectiveCostModel coll_model_;
  EventQueue queue_;
  std::vector<RankState> ranks_;
  std::vector<std::unique_ptr<PmpiAgent>> agents_;
  FlatHashMap<std::uint64_t, std::unique_ptr<Channel>> channels_;
  FlatHashMap<std::uint64_t, TimeNs> pending_send_enter_;
  std::vector<CollectiveState> collectives_;
  std::vector<std::vector<MpiCallEvent>> call_timelines_;
  int done_count_{0};
  std::uint64_t messages_{0};
  ReplayDrainStats drain_;
  bool ran_{false};
};

}  // namespace ibpower
