#include "sim/report.hpp"

#include <ostream>

namespace ibpower {

namespace {

struct Field {
  const char* name;
  double (*get)(const LabelledResult&);
};

const Field kFields[] = {
    {"displacement_pct",
     [](const LabelledResult& r) { return 100.0 * r.displacement; }},
    {"baseline_time_ms",
     [](const LabelledResult& r) { return r.result.baseline_time.ms(); }},
    {"managed_time_ms",
     [](const LabelledResult& r) { return r.result.managed_time.ms(); }},
    {"time_increase_pct",
     [](const LabelledResult& r) { return r.result.time_increase_pct; }},
    {"switch_savings_pct",
     [](const LabelledResult& r) {
       return r.result.power.switch_savings_pct;
     }},
    {"low_residency",
     [](const LabelledResult& r) {
       return r.result.power.mean_low_residency;
     }},
    {"hit_rate_pct",
     [](const LabelledResult& r) { return r.result.hit_rate_pct; }},
    {"mpi_calls",
     [](const LabelledResult& r) {
       return static_cast<double>(r.result.mpi_calls);
     }},
    {"pattern_mispredicts",
     [](const LabelledResult& r) {
       return static_cast<double>(r.result.agents.pattern_mispredicts);
     }},
    {"on_demand_wakes",
     [](const LabelledResult& r) {
       return static_cast<double>(r.result.on_demand_wakes);
     }},
    {"wake_penalty_ms",
     [](const LabelledResult& r) { return r.result.wake_penalty_total.ms(); }},
    {"reducible_idle_fraction",
     [](const LabelledResult& r) {
       return r.result.baseline_idle.reducible_time_fraction();
     }},
};

}  // namespace

std::string results_csv_header() {
  std::string header = "app,nranks";
  for (const Field& f : kFields) {
    header += ',';
    header += f.name;
  }
  return header;
}

void write_results_csv(std::ostream& os,
                       const std::vector<LabelledResult>& results) {
  os << results_csv_header() << "\n";
  os.precision(10);
  for (const auto& r : results) {
    os << r.app << ',' << r.nranks;
    for (const Field& f : kFields) os << ',' << f.get(r);
    os << "\n";
  }
}

void write_results_json(std::ostream& os,
                        const std::vector<LabelledResult>& results) {
  os.precision(10);
  os << "[\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    os << "  {\"app\": \"" << r.app << "\", \"nranks\": " << r.nranks;
    for (const Field& f : kFields) {
      os << ", \"" << f.name << "\": " << f.get(r);
    }
    os << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "]\n";
}

}  // namespace ibpower
