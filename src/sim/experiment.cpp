#include "sim/experiment.hpp"

#include <stdexcept>

namespace ibpower {

std::vector<TimeInterval> node_link_idle_gaps(const Fabric& fabric,
                                              NodeId node, TimeNs exec) {
  const IbLink& link =
      fabric.link(fabric.topology().node_uplink(node));
  IntervalSet busy;
  for (const auto& iv : link.busy(Direction::Up).intervals()) busy.add(iv);
  for (const auto& iv : link.busy(Direction::Down).intervals()) busy.add(iv);
  return busy.complement(TimeNs::zero(), exec);
}

IdleDistribution aggregate_idle(const Fabric& fabric, int nranks,
                                TimeNs exec) {
  std::vector<TimeNs> durations;
  for (NodeId n = 0; n < nranks; ++n) {
    for (const auto& gap : node_link_idle_gaps(fabric, n, exec)) {
      durations.push_back(gap.duration());
    }
  }
  return classify_idle_durations(durations);
}

StateTimeline build_power_timeline(const Fabric& fabric, int nranks,
                                   TimeNs exec) {
  StateTimeline timeline(nranks, exec);
  for (NodeId n = 0; n < nranks; ++n) {
    const IbLink& link = fabric.link(fabric.topology().node_uplink(n));
    const auto& segs = link.segments();
    TimeNs cursor{};
    LinkPowerMode mode = LinkPowerMode::FullPower;
    for (const auto& seg : segs) {
      const TimeNs b = min(seg.begin, exec);
      if (b > cursor) {
        timeline.add(n, cursor, b, static_cast<std::int32_t>(mode));
      }
      cursor = b;
      mode = seg.mode;
    }
    if (cursor < exec) {
      timeline.add(n, cursor, exec, static_cast<std::int32_t>(mode));
    }
  }
  return timeline;
}

ExperimentResult run_experiment(const ExperimentConfig& rawcfg) {
  ExperimentConfig cfg = rawcfg;
  // Single source of truth for the reactivation time: the agent's Treact is
  // the hardware lane-shift latency, so the link model must agree with it.
  cfg.fabric.link.t_react = cfg.ppa.t_react;
  cfg.fabric.link.t_deact = cfg.ppa.t_react;  // taken equal (paper §II)

  const auto app = make_app(cfg.app);
  if (!app->supports(cfg.workload.nranks)) {
    throw std::invalid_argument(cfg.app + " does not support nranks=" +
                                std::to_string(cfg.workload.nranks));
  }
  const Trace trace = app->generate(cfg.workload);

  ExperimentResult result;
  result.mpi_calls = trace.total_mpi_calls();

  // Baseline: power-unaware, always-on links.
  {
    ReplayOptions opt;
    opt.fabric = cfg.fabric;
    opt.enable_power_management = false;
    opt.eager_threshold = cfg.eager_threshold;
    ReplayEngine engine(&trace, opt);
    const ReplayResult rr = engine.run();
    result.baseline_time = rr.exec_time;
    result.baseline_idle =
        aggregate_idle(engine.fabric(), cfg.workload.nranks, rr.exec_time);
  }

  // Managed: the paper's mechanism in the loop.
  {
    ReplayOptions opt;
    opt.fabric = cfg.fabric;
    opt.enable_power_management = true;
    opt.ppa = cfg.ppa;
    opt.eager_threshold = cfg.eager_threshold;
    opt.record_call_timeline = cfg.record_call_timeline;
    ReplayEngine engine(&trace, opt);
    const ReplayResult rr = engine.run();
    result.managed_time = rr.exec_time;
    result.agents = rr.agent_total;
    result.messages = rr.messages_sent;
    result.hit_rate_pct = rr.agent_total.hit_rate_pct();

    std::vector<const IbLink*> ports;
    ports.reserve(static_cast<std::size_t>(cfg.workload.nranks));
    for (NodeId n = 0; n < cfg.workload.nranks; ++n) {
      const IbLink& link =
          engine.fabric().link(engine.fabric().topology().node_uplink(n));
      ports.push_back(&link);
      result.on_demand_wakes += link.on_demand_wakes();
      result.wake_penalty_total += link.wake_penalty_total();
    }
    result.power = aggregate_power(ports, cfg.power);
  }

  if (result.baseline_time > TimeNs::zero()) {
    result.time_increase_pct =
        100.0 *
        (static_cast<double>(result.managed_time.ns) -
         static_cast<double>(result.baseline_time.ns)) /
        static_cast<double>(result.baseline_time.ns);
  }
  return result;
}

double dry_run_hit_rate(
    const std::vector<std::vector<MpiCallEvent>>& call_timelines,
    const PpaConfig& ppa) {
  AgentStats total;
  for (const auto& timeline : call_timelines) {
    PmpiAgent agent(ppa, nullptr);
    for (const auto& ev : timeline) {
      (void)agent.on_call_enter(ev.call, ev.enter);
      agent.on_call_exit(ev.call, ev.exit);
    }
    agent.finish();
    total.merge(agent.stats());
  }
  return total.hit_rate_pct();
}

std::vector<GtSweepPoint> sweep_gt(const ExperimentConfig& cfg,
                                   const std::vector<TimeNs>& values) {
  const auto app = make_app(cfg.app);
  const Trace trace = app->generate(cfg.workload);

  ReplayOptions opt;
  opt.fabric = cfg.fabric;
  opt.enable_power_management = false;
  opt.eager_threshold = cfg.eager_threshold;
  opt.record_call_timeline = true;
  ReplayEngine engine(&trace, opt);
  (void)engine.run();

  std::vector<std::vector<MpiCallEvent>> timelines;
  timelines.reserve(static_cast<std::size_t>(trace.nranks()));
  for (Rank r = 0; r < trace.nranks(); ++r) {
    timelines.push_back(engine.call_timeline(r));
  }

  std::vector<GtSweepPoint> points;
  points.reserve(values.size());
  for (const TimeNs gt : values) {
    PpaConfig ppa = cfg.ppa;
    ppa.grouping_threshold = max(gt, 2 * ppa.t_react);
    points.push_back({ppa.grouping_threshold, dry_run_hit_rate(timelines, ppa)});
  }
  return points;
}

TimeNs default_gt(const std::string& app, int nranks) {
  // Calibrated per app/size on our synthetic traces (analogue of the
  // paper's Table III). Values in microseconds.
  auto us = [](std::int64_t v) { return TimeNs::from_us(v); };
  if (app == "nas_mg") {
    return nranks <= 64 ? us(300) : us(150);
  }
  if (app == "wrf") return us(30);
  if (app == "gromacs") return us(24);
  if (app == "alya") return us(24);
  if (app == "nas_bt") return us(36);  // sweep-stage gaps sit at ~24-28 us
  (void)nranks;
  return us(20);
}

}  // namespace ibpower
