#include "sim/experiment.hpp"

#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <type_traits>

namespace ibpower {

std::vector<TimeInterval> node_link_idle_gaps(const Fabric& fabric,
                                              NodeId node, TimeNs exec) {
  // Up and Down busy lists are each already sorted and disjoint, so the
  // union's complement falls out of one two-pointer sweep. (Building a
  // merged IntervalSet first was quadratic: every Down interval interleaved
  // among the Up ones pays a tail memmove.)
  const IbLink& link =
      fabric.link(fabric.topology().node_uplink(node));
  const auto& up = link.busy(Direction::Up).intervals();
  const auto& down = link.busy(Direction::Down).intervals();
  std::vector<TimeInterval> gaps;
  TimeNs cursor{};
  std::size_t i = 0;
  std::size_t j = 0;
  while (cursor < exec && (i < up.size() || j < down.size())) {
    const TimeInterval& iv =
        (j >= down.size() || (i < up.size() && up[i].begin <= down[j].begin))
            ? up[i++]
            : down[j++];
    if (iv.begin > cursor) gaps.push_back({cursor, min(iv.begin, exec)});
    cursor = max(cursor, iv.end);
  }
  if (cursor < exec) gaps.push_back({cursor, exec});
  return gaps;
}

IdleDistribution aggregate_idle(const Fabric& fabric, int nranks,
                                TimeNs exec) {
  std::vector<TimeNs> durations;
  for (NodeId n = 0; n < nranks; ++n) {
    for (const auto& gap : node_link_idle_gaps(fabric, n, exec)) {
      durations.push_back(gap.duration());
    }
  }
  return classify_idle_durations(durations);
}

StateTimeline build_power_timeline(const Fabric& fabric, int nranks,
                                   TimeNs exec) {
  StateTimeline timeline(nranks, exec);
  for (NodeId n = 0; n < nranks; ++n) {
    const IbLink& link = fabric.link(fabric.topology().node_uplink(n));
    const auto& segs = link.segments();
    TimeNs cursor{};
    LinkPowerMode mode = LinkPowerMode::FullPower;
    for (const auto& seg : segs) {
      const TimeNs b = min(seg.begin, exec);
      if (b > cursor) {
        timeline.add(n, cursor, b, static_cast<std::int32_t>(mode));
      }
      cursor = b;
      mode = seg.mode;
    }
    if (cursor < exec) {
      timeline.add(n, cursor, exec, static_cast<std::int32_t>(mode));
    }
  }
  return timeline;
}

ExperimentConfig normalize_config(const ExperimentConfig& cfg) {
  ExperimentConfig out = cfg;
  // Single source of truth for the reactivation time: the agent's Treact is
  // the hardware lane-shift latency, so the link model must agree with it.
  out.fabric.link.t_react = out.ppa.t_react;
  out.fabric.link.t_deact = out.ppa.t_react;  // taken equal (paper §II)
  return out;
}

Trace generate_experiment_trace(const ExperimentConfig& cfg) {
  const auto app = make_app(cfg.app);
  if (!app->supports(cfg.workload.nranks)) {
    throw std::invalid_argument(cfg.app + " does not support nranks=" +
                                std::to_string(cfg.workload.nranks));
  }
  return app->generate(cfg.workload);
}

std::string trace_cache_key(const ExperimentConfig& cfg) {
  // scale joins by bit pattern: 0.1*3 and 0.3 are different workloads here,
  // exactly as they would be to the generator's arithmetic.
  std::uint64_t scale_bits = 0;
  static_assert(sizeof(scale_bits) == sizeof(cfg.workload.scale));
  std::memcpy(&scale_bits, &cfg.workload.scale, sizeof(scale_bits));
  char buf[96];
  std::snprintf(buf, sizeof(buf), "|%d|%d|%llu|%016llx|%d",
                cfg.workload.nranks, cfg.workload.iterations,
                static_cast<unsigned long long>(cfg.workload.seed),
                static_cast<unsigned long long>(scale_bits),
                cfg.workload.weak_scaling ? 1 : 0);
  return cfg.app + buf;
}

BaselineLegResult run_baseline_leg(const ExperimentConfig& cfg,
                                   const Trace& trace,
                                   const ReplayProbe& probe,
                                   ReplayMemory* memory) {
  // Baseline: power-unaware, always-on links — including the trunks, so
  // the managed-vs-baseline comparison sees the full always-on fabric no
  // matter what trunk policy the managed leg runs.
  ReplayOptions opt;
  opt.fabric = cfg.fabric;
  opt.fabric.trunk.kind = TrunkPolicyKind::Off;
  opt.enable_power_management = false;
  opt.eager_threshold = cfg.eager_threshold;
  opt.shards = cfg.shards;
  ReplayEngine engine(&trace, opt, memory);
  const ReplayResult rr = engine.run();
  BaselineLegResult leg;
  leg.time = rr.exec_time;
  leg.idle = aggregate_idle(engine.fabric(), cfg.workload.nranks, rr.exec_time);
  leg.events = rr.events_processed;
  if (probe) probe(engine, rr);
  return leg;
}

ManagedLegResult run_managed_leg(const ExperimentConfig& cfg,
                                 const Trace& trace,
                                 const ReplayProbe& probe,
                                 ReplayMemory* memory) {
  // Managed: the paper's mechanism in the loop.
  ReplayOptions opt;
  opt.fabric = cfg.fabric;
  opt.enable_power_management = true;
  opt.ppa = cfg.ppa;
  opt.eager_threshold = cfg.eager_threshold;
  opt.record_call_timeline = cfg.record_call_timeline;
  opt.shards = cfg.shards;
  opt.host = cfg.host;
  ReplayEngine engine(&trace, opt, memory);
  const ReplayResult rr = engine.run();
  ManagedLegResult leg;
  leg.time = rr.exec_time;
  leg.agents = rr.agent_total;
  leg.messages = rr.messages_sent;
  leg.hit_rate_pct = rr.agent_total.hit_rate_pct();
  leg.events = rr.events_processed;

  std::vector<const IbLink*> ports;
  ports.reserve(static_cast<std::size_t>(cfg.workload.nranks));
  for (NodeId n = 0; n < cfg.workload.nranks; ++n) {
    const IbLink& link =
        engine.fabric().link(engine.fabric().topology().node_uplink(n));
    ports.push_back(&link);
    leg.on_demand_wakes += link.on_demand_wakes();
    leg.wake_penalty_total += link.wake_penalty_total();
  }
  leg.power = aggregate_power(ports, cfg.power);

  // Whole-fabric view over all links: uplinks + trunks (the paper's
  // whole-switch accounting once a trunk policy is active).
  const Fabric& fabric = engine.fabric();
  const int nlinks = fabric.topology().num_links();
  std::vector<const IbLink*> all_ports;
  all_ports.reserve(static_cast<std::size_t>(nlinks));
  for (LinkId l = 0; l < nlinks; ++l) all_ports.push_back(&fabric.link(l));
  leg.fabric_power = aggregate_power(all_ports, cfg.power);

  if (engine.host(0) != nullptr) {
    std::vector<const HostPowerModel*> hosts;
    hosts.reserve(static_cast<std::size_t>(cfg.workload.nranks));
    for (Rank r = 0; r < cfg.workload.nranks; ++r) {
      hosts.push_back(engine.host(r));
    }
    leg.hosts = aggregate_hosts(hosts);
  }

  if (probe) probe(engine, rr);
  return leg;
}

ExperimentResult combine_legs(const Trace& trace,
                              const BaselineLegResult& baseline,
                              const ManagedLegResult& managed) {
  ExperimentResult result;
  result.mpi_calls = trace.total_mpi_calls();
  result.baseline_time = baseline.time;
  result.baseline_idle = baseline.idle;
  result.managed_time = managed.time;
  result.agents = managed.agents;
  result.messages = managed.messages;
  result.hit_rate_pct = managed.hit_rate_pct;
  result.on_demand_wakes = managed.on_demand_wakes;
  result.wake_penalty_total = managed.wake_penalty_total;
  result.power = managed.power;
  result.fabric_power = managed.fabric_power;
  result.sim_events = baseline.events + managed.events;
  if (result.baseline_time > TimeNs::zero()) {
    result.time_increase_pct =
        100.0 *
        (static_cast<double>(result.managed_time.ns) -
         static_cast<double>(result.baseline_time.ns)) /
        static_cast<double>(result.baseline_time.ns);
  }
  result.hosts = managed.hosts;
  if (managed.hosts.baseline_energy_joules > 0.0) {
    // System view = every fabric link plus every rank's host; baseline is
    // the power-unaware system (always-on links, hosts flat out at P0).
    result.system_energy_joules = managed.fabric_power.total_energy_joules +
                                  managed.hosts.total_energy_joules;
    result.system_baseline_energy_joules =
        managed.fabric_power.baseline_energy_joules +
        managed.hosts.baseline_energy_joules;
    result.system_savings_pct =
        result.system_baseline_energy_joules > 0.0
            ? (1.0 - result.system_energy_joules /
                         result.system_baseline_energy_joules) *
                  100.0
            : 0.0;
  }
  return result;
}

ExperimentResult run_experiment(const ExperimentConfig& rawcfg) {
  const ExperimentConfig cfg = normalize_config(rawcfg);
  const Trace trace = generate_experiment_trace(cfg);
  const BaselineLegResult baseline = run_baseline_leg(cfg, trace);
  const ManagedLegResult managed = run_managed_leg(cfg, trace);
  return combine_legs(trace, baseline, managed);
}

namespace {

template <class T>
bool bits_equal(const T& a, const T& b) {
  static_assert(std::is_trivially_copyable_v<T>);
  return std::memcmp(&a, &b, sizeof(T)) == 0;
}

}  // namespace

bool bit_identical(const ExperimentResult& a, const ExperimentResult& b) {
  // Field-by-field (not whole-struct) memcmp so padding bytes can never
  // produce a false mismatch.
  return bits_equal(a.baseline_time, b.baseline_time) &&
         bits_equal(a.managed_time, b.managed_time) &&
         bits_equal(a.time_increase_pct, b.time_increase_pct) &&
         bits_equal(a.power, b.power) &&
         bits_equal(a.fabric_power, b.fabric_power) &&
         bits_equal(a.agents, b.agents) &&
         bits_equal(a.hit_rate_pct, b.hit_rate_pct) &&
         bits_equal(a.baseline_idle.buckets, b.baseline_idle.buckets) &&
         bits_equal(a.baseline_idle.total_intervals,
                    b.baseline_idle.total_intervals) &&
         bits_equal(a.baseline_idle.total_idle, b.baseline_idle.total_idle) &&
         bits_equal(a.on_demand_wakes, b.on_demand_wakes) &&
         bits_equal(a.wake_penalty_total, b.wake_penalty_total) &&
         bits_equal(a.mpi_calls, b.mpi_calls) &&
         bits_equal(a.messages, b.messages) &&
         bits_equal(a.sim_events, b.sim_events) &&
         bits_equal(a.hosts, b.hosts) &&
         bits_equal(a.system_energy_joules, b.system_energy_joules) &&
         bits_equal(a.system_baseline_energy_joules,
                    b.system_baseline_energy_joules) &&
         bits_equal(a.system_savings_pct, b.system_savings_pct);
}

double dry_run_hit_rate(
    const std::vector<std::vector<MpiCallEvent>>& call_timelines,
    const PpaConfig& ppa) {
  AgentStats total;
  for (const auto& timeline : call_timelines) {
    PmpiAgent agent(ppa, nullptr);
    for (const auto& ev : timeline) {
      (void)agent.on_call_enter(ev.call, ev.enter);
      agent.on_call_exit(ev.call, ev.exit);
    }
    agent.finish();
    total.merge(agent.stats());
  }
  return total.hit_rate_pct();
}

std::vector<std::vector<MpiCallEvent>> baseline_call_timelines(
    const ExperimentConfig& cfg, const Trace& trace, ReplayMemory* memory) {
  ReplayOptions opt;
  opt.fabric = cfg.fabric;
  opt.fabric.trunk.kind = TrunkPolicyKind::Off;  // baseline run
  opt.enable_power_management = false;
  opt.eager_threshold = cfg.eager_threshold;
  opt.record_call_timeline = true;
  opt.shards = cfg.shards;
  ReplayEngine engine(&trace, opt, memory);
  (void)engine.run();

  std::vector<std::vector<MpiCallEvent>> timelines;
  timelines.reserve(static_cast<std::size_t>(trace.nranks()));
  for (Rank r = 0; r < trace.nranks(); ++r) {
    // Copy out of the engine's arena: the spans die with the workspace.
    const auto tl = engine.call_timeline(r);
    timelines.emplace_back(tl.begin(), tl.end());
  }
  return timelines;
}

GtSweepPoint score_gt(const std::vector<std::vector<MpiCallEvent>>& timelines,
                      const PpaConfig& base_ppa, TimeNs gt) {
  PpaConfig ppa = base_ppa;
  ppa.grouping_threshold = max(gt, 2 * ppa.t_react);
  return {ppa.grouping_threshold, dry_run_hit_rate(timelines, ppa)};
}

std::vector<GtSweepPoint> sweep_gt(const ExperimentConfig& cfg,
                                   const std::vector<TimeNs>& values) {
  const Trace trace = generate_experiment_trace(cfg);
  const auto timelines = baseline_call_timelines(cfg, trace);

  std::vector<GtSweepPoint> points;
  points.reserve(values.size());
  for (const TimeNs gt : values) {
    points.push_back(score_gt(timelines, cfg.ppa, gt));
  }
  return points;
}

TimeNs default_gt(const std::string& app, int nranks) {
  // Calibrated per app/size on our synthetic traces (analogue of the
  // paper's Table III). Values in microseconds.
  auto us = [](std::int64_t v) { return TimeNs::from_us(v); };
  if (app == "nas_mg") {
    return nranks <= 64 ? us(300) : us(150);
  }
  if (app == "wrf") return us(30);
  if (app == "gromacs") return us(24);
  if (app == "alya") return us(24);
  if (app == "nas_bt") return us(36);  // sweep-stage gaps sit at ~24-28 us
  (void)nranks;
  return us(20);
}

}  // namespace ibpower
