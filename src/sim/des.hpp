// Minimal discrete-event simulation kernel.
//
// Deterministic: ties in time are broken by insertion order, so a replay is
// reproducible bit-for-bit across runs and platforms.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/expect.hpp"
#include "util/time_types.hpp"

namespace ibpower {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  void schedule(TimeNs t, Callback cb) {
    IBP_EXPECTS(t >= now_);
    heap_.push(Entry{t, seq_++, std::move(cb)});
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] TimeNs now() const { return now_; }
  [[nodiscard]] std::uint64_t processed() const { return processed_; }

  /// Pop and run the earliest event. Returns false when the queue is empty.
  bool run_next() {
    if (heap_.empty()) return false;
    // Entry::cb is not touched by the comparator, so moving out of top() is
    // safe; pop before running so the callback can schedule freely.
    Entry entry = std::move(const_cast<Entry&>(heap_.top()));
    heap_.pop();
    IBP_ASSERT(entry.t >= now_);
    now_ = entry.t;
    ++processed_;
    entry.cb();
    return true;
  }

  /// Run until the queue drains.
  void run() {
    while (run_next()) {
    }
  }

 private:
  struct Entry {
    TimeNs t;
    std::uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  TimeNs now_{};
  std::uint64_t seq_{0};
  std::uint64_t processed_{0};
};

}  // namespace ibpower
