// Minimal discrete-event simulation kernel.
//
// Deterministic: ties in time are broken by insertion order, so a replay is
// reproducible bit-for-bit across runs and platforms.
//
// Hot-path design: callbacks are InplaceCallback (small-buffer, no heap
// allocation for captures that fit 48 bytes — every ReplayEngine capture
// does), and the priority queue is an explicit vector-backed binary heap so
// pops never move out of a const reference and the backing store can be
// reserve()d up front.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "check/audit.hpp"
#include "util/expect.hpp"
#include "util/inplace_callback.hpp"
#include "util/time_types.hpp"

namespace ibpower {

class EventQueue {
 public:
  using Callback = InplaceCallback<48>;

  /// Pre-size the heap; scheduling below this many outstanding events never
  /// reallocates (and with inline callbacks never allocates at all).
  void reserve(std::size_t events) { heap_.reserve(events); }

  void schedule(TimeNs t, Callback cb) {
    IBP_EXPECTS(t >= now_);
    heap_.push_back(Entry{t, seq_++, std::move(cb)});
    sift_up(heap_.size() - 1);
    IBP_AUDIT(audit_verify_heap());
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }
  [[nodiscard]] TimeNs now() const { return now_; }
  [[nodiscard]] std::uint64_t processed() const { return processed_; }

  /// Pop and run the earliest event. Returns false when the queue is empty.
  bool run_next() {
    if (heap_.empty()) return false;
    // Pop into a local before running so the callback can schedule freely
    // (which may reallocate the heap).
    Entry entry = std::move(heap_.front());
    if (heap_.size() > 1) {
      heap_.front() = std::move(heap_.back());
      heap_.pop_back();
      sift_down(0);
    } else {
      heap_.pop_back();
    }
    IBP_AUDIT(audit_verify_heap());
    // Simulated time is monotone: no event may run before the current time.
    IBP_ASSERT(entry.t >= now_);
    now_ = entry.t;
    ++processed_;
    entry.cb();
    return true;
  }

  /// Run until the queue drains.
  void run() {
    while (run_next()) {
    }
  }

 private:
  struct Entry {
    TimeNs t;
    std::uint64_t seq;
    Callback cb;
  };

  [[nodiscard]] static bool earlier(const Entry& a, const Entry& b) {
    if (a.t != b.t) return a.t < b.t;
    return a.seq < b.seq;
  }

  // Hole-based sifts: one move per level instead of a three-move swap.
  void sift_up(std::size_t i) {
    Entry e = std::move(heap_[i]);
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!earlier(e, heap_[parent])) break;
      heap_[i] = std::move(heap_[parent]);
      i = parent;
    }
    heap_[i] = std::move(e);
  }

  void sift_down(std::size_t i) {
    const std::size_t n = heap_.size();
    Entry e = std::move(heap_[i]);
    while (true) {
      std::size_t child = 2 * i + 1;
      if (child >= n) break;
      if (child + 1 < n && earlier(heap_[child + 1], heap_[child])) ++child;
      if (!earlier(heap_[child], e)) break;
      heap_[i] = std::move(heap_[child]);
      i = child;
    }
    heap_[i] = std::move(e);
  }

#if defined(IBPOWER_AUDIT_ENABLED)
  /// Audit builds only: full heap-order and time-monotonicity verification
  /// after every mutation (O(n); compiled out entirely otherwise).
  void audit_verify_heap() const {
    for (std::size_t i = 1; i < heap_.size(); ++i) {
      if (earlier(heap_[i], heap_[(i - 1) / 2])) {
        IBP_AUDIT_FAIL("EventQueue heap order violated");
      }
    }
    if (!heap_.empty() && heap_.front().t < now_) {
      IBP_AUDIT_FAIL("EventQueue head is in the past");
    }
  }
#endif

  std::vector<Entry> heap_;
  TimeNs now_{};
  std::uint64_t seq_{0};
  std::uint64_t processed_{0};
};

}  // namespace ibpower
