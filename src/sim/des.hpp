// Minimal discrete-event simulation kernel.
//
// Deterministic: ties in time are broken by insertion order, so a replay is
// reproducible bit-for-bit across runs and platforms.
//
// Hot-path design (profiled: the heap pop dominated whole-replay time):
//  - Callbacks are InplaceCallback (small-buffer, no heap allocation for
//    captures that fit 48 bytes — every ReplayEngine capture does).
//  - The priority queue separates *keys* from *callbacks*: the binary heap
//    holds 24-byte {time, seq, slot} keys while the 64-byte callbacks sit in
//    a stationary slab indexed by slot. Sifts move keys only — a third of
//    the cache traffic of the old combined Entry — and callbacks are never
//    copied between schedule() and execution.
//  - A one-element "next" fast path absorbs the dominant replay pattern of
//    scheduling an event that is the next to run (zero-overhead finish_call
//    chains: Isend/Irecv/Wait completing at the current time). Such events
//    bypass the heap entirely: schedule and pop are both O(1) with no
//    sifting. Ordering is unchanged — `next` is only occupied when it
//    precedes every heap entry under the (time, seq) order.
//  - reset_for_reuse() clears state but keeps every buffer, so a queue owned
//    by a ReplayMemory workspace reaches steady-state zero allocation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "check/audit.hpp"
#include "util/expect.hpp"
#include "util/inplace_callback.hpp"
#include "util/time_types.hpp"

namespace ibpower {

class EventQueue {
 public:
  using Callback = InplaceCallback<48>;

  /// Pre-size the heap; scheduling below this many outstanding events never
  /// reallocates (and with inline callbacks never allocates at all).
  void reserve(std::size_t events) {
    heap_.reserve(events);
    slots_.reserve(events);
    free_.reserve(events);
  }

  void schedule(TimeNs t, Callback cb) {
    schedule_key(Key{t, seq_++, 0}, std::move(cb));
  }

  /// Schedule with an explicit tie-break value instead of the insertion
  /// counter. Callers that need a *shard-count-invariant* event order (the
  /// sharded replay executor) derive the tie from simulation state — rank,
  /// message counter — so the same events pop in the same order no matter
  /// which thread scheduled them or when. Do not mix schedule() and
  /// schedule_tie() ordering assumptions within one run: the insertion
  /// counter and explicit ties share one key space.
  void schedule_tie(TimeNs t, std::uint64_t tie, Callback cb) {
    schedule_key(Key{t, tie, 0}, std::move(cb));
  }

  /// Earliest queued event's timestamp, or TimeNs::max() when empty. The
  /// fast-path slot, when occupied, precedes every heap entry by
  /// construction, so this is O(1).
  [[nodiscard]] TimeNs next_time() const {
    if (has_next_) return next_key_.t;
    if (!heap_.empty()) return heap_.front().t;
    return TimeNs::max();
  }

  [[nodiscard]] bool empty() const { return !has_next_ && heap_.empty(); }
  [[nodiscard]] std::size_t size() const {
    return heap_.size() + (has_next_ ? 1 : 0);
  }
  [[nodiscard]] TimeNs now() const { return now_; }
  [[nodiscard]] std::uint64_t processed() const { return processed_; }

  /// Pop and run the earliest event. Returns false when the queue is empty.
  bool run_next() {
    // Pop into a local before running so the callback can schedule freely.
    Callback cb;
    TimeNs t;
    if (has_next_) {
      // `next` precedes every heap entry by construction: O(1) pop.
      t = next_key_.t;
      cb = std::move(next_cb_);
      has_next_ = false;
    } else if (!heap_.empty()) {
      const Key top = heap_.front();
      t = top.t;
      cb = std::move(slots_[top.slot]);
      free_.push_back(top.slot);
      const Key last = heap_.back();
      heap_.pop_back();
      if (!heap_.empty()) sift_down(last);
      IBP_AUDIT(audit_verify_heap());
    } else {
      return false;
    }
    // Simulated time is monotone: no event may run before the current time.
    IBP_ASSERT(t >= now_);
    now_ = t;
    ++processed_;
    cb();
    return true;
  }

  /// Run until the queue drains.
  void run() {
    while (run_next()) {
    }
  }

  /// Return to the freshly-constructed state while keeping every buffer
  /// (heap keys, callback slab, free list) — the reset-and-reuse protocol
  /// of ReplayMemory. Must not be called while events are outstanding
  /// mid-run (callers reset between replays).
  void reset_for_reuse() {
    heap_.clear();
    slots_.clear();
    free_.clear();
    has_next_ = false;
    next_cb_ = Callback{};
    now_ = TimeNs{};
    seq_ = 0;
    processed_ = 0;
  }

 private:
  struct Key {
    TimeNs t;
    std::uint64_t seq;
    std::uint32_t slot;
  };

  [[nodiscard]] static bool earlier(const Key& a, const Key& b) {
    if (a.t != b.t) return a.t < b.t;
    return a.seq < b.seq;
  }

  void schedule_key(const Key& key, Callback cb) {
    IBP_EXPECTS(key.t >= now_);
    if (!has_next_ && (heap_.empty() || earlier(key, heap_.front()))) {
      // Fast path: the new event precedes everything queued.
      next_key_ = key;
      next_cb_ = std::move(cb);
      has_next_ = true;
    } else if (has_next_ && earlier(key, next_key_)) {
      // New global minimum: demote the previous `next` into the heap.
      heap_push(next_key_, std::move(next_cb_));
      next_key_ = key;
      next_cb_ = std::move(cb);
    } else {
      heap_push(key, std::move(cb));
    }
    IBP_AUDIT(audit_verify_heap());
  }

  void heap_push(const Key& key, Callback cb) {
    std::uint32_t slot;
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
      slots_[slot] = std::move(cb);
    } else {
      slot = static_cast<std::uint32_t>(slots_.size());
      slots_.push_back(std::move(cb));
    }
    Key k = key;
    k.slot = slot;
    sift_up(k);
  }

  // Hole-based sifts over 24-byte keys; callbacks never move.
  void sift_up(const Key& e) {
    std::size_t i = heap_.size();
    heap_.push_back(e);  // grow; the hole walk overwrites as needed
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!earlier(e, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = e;
  }

  void sift_down(const Key& e) {
    const std::size_t n = heap_.size();
    std::size_t i = 0;
    while (true) {
      std::size_t child = 2 * i + 1;
      if (child >= n) break;
      if (child + 1 < n && earlier(heap_[child + 1], heap_[child])) ++child;
      if (!earlier(heap_[child], e)) break;
      heap_[i] = heap_[child];
      i = child;
    }
    heap_[i] = e;
  }

#if defined(IBPOWER_AUDIT_ENABLED)
  /// Audit builds only: full heap-order, time-monotonicity and fast-path
  /// verification after every mutation (O(n); compiled out otherwise).
  void audit_verify_heap() const {
    for (std::size_t i = 1; i < heap_.size(); ++i) {
      if (earlier(heap_[i], heap_[(i - 1) / 2])) {
        IBP_AUDIT_FAIL("EventQueue heap order violated");
      }
    }
    if (!heap_.empty() && heap_.front().t < now_) {
      IBP_AUDIT_FAIL("EventQueue head is in the past");
    }
    if (has_next_ && !heap_.empty() && !earlier(next_key_, heap_.front())) {
      IBP_AUDIT_FAIL("EventQueue fast-path slot does not precede the heap");
    }
    if (has_next_ && next_key_.t < now_) {
      IBP_AUDIT_FAIL("EventQueue fast-path slot is in the past");
    }
  }
#endif

  std::vector<Key> heap_;
  std::vector<Callback> slots_;       // stationary callback slab
  std::vector<std::uint32_t> free_;   // recycled slab slots
  Key next_key_{};
  Callback next_cb_;
  bool has_next_{false};
  TimeNs now_{};
  std::uint64_t seq_{0};
  std::uint64_t processed_{0};
};

}  // namespace ibpower
