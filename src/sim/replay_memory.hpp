// ReplayMemory — the per-worker reusable workspace behind ReplayEngine.
//
// A replay's mutable world (event queue, fabric, agents, channel maps and
// every arena-backed container) used to be constructed and torn down per
// replay: `make_unique` per cell, heap churn per message. ReplayMemory owns
// all of it and hands it to one ReplayEngine at a time via a
// reset-and-reuse protocol (DESIGN.md §7, "Memory architecture"):
//
//   ReplayMemory mem;                       // one per ThreadPool worker
//   for (cell : cells) {
//     ReplayEngine engine(&trace, opt, &mem);  // resets + borrows mem
//     engine.run();
//   }
//
// After the first replay has established the peak footprint, every later
// replay of comparable size performs (near-)zero heap allocations: the
// arena bumps within its retained slab, the event queue and hash tables
// keep their buffers, the fabric resets its links in place, and agents keep
// their learning-structure capacity. Workers never share a ReplayMemory, so
// parallel cells stop contending on the global allocator — the root cause
// of the jobs>1 throughput collapse this design removes.
//
// Exactly one engine may borrow a ReplayMemory at a time; the engine (and
// every pointer into the workspace, e.g. call-timeline spans) is
// invalidated when the next engine borrows it.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/pmpi_agent.hpp"
#include "network/fabric.hpp"
#include "sim/des.hpp"
#include "util/arena.hpp"
#include "util/hash_table.hpp"
#include "util/time_types.hpp"

namespace ibpower {

// --- replay channel bookkeeping (arena-backed) -----------------------------

struct ReplayChannelMsg {
  bool rendezvous{false};
  TimeNs ready_or_delivery{};  // eager: delivery; rendezvous: sender ready
  Bytes bytes{0};
  // Rendezvous-from-Isend: the sender is not blocked; its request
  // completes when the transfer is injected.
  bool src_nonblocking{false};
  Rank src{-1};
  RequestId src_request{0};
};

struct ReplayWaitingRecv {
  Rank dst{-1};
  MpiCall call{MpiCall::None};
  TimeNs posted{};
  TimeNs enter{};
  TimeNs min_exit{};
  // Irecv: the rank is not blocked; the request completes on delivery.
  bool nonblocking{false};
  RequestId request{0};
};

struct ReplayChannel {
  ArenaQueue<ReplayChannelMsg> queue;
  ArenaQueue<ReplayWaitingRecv> waiting;
  bool live{false};  // set when first touched by a replay
};

class ReplayMemory {
 public:
  ReplayMemory() = default;
  ReplayMemory(const ReplayMemory&) = delete;
  ReplayMemory& operator=(const ReplayMemory&) = delete;

  /// Start a new borrow: recycles the arena and empties queue and channel
  /// maps while keeping all capacity. Called by ReplayEngine's constructor.
  void begin_run() {
    arena_.reset();
    queue_.reset_for_reuse();
    channels_.clear_retain();
    pending_send_enter_.clear_retain();
  }

  [[nodiscard]] MonotonicArena& arena() { return arena_; }
  [[nodiscard]] EventQueue& queue() { return queue_; }
  [[nodiscard]] FlatHashMap<std::uint64_t, ReplayChannel>& channels() {
    return channels_;
  }
  [[nodiscard]] const FlatHashMap<std::uint64_t, ReplayChannel>& channels()
      const {
    return channels_;
  }
  [[nodiscard]] FlatHashMap<std::uint64_t, TimeNs>& pending_send_enter() {
    return pending_send_enter_;
  }
  [[nodiscard]] const FlatHashMap<std::uint64_t, TimeNs>& pending_send_enter()
      const {
    return pending_send_enter_;
  }

  /// The reusable fabric: constructed on first use, reset in place after —
  /// zero allocations when the topology shape is unchanged.
  [[nodiscard]] Fabric& acquire_fabric(const FabricConfig& cfg, int nodes) {
    if (!fabric_) {
      fabric_ = std::make_unique<Fabric>(cfg, nodes);
    } else {
      fabric_->reset(cfg, nodes);
    }
    return *fabric_;
  }

  /// The reusable agent pool: agent `i` is constructed once and reset for
  /// each new (cfg, port) binding; its learning structures keep capacity.
  [[nodiscard]] PmpiAgent& acquire_agent(std::size_t i, const PpaConfig& cfg,
                                         LinkPowerPort* port) {
    while (agents_.size() <= i) agents_.push_back(nullptr);
    if (!agents_[i]) {
      agents_[i] = std::make_unique<PmpiAgent>(cfg, port);
    } else {
      agents_[i]->reset(cfg, port);
    }
    return *agents_[i];
  }

 private:
  MonotonicArena arena_;
  EventQueue queue_;
  FlatHashMap<std::uint64_t, ReplayChannel> channels_;
  FlatHashMap<std::uint64_t, TimeNs> pending_send_enter_;
  std::unique_ptr<Fabric> fabric_;
  std::vector<std::unique_ptr<PmpiAgent>> agents_;
};

}  // namespace ibpower
