// ReplayMemory — the per-worker reusable workspace behind ReplayEngine.
//
// A replay's mutable world (event queue, fabric, agents, channel maps and
// every arena-backed container) used to be constructed and torn down per
// replay: `make_unique` per cell, heap churn per message. ReplayMemory owns
// all of it and hands it to one ReplayEngine at a time via a
// reset-and-reuse protocol (DESIGN.md §7, "Memory architecture"):
//
//   ReplayMemory mem;                       // one per ThreadPool worker
//   for (cell : cells) {
//     ReplayEngine engine(&trace, opt, &mem);  // resets + borrows mem
//     engine.run();
//   }
//
// After the first replay has established the peak footprint, every later
// replay of comparable size performs (near-)zero heap allocations: the
// arena bumps within its retained slab, the event queue and hash tables
// keep their buffers, the fabric resets its links in place, and agents keep
// their learning-structure capacity. Workers never share a ReplayMemory, so
// parallel cells stop contending on the global allocator — the root cause
// of the jobs>1 throughput collapse this design removes.
//
// Exactly one engine may borrow a ReplayMemory at a time; the engine (and
// every pointer into the workspace, e.g. call-timeline spans) is
// invalidated when the next engine borrows it.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/pmpi_agent.hpp"
#include "host/host_power.hpp"
#include "network/fabric.hpp"
#include "sim/des.hpp"
#include "util/arena.hpp"
#include "util/hash_table.hpp"
#include "util/time_types.hpp"

namespace ibpower {

// --- replay channel bookkeeping (arena-backed) -----------------------------

struct ReplayChannelMsg {
  bool rendezvous{false};
  TimeNs ready_or_delivery{};  // eager: delivery; rendezvous: sender ready
  Bytes bytes{0};
  // Rendezvous-from-Isend: the sender is not blocked; its request
  // completes when the transfer is injected.
  bool src_nonblocking{false};
  Rank src{-1};
  RequestId src_request{0};
  // Rendezvous-from-blocking-Send: the sender's call-enter time, needed to
  // finish its call when the transfer resumes it. Carried in the message
  // itself so no side table is consulted on the resume path (and, sharded,
  // so the destination shard never reads sender-shard state).
  TimeNs send_enter{};
};

struct ReplayWaitingRecv {
  Rank dst{-1};
  MpiCall call{MpiCall::None};
  TimeNs posted{};
  TimeNs enter{};
  TimeNs min_exit{};
  // Irecv: the rank is not blocked; the request completes on delivery.
  bool nonblocking{false};
  RequestId request{0};
};

/// An arrival that reached the destination shard ahead of a lower-seq
/// message still in flight (cross-shard paths have per-message latencies).
/// Parked until the channel's expected_seq catches up, restoring MPI
/// non-overtaking order.
struct ReplayPendingArrival {
  std::uint32_t seq{0};
  ReplayChannelMsg msg;
};

struct ReplayChannel {
  ArenaQueue<ReplayChannelMsg> queue;
  ArenaQueue<ReplayWaitingRecv> waiting;
  // Sender-assigned sequence gating (sharded replay): next seq this channel
  // may admit, and the sorted out-of-order park for early arrivals. Serial
  // replays admit in post order, so these stay at 0/empty.
  std::uint32_t expected_seq{0};
  ArenaVector<ReplayPendingArrival> ooo;
  bool live{false};  // set when first touched by a replay
};

/// One shard's slice of the replay workspace: its event queue, its arena
/// (events, channel buffers, cross-shard message blocks created by it), and
/// the channel map for channels it owns (keyed by destination rank). Slab 0
/// doubles as the whole workspace for serial replays.
struct ReplayShardSlab {
  MonotonicArena arena;
  EventQueue queue;
  FlatHashMap<std::uint64_t, ReplayChannel> channels;
  // Sender-side per-channel sequence counters, keyed like `channels` but
  // living in the *source* shard's slab (the sender assigns the seq).
  FlatHashMap<std::uint64_t, std::uint32_t> send_seq;

  void begin_run() {
    arena.reset();
    queue.reset_for_reuse();
    channels.clear_retain();
    send_seq.clear_retain();
  }
};

class ReplayMemory {
 public:
  ReplayMemory() { slabs_.push_back(std::make_unique<ReplayShardSlab>()); }
  ReplayMemory(const ReplayMemory&) = delete;
  ReplayMemory& operator=(const ReplayMemory&) = delete;

  /// Start a new borrow: recycles every slab's arena, queue and channel
  /// maps while keeping all capacity. Called by ReplayEngine's constructor.
  void begin_run() {
    for (auto& slab : slabs_) slab->begin_run();
  }

  /// Shard i's slab, grown on demand. Slabs persist across borrows so a
  /// worker that alternates sharded and serial replays keeps all capacity.
  [[nodiscard]] ReplayShardSlab& shard_slab(std::size_t i) {
    while (slabs_.size() <= i) {
      slabs_.push_back(std::make_unique<ReplayShardSlab>());
      slabs_.back()->begin_run();
    }
    return *slabs_[i];
  }
  [[nodiscard]] std::size_t num_slabs() const { return slabs_.size(); }

  // Serial accessors: slab 0 is the whole workspace for 1-shard replays.
  [[nodiscard]] MonotonicArena& arena() { return slabs_[0]->arena; }
  [[nodiscard]] EventQueue& queue() { return slabs_[0]->queue; }
  [[nodiscard]] FlatHashMap<std::uint64_t, ReplayChannel>& channels() {
    return slabs_[0]->channels;
  }
  [[nodiscard]] const FlatHashMap<std::uint64_t, ReplayChannel>& channels()
      const {
    return slabs_[0]->channels;
  }

  /// The reusable fabric: constructed on first use, reset in place after —
  /// zero allocations when the topology shape is unchanged.
  [[nodiscard]] Fabric& acquire_fabric(const FabricConfig& cfg, int nodes) {
    if (!fabric_) {
      fabric_ = std::make_unique<Fabric>(cfg, nodes);
    } else {
      fabric_->reset(cfg, nodes);
    }
    return *fabric_;
  }

  /// The reusable agent pool: agent `i` is constructed once and reset for
  /// each new (cfg, port) binding; its learning structures keep capacity.
  [[nodiscard]] PmpiAgent& acquire_agent(std::size_t i, const PpaConfig& cfg,
                                         LinkPowerPort* port) {
    while (agents_.size() <= i) agents_.push_back(nullptr);
    if (!agents_[i]) {
      agents_[i] = std::make_unique<PmpiAgent>(cfg, port);
    } else {
      agents_[i]->reset(cfg, port);
    }
    return *agents_[i];
  }

  /// The reusable host-model pool (host co-management runs only): host `i`
  /// is constructed once and reset for each new config binding.
  [[nodiscard]] HostPowerModel& acquire_host(std::size_t i,
                                             const HostPowerConfig& cfg) {
    while (hosts_.size() <= i) hosts_.push_back(nullptr);
    if (!hosts_[i]) {
      hosts_[i] = std::make_unique<HostPowerModel>(cfg);
    } else {
      hosts_[i]->reset(cfg);
    }
    return *hosts_[i];
  }

 private:
  std::vector<std::unique_ptr<ReplayShardSlab>> slabs_;
  std::unique_ptr<Fabric> fabric_;
  std::vector<std::unique_ptr<PmpiAgent>> agents_;
  std::vector<std::unique_ptr<HostPowerModel>> hosts_;
};

}  // namespace ibpower
