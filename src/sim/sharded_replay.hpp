// ShardExecutor — conservative parallel DES over per-shard EventQueues.
//
// A sharded replay partitions the fabric by leaf switch: each shard owns a
// contiguous block of leaves (their ranks, their node uplinks, and both
// directions of every trunk attached to those leaves). All simulation state
// is single-shard-owned; the only cross-shard interaction is a timestamped
// event post whose arrival time is at least `lookahead` after the posting
// event — the physical link latency guarantees it (a message cannot affect
// a remote leaf sooner than two switch traversals).
//
// Synchronization is classic conservative (Chandy-Misra-Bryant style)
// lookahead windows, made barrier-free with published horizons:
//
//   * Each shard publishes a horizon h_i — a promise that every event it
//     will ever execute (and therefore every post it will ever make) lies
//     at sim time >= h_i. h_i is its queue's next_time(); undrained inbox
//     arrivals are covered by a separate inbox_min so the promise is never
//     stale while a post is in flight.
//   * A shard may execute every event strictly below
//     bound = min over other shards of eff(h_j) + lookahead: any event
//     posted to it after it computed the bound arrives at
//     >= eff(h_j) + lookahead >= bound, so a whole batch runs without
//     re-checking the inbox.
//   * One exception: the shard's own posts. A post to a neighbor at time
//     tp can make that neighbor react and post back at tp + lookahead —
//     below a bound that was computed when the neighbor looked idle
//     (horizon infinity). Each cross-shard post therefore caps the
//     poster's *own* batch at tp + lookahead (`self_cap`, owner-thread
//     only: posts from shard i always execute on thread i). Transitive
//     echoes through other shards arrive at >= tp + 2*lookahead, so the
//     single-hop cap covers every chain.
//   * Loop order matters: publish own horizon, read the others (inbox_min
//     before horizon — the release/acquire pairing on inbox_min is what
//     makes a concurrent drain-and-republish safe to observe), then drain,
//     then run the batch.
//
// Termination is detected with monotone posted/drained counters: when every
// effective horizon reads infinity and the global counters are equal across
// a double-read, no event exists and none can be created — every worker
// exits. A malformed-trace deadlock drains the same way and is diagnosed by
// the caller post-join (same contract as the serial engine).
//
// Determinism: the executor never orders events itself — callers schedule
// with explicit (time, tie) keys derived from simulation state (see
// sim/replay.cpp), so each shard pops an identical event sequence no matter
// how many shards run or how their wall-clocks interleave. One shard is the
// degenerate case: the caller just runs its queue directly.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <vector>

#include "sim/des.hpp"
#include "util/time_types.hpp"

namespace ibpower {

class TaskEngine;

/// Resolve a shard-count request against the workload. `requested` <= 0
/// means auto: inside a TaskEngine worker it is the engine's worker count
/// (the elastic mode below shares that pool instead of spawning threads);
/// inside a plain ThreadPool worker it is 1 (nested fan-out would
/// oversubscribe); otherwise the machine's usable cores. Clamped to the
/// number of leaf switches in use — shards own whole leaves — and forced
/// to 1 when the topology has no lookahead (zero hop latency).
[[nodiscard]] int resolve_shard_count(int requested, int nleaves_used,
                                      bool has_lookahead);

/// Per-shard profile counters for the lookahead/shard-size tradeoff
/// (`--shard-profile` in the CLI).
struct ShardProfile {
  std::uint64_t events{0};          // events executed by this shard
  std::uint64_t boundary_posts{0};  // events posted to other shards
  std::uint64_t stall_waits{0};     // horizon-stall loop entries
  std::int64_t stall_ns{0};         // wall-clock nanoseconds spent stalled
};

class ShardExecutor {
 public:
  using Callback = EventQueue::Callback;

  /// `queues[i]` is shard i's event queue (owned by the caller's
  /// ReplayMemory slabs). `lookahead` must be > 0 with more than one shard.
  ShardExecutor(std::vector<EventQueue*> queues, TimeNs lookahead);

  ShardExecutor(const ShardExecutor&) = delete;
  ShardExecutor& operator=(const ShardExecutor&) = delete;

  [[nodiscard]] int nshards() const {
    return static_cast<int>(shards_.size());
  }

  /// Schedule an event with an explicit tie-break key. Same-shard posts go
  /// straight into the queue; cross-shard posts travel through the target's
  /// inbox. Must be called from shard `from`'s worker (or before run()).
  void post(int from, int to, TimeNs t, std::uint64_t tie, Callback cb);

  /// Run all shards to global drain. Spawns nshards()-1 threads and runs
  /// shard 0 on the calling thread; rethrows the first worker exception.
  void run();

  /// Elastic mode: run all shards to global drain *without spawning
  /// threads*. The calling thread round-robins every shard (so it always
  /// makes progress alone — a busy engine degrades to serialized CMB, never
  /// deadlock), and up to nshards()-1 helper tasks are submitted to
  /// `engine`; an idle engine worker that picks one up claims shards via
  /// per-shard try-locks and pumps alongside the caller. This is how
  /// `--jobs` and `--shards` fuse under one pool: a worker that finished
  /// its grid cells steals a pump task and lends its core to the long-pole
  /// replay. Helper tasks that never start before drain (engine saturated)
  /// no-op — the caller waits only for helpers that actually entered.
  /// Results are bit-identical to run(): the pump loop is the same CMB
  /// protocol, only the thread↔shard binding is dynamic.
  void run_elastic(TaskEngine* engine);

  [[nodiscard]] const std::vector<ShardProfile>& profiles() const {
    return profiles_;
  }

 private:
  struct PendingEvent {
    std::int64_t t{0};
    std::uint64_t tie{0};
    Callback cb;
  };
  // Cache-line padded: horizons are read in every other shard's bound
  // computation, so a shard's hot write (horizon) must not share a line
  // with another shard's.
  struct alignas(64) Shard {
    EventQueue* queue{nullptr};
    std::atomic<std::int64_t> horizon{0};
    std::atomic<std::int64_t> inbox_min{0};
    std::atomic<std::uint64_t> posted{0};   // cross-shard posts made by us
    std::atomic<std::uint64_t> drained{0};  // inbox events we consumed
    // Batch cap from our own outbound posts (earliest possible boomerang
    // reply). Written in post() and read in the batch loop — both only by
    // the thread currently pumping this shard, so it is deliberately not
    // atomic: in run() that is the shard's dedicated thread; in
    // run_elastic() exclusivity (and the cross-thread happens-before when
    // pumping migrates) comes from pump_mutex.
    std::int64_t self_cap{0};
    std::mutex inbox_mutex;
    std::vector<PendingEvent> inbox;
    // Elastic mode: whoever holds this pumps the shard; everyone else
    // try-locks and moves on. Also orders the non-atomic per-shard state
    // (self_cap, ShardProfile fields) across migrating pumpers.
    std::mutex pump_mutex;
    // queue->processed() at run start, so events-per-shard survives the
    // dynamic thread↔shard binding (set single-threaded before the run).
    std::uint64_t events_start{0};
  };

  /// A shard's effective horizon as seen by others: min(inbox_min, horizon),
  /// loaded in that order (see the drain-side release sequence).
  [[nodiscard]] std::int64_t effective_horizon(const Shard& s) const {
    const std::int64_t im = s.inbox_min.load(std::memory_order_acquire);
    const std::int64_t h = s.horizon.load(std::memory_order_acquire);
    return im < h ? im : h;
  }

  void drain_inbox(int i, std::vector<PendingEvent>& scratch);
  [[nodiscard]] bool try_terminate();
  /// One CMB protocol iteration for shard i (publish horizon → bound →
  /// drain → batch). Returns true when it executed events; sets
  /// terminated_ when it proves global drain. Caller must hold exclusive
  /// pump rights for shard i (dedicated thread in run(), pump_mutex in
  /// run_elastic()).
  bool pump(int i, std::vector<PendingEvent>& scratch);
  void worker(int i);
  /// Elastic participant: sweep every shard with try-locks until the run
  /// terminates or fails. Never blocks on another participant.
  void participant_loop();
  void record_events();

  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<ShardProfile> profiles_;
  TimeNs lookahead_{};
  std::atomic<bool> terminated_{false};
  std::atomic<bool> failed_{false};
  std::mutex error_mutex_;
  std::exception_ptr error_;
};

}  // namespace ibpower
