#include "sim/replay.hpp"

#include <new>
#include <stdexcept>
#include <string>

#include "check/audit.hpp"
#include "util/task_engine.hpp"

namespace ibpower {

ReplayEngine::ReplayEngine(const Trace* trace, const ReplayOptions& options,
                           ReplayMemory* memory)
    : trace_(trace),
      opt_(options),
      coll_model_(options.fabric.mpi_latency + 4 * options.fabric.hop_latency,
                  options.fabric.link.full_bandwidth_gbps) {
  IBP_EXPECTS(trace != nullptr);
  IBP_EXPECTS(trace->nranks() > 0);
  if (memory == nullptr) {
    owned_memory_ = std::make_unique<ReplayMemory>();
    memory = owned_memory_.get();
  }
  mem_ = memory;
  mem_->begin_run();
  fabric_ = &mem_->acquire_fabric(opt_.fabric,
                                  static_cast<int>(trace->nranks()));

  // --- shard layout --------------------------------------------------------
  // Shards own contiguous blocks of leaf switches: every rank, node uplink
  // and trunk (both directions) of a leaf belongs to exactly one shard, so
  // all per-link and per-rank state is single-shard-owned and the only
  // cross-shard interaction is an event post (DESIGN.md §11).
  const auto& topo = fabric_->topology();
  const int n = trace->nranks();
  const int nleaves_used =
      topo.leaf_of(static_cast<NodeId>(n - 1)) + 1;
  // Shard domains: single leaves on 2-level trees; whole groups on 3-level
  // trees — a group's mid-trunks are reserved by both the climbing (source)
  // and descending (destination) halves of its routes, so a group must
  // never straddle shards.
  const int leaves_per_domain = topo.levels() == 3 ? topo.params().m2 : 1;
  const int ndomains_used =
      (nleaves_used + leaves_per_domain - 1) / leaves_per_domain;
  ctrl_delay_ = 2 * opt_.fabric.hop_latency;
  contention_ = opt_.fabric.contention;
  // Legacy posts (handoff, RTS, CTS) are all >= 2 hops in the future;
  // contention-mode hop handoffs are only one switch out.
  lookahead_ = contention_ ? opt_.fabric.hop_latency : ctrl_delay_;
  nshards_ = resolve_shard_count(opt_.shards, ndomains_used,
                                 lookahead_ > TimeNs::zero());

  arena_ = &mem_->shard_slab(0).arena;
  queue_ = &mem_->shard_slab(0).queue;
  slab_ptrs_ = arena_->allocate_array<ReplayShardSlab*>(
      static_cast<std::size_t>(nshards_));
  shard_queues_ = arena_->allocate_array<EventQueue*>(
      static_cast<std::size_t>(nshards_));
  for (int s = 0; s < nshards_; ++s) {
    ReplayShardSlab& slab = mem_->shard_slab(static_cast<std::size_t>(s));
    slab_ptrs_[s] = &slab;
    shard_queues_[s] = &slab.queue;
  }
  locals_ = static_cast<ShardLocal*>(arena_->allocate(
      static_cast<std::size_t>(nshards_) * sizeof(ShardLocal),
      alignof(ShardLocal)));
  for (int s = 0; s < nshards_; ++s) new (locals_ + s) ShardLocal{};
  rank_shard_ =
      arena_->allocate_array<std::int32_t>(static_cast<std::size_t>(n));
  for (Rank r = 0; r < n; ++r) {
    // Balanced contiguous domain blocks (domain == leaf on 2-level trees).
    rank_shard_[static_cast<std::size_t>(r)] = static_cast<std::int32_t>(
        static_cast<std::int64_t>(topo.leaf_of(r) / leaves_per_domain) *
        nshards_ / ndomains_used);
  }

  const auto nsz = static_cast<std::size_t>(n);
  ranks_ = arena_->allocate_array<RankState>(nsz);
  call_timelines_ = arena_->allocate_array<ArenaVector<MpiCallEvent>>(nsz);
  for (std::size_t i = 0; i < nsz; ++i) {
    new (ranks_ + i) RankState{};
    // Containers that grow while the replay runs must bump their own
    // shard's arena — arenas are single-threaded.
    MonotonicArena* shard_arena = &slab_ptrs_[rank_shard_[i]]->arena;
    ranks_[i].completed_requests.attach(shard_arena);
    ranks_[i].pending_requests.attach(shard_arena);
    new (call_timelines_ + i) ArenaVector<MpiCallEvent>(shard_arena);
    if (opt_.record_call_timeline) {
      // Every MPI call in the stream produces at most one event, so this
      // reserve makes timeline recording bump-free for the whole replay.
      call_timelines_[i].reserve(
          trace_->stream(static_cast<Rank>(i)).size());
    }
  }

  // Collective boards are pre-counted and pre-allocated: they are touched
  // from every shard, so they can never move or be created lazily mid-run.
  nboards_ = 0;
  for (Rank r = 0; r < n; ++r) {
    std::size_t c = 0;
    for (const TraceRecord& rec : trace_->stream(r)) {
      if (std::get_if<CollectiveRecord>(&rec) != nullptr) ++c;
    }
    nboards_ = std::max(nboards_, c);
  }
  boards_ = static_cast<CollectiveBoard*>(arena_->allocate(
      nboards_ * sizeof(CollectiveBoard), alignof(CollectiveBoard)));
  for (std::size_t k = 0; k < nboards_; ++k) {
    new (boards_ + k) CollectiveBoard{};
    boards_[k].entered = arena_->allocate_array<TimeNs>(nsz);
    boards_[k].enter = arena_->allocate_array<TimeNs>(nsz);
  }

  // --- host-side power co-management (DESIGN.md §15) -----------------------
  // Built before the agents so the countdown tee ports exist when each
  // agent binds its power port. Everything below gates on enabled():
  // disabled runs allocate no host state and schedule no host events.
  host_on_ = opt_.host.enabled();
  if (host_on_) {
    if (!opt_.host.valid()) {
      throw std::runtime_error("replay: invalid host power configuration");
    }
    hosts_ = arena_->allocate_array<HostPowerModel*>(nsz);
    for (std::size_t i = 0; i < nsz; ++i) {
      hosts_[i] = &mem_->acquire_host(i, opt_.host);
    }
    if (opt_.host.policy == HostPolicyKind::Countdown &&
        opt_.enable_power_management) {
      host_ports_ = static_cast<HostLinkPort*>(arena_->allocate(
          nsz * sizeof(HostLinkPort), alignof(HostLinkPort)));
      for (std::size_t i = 0; i < nsz; ++i) {
        new (host_ports_ + i) HostLinkPort{};
        host_ports_[i].bind(&fabric_->node_link(static_cast<Rank>(i)),
                            hosts_[i]);
      }
    }
    cap_on_ = opt_.host.power_cap_watts > 0.0;
    cap_epoch_ = opt_.host.cap_epoch;
    if (cap_on_) {
      if (cap_epoch_ <= TimeNs::zero()) {
        throw std::runtime_error("replay: cap epoch must be positive");
      }
      if (nshards_ > 1 && cap_epoch_ < 4 * lookahead_) {
        // The epoch protocol's race freedom needs E/2 >= 2x lookahead:
        // epoch-k publishes (at kE) must be conservatively ordered before
        // every epoch-k read (at kE + E/2), and those reads before the
        // epoch-(k+1) publishes.
        throw std::runtime_error(
            "replay: cap epoch " + std::to_string(cap_epoch_.ns) +
            "ns is below 4x the shard lookahead (" +
            std::to_string(lookahead_.ns) +
            "ns); raise --cap-epoch or run serial");
      }
      const double floor_watts =
          opt_.host.pstates[opt_.host.pstate_count - 1].watts;
      if (opt_.host.power_cap_watts <
          floor_watts * static_cast<double>(n)) {
        throw std::runtime_error(
            "replay: power cap infeasible: " +
            std::to_string(opt_.host.power_cap_watts) + " W < " +
            std::to_string(n) + " ranks at the floor P-state (" +
            std::to_string(floor_watts) + " W each)");
      }
      cap_slots_ = arena_->allocate_array<CapRankSlot>(nsz);
      for (std::size_t i = 0; i < nsz; ++i) new (cap_slots_ + i) CapRankSlot{};
      cap_shards_ = static_cast<CapShardState*>(arena_->allocate(
          static_cast<std::size_t>(nshards_) * sizeof(CapShardState),
          alignof(CapShardState)));
      for (int s = 0; s < nshards_; ++s) {
        new (cap_shards_ + s) CapShardState{};
        MonotonicArena& sa = slab_ptrs_[s]->arena;
        cap_shards_[s].assign = sa.allocate_array<std::uint8_t>(nsz);
        cap_shards_[s].order = sa.allocate_array<std::uint32_t>(nsz);
      }
      // Initial allocation at t = 0: every rank live with zero demand, so
      // ties break on rank order and the assignment is deterministic.
      allocate_power_cap(opt_.host, cap_slots_, nsz, cap_shards_[0].assign,
                         cap_shards_[0].order);
      for (std::size_t i = 0; i < nsz; ++i) {
        hosts_[i]->set_pstate(TimeNs::zero(), cap_shards_[0].assign[i]);
      }
    }
  }

  agents_ = nullptr;
  if (opt_.enable_power_management) {
    IBP_EXPECTS(opt_.ppa.valid());
    agents_count_ = nsz;
    agents_ = arena_->allocate_array<PmpiAgent*>(nsz);
    for (Rank r = 0; r < trace->nranks(); ++r) {
      LinkPowerPort* port =
          host_ports_ != nullptr
              ? static_cast<LinkPowerPort*>(
                    &host_ports_[static_cast<std::size_t>(r)])
              : static_cast<LinkPowerPort*>(&fabric_->node_link(r));
      agents_[static_cast<std::size_t>(r)] = &mem_->acquire_agent(
          static_cast<std::size_t>(r), opt_.ppa, port);
    }
  }
}

bool ReplayEngine::cross_leaf(Rank a, Rank b) const {
  const auto& topo = fabric_->topology();
  return topo.leaf_of(a) != topo.leaf_of(b);
}

void ReplayEngine::sched_rank(Rank r, TimeNs t, EventQueue::Callback cb) {
  shard_queues_[rank_shard_[static_cast<std::size_t>(r)]]->schedule_tie(
      t, rank_tie(r), std::move(cb));
}

void ReplayEngine::post_msg(Rank poster, Rank owner, TimeNs t,
                            EventQueue::Callback cb) {
  const std::uint64_t tie = msg_tie(poster);
  const std::int32_t from = rank_shard_[static_cast<std::size_t>(poster)];
  const std::int32_t to = rank_shard_[static_cast<std::size_t>(owner)];
  if (exec_ != nullptr && from != to) {
    exec_->post(from, to, t, tie, std::move(cb));
  } else {
    shard_queues_[to]->schedule_tie(t, tie, std::move(cb));
  }
}

ReplayEngine::Channel& ReplayEngine::channel(Rank src, Rank dst,
                                             std::int32_t tag) {
  // Channels live in the *destination* shard's slab: matching, parking and
  // draining all happen where the receiver runs.
  ReplayShardSlab& slab = slab_of(dst);
  Channel& ch = slab.channels[channel_key(src, dst, tag)];
  if (!ch.live) {
    ch.live = true;
    ch.queue.attach(&slab.arena);
    ch.waiting.attach(&slab.arena);
    ch.ooo.attach(&slab.arena);
    ++local_of(dst).drain.channels_created;
  }
  return ch;
}

void ReplayEngine::throw_deadlock() const {
  std::string diag = "replay deadlock: ranks not finished:";
  for (Rank r = 0; r < trace_->nranks(); ++r) {
    const auto& st = ranks_[static_cast<std::size_t>(r)];
    if (!st.done) {
      diag += " r" + std::to_string(r) + "@pc" + std::to_string(st.pc);
      if (st.blocked_in_wait) diag += "(wait)";
    }
  }
  throw std::runtime_error(diag);
}

void ReplayEngine::cap_epoch_event(Rank r, std::int64_t k) {
  const auto i = static_cast<std::size_t>(r);
  CapRankSlot& slot = cap_slots_[i];
  slot.epoch = k;
  if (ranks_[i].done) {
    // Freeze the rank's draw at its last assigned P-state and end the
    // chain; the budget keeps funding it (conservative) but its slot never
    // changes again, so allocation inputs stay deterministic.
    slot.retired = true;
    slot.retired_watts =
        opt_.host.pstates[hosts_[i]->pstate()].watts;
    return;
  }
  const TimeNs now = cap_epoch_ * k;
  slot.demand_watts = hosts_[i]->mean_watts(now - cap_epoch_, now);
  const TimeNs half = TimeNs{cap_epoch_.ns / 2};
  sched_rank(r, now + half, [this, r, k] { cap_apply_event(r, k); });
  sched_rank(r, now + cap_epoch_,
             [this, r, k] { cap_epoch_event(r, k + 1); });
}

void ReplayEngine::cap_apply_event(Rank r, std::int64_t k) {
  // A rank that finished between publish and apply still takes its
  // assignment: the host stays powered until the run ends, and the epoch-k
  // allocation already budgeted it at the assigned P-state. Skipping it
  // would leave the package at its old (possibly hotter) operating point
  // and break the cap invariant by the difference.
  const auto i = static_cast<std::size_t>(r);
  CapShardState& cs =
      cap_shards_[static_cast<std::size_t>(rank_shard_[i])];
  if (cs.epoch != k) {
    // First rank of this shard to reach epoch k computes the allocation;
    // it is a pure function of the slot board, and every shard's epoch-k
    // publishes are conservatively ordered before this read (E/2 >= 2x
    // lookahead), so all shards compute the identical assignment.
    allocate_power_cap(opt_.host, cap_slots_,
                       static_cast<std::size_t>(trace_->nranks()), cs.assign,
                       cs.order);
    cs.epoch = k;
  }
  const TimeNs at = cap_epoch_ * k + TimeNs{cap_epoch_.ns / 2};
  hosts_[i]->set_pstate(at, cs.assign[i]);
}

ReplayResult ReplayEngine::run() {
  IBP_EXPECTS(!ran_);
  ran_ = true;
  // At any instant the queue holds at most ~one event per rank (advance /
  // resume / collective-release), so this reserve makes scheduling
  // allocation-free for the whole replay.
  for (int s = 0; s < nshards_; ++s) {
    shard_queues_[s]->reserve(2 * static_cast<std::size_t>(trace_->nranks()) +
                              16);
  }

  std::vector<ShardProfile> profiles;
  if (nshards_ == 1) {
    for (Rank r = 0; r < trace_->nranks(); ++r) {
      sched_rank(r, TimeNs::zero(), [this, r] { advance(r); });
    }
    if (cap_on_) {
      for (Rank r = 0; r < trace_->nranks(); ++r) {
        sched_rank(r, cap_epoch_, [this, r] { cap_epoch_event(r, 1); });
      }
    }
    queue_->run();
    profiles.push_back(ShardProfile{queue_->processed(), 0, 0, 0});
  } else {
    std::vector<EventQueue*> queues(
        shard_queues_, shard_queues_ + static_cast<std::size_t>(nshards_));
    ShardExecutor exec(std::move(queues), lookahead_);
    exec_ = &exec;
    // Initial advances are scheduled before any worker exists, directly
    // into each rank's shard queue, in rank order (identical to serial).
    for (Rank r = 0; r < trace_->nranks(); ++r) {
      sched_rank(r, TimeNs::zero(), [this, r] { advance(r); });
    }
    if (cap_on_) {
      for (Rank r = 0; r < trace_->nranks(); ++r) {
        sched_rank(r, cap_epoch_, [this, r] { cap_epoch_event(r, 1); });
      }
    }
    // Inside a TaskEngine worker the shards share the engine (idle peers
    // steal pump tasks; the caller never spawns threads); standalone
    // replays keep the thread-per-shard executor. Bit-identical either way.
    if (TaskEngine* engine = TaskEngine::current()) {
      exec.run_elastic(engine);
    } else {
      exec.run();
    }
    exec_ = nullptr;
    profiles = exec.profiles();
  }

  // Fold the per-shard counters into the engine totals.
  for (int s = 0; s < nshards_; ++s) {
    done_count_ += locals_[s].done;
    messages_ += locals_[s].messages;
    drain_.accumulate(locals_[s].drain);
  }

  if (done_count_ != trace_->nranks()) throw_deadlock();

  ReplayResult result;
  result.rank_finish.reserve(static_cast<std::size_t>(trace_->nranks()));
  for (Rank r = 0; r < trace_->nranks(); ++r) {
    const auto& st = ranks_[static_cast<std::size_t>(r)];
    result.rank_finish.push_back(st.now);
    result.exec_time = max(result.exec_time, st.now);
  }
  for (std::size_t i = 0; i < agents_count_; ++i) {
    result.agent_total.merge(agents_[i]->stats());
  }
  result.events_processed = 0;
  for (int s = 0; s < nshards_; ++s) {
    result.events_processed += shard_queues_[s]->processed();
  }
  result.messages_sent = messages_;
  result.drain = drain_;
  result.shards_used = nshards_;
  result.shard_profiles = std::move(profiles);
  fabric_->finish(result.exec_time);
  if (host_on_) {
    for (Rank r = 0; r < trace_->nranks(); ++r) {
      hosts_[static_cast<std::size_t>(r)]->finish(result.exec_time);
    }
  }
  IBP_AUDIT(if (const std::string err = audit_drain(); !err.empty())
                IBP_AUDIT_FAIL(err.c_str()));
  return result;
}

std::string ReplayEngine::audit_drain() const {
  if (!ran_) return "replay audit: run() has not been called";
  if (done_count_ != trace_->nranks()) {
    return "replay audit: " +
           std::to_string(trace_->nranks() - done_count_) +
           " rank(s) not done at drain";
  }
  // Message conservation: a message still queued (or a receive still
  // waiting, or an arrival still parked out-of-order) at drain means a send
  // was never consumed — or consumed twice, leaving a later receive
  // unmatched.
  std::string err;
  for (int s = 0; s < nshards_ && err.empty(); ++s) {
    slab_ptrs_[s]->channels.for_each(
        [&err](std::uint64_t key, const Channel& ch) {
          if (!err.empty() || !ch.live) return;
          if (!ch.queue.empty()) {
            err = "replay audit: " + std::to_string(ch.queue.size()) +
                  " in-flight message(s) at drain on channel key " +
                  std::to_string(key);
          } else if (!ch.waiting.empty()) {
            err = "replay audit: " + std::to_string(ch.waiting.size()) +
                  " receive(s) still waiting at drain on channel key " +
                  std::to_string(key);
          } else if (!ch.ooo.empty()) {
            err = "replay audit: " + std::to_string(ch.ooo.size()) +
                  " arrival(s) still parked out-of-order at drain on channel "
                  "key " +
                  std::to_string(key);
          }
        });
  }
  if (!err.empty()) return err;
  for (Rank r = 0; r < trace_->nranks(); ++r) {
    const auto& st = ranks_[static_cast<std::size_t>(r)];
    if (!st.done) {
      return "replay audit: rank " + std::to_string(r) + " not done";
    }
    if (st.blocked_in_wait) {
      return "replay audit: rank " + std::to_string(r) +
             " still blocked in Wait at drain";
    }
    if (!st.pending_requests.empty()) {
      return "replay audit: rank " + std::to_string(r) +
             " has pending request(s) at drain";
    }
    if (!st.completed_requests.empty()) {
      return "replay audit: rank " + std::to_string(r) +
             " has unretired completed request(s) at drain";
    }
    if (st.now < TimeNs::zero()) {
      return "replay audit: rank " + std::to_string(r) +
             " finished at negative time";
    }
    // Non-negative idle intervals: enter/exit pairs are ordered and the gap
    // between consecutive calls on a rank never goes backwards.
    const auto& timeline = call_timelines_[static_cast<std::size_t>(r)];
    for (std::size_t i = 0; i < timeline.size(); ++i) {
      if (timeline[i].exit < timeline[i].enter) {
        return "replay audit: rank " + std::to_string(r) + " call " +
               std::to_string(i) + " exits before it enters";
      }
      if (i > 0 && timeline[i].enter < timeline[i - 1].exit) {
        return "replay audit: rank " + std::to_string(r) + " call " +
               std::to_string(i) + " begins a negative idle interval";
      }
    }
  }
  // Drain-statistics conservation: the always-compiled telemetry counters
  // (drain_stats()) must agree with the drained-channel state verified
  // above — every enqueued message matched, every parked receive satisfied,
  // every blocked rendezvous sender resumed, and the protocol split summing
  // to the message count. This keeps release-build telemetry and the audit
  // recomputation in lockstep in every build mode.
  if (drain_.messages_enqueued != drain_.messages_matched) {
    return "replay audit: drain stats: " +
           std::to_string(drain_.messages_enqueued) +
           " message(s) enqueued but " +
           std::to_string(drain_.messages_matched) + " matched";
  }
  if (drain_.recvs_waited != drain_.recvs_satisfied) {
    return "replay audit: drain stats: " + std::to_string(drain_.recvs_waited) +
           " receive(s) parked but " + std::to_string(drain_.recvs_satisfied) +
           " satisfied";
  }
  if (drain_.rendezvous_blocked != drain_.rendezvous_resumed) {
    return "replay audit: drain stats: " +
           std::to_string(drain_.rendezvous_blocked) +
           " rendezvous sender(s) blocked but " +
           std::to_string(drain_.rendezvous_resumed) + " resumed";
  }
  if (drain_.sends_eager + drain_.sends_rendezvous != messages_) {
    return "replay audit: drain stats: protocol split " +
           std::to_string(drain_.sends_eager) + "+" +
           std::to_string(drain_.sends_rendezvous) +
           " does not sum to message count " + std::to_string(messages_);
  }
  // Host FSM legality: every rank's mode schedule must be a legal
  // Active/Sleep/Transition sequence (host co-management runs only).
  if (hosts_ != nullptr) {
    for (Rank r = 0; r < trace_->nranks(); ++r) {
      if (const std::string herr =
              hosts_[static_cast<std::size_t>(r)]->validate_schedule();
          !herr.empty()) {
        return "replay audit: rank " + std::to_string(r) +
               " host schedule: " + herr;
      }
    }
  }
  return {};
}

void ReplayEngine::advance(Rank r) {
  auto& st = ranks_[static_cast<std::size_t>(r)];
  const auto& stream = trace_->stream(r);
  if (st.pc >= stream.size()) {
    if (!st.done) {
      st.done = true;
      ++local_of(r).done;
      if (opt_.enable_power_management) {
        agents_[static_cast<std::size_t>(r)]->finish();
      }
    }
    return;
  }

  const TraceRecord& rec = stream[st.pc];
  if (const auto* c = std::get_if<ComputeRecord>(&rec)) {
    do_compute(r, *c);
    return;
  }

  // MPI call: interception + PPA overheads are charged before the call's
  // network activity (the PMPI wrapper runs first).
  const MpiCall call = call_of(rec);
  TimeNs enter = st.now;
  if (host_on_) {
    // A sleeping host must wake before the PMPI wrapper can run: the
    // on-demand wake penalty (zero when the prediction held) shifts the
    // whole call — purely rank-local, so shard-count-invariant.
    enter += hosts_[static_cast<std::size_t>(r)]->on_call_arrival(enter);
  }
  TimeNs t = enter;
  if (opt_.enable_power_management) {
    t += agents_[static_cast<std::size_t>(r)]->on_call_enter(call, enter);
  }

  // Single jump on the alternative index instead of a serial get_if chain —
  // this dispatch runs once per trace record and showed up in the 128-rank
  // profile. The get_if results cannot be null: the index picked the case.
  switch (rec.index()) {
    case 1: do_send(r, *std::get_if<SendRecord>(&rec), enter, t); break;
    case 2: do_recv(r, *std::get_if<RecvRecord>(&rec), enter, t); break;
    case 3: do_sendrecv(r, *std::get_if<SendrecvRecord>(&rec), enter, t); break;
    case 4:
      do_collective(r, *std::get_if<CollectiveRecord>(&rec), enter, t);
      break;
    case 5: do_isend(r, *std::get_if<IsendRecord>(&rec), enter, t); break;
    case 6: do_irecv(r, *std::get_if<IrecvRecord>(&rec), enter, t); break;
    case 7: do_wait(r, *std::get_if<WaitRecord>(&rec), enter, t); break;
    case 8: do_waitall(r, enter, t); break;
    default: break;  // index 0 (compute) handled above
  }
}

void ReplayEngine::do_compute(Rank r, const ComputeRecord& rec) {
  auto& st = ranks_[static_cast<std::size_t>(r)];
  ++st.pc;
  TimeNs dur = rec.duration;
  if (host_on_) {
    // Cap-layer DVFS: a burst runs at the P-state speed in effect when it
    // starts (exact identity at speed 1.0 — no rounding perturbation).
    const double speed = hosts_[static_cast<std::size_t>(r)]->speed();
    if (speed != 1.0) dur = dur * (1.0 / speed);
  }
  const TimeNs wake = st.now + dur;
  sched_rank(r, wake, [this, r, wake] {
    ranks_[static_cast<std::size_t>(r)].now = wake;
    advance(r);
  });
}

void ReplayEngine::finish_call(Rank r, MpiCall call, TimeNs enter,
                               TimeNs exit) {
  auto& st = ranks_[static_cast<std::size_t>(r)];
  // Calls occupy non-negative spans and never complete in this rank's past.
  IBP_AUDIT_CHECK(exit >= enter && enter >= TimeNs::zero());
  IBP_AUDIT_CHECK(exit >= st.now);
  if (opt_.enable_power_management) {
    agents_[static_cast<std::size_t>(r)]->on_call_exit(call, exit);
  }
  if (opt_.record_call_timeline) {
    call_timelines_[static_cast<std::size_t>(r)].push_back(
        {call, enter, exit});
  }
  ++st.pc;
  sched_rank(r, exit, [this, r, exit] {
    ranks_[static_cast<std::size_t>(r)].now = exit;
    advance(r);
  });
}

void ReplayEngine::resume_blocked_recv(const WaitingRecv& w, TimeNs exit) {
  // Capture only the three WaitingRecv fields finish_call needs — the full
  // struct would push the capture past the inline-callback capacity.
  const Rank dst = w.dst;
  const MpiCall call = w.call;
  const TimeNs enter = w.enter;
  sched_rank(dst, exit, [this, dst, call, enter, exit] {
    finish_call(dst, call, enter, exit);
  });
}

void ReplayEngine::satisfy_waiting(Channel& ch, TimeNs delivery) {
  IBP_ASSERT(!ch.waiting.empty());
  const WaitingRecv w = ch.waiting.front();
  ch.waiting.pop_front();
  ++local_of(w.dst).drain.recvs_satisfied;
  if (w.nonblocking) {
    complete_request(w.dst, w.request, max(w.min_exit, delivery));
  } else {
    resume_blocked_recv(w, max(w.min_exit, delivery));
  }
}

void ReplayEngine::deliver_eager(Rank src, Rank dst, std::int32_t tag,
                                 TimeNs delivery) {
  Channel& ch = channel(src, dst, tag);
  if (!ch.waiting.empty()) {
    satisfy_waiting(ch, delivery);
  } else {
    ch.queue.push_back(ChannelMsg{false, delivery, 0, false, -1, 0, {}});
    ++local_of(dst).drain.messages_enqueued;
  }
}

// --- cross-leaf message plumbing (split-phase, shard-safe) ------------------

TimeNs ReplayEngine::send_cross_eager(Rank src, Rank dst, std::int32_t tag,
                                      Bytes bytes, TimeNs t) {
  const std::uint32_t seq =
      slab_of(src).send_seq[channel_key(src, dst, tag)]++;
  if (contention_) {
    return launch_contended(src, dst, bytes, t, tag, seq, /*eager=*/true,
                            WaitingRecv{});
  }
  const auto sx = fabric_->unicast_source(src, dst, bytes, t);
  post_msg(src, dst, sx.handoff,
           [this, src, dst, tag, seq, bytes, top = sx.top,
            handoff = sx.handoff] {
             const auto tx = fabric_->unicast_dest(src, dst, bytes, top,
                                                   handoff);
             channel_arrive(src, dst, tag, seq,
                            ChannelMsg{false, tx.delivery, 0, false, -1, 0, {}},
                            handoff);
           });
  return sx.sender_free;
}

void ReplayEngine::send_cross_rendezvous(Rank src, Rank dst, std::int32_t tag,
                                         Bytes bytes, TimeNs t, TimeNs enter,
                                         bool nonblocking, RequestId request) {
  ReplayShardSlab& slab = slab_of(src);
  const std::uint32_t seq = slab.send_seq[channel_key(src, dst, tag)]++;
  auto* rts = new (slab.arena.allocate(sizeof(RtsMsg), alignof(RtsMsg)))
      RtsMsg{src, dst, tag, seq, t + ctrl_delay_,
             ChannelMsg{true, t, bytes, nonblocking, src, request, enter}};
  post_msg(src, dst, rts->at, [this, rts] {
    channel_arrive(rts->src, rts->dst, rts->tag, rts->seq, rts->msg, rts->at);
  });
}

void ReplayEngine::channel_arrive(Rank src, Rank dst, std::int32_t tag,
                                  std::uint32_t seq, const ChannelMsg& m,
                                  TimeNs now) {
  Channel& ch = channel(src, dst, tag);
  if (seq != ch.expected_seq) {
    // Early arrival (cross-shard paths have per-message latencies): park
    // sorted until the sequence gap closes — MPI non-overtaking.
    IBP_ASSERT(seq > ch.expected_seq);
    std::size_t pos = ch.ooo.size();
    while (pos > 0 && ch.ooo[pos - 1].seq > seq) --pos;
    ch.ooo.insert_at(pos, ReplayPendingArrival{seq, m});
    return;
  }
  admit_arrival(ch, src, dst, m, now);
  ++ch.expected_seq;
  while (!ch.ooo.empty() && ch.ooo[0].seq == ch.expected_seq) {
    const ReplayPendingArrival next = ch.ooo[0];
    ch.ooo.erase_at(0);
    admit_arrival(ch, src, dst, next.msg, now);
    ++ch.expected_seq;
  }
}

void ReplayEngine::admit_arrival(Channel& ch, Rank src, Rank dst,
                                 const ChannelMsg& m, TimeNs now) {
  (void)src;
  if (!m.rendezvous) {
    if (!ch.waiting.empty()) {
      satisfy_waiting(ch, m.ready_or_delivery);
    } else {
      ch.queue.push_back(m);
      ++local_of(dst).drain.messages_enqueued;
    }
    return;
  }
  // RTS: the receive may already be parked here — match it and call the
  // sender back; otherwise park the announce like any channel message.
  if (!ch.waiting.empty()) {
    const WaitingRecv w = ch.waiting.front();
    ch.waiting.pop_front();
    ++local_of(w.dst).drain.recvs_satisfied;
    post_cts(m, w, now);
  } else {
    ch.queue.push_back(m);
    ++local_of(dst).drain.messages_enqueued;
  }
}

void ReplayEngine::post_cts(const ChannelMsg& m, const WaitingRecv& w,
                            TimeNs t_match) {
  ReplayShardSlab& slab = slab_of(w.dst);
  auto* x = new (slab.arena.allocate(sizeof(XferMsg), alignof(XferMsg)))
      XferMsg{m.src,         m.bytes, m.src_nonblocking, m.src_request,
              m.send_enter,  w,       t_match + ctrl_delay_,
              0,             TimeNs{}};
  post_msg(w.dst, m.src, x->at, [this, x] { handle_cts(x); });
}

void ReplayEngine::handle_cts(XferMsg* x) {
  // Source shard: the receive is posted, start the transfer. The source
  // half reserves now; the destination half is an event at the handoff.
  const Rank src = x->src;
  if (contention_) {
    const TimeNs sender_free = launch_contended(
        src, x->w.dst, x->bytes, x->at, 0, 0, /*eager=*/false, x->w);
    if (x->src_nonblocking) {
      complete_request(src, x->src_request, sender_free);
    } else {
      ++local_of(src).drain.rendezvous_resumed;
      const TimeNs enter = x->send_enter;
      const TimeNs free = sender_free;
      sched_rank(src, free, [this, src, enter, free] {
        finish_call(src, MpiCall::Send, enter, free);
      });
    }
    return;
  }
  const auto sx = fabric_->unicast_source(src, x->w.dst, x->bytes, x->at);
  if (x->src_nonblocking) {
    complete_request(src, x->src_request, sx.sender_free);
  } else {
    ++local_of(src).drain.rendezvous_resumed;
    const TimeNs enter = x->send_enter;
    const TimeNs free = sx.sender_free;
    sched_rank(src, free, [this, src, enter, free] {
      finish_call(src, MpiCall::Send, enter, free);
    });
  }
  x->top = sx.top;
  x->handoff = sx.handoff;
  post_msg(src, x->w.dst, sx.handoff, [this, x] { handle_dest_half2(x); });
}

void ReplayEngine::handle_dest_half2(XferMsg* x) {
  // Destination shard: land the transfer and complete the receiver.
  const auto tx =
      fabric_->unicast_dest(x->src, x->w.dst, x->bytes, x->top, x->handoff);
  const WaitingRecv& w = x->w;
  const TimeNs done = max(w.min_exit, tx.delivery);
  if (w.nonblocking) {
    complete_request(w.dst, w.request, done);
  } else {
    resume_blocked_recv(w, done);
  }
}

TimeNs ReplayEngine::launch_contended(Rank src, Rank dst, Bytes bytes,
                                      TimeNs t, std::int32_t tag,
                                      std::uint32_t seq, bool eager,
                                      const WaitingRecv& w) {
  const SwitchId top = fabric_->pick_route(src, dst, bytes, t);
  const auto h0 = fabric_->reserve_hop(src, dst, bytes, top, 0, t);
  ReplayShardSlab& slab = slab_of(src);
  auto* m = new (slab.arena.allocate(sizeof(HopMsg), alignof(HopMsg)))
      HopMsg{src, dst, bytes, top, 1, tag, seq, eager, h0.next_head, w};
  post_msg(src, src, m->head, [this, m] { hop_event(m); });
  return h0.end;
}

void ReplayEngine::hop_event(HopMsg* m) {
  const int count = fabric_->route_links(m->src, m->dst);
  const auto hx =
      fabric_->reserve_hop(m->src, m->dst, m->bytes, m->top, m->hop, m->head);
  if (m->hop + 1 < count) {
    // This event runs in the shard of the current hop's owner, which is the
    // required poster identity for the next hop's tie key.
    const Rank poster = m->hop < count / 2 ? m->src : m->dst;
    m->hop += 1;
    m->head = hx.next_head;
    const Rank owner = m->hop < count / 2 ? m->src : m->dst;
    post_msg(poster, owner, m->head, [this, m] { hop_event(m); });
    return;
  }
  // Final hop: next_head carries the delivery time (+hop latency +MPI).
  if (m->eager) {
    channel_arrive(m->src, m->dst, m->tag, m->seq,
                   ChannelMsg{false, hx.next_head, 0, false, -1, 0, {}},
                   hx.next_head);
    return;
  }
  const WaitingRecv w = m->w;
  const TimeNs done = max(w.min_exit, hx.next_head);
  if (w.nonblocking) {
    complete_request(w.dst, w.request, done);
  } else {
    resume_blocked_recv(w, done);
  }
}

TimeNs ReplayEngine::serve_rendezvous_inline(const ChannelMsg& m, Rank dst,
                                             TimeNs t) {
  const auto tx =
      fabric_->unicast(m.src, dst, m.bytes, max(m.ready_or_delivery, t));
  if (m.src_nonblocking) {
    complete_request(m.src, m.src_request, tx.sender_free);
  } else {
    // Resume the blocked sender (same leaf, so same shard: inline).
    ++local_of(m.src).drain.rendezvous_resumed;
    const Rank src = m.src;
    const TimeNs enter = m.send_enter;
    const TimeNs free = tx.sender_free;
    sched_rank(src, free, [this, src, enter, free] {
      finish_call(src, MpiCall::Send, enter, free);
    });
  }
  return tx.delivery;
}

void ReplayEngine::complete_request(Rank r, RequestId req, TimeNs when) {
  auto& st = ranks_[static_cast<std::size_t>(r)];
  st.pending_requests.erase(req);
  st.completed_requests.insert_or_assign(req, when);
  if (st.blocked_in_wait) try_resume_wait(r);
}

void ReplayEngine::try_resume_wait(Rank r) {
  auto& st = ranks_[static_cast<std::size_t>(r)];
  IBP_ASSERT(st.blocked_in_wait);
  TimeNs exit = st.wait_t;
  if (st.wait_is_waitall) {
    if (!st.pending_requests.empty()) return;
    st.completed_requests.for_each(
        [&exit](RequestId, TimeNs when) { exit = max(exit, when); });
    st.completed_requests.clear();
  } else {
    const TimeNs* when = st.completed_requests.find(st.wait_request);
    if (when == nullptr) return;
    exit = max(exit, *when);
    st.completed_requests.erase(st.wait_request);
  }
  st.blocked_in_wait = false;
  finish_call(r, st.wait_is_waitall ? MpiCall::Waitall : MpiCall::Wait,
              st.wait_enter, exit);
}

void ReplayEngine::do_send(Rank r, const SendRecord& rec, TimeNs enter,
                           TimeNs t) {
  ++local_of(r).messages;
  if (cross_leaf(r, rec.peer)) {
    if (rec.bytes <= opt_.eager_threshold) {
      ++local_of(r).drain.sends_eager;
      const TimeNs sender_free =
          send_cross_eager(r, rec.peer, rec.tag, rec.bytes, t);
      finish_call(r, MpiCall::Send, enter, max(t, sender_free));
    } else {
      // Cross-leaf rendezvous always goes through RTS/CTS — the sender
      // cannot peek at the remote channel, so it blocks until called back.
      ++local_of(r).drain.sends_rendezvous;
      ++local_of(r).drain.rendezvous_blocked;
      send_cross_rendezvous(r, rec.peer, rec.tag, rec.bytes, t, enter, false,
                            0);
    }
    return;
  }

  if (rec.bytes <= opt_.eager_threshold) {
    ++local_of(r).drain.sends_eager;
    const auto tx = fabric_->unicast(r, rec.peer, rec.bytes, t);
    deliver_eager(r, rec.peer, rec.tag, tx.delivery);
    finish_call(r, MpiCall::Send, enter, max(t, tx.sender_free));
    return;
  }

  // Same-leaf rendezvous: transfer begins once the receive is posted.
  ++local_of(r).drain.sends_rendezvous;
  Channel& ch = channel(r, rec.peer, rec.tag);
  if (!ch.waiting.empty()) {
    const WaitingRecv w = ch.waiting.front();
    ch.waiting.pop_front();
    ++local_of(w.dst).drain.recvs_satisfied;
    const auto tx = fabric_->unicast(r, rec.peer, rec.bytes, max(t, w.posted));
    if (w.nonblocking) {
      complete_request(w.dst, w.request, max(w.min_exit, tx.delivery));
    } else {
      resume_blocked_recv(w, max(w.min_exit, tx.delivery));
    }
    finish_call(r, MpiCall::Send, enter, max(t, tx.sender_free));
  } else {
    // Sender stays blocked; the matching recv resumes it. Everything the
    // resume path needs (including the call-enter time) rides in the
    // channel entry itself.
    ch.queue.push_back(ChannelMsg{true, t, rec.bytes, false, r, 0, enter});
    ++local_of(rec.peer).drain.messages_enqueued;
    ++local_of(r).drain.rendezvous_blocked;
  }
}

void ReplayEngine::do_isend(Rank r, const IsendRecord& rec, TimeNs enter,
                            TimeNs t) {
  ++local_of(r).messages;
  auto& st = ranks_[static_cast<std::size_t>(r)];
  if (cross_leaf(r, rec.peer)) {
    if (rec.bytes <= opt_.eager_threshold) {
      ++local_of(r).drain.sends_eager;
      const TimeNs sender_free =
          send_cross_eager(r, rec.peer, rec.tag, rec.bytes, t);
      st.completed_requests.insert_or_assign(rec.request, max(t, sender_free));
    } else {
      ++local_of(r).drain.sends_rendezvous;
      send_cross_rendezvous(r, rec.peer, rec.tag, rec.bytes, t, enter, true,
                            rec.request);
      st.pending_requests.insert(rec.request);
    }
    finish_call(r, MpiCall::Isend, enter, t);
    return;
  }

  if (rec.bytes <= opt_.eager_threshold) {
    ++local_of(r).drain.sends_eager;
    const auto tx = fabric_->unicast(r, rec.peer, rec.bytes, t);
    deliver_eager(r, rec.peer, rec.tag, tx.delivery);
    st.completed_requests.insert_or_assign(rec.request, max(t, tx.sender_free));
    finish_call(r, MpiCall::Isend, enter, t);
    return;
  }
  // Rendezvous Isend: if the receive is already posted, transfer now; the
  // call still returns immediately and the request completes at injection.
  ++local_of(r).drain.sends_rendezvous;
  Channel& ch = channel(r, rec.peer, rec.tag);
  if (!ch.waiting.empty()) {
    const WaitingRecv w = ch.waiting.front();
    ch.waiting.pop_front();
    ++local_of(w.dst).drain.recvs_satisfied;
    const auto tx = fabric_->unicast(r, rec.peer, rec.bytes, max(t, w.posted));
    if (w.nonblocking) {
      complete_request(w.dst, w.request, max(w.min_exit, tx.delivery));
    } else {
      resume_blocked_recv(w, max(w.min_exit, tx.delivery));
    }
    st.completed_requests.insert_or_assign(rec.request, max(t, tx.sender_free));
  } else {
    ch.queue.push_back(ChannelMsg{true, t, rec.bytes, true, r, rec.request,
                                  enter});
    ++local_of(rec.peer).drain.messages_enqueued;
    st.pending_requests.insert(rec.request);
  }
  finish_call(r, MpiCall::Isend, enter, t);
}

void ReplayEngine::do_irecv(Rank r, const IrecvRecord& rec, TimeNs enter,
                            TimeNs t) {
  auto& st = ranks_[static_cast<std::size_t>(r)];
  Channel& ch = channel(rec.peer, r, rec.tag);
  if (!ch.queue.empty()) {
    const ChannelMsg m = ch.queue.front();
    ch.queue.pop_front();
    ++local_of(r).drain.messages_matched;
    if (!m.rendezvous) {
      st.completed_requests.insert_or_assign(rec.request,
                                             max(t, m.ready_or_delivery));
    } else if (!cross_leaf(rec.peer, r)) {
      const TimeNs delivery = serve_rendezvous_inline(m, r, t);
      st.completed_requests.insert_or_assign(rec.request, max(t, delivery));
    } else {
      // Parked RTS from another leaf: call the sender back; the request
      // completes when the transfer lands (DestHalf2).
      post_cts(m, WaitingRecv{r, MpiCall::Irecv, t, enter, t, true,
                              rec.request},
               t);
      st.pending_requests.insert(rec.request);
    }
  } else {
    ch.waiting.push_back(
        WaitingRecv{r, MpiCall::Irecv, t, enter, t, true, rec.request});
    ++local_of(r).drain.recvs_waited;
    st.pending_requests.insert(rec.request);
  }
  finish_call(r, MpiCall::Irecv, enter, t);
}

void ReplayEngine::do_wait(Rank r, const WaitRecord& rec, TimeNs enter,
                           TimeNs t) {
  auto& st = ranks_[static_cast<std::size_t>(r)];
  if (const TimeNs* when = st.completed_requests.find(rec.request)) {
    const TimeNs exit = max(t, *when);
    st.completed_requests.erase(rec.request);
    finish_call(r, MpiCall::Wait, enter, exit);
    return;
  }
  IBP_ASSERT(st.pending_requests.contains(rec.request));  // else trace bug
  st.blocked_in_wait = true;
  st.wait_is_waitall = false;
  st.wait_request = rec.request;
  st.wait_enter = enter;
  st.wait_t = t;
}

void ReplayEngine::do_waitall(Rank r, TimeNs enter, TimeNs t) {
  auto& st = ranks_[static_cast<std::size_t>(r)];
  if (st.pending_requests.empty()) {
    TimeNs exit = t;
    st.completed_requests.for_each(
        [&exit](RequestId, TimeNs when) { exit = max(exit, when); });
    st.completed_requests.clear();
    finish_call(r, MpiCall::Waitall, enter, exit);
    return;
  }
  st.blocked_in_wait = true;
  st.wait_is_waitall = true;
  st.wait_enter = enter;
  st.wait_t = t;
}

void ReplayEngine::do_recv(Rank r, const RecvRecord& rec, TimeNs enter,
                           TimeNs t) {
  Channel& ch = channel(rec.peer, r, rec.tag);
  if (!ch.queue.empty()) {
    const ChannelMsg m = ch.queue.front();
    ch.queue.pop_front();
    ++local_of(r).drain.messages_matched;
    if (!m.rendezvous) {
      finish_call(r, MpiCall::Recv, enter, max(t, m.ready_or_delivery));
    } else if (!cross_leaf(rec.peer, r)) {
      const TimeNs delivery = serve_rendezvous_inline(m, r, t);
      finish_call(r, MpiCall::Recv, enter, max(t, delivery));
    } else {
      // Parked RTS from another leaf: call the sender back and stay
      // blocked; DestHalf2 resumes this rank at delivery.
      post_cts(m, WaitingRecv{r, MpiCall::Recv, t, enter, t, false, 0}, t);
    }
    return;
  }
  ch.waiting.push_back(WaitingRecv{r, MpiCall::Recv, t, enter, t, false, 0});
  ++local_of(r).drain.recvs_waited;
}

void ReplayEngine::do_sendrecv(Rank r, const SendrecvRecord& rec, TimeNs enter,
                               TimeNs t) {
  ++local_of(r).messages;
  ++local_of(r).drain.sends_eager;
  // Send half: always eager (MPI_Sendrecv cannot deadlock).
  TimeNs send_free;
  if (cross_leaf(r, rec.send_peer)) {
    send_free = send_cross_eager(r, rec.send_peer, rec.tag, rec.bytes, t);
  } else {
    const auto tx = fabric_->unicast(r, rec.send_peer, rec.bytes, t);
    deliver_eager(r, rec.send_peer, rec.tag, tx.delivery);
    send_free = tx.sender_free;
  }
  const TimeNs send_done = max(t, send_free);

  // Recv half.
  Channel& ch = channel(rec.recv_peer, r, rec.tag);
  if (!ch.queue.empty()) {
    const ChannelMsg m = ch.queue.front();
    ch.queue.pop_front();
    ++local_of(r).drain.messages_matched;
    if (!m.rendezvous) {
      finish_call(r, MpiCall::Sendrecv, enter,
                  max(send_done, m.ready_or_delivery));
      return;
    }
    if (!cross_leaf(rec.recv_peer, r)) {
      // A large Isend can match a Sendrecv's receive half.
      const TimeNs delivery = serve_rendezvous_inline(m, r, t);
      finish_call(r, MpiCall::Sendrecv, enter, max(send_done, delivery));
      return;
    }
    post_cts(m, WaitingRecv{r, MpiCall::Sendrecv, t, enter, send_done, false,
                            0},
             t);
    return;
  }
  ch.waiting.push_back(
      WaitingRecv{r, MpiCall::Sendrecv, t, enter, send_done, false, 0});
  ++local_of(r).drain.recvs_waited;
}

void ReplayEngine::do_collective(Rank r, const CollectiveRecord& rec,
                                 TimeNs enter, TimeNs t) {
  auto& st = ranks_[static_cast<std::size_t>(r)];
  const auto k = static_cast<std::size_t>(st.coll_index++);
  IBP_ASSERT(k < nboards_);
  CollectiveBoard& board = boards_[k];

  // Ensure this rank's uplink is awake for the collective; a lane-wake
  // penalty delays this rank's effective participation.
  const TimeNs penalty = fabric_->wake_node_link(r, t);
  const TimeNs eff = t + penalty;
  board.entered[static_cast<std::size_t>(r)] = eff;
  board.enter[static_cast<std::size_t>(r)] = enter;
  // CAS-max; relaxed is enough — the turnstile below publishes it.
  std::int64_t cur = board.max_enter.load(std::memory_order_relaxed);
  while (eff.ns > cur &&
         !board.max_enter.compare_exchange_weak(cur, eff.ns,
                                                std::memory_order_relaxed)) {
  }

  const int prev = board.count.fetch_add(1, std::memory_order_acq_rel);
  if (prev + 1 == trace_->nranks()) {
    // Last entrant: the completion time is a pure function of the max entry
    // (commutative), so it is identical no matter which shard computes it.
    const TimeNs completion =
        TimeNs{board.max_enter.load(std::memory_order_relaxed)} +
        coll_model_.cost(rec.call, rec.bytes,
                         static_cast<int>(trace_->nranks()));
    for (Rank q = 0; q < trace_->nranks(); ++q) {
      post_collective_finish(r, q, k, completion);
    }
  }
}

void ReplayEngine::post_collective_finish(Rank poster, Rank q,
                                          std::size_t board,
                                          TimeNs completion) {
  const std::uint64_t tie =
      kTieCollective | (static_cast<std::uint64_t>(board) << 40) |
      static_cast<std::uint64_t>(static_cast<std::uint32_t>(q));
  const std::int32_t from = rank_shard_[static_cast<std::size_t>(poster)];
  const std::int32_t to = rank_shard_[static_cast<std::size_t>(q)];
  EventQueue::Callback cb = [this, board, q, completion] {
    finish_collective(board, q, completion);
  };
  if (exec_ != nullptr && from != to) {
    exec_->post(from, to, completion, tie, std::move(cb));
  } else {
    shard_queues_[to]->schedule_tie(completion, tie, std::move(cb));
  }
}

void ReplayEngine::finish_collective(std::size_t board, Rank q,
                                     TimeNs completion) {
  CollectiveBoard& b = boards_[board];
  auto& st = ranks_[static_cast<std::size_t>(q)];
  // The rank's pc still points at its collective record (finish_call has
  // not run yet), so the call kind is recoverable without carrying it.
  const auto* rec = std::get_if<CollectiveRecord>(&trace_->stream(q)[st.pc]);
  IBP_ASSERT(rec != nullptr);
  fabric_->occupy_node_link(q, b.entered[static_cast<std::size_t>(q)],
                            completion);
  finish_call(q, rec->call, b.enter[static_cast<std::size_t>(q)], completion);
}

}  // namespace ibpower
