#include "sim/replay.hpp"

#include <new>
#include <stdexcept>
#include <string>

#include "check/audit.hpp"

namespace ibpower {

ReplayEngine::ReplayEngine(const Trace* trace, const ReplayOptions& options,
                           ReplayMemory* memory)
    : trace_(trace),
      opt_(options),
      coll_model_(options.fabric.mpi_latency + 4 * options.fabric.hop_latency,
                  options.fabric.link.full_bandwidth_gbps) {
  IBP_EXPECTS(trace != nullptr);
  IBP_EXPECTS(trace->nranks() > 0);
  if (memory == nullptr) {
    owned_memory_ = std::make_unique<ReplayMemory>();
    memory = owned_memory_.get();
  }
  mem_ = memory;
  mem_->begin_run();
  arena_ = &mem_->arena();
  queue_ = &mem_->queue();
  fabric_ = &mem_->acquire_fabric(opt_.fabric,
                                  static_cast<int>(trace->nranks()));

  const auto n = static_cast<std::size_t>(trace->nranks());
  ranks_ = arena_->allocate_array<RankState>(n);
  call_timelines_ = arena_->allocate_array<ArenaVector<MpiCallEvent>>(n);
  for (std::size_t i = 0; i < n; ++i) {
    new (ranks_ + i) RankState{};
    ranks_[i].completed_requests.attach(arena_);
    ranks_[i].pending_requests.attach(arena_);
    new (call_timelines_ + i) ArenaVector<MpiCallEvent>(arena_);
    if (opt_.record_call_timeline) {
      // Every MPI call in the stream produces at most one event, so this
      // reserve makes timeline recording bump-free for the whole replay.
      call_timelines_[i].reserve(
          trace_->stream(static_cast<Rank>(i)).size());
    }
  }
  collectives_.attach(arena_);

  agents_ = nullptr;
  if (opt_.enable_power_management) {
    IBP_EXPECTS(opt_.ppa.valid());
    agents_count_ = n;
    agents_ = arena_->allocate_array<PmpiAgent*>(n);
    for (Rank r = 0; r < trace->nranks(); ++r) {
      agents_[static_cast<std::size_t>(r)] = &mem_->acquire_agent(
          static_cast<std::size_t>(r), opt_.ppa, &fabric_->node_link(r));
    }
  }
}

ReplayEngine::Channel& ReplayEngine::channel(Rank src, Rank dst,
                                             std::int32_t tag) {
  Channel& ch = mem_->channels()[channel_key(src, dst, tag)];
  if (!ch.live) {
    ch.live = true;
    ch.queue.attach(arena_);
    ch.waiting.attach(arena_);
    ++drain_.channels_created;
  }
  return ch;
}

void ReplayEngine::throw_deadlock() const {
  std::string diag = "replay deadlock: ranks not finished:";
  for (Rank r = 0; r < trace_->nranks(); ++r) {
    const auto& st = ranks_[static_cast<std::size_t>(r)];
    if (!st.done) {
      diag += " r" + std::to_string(r) + "@pc" + std::to_string(st.pc);
      if (st.blocked_in_wait) diag += "(wait)";
    }
  }
  throw std::runtime_error(diag);
}

ReplayResult ReplayEngine::run() {
  IBP_EXPECTS(!ran_);
  ran_ = true;
  // At any instant the queue holds at most ~one event per rank (advance /
  // resume / collective-release), so this reserve makes scheduling
  // allocation-free for the whole replay.
  queue_->reserve(2 * static_cast<std::size_t>(trace_->nranks()) + 16);
  for (Rank r = 0; r < trace_->nranks(); ++r) {
    queue_->schedule(TimeNs::zero(), [this, r] { advance(r); });
  }
  queue_->run();

  if (done_count_ != trace_->nranks()) throw_deadlock();

  ReplayResult result;
  result.rank_finish.reserve(static_cast<std::size_t>(trace_->nranks()));
  for (Rank r = 0; r < trace_->nranks(); ++r) {
    const auto& st = ranks_[static_cast<std::size_t>(r)];
    result.rank_finish.push_back(st.now);
    result.exec_time = max(result.exec_time, st.now);
  }
  for (std::size_t i = 0; i < agents_count_; ++i) {
    result.agent_total.merge(agents_[i]->stats());
  }
  result.events_processed = queue_->processed();
  result.messages_sent = messages_;
  result.drain = drain_;
  fabric_->finish(result.exec_time);
  IBP_AUDIT(if (const std::string err = audit_drain(); !err.empty())
                IBP_AUDIT_FAIL(err.c_str()));
  return result;
}

std::string ReplayEngine::audit_drain() const {
  if (!ran_) return "replay audit: run() has not been called";
  if (done_count_ != trace_->nranks()) {
    return "replay audit: " +
           std::to_string(trace_->nranks() - done_count_) +
           " rank(s) not done at drain";
  }
  // Message conservation: a message still queued (or a receive still
  // waiting) at drain means a send was never consumed — or consumed twice,
  // leaving a later receive unmatched.
  std::string err;
  mem_->channels().for_each([&err](std::uint64_t key, const Channel& ch) {
    if (!err.empty() || !ch.live) return;
    if (!ch.queue.empty()) {
      err = "replay audit: " + std::to_string(ch.queue.size()) +
            " in-flight message(s) at drain on channel key " +
            std::to_string(key);
    } else if (!ch.waiting.empty()) {
      err = "replay audit: " + std::to_string(ch.waiting.size()) +
            " receive(s) still waiting at drain on channel key " +
            std::to_string(key);
    }
  });
  if (!err.empty()) return err;
  bool stranded_sender = false;
  mem_->pending_send_enter().for_each(
      [&stranded_sender](std::uint64_t, TimeNs) { stranded_sender = true; });
  if (stranded_sender) {
    return "replay audit: rendezvous sender never resumed at drain";
  }
  for (Rank r = 0; r < trace_->nranks(); ++r) {
    const auto& st = ranks_[static_cast<std::size_t>(r)];
    if (!st.done) {
      return "replay audit: rank " + std::to_string(r) + " not done";
    }
    if (st.blocked_in_wait) {
      return "replay audit: rank " + std::to_string(r) +
             " still blocked in Wait at drain";
    }
    if (!st.pending_requests.empty()) {
      return "replay audit: rank " + std::to_string(r) +
             " has pending request(s) at drain";
    }
    if (!st.completed_requests.empty()) {
      return "replay audit: rank " + std::to_string(r) +
             " has unretired completed request(s) at drain";
    }
    if (st.now < TimeNs::zero()) {
      return "replay audit: rank " + std::to_string(r) +
             " finished at negative time";
    }
    // Non-negative idle intervals: enter/exit pairs are ordered and the gap
    // between consecutive calls on a rank never goes backwards.
    const auto& timeline = call_timelines_[static_cast<std::size_t>(r)];
    for (std::size_t i = 0; i < timeline.size(); ++i) {
      if (timeline[i].exit < timeline[i].enter) {
        return "replay audit: rank " + std::to_string(r) + " call " +
               std::to_string(i) + " exits before it enters";
      }
      if (i > 0 && timeline[i].enter < timeline[i - 1].exit) {
        return "replay audit: rank " + std::to_string(r) + " call " +
               std::to_string(i) + " begins a negative idle interval";
      }
    }
  }
  // Drain-statistics conservation: the always-compiled telemetry counters
  // (drain_stats()) must agree with the drained-channel state verified
  // above — every enqueued message matched, every parked receive satisfied,
  // every blocked rendezvous sender resumed, and the protocol split summing
  // to the message count. This keeps release-build telemetry and the audit
  // recomputation in lockstep in every build mode.
  if (drain_.messages_enqueued != drain_.messages_matched) {
    return "replay audit: drain stats: " +
           std::to_string(drain_.messages_enqueued) +
           " message(s) enqueued but " +
           std::to_string(drain_.messages_matched) + " matched";
  }
  if (drain_.recvs_waited != drain_.recvs_satisfied) {
    return "replay audit: drain stats: " + std::to_string(drain_.recvs_waited) +
           " receive(s) parked but " + std::to_string(drain_.recvs_satisfied) +
           " satisfied";
  }
  if (drain_.rendezvous_blocked != drain_.rendezvous_resumed) {
    return "replay audit: drain stats: " +
           std::to_string(drain_.rendezvous_blocked) +
           " rendezvous sender(s) blocked but " +
           std::to_string(drain_.rendezvous_resumed) + " resumed";
  }
  if (drain_.sends_eager + drain_.sends_rendezvous != messages_) {
    return "replay audit: drain stats: protocol split " +
           std::to_string(drain_.sends_eager) + "+" +
           std::to_string(drain_.sends_rendezvous) +
           " does not sum to message count " + std::to_string(messages_);
  }
  return {};
}

void ReplayEngine::advance(Rank r) {
  auto& st = ranks_[static_cast<std::size_t>(r)];
  const auto& stream = trace_->stream(r);
  if (st.pc >= stream.size()) {
    if (!st.done) {
      st.done = true;
      ++done_count_;
      if (opt_.enable_power_management) {
        agents_[static_cast<std::size_t>(r)]->finish();
      }
    }
    return;
  }

  const TraceRecord& rec = stream[st.pc];
  if (const auto* c = std::get_if<ComputeRecord>(&rec)) {
    do_compute(r, *c);
    return;
  }

  // MPI call: interception + PPA overheads are charged before the call's
  // network activity (the PMPI wrapper runs first).
  const MpiCall call = call_of(rec);
  const TimeNs enter = st.now;
  TimeNs t = enter;
  if (opt_.enable_power_management) {
    t += agents_[static_cast<std::size_t>(r)]->on_call_enter(call, enter);
  }

  // Single jump on the alternative index instead of a serial get_if chain —
  // this dispatch runs once per trace record and showed up in the 128-rank
  // profile. The get_if results cannot be null: the index picked the case.
  switch (rec.index()) {
    case 1: do_send(r, *std::get_if<SendRecord>(&rec), enter, t); break;
    case 2: do_recv(r, *std::get_if<RecvRecord>(&rec), enter, t); break;
    case 3: do_sendrecv(r, *std::get_if<SendrecvRecord>(&rec), enter, t); break;
    case 4:
      do_collective(r, *std::get_if<CollectiveRecord>(&rec), enter, t);
      break;
    case 5: do_isend(r, *std::get_if<IsendRecord>(&rec), enter, t); break;
    case 6: do_irecv(r, *std::get_if<IrecvRecord>(&rec), enter, t); break;
    case 7: do_wait(r, *std::get_if<WaitRecord>(&rec), enter, t); break;
    case 8: do_waitall(r, enter, t); break;
    default: break;  // index 0 (compute) handled above
  }
}

void ReplayEngine::do_compute(Rank r, const ComputeRecord& rec) {
  auto& st = ranks_[static_cast<std::size_t>(r)];
  ++st.pc;
  const TimeNs wake = st.now + rec.duration;
  queue_->schedule(wake, [this, r, wake] {
    ranks_[static_cast<std::size_t>(r)].now = wake;
    advance(r);
  });
}

void ReplayEngine::finish_call(Rank r, MpiCall call, TimeNs enter,
                               TimeNs exit) {
  auto& st = ranks_[static_cast<std::size_t>(r)];
  // Calls occupy non-negative spans and never complete in this rank's past.
  IBP_AUDIT_CHECK(exit >= enter && enter >= TimeNs::zero());
  IBP_AUDIT_CHECK(exit >= st.now);
  if (opt_.enable_power_management) {
    agents_[static_cast<std::size_t>(r)]->on_call_exit(call, exit);
  }
  if (opt_.record_call_timeline) {
    call_timelines_[static_cast<std::size_t>(r)].push_back(
        {call, enter, exit});
  }
  ++st.pc;
  queue_->schedule(exit, [this, r, exit] {
    ranks_[static_cast<std::size_t>(r)].now = exit;
    advance(r);
  });
}

void ReplayEngine::resume_blocked_recv(const WaitingRecv& w, TimeNs exit) {
  // Capture only the three WaitingRecv fields finish_call needs — the full
  // struct would push the capture past the inline-callback capacity.
  const Rank dst = w.dst;
  const MpiCall call = w.call;
  const TimeNs enter = w.enter;
  queue_->schedule(exit, [this, dst, call, enter, exit] {
    finish_call(dst, call, enter, exit);
  });
}

void ReplayEngine::satisfy_waiting(Channel& ch, TimeNs delivery) {
  IBP_ASSERT(!ch.waiting.empty());
  const WaitingRecv w = ch.waiting.front();
  ch.waiting.pop_front();
  ++drain_.recvs_satisfied;
  if (w.nonblocking) {
    complete_request(w.dst, w.request, max(w.min_exit, delivery));
  } else {
    resume_blocked_recv(w, max(w.min_exit, delivery));
  }
}

void ReplayEngine::deliver_eager(Rank src, Rank dst, std::int32_t tag,
                                 TimeNs delivery) {
  Channel& ch = channel(src, dst, tag);
  if (!ch.waiting.empty()) {
    satisfy_waiting(ch, delivery);
  } else {
    ch.queue.push_back(ChannelMsg{false, delivery, 0, false, -1, 0});
    ++drain_.messages_enqueued;
  }
}

void ReplayEngine::complete_request(Rank r, RequestId req, TimeNs when) {
  auto& st = ranks_[static_cast<std::size_t>(r)];
  st.pending_requests.erase(req);
  st.completed_requests.insert_or_assign(req, when);
  if (st.blocked_in_wait) try_resume_wait(r);
}

void ReplayEngine::try_resume_wait(Rank r) {
  auto& st = ranks_[static_cast<std::size_t>(r)];
  IBP_ASSERT(st.blocked_in_wait);
  TimeNs exit = st.wait_t;
  if (st.wait_is_waitall) {
    if (!st.pending_requests.empty()) return;
    st.completed_requests.for_each(
        [&exit](RequestId, TimeNs when) { exit = max(exit, when); });
    st.completed_requests.clear();
  } else {
    const TimeNs* when = st.completed_requests.find(st.wait_request);
    if (when == nullptr) return;
    exit = max(exit, *when);
    st.completed_requests.erase(st.wait_request);
  }
  st.blocked_in_wait = false;
  finish_call(r, st.wait_is_waitall ? MpiCall::Waitall : MpiCall::Wait,
              st.wait_enter, exit);
}

void ReplayEngine::do_send(Rank r, const SendRecord& rec, TimeNs enter,
                           TimeNs t) {
  ++messages_;
  if (rec.bytes <= opt_.eager_threshold) {
    ++drain_.sends_eager;
    const auto tx = fabric_->unicast(r, rec.peer, rec.bytes, t);
    deliver_eager(r, rec.peer, rec.tag, tx.delivery);
    finish_call(r, MpiCall::Send, enter, max(t, tx.sender_free));
    return;
  }

  // Rendezvous: transfer begins once the receive is posted.
  ++drain_.sends_rendezvous;
  Channel& ch = channel(r, rec.peer, rec.tag);
  if (!ch.waiting.empty()) {
    const WaitingRecv w = ch.waiting.front();
    ch.waiting.pop_front();
    ++drain_.recvs_satisfied;
    const auto tx = fabric_->unicast(r, rec.peer, rec.bytes, max(t, w.posted));
    if (w.nonblocking) {
      complete_request(w.dst, w.request, max(w.min_exit, tx.delivery));
    } else {
      resume_blocked_recv(w, max(w.min_exit, tx.delivery));
    }
    finish_call(r, MpiCall::Send, enter, max(t, tx.sender_free));
  } else {
    ch.queue.push_back(ChannelMsg{true, t, rec.bytes, false, r, 0});
    ++drain_.messages_enqueued;
    ++drain_.rendezvous_blocked;
    // Sender stays blocked; the matching recv resumes it. Stash what we
    // need in the channel entry; enter time is recoverable because the
    // sender's pc still points at this record.
    mem_->pending_send_enter()[channel_key(r, rec.peer, rec.tag)] = enter;
  }
}

void ReplayEngine::do_isend(Rank r, const IsendRecord& rec, TimeNs enter,
                            TimeNs t) {
  ++messages_;
  auto& st = ranks_[static_cast<std::size_t>(r)];
  if (rec.bytes <= opt_.eager_threshold) {
    ++drain_.sends_eager;
    const auto tx = fabric_->unicast(r, rec.peer, rec.bytes, t);
    deliver_eager(r, rec.peer, rec.tag, tx.delivery);
    st.completed_requests.insert_or_assign(rec.request, max(t, tx.sender_free));
    finish_call(r, MpiCall::Isend, enter, t);
    return;
  }
  // Rendezvous Isend: if the receive is already posted, transfer now; the
  // call still returns immediately and the request completes at injection.
  ++drain_.sends_rendezvous;
  Channel& ch = channel(r, rec.peer, rec.tag);
  if (!ch.waiting.empty()) {
    const WaitingRecv w = ch.waiting.front();
    ch.waiting.pop_front();
    ++drain_.recvs_satisfied;
    const auto tx = fabric_->unicast(r, rec.peer, rec.bytes, max(t, w.posted));
    if (w.nonblocking) {
      complete_request(w.dst, w.request, max(w.min_exit, tx.delivery));
    } else {
      resume_blocked_recv(w, max(w.min_exit, tx.delivery));
    }
    st.completed_requests.insert_or_assign(rec.request, max(t, tx.sender_free));
  } else {
    ch.queue.push_back(ChannelMsg{true, t, rec.bytes, true, r, rec.request});
    ++drain_.messages_enqueued;
    st.pending_requests.insert(rec.request);
  }
  finish_call(r, MpiCall::Isend, enter, t);
}

void ReplayEngine::do_irecv(Rank r, const IrecvRecord& rec, TimeNs enter,
                            TimeNs t) {
  auto& st = ranks_[static_cast<std::size_t>(r)];
  Channel& ch = channel(rec.peer, r, rec.tag);
  if (!ch.queue.empty()) {
    const ChannelMsg m = ch.queue.front();
    ch.queue.pop_front();
    ++drain_.messages_matched;
    if (!m.rendezvous) {
      st.completed_requests.insert_or_assign(rec.request,
                                             max(t, m.ready_or_delivery));
    } else {
      const auto tx =
          fabric_->unicast(rec.peer, r, m.bytes, max(m.ready_or_delivery, t));
      if (m.src_nonblocking) {
        complete_request(m.src, m.src_request, tx.sender_free);
      } else {
        const auto key = channel_key(rec.peer, r, rec.tag);
        const TimeNs send_enter = mem_->pending_send_enter()[key];
        mem_->pending_send_enter().erase(key);
        ++drain_.rendezvous_resumed;
        const Rank src = rec.peer;
        queue_->schedule(tx.sender_free, [this, src, send_enter, tx] {
          finish_call(src, MpiCall::Send, send_enter, tx.sender_free);
        });
      }
      st.completed_requests.insert_or_assign(rec.request, max(t, tx.delivery));
    }
  } else {
    ch.waiting.push_back(
        WaitingRecv{r, MpiCall::Irecv, t, enter, t, true, rec.request});
    ++drain_.recvs_waited;
    st.pending_requests.insert(rec.request);
  }
  finish_call(r, MpiCall::Irecv, enter, t);
}

void ReplayEngine::do_wait(Rank r, const WaitRecord& rec, TimeNs enter,
                           TimeNs t) {
  auto& st = ranks_[static_cast<std::size_t>(r)];
  if (const TimeNs* when = st.completed_requests.find(rec.request)) {
    const TimeNs exit = max(t, *when);
    st.completed_requests.erase(rec.request);
    finish_call(r, MpiCall::Wait, enter, exit);
    return;
  }
  IBP_ASSERT(st.pending_requests.contains(rec.request));  // else trace bug
  st.blocked_in_wait = true;
  st.wait_is_waitall = false;
  st.wait_request = rec.request;
  st.wait_enter = enter;
  st.wait_t = t;
}

void ReplayEngine::do_waitall(Rank r, TimeNs enter, TimeNs t) {
  auto& st = ranks_[static_cast<std::size_t>(r)];
  if (st.pending_requests.empty()) {
    TimeNs exit = t;
    st.completed_requests.for_each(
        [&exit](RequestId, TimeNs when) { exit = max(exit, when); });
    st.completed_requests.clear();
    finish_call(r, MpiCall::Waitall, enter, exit);
    return;
  }
  st.blocked_in_wait = true;
  st.wait_is_waitall = true;
  st.wait_enter = enter;
  st.wait_t = t;
}

void ReplayEngine::do_recv(Rank r, const RecvRecord& rec, TimeNs enter,
                           TimeNs t) {
  Channel& ch = channel(rec.peer, r, rec.tag);
  if (!ch.queue.empty()) {
    const ChannelMsg m = ch.queue.front();
    ch.queue.pop_front();
    ++drain_.messages_matched;
    if (!m.rendezvous) {
      finish_call(r, MpiCall::Recv, enter, max(t, m.ready_or_delivery));
    } else {
      const auto tx =
          fabric_->unicast(rec.peer, r, m.bytes, max(m.ready_or_delivery, t));
      if (m.src_nonblocking) {
        complete_request(m.src, m.src_request, tx.sender_free);
      } else {
        // Resume the blocked sender.
        const auto key = channel_key(rec.peer, r, rec.tag);
        const TimeNs send_enter = mem_->pending_send_enter()[key];
        mem_->pending_send_enter().erase(key);
        ++drain_.rendezvous_resumed;
        const Rank src = rec.peer;
        queue_->schedule(tx.sender_free, [this, src, send_enter, tx] {
          finish_call(src, MpiCall::Send, send_enter, tx.sender_free);
        });
      }
      finish_call(r, MpiCall::Recv, enter, max(t, tx.delivery));
    }
    return;
  }
  ch.waiting.push_back(WaitingRecv{r, MpiCall::Recv, t, enter, t, false, 0});
  ++drain_.recvs_waited;
}

void ReplayEngine::do_sendrecv(Rank r, const SendrecvRecord& rec, TimeNs enter,
                               TimeNs t) {
  ++messages_;
  ++drain_.sends_eager;
  // Send half: always eager (MPI_Sendrecv cannot deadlock).
  const auto tx = fabric_->unicast(r, rec.send_peer, rec.bytes, t);
  deliver_eager(r, rec.send_peer, rec.tag, tx.delivery);
  const TimeNs send_done = max(t, tx.sender_free);

  // Recv half.
  Channel& ch = channel(rec.recv_peer, r, rec.tag);
  if (!ch.queue.empty()) {
    const ChannelMsg m = ch.queue.front();
    ch.queue.pop_front();
    ++drain_.messages_matched;
    if (!m.rendezvous) {
      finish_call(r, MpiCall::Sendrecv, enter,
                  max(send_done, m.ready_or_delivery));
      return;
    }
    // A large Isend can match a Sendrecv's receive half.
    const auto rtx =
        fabric_->unicast(rec.recv_peer, r, m.bytes, max(m.ready_or_delivery, t));
    if (m.src_nonblocking) {
      complete_request(m.src, m.src_request, rtx.sender_free);
    } else {
      const auto key = channel_key(rec.recv_peer, r, rec.tag);
      const TimeNs send_enter = mem_->pending_send_enter()[key];
      mem_->pending_send_enter().erase(key);
      ++drain_.rendezvous_resumed;
      const Rank src = rec.recv_peer;
      queue_->schedule(rtx.sender_free, [this, src, send_enter, rtx] {
        finish_call(src, MpiCall::Send, send_enter, rtx.sender_free);
      });
    }
    finish_call(r, MpiCall::Sendrecv, enter, max(send_done, rtx.delivery));
    return;
  }
  ch.waiting.push_back(
      WaitingRecv{r, MpiCall::Sendrecv, t, enter, send_done, false, 0});
  ++drain_.recvs_waited;
}

void ReplayEngine::do_collective(Rank r, const CollectiveRecord& rec,
                                 TimeNs enter, TimeNs t) {
  auto& st = ranks_[static_cast<std::size_t>(r)];
  const auto n = static_cast<std::size_t>(trace_->nranks());
  const auto k = static_cast<std::size_t>(st.coll_index++);
  while (collectives_.size() <= k) {
    CollectiveState fresh{};
    fresh.blocked.attach(arena_);
    collectives_.push_back(fresh);
  }
  CollectiveState& cs = collectives_[k];
  if (cs.entered == nullptr) {
    cs.entered = arena_->allocate_array<TimeNs>(n);
    for (std::size_t i = 0; i < n; ++i) cs.entered[i] = TimeNs{-1};
  }

  // Ensure this rank's uplink is awake for the collective; a lane-wake
  // penalty delays this rank's effective participation.
  const TimeNs penalty = fabric_->wake_node_link(r, t);
  const TimeNs eff = t + penalty;
  cs.entered[static_cast<std::size_t>(r)] = eff;
  cs.max_enter = max(cs.max_enter, eff);
  ++cs.count;

  if (cs.count == trace_->nranks()) {
    const TimeNs completion =
        cs.max_enter + coll_model_.cost(rec.call, rec.bytes,
                                        static_cast<int>(trace_->nranks()));
    for (Rank q = 0; q < trace_->nranks(); ++q) {
      fabric_->occupy_node_link(q, cs.entered[static_cast<std::size_t>(q)],
                                completion);
    }
    // All ranks (including r) exit at completion. Other ranks' enters were
    // recorded when they blocked; we only know r's enter here, so each
    // blocked rank stored its own via the pending list.
    for (const auto& blocked : cs.blocked) {
      queue_->schedule(completion, [this, blocked, completion, call = rec.call] {
        finish_call(blocked.rank, call, blocked.enter, completion);
      });
    }
    cs.blocked.clear();
    finish_call(r, rec.call, enter, completion);
  } else {
    cs.blocked.push_back({r, enter});
  }
}

}  // namespace ibpower
