#include "sim/parallel.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>

namespace ibpower {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

}  // namespace

ParallelExperimentRunner::ParallelExperimentRunner(unsigned jobs,
                                                   bool clamp_to_hardware)
    : engine_(clamp_to_hardware
                  ? std::min(jobs == 0 ? 1u : jobs,
                             ThreadPool::default_concurrency())
                  : (jobs == 0 ? 1u : jobs)) {
  worker_memory_.reserve(engine_.size());
  for (unsigned i = 0; i < engine_.size(); ++i) {
    worker_memory_.push_back(std::make_unique<ReplayMemory>());
  }
}

ReplayMemory* ParallelExperimentRunner::worker_memory() const {
  if (TaskEngine::current() != &engine_) return nullptr;
  const int idx = TaskEngine::current_worker_index();
  if (idx < 0 || static_cast<std::size_t>(idx) >= worker_memory_.size()) {
    return nullptr;
  }
  return worker_memory_[static_cast<std::size_t>(idx)].get();
}

double ParallelExperimentRunner::last_total_work_ms() const {
  double total = 0.0;
  for (const double ms : cell_work_ms_) total += ms;
  return total;
}

double ParallelExperimentRunner::last_total_gen_ms() const {
  double total = 0.0;
  for (const double ms : cell_gen_ms_) total += ms;
  return total;
}

ExperimentResult ParallelExperimentRunner::run(const ExperimentConfig& rawcfg,
                                               const LegProbes& probes) {
  std::vector<ExperimentResult> results =
      run_all({rawcfg}, probes.baseline || probes.managed
                            ? std::vector<LegProbes>{probes}
                            : std::vector<LegProbes>{});
  return results.front();
}

std::vector<ExperimentResult> ParallelExperimentRunner::run_all(
    const std::vector<ExperimentConfig>& rawcfgs,
    const std::vector<LegProbes>& probes) {
  const std::size_t n = rawcfgs.size();
  if (!probes.empty() && probes.size() != n) {
    throw std::invalid_argument(
        "run_all: probes must be empty or match cfgs.size()");
  }
  std::vector<ExperimentConfig> cfgs;
  cfgs.reserve(n);
  for (const auto& cfg : rawcfgs) cfgs.push_back(normalize_config(cfg));

  // Trace sharing: cells with the same trace_cache_key — a parameter sweep
  // over PPA/fabric/predictor settings — replay one read-only Trace instead
  // of regenerating it per cell. `trace_of[i]` maps cell i to its trace
  // slot; generation cost is charged to the first cell of each slot.
  std::vector<std::size_t> trace_of(n, 0);
  std::vector<std::size_t> owner_cell;  // slot -> generating cell
  {
    std::unordered_map<std::string, std::size_t> slot_of;
    slot_of.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const auto [it, inserted] =
          slot_of.emplace(trace_cache_key(cfgs[i]), owner_cell.size());
      if (inserted) owner_cell.push_back(i);
      trace_of[i] = it->second;
    }
  }

  // Each task writes only its own slot of these vectors: no shared mutable
  // state, no locks needed.
  cell_gen_ms_.assign(n, 0.0);
  cell_base_ms_.assign(n, 0.0);
  cell_managed_ms_.assign(n, 0.0);
  cell_work_ms_.assign(n, 0.0);

  const std::size_t ntraces = owner_cell.size();
  std::vector<Trace> traces(ntraces);
  std::vector<BaselineLegResult> base_res(n);
  std::vector<ManagedLegResult> managed_res(n);
  // Exceptions are captured per slot and rethrown after wait_all in a fixed
  // order (generation slots first, then per-cell baseline/managed), so the
  // surfaced exception is the same one the old phase-barrier gather — and
  // the serial loop — would have thrown.
  std::vector<std::exception_ptr> gen_err(ntraces);
  std::vector<std::exception_ptr> base_err(n);
  std::vector<std::exception_ptr> managed_err(n);

  engine_.reset();

  // One generation task per distinct trace; each cell's legs depend only on
  // their own trace task — a cell replays the instant ITS trace exists,
  // while slower generations are still running (no phase barrier).
  std::vector<TaskId> gen_task(ntraces);
  for (std::size_t s = 0; s < ntraces; ++s) {
    const std::size_t cell = owner_cell[s];
    gen_task[s] = engine_.submit(
        [this, &cfgs, &traces, &gen_err, s, cell] {
          try {
            const auto t0 = Clock::now();
            traces[s] = generate_experiment_trace(cfgs[cell]);
            cell_gen_ms_[cell] = ms_since(t0);
          } catch (...) {
            gen_err[s] = std::current_exception();
          }
        },
        "gen");
  }
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t s = trace_of[i];
    engine_.submit_after(
        {gen_task[s]},
        [this, &cfgs, &traces, &probes, &gen_err, &base_res, &base_err, i, s] {
          if (gen_err[s]) return;  // trace missing; rethrown by slot order
          try {
            const auto t0 = Clock::now();
            base_res[i] = run_baseline_leg(
                cfgs[i], traces[s],
                probes.empty() ? ReplayProbe{} : probes[i].baseline,
                worker_memory());
            cell_base_ms_[i] = ms_since(t0);
          } catch (...) {
            base_err[i] = std::current_exception();
          }
        },
        "baseline");
    engine_.submit_after(
        {gen_task[s]},
        [this, &cfgs, &traces, &probes, &gen_err, &managed_res, &managed_err,
         i, s] {
          if (gen_err[s]) return;
          try {
            const auto t0 = Clock::now();
            managed_res[i] = run_managed_leg(
                cfgs[i], traces[s],
                probes.empty() ? ReplayProbe{} : probes[i].managed,
                worker_memory());
            cell_managed_ms_[i] = ms_since(t0);
          } catch (...) {
            managed_err[i] = std::current_exception();
          }
        },
        "managed");
  }
  engine_.wait_all();

  for (std::size_t s = 0; s < ntraces; ++s) {
    if (gen_err[s]) std::rethrow_exception(gen_err[s]);
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (base_err[i]) std::rethrow_exception(base_err[i]);
    if (managed_err[i]) std::rethrow_exception(managed_err[i]);
  }

  // Gather in submission order — output order is the input order.
  std::vector<ExperimentResult> results;
  results.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    results.push_back(
        combine_legs(traces[trace_of[i]], base_res[i], managed_res[i]));
    cell_work_ms_[i] = cell_base_ms_[i] + cell_managed_ms_[i];
  }
  return results;
}

std::vector<GtSweepPoint> ParallelExperimentRunner::sweep_gt(
    const ExperimentConfig& cfg, const std::vector<TimeNs>& values) {
  // gen -> one baseline timeline replay -> |values| scoring tasks, all
  // dependency-edged on the engine (the replay borrows a worker's
  // ReplayMemory; scoring tasks start the moment the timelines exist).
  double gen_ms = 0.0;
  double base_ms = 0.0;
  Trace trace;
  std::vector<std::vector<MpiCallEvent>> timelines;
  std::exception_ptr gen_err;
  std::exception_ptr base_err;
  std::vector<GtSweepPoint> points(values.size());
  std::vector<double> score_ms(values.size(), 0.0);

  engine_.reset();
  const TaskId gen = engine_.submit(
      [&cfg, &trace, &gen_ms, &gen_err] {
        try {
          const auto t0 = Clock::now();
          trace = generate_experiment_trace(cfg);
          gen_ms = ms_since(t0);
        } catch (...) {
          gen_err = std::current_exception();
        }
      },
      "gen");
  const TaskId base = engine_.submit_after(
      {gen},
      [this, &cfg, &trace, &timelines, &base_ms, &gen_err, &base_err] {
        if (gen_err) return;
        try {
          const auto t0 = Clock::now();
          timelines = baseline_call_timelines(cfg, trace, worker_memory());
          base_ms = ms_since(t0);
        } catch (...) {
          base_err = std::current_exception();
        }
      },
      "timelines");
  for (std::size_t i = 0; i < values.size(); ++i) {
    const TimeNs gt = values[i];
    engine_.submit_after(
        {base},
        [&timelines, &cfg, &points, &score_ms, &gen_err, &base_err, gt, i] {
          if (gen_err || base_err) return;
          const auto t0 = Clock::now();
          points[i] = score_gt(timelines, cfg.ppa, gt);
          score_ms[i] = ms_since(t0);
        },
        "score_gt");
  }
  engine_.wait_all();
  if (gen_err) std::rethrow_exception(gen_err);
  if (base_err) std::rethrow_exception(base_err);

  double scoring = 0.0;
  for (const double ms : score_ms) scoring += ms;
  cell_gen_ms_.assign(1, gen_ms);
  cell_base_ms_.assign(1, base_ms);
  cell_managed_ms_.assign(1, scoring);
  cell_work_ms_.assign(1, base_ms + scoring);
  return points;
}

}  // namespace ibpower
