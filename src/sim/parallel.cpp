#include "sim/parallel.hpp"

#include <chrono>
#include <future>
#include <stdexcept>
#include <utility>

namespace ibpower {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

}  // namespace

double ParallelExperimentRunner::last_total_work_ms() const {
  double total = 0.0;
  for (const double ms : cell_work_ms_) total += ms;
  return total;
}

ExperimentResult ParallelExperimentRunner::run(const ExperimentConfig& rawcfg,
                                               const LegProbes& probes) {
  const ExperimentConfig cfg = normalize_config(rawcfg);
  const auto t0 = Clock::now();
  const Trace trace = generate_experiment_trace(cfg);
  const double gen_ms = ms_since(t0);

  // The two legs only read `cfg`, `trace` and `probes`; all outlive the
  // futures. Probes execute inside the leg on the worker thread and must
  // only write caller-owned per-leg storage (see parallel.hpp).
  double base_ms = 0.0;
  double managed_ms = 0.0;
  auto baseline = pool_.submit([&cfg, &trace, &probes, &base_ms] {
    const auto leg0 = Clock::now();
    BaselineLegResult leg = run_baseline_leg(cfg, trace, probes.baseline);
    base_ms = ms_since(leg0);
    return leg;
  });
  auto managed = pool_.submit([&cfg, &trace, &probes, &managed_ms] {
    const auto leg0 = Clock::now();
    ManagedLegResult leg = run_managed_leg(cfg, trace, probes.managed);
    managed_ms = ms_since(leg0);
    return leg;
  });
  const BaselineLegResult b = baseline.get();
  const ManagedLegResult m = managed.get();

  cell_work_ms_.assign(1, gen_ms + base_ms + managed_ms);
  return combine_legs(trace, b, m);
}

std::vector<ExperimentResult> ParallelExperimentRunner::run_all(
    const std::vector<ExperimentConfig>& rawcfgs,
    const std::vector<LegProbes>& probes) {
  const std::size_t n = rawcfgs.size();
  if (!probes.empty() && probes.size() != n) {
    throw std::invalid_argument(
        "run_all: probes must be empty or match cfgs.size()");
  }
  std::vector<ExperimentConfig> cfgs;
  cfgs.reserve(n);
  for (const auto& cfg : rawcfgs) cfgs.push_back(normalize_config(cfg));

  // Each task writes only its own slot of these vectors: no shared mutable
  // state, no locks needed.
  cell_work_ms_.assign(n, 0.0);
  std::vector<double> leg_ms(2 * n, 0.0);
  std::vector<double> gen_ms(n, 0.0);

  // Phase 1: generate every trace in parallel.
  std::vector<std::future<Trace>> gen;
  gen.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    gen.push_back(pool_.submit([&cfgs, &gen_ms, i] {
      const auto t0 = Clock::now();
      Trace trace = generate_experiment_trace(cfgs[i]);
      gen_ms[i] = ms_since(t0);
      return trace;
    }));
  }
  std::vector<Trace> traces;
  traces.reserve(n);
  for (auto& f : gen) traces.push_back(f.get());

  // Phase 2: 2N independent replay legs.
  std::vector<std::future<BaselineLegResult>> baselines;
  std::vector<std::future<ManagedLegResult>> manageds;
  baselines.reserve(n);
  manageds.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    baselines.push_back(pool_.submit([&cfgs, &traces, &probes, &leg_ms, i] {
      const auto t0 = Clock::now();
      BaselineLegResult leg = run_baseline_leg(
          cfgs[i], traces[i], probes.empty() ? ReplayProbe{} : probes[i].baseline);
      leg_ms[2 * i] = ms_since(t0);
      return leg;
    }));
    manageds.push_back(pool_.submit([&cfgs, &traces, &probes, &leg_ms, i] {
      const auto t0 = Clock::now();
      ManagedLegResult leg = run_managed_leg(
          cfgs[i], traces[i], probes.empty() ? ReplayProbe{} : probes[i].managed);
      leg_ms[2 * i + 1] = ms_since(t0);
      return leg;
    }));
  }

  // Gather in submission order — output order is the input order.
  std::vector<ExperimentResult> results;
  results.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const BaselineLegResult b = baselines[i].get();
    const ManagedLegResult m = manageds[i].get();
    results.push_back(combine_legs(traces[i], b, m));
    cell_work_ms_[i] = gen_ms[i] + leg_ms[2 * i] + leg_ms[2 * i + 1];
  }
  return results;
}

std::vector<GtSweepPoint> ParallelExperimentRunner::sweep_gt(
    const ExperimentConfig& cfg, const std::vector<TimeNs>& values) {
  const auto t0 = Clock::now();
  const Trace trace = generate_experiment_trace(cfg);
  const auto timelines = baseline_call_timelines(cfg, trace);

  std::vector<std::future<GtSweepPoint>> futures;
  futures.reserve(values.size());
  for (const TimeNs gt : values) {
    futures.push_back(pool_.submit(
        [&timelines, &cfg, gt] { return score_gt(timelines, cfg.ppa, gt); }));
  }
  std::vector<GtSweepPoint> points;
  points.reserve(values.size());
  for (auto& f : futures) points.push_back(f.get());
  cell_work_ms_.assign(1, ms_since(t0));
  return points;
}

}  // namespace ibpower
