#include "sim/parallel.hpp"

#include <algorithm>
#include <chrono>
#include <future>
#include <stdexcept>
#include <utility>

namespace ibpower {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

}  // namespace

ParallelExperimentRunner::ParallelExperimentRunner(unsigned jobs)
    : pool_(std::min(jobs == 0 ? 1u : jobs, ThreadPool::default_concurrency())) {
  worker_memory_.reserve(pool_.size());
  for (unsigned i = 0; i < pool_.size(); ++i) {
    worker_memory_.push_back(std::make_unique<ReplayMemory>());
  }
}

ReplayMemory* ParallelExperimentRunner::worker_memory() const {
  const int idx = ThreadPool::current_worker_index();
  if (idx < 0 || static_cast<std::size_t>(idx) >= worker_memory_.size()) {
    return nullptr;
  }
  return worker_memory_[static_cast<std::size_t>(idx)].get();
}

double ParallelExperimentRunner::last_total_work_ms() const {
  double total = 0.0;
  for (const double ms : cell_work_ms_) total += ms;
  return total;
}

double ParallelExperimentRunner::last_total_gen_ms() const {
  double total = 0.0;
  for (const double ms : cell_gen_ms_) total += ms;
  return total;
}

ExperimentResult ParallelExperimentRunner::run(const ExperimentConfig& rawcfg,
                                               const LegProbes& probes) {
  const ExperimentConfig cfg = normalize_config(rawcfg);

  // Trace generation runs on the pool like every other unit of work.
  double gen_ms = 0.0;
  auto gen = pool_.submit([&cfg, &gen_ms] {
    const auto t0 = Clock::now();
    Trace trace = generate_experiment_trace(cfg);
    gen_ms = ms_since(t0);
    return trace;
  });
  const Trace trace = gen.get();

  // The two legs only read `cfg`, `trace` and `probes`; all outlive the
  // futures. Probes execute inside the leg on the worker thread and must
  // only write caller-owned per-leg storage (see parallel.hpp). Each leg
  // borrows its worker's ReplayMemory.
  double base_ms = 0.0;
  double managed_ms = 0.0;
  auto baseline = pool_.submit([this, &cfg, &trace, &probes, &base_ms] {
    const auto leg0 = Clock::now();
    BaselineLegResult leg =
        run_baseline_leg(cfg, trace, probes.baseline, worker_memory());
    base_ms = ms_since(leg0);
    return leg;
  });
  auto managed = pool_.submit([this, &cfg, &trace, &probes, &managed_ms] {
    const auto leg0 = Clock::now();
    ManagedLegResult leg =
        run_managed_leg(cfg, trace, probes.managed, worker_memory());
    managed_ms = ms_since(leg0);
    return leg;
  });
  const BaselineLegResult b = baseline.get();
  const ManagedLegResult m = managed.get();

  cell_gen_ms_.assign(1, gen_ms);
  cell_base_ms_.assign(1, base_ms);
  cell_managed_ms_.assign(1, managed_ms);
  cell_work_ms_.assign(1, base_ms + managed_ms);
  return combine_legs(trace, b, m);
}

std::vector<ExperimentResult> ParallelExperimentRunner::run_all(
    const std::vector<ExperimentConfig>& rawcfgs,
    const std::vector<LegProbes>& probes) {
  const std::size_t n = rawcfgs.size();
  if (!probes.empty() && probes.size() != n) {
    throw std::invalid_argument(
        "run_all: probes must be empty or match cfgs.size()");
  }
  std::vector<ExperimentConfig> cfgs;
  cfgs.reserve(n);
  for (const auto& cfg : rawcfgs) cfgs.push_back(normalize_config(cfg));

  // Trace sharing: cells with the same (app, workload) — a parameter sweep
  // over PPA/fabric settings — replay one read-only Trace instead of
  // regenerating it per cell. `trace_of[i]` maps cell i to its trace slot;
  // generation cost is charged to the first cell of each slot.
  std::vector<std::size_t> trace_of(n, 0);
  std::vector<std::size_t> owner_cell;  // slot -> generating cell
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t slot = owner_cell.size();
    for (std::size_t s = 0; s < owner_cell.size(); ++s) {
      const auto& o = cfgs[owner_cell[s]];
      if (o.app == cfgs[i].app && o.workload == cfgs[i].workload) {
        slot = s;
        break;
      }
    }
    if (slot == owner_cell.size()) owner_cell.push_back(i);
    trace_of[i] = slot;
  }

  // Each task writes only its own slot of these vectors: no shared mutable
  // state, no locks needed.
  cell_gen_ms_.assign(n, 0.0);
  cell_base_ms_.assign(n, 0.0);
  cell_managed_ms_.assign(n, 0.0);
  cell_work_ms_.assign(n, 0.0);

  // Phase 1: generate every distinct trace in parallel.
  const std::size_t ntraces = owner_cell.size();
  std::vector<std::future<Trace>> gen;
  gen.reserve(ntraces);
  for (std::size_t s = 0; s < ntraces; ++s) {
    const std::size_t cell = owner_cell[s];
    gen.push_back(pool_.submit([this, &cfgs, cell] {
      const auto t0 = Clock::now();
      Trace trace = generate_experiment_trace(cfgs[cell]);
      cell_gen_ms_[cell] = ms_since(t0);
      return trace;
    }));
  }
  std::vector<Trace> traces;
  traces.reserve(ntraces);
  for (auto& f : gen) traces.push_back(f.get());

  // Phase 2: 2N independent replay legs against the shared traces.
  std::vector<std::future<BaselineLegResult>> baselines;
  std::vector<std::future<ManagedLegResult>> manageds;
  baselines.reserve(n);
  manageds.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Trace& trace = traces[trace_of[i]];
    baselines.push_back(pool_.submit([this, &cfgs, &trace, &probes, i] {
      const auto t0 = Clock::now();
      BaselineLegResult leg = run_baseline_leg(
          cfgs[i], trace, probes.empty() ? ReplayProbe{} : probes[i].baseline,
          worker_memory());
      cell_base_ms_[i] = ms_since(t0);
      return leg;
    }));
    manageds.push_back(pool_.submit([this, &cfgs, &trace, &probes, i] {
      const auto t0 = Clock::now();
      ManagedLegResult leg = run_managed_leg(
          cfgs[i], trace, probes.empty() ? ReplayProbe{} : probes[i].managed,
          worker_memory());
      cell_managed_ms_[i] = ms_since(t0);
      return leg;
    }));
  }

  // Gather in submission order — output order is the input order.
  std::vector<ExperimentResult> results;
  results.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const BaselineLegResult b = baselines[i].get();
    const ManagedLegResult m = manageds[i].get();
    results.push_back(combine_legs(traces[trace_of[i]], b, m));
    cell_work_ms_[i] = cell_base_ms_[i] + cell_managed_ms_[i];
  }
  return results;
}

std::vector<GtSweepPoint> ParallelExperimentRunner::sweep_gt(
    const ExperimentConfig& cfg, const std::vector<TimeNs>& values) {
  // Generation and the single baseline replay run on the pool so the
  // replay borrows a worker's ReplayMemory.
  double gen_ms = 0.0;
  auto gen = pool_.submit([&cfg, &gen_ms] {
    const auto t0 = Clock::now();
    Trace trace = generate_experiment_trace(cfg);
    gen_ms = ms_since(t0);
    return trace;
  });
  const Trace trace = gen.get();

  double base_ms = 0.0;
  auto tl = pool_.submit([this, &cfg, &trace, &base_ms] {
    const auto t0 = Clock::now();
    auto timelines = baseline_call_timelines(cfg, trace, worker_memory());
    base_ms = ms_since(t0);
    return timelines;
  });
  const auto timelines = tl.get();

  std::vector<double> score_ms(values.size(), 0.0);
  std::vector<std::future<GtSweepPoint>> futures;
  futures.reserve(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    const TimeNs gt = values[i];
    futures.push_back(pool_.submit([&timelines, &cfg, &score_ms, gt, i] {
      const auto t0 = Clock::now();
      GtSweepPoint p = score_gt(timelines, cfg.ppa, gt);
      score_ms[i] = ms_since(t0);
      return p;
    }));
  }
  std::vector<GtSweepPoint> points;
  points.reserve(values.size());
  for (auto& f : futures) points.push_back(f.get());

  double scoring = 0.0;
  for (const double ms : score_ms) scoring += ms;
  cell_gen_ms_.assign(1, gen_ms);
  cell_base_ms_.assign(1, base_ms);
  cell_managed_ms_.assign(1, scoring);
  cell_work_ms_.assign(1, base_ms + scoring);
  return points;
}

}  // namespace ibpower
