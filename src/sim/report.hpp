// Machine-readable experiment reports (CSV and JSON) so results can feed
// plotting pipelines without scraping the bench tables.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/experiment.hpp"

namespace ibpower {

/// One labelled experiment outcome (a cell of the evaluation grid).
struct LabelledResult {
  std::string app;
  int nranks{0};
  double displacement{0.0};
  ExperimentResult result;
};

/// CSV with one row per result; stable column order, header included.
void write_results_csv(std::ostream& os,
                       const std::vector<LabelledResult>& results);

/// JSON array of objects mirroring the CSV columns.
void write_results_json(std::ostream& os,
                        const std::vector<LabelledResult>& results);

/// The CSV header (exposed for tests and external parsers).
[[nodiscard]] std::string results_csv_header();

}  // namespace ibpower
