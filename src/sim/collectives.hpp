// Collective-operation cost models (Dimemas-style analytic costs).
//
// Collectives synchronize all ranks: completion = latest (effective) entry
// plus the modeled cost. Costs use the classic tree/linear algorithm shapes:
// logarithmic for rooted trees and allreduce, linear in P for personalized
// all-to-all exchanges.
#pragma once

#include <cmath>

#include "trace/mpi_event.hpp"
#include "util/expect.hpp"
#include "util/time_types.hpp"

namespace ibpower {

class CollectiveCostModel {
 public:
  /// `stage_latency`: per-software-stage latency (MPI latency + a path
  /// traversal). `bandwidth_gbps`: link bandwidth for the serial term.
  CollectiveCostModel(TimeNs stage_latency, double bandwidth_gbps)
      : stage_latency_(stage_latency), bandwidth_gbps_(bandwidth_gbps) {
    IBP_EXPECTS(stage_latency > TimeNs::zero());
    IBP_EXPECTS(bandwidth_gbps > 0.0);
  }

  [[nodiscard]] TimeNs serialization(Bytes bytes) const {
    const double ns = static_cast<double>(bytes) * 8.0 / bandwidth_gbps_;
    return TimeNs{static_cast<std::int64_t>(ns + 0.5)};
  }

  /// Latency term scales with the tree depth (or P-1 for personalized
  /// exchanges); the bandwidth term is ~2x one serialization, matching
  /// pipelined/Rabenseifner-style algorithms rather than naive
  /// store-and-forward trees (which would overcharge large payloads).
  [[nodiscard]] TimeNs cost(MpiCall op, Bytes bytes, int nranks) const {
    IBP_EXPECTS(nranks >= 1);
    IBP_EXPECTS(is_collective(op));
    if (nranks == 1) return stage_latency_;
    const int stages = log2_ceil(nranks);
    const TimeNs bw2 = serialization(bytes) * 2;
    switch (op) {
      case MpiCall::Barrier:
        return stage_latency_ * stages;
      case MpiCall::Bcast:
      case MpiCall::Reduce:
      case MpiCall::Scatter:
      case MpiCall::Gather:
        return stage_latency_ * stages + bw2;
      case MpiCall::Allreduce:
        // reduce-scatter + allgather phases.
        return stage_latency_ * (2 * stages) + bw2;
      case MpiCall::Allgather:
      case MpiCall::ReduceScatter:
      case MpiCall::Alltoall:
        // Personalized exchange: latency linear in P.
        return stage_latency_ * (nranks - 1) + bw2;
      default:
        IBP_ASSERT(false);
        return TimeNs::zero();
    }
  }

 private:
  static int log2_ceil(int n) {
    int stages = 0;
    int cap = 1;
    while (cap < n) {
      cap <<= 1;
      ++stages;
    }
    return stages;
  }

  TimeNs stage_latency_;
  double bandwidth_gbps_;
};

}  // namespace ibpower
