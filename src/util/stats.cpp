#include "util/stats.hpp"

namespace ibpower {

double percentile(std::vector<double> samples, double p) {
  IBP_EXPECTS(p >= 0.0 && p <= 100.0);
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  if (p <= 0.0) return samples.front();
  const auto n = samples.size();
  // Nearest-rank: smallest index i with 100*(i+1)/n >= p.
  auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(n)));
  rank = std::min(std::max<std::size_t>(rank, 1), n);
  return samples[rank - 1];
}

}  // namespace ibpower
