// Strong simulated-time types for the ibpower discrete-event simulator.
//
// All simulator time is integer nanoseconds (TimeNs). The paper quotes its
// constants in microseconds (Treact = 10 us, MPI latency = 1 us, the Table I
// idle-interval bucket edges 20 us / 200 us); integer nanoseconds represent
// all of them exactly and keep the event queue free of floating-point drift.
#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace ibpower {

/// A point in simulated time or a duration, in nanoseconds.
///
/// TimeNs is deliberately a thin struct rather than a bare int64_t so that
/// accidental mixing with byte counts, rank ids, etc. is a compile error.
struct TimeNs {
  std::int64_t ns{0};

  constexpr TimeNs() = default;
  constexpr explicit TimeNs(std::int64_t v) : ns(v) {}

  [[nodiscard]] static constexpr TimeNs zero() { return TimeNs{0}; }
  [[nodiscard]] static constexpr TimeNs max() {
    return TimeNs{std::numeric_limits<std::int64_t>::max()};
  }

  [[nodiscard]] static constexpr TimeNs from_us(double us) {
    return TimeNs{static_cast<std::int64_t>(us * 1e3 + (us >= 0 ? 0.5 : -0.5))};
  }
  [[nodiscard]] static constexpr TimeNs from_us(std::int64_t us) {
    return TimeNs{us * 1000};
  }
  [[nodiscard]] static constexpr TimeNs from_ms(double ms) {
    return from_us(ms * 1e3);
  }
  [[nodiscard]] static constexpr TimeNs from_s(double s) {
    return from_us(s * 1e6);
  }

  [[nodiscard]] constexpr double us() const { return static_cast<double>(ns) / 1e3; }
  [[nodiscard]] constexpr double ms() const { return static_cast<double>(ns) / 1e6; }
  [[nodiscard]] constexpr double s() const { return static_cast<double>(ns) / 1e9; }

  constexpr auto operator<=>(const TimeNs&) const = default;

  constexpr TimeNs& operator+=(TimeNs o) { ns += o.ns; return *this; }
  constexpr TimeNs& operator-=(TimeNs o) { ns -= o.ns; return *this; }

  [[nodiscard]] constexpr friend TimeNs operator+(TimeNs a, TimeNs b) {
    return TimeNs{a.ns + b.ns};
  }
  [[nodiscard]] constexpr friend TimeNs operator-(TimeNs a, TimeNs b) {
    return TimeNs{a.ns - b.ns};
  }
  [[nodiscard]] constexpr friend TimeNs operator*(TimeNs a, std::int64_t k) {
    return TimeNs{a.ns * k};
  }
  [[nodiscard]] constexpr friend TimeNs operator*(std::int64_t k, TimeNs a) {
    return a * k;
  }
  [[nodiscard]] constexpr friend TimeNs operator*(TimeNs a, int k) {
    return TimeNs{a.ns * k};
  }
  [[nodiscard]] constexpr friend TimeNs operator*(int k, TimeNs a) {
    return a * k;
  }
  /// Scale a duration by a real factor (used for displacement-factor math);
  /// rounds to nearest nanosecond.
  [[nodiscard]] constexpr friend TimeNs operator*(TimeNs a, double f) {
    return TimeNs{static_cast<std::int64_t>(static_cast<double>(a.ns) * f + 0.5)};
  }
  [[nodiscard]] constexpr friend double operator/(TimeNs a, TimeNs b) {
    return static_cast<double>(a.ns) / static_cast<double>(b.ns);
  }
};

[[nodiscard]] constexpr TimeNs min(TimeNs a, TimeNs b) { return a < b ? a : b; }
[[nodiscard]] constexpr TimeNs max(TimeNs a, TimeNs b) { return a < b ? b : a; }
[[nodiscard]] constexpr TimeNs clamp_nonnegative(TimeNs t) {
  return t.ns < 0 ? TimeNs::zero() : t;
}

/// Human-readable rendering, e.g. "12.5us", "3.2ms".
[[nodiscard]] std::string to_string(TimeNs t);

namespace literals {
constexpr TimeNs operator""_ns(unsigned long long v) {
  return TimeNs{static_cast<std::int64_t>(v)};
}
constexpr TimeNs operator""_us(unsigned long long v) {
  return TimeNs{static_cast<std::int64_t>(v) * 1000};
}
constexpr TimeNs operator""_ms(unsigned long long v) {
  return TimeNs{static_cast<std::int64_t>(v) * 1000000};
}
constexpr TimeNs operator""_s(unsigned long long v) {
  return TimeNs{static_cast<std::int64_t>(v) * 1000000000};
}
}  // namespace literals

/// A half-open interval [begin, end) of simulated time.
struct TimeInterval {
  TimeNs begin{};
  TimeNs end{};

  [[nodiscard]] constexpr TimeNs duration() const { return end - begin; }
  [[nodiscard]] constexpr bool empty() const { return end <= begin; }
  [[nodiscard]] constexpr bool contains(TimeNs t) const {
    return begin <= t && t < end;
  }
  [[nodiscard]] constexpr bool overlaps(const TimeInterval& o) const {
    return begin < o.end && o.begin < end;
  }
  constexpr auto operator<=>(const TimeInterval&) const = default;
};

}  // namespace ibpower
