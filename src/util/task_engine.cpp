#include "util/task_engine.hpp"

#include <algorithm>
#include <utility>

#include "util/expect.hpp"

namespace ibpower {

namespace {
// Which engine/worker owns the current thread. A thread belongs to at most
// one engine worker for its whole life, so plain thread_locals suffice.
thread_local TaskEngine* tl_engine = nullptr;
thread_local int tl_worker_index = -1;
}  // namespace

// ---------------------------------------------------------------------------
// StealDeque

StealDeque::StealDeque(std::size_t initial_capacity) {
  buffers_.push_back(std::make_unique<Buffer>(
      std::max<std::size_t>(initial_capacity, 2)));
  buffer_.store(buffers_.back().get(), std::memory_order_relaxed);
}

void StealDeque::grow(std::int64_t top, std::int64_t bottom) {
  Buffer* old = buffer_.load(std::memory_order_relaxed);
  auto next = std::make_unique<Buffer>(old->capacity * 2);
  for (std::int64_t i = top; i < bottom; ++i) {
    next->slots[static_cast<std::size_t>(i) % next->capacity].store(
        old->slots[static_cast<std::size_t>(i) % old->capacity].load(
            std::memory_order_relaxed),
        std::memory_order_relaxed);
  }
  buffer_.store(next.get(), std::memory_order_release);
  buffers_.push_back(std::move(next));  // old stays alive for late thieves
}

void StealDeque::push(TaskId v) {
  const std::int64_t b = bottom_.load(std::memory_order_relaxed);
  const std::int64_t t = top_.load(std::memory_order_acquire);
  Buffer* buf = buffer_.load(std::memory_order_relaxed);
  if (b - t >= static_cast<std::int64_t>(buf->capacity)) {
    grow(t, b);
    buf = buffer_.load(std::memory_order_relaxed);
  }
  buf->slots[static_cast<std::size_t>(b) % buf->capacity].store(
      v, std::memory_order_relaxed);
  // seq_cst publish: a thief that observes the new bottom also observes the
  // slot store (slots are atomics, so even a racing overwrite after a
  // wraparound is a benign value race resolved by the thief's top CAS).
  bottom_.store(b + 1, std::memory_order_seq_cst);
}

bool StealDeque::pop(TaskId* out) {
  const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
  Buffer* buf = buffer_.load(std::memory_order_relaxed);
  bottom_.store(b, std::memory_order_seq_cst);  // announce the take-back
  std::int64_t t = top_.load(std::memory_order_seq_cst);
  if (t > b) {  // deque was empty
    bottom_.store(b + 1, std::memory_order_relaxed);
    return false;
  }
  *out = buf->slots[static_cast<std::size_t>(b) % buf->capacity].load(
      std::memory_order_relaxed);
  if (t == b) {
    // Last element: race the thieves for it via top.
    const bool won = top_.compare_exchange_strong(
        t, t + 1, std::memory_order_seq_cst, std::memory_order_seq_cst);
    bottom_.store(b + 1, std::memory_order_relaxed);
    return won;
  }
  return true;
}

bool StealDeque::steal(TaskId* out) {
  std::int64_t t = top_.load(std::memory_order_seq_cst);
  const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
  if (t >= b) return false;
  Buffer* buf = buffer_.load(std::memory_order_acquire);
  const TaskId v =
      buf->slots[static_cast<std::size_t>(t) % buf->capacity].load(
          std::memory_order_relaxed);
  if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                    std::memory_order_seq_cst)) {
    return false;  // lost the race; caller probes elsewhere
  }
  *out = v;
  return true;
}

std::size_t StealDeque::approx_size() const {
  const std::int64_t b = bottom_.load(std::memory_order_relaxed);
  const std::int64_t t = top_.load(std::memory_order_relaxed);
  return b > t ? static_cast<std::size_t>(b - t) : 0;
}

// ---------------------------------------------------------------------------
// TaskEngine

TaskEngine::TaskEngine(unsigned workers)
    : epoch_(std::chrono::steady_clock::now()) {
  const unsigned n = workers == 0 ? 1 : workers;
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

TaskEngine::~TaskEngine() {
  {
    std::lock_guard<std::mutex> lock(park_mu_);
    stop_ = true;
    ++signal_;
  }
  park_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

TaskEngine* TaskEngine::current() { return tl_engine; }

int TaskEngine::current_worker_index() { return tl_worker_index; }

std::int64_t TaskEngine::now_ns() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

TaskEngine::TaskNode* TaskEngine::node(TaskId id) {
  // nodes_ is a deque: push_back never moves existing elements, but the
  // bookkeeping it mutates races with operator[] — hence the lock for the
  // address lookup only; the returned node is safe to use lock-free under
  // the ownership rules documented on TaskNode.
  std::lock_guard<std::mutex> lock(graph_mu_);
  return &nodes_[id];
}

void TaskEngine::notify_enqueue() {
  {
    std::lock_guard<std::mutex> lock(park_mu_);
    ++signal_;
  }
  park_cv_.notify_all();
}

void TaskEngine::enqueue_ready(TaskId id) {
  if (tl_engine == this && tl_worker_index >= 0) {
    Worker& w = *workers_[static_cast<std::size_t>(tl_worker_index)];
    w.deque.push(id);
    const std::uint64_t depth = w.deque.approx_size();
    if (depth > w.deque_highwater.load(std::memory_order_relaxed)) {
      w.deque_highwater.store(depth, std::memory_order_relaxed);
    }
  } else {
    std::lock_guard<std::mutex> lock(inject_mu_);
    inject_.push_back(id);
  }
  notify_enqueue();
}

TaskId TaskEngine::submit(TaskFn fn, const char* label) {
  return submit_after(nullptr, 0, std::move(fn), label);
}

TaskId TaskEngine::submit_after(const TaskId* deps, std::size_t ndeps,
                                TaskFn fn, const char* label) {
  TaskId id = 0;
  bool ready = false;
  {
    std::lock_guard<std::mutex> lock(graph_mu_);
    id = static_cast<TaskId>(nodes_.size());
    nodes_.emplace_back();
    TaskNode& nd = nodes_.back();
    nd.fn = std::move(fn);
    nd.prof.label = label;
    if (profiling_) nd.prof.submit_ns = now_ns();
    int pending = 0;
    for (std::size_t d = 0; d < ndeps; ++d) {
      IBP_EXPECTS(deps[d] < id);
      if (!nodes_[deps[d]].finished) {
        nodes_[deps[d]].dependents.push_back(id);
        ++pending;
      }
    }
    nd.pending = pending;
    outstanding_.fetch_add(1, std::memory_order_relaxed);
    ready = pending == 0;
    if (ready && profiling_) nd.prof.ready_ns = nd.prof.submit_ns;
  }
  if (ready) enqueue_ready(id);
  return id;
}

bool TaskEngine::find_work(unsigned self, TaskId* out, bool* stolen) {
  Worker& me = *workers_[self];
  if (me.deque.pop(out)) {
    *stolen = false;
    return true;
  }
  {
    std::lock_guard<std::mutex> lock(inject_mu_);
    if (!inject_.empty()) {
      *out = inject_.front();
      inject_.pop_front();
      *stolen = false;
      return true;
    }
  }
  const unsigned n = static_cast<unsigned>(workers_.size());
  for (unsigned k = 1; k < n; ++k) {
    const unsigned j = (self + k) % n;
    me.steal_attempts.fetch_add(1, std::memory_order_relaxed);
    if (workers_[j]->deque.steal(out)) {
      me.steals.fetch_add(1, std::memory_order_relaxed);
      *stolen = true;
      return true;
    }
  }
  return false;
}

void TaskEngine::run_task(unsigned self, TaskId id, bool stolen) {
  TaskNode& nd = *node(id);
  if (profiling_) {
    nd.prof.start_ns = now_ns();
    nd.prof.worker = static_cast<std::int32_t>(self);
    nd.prof.stolen = stolen;
  }
  // Move the body out so its captures (e.g. campaign shared_ptrs) die as
  // soon as the task finishes, not when the table is reset.
  TaskFn fn = std::move(nd.fn);
  try {
    fn();
  } catch (...) {
    std::lock_guard<std::mutex> lock(error_mu_);
    if (!error_) error_ = std::current_exception();
  }
  if (profiling_) nd.prof.finish_ns = now_ns();
  workers_[self]->executed.fetch_add(1, std::memory_order_relaxed);
  complete(id);
}

void TaskEngine::complete(TaskId id) {
  // Newly ready dependents are collected under the lock, then pushed onto
  // the completing worker's own deque (depth-first locality; thieves can
  // still take them) with one wakeup for the whole batch.
  TaskId ready_local[8];
  std::size_t nready = 0;
  std::vector<TaskId> ready_spill;
  bool all_done = false;
  {
    std::lock_guard<std::mutex> lock(graph_mu_);
    TaskNode& nd = nodes_[id];
    nd.finished = true;
    const std::int64_t t = profiling_ ? now_ns() : 0;
    for (const TaskId dep : nd.dependents) {
      if (--nodes_[dep].pending == 0) {
        if (profiling_) nodes_[dep].prof.ready_ns = t;
        if (nready < 8) {
          ready_local[nready++] = dep;
        } else {
          ready_spill.push_back(dep);
        }
      }
    }
    nd.dependents.clear();
    all_done = outstanding_.fetch_sub(1, std::memory_order_relaxed) == 1;
  }
  if (nready > 0 || !ready_spill.empty()) {
    const bool on_worker = tl_engine == this && tl_worker_index >= 0;
    Worker* me = on_worker
                     ? workers_[static_cast<std::size_t>(tl_worker_index)].get()
                     : nullptr;
    for (std::size_t i = 0; i < nready + ready_spill.size(); ++i) {
      const TaskId dep = i < nready ? ready_local[i] : ready_spill[i - nready];
      if (me != nullptr) {
        me->deque.push(dep);
      } else {
        std::lock_guard<std::mutex> lock(inject_mu_);
        inject_.push_back(dep);
      }
    }
    if (me != nullptr) {
      const std::uint64_t depth = me->deque.approx_size();
      if (depth > me->deque_highwater.load(std::memory_order_relaxed)) {
        me->deque_highwater.store(depth, std::memory_order_relaxed);
      }
    }
    notify_enqueue();
  }
  if (all_done) {
    std::lock_guard<std::mutex> lock(done_mu_);
    done_cv_.notify_all();
  }
}

void TaskEngine::worker_loop(unsigned index) {
  tl_engine = this;
  tl_worker_index = static_cast<int>(index);
  Worker& me = *workers_[index];
  std::uint64_t seen = 0;
  bool stopping = false;
  for (;;) {
    TaskId id = 0;
    bool stolen = false;
    if (find_work(index, &id, &stolen)) {
      run_task(index, id, stolen);
      continue;
    }
    // stop_ is sticky and this worker's own deque is empty right now (we
    // are the only pusher), so nothing of ours is stranded by exiting;
    // work made ready later lands on the worker that readied it.
    if (stopping) break;
    const auto idle0 = std::chrono::steady_clock::now();
    {
      std::unique_lock<std::mutex> lock(park_mu_);
      if (signal_ == seen && !stop_) {
        me.parks.fetch_add(1, std::memory_order_relaxed);
        park_cv_.wait(lock, [&] { return signal_ != seen || stop_; });
      }
      seen = signal_;
      stopping = stop_;
    }
    me.idle_ns.fetch_add(std::chrono::duration_cast<std::chrono::nanoseconds>(
                             std::chrono::steady_clock::now() - idle0)
                             .count(),
                         std::memory_order_relaxed);
  }
}

void TaskEngine::wait_all() {
  IBP_EXPECTS(tl_engine != this);  // a worker waiting on workers deadlocks
  {
    std::unique_lock<std::mutex> lock(done_mu_);
    done_cv_.wait(lock, [this] {
      return outstanding_.load(std::memory_order_acquire) == 0;
    });
  }
  std::exception_ptr err;
  {
    std::lock_guard<std::mutex> lock(error_mu_);
    err = std::exchange(error_, nullptr);
  }
  if (err) std::rethrow_exception(err);
}

void TaskEngine::set_profiling(bool on) {
  std::lock_guard<std::mutex> lock(graph_mu_);
  profiling_ = on;
}

SchedProfile TaskEngine::profile() const {
  SchedProfile p;
  p.workers.reserve(workers_.size());
  for (const auto& w : workers_) {
    SchedWorkerProfile wp;
    wp.executed = w->executed.load(std::memory_order_relaxed);
    wp.steals = w->steals.load(std::memory_order_relaxed);
    wp.steal_attempts = w->steal_attempts.load(std::memory_order_relaxed);
    wp.parks = w->parks.load(std::memory_order_relaxed);
    wp.deque_highwater = w->deque_highwater.load(std::memory_order_relaxed);
    wp.idle_ns = w->idle_ns.load(std::memory_order_relaxed);
    p.workers.push_back(wp);
  }
  std::lock_guard<std::mutex> lock(graph_mu_);
  if (profiling_) {
    p.tasks.reserve(nodes_.size());
    for (const TaskNode& nd : nodes_) p.tasks.push_back(nd.prof);
  }
  return p;
}

void TaskEngine::reset() {
  std::lock_guard<std::mutex> lock(graph_mu_);
  IBP_EXPECTS(outstanding_.load(std::memory_order_relaxed) == 0);
  nodes_.clear();
  for (auto& w : workers_) {
    w->executed.store(0, std::memory_order_relaxed);
    w->steals.store(0, std::memory_order_relaxed);
    w->steal_attempts.store(0, std::memory_order_relaxed);
    w->parks.store(0, std::memory_order_relaxed);
    w->deque_highwater.store(0, std::memory_order_relaxed);
    w->idle_ns.store(0, std::memory_order_relaxed);
  }
  epoch_ = std::chrono::steady_clock::now();
}

}  // namespace ibpower
