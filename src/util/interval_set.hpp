// IntervalSet: a set of half-open time intervals with merging, complement
// and total-duration queries. Link busy/idle tracking (Table I) and power
// mode timelines (energy accounting, Fig. 6) are built on this.
#pragma once

#include <vector>

#include "util/expect.hpp"
#include "util/time_types.hpp"

namespace ibpower {

class IntervalSet {
 public:
  /// Add [begin, end); overlapping or touching intervals are merged.
  /// Amortized O(1) when added in (mostly) increasing order, which is how
  /// the simulator produces them; falls back to ordered insertion otherwise.
  void add(TimeNs begin, TimeNs end);
  void add(const TimeInterval& iv) { add(iv.begin, iv.end); }

  [[nodiscard]] const std::vector<TimeInterval>& intervals() const {
    return intervals_;
  }
  [[nodiscard]] bool empty() const { return intervals_.empty(); }
  [[nodiscard]] std::size_t size() const { return intervals_.size(); }

  /// Sum of all interval durations.
  [[nodiscard]] TimeNs total() const;

  /// True if t lies inside any interval.
  [[nodiscard]] bool contains(TimeNs t) const;

  /// Gaps between intervals, clipped to the window [from, to).
  /// This yields exactly the link *idle* intervals when *this* holds the
  /// link *busy* intervals over an execution of duration [from, to).
  [[nodiscard]] std::vector<TimeInterval> complement(TimeNs from, TimeNs to) const;

  /// Total overlap between this set and the window [from, to).
  [[nodiscard]] TimeNs overlap(TimeNs from, TimeNs to) const;

  void clear() { intervals_.clear(); }

 private:
  std::vector<TimeInterval> intervals_;  // sorted, disjoint, non-touching
};

}  // namespace ibpower
