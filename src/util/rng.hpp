// Deterministic, seedable random number generation for workload synthesis.
//
// We use xoshiro256** (public-domain algorithm by Blackman & Vigna) rather
// than std::mt19937 because it is faster, has a tiny state, and — critically
// for reproducible experiments — its output is fully specified here, so a
// standard-library change can never silently alter the generated traces.
#pragma once

#include <cstdint>
#include <cmath>

#include "util/expect.hpp"

namespace ibpower {

namespace detail {
/// splitmix64: used to expand a 64-bit seed into xoshiro state.
constexpr std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace detail

/// xoshiro256** PRNG. Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x1b9ab3f0d1cULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& word : state_) word = detail::splitmix64(x);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    IBP_EXPECTS(lo <= hi);
    return lo + (hi - lo) * uniform01();
  }

  /// Uniform integer in [0, n). n must be > 0. Uses Lemire's method.
  std::uint64_t uniform_below(std::uint64_t n) {
    IBP_EXPECTS(n > 0);
    // Rejection-free for our purposes: bias is < 2^-64 * n, negligible for
    // workload synthesis; we still do one rejection round for cleanliness.
    __uint128_t m = static_cast<__uint128_t>((*this)()) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        m = static_cast<__uint128_t>((*this)()) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    IBP_EXPECTS(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(uniform_below(span));
  }

  /// True with probability p.
  bool bernoulli(double p) { return uniform01() < p; }

  /// Standard normal via Marsaglia polar method.
  double normal(double mean = 0.0, double stddev = 1.0) {
    if (have_spare_) {
      have_spare_ = false;
      return mean + stddev * spare_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double mul = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * mul;
    have_spare_ = true;
    return mean + stddev * u * mul;
  }

  /// Log-normal with given *linear-space* median and sigma of underlying
  /// normal. Heavy-tailed interval jitter in the workload models uses this.
  double lognormal(double median, double sigma) {
    IBP_EXPECTS(median > 0.0);
    return median * std::exp(sigma * normal());
  }

  /// Exponential with given mean.
  double exponential(double mean) {
    IBP_EXPECTS(mean > 0.0);
    double u;
    do { u = uniform01(); } while (u == 0.0);
    return -mean * std::log(u);
  }

  /// Split off an independent child stream (for per-rank generators).
  Rng split() {
    Rng child(0);
    for (auto& word : child.state_) word = (*this)();
    return child;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
  double spare_{0.0};
  bool have_spare_{false};
};

}  // namespace ibpower
