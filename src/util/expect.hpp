// Lightweight precondition / invariant checking in the spirit of the C++
// Core Guidelines' Expects()/Ensures(). Checks are active in all build types
// because the simulator's correctness arguments depend on them; each check is
// a predictable branch and costs essentially nothing on the hot paths we use
// it on.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace ibpower::detail {

[[noreturn]] inline void contract_violation(const char* kind, const char* expr,
                                            const char* file, int line) {
  std::fprintf(stderr, "ibpower: %s violation: (%s) at %s:%d\n", kind, expr,
               file, line);
  std::abort();
}

}  // namespace ibpower::detail

#define IBP_EXPECTS(cond)                                                  \
  do {                                                                     \
    if (!(cond))                                                           \
      ::ibpower::detail::contract_violation("precondition", #cond,         \
                                            __FILE__, __LINE__);           \
  } while (0)

#define IBP_ENSURES(cond)                                                  \
  do {                                                                     \
    if (!(cond))                                                           \
      ::ibpower::detail::contract_violation("postcondition", #cond,        \
                                            __FILE__, __LINE__);           \
  } while (0)

#define IBP_ASSERT(cond)                                                   \
  do {                                                                     \
    if (!(cond))                                                           \
      ::ibpower::detail::contract_violation("invariant", #cond, __FILE__,  \
                                            __LINE__);                     \
  } while (0)
