#include "util/interval_set.hpp"

#include <algorithm>

namespace ibpower {

void IntervalSet::add(TimeNs begin, TimeNs end) {
  IBP_EXPECTS(begin <= end);
  if (begin == end) return;

  // Fast path: appending past the current tail.
  if (intervals_.empty() || begin > intervals_.back().end) {
    intervals_.push_back({begin, end});
    return;
  }
  if (begin >= intervals_.back().begin) {  // merge with tail
    intervals_.back().begin = std::min(intervals_.back().begin, begin);
    intervals_.back().end = std::max(intervals_.back().end, end);
    return;
  }

  // General path: locate the first interval whose end >= begin.
  auto first = std::lower_bound(
      intervals_.begin(), intervals_.end(), begin,
      [](const TimeInterval& iv, TimeNs b) { return iv.end < b; });
  if (first == intervals_.end() || end < first->begin) {
    intervals_.insert(first, {begin, end});
    return;
  }
  // Merge [first, last) into one interval.
  auto last = std::upper_bound(
      first, intervals_.end(), end,
      [](TimeNs e, const TimeInterval& iv) { return e < iv.begin; });
  first->begin = std::min(first->begin, begin);
  first->end = std::max(std::prev(last)->end, end);
  intervals_.erase(first + 1, last);
}

TimeNs IntervalSet::total() const {
  TimeNs sum{};
  for (const auto& iv : intervals_) sum += iv.duration();
  return sum;
}

bool IntervalSet::contains(TimeNs t) const {
  auto it = std::upper_bound(
      intervals_.begin(), intervals_.end(), t,
      [](TimeNs v, const TimeInterval& iv) { return v < iv.begin; });
  if (it == intervals_.begin()) return false;
  return std::prev(it)->contains(t);
}

std::vector<TimeInterval> IntervalSet::complement(TimeNs from, TimeNs to) const {
  IBP_EXPECTS(from <= to);
  std::vector<TimeInterval> gaps;
  TimeNs cursor = from;
  for (const auto& iv : intervals_) {
    if (iv.end <= from) continue;
    if (iv.begin >= to) break;
    if (iv.begin > cursor) gaps.push_back({cursor, min(iv.begin, to)});
    cursor = max(cursor, iv.end);
    if (cursor >= to) break;
  }
  if (cursor < to) gaps.push_back({cursor, to});
  return gaps;
}

TimeNs IntervalSet::overlap(TimeNs from, TimeNs to) const {
  TimeNs sum{};
  for (const auto& iv : intervals_) {
    if (iv.end <= from) continue;
    if (iv.begin >= to) break;
    sum += min(iv.end, to) - max(iv.begin, from);
  }
  return sum;
}

}  // namespace ibpower
