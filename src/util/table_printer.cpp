#include "util/table_printer.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace ibpower {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(Row{std::move(cells), pending_separator_});
  pending_separator_ = false;
}

void TablePrinter::add_separator() { pending_separator_ = true; }

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  auto print_rule = [&] {
    os << '+';
    for (auto w : widths) {
      for (std::size_t i = 0; i < w + 2; ++i) os << '-';
      os << '+';
    }
    os << '\n';
  };
  auto print_cells = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << cells[c];
      for (std::size_t i = cells[c].size(); i < widths[c] + 1; ++i) os << ' ';
      os << '|';
    }
    os << '\n';
  };

  print_rule();
  print_cells(headers_);
  print_rule();
  for (const auto& row : rows_) {
    if (row.separator_before) print_rule();
    print_cells(row.cells);
  }
  print_rule();
}

std::string TablePrinter::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::pct(double v, int precision) {
  return fmt(v, precision) + "%";
}

void print_report_banner(std::ostream& os, const std::string& title) {
  os << "================================================================\n"
     << " ibpower — " << title << "\n"
     << " Reproduction of Dickov et al., \"Software-Managed Power\n"
     << " Reduction in Infiniband Links\", ICPP 2014\n"
     << "----------------------------------------------------------------\n"
     << " Simulated system (paper Table II):\n"
     << "   Simulator            Dimemas-Venus style trace-driven co-sim\n"
     << "   Connectivity         XGFT(2;18,14;1,18)\n"
     << "   Topology             extended generalized fat tree, 2 levels\n"
     << "   Switch technology    InfiniBand 4X QDR\n"
     << "   Network bandwidth    40 Gbit/s (10 Gbit/s in 1X low-power)\n"
     << "   Segment size         2 KB\n"
     << "   MPI latency          1 us\n"
     << "   Lane reactivation    Treact = 10 us\n"
     << "   Low-power draw       43% of nominal (Mellanox WRPS)\n"
     << "================================================================\n";
}

}  // namespace ibpower
