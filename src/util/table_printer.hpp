// Fixed-width table rendering for the benchmark harnesses, so every bench
// binary prints rows in the same visual style as the paper's tables.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace ibpower {

/// Collects rows of cells and prints them with aligned columns.
///
///   TablePrinter t({"App", "N", "Savings [%]"});
///   t.add_row({"GROMACS", "8", "32.8"});
///   t.print(std::cout);
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  /// Inserts a horizontal separator line before the next row.
  void add_separator();

  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  /// Format helpers used by every bench target.
  static std::string fmt(double v, int precision = 2);
  static std::string pct(double v, int precision = 2);

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator_before{false};
  };

  std::vector<std::string> headers_;
  std::vector<Row> rows_;
  bool pending_separator_{false};
};

/// Prints the standard simulation-parameter header (the paper's Table II)
/// at the top of a bench report.
void print_report_banner(std::ostream& os, const std::string& title);

}  // namespace ibpower
