#include "util/thread_pool.hpp"

#include "util/expect.hpp"

namespace ibpower {

namespace {
// -1 off-pool; workers stamp their index before entering the loop.
thread_local int tl_worker_index = -1;
}  // namespace

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned n = threads == 0 ? 1 : threads;
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

unsigned ThreadPool::default_concurrency() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : hc;
}

int ThreadPool::current_worker_index() { return tl_worker_index; }

void ThreadPool::enqueue(Task task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    IBP_EXPECTS(!stop_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop(unsigned index) {
  tl_worker_index = static_cast<int>(index);
  while (true) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // exceptions are captured by the packaged_task wrapper
  }
}

}  // namespace ibpower
