#include "util/thread_pool.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "util/expect.hpp"

namespace ibpower {

namespace {
// -1 off-pool; workers stamp their index before entering the loop.
thread_local int tl_worker_index = -1;

std::string read_first_line(const char* path) {
  std::ifstream in(path);
  std::string line;
  if (in) std::getline(in, line);
  return line;
}

/// CPUs granted by the cgroup this process runs in (v2 first, then v1);
/// 0 when no quota applies.
unsigned cgroup_quota_cpus() {
  const std::string v2 = read_first_line("/sys/fs/cgroup/cpu.max");
  if (!v2.empty()) return parse_cpu_quota(v2.c_str(), nullptr);
  const std::string quota =
      read_first_line("/sys/fs/cgroup/cpu/cpu.cfs_quota_us");
  const std::string period =
      read_first_line("/sys/fs/cgroup/cpu/cpu.cfs_period_us");
  if (quota.empty() || period.empty()) return 0;
  return parse_cpu_quota(quota.c_str(), period.c_str());
}
}  // namespace

unsigned parse_cpu_quota(const char* quota_text, const char* period_text) {
  if (quota_text == nullptr) return 0;
  long long quota = 0;
  long long period = 0;
  if (period_text == nullptr) {
    // v2 `cpu.max`: "<quota|max> <period>".
    std::istringstream in(quota_text);
    std::string first;
    if (!(in >> first >> period)) return 0;
    if (first == "max") return 0;
    char* end = nullptr;
    quota = std::strtoll(first.c_str(), &end, 10);
    if (end == first.c_str() || *end != '\0') return 0;
  } else {
    char* end = nullptr;
    quota = std::strtoll(quota_text, &end, 10);
    if (end == quota_text) return 0;
    end = nullptr;
    period = std::strtoll(period_text, &end, 10);
    if (end == period_text) return 0;
  }
  if (quota <= 0 || period <= 0) return 0;  // v1 "-1" = unlimited
  return static_cast<unsigned>((quota + period - 1) / period);
}

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned n = threads == 0 ? 1 : threads;
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

unsigned ThreadPool::default_concurrency() {
  static const unsigned cached = [] {
    const unsigned hc = std::thread::hardware_concurrency();
    unsigned n = hc == 0 ? 1 : hc;
    const unsigned quota = cgroup_quota_cpus();
    if (quota != 0 && quota < n) n = quota;
    return n == 0 ? 1u : n;
  }();
  return cached;
}

int ThreadPool::current_worker_index() { return tl_worker_index; }

void ThreadPool::enqueue(Task task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    IBP_EXPECTS(!stop_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop(unsigned index) {
  tl_worker_index = static_cast<int>(index);
  while (true) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // exceptions are captured by the packaged_task wrapper
  }
}

}  // namespace ibpower
