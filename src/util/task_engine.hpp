// TaskEngine — a work-stealing, dependency-aware task scheduler.
//
// Why it exists (DESIGN.md §14): the original ThreadPool is one FIFO queue,
// and ParallelExperimentRunner used it in phases — generate every trace,
// join, then run every replay leg. On heterogeneous grids (8-rank cells next
// to 1024-rank XGFT cells) the phase barrier leaves most workers idle while
// the slowest trace generates, and the long-pole replay tail runs on a
// single worker while the rest have nothing to steal. TaskEngine removes
// both: tasks carry dependency edges (a replay leg becomes runnable the
// instant *its* trace finishes, not the last one), and idle workers steal
// work from busy ones, including shard-pump helper tasks that let them lend
// cores to a long-pole sharded replay (sim/sharded_replay.hpp's elastic
// mode).
//
// Scheduling structure:
//  * One Chase–Lev deque per worker. A worker pushes tasks it makes ready
//    (dependents of a task it just finished) onto its own deque and pops
//    LIFO — depth-first, cache-warm. Thieves steal FIFO from the top, so
//    they take the oldest (usually largest-remaining) work.
//  * Off-worker submissions (the coordinating caller, or another engine's
//    worker) go through a mutex-protected global injection queue that every
//    worker polls between deque and steal attempts.
//  * Workers park on a condition variable when a full sweep (own deque,
//    injection queue, every peer) finds nothing; every enqueue bumps a
//    signal counter under the park mutex, so wakeups cannot be lost.
//
// Determinism contract: the engine itself promises nothing about execution
// *order* of independent tasks — determinism is the caller's job, and the
// callers here (sim/parallel.cpp, sim/campaign.cpp) get it the same way the
// ThreadPool design did: every task writes only its own pre-allocated
// result slot, and results are gathered in submission order. The stealing
// and the deques affect only *where and when* a task runs, never what it
// computes or where its output lands.
//
// Exceptions: task bodies must not throw — callers wrap bodies and capture
// std::exception_ptr into per-task slots so rethrow order stays
// deterministic. As a backstop the engine catches anything that escapes,
// completes the task (so dependents still release), and rethrows the first
// such exception from wait_all().
//
// The ThreadPool stays for plain fan-out users (fuzz_replay, tests);
// TaskEngine is the scheduler under the experiment runner and the campaign
// session.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <initializer_list>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "util/inplace_callback.hpp"

namespace ibpower {

using TaskId = std::uint32_t;

/// Chase–Lev work-stealing deque of TaskIds (Lê et al., "Correct and
/// Efficient Work-Stealing for Weak Memory Models"). Single owner thread
/// pushes/pops at the bottom (LIFO); any number of thieves steal at the top
/// (FIFO). This implementation uses seq_cst operations on top_/bottom_ and
/// atomic buffer slots instead of standalone fences — marginally stronger
/// than the minimal algorithm, but exactly as lock-free, and it keeps the
/// code inside what TSan models precisely (fences are where TSan gives
/// false negatives/positives).
class StealDeque {
 public:
  explicit StealDeque(std::size_t initial_capacity = 256);

  StealDeque(const StealDeque&) = delete;
  StealDeque& operator=(const StealDeque&) = delete;

  /// Owner only. Grows the buffer when full (old buffers are retired, not
  /// freed, so a racing thief can still read through a stale pointer).
  void push(TaskId v);

  /// Owner only; takes the most recently pushed element. False when empty.
  bool pop(TaskId* out);

  /// Any thread; takes the oldest element. False when empty or when the
  /// steal lost a race (callers treat both as "try elsewhere").
  bool steal(TaskId* out);

  /// Racy size estimate for profiling (queue-depth highwater).
  [[nodiscard]] std::size_t approx_size() const;

 private:
  struct Buffer {
    explicit Buffer(std::size_t n)
        : capacity(n), slots(new std::atomic<TaskId>[n]) {}
    std::size_t capacity;
    std::unique_ptr<std::atomic<TaskId>[]> slots;
  };

  void grow(std::int64_t top, std::int64_t bottom);

  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  std::atomic<Buffer*> buffer_{nullptr};
  // Owner-only: current + retired buffers. Retired buffers stay alive for
  // the deque's lifetime so thieves never dereference freed memory; growth
  // is rare (doubling) and the engine's task count is bounded per run.
  std::vector<std::unique_ptr<Buffer>> buffers_;
};

/// Per-worker scheduler counters (all cumulative since the last reset()).
struct SchedWorkerProfile {
  std::uint64_t executed{0};        // tasks run by this worker
  std::uint64_t steals{0};          // tasks taken from a peer's deque
  std::uint64_t steal_attempts{0};  // steal probes, successful or not
  std::uint64_t parks{0};           // times the worker went to sleep
  std::uint64_t deque_highwater{0}; // max own-deque depth observed at push
  std::int64_t idle_ns{0};          // wall time spent looking for work/parked
};

/// Per-task record (populated only while profiling is enabled). Timestamps
/// are nanoseconds on the engine's steady clock (0 = engine construction /
/// last reset), so ready→start latency and phase overlap can be read
/// directly: the phase barrier is dead iff some leg's start_ns precedes the
/// last generation task's finish_ns.
struct SchedTaskProfile {
  const char* label{""};
  std::int64_t submit_ns{0};
  std::int64_t ready_ns{0};   // all dependencies finished
  std::int64_t start_ns{0};
  std::int64_t finish_ns{0};
  std::int32_t worker{-1};    // executing worker index
  bool stolen{false};         // executed off the deque of another worker
};

struct SchedProfile {
  std::vector<SchedWorkerProfile> workers;
  std::vector<SchedTaskProfile> tasks;  // by TaskId; empty unless profiling
};

class TaskEngine {
 public:
  // Task bodies are submitted at cell granularity (a trace generation, one
  // replay leg); 128 bytes holds every closure the runner and the campaign
  // session build inline, and the InplaceCallback heap fallback keeps the
  // API total for anything bigger.
  using TaskFn = InplaceCallback<128>;

  /// Spawns max(1, workers) workers. Unlike ParallelExperimentRunner this
  /// does NOT clamp to hardware concurrency — tests rely on multi-worker
  /// engines existing on 1-core hosts.
  explicit TaskEngine(unsigned workers);

  /// Drains every remaining runnable task, then joins. Callers should
  /// wait_all() first; destruction with an unsatisfiable dependency cycle
  /// would hang, exactly like waiting on it would.
  ~TaskEngine();

  TaskEngine(const TaskEngine&) = delete;
  TaskEngine& operator=(const TaskEngine&) = delete;

  [[nodiscard]] unsigned size() const {
    return static_cast<unsigned>(threads_.size());
  }

  /// The engine whose worker is running the current thread, or nullptr.
  /// This is how nested parallelism finds the shared pool: a sharded replay
  /// inside an engine worker lends itself helper tasks on the same engine
  /// instead of spawning threads (sharded_replay's elastic mode).
  [[nodiscard]] static TaskEngine* current();

  /// Index of the engine worker running the current thread, or -1. Tasks
  /// use it to borrow per-worker state (ReplayMemory): two tasks with the
  /// same index never run concurrently — stealing moves a task to the
  /// *thief's* index, so the borrow discipline holds for stolen tasks too.
  [[nodiscard]] static int current_worker_index();

  /// Submit an immediately runnable task. Thread-safe; callable from
  /// workers (own-deque push, stealable) and external threads (injection
  /// queue). `label` must outlive the engine (string literals).
  TaskId submit(TaskFn fn, const char* label = "");

  /// Submit a task that becomes runnable when every task in `deps` has
  /// finished. Already-finished dependencies are allowed (they just don't
  /// count). Every dep must be an id previously returned by this engine.
  TaskId submit_after(const TaskId* deps, std::size_t ndeps, TaskFn fn,
                      const char* label = "");
  TaskId submit_after(std::initializer_list<TaskId> deps, TaskFn fn,
                      const char* label = "") {
    return submit_after(deps.begin(), deps.size(), std::move(fn), label);
  }

  /// Block until every submitted task has finished. Must be called from a
  /// non-worker thread (a worker waiting for workers deadlocks; enforced).
  /// Rethrows the first exception that escaped a task body, if any.
  void wait_all();

  /// Enable per-task records (timestamps, worker, stolen flag). Cheap
  /// per-worker counters are always on. Call while idle.
  void set_profiling(bool on);
  [[nodiscard]] bool profiling() const { return profiling_; }

  /// Snapshot of the counters and (if profiling) per-task records. Call
  /// after wait_all(); racy against in-flight tasks otherwise.
  [[nodiscard]] SchedProfile profile() const;

  /// Nanoseconds since the engine epoch, on the same clock as the task
  /// records (lets callers timestamp external phases against them).
  [[nodiscard]] std::int64_t now_ns() const;

  /// Forget every finished task (ids restart at 0) and zero all profiling.
  /// Requires an idle engine (wait_all() returned, no concurrent submits).
  void reset();

 private:
  struct TaskNode {
    TaskFn fn;
    int pending{0};                 // unfinished deps (under graph_mu_)
    bool finished{false};           // under graph_mu_
    std::vector<TaskId> dependents; // under graph_mu_
    SchedTaskProfile prof;          // timestamps under graph_mu_ until
                                    // ready; start/finish/worker/stolen are
                                    // executing-worker-only
  };

  struct alignas(64) Worker {
    StealDeque deque;
    // Counters are atomics so profile() can read them while workers idle
    // between runs without a data race; all updates are relaxed (they
    // publish through wait_all's mutex chain, not through each other).
    std::atomic<std::uint64_t> executed{0};
    std::atomic<std::uint64_t> steals{0};
    std::atomic<std::uint64_t> steal_attempts{0};
    std::atomic<std::uint64_t> parks{0};
    std::atomic<std::uint64_t> deque_highwater{0};
    std::atomic<std::int64_t> idle_ns{0};
  };

  [[nodiscard]] TaskNode* node(TaskId id);
  void enqueue_ready(TaskId id);
  void notify_enqueue();
  bool find_work(unsigned self, TaskId* out, bool* stolen);
  void run_task(unsigned self, TaskId id, bool stolen);
  void complete(TaskId id);
  void worker_loop(unsigned index);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  // Task graph: table + edges + outstanding count.
  mutable std::mutex graph_mu_;
  std::deque<TaskNode> nodes_;          // stable addresses; indexed by id
  std::atomic<std::int64_t> outstanding_{0};  // mutated under graph_mu_

  // Global injection queue for off-worker submissions.
  std::mutex inject_mu_;
  std::deque<TaskId> inject_;

  // Park/wake. signal_ is bumped (under park_mu_) on every enqueue; a
  // worker re-sweeps instead of sleeping whenever it changed since its
  // last failed sweep, so no wakeup can be lost.
  std::mutex park_mu_;
  std::condition_variable park_cv_;
  std::uint64_t signal_{0};
  bool stop_{false};

  // wait_all.
  std::mutex done_mu_;
  std::condition_variable done_cv_;

  // First exception that escaped a task body (backstop; see header note).
  std::mutex error_mu_;
  std::exception_ptr error_;

  bool profiling_{false};
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace ibpower
