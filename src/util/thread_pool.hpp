// ThreadPool: a fixed-size, work-stealing-free FIFO thread pool.
//
// Design goals (see DESIGN.md §7):
//  - Determinism-friendly: one shared FIFO queue, tasks start in submission
//    order, and callers gather futures in submission order — so any fan-out
//    of *independent* tasks produces output identical to the serial loop,
//    regardless of thread count or scheduling.
//  - Exception-transparent: a throwing task surfaces through its
//    std::future exactly like a direct call would.
//  - N=1 degrades to a serial executor on a single worker thread, which is
//    also how the pool behaves on single-core machines.
//
// Tasks must not block on futures of tasks submitted *after* them (FIFO
// ordering makes waiting on earlier tasks safe, later ones can deadlock).
// The parallel experiment runner only submits leaf work, so this never
// arises there.
#pragma once

#include <condition_variable>
#include <deque>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/inplace_callback.hpp"

namespace ibpower {

/// Effective CPU count implied by a cgroup CPU bandwidth quota, or 0 when
/// unlimited/unparseable. Pure string parsing, exposed for tests:
///  * cgroup v2: `quota_text` is the whole `cpu.max` file ("max 100000" or
///    "250000 100000"), `period_text` is null.
///  * cgroup v1: `quota_text` is `cpu.cfs_quota_us` ("-1" = unlimited) and
///    `period_text` is `cpu.cfs_period_us`.
/// The count is ceil(quota / period): a 2.5-CPU quota rounds to 3 workers —
/// fractional headroom is still worth a (mostly idle) worker, while
/// rounding down would waive real bandwidth.
[[nodiscard]] unsigned parse_cpu_quota(const char* quota_text,
                                       const char* period_text);

class ThreadPool {
 public:
  /// Spawns max(1, threads) workers.
  explicit ThreadPool(unsigned threads = default_concurrency());

  /// Joins all workers after draining the queue.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned size() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// Usable CPUs: hardware_concurrency further clamped by the cgroup CPU
  /// quota when one applies (containers report the *host's* cores through
  /// hardware_concurrency; a 1-core-quota container used to default to
  /// `--jobs 8`-style pure oversubscription). Always >= 1. Cached after
  /// the first call.
  [[nodiscard]] static unsigned default_concurrency();

  /// Index of the pool worker running the current thread, in [0, size()),
  /// or -1 off-pool. Lets tasks pick up per-worker state (e.g. the parallel
  /// experiment runner's per-worker ReplayMemory) without any locking: two
  /// tasks with the same index can never run concurrently.
  [[nodiscard]] static int current_worker_index();

  /// True when the current thread is a pool worker. Nested-parallelism
  /// policy hook: work that would fan out its own threads (e.g. a sharded
  /// replay with --shards auto) stays serial inside a pool worker, because
  /// the pool already owns the machine's cores at cell granularity — and
  /// pool tasks must never block on other pool tasks (FIFO contract).
  [[nodiscard]] static bool in_worker() { return current_worker_index() >= 0; }

  /// Enqueue a nullary callable; its result (or exception) arrives through
  /// the returned future.
  template <class F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>&>> {
    using R = std::invoke_result_t<std::decay_t<F>&>;
    std::packaged_task<R()> task(std::forward<F>(fn));
    std::future<R> fut = task.get_future();
    enqueue(Task([t = std::move(task)]() mutable { t(); }));
    return fut;
  }

 private:
  // packaged_task is a couple of pointers; 64 bytes keeps every submit
  // allocation-free beyond the packaged_task's own shared state.
  using Task = InplaceCallback<64>;

  void enqueue(Task task);
  void worker_loop(unsigned index);

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Task> queue_;
  bool stop_{false};
  std::vector<std::thread> workers_;
};

}  // namespace ibpower
