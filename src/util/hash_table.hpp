// FlatHashMap: an open-addressing hash map with robin-hood style backshift
// deletion. This is our stand-in for the uthash table the paper uses to
// store pattern objects ("we used uthash hash table to store the pattern
// objects where pattern is used as a key", §III-A). A contiguous table keeps
// PPA lookups cache-friendly; tests cross-check behaviour against
// std::unordered_map and bench_micro quantifies the difference.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "util/expect.hpp"

namespace ibpower {

/// 64-bit avalanche mix (from splitmix64 finalizer); used to de-correlate
/// user hashes before modulo-by-power-of-two.
constexpr std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// FNV-1a over an arbitrary byte range; used for gram/pattern content hashing.
constexpr std::uint64_t fnv1a(const void* data, std::size_t len,
                              std::uint64_t seed = 0xcbf29ce484222325ULL) {
  auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

template <class K, class V, class Hash = std::hash<K>,
          class Eq = std::equal_to<K>>
class FlatHashMap {
 public:
  struct Slot {
    K key;
    V value;
  };

  FlatHashMap() = default;

  explicit FlatHashMap(std::size_t initial_capacity) {
    reserve(initial_capacity);
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }

  void clear() {
    slots_.clear();
    meta_.clear();
    size_ = 0;
  }

  /// Empty the map but keep the table allocation (reset-and-reuse
  /// protocol): the next fill up to the previous size never rehashes.
  void clear_retain() {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (meta_[i] != kEmpty) slots_[i] = Slot{};
    }
    std::fill(meta_.begin(), meta_.end(), kEmpty);
    size_ = 0;
  }

  void reserve(std::size_t n) {
    std::size_t want = 8;
    while (want * 7 < n * 8) want <<= 1;  // keep load factor <= 7/8
    if (want > slots_.size()) rehash(want);
  }

  /// Insert or overwrite. Returns reference to the stored value.
  V& insert_or_assign(const K& key, V value) {
    if (V* existing = find(key)) {
      *existing = std::move(value);
      return *existing;
    }
    return emplace_new(key, std::move(value));
  }

  /// operator[]-style access: default-constructs missing entries.
  V& operator[](const K& key) {
    if (V* existing = find(key)) return *existing;
    return emplace_new(key, V{});
  }

  [[nodiscard]] V* find(const K& key) {
    return const_cast<V*>(std::as_const(*this).find(key));
  }

  [[nodiscard]] const V* find(const K& key) const {
    if (slots_.empty()) return nullptr;
    const std::size_t mask = slots_.size() - 1;
    std::size_t idx = bucket_of(key);
    std::uint8_t dist = 0;
    while (true) {
      if (meta_[idx] == kEmpty) return nullptr;
      if (meta_[idx] >= dist + 1 && eq_(slots_[idx].key, key)) {
        return &slots_[idx].value;
      }
      // Robin hood invariant: if the resident's probe distance is shorter
      // than ours, the key cannot be further along.
      if (meta_[idx] < dist + 1) return nullptr;
      idx = (idx + 1) & mask;
      ++dist;
      IBP_ASSERT(dist < kMaxProbe);
    }
  }

  [[nodiscard]] bool contains(const K& key) const { return find(key) != nullptr; }

  /// Remove a key; returns true if it was present. Uses backshift deletion,
  /// so no tombstones accumulate (PPA removes abandoned candidate patterns
  /// frequently, Alg. 2 line 38).
  bool erase(const K& key) {
    if (slots_.empty()) return false;
    const std::size_t mask = slots_.size() - 1;
    std::size_t idx = bucket_of(key);
    std::uint8_t dist = 0;
    while (true) {
      if (meta_[idx] == kEmpty) return false;
      if (meta_[idx] == dist + 1 && eq_(slots_[idx].key, key)) break;
      if (meta_[idx] < dist + 1) return false;
      idx = (idx + 1) & mask;
      ++dist;
    }
    // Backshift the following cluster.
    std::size_t next = (idx + 1) & mask;
    while (meta_[next] > 1) {
      slots_[idx] = std::move(slots_[next]);
      meta_[idx] = static_cast<std::uint8_t>(meta_[next] - 1);
      idx = next;
      next = (next + 1) & mask;
    }
    meta_[idx] = kEmpty;
    slots_[idx] = Slot{};
    --size_;
    return true;
  }

  /// Visit all entries (unspecified order).
  template <class Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (meta_[i] != kEmpty) fn(slots_[i].key, slots_[i].value);
    }
  }

 private:
  static constexpr std::uint8_t kEmpty = 0;
  static constexpr std::uint8_t kMaxProbe = 128;

  [[nodiscard]] std::size_t bucket_of(const K& key) const {
    return static_cast<std::size_t>(mix64(static_cast<std::uint64_t>(hash_(key)))) &
           (slots_.size() - 1);
  }

  V& emplace_new(const K& key, V value) {
    if (slots_.empty() || (size_ + 1) * 8 > slots_.size() * 7) {
      rehash(slots_.empty() ? 8 : slots_.size() * 2);
    }
    ++size_;
    return insert_slot(key, std::move(value));
  }

  V& insert_slot(K key, V value) {
    const std::size_t mask = slots_.size() - 1;
    std::size_t idx = bucket_of(key);
    std::uint8_t dist = 1;  // stored distance is probe length + 1; 0 = empty
    V* result = nullptr;
    while (true) {
      if (meta_[idx] == kEmpty) {
        slots_[idx] = Slot{std::move(key), std::move(value)};
        meta_[idx] = dist;
        return result ? *result : slots_[idx].value;
      }
      if (meta_[idx] < dist) {  // robin hood: steal from the rich
        std::swap(slots_[idx].key, key);
        std::swap(slots_[idx].value, value);
        std::swap(meta_[idx], dist);
        if (!result) result = &slots_[idx].value;
      }
      idx = (idx + 1) & mask;
      ++dist;
      IBP_ASSERT(dist < kMaxProbe);
    }
  }

  void rehash(std::size_t new_cap) {
    std::vector<Slot> old_slots = std::move(slots_);
    std::vector<std::uint8_t> old_meta = std::move(meta_);
    slots_.clear();
    slots_.resize(new_cap);  // default-construct (supports move-only values)
    meta_.assign(new_cap, kEmpty);
    for (std::size_t i = 0; i < old_slots.size(); ++i) {
      if (old_meta[i] != kEmpty) {
        insert_slot(std::move(old_slots[i].key), std::move(old_slots[i].value));
      }
    }
  }

  std::vector<Slot> slots_;
  std::vector<std::uint8_t> meta_;
  std::size_t size_{0};
  [[no_unique_address]] Hash hash_{};
  [[no_unique_address]] Eq eq_{};
};

}  // namespace ibpower
