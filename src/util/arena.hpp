// MonotonicArena: per-run bump allocation for the replay engine's hot state.
//
// The replay hot path used to heap-allocate per message (channel deques),
// per recorded call (timeline push_back) and per collective (entered
// vectors). An arena replaces all of that with pointer bumps into a few
// large blocks: allocation is an add + compare, deallocation is free, and
// reset() recycles the peak footprint so a reused arena reaches a steady
// state where a full replay performs *zero* heap allocations
// (tests/test_replay_noalloc.cpp pins this).
//
// Lifetime rules (DESIGN.md §7, "Memory architecture"):
//  - The arena outlives every container carved from it; reset() invalidates
//    all of them at once. Containers never free — memory is reclaimed only
//    by reset().
//  - reset() retains capacity: after the first run has established the peak
//    footprint, later runs bump within the already-held blocks. If a run
//    spilled into overflow blocks, reset() coalesces them into one block so
//    the steady state is a single allocation-free slab.
//  - Element types must be trivially copyable/destructible (enforced below):
//    the arena never runs destructors.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

#include "util/expect.hpp"

namespace ibpower {

class MonotonicArena {
 public:
  MonotonicArena() = default;
  explicit MonotonicArena(std::size_t initial_bytes) {
    if (initial_bytes > 0) add_block(initial_bytes);
  }

  MonotonicArena(const MonotonicArena&) = delete;
  MonotonicArena& operator=(const MonotonicArena&) = delete;

  /// Bump-allocate `bytes` aligned to `align` (a power of two).
  void* allocate(std::size_t bytes, std::size_t align) {
    IBP_ASSERT((align & (align - 1)) == 0);
    if (bytes == 0) bytes = 1;
    std::size_t off = (offset_ + align - 1) & ~(align - 1);
    if (cur_ >= blocks_.size() || off + bytes > blocks_[cur_].size) {
      grow(bytes, align);
      off = (offset_ + align - 1) & ~(align - 1);
    }
    offset_ = off + bytes;
    high_water_ = used_before_cur_ + offset_ > high_water_
                      ? used_before_cur_ + offset_
                      : high_water_;
    return blocks_[cur_].data.get() + off;
  }

  /// Typed array allocation; elements are NOT constructed.
  template <class T>
  [[nodiscard]] T* allocate_array(std::size_t n) {
    static_assert(std::is_trivially_copyable_v<T> &&
                  std::is_trivially_destructible_v<T>);
    return static_cast<T*>(allocate(n * sizeof(T), alignof(T)));
  }

  /// Recycle all memory. Every pointer previously handed out becomes
  /// invalid. Keeps capacity; coalesces multi-block runs into one slab so a
  /// reused arena stops allocating once its peak footprint is known.
  void reset() {
    if (blocks_.size() > 1) {
      // One slab sized for the observed peak (plus headroom for jitter).
      const std::size_t want = high_water_ + high_water_ / 4;
      blocks_.clear();
      add_block(want);
    }
    cur_ = 0;
    offset_ = 0;
    used_before_cur_ = 0;
  }

  /// Bytes currently handed out (since construction or the last reset()).
  [[nodiscard]] std::size_t bytes_used() const {
    return used_before_cur_ + offset_;
  }
  /// Total bytes held across blocks.
  [[nodiscard]] std::size_t bytes_capacity() const {
    std::size_t total = 0;
    for (const auto& b : blocks_) total += b.size;
    return total;
  }
  [[nodiscard]] std::size_t block_count() const { return blocks_.size(); }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size{0};
  };

  static constexpr std::size_t kMinBlock = 64 * 1024;

  void add_block(std::size_t bytes) {
    const std::size_t size = bytes < kMinBlock ? kMinBlock : bytes;
    blocks_.push_back(Block{std::make_unique<std::byte[]>(size), size});
  }

  void grow(std::size_t bytes, std::size_t align) {
    // Move past any remaining blocks that fit, else append a new one that
    // doubles total capacity (classic geometric growth).
    if (cur_ < blocks_.size()) used_before_cur_ += blocks_[cur_].size;
    ++cur_;
    while (cur_ < blocks_.size() && blocks_[cur_].size < bytes + align) {
      used_before_cur_ += blocks_[cur_].size;
      ++cur_;
    }
    if (cur_ >= blocks_.size()) {
      const std::size_t want = bytes + align > bytes_capacity()
                                   ? bytes + align
                                   : bytes_capacity();
      add_block(want);
      cur_ = blocks_.size() - 1;
    }
    offset_ = 0;
  }

  std::vector<Block> blocks_;
  std::size_t cur_{0};
  std::size_t offset_{0};
  std::size_t used_before_cur_{0};
  std::size_t high_water_{0};
};

/// Growable array carved from a MonotonicArena. Trivial element types only;
/// growth leaks the old buffer into the arena (reclaimed at arena reset),
/// which is the whole point: no free lists, no per-push heap traffic.
template <class T>
class ArenaVector {
  static_assert(std::is_trivially_copyable_v<T> &&
                std::is_trivially_destructible_v<T>);

 public:
  ArenaVector() = default;
  explicit ArenaVector(MonotonicArena* arena) : arena_(arena) {}

  void attach(MonotonicArena* arena) {
    arena_ = arena;
    data_ = nullptr;
    size_ = cap_ = 0;
  }

  void reserve(std::size_t n) {
    if (n > cap_) grow_to(n);
  }

  void push_back(const T& v) {
    if (size_ == cap_) grow_to(cap_ == 0 ? 8 : cap_ * 2);
    data_[size_++] = v;
  }

  /// Insert before `pos` (for the sorted-vector request bookkeeping).
  void insert_at(std::size_t pos, const T& v) {
    IBP_ASSERT(pos <= size_);
    if (size_ == cap_) grow_to(cap_ == 0 ? 8 : cap_ * 2);
    std::memmove(data_ + pos + 1, data_ + pos, (size_ - pos) * sizeof(T));
    data_[pos] = v;
    ++size_;
  }

  void erase_at(std::size_t pos) {
    IBP_ASSERT(pos < size_);
    std::memmove(data_ + pos, data_ + pos + 1,
                 (size_ - pos - 1) * sizeof(T));
    --size_;
  }

  void clear() { size_ = 0; }

  [[nodiscard]] T& operator[](std::size_t i) {
    IBP_ASSERT(i < size_);
    return data_[i];
  }
  [[nodiscard]] const T& operator[](std::size_t i) const {
    IBP_ASSERT(i < size_);
    return data_[i];
  }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] T* data() { return data_; }
  [[nodiscard]] const T* data() const { return data_; }
  [[nodiscard]] T* begin() { return data_; }
  [[nodiscard]] T* end() { return data_ + size_; }
  [[nodiscard]] const T* begin() const { return data_; }
  [[nodiscard]] const T* end() const { return data_ + size_; }

 private:
  void grow_to(std::size_t n) {
    IBP_ASSERT(arena_ != nullptr);
    T* fresh = arena_->allocate_array<T>(n);
    if (size_ > 0) std::memcpy(fresh, data_, size_ * sizeof(T));
    data_ = fresh;
    cap_ = n;
  }

  MonotonicArena* arena_{nullptr};
  T* data_{nullptr};
  std::size_t size_{0};
  std::size_t cap_{0};
};

/// FIFO ring buffer carved from a MonotonicArena (channel message queues and
/// waiting-receive lists: push_back + pop_front + front).
template <class T>
class ArenaQueue {
  static_assert(std::is_trivially_copyable_v<T> &&
                std::is_trivially_destructible_v<T>);

 public:
  ArenaQueue() = default;

  void attach(MonotonicArena* arena) {
    arena_ = arena;
    data_ = nullptr;
    head_ = size_ = cap_ = 0;
  }

  void push_back(const T& v) {
    if (size_ == cap_) grow();
    data_[(head_ + size_) & (cap_ - 1)] = v;
    ++size_;
  }

  [[nodiscard]] const T& front() const {
    IBP_ASSERT(size_ > 0);
    return data_[head_];
  }

  void pop_front() {
    IBP_ASSERT(size_ > 0);
    head_ = (head_ + 1) & (cap_ - 1);
    --size_;
  }

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }

 private:
  void grow() {
    IBP_ASSERT(arena_ != nullptr);
    const std::size_t newcap = cap_ == 0 ? 8 : cap_ * 2;  // power of two
    T* fresh = arena_->allocate_array<T>(newcap);
    for (std::size_t i = 0; i < size_; ++i) {
      fresh[i] = data_[(head_ + i) & (cap_ - 1)];
    }
    data_ = fresh;
    head_ = 0;
    cap_ = newcap;
  }

  MonotonicArena* arena_{nullptr};
  T* data_{nullptr};
  std::size_t head_{0};
  std::size_t size_{0};
  std::size_t cap_{0};
};

}  // namespace ibpower
