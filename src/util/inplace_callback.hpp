// InplaceCallback: a move-only `void()` callable with a small-buffer store.
//
// The DES kernel schedules millions of events per replay; with
// std::function<void()> every capture larger than libstdc++'s tiny SBO
// (two pointers) costs a heap allocation + deallocation per event.
// InplaceCallback stores any nothrow-movable callable of up to `Capacity`
// bytes directly inside the event-queue entry, so scheduling allocates
// nothing. Oversized callables still work via a heap fallback, keeping the
// API total — but every hot-path capture in ReplayEngine fits inline
// (test_des.cpp pins this with a counting allocator).
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

#include "util/expect.hpp"

// The move path below runs ~4 times per scheduled event (into the queue,
// between the fast-path slot and the heap, out again at pop). It must stay
// inlined into EventQueue's methods no matter how large the instantiating
// translation unit grows — when GCC's unit-growth budget makes it back off,
// every event pays an outlined 48-byte memcpy plus vtable branches, which
// measured as a double-digit percent replay slowdown. Hence the explicit
// attribute rather than trust in the heuristics.
#if defined(__GNUC__) || defined(__clang__)
#define IBP_ALWAYS_INLINE inline __attribute__((always_inline))
#else
#define IBP_ALWAYS_INLINE inline
#endif

namespace ibpower {

template <std::size_t Capacity = 48>
class InplaceCallback {
 public:
  static constexpr std::size_t capacity = Capacity;

  /// True when a callable of type F is stored inline (no heap allocation).
  template <class F>
  static constexpr bool stores_inline() {
    using Fn = std::decay_t<F>;
    return sizeof(Fn) <= Capacity &&
           alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  InplaceCallback() noexcept = default;

  template <class F,
            class = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InplaceCallback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InplaceCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (stores_inline<F>()) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      vt_ = &InlineOps<Fn>::vtable;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      vt_ = &HeapOps<Fn>::vtable;
    }
  }

  IBP_ALWAYS_INLINE InplaceCallback(InplaceCallback&& o) noexcept {
    steal(o);
  }

  IBP_ALWAYS_INLINE InplaceCallback& operator=(InplaceCallback&& o) noexcept {
    if (this != &o) {
      reset();
      steal(o);
    }
    return *this;
  }

  InplaceCallback(const InplaceCallback&) = delete;
  InplaceCallback& operator=(const InplaceCallback&) = delete;

  ~InplaceCallback() { reset(); }

  void reset() noexcept {
    if (vt_ != nullptr) {
      if (!vt_->trivial) vt_->destroy(buf_);
      vt_ = nullptr;
    }
  }

  [[nodiscard]] explicit operator bool() const noexcept {
    return vt_ != nullptr;
  }

  void operator()() {
    IBP_ASSERT(vt_ != nullptr);
    vt_->invoke(buf_);
  }

 private:
  struct VTable {
    void (*invoke)(void*);
    void (*relocate)(void* src, void* dst) noexcept;  // move + destroy src
    void (*destroy)(void*) noexcept;
    // Trivially copyable + destructible payloads move by memcpy and skip
    // destruction entirely — the heap sifts in EventQueue move entries
    // constantly, and nearly every ReplayEngine capture qualifies.
    bool trivial;
  };

  template <class Fn>
  struct InlineOps {
    static constexpr bool is_trivial = std::is_trivially_copyable_v<Fn> &&
                                       std::is_trivially_destructible_v<Fn>;
    static void invoke(void* p) { (*static_cast<Fn*>(p))(); }
    static void relocate(void* src, void* dst) noexcept {
      auto* f = static_cast<Fn*>(src);
      ::new (dst) Fn(std::move(*f));
      f->~Fn();
    }
    static void destroy(void* p) noexcept { static_cast<Fn*>(p)->~Fn(); }
    static constexpr VTable vtable{&invoke, &relocate, &destroy, is_trivial};
  };

  template <class Fn>
  struct HeapOps {
    static Fn*& ptr(void* p) { return *static_cast<Fn**>(p); }
    static void invoke(void* p) { (*ptr(p))(); }
    static void relocate(void* src, void* dst) noexcept {
      ::new (dst) Fn*(ptr(src));
    }
    static void destroy(void* p) noexcept { delete ptr(p); }
    static constexpr VTable vtable{&invoke, &relocate, &destroy, false};
  };

  IBP_ALWAYS_INLINE void steal(InplaceCallback& o) noexcept {
    if (o.vt_ != nullptr) {
      if (o.vt_->trivial) {
        // Fixed-size copy on purpose: a compile-time-constant 48-byte
        // memcpy lowers to three vector moves, a runtime-sized one does
        // not. Payloads smaller than Capacity leave trailing bytes
        // indeterminate; copying them through unsigned char is defined,
        // but with the move path force-inlined GCC now sees it and warns.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
        std::memcpy(buf_, o.buf_, Capacity);
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif
      } else {
        o.vt_->relocate(o.buf_, buf_);
      }
      vt_ = o.vt_;
      o.vt_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[Capacity];
  const VTable* vt_{nullptr};
};

}  // namespace ibpower
