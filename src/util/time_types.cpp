#include "util/time_types.hpp"

#include <cstdio>

namespace ibpower {

std::string to_string(TimeNs t) {
  char buf[48];
  const double ns = static_cast<double>(t.ns);
  if (t.ns < 0) {
    return "-" + to_string(TimeNs{-t.ns});
  }
  if (t.ns < 1000) {
    std::snprintf(buf, sizeof buf, "%lldns", static_cast<long long>(t.ns));
  } else if (t.ns < 1000000) {
    std::snprintf(buf, sizeof buf, "%.3gus", ns / 1e3);
  } else if (t.ns < 1000000000) {
    std::snprintf(buf, sizeof buf, "%.4gms", ns / 1e6);
  } else {
    std::snprintf(buf, sizeof buf, "%.5gs", ns / 1e9);
  }
  return buf;
}

}  // namespace ibpower
