// Streaming and batch statistics used throughout the evaluation harness.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "util/expect.hpp"

namespace ibpower {

/// Welford streaming accumulator: mean/variance/min/max without storing
/// samples. Used for per-rank and per-link aggregate metrics.
class StreamingStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = n_ == 1 ? x : std::min(min_, x);
    max_ = n_ == 1 ? x : std::max(max_, x);
    sum_ += x;
  }

  void merge(const StreamingStats& o) {
    if (o.n_ == 0) return;
    if (n_ == 0) { *this = o; return; }
    const auto n1 = static_cast<double>(n_);
    const auto n2 = static_cast<double>(o.n_);
    const double delta = o.mean_ - mean_;
    const double total = n1 + n2;
    m2_ += o.m2_ + delta * delta * n1 * n2 / total;
    mean_ = (n1 * mean_ + n2 * o.mean_) / total;
    n_ += o.n_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
    sum_ += o.sum_;
  }

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }

 private:
  std::size_t n_{0};
  double mean_{0.0};
  double m2_{0.0};
  double min_{0.0};
  double max_{0.0};
  double sum_{0.0};
};

/// Batch percentile over a copy of the samples (nearest-rank definition).
[[nodiscard]] double percentile(std::vector<double> samples, double p);

/// Relative difference |a-b| / max(|a|,|b|, eps); convenience for tests that
/// compare reproduced numbers against expected bands.
[[nodiscard]] inline double rel_diff(double a, double b, double eps = 1e-12) {
  const double denom = std::max({std::fabs(a), std::fabs(b), eps});
  return std::fabs(a - b) / denom;
}

}  // namespace ibpower
