#include "core/gram_builder.hpp"

namespace ibpower {

std::optional<ClosedGram> GramBuilder::on_call_enter(MpiCall call,
                                                     TimeNs enter) {
  IBP_EXPECTS(call != MpiCall::None);
  std::optional<ClosedGram> closed;

  if (!any_call_) {
    any_call_ = true;
    open_begin_ = enter;
    open_preceding_idle_ = TimeNs::zero();
  } else {
    IBP_EXPECTS(enter >= last_exit_);
    const TimeNs gap = enter - last_exit_;
    if (gap >= gt_) {
      closed = close_open();
      open_begin_ = enter;
      open_preceding_idle_ = gap;
    }
  }
  open_calls_.push_back(call);
  in_call_ = true;
  return closed;
}

void GramBuilder::on_call_exit(TimeNs exit) {
  IBP_EXPECTS(in_call_);
  IBP_EXPECTS(exit >= open_begin_);
  open_end_ = exit;
  last_exit_ = exit;
  in_call_ = false;
}

std::optional<ClosedGram> GramBuilder::flush() {
  if (open_calls_.empty()) return std::nullopt;
  return close_open();
}

ClosedGram GramBuilder::close_open() {
  IBP_ASSERT(!open_calls_.empty());
  ClosedGram g;
  g.id = interner_->intern(open_calls_);
  g.position = next_position_++;
  g.begin = open_begin_;
  g.end = open_end_;
  g.preceding_idle = open_preceding_idle_;
  g.n_calls = static_cast<std::uint32_t>(open_calls_.size());
  open_calls_.clear();
  return g;
}

}  // namespace ibpower
