#include "core/ppa_paper.hpp"

#include "util/expect.hpp"

namespace ibpower {

PaperPpa::PaperPpa(const PpaConfig& cfg, const GramInterner* interner)
    : cfg_(cfg), interner_(interner), max_size_(cfg.max_pattern_grams) {
  IBP_EXPECTS(cfg.valid());
  IBP_EXPECTS(interner != nullptr);
}

std::string PaperPpa::key_of(std::size_t start, std::size_t len) const {
  IBP_EXPECTS(start + len <= grams_.size());
  std::string key;
  for (std::size_t i = 0; i < len; ++i) {
    if (i > 0) key += '_';
    key += interner_->to_string(grams_[start + i]);
  }
  return key;
}

bool PaperPpa::window_equals(std::size_t a, std::size_t b,
                             std::size_t len) const {
  if (a + len > grams_.size() || b + len > grams_.size()) return false;
  for (std::size_t i = 0; i < len; ++i) {
    if (grams_[a + i] != grams_[b + i]) return false;
  }
  return true;
}

const PaperPpa::PatternEntry* PaperPpa::find(const std::string& key) const {
  return list_.find(key);
}

std::optional<std::string> PaperPpa::on_event(
    const std::optional<ClosedGram>& closed) {
  ++event_;
  if (closed) grams_.push_back(closed->id);
  if (predicting_ || grams_.empty()) return std::nullopt;

  const bool was_predicting = predicting_;
  switch (step_) {
    case Step::Add:
      step_add(event_);
      break;
    case Step::Check:
      step_check(event_);
      break;
    case Step::Grow:
      step_grow(event_);
      break;
  }
  if (!was_predicting && predicting_) return predicted_key_;
  return std::nullopt;
}

void PaperPpa::step_add(int event) {
  // Alg. 1 line 9 gate: the window plus its next expected occurrence must
  // be visible before the window is worth adding.
  const std::size_t pos = grams_.size() - 1;
  if (pos + 1 < pos_cur_ + 2 * size_) return;  // "Not enough grams"

  const std::string key = key_of(pos_cur_, size_);
  PatternEntry& entry = list_[key];
  const bool matched = entry.frequency > 0;
  if (!matched) {
    entry.grams.assign(grams_.begin() + static_cast<std::ptrdiff_t>(pos_cur_),
                       grams_.begin() +
                           static_cast<std::ptrdiff_t>(pos_cur_ + size_));
  }
  ++entry.frequency;
  entry.positions.push_back(pos_cur_);
  last_add_matched_ = matched;
  consecutive_repeats_ = 0;
  log_.push_back({event, matched ? "match" : "add", key, entry.frequency,
                  pos_cur_});

  // Re-arm immediately on a previously detected pattern (§III-A policy 2).
  if (entry.detected) {
    predicting_ = true;
    predicted_key_ = key;
    predicted_from_ = pos_cur_ + size_;
    log_.push_back({event, "detect", key, entry.frequency, pos_cur_});
    return;
  }
  step_ = Step::Check;
}

void PaperPpa::step_check(int event) {
  const std::size_t pos = grams_.size() - 1;
  const std::size_t cmp_start =
      pos_cur_ + (consecutive_repeats_ + 1) * size_;
  if (pos + 1 < cmp_start + size_) return;  // "Not enough grams"

  const std::string key = key_of(pos_cur_, size_);
  if (window_equals(pos_cur_, cmp_start, size_)) {
    ++consecutive_repeats_;
    PatternEntry& entry = list_[key];
    ++entry.frequency;
    entry.positions.push_back(cmp_start);
    log_.push_back({event, "consec", key, entry.frequency, cmp_start});
    const auto needed = static_cast<std::uint32_t>(
        cfg_.consecutive_appearances_to_detect - 1);
    if (consecutive_repeats_ >= needed) {
      entry.detected = true;
      predicting_ = true;
      max_size_ = static_cast<int>(size_);  // freeze maxPatternSize (l. 32)
      predicted_key_ = key;
      predicted_from_ = cmp_start + size_;
      log_.push_back({event, "detect", key, entry.frequency, predicted_from_});
    }
    return;
  }

  // No consecutive repeat.
  consecutive_repeats_ = 0;
  if (last_add_matched_ && size_ < static_cast<std::size_t>(max_size_)) {
    step_ = Step::Grow;  // enlarge the matched pattern next (Alg. 2 l. 11)
  } else {
    ++pos_cur_;
    size_ = 2;
    last_add_matched_ = false;
    step_ = Step::Add;
  }
}

void PaperPpa::step_grow(int event) {
  const std::size_t pos = grams_.size() - 1;
  if (pos < pos_cur_ + size_) return;  // grown window not visible yet

  const std::string prefix_key = key_of(pos_cur_, size_);
  const std::string grown_key = key_of(pos_cur_, size_ + 1);

  // checkO (Alg. 2 l. 22): some previous occurrence of the prefix must
  // extend to the identical grown pattern, otherwise the growth is bogus.
  bool extendable = false;
  if (const PatternEntry* prefix = list_.find(prefix_key)) {
    for (const std::size_t occ : prefix->positions) {
      if (occ == pos_cur_) continue;
      if (window_equals(occ, pos_cur_, size_ + 1)) {
        extendable = true;
        break;
      }
    }
  }
  if (!extendable) {
    // The prefix entry of a multi-step growth chain was itself created by
    // the previous grow and records only the position it grew at, so its
    // occurrence list alone dead-ends every chain after one gram (patterns
    // longer than three grams could never be detected). The gram array is
    // the authoritative record of previous occurrences — scan it for an
    // earlier appearance of the grown window before declaring the growth
    // bogus.
    for (std::size_t q = 0; q < pos_cur_ && !extendable; ++q) {
      extendable = window_equals(q, pos_cur_, size_ + 1);
    }
  }

  if (!extendable) {
    // Alg. 2 l. 38: drop the candidate and restart from bi-grams.
    log_.push_back({event, "remove", grown_key, 0, pos_cur_});
    ++pos_cur_;
    size_ = 2;
    last_add_matched_ = false;
    consecutive_repeats_ = 0;
    step_ = Step::Add;
    return;
  }

  PatternEntry& grown = list_[grown_key];
  grown.grams.assign(
      grams_.begin() + static_cast<std::ptrdiff_t>(pos_cur_),
      grams_.begin() + static_cast<std::ptrdiff_t>(pos_cur_ + size_ + 1));
  ++grown.frequency;
  grown.positions.push_back(pos_cur_);
  log_.push_back({event, "grow", grown_key, grown.frequency, pos_cur_});
  if (PatternEntry* prefix = list_.find(prefix_key)) {
    if (prefix->frequency > 0) --prefix->frequency;  // paper's decrement
  }

  size_ += 1;
  consecutive_repeats_ = 0;
  step_ = Step::Check;
  // The walkthrough's event 17 performs the first consecutive check in the
  // same invocation as the growth ("Add gram | Consecutive-yes").
  step_check(event);
}

}  // namespace ibpower
