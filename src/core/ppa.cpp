#include "core/ppa.hpp"

#include "util/expect.hpp"

namespace ibpower {

PatternDetector::PatternDetector(const PpaConfig& cfg,
                                 const GramInterner* interner)
    : cfg_(cfg), interner_(interner), max_len_(cfg.max_pattern_grams) {
  IBP_EXPECTS(cfg.valid());
  IBP_EXPECTS(interner != nullptr);
  match_run_.assign(static_cast<std::size_t>(max_len_) + 1, 0);
}

void PatternDetector::reset(const PpaConfig& cfg) {
  IBP_EXPECTS(cfg.valid());
  cfg_ = cfg;
  patterns_.clear();
  history_.clear();
  max_len_ = cfg.max_pattern_grams;
  match_run_.assign(static_cast<std::size_t>(max_len_) + 1, 0);
  frozen_ = false;
  scanning_ = true;
  invocations_ = 0;
  ops_ = 0;
}

std::optional<PatternId> PatternDetector::observe(const ClosedGram& gram) {
  IBP_EXPECTS(history_.size() < cfg_.max_gram_history);
  history_.push_back({gram.id, gram.preceding_idle});
  const std::size_t i = history_.size() - 1;

  // Periodicity run update. This is the always-on, O(max_len) part; it keeps
  // running while the power-mode controller is active so that context is
  // warm when scanning resumes after a mispredict.
  const auto upper = static_cast<std::size_t>(max_len_);
  for (std::size_t len = 2; len <= upper; ++len) {
    auto& run = match_run_[len];
    if (i >= len && history_[i].id == history_[i - len].id) {
      ++run;
    } else {
      run = 0;
    }
    ++ops_;
  }

  if (!scanning_) return std::nullopt;
  ++invocations_;

  // First-reappearance re-arm of an already-detected pattern (paper §III-A
  // second policy bullet).
  if (auto rearmed = check_rearm()) return rearmed;

  // Appearance counting: a run of k*len matching positions means the
  // trailing length-len pattern just completed its (k+1)-th consecutive
  // appearance.
  for (int len = cfg_.min_pattern_grams; len <= max_len_; ++len) {
    const auto ulen = static_cast<std::size_t>(len);
    const std::uint32_t run = match_run_[ulen];
    if (run == 0 || run % ulen != 0) continue;
    if (run == ulen) {
      // First repeat: also record the initial appearance so its boundary
      // gaps seed the estimates.
      record_appearance_at(i + 1 - 2 * ulen, len);
    }
    const PatternId pid = record_appearance_at(i + 1 - ulen, len);
    const auto needed =
        static_cast<std::uint32_t>(cfg_.consecutive_appearances_to_detect - 1) *
        ulen;
    if (run >= needed) {
      patterns_.mark_detected(pid);
      if (!frozen_) {
        // Freeze maxPatternSize to the natural iteration length (Alg. 2
        // line 32) so later iterations are not merged into one pattern.
        max_len_ = len;
        frozen_ = true;
      }
      return pid;
    }
  }
  return std::nullopt;
}

PatternId PatternDetector::record_appearance_at(std::size_t start, int len) {
  const auto ulen = static_cast<std::size_t>(len);
  IBP_ASSERT(start + ulen <= history_.size());
  std::vector<GramId> key(ulen);
  for (std::size_t j = 0; j < ulen; ++j) key[j] = history_[start + j].id;

  bool created = false;
  const PatternId pid = patterns_.find_or_create(key, &created);
  PatternInfo& info = patterns_[pid];
  if (created) {
    info.first_position = start;
    std::uint32_t calls = 0;
    for (const GramId g : key) {
      calls += static_cast<std::uint32_t>(interner_->calls_of(g).size());
    }
    info.n_mpi_calls = calls;
  }
  ++info.frequency;
  info.last_position = start;

  // Boundary gaps: gap_after[j] is the idle following gram j. Within the
  // appearance that is the preceding_idle of gram j+1; the wrap gap (after
  // the last gram) is the preceding_idle of this appearance's first gram,
  // i.e. the gap separating it from whatever came before.
  for (std::size_t j = 1; j < ulen; ++j) {
    info.gap_after[j - 1].observe(history_[start + j].preceding_idle,
                                  cfg_.gap_ewma_alpha);
  }
  if (start > 0) {
    info.gap_after[ulen - 1].observe(history_[start].preceding_idle,
                                     cfg_.gap_ewma_alpha);
  }
  ops_ += ulen;
  return pid;
}

std::optional<PatternId> PatternDetector::check_rearm() {
  for (const PatternId pid : patterns_.detected_ids()) {
    const PatternInfo& info = patterns_[pid];
    const std::size_t len = info.length();
    if (history_.size() < len) continue;
    const std::size_t start = history_.size() - len;
    // Skip if this appearance is the one that triggered detection (the
    // trailing block was already recorded).
    if (info.last_position == start) continue;
    bool match = true;
    for (std::size_t j = 0; j < len; ++j) {
      ++ops_;
      if (history_[start + j].id != info.grams[j]) {
        match = false;
        break;
      }
    }
    if (match) {
      record_appearance_at(start, static_cast<int>(len));
      return pid;
    }
  }
  return std::nullopt;
}

}  // namespace ibpower
