// Power-mode control — the paper's Algorithm 3.
//
// Once a pattern is detected, the controller walks the predicted pattern
// call-by-call. At the exit of the call that completes the expected gram it
// issues a WRPS power-down request for the predicted idle gap minus the
// safety limit (idle * displacementFactor + Treact). At the entry of each
// call it verifies the stream still follows the pattern: a call arriving
// with the wrong id, or with a gap on the wrong side of the grouping
// threshold, is a *pattern mispredict* and control returns to the PPA.
// (The second misprediction type — a correctly predicted pattern whose idle
// interval ends earlier than predicted — is detected by the link model,
// which charges the residual reactivation latency; the controller never
// needs feedback for it, matching the paper's one-directional design.)
#pragma once

#include <cstdint>
#include <optional>

#include "core/config.hpp"
#include "core/gram.hpp"
#include "core/pattern.hpp"

namespace ibpower {

class PowerModeController {
 public:
  PowerModeController(const PpaConfig& cfg, const GramInterner* interner)
      : cfg_(cfg), interner_(interner) {}

  /// Arms the controller on `pattern`. Detection happens at the entry of the
  /// first MPI call of the next pattern appearance (that call is what closed
  /// the last gram the PPA saw), so the caller passes that call for
  /// verification; arming fails if it does not begin the pattern.
  [[nodiscard]] bool arm(PatternList* patterns, PatternId id,
                         MpiCall closing_call);

  [[nodiscard]] bool active() const { return pattern_ != nullptr; }
  [[nodiscard]] PatternId pattern_id() const { return pattern_id_; }
  void disarm();

  /// Return to the freshly-constructed state for `cfg` (reset-and-reuse
  /// protocol). The interner binding is unchanged.
  void reset(const PpaConfig& cfg) {
    cfg_ = cfg;
    pattern_ = nullptr;
    pattern_id_ = kInvalidPattern;
    gram_idx_ = 0;
    call_idx_ = 0;
    boundary_pending_ = false;
  }

  enum class Verdict : std::uint8_t { Ok, Mispredict };

  /// Verify one MPI call entry against the pattern. `gap` is the idle time
  /// since the previous call's exit on this rank. Must only be called while
  /// active. On Mispredict the controller disarms itself.
  Verdict on_call_enter(MpiCall call, TimeNs gap);

  /// A WRPS request produced at a gram boundary.
  struct PowerRequest {
    TimeNs predicted_idle;       // predicted gap to the next gram
    TimeNs low_power_duration;   // predicted_idle - safetyLimit (Alg. 3)
  };

  /// Called at every MPI call exit while active; returns a request when the
  /// call completed the expected gram and the boundary's gap estimate makes
  /// gating worthwhile.
  std::optional<PowerRequest> on_call_exit();

  /// Index of the gram (within the pattern) currently being matched.
  [[nodiscard]] std::size_t gram_index() const { return gram_idx_; }
  /// Index of the next expected call within that gram.
  [[nodiscard]] std::size_t call_index() const { return call_idx_; }

 private:
  [[nodiscard]] const std::vector<MpiCall>& expected_gram_calls() const;

  PpaConfig cfg_;
  const GramInterner* interner_;
  PatternInfo* pattern_{nullptr};
  PatternId pattern_id_{kInvalidPattern};
  std::size_t gram_idx_{0};
  std::size_t call_idx_{0};
  bool boundary_pending_{false};  // expected gram complete, awaiting exit
};

}  // namespace ibpower
