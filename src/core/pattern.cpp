#include "core/pattern.hpp"

#include <algorithm>

namespace ibpower {

PatternId PatternList::find_or_create(const std::vector<GramId>& grams,
                                      bool* created) {
  IBP_EXPECTS(!grams.empty());
  if (const PatternId* found = index_.find(grams)) {
    if (created) *created = false;
    return *found;
  }
  const auto id = static_cast<PatternId>(store_.size());
  PatternInfo info;
  info.grams = grams;
  info.gap_after.resize(grams.size());
  store_.push_back(std::move(info));
  index_.insert_or_assign(grams, id);
  if (created) *created = true;
  return id;
}

PatternId PatternList::find(const std::vector<GramId>& grams) const {
  const PatternId* found = index_.find(grams);
  return found ? *found : kInvalidPattern;
}

void PatternList::mark_detected(PatternId id) {
  IBP_EXPECTS(id < store_.size());
  if (store_[id].detected) return;
  store_[id].detected = true;
  detected_.push_back(id);
}

}  // namespace ibpower
