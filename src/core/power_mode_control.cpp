#include "core/power_mode_control.hpp"

#include "util/expect.hpp"

namespace ibpower {

bool PowerModeController::arm(PatternList* patterns, PatternId id,
                              MpiCall closing_call) {
  IBP_EXPECTS(patterns != nullptr);
  IBP_EXPECTS(!active());
  PatternInfo& info = (*patterns)[id];
  IBP_EXPECTS(!info.grams.empty());

  // The call that closed the last scanned gram is the first call of the next
  // pattern appearance; verify it actually begins the pattern.
  const auto& first_gram_calls = interner_->calls_of(info.grams[0]);
  if (first_gram_calls[0] != closing_call) return false;

  pattern_ = &info;
  pattern_id_ = id;
  gram_idx_ = 0;
  call_idx_ = 1;
  boundary_pending_ = (call_idx_ == first_gram_calls.size());
  return true;
}

void PowerModeController::disarm() {
  pattern_ = nullptr;
  pattern_id_ = kInvalidPattern;
  gram_idx_ = 0;
  call_idx_ = 0;
  boundary_pending_ = false;
}

const std::vector<MpiCall>& PowerModeController::expected_gram_calls() const {
  IBP_ASSERT(pattern_ != nullptr);
  return interner_->calls_of(pattern_->grams[gram_idx_]);
}

PowerModeController::Verdict PowerModeController::on_call_enter(MpiCall call,
                                                                TimeNs gap) {
  IBP_EXPECTS(active());
  const auto& expected = expected_gram_calls();

  if (call_idx_ == 0) {
    // Expecting the first call of the next gram: the gap must be a real
    // inter-gram gap (>= GT) and the call id must match.
    if (gap < cfg_.grouping_threshold || call != expected[0]) {
      disarm();
      return Verdict::Mispredict;
    }
    // Feed the observed gap back into the boundary estimate (the boundary
    // just crossed follows the *previous* gram).
    const std::size_t prev =
        gram_idx_ == 0 ? pattern_->length() - 1 : gram_idx_ - 1;
    pattern_->gap_after[prev].observe(gap, cfg_.gap_ewma_alpha);
  } else {
    // Mid-gram: calls must stay grouped (< GT) and match in order.
    if (gap >= cfg_.grouping_threshold || call != expected[call_idx_]) {
      disarm();
      return Verdict::Mispredict;
    }
  }

  ++call_idx_;
  if (call_idx_ == expected.size()) boundary_pending_ = true;
  return Verdict::Ok;
}

std::optional<PowerModeController::PowerRequest>
PowerModeController::on_call_exit() {
  if (!active() || !boundary_pending_) return std::nullopt;
  boundary_pending_ = false;
  const std::size_t boundary = gram_idx_;
  gram_idx_ = (gram_idx_ + 1) % pattern_->length();
  call_idx_ = 0;

  const GapEstimate& est = pattern_->gap_after[boundary];
  if (!est.has_value()) return std::nullopt;

  // Alg. 3: safetyLimit = idleTime * displacementF + Treact;
  //         predictIdleTime = idleTime - safetyLimit.
  const TimeNs predicted = est.mean();
  const TimeNs safety = predicted * cfg_.displacement_factor + cfg_.t_react;
  const TimeNs low = predicted - safety;
  if (low < cfg_.min_low_power_duration) return std::nullopt;
  return PowerRequest{predicted, low};
}

}  // namespace ibpower
