#include "core/pmpi_agent.hpp"

#include "util/expect.hpp"

namespace ibpower {

void AgentStats::merge(const AgentStats& o) {
  total_calls += o.total_calls;
  predicted_calls += o.predicted_calls;
  pattern_mispredicts += o.pattern_mispredicts;
  arms += o.arms;
  arm_failures += o.arm_failures;
  grams_closed += o.grams_closed;
  ppa_scan_invocations += o.ppa_scan_invocations;
  power_requests += o.power_requests;
  mispredict_wakes += o.mispredict_wakes;
  guard_suppressed += o.guard_suppressed;
  requested_low_power_total += o.requested_low_power_total;
  modeled_overhead_total += o.modeled_overhead_total;
}

PmpiAgent::PmpiAgent(const PpaConfig& cfg, LinkPowerPort* port)
    : cfg_(cfg), port_(port), ppa_(cfg) {
  IBP_EXPECTS(cfg.valid());
  if (cfg_.predictor.kind == PredictorKind::MultiTimeout) {
    multi_timeout_.reset(cfg_);
  } else if (cfg_.predictor.kind == PredictorKind::Histogram) {
    histogram_.reset(cfg_);
  }
  bind_predictor();
}

void PmpiAgent::bind_predictor() {
  IdlePredictor* inner = &ppa_;
  switch (cfg_.predictor.kind) {
    case PredictorKind::Ppa: inner = &ppa_; break;
    case PredictorKind::MultiTimeout: inner = &multi_timeout_; break;
    case PredictorKind::Histogram: inner = &histogram_; break;
  }
  if (cfg_.predictor.guard_threshold > TimeNs::zero()) {
    guard_.bind(inner, cfg_.predictor.guard_threshold);
    predictor_ = &guard_;
  } else {
    predictor_ = inner;
  }
}

void PmpiAgent::reset(const PpaConfig& cfg, LinkPowerPort* port) {
  IBP_EXPECTS(cfg.valid());
  cfg_ = cfg;
  port_ = port;
  // The PPA is always reset (it is the default predictor and backs the
  // detector/interner accessors); the pattern-free predictors only when
  // selected, so non-histogram agents never touch the histogram storage.
  ppa_.reset(cfg_);
  if (cfg_.predictor.kind == PredictorKind::MultiTimeout) {
    multi_timeout_.reset(cfg_);
  } else if (cfg_.predictor.kind == PredictorKind::Histogram) {
    histogram_.reset(cfg_);
  }
  bind_predictor();
  stats_ = AgentStats{};
  prediction_telemetry_ = obs::PredictionTelemetry{};
  last_exit_ = TimeNs{};
  any_call_ = false;
  pending_low_ = TimeNs{};
  pending_request_ = false;
}

TimeNs PmpiAgent::on_call_enter(MpiCall call, TimeNs enter) {
  IBP_EXPECTS(call != MpiCall::None);
  ++stats_.total_calls;
  const TimeNs gap = any_call_ ? enter - last_exit_ : TimeNs::zero();
  if (any_call_) prediction_telemetry_.on_next_call_gap(gap);
  if (pending_request_) {
    if (gap < pending_low_) ++stats_.mispredict_wakes;
    pending_request_ = false;
  }
  const bool first = !any_call_;
  any_call_ = true;

  const auto out = predictor_->on_call_enter(call, enter, gap, first);
  if (out.gram_closed) ++stats_.grams_closed;
  if (out.armed_now) {
    ++stats_.arms;
    ++stats_.predicted_calls;  // the arming call begins the pattern
  }
  if (out.arm_failed) ++stats_.arm_failures;
  if (out.mispredict) ++stats_.pattern_mispredicts;
  if (out.predicted) ++stats_.predicted_calls;

  // Modeled software overhead: every interception costs ~1 us; a full PPA
  // scan costs extra when it ran (§IV-D).
  TimeNs overhead = cfg_.interception_overhead;
  stats_.ppa_scan_invocations += out.scans;
  if (out.scans > 0) {
    overhead +=
        cfg_.ppa_invocation_overhead * static_cast<std::int64_t>(out.scans);
  }
  stats_.modeled_overhead_total += overhead;
  return overhead;
}

void PmpiAgent::on_call_exit(MpiCall call, TimeNs exit) {
  IBP_EXPECTS(call != MpiCall::None);
  const auto out = predictor_->on_call_exit(call, exit);
  last_exit_ = exit;

  if (out.guard_suppressed) ++stats_.guard_suppressed;
  if (out.request) {
    ++stats_.power_requests;
    stats_.requested_low_power_total += out.request->low_power_duration;
    prediction_telemetry_.on_power_request(out.request->predicted_idle);
    pending_low_ = out.request->low_power_duration;
    pending_request_ = true;
    if (port_ != nullptr) {
      port_->request_low_power(exit, out.request->low_power_duration);
    }
  }
}

void PmpiAgent::finish() {
  if (predictor_->finish()) ++stats_.grams_closed;
}

}  // namespace ibpower
